// Command flexbench regenerates every table and figure of the paper's
// evaluation:
//
//	flexbench                  # full suite at the default (scaled) geometry
//	flexbench -exp fig8a       # one experiment
//	flexbench -full            # the paper's exact 16 GB geometry (slow)
//	flexbench -requests 200000 # longer runs
//	flexbench -workers 1       # serial simulation runs
//
// Experiments: fig1, table1, fig4a, fig4b, fig8a, fig8b, fig8c, summary, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flexftl/internal/experiments"
	"flexftl/internal/nand"
	"flexftl/internal/par"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1|table1|fig4a|fig4b|fig8a|fig8b|fig8c|summary|placement|reliability|all")
		requests = flag.Int("requests", 150000, "host requests per Figure 8 run")
		seed     = flag.Uint64("seed", 42, "workload seed")
		full     = flag.Bool("full", false, "use the paper's 16 GB geometry (slow)")
		blocks   = flag.Int("fig4-blocks", 90, "blocks per order for Figure 4")
		workers  = flag.Int("workers", 0, "simulation workers per experiment (0 = all cores, 1 = serial)")
		shardW   = flag.Int("shard-workers", 1, "intra-run epoch-shard workers; results are identical for any value (1 = serial engine)")
		metrics  = flag.String("metrics", "", "write per-experiment result snapshots as JSON to this file")
	)
	flag.Parse()
	if err := run(os.Stdout, *exp, *requests, *seed, *full, *blocks, *workers, *shardW, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
}

// runInfo records how an experiment executed, for the -metrics dump.
// Schemes lists the FTL registry names the experiment actually simulated
// (empty for reliability-model and workload-characterization experiments,
// which run no FTL).
type runInfo struct {
	Workers int `json:"workers"`
	// ShardWorkers is the intra-run epoch-shard worker count of the
	// simulations (1 = the serial engine). flexstat compare refuses to
	// join dumps whose shard_workers differ.
	ShardWorkers int      `json:"shard_workers"`
	WallMS       float64  `json:"wall_ms"`
	Schemes      []string `json:"schemes,omitempty"`
}

func run(w io.Writer, exp string, requests int, seed uint64, full bool, fig4Blocks, workers, shardWorkers int, metricsPath string) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	// snapshots collects each experiment's result object for -metrics;
	// infos records worker count and wall-clock alongside.
	snapshots := make(map[string]any)
	infos := make(map[string]runInfo)
	if shardWorkers < 1 {
		shardWorkers = 1
	}
	record := func(name string, start time.Time, workers int, schemes []string, result any) {
		snapshots[name] = result
		infos[name] = runInfo{
			Workers:      workers,
			ShardWorkers: shardWorkers,
			WallMS:       float64(time.Since(start).Microseconds()) / 1000,
			Schemes:      schemes,
		}
	}

	if want("fig1") {
		experiments.Rule(w, "Figure 1")
		experiments.RenderFig1(w, nand.DefaultTiming())
		if err := experiments.RenderFig1Distributions(w, seed); err != nil {
			return err
		}
	}
	if want("table1") {
		experiments.Rule(w, "Table 1")
		start := time.Now()
		rows, err := experiments.RunTable1(1<<20, 50000, seed)
		if err != nil {
			return err
		}
		record("table1", start, 1, nil, rows)
		experiments.RenderTable1(w, rows)
	}
	if want("fig4a") || want("fig4b") || (exp == "fig4") {
		experiments.Rule(w, "Figure 4")
		cfg := experiments.DefaultFig4Config()
		cfg.Blocks = fig4Blocks
		cfg.Workers = workers
		start := time.Now()
		res, err := experiments.RunFig4(cfg)
		if err != nil {
			return err
		}
		record("fig4", start, par.Workers(workers), nil, res)
		experiments.RenderFig4(w, res)
		fmt.Fprintf(w, "  (%d blocks/order simulated in %v)\n", cfg.Blocks, time.Since(start).Round(time.Millisecond))
	}
	if want("fig4tlc") {
		experiments.Rule(w, "TLC extension (Section 1 claim)")
		cfg := experiments.DefaultFig4TLCConfig()
		cfg.Workers = workers
		start := time.Now()
		res, err := experiments.RunFig4TLC(cfg)
		if err != nil {
			return err
		}
		record("fig4tlc", start, par.Workers(workers), nil, res)
		experiments.RenderFig4TLC(w, res)
	}
	if want("sensitivity") {
		experiments.Rule(w, "Sensitivity sweeps (environment knobs)")
		cfg := experiments.DefaultSensitivityConfig()
		cfg.Workers = workers
		cfg.ShardWorkers = shardWorkers
		start := time.Now()
		res, err := experiments.RunSensitivity(cfg)
		if err != nil {
			return err
		}
		record("sensitivity", start, par.Workers(workers), []string{"flexFTL", "pageFTL"}, res)
		experiments.RenderSensitivity(w, res)
	}
	if want("stress") {
		experiments.Rule(w, "Lifetime stress sweep (Figure 4(b) extended to a curve)")
		cfg := experiments.DefaultStressSweepConfig()
		cfg.Workers = workers
		start := time.Now()
		pts, err := experiments.RunStressSweep(cfg)
		if err != nil {
			return err
		}
		record("stress", start, par.Workers(workers), nil, pts)
		experiments.RenderStressSweep(w, pts)
	}
	if want("ablation") {
		experiments.Rule(w, "flexFTL ablations (DESIGN.md §5)")
		cfg := experiments.DefaultAblationConfig()
		cfg.Seed = seed
		cfg.Workers = workers
		cfg.ShardWorkers = shardWorkers
		start := time.Now()
		res, err := experiments.RunAblations(cfg)
		if err != nil {
			return err
		}
		record("ablation", start, par.Workers(workers), append([]string{"flexFTL"}, experiments.Hybrids()...), res)
		experiments.RenderAblations(w, res)
	}
	if want("placement") {
		experiments.Rule(w, "Placement-axis sweep (hot/cold + wear-aware under Zipf)")
		cfg := experiments.DefaultPlacementSweepConfig()
		cfg.Seed = seed
		// The placement geometry is shrunk, so runs are cheap; keep them at
		// 4/5 of the Figure-8 request count (120k at the default) — the
		// wear-spread column needs that much GC steady state to settle.
		cfg.Requests = requests * 4 / 5
		if cfg.Requests < 10000 {
			cfg.Requests = 10000
		}
		cfg.Workers = workers
		cfg.ShardWorkers = shardWorkers
		start := time.Now()
		res, err := experiments.RunPlacementSweep(cfg)
		if err != nil {
			return err
		}
		record("placement", start, par.Workers(workers), cfg.Schemes, res)
		experiments.RenderPlacementSweep(w, res)
	}
	if want("reliability") {
		experiments.Rule(w, "Reliability aging sweep (refresh/scrub vs detect-only)")
		start := time.Now()
		reps, err := experiments.AgingSweep([]string{"pageFTL", "flexFTL"}, seed)
		if err != nil {
			return err
		}
		record("reliability", start, 1, []string{"pageFTL", "flexFTL"}, reps)
		experiments.RenderAging(w, reps)
	}
	if want("fig8a") || want("fig8b") || want("fig8c") || want("summary") || exp == "fig8" {
		geometry := experiments.EvalGeometry()
		if full {
			geometry = nand.DefaultGeometry()
		}
		cfg := experiments.Fig8Config{Geometry: geometry, Requests: requests, Seed: seed, Workers: workers, ShardWorkers: shardWorkers}
		experiments.Rule(w, fmt.Sprintf("Figure 8 (%s, %d requests/run)", geometry, requests))
		start := time.Now()
		res, err := experiments.RunFig8(cfg)
		if err != nil {
			return err
		}
		record("fig8", start, par.Workers(workers), res.Schemes, res)
		fmt.Fprintf(w, "(4 FTLs x 5 workloads simulated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if want("fig8a") || exp == "fig8" {
			experiments.RenderFig8a(w, res)
			fmt.Fprintln(w)
		}
		if want("fig8b") || exp == "fig8" {
			experiments.RenderFig8b(w, res)
			fmt.Fprintln(w)
		}
		if want("fig8c") || exp == "fig8" {
			experiments.RenderFig8c(w, res)
			fmt.Fprintln(w)
		}
		if want("summary") || exp == "fig8" {
			experiments.RenderFig8Summary(w, res)
		}
	}
	switch exp {
	case "all", "fig1", "table1", "fig4", "fig4a", "fig4b", "fig4tlc",
		"fig8", "fig8a", "fig8b", "fig8c", "summary", "ablation", "stress", "sensitivity", "placement", "reliability":
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if metricsPath != "" {
		n := len(snapshots)
		if len(infos) > 0 {
			snapshots["runinfo"] = infos
		}
		if err := writeMetrics(metricsPath, snapshots); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics: wrote %d experiment snapshot(s) to %s\n", n, metricsPath)
	}
	return nil
}

// writeMetrics dumps the collected experiment results as indented JSON.
func writeMetrics(path string, snapshots map[string]any) error {
	data, err := json.MarshalIndent(snapshots, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
