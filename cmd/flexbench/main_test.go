package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig1(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig1", 100, 1, false, 2, 0, 1, ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "LSB page program", "4.0x"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table1", 100, 1, false, 2, 0, 1, ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OLTP", "Fileserver", "Very high"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig4Tiny(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig4a", 100, 1, false, 2, 2, 1, ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 4", "RPSfull", "ECC failure"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "figZZ", 100, 1, false, 2, 0, 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunMetricsDump: -metrics writes a JSON object keyed by experiment.
func TestRunMetricsDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var sb strings.Builder
	if err := run(&sb, "table1", 100, 1, false, 2, 1, 1, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics dump not valid JSON: %v", err)
	}
	if _, ok := snap["table1"]; !ok {
		t.Errorf("dump missing table1 snapshot: %v", snap)
	}
	var infos map[string]struct {
		Workers int      `json:"workers"`
		WallMS  float64  `json:"wall_ms"`
		Schemes []string `json:"schemes"`
	}
	if err := json.Unmarshal(snap["runinfo"], &infos); err != nil {
		t.Fatalf("runinfo missing or malformed: %v", err)
	}
	if infos["table1"].Workers != 1 {
		t.Errorf("table1 runinfo workers = %d, want 1", infos["table1"].Workers)
	}
	if !strings.Contains(sb.String(), "metrics: wrote 1 experiment snapshot") {
		t.Errorf("run output missing metrics summary:\n%s", sb.String())
	}
}

// TestRunMetricsSchemes: FTL-driving experiments stamp the scheme registry
// names they simulated into their runinfo block.
func TestRunMetricsSchemes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var sb strings.Builder
	if err := run(&sb, "fig8a", 400, 1, false, 2, 0, 1, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	var infos map[string]struct {
		Schemes []string `json:"schemes"`
	}
	if err := json.Unmarshal(snap["runinfo"], &infos); err != nil {
		t.Fatal(err)
	}
	got := infos["fig8"].Schemes
	if len(got) != 4 {
		t.Fatalf("fig8 runinfo schemes = %v, want the 4 MLC FTLs", got)
	}
	want := map[string]bool{"pageFTL": true, "parityFTL": true, "rtfFTL": true, "flexFTL": true}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected scheme %q in runinfo", s)
		}
	}
}
