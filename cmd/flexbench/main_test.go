package main

import (
	"strings"
	"testing"
)

func TestRunFig1(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig1", 100, 1, false, 2, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "LSB page program", "4.0x"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table1", 100, 1, false, 2, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OLTP", "Fileserver", "Very high"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig4Tiny(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig4a", 100, 1, false, 2, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 4", "RPSfull", "ECC failure"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "figZZ", 100, 1, false, 2, true); err == nil {
		t.Error("unknown experiment accepted")
	}
}
