// Command flexstat renders structured run reports from the JSON metric
// dumps of flexbench -metrics and flexsim -metrics, and compares two dumps
// run for run:
//
//	flexstat report  RUN.json                 # per-run latency/WAF table
//	flexstat report -assert-reliability RUN   # + reliability table, CI gate
//	flexstat compare OLD.json NEW.json        # per-run p99/WAF deltas
//	flexstat compare -p99 5 -waf 2 OLD NEW    # tighter gating thresholds
//
// compare exits nonzero when any matched run's write-ack p99 or WAF moves
// beyond the thresholds (percent), so CI can gate on it; two runs of the
// same scheme, workload and seed report zero delta and exit 0. report
// prints a reliability section for runs that carried a BER model
// (reads/retries/uncorrectables plus the FTL's scrub/refresh/retire
// responses); -assert-reliability turns that section into a gate: at least
// one modelled run, every one exercising the retry ladder and losing no
// read.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"flexftl/internal/obs"
	"flexftl/internal/ssd"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: flexstat report [-assert-reliability] FILE.json")
	fmt.Fprintln(w, "       flexstat compare [-p99 PCT] [-waf PCT] OLD.json NEW.json")
}

func realMain(args []string, out, errw io.Writer) int {
	if len(args) < 1 {
		usage(errw)
		return 2
	}
	switch args[0] {
	case "report":
		fs := flag.NewFlagSet("report", flag.ContinueOnError)
		fs.SetOutput(errw)
		assertRel := fs.Bool("assert-reliability", false,
			"exit nonzero unless every reliability-modelled run retried at least one read and lost none (CI smoke gate)")
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			usage(errw)
			return 2
		}
		code, err := report(out, fs.Arg(0), *assertRel)
		if err != nil {
			fmt.Fprintln(errw, "flexstat:", err)
			return 2
		}
		return code
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ContinueOnError)
		fs.SetOutput(errw)
		p99Thresh := fs.Float64("p99", 10, "max allowed |write-ack p99 delta| in percent")
		wafThresh := fs.Float64("waf", 5, "max allowed |WAF delta| in percent")
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 2 {
			usage(errw)
			return 2
		}
		code, err := compare(out, fs.Arg(0), fs.Arg(1), *p99Thresh, *wafThresh)
		if err != nil {
			fmt.Fprintln(errw, "flexstat:", err)
			return 2
		}
		return code
	default:
		usage(errw)
		return 2
	}
}

// runEntry is one ssd.RunResult found in a metrics dump, addressed by its
// JSON path (e.g. "fig8/Cells/flexFTL/Varmail/Result"). The path is the
// join key for compare: it is stable across runs of the same experiment set.
type runEntry struct {
	path string
	run  ssd.RunResult
}

// shardEntry is one planner-effectiveness report found in a metrics dump
// (flexsim stamps one per sharded run), addressed by its JSON path.
type shardEntry struct {
	path string
	rep  ssd.ShardReport
}

// dump is one parsed metrics file: every embedded run result, any registry
// snapshot (flexsim -metrics attaches one when tracing is on), every shard
// planner report, and the set of intra-run shard-worker counts its runinfo
// blocks declare.
type dump struct {
	runs   []runEntry
	reg    *obs.RegistrySnapshot
	shards []shardEntry
	// shardWorkers holds the distinct shard_workers values of the dump's
	// runinfo blocks. Dumps predating the epoch-sharded engine carry no
	// stamp; they ran the serial engine, so absence reads as {1}.
	shardWorkers map[int]bool
}

// loadDump parses a metrics dump.
func loadDump(path string) (dump, error) {
	d := dump{shardWorkers: map[int]bool{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	collect(doc, "", &d)
	sort.Slice(d.runs, func(i, j int) bool { return d.runs[i].path < d.runs[j].path })
	sort.Slice(d.shards, func(i, j int) bool { return d.shards[i].path < d.shards[j].path })
	if len(d.shardWorkers) == 0 {
		d.shardWorkers[1] = true
	}
	return d, nil
}

// collect walks the decoded JSON tree. An object carrying the RunResult key
// set is re-marshaled into the typed struct; an object with the registry
// snapshot key set becomes the blame/instrument section of the report; a
// runinfo block contributes its shard_workers stamp.
func collect(v any, path string, d *dump) {
	switch n := v.(type) {
	case map[string]any:
		if hasKeys(n, "FTLName", "Workload", "Metrics", "Stats") {
			var r ssd.RunResult
			if remarshal(n, &r) == nil {
				d.runs = append(d.runs, runEntry{path: path, run: r})
				return
			}
		}
		if hasKeys(n, "Epochs", "ShardedOps", "SerialOps") {
			var rep ssd.ShardReport
			if remarshal(n, &rep) == nil {
				d.shards = append(d.shards, shardEntry{path: path, rep: rep})
				return
			}
		}
		if d.reg == nil && hasKeys(n, "Counters", "Gauges", "Histograms") {
			var snap obs.RegistrySnapshot
			if remarshal(n, &snap) == nil {
				d.reg = &snap
				return
			}
		}
		if hasKeys(n, "workers", "wall_ms") {
			sw := 1
			if v, ok := n["shard_workers"].(float64); ok && v >= 1 {
				sw = int(v)
			}
			d.shardWorkers[sw] = true
			return
		}
		keys := make([]string, 0, len(n))
		for k := range n {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			collect(n[k], join(path, k), d)
		}
	case []any:
		for i, e := range n {
			collect(e, join(path, strconv.Itoa(i)), d)
		}
	}
}

// shardWorkersLabel renders a dump's shard-worker set for error messages.
func shardWorkersLabel(set map[int]bool) string {
	vals := make([]int, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// sameShardWorkers reports whether two dumps ran with identical intra-run
// parallelism settings (equal shard-worker sets).
func sameShardWorkers(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func join(path, key string) string {
	if path == "" {
		return key
	}
	return path + "/" + key
}

func hasKeys(m map[string]any, keys ...string) bool {
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			return false
		}
	}
	return true
}

func remarshal(m map[string]any, dst any) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, dst)
}

// report renders the per-run latency/WAF table plus the registry's blame
// counters when the dump carries them. With assertRel it additionally gates
// on the reliability sections (the CI smoke contract): every
// reliability-modelled run must have classified reads, retried at least one,
// and lost none. Returns the process exit code.
func report(w io.Writer, file string, assertRel bool) (int, error) {
	d, err := loadDump(file)
	if err != nil {
		return 2, err
	}
	runs, reg := d.runs, d.reg
	fmt.Fprintf(w, "flexstat report: %s — %d run(s)\n\n", file, len(runs))
	if len(runs) > 0 {
		fmt.Fprintf(w, "%-14s %-12s %8s %9s %7s %9s %9s %9s %9s %9s %8s\n",
			"scheme", "workload", "reqs", "IOPS", "WAF",
			"r.p50", "r.p99", "w.p50", "w.p99", "w.p999", "erases")
		for _, e := range runs {
			r := e.run
			lat := r.Latency
			fmt.Fprintf(w, "%-14s %-12s %8d %9.0f %7.3f %9.1f %9.1f %9.1f %9.1f %9.1f %8d\n",
				r.FTLName, r.Workload, r.Metrics.Requests, r.Metrics.IOPS, r.WAF,
				lat.Read.P50, lat.Read.P99,
				lat.WriteAck.P50, lat.WriteAck.P99, lat.WriteAck.P999,
				r.Stats.Erases)
		}
	}
	// Placement section: wear spread for every run that reports it, plus the
	// hot/cold stream split where a multi-stream placement produced one.
	placed := make([]runEntry, 0, len(runs))
	for _, e := range runs {
		if e.run.WearSpread > 0 {
			placed = append(placed, e)
		}
	}
	if len(placed) > 0 {
		fmt.Fprintf(w, "\nplacement (wear spread = max/mean erases; streams split hot/cold):\n")
		fmt.Fprintf(w, "  %-14s %-12s %7s %8s %10s %10s %6s\n",
			"scheme", "workload", "WAF", "wear", "hot wr", "cold wr", "hot%")
		for _, e := range placed {
			r := e.run
			hot, cold := r.Stats.HostWritesHot, r.Stats.HostWritesCold
			hotS, coldS, share := "-", "-", "-"
			if hot+cold > 0 {
				hotS = fmt.Sprintf("%d", hot)
				coldS = fmt.Sprintf("%d", cold)
				share = fmt.Sprintf("%.1f", 100*float64(hot)/float64(hot+cold))
			}
			fmt.Fprintf(w, "  %-14s %-12s %7.3f %8.3f %10s %10s %6s\n",
				r.FTLName, r.Workload, r.WAF, r.WearSpread, hotS, coldS, share)
		}
	}
	// Reliability section: read-outcome classification and the kernel's
	// responses, for every run whose device carried the BER model.
	relRuns := make([]runEntry, 0, len(runs))
	for _, e := range runs {
		if e.run.Reliability != nil {
			relRuns = append(relRuns, e)
		}
	}
	relFailures := 0
	if len(relRuns) > 0 {
		fmt.Fprintf(w, "\nreliability (ECC read outcomes and FTL responses):\n")
		fmt.Fprintf(w, "  %-14s %-12s %10s %8s %8s %7s %7s %9s %8s %8s\n",
			"scheme", "workload", "reads", "retried", "uncorr", "lost", "scrubs", "refreshed", "rebuilt", "retired")
		for _, e := range relRuns {
			r := e.run
			rr := r.Reliability
			fmt.Fprintf(w, "  %-14s %-12s %10d %8d %8d %7d %7d %9d %8d %8d\n",
				r.FTLName, r.Workload, rr.Reads, rr.RetriedReads, rr.Uncorrectable,
				rr.UncorrectableReads, rr.ScrubReads, rr.RefreshedBlocks, rr.ECCRebuilds, rr.RetiredBlocks)
			if assertRel && (rr.Reads == 0 || rr.RetriedReads == 0 || rr.Uncorrectable != 0) {
				relFailures++
				fmt.Fprintf(w, "  ^ FAIL: want reads > 0, retried > 0, uncorrectable == 0\n")
			}
		}
	}
	if assertRel && len(relRuns) == 0 {
		fmt.Fprintf(w, "\nreliability assertion FAILED: the dump carries no reliability-modelled runs\n")
		relFailures++
	}
	if len(d.shards) > 0 {
		fmt.Fprintf(w, "\nshard planner efficiency:\n")
		fmt.Fprintf(w, "  %-24s %7s %8s %8s %8s %14s %8s %s\n",
			"path", "share", "epochs", "sharded", "serial", "preruns(cp)", "trims", "fallbacks R1/R2/R4/R5/Rp/Rq/trim/other")
		for _, e := range d.shards {
			r := e.rep
			fb := r.Fallbacks
			path := e.path
			if path == "" {
				path = "(top)"
			}
			fmt.Fprintf(w, "  %-24s %6.1f%% %8d %8d %8d %8d(%4d) %8d %d/%d/%d/%d/%d/%d/%d/%d\n",
				path, 100*r.ShardedShare(), r.Epochs, r.ShardedOps, r.SerialOps,
				r.GCPreRuns, r.GCPreRunCopies, r.ShardedTrims,
				fb.R1, fb.R2, fb.R4, fb.R5, fb.Rp, fb.Rq, fb.Trim, fb.Other)
		}
	}
	if reg != nil {
		fmt.Fprintf(w, "\nblame decomposition (µs):\n")
		names := make([]string, 0, len(reg.Counters))
		for n := range reg.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "  %-28s %12d\n", n, reg.Counters[n])
		}
		hnames := make([]string, 0, len(reg.Histograms))
		for n := range reg.Histograms {
			hnames = append(hnames, n)
		}
		sort.Strings(hnames)
		if len(hnames) > 0 {
			fmt.Fprintf(w, "\nhistograms (count / p50 / p99 / max, µs):\n")
			for _, n := range hnames {
				h := reg.Histograms[n]
				fmt.Fprintf(w, "  %-28s %10d %9d %9d %9d\n", n, h.Count, h.P50, h.P99, h.Max)
			}
		}
	}
	if relFailures > 0 {
		fmt.Fprintf(w, "\nreliability assertion: %d run(s) failed\n", relFailures)
		return 1, nil
	}
	if assertRel {
		fmt.Fprintf(w, "\nreliability assertion: %d run(s) OK\n", len(relRuns))
	}
	return 0, nil
}

// deltaPct is the relative change new vs old in percent; +Inf marks a value
// appearing from zero (always beyond any threshold).
func deltaPct(old, new float64) float64 {
	if old == new {
		return 0
	}
	if old == 0 {
		return math.Inf(1)
	}
	return 100 * (new - old) / old
}

func fmtDelta(d float64) string {
	if math.IsInf(d, 1) {
		return "    +inf"
	}
	return fmt.Sprintf("%+7.2f%%", d)
}

// compare joins two dumps run for run (by JSON path) and gates on the
// write-ack p99 and WAF deltas. Runs present in only one dump are listed but
// do not gate. Returns the process exit code.
func compare(w io.Writer, oldFile, newFile string, p99Thresh, wafThresh float64) (int, error) {
	oldDump, err := loadDump(oldFile)
	if err != nil {
		return 2, err
	}
	newDump, err := loadDump(newFile)
	if err != nil {
		return 2, err
	}
	// Refuse to join dumps produced with different intra-run parallelism:
	// results are worker-count independent by contract, but wall-clock and
	// throughput figures are not, so a silent join would gate on noise.
	if !sameShardWorkers(oldDump.shardWorkers, newDump.shardWorkers) {
		return 2, fmt.Errorf("shard-worker mismatch: %s ran shard_workers={%s}, %s ran shard_workers={%s}; re-run one side or compare like with like",
			oldFile, shardWorkersLabel(oldDump.shardWorkers), newFile, shardWorkersLabel(newDump.shardWorkers))
	}
	oldRuns, newRuns := oldDump.runs, newDump.runs
	oldBy := make(map[string]ssd.RunResult, len(oldRuns))
	for _, e := range oldRuns {
		oldBy[e.path] = e.run
	}
	newBy := make(map[string]ssd.RunResult, len(newRuns))
	for _, e := range newRuns {
		newBy[e.path] = e.run
	}
	paths := make([]string, 0, len(oldBy)+len(newBy))
	for p := range oldBy {
		paths = append(paths, p)
	}
	for p := range newBy {
		if _, ok := oldBy[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	fmt.Fprintf(w, "flexstat compare: %s -> %s\n\n", oldFile, newFile)
	fmt.Fprintf(w, "%-14s %-12s %10s %10s %8s %8s %8s %8s\n",
		"scheme", "workload", "old p99", "new p99", "Δp99", "old WAF", "new WAF", "ΔWAF")
	matched, failed := 0, 0
	maxP99, maxWAF := 0.0, 0.0
	for _, p := range paths {
		o, inOld := oldBy[p]
		n, inNew := newBy[p]
		switch {
		case !inNew:
			fmt.Fprintf(w, "%-14s %-12s  (only in %s)\n", o.FTLName, o.Workload, oldFile)
			continue
		case !inOld:
			fmt.Fprintf(w, "%-14s %-12s  (only in %s)\n", n.FTLName, n.Workload, newFile)
			continue
		}
		matched++
		dp99 := deltaPct(o.Latency.WriteAck.P99, n.Latency.WriteAck.P99)
		dwaf := deltaPct(o.WAF, n.WAF)
		if math.Abs(dp99) > maxP99 {
			maxP99 = math.Abs(dp99)
		}
		if math.Abs(dwaf) > maxWAF {
			maxWAF = math.Abs(dwaf)
		}
		mark := ""
		if math.Abs(dp99) > p99Thresh || math.Abs(dwaf) > wafThresh {
			failed++
			mark = "  << FAIL"
		}
		fmt.Fprintf(w, "%-14s %-12s %10.1f %10.1f %s %8.3f %8.3f %s%s\n",
			n.FTLName, n.Workload,
			o.Latency.WriteAck.P99, n.Latency.WriteAck.P99, fmtDelta(dp99),
			o.WAF, n.WAF, fmtDelta(dwaf), mark)
	}
	// Shard planner efficiency deltas, joined by path. Non-gating: the share
	// moves with planner admission width, not with simulated performance.
	if len(oldDump.shards) > 0 || len(newDump.shards) > 0 {
		oldSh := make(map[string]ssd.ShardReport, len(oldDump.shards))
		for _, e := range oldDump.shards {
			oldSh[e.path] = e.rep
		}
		newSh := make(map[string]ssd.ShardReport, len(newDump.shards))
		for _, e := range newDump.shards {
			newSh[e.path] = e.rep
		}
		shPaths := make([]string, 0, len(oldSh)+len(newSh))
		for p := range oldSh {
			shPaths = append(shPaths, p)
		}
		for p := range newSh {
			if _, ok := oldSh[p]; !ok {
				shPaths = append(shPaths, p)
			}
		}
		sort.Strings(shPaths)
		fmt.Fprintf(w, "\nshard planner share (non-gating):\n")
		fmt.Fprintf(w, "  %-24s %10s %10s %8s\n", "path", "old share", "new share", "Δshare")
		for _, p := range shPaths {
			o, inOld := oldSh[p]
			n, inNew := newSh[p]
			label := p
			if label == "" {
				label = "(top)"
			}
			switch {
			case !inNew:
				fmt.Fprintf(w, "  %-24s %9.1f%% %10s\n", label, 100*o.ShardedShare(), "(gone)")
			case !inOld:
				fmt.Fprintf(w, "  %-24s %10s %9.1f%%\n", label, "(new)", 100*n.ShardedShare())
			default:
				fmt.Fprintf(w, "  %-24s %9.1f%% %9.1f%% %+7.1fpp\n",
					label, 100*o.ShardedShare(), 100*n.ShardedShare(),
					100*(n.ShardedShare()-o.ShardedShare()))
			}
		}
	}
	// Wear-spread deltas, joined by path. Non-gating: wear imbalance is a
	// lifetime signal the placement axis moves deliberately, not a
	// regression gate.
	wearPaths := make([]string, 0, len(paths))
	for _, p := range paths {
		if oldBy[p].WearSpread > 0 || newBy[p].WearSpread > 0 {
			wearPaths = append(wearPaths, p)
		}
	}
	if len(wearPaths) > 0 {
		fmt.Fprintf(w, "\nwear spread (non-gating):\n")
		fmt.Fprintf(w, "  %-14s %-12s %9s %9s %8s\n", "scheme", "workload", "old wear", "new wear", "Δwear")
		for _, p := range wearPaths {
			o, inOld := oldBy[p]
			n, inNew := newBy[p]
			switch {
			case !inNew:
				fmt.Fprintf(w, "  %-14s %-12s %9.3f %9s\n", o.FTLName, o.Workload, o.WearSpread, "(gone)")
			case !inOld:
				fmt.Fprintf(w, "  %-14s %-12s %9s %9.3f\n", n.FTLName, n.Workload, "(new)", n.WearSpread)
			default:
				fmt.Fprintf(w, "  %-14s %-12s %9.3f %9.3f %s\n",
					n.FTLName, n.Workload, o.WearSpread, n.WearSpread,
					fmtDelta(deltaPct(o.WearSpread, n.WearSpread)))
			}
		}
	}
	verdict := "OK"
	if failed > 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "\n%d run(s) compared, %d beyond thresholds (|Δp99| <= %g%%, |ΔWAF| <= %g%%): %s\n",
		matched, failed, p99Thresh, wafThresh, verdict)
	if matched == 0 {
		fmt.Fprintln(w, "warning: no runs matched between the two dumps")
	}
	if failed > 0 {
		return 1, nil
	}
	return 0, nil
}
