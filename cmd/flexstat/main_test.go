package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestReportGolden pins the report format: any change to the table layout
// must update the golden deliberately.
func TestReportGolden(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"report", "testdata/run_a.json"}, &out, &errw)
	if code != 0 {
		t.Fatalf("report exit=%d stderr=%s", code, errw.String())
	}
	checkGolden(t, "report_a.golden", out.Bytes())
}

// TestCompareIdentical is the CI smoke contract: a dump compared with itself
// reports zero delta on every run and exits 0.
func TestCompareIdentical(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"compare", "testdata/run_a.json", "testdata/run_a.json"}, &out, &errw)
	if code != 0 {
		t.Fatalf("identical compare exit=%d stderr=%s\n%s", code, errw.String(), out.String())
	}
	checkGolden(t, "compare_identical.golden", out.Bytes())
	if bytes.Contains(out.Bytes(), []byte("FAIL")) {
		t.Errorf("identical compare reported FAIL:\n%s", out.String())
	}
}

// TestCompareRegression: run_b regresses flexFTL write-ack p99 by 20% and
// WAF by 8%, past the default 10%/5% thresholds — compare must exit 1 and
// mark the offending run.
func TestCompareRegression(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"compare", "testdata/run_a.json", "testdata/run_b.json"}, &out, &errw)
	if code != 1 {
		t.Fatalf("regressed compare exit=%d, want 1\n%s", code, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("<< FAIL")) {
		t.Errorf("regressed run not marked FAIL:\n%s", out.String())
	}
	checkGolden(t, "compare_regression.golden", out.Bytes())
}

// TestCompareLooseThresholds: the same regression passes when the caller
// widens the gates.
func TestCompareLooseThresholds(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"compare", "-p99", "25", "-waf", "10", "testdata/run_a.json", "testdata/run_b.json"}, &out, &errw)
	if code != 0 {
		t.Fatalf("loose-threshold compare exit=%d, want 0\n%s", code, out.String())
	}
}

func TestUsageAndBadInput(t *testing.T) {
	cases := [][]string{
		nil,
		{"report"},
		{"report", "testdata/definitely-missing.json"},
		{"compare", "onlyone.json"},
		{"frobnicate"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := realMain(args, &out, &errw); code != 2 {
			t.Errorf("realMain(%q) exit=%d, want 2", args, code)
		}
	}
}

// TestCollectFindsNestedRuns checks the walk descends arrays and objects and
// keys each run by its JSON path.
func TestCollectFindsNestedRuns(t *testing.T) {
	d, err := loadDump("testdata/run_a.json")
	if err != nil {
		t.Fatal(err)
	}
	runs, reg := d.runs, d.reg
	if len(runs) != 2 {
		t.Fatalf("found %d runs, want 2", len(runs))
	}
	if runs[0].path != "table1/0" || runs[1].path != "table1/1" {
		t.Errorf("paths = %q, %q", runs[0].path, runs[1].path)
	}
	if runs[0].run.FTLName != "pageFTL" || runs[1].run.FTLName != "flexFTL" {
		t.Errorf("schemes = %q, %q", runs[0].run.FTLName, runs[1].run.FTLName)
	}
	if reg == nil {
		t.Fatal("registry snapshot not found")
	}
	if reg.Counters["blame.gc_us"] != 184230 {
		t.Errorf("blame.gc_us = %d", reg.Counters["blame.gc_us"])
	}
}

// TestCompareShardWorkerMismatch: dumps produced with different intra-run
// parallelism must not be silently joined — compare refuses with exit 2.
// run_a carries no shard_workers stamp (pre-sharding dump, reads as 1);
// run_a_sharded is the same dump stamped shard_workers=4.
func TestCompareShardWorkerMismatch(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"compare", "testdata/run_a.json", "testdata/run_a_sharded.json"}, &out, &errw)
	if code != 2 {
		t.Fatalf("mismatched-parallelism compare exit=%d, want 2\n%s", code, out.String())
	}
	if !bytes.Contains(errw.Bytes(), []byte("shard-worker mismatch")) {
		t.Errorf("stderr missing mismatch diagnosis: %s", errw.String())
	}
	// Equal stamps on both sides still compare fine.
	out.Reset()
	errw.Reset()
	if code := realMain([]string{"compare", "testdata/run_a_sharded.json", "testdata/run_a_sharded.json"}, &out, &errw); code != 0 {
		t.Fatalf("matching sharded compare exit=%d stderr=%s", code, errw.String())
	}
}
