// Command flextrace generates, inspects and converts workload traces:
//
//	flextrace gen -workload Varmail -requests 100000 -o varmail.bin
//	flextrace gen -workload OLTP -format csv -o oltp.csv
//	flextrace stat varmail.bin
//	flextrace convert varmail.bin varmail.csv
//
// Binary traces use the compact fxt1 format (21 bytes/record); CSV traces
// are "arrival_us,op,page,pages" with a header, importable from external
// sources.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flexftl/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flextrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  flextrace gen -workload <name> [-requests N] [-space PAGES] [-seed S] [-format bin|csv] -o FILE
  flextrace stat FILE
  flextrace convert SRC DST`)
}

func findProfile(name string) (workload.Profile, error) {
	for _, p := range workload.All() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return workload.Profile{}, fmt.Errorf("unknown workload %q (have OLTP, NTRX, Webserver, Varmail, Fileserver)", name)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		wlName   = fs.String("workload", "Varmail", "workload profile")
		requests = fs.Int("requests", 100000, "requests to generate")
		space    = fs.Int64("space", 1<<20, "logical space in pages")
		seed     = fs.Uint64("seed", 42, "generator seed")
		format   = fs.String("format", "", "bin or csv (default: by file extension)")
		out      = fs.String("o", "", "output file (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	prof, err := findProfile(*wlName)
	if err != nil {
		return err
	}
	gen, err := workload.New(prof, *space, *requests, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	var n int
	if formatOf(*format, *out) == "csv" {
		n, err = workload.WriteCSV(f, gen)
	} else {
		n, err = workload.WriteBinary(f, gen)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d %s requests to %s\n", n, prof.Name, *out)
	return nil
}

func formatOf(explicit, path string) string {
	if explicit != "" {
		return explicit
	}
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		return "csv"
	}
	return "bin"
}

// open returns a replay generator for a trace file of either format.
func open(path string) (workload.Generator, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	name := filepath.Base(path)
	if formatOf("", path) == "csv" {
		gen, err := workload.NewCSVReplay(f, name)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return gen, f.Close, nil
	}
	gen, err := workload.NewBinaryReplay(f, name)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return gen, f.Close, nil
}

func cmdStat(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stat: exactly one trace file expected")
	}
	gen, closer, err := open(args[0])
	if err != nil {
		return err
	}
	defer closer()
	fmt.Printf("trace      : %s\n%s\n", args[0], workload.Summarize(gen))
	return nil
}

func cmdConvert(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("convert: SRC and DST expected")
	}
	gen, closer, err := open(args[0])
	if err != nil {
		return err
	}
	defer closer()
	dst, err := os.Create(args[1])
	if err != nil {
		return err
	}
	var n int
	if formatOf("", args[1]) == "csv" {
		n, err = workload.WriteCSV(dst, gen)
	} else {
		n, err = workload.WriteBinary(dst, gen)
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("converted %d requests: %s -> %s\n", n, args[0], args[1])
	return nil
}
