package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenStatConvert(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "w.bin")
	csv := filepath.Join(dir, "w.csv")

	if err := cmdGen([]string{"-workload", "NTRX", "-requests", "500", "-o", bin}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStat([]string{bin}); err != nil {
		t.Fatal(err)
	}
	if err := cmdConvert([]string{bin, csv}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStat([]string{csv}); err != nil {
		t.Fatal(err)
	}
	// Round-trip back to binary.
	bin2 := filepath.Join(dir, "w2.bin")
	if err := cmdConvert([]string{csv, bin2}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(bin2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("binary -> csv -> binary round trip not identical")
	}
}

func TestGenRequiresOutput(t *testing.T) {
	if err := cmdGen([]string{"-workload", "OLTP"}); err == nil {
		t.Error("missing -o accepted")
	}
}

func TestGenUnknownWorkload(t *testing.T) {
	if err := cmdGen([]string{"-workload", "nope", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestStatMissingFile(t *testing.T) {
	if err := cmdStat([]string{"/does/not/exist"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdStat(nil); err == nil {
		t.Error("no args accepted")
	}
}

func TestConvertArity(t *testing.T) {
	if err := cmdConvert([]string{"one"}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestFormatOf(t *testing.T) {
	if formatOf("", "x.csv") != "csv" || formatOf("", "x.bin") != "bin" ||
		formatOf("csv", "x.bin") != "csv" {
		t.Error("format detection wrong")
	}
}
