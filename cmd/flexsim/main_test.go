package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmall(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "flexFTL", "Varmail", 3000, 7, false, "", "", "greedy", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"flexFTL", "IOPS", "erases", "Varmail"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownFTL(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nopeFTL", "Varmail", 100, 1, false, "", "", "greedy", false); err == nil {
		t.Error("unknown FTL accepted")
	}
}

func TestRunUnknownGCPolicy(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "pageFTL", "OLTP", 100, 1, false, "", "", "nope", false); err == nil {
		t.Error("unknown GC policy accepted")
	}
}

func TestRunCostBenefitAndPredictive(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "flexFTL", "OLTP", 1000, 1, false, "", "", "costbenefit", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "pageFTL", "nope", 100, 1, false, "", "", "greedy", false); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestTraceDumpAndReplay: -trace writes a CSV, -replay reproduces the exact
// run from it.
func TestTraceDumpAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.csv")
	var a strings.Builder
	if err := run(&a, "pageFTL", "OLTP", 2000, 3, false, trace, "", "greedy", false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var b strings.Builder
	if err := run(&b, "pageFTL", "", 0, 0, false, "", trace, "greedy", false); err != nil {
		t.Fatal(err)
	}
	pick := func(out, key string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, key) {
				return line
			}
		}
		return ""
	}
	for _, key := range []string{"IOPS", "programs", "erases"} {
		la, lb := pick(a.String(), key), pick(b.String(), key)
		if la == "" || la != lb {
			t.Errorf("replay diverged on %q:\n gen   : %s\n replay: %s", key, la, lb)
		}
	}
}
