package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunSmall(t *testing.T) {
	var sb strings.Builder
	o := options{FTL: "flexFTL", Workload: "Varmail", Requests: 3000, Seed: 7, GCPolicy: "greedy"}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"flexFTL", "IOPS", "erases", "Varmail"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownFTL(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{FTL: "nopeFTL", Workload: "Varmail", Requests: 100, Seed: 1, GCPolicy: "greedy"}); err == nil {
		t.Error("unknown FTL accepted")
	}
}

func TestRunUnknownGCPolicy(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{FTL: "pageFTL", Workload: "OLTP", Requests: 100, Seed: 1, GCPolicy: "nope"}); err == nil {
		t.Error("unknown GC policy accepted")
	}
}

func TestRunCostBenefitAndPredictive(t *testing.T) {
	var sb strings.Builder
	o := options{FTL: "flexFTL", Workload: "OLTP", Requests: 1000, Seed: 1, GCPolicy: "costbenefit", Predictive: true}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{FTL: "pageFTL", Workload: "nope", Requests: 100, Seed: 1, GCPolicy: "greedy"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestWorkloadDumpAndReplay: -dump-workload writes a CSV, -replay reproduces
// the exact run from it.
func TestWorkloadDumpAndReplay(t *testing.T) {
	dir := t.TempDir()
	dump := filepath.Join(dir, "t.csv")
	var a strings.Builder
	if err := run(&a, options{FTL: "pageFTL", Workload: "OLTP", Requests: 2000, Seed: 3, GCPolicy: "greedy", DumpWorkload: dump}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dump); err != nil {
		t.Fatalf("workload dump not written: %v", err)
	}
	var b strings.Builder
	if err := run(&b, options{FTL: "pageFTL", GCPolicy: "greedy", Replay: dump}); err != nil {
		t.Fatal(err)
	}
	pick := func(out, key string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, key) {
				return line
			}
		}
		return ""
	}
	for _, key := range []string{"IOPS", "programs", "erases"} {
		la, lb := pick(a.String(), key), pick(b.String(), key)
		if la == "" || la != lb {
			t.Errorf("replay diverged on %q:\n gen   : %s\n replay: %s", key, la, lb)
		}
	}
}

// TestRunWithChromeTrace: -trace produces a loadable Chrome trace and the
// sampled series CSV carries the paper's internal-state columns.
func TestRunWithChromeTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.json")
	samples := filepath.Join(dir, "series.csv")
	var sb strings.Builder
	o := options{
		FTL: "flexFTL", Workload: "Varmail", Requests: 2000, Seed: 11, GCPolicy: "greedy",
		Trace: trace, TraceFormat: "chrome", Sample: 5 * time.Millisecond, SampleOut: samples,
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
	csv, err := os.ReadFile(samples)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(csv), "\n", 2)[0]
	for _, col := range []string{"t_us", "u", "q", "sbq_depth", "free_blocks"} {
		if !strings.Contains(header, col) {
			t.Errorf("sample CSV header %q missing column %q", header, col)
		}
	}
	if !strings.Contains(sb.String(), "trace    : wrote") {
		t.Errorf("run output missing trace summary:\n%s", sb.String())
	}
}

// TestRunWithJSONLTrace: the jsonl format emits one JSON object per line.
func TestRunWithJSONLTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	var sb strings.Builder
	o := options{
		FTL: "pageFTL", Workload: "OLTP", Requests: 500, Seed: 2, GCPolicy: "greedy",
		Trace: trace, TraceFormat: "jsonl",
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 {
		t.Fatal("jsonl trace empty")
	}
	for i, line := range lines[:min(len(lines), 50)] {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
	}
}

// TestRunMetricsDump: -metrics writes a flexstat-readable dump carrying the
// run result, the runinfo scheme stamp, and (with tracing on) the registry.
func TestRunMetricsDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var sb strings.Builder
	o := options{
		FTL: "flexFTL", Workload: "Varmail", Requests: 2000, Seed: 5, GCPolicy: "greedy",
		Metrics: path, Sample: 5 * time.Millisecond,
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Single struct {
			FTLName  string
			Workload string
			WAF      float64
			Latency  struct {
				WriteAck struct{ Count int64 }
			}
		} `json:"single"`
		RunInfo map[string]struct {
			Schemes []string `json:"schemes"`
		} `json:"runinfo"`
		Registry *struct {
			Counters map[string]int64
		} `json:"registry"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics dump not valid JSON: %v", err)
	}
	if doc.Single.FTLName != "flexFTL" || doc.Single.Workload != "Varmail" {
		t.Errorf("run result = %s/%s", doc.Single.FTLName, doc.Single.Workload)
	}
	if doc.Single.WAF < 1 {
		t.Errorf("WAF = %v, want >= 1", doc.Single.WAF)
	}
	if doc.Single.Latency.WriteAck.Count == 0 {
		t.Error("write-ack percentile count is zero")
	}
	if got := doc.RunInfo["single"].Schemes; len(got) != 1 || got[0] != "flexFTL" {
		t.Errorf("runinfo schemes = %v", got)
	}
	if doc.Registry == nil {
		t.Fatal("registry snapshot missing despite sampling being on")
	}
	if _, ok := doc.Registry.Counters["blame.gc_us"]; !ok {
		t.Errorf("registry counters missing blame.gc_us: %v", doc.Registry.Counters)
	}
	if !strings.Contains(sb.String(), "latency  : write-ack") {
		t.Errorf("run output missing latency line:\n%s", sb.String())
	}
}

// TestRunMetricsDumpNoTracing: without any tracing flag the dump carries no
// registry block but still has the run result.
func TestRunMetricsDumpNoTracing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var sb strings.Builder
	o := options{FTL: "pageFTL", Workload: "OLTP", Requests: 500, Seed: 2, GCPolicy: "greedy", Metrics: path}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["registry"]; ok {
		t.Error("registry block present without tracing")
	}
	if _, ok := doc["single"]; !ok {
		t.Error("single run result missing")
	}
}

// TestServeAfterRequiresDebugAddr: -serve-after alone is a usage error.
func TestServeAfterRequiresDebugAddr(t *testing.T) {
	var sb strings.Builder
	o := options{FTL: "pageFTL", Workload: "OLTP", Requests: 100, Seed: 1, GCPolicy: "greedy", ServeAfter: true}
	if err := run(&sb, o); err == nil {
		t.Error("-serve-after without -debug-addr accepted")
	}
}

// TestServeAfterBlocksUntilSignal: with -serve-after the run finishes, then
// waits on the (stubbed) signal hook before returning.
func TestServeAfterBlocksUntilSignal(t *testing.T) {
	waited := false
	prev := waitForSignal
	waitForSignal = func() { waited = true }
	defer func() { waitForSignal = prev }()
	var sb strings.Builder
	o := options{
		FTL: "pageFTL", Workload: "OLTP", Requests: 100, Seed: 1, GCPolicy: "greedy",
		DebugAddr: "127.0.0.1:0", ServeAfter: true,
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	if !waited {
		t.Error("run returned without waiting for the signal hook")
	}
	if !strings.Contains(sb.String(), "until interrupted") {
		t.Errorf("run output missing serve-after notice:\n%s", sb.String())
	}
}

func TestRunUnknownTraceFormat(t *testing.T) {
	var sb strings.Builder
	o := options{
		FTL: "pageFTL", Workload: "OLTP", Requests: 100, Seed: 1, GCPolicy: "greedy",
		Trace: filepath.Join(t.TempDir(), "x"), TraceFormat: "xml",
	}
	if err := run(&sb, o); err == nil {
		t.Error("unknown trace format accepted")
	}
}
