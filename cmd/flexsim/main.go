// Command flexsim runs one FTL against one workload and reports the
// measurements:
//
//	flexsim -ftl flexFTL -workload Varmail -requests 100000
//	flexsim -ftl pageFTL -workload NTRX -trace out.csv   # also dump the trace
//	flexsim -ftl flexFTL -replay out.csv                 # replay a trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"flexftl/internal/core"
	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/ftl/pageftl"
	"flexftl/internal/ftl/parityftl"
	"flexftl/internal/ftl/rtfftl"
	"flexftl/internal/nand"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

func main() {
	var (
		ftlName  = flag.String("ftl", "flexFTL", "FTL scheme: pageFTL|parityFTL|rtfFTL|flexFTL")
		wlName   = flag.String("workload", "Varmail", "workload: OLTP|NTRX|Webserver|Varmail|Fileserver")
		requests = flag.Int("requests", 100000, "host requests")
		seed     = flag.Uint64("seed", 42, "workload seed")
		full     = flag.Bool("full", false, "use the paper's 16 GB geometry")
		trace    = flag.String("trace", "", "write the generated workload as CSV to this file")
		replay   = flag.String("replay", "", "replay a CSV trace file instead of generating")
		gcPolicy = flag.String("gc", "greedy", "GC victim policy: greedy|costbenefit")
		predict  = flag.Bool("predictive-bgc", false, "enable the Section 6 future-write predictor (flexFTL only)")
	)
	flag.Parse()
	if err := run(os.Stdout, *ftlName, *wlName, *requests, *seed, *full, *trace, *replay, *gcPolicy, *predict); err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		os.Exit(1)
	}
}

// buildFTL extends experiments.BuildFTL with the CLI-only policy knobs.
func buildFTL(name string, g nand.Geometry, gcPolicy string, predictive bool) (ftl.FTL, error) {
	cfg := ftl.DefaultConfig()
	switch gcPolicy {
	case "greedy":
	case "costbenefit":
		cfg.GC = ftl.GCCostBenefit
	default:
		return nil, fmt.Errorf("unknown GC policy %q (greedy|costbenefit)", gcPolicy)
	}
	rules := core.FPS
	if name == "flexFTL" {
		rules = core.RPS
	}
	dev, err := nand.NewDevice(nand.Config{Geometry: g, Timing: nand.DefaultTiming(), Rules: rules})
	if err != nil {
		return nil, err
	}
	switch name {
	case "pageFTL":
		return pageftl.New(dev, cfg)
	case "parityFTL":
		return parityftl.New(dev, cfg)
	case "rtfFTL":
		return rtfftl.New(dev, cfg)
	case "flexFTL":
		params := flexftl.DefaultParams()
		params.PredictiveBGC = predictive
		return flexftl.New(dev, cfg, params)
	default:
		return nil, fmt.Errorf("unknown FTL %q", name)
	}
}

func findProfile(name string) (workload.Profile, error) {
	for _, p := range workload.All() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return workload.Profile{}, fmt.Errorf("unknown workload %q", name)
}

func run(w io.Writer, ftlName, wlName string, requests int, seed uint64, full bool, trace, replay, gcPolicy string, predictive bool) error {
	geometry := experiments.EvalGeometry()
	if full {
		geometry = nand.DefaultGeometry()
	}
	f, err := buildFTL(ftlName, geometry, gcPolicy, predictive)
	if err != nil {
		return err
	}
	sys, err := ssd.New(f, ssd.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "device   : %s (%s rules)\n", geometry, f.Device().Rules().Name())
	fmt.Fprintf(w, "ftl      : %s, logical space %d pages\n", f.Name(), f.LogicalPages())

	var gen workload.Generator
	switch {
	case replay != "":
		file, err := os.Open(replay)
		if err != nil {
			return err
		}
		defer file.Close()
		gen, err = workload.NewCSVReplay(file, replay)
		if err != nil {
			return err
		}
	default:
		prof, err := findProfile(wlName)
		if err != nil {
			return err
		}
		gen, err = workload.New(prof, f.LogicalPages(), requests, seed)
		if err != nil {
			return err
		}
		if trace != "" {
			file, err := os.Create(trace)
			if err != nil {
				return err
			}
			n, err := workload.WriteCSV(file, gen)
			if cerr := file.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "trace    : wrote %d requests to %s\n", n, trace)
			// Regenerate for the run itself (the writer consumed gen).
			gen, err = workload.New(prof, f.LogicalPages(), requests, seed)
			if err != nil {
				return err
			}
		}
	}

	if _, err := sys.Prefill(); err != nil {
		return err
	}
	res, err := sys.Run(gen)
	if err != nil {
		return err
	}
	m := res.Metrics
	st := res.Stats
	fmt.Fprintf(w, "workload : %s, %d requests (%d reads / %d writes)\n",
		res.Workload, m.Requests, m.Reads, m.Writes)
	fmt.Fprintf(w, "IOPS     : %.0f (active %v, makespan %v)\n", m.IOPS, m.ActiveTime, m.Makespan)
	fmt.Fprintf(w, "write BW : mean %.1f MB/s, peak(p99) %.1f MB/s\n",
		m.MeanWriteBandwidthMBs, m.PeakWriteBandwidthMBs)
	fmt.Fprintf(w, "response : %s us\n", m.ResponseTime)
	fmt.Fprintf(w, "  reads  : %s us\n", m.ReadResponse)
	fmt.Fprintf(w, "  writes : %s us\n", m.WriteResponse)
	fmt.Fprintf(w, "programs : host %d (LSB %d / MSB %d), GC copies %d, backups %d, pads %d\n",
		st.HostWrites, st.HostWritesLSB, st.HostWritesMSB, st.GCCopies, st.BackupWrites, st.PadWrites)
	fmt.Fprintf(w, "erases   : %d (WA %.2f), GC: %d foreground / %d background\n",
		st.Erases, st.WriteAmplification(), st.ForegroundGCs, st.BackgroundGCs)
	return nil
}
