// Command flexsim runs one FTL against one workload and reports the
// measurements:
//
//	flexsim -ftl flexFTL -workload Varmail -requests 100000
//	flexsim -ftl flexFTL -trace run.json -sample 10ms       # Chrome trace + series
//	flexsim -ftl flexFTL -trace run.jsonl -trace-format jsonl
//	flexsim -ftl pageFTL -workload NTRX -dump-workload t.csv # dump the workload
//	flexsim -ftl flexFTL -replay t.csv                       # replay a dump
//	flexsim -ftl flexFTL -rel -rel-wear 6000                 # BER model + responses on a worn device
//
// A -trace file in the default chrome format loads directly in
// chrome://tracing or https://ui.perfetto.dev; see docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	_ "flexftl/internal/ftl/nflex" // registers the nflexTLC scheme
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// options bundles everything run needs; flags map onto it one to one.
type options struct {
	FTL           string
	Workload      string
	Requests      int
	Seed          uint64
	Full          bool
	GCPolicy      string
	Predictive    bool
	DumpWorkload  string        // write the generated workload as CSV
	Replay        string        // replay a CSV workload instead of generating
	Trace         string        // event-trace output file
	TraceFormat   string        // chrome|jsonl
	Sample        time.Duration // internal-state sampling cadence (0 = off)
	SampleOut     string        // sampled series CSV output file
	DebugAddr     string        // pprof/expvar HTTP listen address
	ServeAfter    bool          // keep the debug server up after the run ends
	Metrics       string        // structured run-result JSON output file
	ShardWorkers  int           // intra-run epoch-shard workers (<=1 = serial engine)
	HostQueues    int           // multi-queue host front-end (>1 splits the workload by channel)
	Rel           bool          // mount the BER model and the kernel's reliability responses
	RelSeed       uint64        // per-read hash seed of the BER model
	RelWear       int           // pre-wear every block this many P/E cycles before the run
	RelDetectOnly bool          // model on, kernel responses off (detect-only baseline)
}

// listSchemes prints every registered FTL scheme with its rule set and
// one-line description.
func listSchemes(w io.Writer) {
	for _, name := range ftl.Names() {
		spec, _ := ftl.Lookup(name)
		label := spec.Rules
		if spec.Hybrid {
			label += ", hybrid"
		}
		fmt.Fprintf(w, "%-18s %-12s %s\n", name, "("+label+")", spec.Description)
	}
}

func main() {
	var o options
	list := flag.Bool("list", false, "list registered FTL schemes and exit")
	flag.StringVar(&o.FTL, "ftl", "flexFTL", "FTL scheme: "+strings.Join(ftl.Names(), "|"))
	flag.StringVar(&o.Workload, "workload", "Varmail", "workload: OLTP|NTRX|Webserver|Varmail|Fileserver")
	flag.IntVar(&o.Requests, "requests", 100000, "host requests")
	flag.Uint64Var(&o.Seed, "seed", 42, "workload seed")
	flag.BoolVar(&o.Full, "full", false, "use the paper's 16 GB geometry")
	flag.StringVar(&o.GCPolicy, "gc", "greedy", "GC victim policy: greedy|costbenefit")
	flag.BoolVar(&o.Predictive, "predictive-bgc", false, "enable the Section 6 future-write predictor (flexFTL only)")
	flag.StringVar(&o.DumpWorkload, "dump-workload", "", "write the generated workload as CSV to this file")
	flag.StringVar(&o.Replay, "replay", "", "replay a CSV workload file instead of generating")
	flag.StringVar(&o.Trace, "trace", "", "write an event trace of the run to this file")
	flag.StringVar(&o.TraceFormat, "trace-format", "chrome", "event trace format: chrome|jsonl")
	flag.DurationVar(&o.Sample, "sample", 0, "sample internal state (u, q, queue depths) on this virtual-time cadence")
	flag.StringVar(&o.SampleOut, "sample-out", "", "write the sampled series as CSV to this file")
	flag.StringVar(&o.DebugAddr, "debug-addr", "", "serve net/http/pprof and expvar metrics on this address")
	flag.BoolVar(&o.ServeAfter, "serve-after", false, "keep the -debug-addr server running after the run until interrupted")
	flag.StringVar(&o.Metrics, "metrics", "", "write the run result (flexstat-readable JSON) to this file")
	flag.IntVar(&o.ShardWorkers, "shard-workers", 1, "intra-run epoch-shard workers; results are identical for any value (1 = serial engine)")
	flag.IntVar(&o.HostQueues, "host-queues", 1, "host queues; >1 splits a generated workload into per-queue generators over disjoint LPN ranges and prefetches them concurrently (results are identical for any value)")
	flag.BoolVar(&o.Rel, "rel", false, "mount the per-page BER model and the kernel's scrub/refresh/retire responses")
	flag.Uint64Var(&o.RelSeed, "rel-seed", 1, "BER model per-read hash seed (with -rel)")
	flag.IntVar(&o.RelWear, "rel-wear", 0, "pre-wear every block this many P/E cycles before the run (with -rel)")
	flag.BoolVar(&o.RelDetectOnly, "rel-detect-only", false, "with -rel: model the errors but disable the kernel's responses")
	flag.Parse()
	if *list {
		listSchemes(os.Stdout)
		return
	}
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		os.Exit(1)
	}
}

// buildFTL resolves the scheme through the ftl registry, layering the
// CLI-only policy knobs onto the build environment.
func buildFTL(o options, g nand.Geometry) (ftl.Host, error) {
	cfg := ftl.DefaultConfig()
	switch o.GCPolicy {
	case "greedy":
	case "costbenefit":
		cfg.GC = ftl.GCCostBenefit
	default:
		return nil, fmt.Errorf("unknown GC policy %q (greedy|costbenefit)", o.GCPolicy)
	}
	flex := ftl.DefaultFlexParams()
	flex.PredictiveBGC = o.Predictive
	env := ftl.BuildEnv{Geometry: g, Config: cfg, Flex: flex}
	if o.Rel {
		rc := rel.DefaultConfig(o.RelSeed)
		env.Reliability = &rc
		if !o.RelDetectOnly {
			env.Config.Reliability = ftl.DefaultRelPolicy()
		}
	}
	f, err := ftl.Build(o.FTL, env)
	if err != nil {
		return nil, err
	}
	if o.Rel && o.RelWear > 0 {
		mlc, ok := f.(ftl.FTL)
		if !ok {
			return nil, fmt.Errorf("-rel-wear needs an MLC scheme (device access), %q is not one", o.FTL)
		}
		dev := mlc.Device()
		dg := dev.Geometry()
		for chip := 0; chip < dg.Chips(); chip++ {
			for blk := 0; blk < dg.BlocksPerChip; blk++ {
				a := nand.BlockAddr{Chip: chip, Block: blk}
				for i := 0; i < o.RelWear; i++ {
					if _, err := dev.Erase(a, 0); err != nil {
						return nil, fmt.Errorf("pre-wear %v: %w", a, err)
					}
				}
			}
		}
	}
	return f, nil
}

func findProfile(name string) (workload.Profile, error) {
	for _, p := range workload.All() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	// The skewed placement-study workload is parameterized by its Zipf
	// theta: "zipf" (the default 0.99 skew) or "zipf-1.10" / "zipf:1.10".
	if lower := strings.ToLower(name); strings.HasPrefix(lower, "zipf") {
		theta := 0.99
		if rest := strings.TrimLeft(lower[len("zipf"):], ":-="); rest != "" {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return workload.Profile{}, fmt.Errorf("bad zipf theta in workload %q: %v", name, err)
			}
			theta = v
		}
		p := workload.ZipfProfile(theta)
		if err := p.Validate(); err != nil {
			return workload.Profile{}, err
		}
		return p, nil
	}
	return workload.Profile{}, fmt.Errorf("unknown workload %q (profiles: OLTP, NTRX, Webserver, Varmail, Fileserver, zipf[-THETA])", name)
}

// debugRegistry is the registry the -debug-addr expvar endpoint snapshots.
// expvar.Publish is process-global and rejects duplicate names, so the
// published Func reads through this variable and publishing happens once.
var (
	debugMu       sync.Mutex
	debugRegistry *obs.Registry
	debugOnce     sync.Once
)

// serveDebug exposes net/http/pprof (via its init side effect on
// http.DefaultServeMux) plus the simulator's metric registry under
// /debug/vars as "flexsim.metrics".
func serveDebug(addr string, reg *obs.Registry) {
	debugMu.Lock()
	debugRegistry = reg
	debugMu.Unlock()
	debugOnce.Do(func() {
		expvar.Publish("flexsim.metrics", expvar.Func(func() any {
			debugMu.Lock()
			r := debugRegistry
			debugMu.Unlock()
			return r.Snapshot()
		}))
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim: debug server:", err)
		}
	}()
}

// newRecorder assembles the observability stack the flags ask for. It
// returns a nil recorder (tracing fully disabled) when no flag wants one.
// The returned cleanup writes the sample CSV and closes the trace file.
func newRecorder(w io.Writer, o options) (*obs.Recorder, func() error, error) {
	if o.Trace == "" && o.Sample <= 0 && o.SampleOut == "" && o.DebugAddr == "" {
		return nil, func() error { return nil }, nil
	}

	var ro obs.Options
	var traceFile *os.File
	if o.Trace != "" {
		f, err := os.Create(o.Trace)
		if err != nil {
			return nil, nil, err
		}
		traceFile = f
		switch o.TraceFormat {
		case "chrome":
			ro.Sink = obs.NewChromeSink(f)
		case "jsonl":
			ro.Sink = obs.NewJSONLSink(f)
		default:
			f.Close()
			return nil, nil, fmt.Errorf("unknown trace format %q (chrome|jsonl)", o.TraceFormat)
		}
	}

	sample := o.Sample
	if sample <= 0 && o.SampleOut != "" {
		sample = 10 * time.Millisecond
	}
	if sample > 0 {
		ro.Sampler = obs.NewSampler(sim.Time(sample / time.Microsecond))
	}

	rec := obs.NewRecorder(ro)
	if o.DebugAddr != "" {
		serveDebug(o.DebugAddr, rec.Registry())
	}

	cleanup := func() error {
		err := rec.Close()
		if traceFile != nil {
			if cerr := traceFile.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				fmt.Fprintf(w, "trace    : wrote %d events to %s (%s format)\n",
					rec.Emitted(), o.Trace, o.TraceFormat)
			}
		}
		if o.SampleOut != "" && err == nil {
			f, serr := os.Create(o.SampleOut)
			if serr != nil {
				return serr
			}
			serr = rec.Sampler().WriteCSV(f)
			if cerr := f.Close(); serr == nil {
				serr = cerr
			}
			if serr != nil {
				return serr
			}
			fmt.Fprintf(w, "samples  : wrote %d rows (%s) to %s\n",
				len(rec.Sampler().Rows()), strings.Join(rec.Sampler().Names(), ","), o.SampleOut)
		}
		return err
	}
	return rec, cleanup, nil
}

// normShardWorkers maps every serial-engine setting (<=1) to 1, so dumps
// produced before and after the epoch-sharded engine compare as equal
// parallelism.
func normShardWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// writeMetrics dumps the run result (plus the registry snapshot when tracing
// is on) as the same nested-JSON shape flexbench -metrics emits, so flexstat
// report/compare reads either tool's output. Sharded runs additionally stamp
// the planner-effectiveness report as a top-level sibling (flexstat's walker
// never descends into the runinfo block, so it must not nest there).
func writeMetrics(path, scheme string, res ssd.RunResult, rec *obs.Recorder, wall time.Duration, o options, rep ssd.ShardReport) error {
	doc := map[string]any{
		"single": res,
		"runinfo": map[string]any{
			"single": map[string]any{
				"workers":       1,
				"shard_workers": normShardWorkers(o.ShardWorkers),
				"host_queues":   normShardWorkers(o.HostQueues),
				"wall_ms":       float64(wall) / float64(time.Millisecond),
				"schemes":       []string{scheme},
			},
		},
	}
	if normShardWorkers(o.ShardWorkers) > 1 {
		doc["shard_report"] = rep
	}
	if rec != nil {
		doc["registry"] = rec.Registry().Snapshot()
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// waitForSignal blocks until SIGINT/SIGTERM; a variable so tests can stub it.
var waitForSignal = func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	signal.Stop(ch)
}

func run(w io.Writer, o options) error {
	if o.ServeAfter && o.DebugAddr == "" {
		return fmt.Errorf("-serve-after requires -debug-addr")
	}
	start := time.Now()
	geometry := experiments.EvalGeometry()
	if o.Full {
		geometry = nand.DefaultGeometry()
	}
	f, err := buildFTL(o, geometry)
	if err != nil {
		return err
	}
	sys, err := ssd.New(f, ssd.DefaultConfig())
	if err != nil {
		return err
	}
	spec, _ := ftl.Lookup(o.FTL)
	if mlc, ok := f.(ftl.FTL); ok {
		fmt.Fprintf(w, "device   : %s (%s rules)\n", mlc.Device().Geometry(), spec.Rules)
	} else {
		fmt.Fprintf(w, "device   : scheme-owned (%s rules)\n", spec.Rules)
	}
	fmt.Fprintf(w, "ftl      : %s, logical space %d pages\n", f.Name(), f.LogicalPages())

	var gen workload.Generator
	var mqGens []workload.Generator // multi-queue front-end (nil = single stream)
	var mqName string
	switch {
	case o.Replay != "":
		if o.HostQueues > 1 {
			return fmt.Errorf("-host-queues needs a generated workload (a replayed trace has no profile to split)")
		}
		file, err := os.Open(o.Replay)
		if err != nil {
			return err
		}
		defer file.Close()
		gen, err = workload.NewCSVReplay(file, o.Replay)
		if err != nil {
			return err
		}
	case o.HostQueues > 1:
		prof, err := findProfile(o.Workload)
		if err != nil {
			return err
		}
		split := func() ([]workload.Generator, error) {
			return workload.SplitByChannel(prof, f.LogicalPages(), o.Requests, o.Seed, o.HostQueues)
		}
		mqGens, err = split()
		if err != nil {
			return err
		}
		mqName = prof.Name
		if o.DumpWorkload != "" {
			file, err := os.Create(o.DumpWorkload)
			if err != nil {
				return err
			}
			n, err := workload.WriteCSV(file, workload.MergeByArrival(mqName, mqGens...))
			if cerr := file.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "workload : wrote %d requests to %s\n", n, o.DumpWorkload)
			// Regenerate for the run itself (the writer consumed the queues).
			mqGens, err = split()
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "queues   : %d host queues over disjoint LPN ranges, merged by arrival\n", o.HostQueues)
	default:
		prof, err := findProfile(o.Workload)
		if err != nil {
			return err
		}
		gen, err = workload.New(prof, f.LogicalPages(), o.Requests, o.Seed)
		if err != nil {
			return err
		}
		if o.DumpWorkload != "" {
			file, err := os.Create(o.DumpWorkload)
			if err != nil {
				return err
			}
			n, err := workload.WriteCSV(file, gen)
			if cerr := file.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "workload : wrote %d requests to %s\n", n, o.DumpWorkload)
			// Regenerate for the run itself (the writer consumed gen).
			gen, err = workload.New(prof, f.LogicalPages(), o.Requests, o.Seed)
			if err != nil {
				return err
			}
		}
	}

	rec, finishObs, err := newRecorder(w, o)
	if err != nil {
		return err
	}

	if _, err := sys.Prefill(); err != nil {
		return err
	}
	// Attach after Prefill so traces and samples cover the measured run only.
	sys.SetRecorder(rec)
	var res ssd.RunResult
	if mqGens != nil {
		res, err = sys.RunShardedMQ(mqName, mqGens, o.ShardWorkers)
	} else {
		res, err = sys.RunSharded(gen, o.ShardWorkers)
	}
	if err != nil {
		return err
	}
	m := res.Metrics
	st := res.Stats
	fmt.Fprintf(w, "workload : %s, %d requests (%d reads / %d writes)\n",
		res.Workload, m.Requests, m.Reads, m.Writes)
	fmt.Fprintf(w, "IOPS     : %.0f (active %v, makespan %v)\n", m.IOPS, m.ActiveTime, m.Makespan)
	fmt.Fprintf(w, "write BW : mean %.1f MB/s, peak(p99) %.1f MB/s\n",
		m.MeanWriteBandwidthMBs, m.PeakWriteBandwidthMBs)
	fmt.Fprintf(w, "response : %s us\n", m.ResponseTime)
	fmt.Fprintf(w, "  reads  : %s us\n", m.ReadResponse)
	fmt.Fprintf(w, "  writes : %s us\n", m.WriteResponse)
	fmt.Fprintf(w, "programs : host %d (LSB %d / MSB %d), GC copies %d, backups %d, pads %d\n",
		st.HostWrites, st.HostWritesLSB, st.HostWritesMSB, st.GCCopies, st.BackupWrites, st.PadWrites)
	fmt.Fprintf(w, "erases   : %d (WA %.2f), GC: %d foreground / %d background\n",
		st.Erases, st.WriteAmplification(), st.ForegroundGCs, st.BackgroundGCs)
	lat := res.Latency
	fmt.Fprintf(w, "latency  : write-ack p50/p95/p99/p999 = %.1f/%.1f/%.1f/%.1f us, read p99 = %.1f us (WAF %.3f)\n",
		lat.WriteAck.P50, lat.WriteAck.P95, lat.WriteAck.P99, lat.WriteAck.P999, lat.Read.P99, res.WAF)
	if rr := res.Reliability; rr != nil {
		retryPct := 0.0
		if rr.Reads > 0 {
			retryPct = 100 * float64(rr.RetriedReads) / float64(rr.Reads)
		}
		fmt.Fprintf(w, "reliability: %d reads classified (%.2f%% retried, %d uncorrectable); scrubs %d, refreshed blocks %d, rebuilds %d, retired %d\n",
			rr.Reads, retryPct, rr.Uncorrectable,
			rr.ScrubReads, rr.RefreshedBlocks, rr.ECCRebuilds, rr.RetiredBlocks)
	}
	rep := sys.ShardReport()
	if normShardWorkers(o.ShardWorkers) > 1 {
		fb := rep.Fallbacks
		fmt.Fprintf(w, "shard    : %.1f%% sharded (%d epochs, %d GC pre-runs, %d trims; fallbacks R1=%d R2=%d R4=%d R5=%d Rq=%d trim=%d other=%d)\n",
			100*rep.ShardedShare(), rep.Epochs, rep.GCPreRuns, rep.ShardedTrims,
			fb.R1, fb.R2, fb.R4, fb.R5, fb.Rq, fb.Trim, fb.Other)
	}
	if o.Metrics != "" {
		if err := writeMetrics(o.Metrics, o.FTL, res, rec, time.Since(start), o, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics  : wrote run result to %s\n", o.Metrics)
	}
	if err := finishObs(); err != nil {
		return err
	}
	if o.ServeAfter {
		fmt.Fprintf(w, "debug    : serving pprof/expvar on %s until interrupted\n", o.DebugAddr)
		waitForSignal()
	}
	return nil
}
