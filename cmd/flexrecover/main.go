// Command flexrecover runs the randomized sudden-power-off campaign of
// internal/crash over the registry's FTL schemes: every trial drives a
// seeded workload into steady state, cuts power at a random operation
// boundary on a random chip, runs the scheme's reboot procedures, and
// verifies the power-cut invariants (acknowledged data survives or the loss
// is detected, parity reconstructs destroyed LSB pages, interrupted GC
// relocations roll back, block accounting balances).
//
// A failing trial prints a one-line reproducer; the exit status is 1 when
// any trial violates an invariant.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"flexftl/internal/crash"
	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/obs"

	// Register the TLC scheme so -list shows the whole registry (it is not
	// campaignable — its device model has no MLC destructive window — but
	// the listing should say so rather than omit it).
	_ "flexftl/internal/ftl/nflex"
)

func main() {
	var (
		schemes  = flag.String("ftl", "all", "comma-separated registry schemes, or \"all\"")
		trials   = flag.Int("trials", 100, "crash trials per scheme")
		seed     = flag.Uint64("seed", 1, "campaign master seed; trial i derives Split(seed, i+1)")
		start    = flag.Int("start", 0, "first trial index (rerun one failing trial with -start N -trials 1)")
		ops      = flag.Int("ops", 0, "post-prefill operation window the crash point is sampled from (0 = default)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); outcomes are identical at any value")
		full     = flag.Bool("full", false, "use the larger evaluation geometry instead of the small test geometry")
		sabotage = flag.String("sabotage", "none", "inject a deliberate fault: none, skip-recovery, corrupt-parity")
		list     = flag.Bool("list", false, "list campaignable schemes and exit")
	)
	flag.Parse()
	sab, err := parseSabotage(*sabotage)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexrecover:", err)
		os.Exit(2)
	}
	if *list {
		listSchemes(os.Stdout)
		return
	}
	var geometry nand.Geometry
	if *full {
		geometry = experiments.EvalGeometry()
	}
	failed, err := run(os.Stdout, runOpts{
		schemes:  *schemes,
		trials:   *trials,
		seed:     *seed,
		start:    *start,
		ops:      *ops,
		workers:  *workers,
		geometry: geometry,
		sabotage: sab,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexrecover:", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

func parseSabotage(s string) (crash.Sabotage, error) {
	switch s {
	case "none":
		return crash.SabotageNone, nil
	case "skip-recovery":
		return crash.SabotageSkipRecovery, nil
	case "corrupt-parity":
		return crash.SabotageCorruptParity, nil
	default:
		return 0, fmt.Errorf("unknown -sabotage %q (none, skip-recovery, corrupt-parity)", s)
	}
}

func listSchemes(w io.Writer) {
	for _, name := range ftl.Names() {
		spec, _ := ftl.Lookup(name)
		note := ""
		if !crash.Campaignable(name) {
			note = " (not campaignable: own device model)"
		}
		fmt.Fprintf(w, "%-18s backup=%-11s %s%s\n", name, spec.Backup, spec.Description, note)
	}
}

type runOpts struct {
	schemes  string
	trials   int
	seed     uint64
	start    int
	ops      int
	workers  int
	geometry nand.Geometry
	sabotage crash.Sabotage
}

// run executes the campaign per scheme and reports; it returns whether any
// trial violated an invariant.
func run(w io.Writer, o runOpts) (failed bool, err error) {
	names, err := resolveSchemes(o.schemes)
	if err != nil {
		return false, err
	}
	reg := obs.NewRegistry()
	for _, name := range names {
		cfg := crash.Config{
			Scheme:   name,
			Geometry: o.geometry,
			Ops:      o.ops,
			Trials:   o.trials,
			Seed:     o.seed,
			Start:    o.start,
			Workers:  o.workers,
			Sabotage: o.sabotage,
			Metrics:  reg,
		}
		rep, err := crash.Run(cfg)
		if err != nil {
			return failed, err
		}
		spec, _ := ftl.Lookup(name)
		fmt.Fprintf(w, "%-18s %4d trials  %3d cuts landed (%d during GC)  recovered %d  rolled back %d  dropped %d  violations %d\n",
			name+" ("+spec.Backup+")", rep.Trials, rep.Injected, rep.FromGC,
			rep.Recovered, rep.RolledBack, rep.Dropped, rep.Failed)
		if f, bad := rep.FirstFailure(); bad {
			failed = true
			fmt.Fprintf(w, "  FIRST FAILURE: trial %d (crash op %d, chip %d):\n", f.Trial, f.CrashOp, f.Chip)
			for _, v := range f.Violations {
				fmt.Fprintf(w, "    - %s\n", v)
			}
			fmt.Fprintf(w, "  reproduce: flexrecover %s\n", cfg.ReproArgs(f))
		}
	}
	printRecoveryCost(w, reg)
	return failed, nil
}

// resolveSchemes expands "all" to every campaignable registry scheme and
// validates explicit names.
func resolveSchemes(arg string) ([]string, error) {
	if arg == "all" {
		var names []string
		for _, name := range ftl.Names() {
			if crash.Campaignable(name) {
				names = append(names, name)
			}
		}
		return names, nil
	}
	var names []string
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := ftl.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown scheme %q (try -list)", name)
		}
		if !crash.Campaignable(name) {
			return nil, fmt.Errorf("scheme %q is not campaignable (own device model)", name)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no schemes selected")
	}
	return names, nil
}

// printRecoveryCost summarizes the reboot-time overhead across every trial
// that ran a recovery pass — the paper's Section 3.3 cost currency.
func printRecoveryCost(w io.Writer, reg *obs.Registry) {
	pages := reg.Histogram("crash.recovery_pages_read")
	if pages.Count() == 0 {
		return
	}
	us := reg.Histogram("crash.recovery_us")
	fmt.Fprintf(w, "recovery cost over %d recovering trials: pages read p50<=%d max<=%d, virtual time p50<=%dus max<=%dus\n",
		pages.Count(), pages.Quantile(0.5), pages.Max(), us.Quantile(0.5), us.Max())
}
