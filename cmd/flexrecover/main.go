// Command flexrecover demonstrates the Section 3.3 sudden-power-off story
// end to end: it drives flexFTL into its MSB phase, cuts power during an MSB
// program on every chip (destroying the paired LSB pages), runs the
// reboot-time recovery procedure, and verifies the lost data was rebuilt
// from the per-block parity pages.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flexftl/internal/core"
	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
)

func main() {
	var (
		full = flag.Bool("full", false, "use the paper's 16 GB geometry")
		seed = flag.Uint64("seed", 1, "reserved for future randomized crash points")
	)
	flag.Parse()
	_ = seed
	if err := run(os.Stdout, *full); err != nil {
		fmt.Fprintln(os.Stderr, "flexrecover:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, full bool) error {
	geometry := experiments.EvalGeometry()
	if full {
		geometry = nand.DefaultGeometry()
	}
	f, err := experiments.BuildFTL("flexFTL", geometry)
	if err != nil {
		return err
	}
	flex := f.(*flexftl.FTL)
	g := f.Device().Geometry()
	fmt.Fprintf(w, "device: %s, RPS rules, flexFTL with per-block parity backup\n", g)

	// Phase 1: fill fast blocks (high buffer utilization -> LSB writes).
	now := sim.Time(0)
	lpn := ftl.LPN(0)
	for i := 0; i < g.Chips()*g.LSBPagesPerBlock(); i++ {
		now, err = f.Write(lpn, now, 0.95)
		if err != nil {
			return err
		}
		lpn++
	}
	fmt.Fprintf(w, "phase 1: wrote %d LSB pages; every chip's fast block is full and its parity page saved\n", lpn)

	// Phase 2: low utilization pushes MSB writes — the destructive phase.
	msbStart := lpn
	for chip := 0; chip < g.Chips(); chip++ {
		for flex.SlowQueueLen(chip) > 0 && !msbInFlight(flex, chip) {
			now, err = f.Write(lpn, now, 0.01)
			if err != nil {
				return err
			}
			lpn++
		}
	}
	fmt.Fprintf(w, "phase 2: %d MSB writes issued; each chip now has an MSB program in flight\n", lpn-msbStart)

	// Power cut: every in-flight MSB program destroys its paired LSB page.
	lost := 0
	var lostLPNs []ftl.LPN
	for chip := 0; chip < g.Chips(); chip++ {
		blk := activeSlowBlock(flex, chip)
		if blk < 0 {
			continue
		}
		addr := nand.BlockAddr{Chip: chip, Block: blk}
		if f.Device().InjectPowerLoss(addr) {
			lost++
			wl := lastMSBWordLine(flex, chip)
			ppn := g.PPNOf(nand.PageAddr{BlockAddr: addr, Page: core.Page{WL: wl, Type: core.LSB}})
			if l, ok := flex.Map.LPNAt(ppn); ok {
				lostLPNs = append(lostLPNs, l)
			}
		}
	}
	fmt.Fprintf(w, "power cut! %d chips had MSB programs in flight; %d live LSB pages destroyed\n", lost, len(lostLPNs))
	for _, l := range lostLPNs {
		if _, err := f.Read(l, now); err == nil {
			return fmt.Errorf("LPN %d still readable after power cut", l)
		}
	}

	// Reboot: the recovery procedure of Figure 7(b).
	rep, err := flex.Recover(now)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recovery: read %d pages in %v (chips scan in parallel)\n", rep.PagesRead, rep.Duration())
	fmt.Fprintf(w, "recovery: reconstructed %d LSB pages from parity, dropped %d unacknowledged MSB writes\n",
		len(rep.Recovered), len(rep.Dropped))

	for _, l := range lostLPNs {
		if _, err := f.Read(l, rep.End); err != nil {
			return fmt.Errorf("LPN %d not recovered: %w", l, err)
		}
	}
	fmt.Fprintf(w, "verified: all %d lost pages read back correctly after recovery\n", len(lostLPNs))

	// The Section 3.3 estimate for reference.
	t := f.Device().Timing()
	est := sim.Time(g.Chips()*2*g.LSBPagesPerBlock()) * t.Read
	fmt.Fprintf(w, "paper's serial-read estimate for this geometry: %v of page reads (%d chips x 2 blocks x %d pages x %v)\n",
		est, g.Chips(), g.LSBPagesPerBlock(), t.Read)
	return nil
}

func msbInFlight(f *flexftl.FTL, chip int) bool {
	return lastMSBWordLine(f, chip) >= 0
}

// lastMSBWordLine returns the word line of the chip's most recent MSB
// program, or -1 when the slow phase has not started.
func lastMSBWordLine(f *flexftl.FTL, chip int) int {
	return f.ActiveSlowProgress(chip) - 1
}

func activeSlowBlock(f *flexftl.FTL, chip int) int {
	return f.ActiveSlowBlock(chip)
}
