package main

import (
	"strings"
	"testing"
)

// TestRunEndToEnd drives the full power-cut + recovery demonstration and
// checks its verified milestones appear.
func TestRunEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"parity page saved",
		"power cut!",
		"reconstructed",
		"read back correctly after recovery",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}
