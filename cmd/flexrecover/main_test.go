package main

import (
	"strings"
	"testing"

	"flexftl/internal/crash"
)

// TestCampaignAllSchemes runs a small campaign over every campaignable
// scheme and expects zero violations.
func TestCampaignAllSchemes(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, runOpts{schemes: "all", trials: 8, seed: 11, workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("campaign reported violations:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"flexFTL (blockParity)", "pageFTL (none)", "recovery cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// TestSabotagedCampaignFails proves the harness exits nonzero when recovery
// is deliberately broken.
func TestSabotagedCampaignFails(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, runOpts{
		schemes: "flexFTL", trials: 25, seed: 1234, workers: 4,
		sabotage: crash.SabotageSkipRecovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("sabotaged campaign passed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "reproduce: flexrecover -ftl flexFTL") {
		t.Errorf("missing reproducer line:\n%s", sb.String())
	}
}

func TestResolveSchemes(t *testing.T) {
	if _, err := resolveSchemes("no-such"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := resolveSchemes("nflexTLC"); err == nil {
		t.Error("non-campaignable scheme accepted")
	}
	names, err := resolveSchemes(" flexFTL , pageFTL ")
	if err != nil || len(names) != 2 {
		t.Fatalf("resolveSchemes = %v, %v", names, err)
	}
	all, err := resolveSchemes("all")
	if err != nil || len(all) < 5 {
		t.Fatalf("resolveSchemes(all) = %v, %v", all, err)
	}
	for _, n := range all {
		if n == "nflexTLC" {
			t.Error("\"all\" included the TLC scheme")
		}
	}
}

func TestListSchemes(t *testing.T) {
	var sb strings.Builder
	listSchemes(&sb)
	out := sb.String()
	for _, want := range []string{"flexFTL", "backup=blockParity", "nflexTLC", "not campaignable"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q\n%s", want, out)
		}
	}
}
