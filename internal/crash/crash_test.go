package crash

import (
	"reflect"
	"strings"
	"testing"

	"flexftl/internal/ftl"
	"flexftl/internal/obs"
)

// paritySchemes are the registry schemes whose backup must preserve every
// acknowledged write across a power cut.
func paritySchemes(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, name := range ftl.Names() {
		spec, _ := ftl.Lookup(name)
		if spec.Backup == "pairParity" || spec.Backup == "blockParity" {
			if !Campaignable(name) {
				t.Fatalf("parity scheme %q not campaignable", name)
			}
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		t.Fatal("no parity-backed schemes registered")
	}
	return out
}

func TestCampaignParitySchemesZeroViolations(t *testing.T) {
	for _, scheme := range paritySchemes(t) {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Scheme: scheme, Trials: 25, Seed: 0xC0FFEE, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if f, bad := rep.FirstFailure(); bad {
				t.Fatalf("trial %d violated invariants: %v", f.Trial, f.Violations)
			}
		})
	}
}

// The block-parity scheme must actually get hit: across a modest campaign,
// power cuts land inside open destructive windows, parity reconstructions
// and rollbacks both fire, and at least one interrupted program is a GC
// relocation — the recovery path this PR's bugfix exists for.
func TestBlockParityCampaignExercisesRecovery(t *testing.T) {
	rep, err := Run(Config{Scheme: "flexFTL", Trials: 60, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f, bad := rep.FirstFailure(); bad {
		t.Fatalf("trial %d violated invariants: %v", f.Trial, f.Violations)
	}
	if rep.Injected == 0 {
		t.Fatal("no trial landed a power cut inside a destructive MSB window")
	}
	if rep.Recovered == 0 {
		t.Error("no trial reconstructed a parity-covered LSB page")
	}
	if rep.RolledBack == 0 {
		t.Error("no trial rolled an interrupted MSB program back to its superseded copy")
	}
	if rep.FromGC == 0 {
		t.Error("no power cut interrupted a background-GC MSB relocation")
	}
}

// No-backup schemes must detect the loss, not mask it; a campaign over them
// passes exactly when every destroyed page read fails and everything else
// survives strictly.
func TestNoBackupSchemesDetectLoss(t *testing.T) {
	for _, scheme := range []string{"pageFTL", "flexFTL-nobackup"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Scheme: scheme, Trials: 30, Seed: 41, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if f, bad := rep.FirstFailure(); bad {
				t.Fatalf("trial %d violated invariants: %v", f.Trial, f.Violations)
			}
			if rep.Injected == 0 {
				t.Fatal("no trial landed a cut inside an open window; detection path untested")
			}
		})
	}
}

// Outcomes are a pure function of the config: any worker count produces the
// byte-identical campaign.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	base := Config{Scheme: "flexFTL", Trials: 12, Seed: 99}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	par8 := base
	par8.Workers = 8
	got, err := Run(par8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Outcomes, got.Outcomes) {
		t.Fatal("outcomes differ between 1 and 8 workers")
	}
}

// A failing trial from a large campaign reruns alone via Start.
func TestStartOffsetReproducesTrial(t *testing.T) {
	full, err := Run(Config{Scheme: "rtfFTL", Trials: 9, Seed: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(Config{Scheme: "rtfFTL", Trials: 1, Seed: 3, Start: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Outcomes[6], one.Outcomes[0]) {
		t.Fatalf("trial 6 rerun differs:\nfull: %+v\nrerun: %+v", full.Outcomes[6], one.Outcomes[0])
	}
}

// Sabotage proves the checker can fail: skipping recovery or corrupting the
// parity page must surface as violations.
func TestSabotageIsCaught(t *testing.T) {
	for _, tc := range []struct {
		name string
		sab  Sabotage
	}{
		{"skip-recovery", SabotageSkipRecovery},
		{"corrupt-parity", SabotageCorruptParity},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Scheme: "flexFTL", Trials: 40, Seed: 1234, Workers: 4, Sabotage: tc.sab})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed == 0 {
				t.Fatalf("sabotage %v went undetected over %d trials (%d injected)",
					tc.sab, rep.Trials, rep.Injected)
			}
		})
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := Run(Config{Scheme: "parityFTL", Trials: 5, Seed: 5, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("crash.trials").Value(); got != int64(rep.Trials) {
		t.Fatalf("crash.trials = %d, want %d", got, rep.Trials)
	}
	if got := reg.Histogram("crash.crash_op").Count(); got != int64(rep.Trials) {
		t.Fatalf("crash.crash_op count = %d, want %d", got, rep.Trials)
	}
}

func TestReproArgs(t *testing.T) {
	cfg := Config{Scheme: "flexFTL", Seed: 42, Ops: 123}
	line := cfg.ReproArgs(Outcome{Scheme: "flexFTL", Trial: 17})
	for _, want := range []string{"-ftl flexFTL", "-seed 42", "-start 17", "-trials 1", "-ops 123"} {
		if !strings.Contains(line, want) {
			t.Fatalf("repro line %q missing %q", line, want)
		}
	}
}

func TestUnknownAndUnsupportedSchemes(t *testing.T) {
	if _, err := Run(Config{Scheme: "no-such-ftl"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if Campaignable("nflexTLC") {
		t.Fatal("TLC scheme reported campaignable; it has its own device model")
	}
	if _, err := Run(Config{Scheme: "nflexTLC", Trials: 1}); err == nil {
		t.Fatal("campaign over the TLC scheme should fail to build a kernel")
	}
}
