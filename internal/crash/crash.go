// Package crash is the randomized sudden-power-off campaign: it drives any
// registry scheme through a seeded workload, cuts power at a sampled
// operation boundary on a sampled chip (the destructive MSB window the
// device models), runs the scheme's recovery procedures, and checks the
// power-cut invariants the paper's Section 3.3 design promises:
//
//   - every acknowledged write reads back with its last-written payload
//     (token LPN match, sequence number at or above the recorded floor);
//   - a parity-covered LSB page destroyed by the cut is reconstructed;
//   - an interrupted GC relocation rolls back to the superseded copy — that
//     data was acknowledged long ago and must survive;
//   - a rebuilt mapping table disagrees with the surviving RAM table only
//     where trims or never-acknowledged drops allow it;
//   - per-chip block accounting still balances (no leaked blocks);
//   - schemes with no backup must *detect* the loss (reads of the destroyed
//     pair fail) rather than silently return stale data.
//
// Trials are deterministic: trial i derives its RNG from Split(seed, i+1),
// so a campaign's outcome is byte-identical at any worker count and any
// failure collapses to a one-line reproducer.
package crash

import (
	"fmt"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/par"
	"flexftl/internal/sim"
)

// Sabotage selects a deliberately injected fault, used to prove the
// campaign's invariants actually bite (a checker that cannot fail is not a
// checker).
type Sabotage int

const (
	// SabotageNone runs the real recovery path.
	SabotageNone Sabotage = iota
	// SabotageSkipRecovery skips Recover/RebuildMapping entirely for
	// parity-backed schemes; trials whose cut destroyed live data must then
	// fail verification.
	SabotageSkipRecovery
	// SabotageCorruptParity corrupts the parity page covering the destroyed
	// pair before recovery runs; recovery must fail loudly, never hand back
	// wrong data.
	SabotageCorruptParity
)

func (s Sabotage) String() string {
	switch s {
	case SabotageNone:
		return "none"
	case SabotageSkipRecovery:
		return "skip-recovery"
	case SabotageCorruptParity:
		return "corrupt-parity"
	default:
		return fmt.Sprintf("Sabotage(%d)", int(s))
	}
}

// Config parameterizes a campaign over one scheme.
type Config struct {
	// Scheme is the registry name (must build to a composable *ftl.Kernel;
	// the TLC scheme has its own device model and is not campaignable).
	Scheme string
	// Geometry of the simulated device; the zero value means
	// nand.TestGeometry() — small enough that the prefill pushes every
	// trial into steady-state GC.
	Geometry nand.Geometry
	// Ops is the size of the post-prefill operation window the crash point
	// is sampled from (default 600).
	Ops int
	// Trials to run (default 1). Trial indices are Start..Start+Trials-1.
	Trials int
	// Seed is the campaign master seed; trial i uses Split(seed, i+1).
	Seed uint64
	// Start offsets the first trial index, so a failing trial from a big
	// campaign can be rerun alone: -seed S -start I -trials 1.
	Start int
	// Workers sizes the worker pool (default 1; outcomes are identical at
	// any value).
	Workers int
	// Sabotage injects a deliberate fault (see Sabotage).
	Sabotage Sabotage
	// Metrics, when non-nil, receives campaign counters and histograms
	// (crash.trials, crash.crash_op, crash.recovery_pages_read, ...).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Geometry == (nand.Geometry{}) {
		c.Geometry = nand.TestGeometry()
	}
	if c.Ops <= 0 {
		c.Ops = 600
	}
	if c.Trials <= 0 {
		c.Trials = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Outcome records one trial. All fields are plain data: two campaigns with
// the same Config but different worker counts produce DeepEqual outcome
// slices.
type Outcome struct {
	Trial   int    // absolute trial index (Config.Start + offset)
	Scheme  string // registry name
	CrashOp int    // operation boundary the power cut landed on
	Chip    int    // chip the cut targeted
	// Injected reports whether a destructive MSB window was actually open
	// on the target chip (the cut destroyed a paired LSB+MSB).
	Injected bool
	// FromGC marks an injected cut that interrupted a GC relocation (the
	// strictest recovery obligation: that data was acknowledged).
	FromGC bool
	// MetaMode is the metadata-survival draw for parity-backed schemes:
	// 0 = runtime parity refs survived, 1 = refs lost and rebuilt from
	// flash (RebuildParityRefs), 2 = refs lost, recovery must locate parity
	// by scanning spare areas.
	MetaMode int
	// Recovered/RolledBack/Dropped mirror the RecoveryReport counts.
	Recovered  int
	RolledBack int
	Dropped    int
	// PagesRead totals recovery-path page reads (recovery scan + parity
	// ref rebuild), the paper's reboot-overhead currency.
	PagesRead int
	// RecoveryTime is the virtual-time cost of the recovery passes.
	RecoveryTime sim.Time
	// Violations lists every invariant breach; empty means the trial
	// passed.
	Violations []string
}

// Report aggregates a campaign.
type Report struct {
	Scheme     string
	Trials     int
	Injected   int // trials where the cut destroyed a programming pair
	FromGC     int // injected trials that interrupted a GC relocation
	Failed     int // trials with at least one violation
	Recovered  int // parity reconstructions across all trials
	RolledBack int
	Dropped    int
	Outcomes   []Outcome // per-trial, in trial order
}

// FirstFailure returns the lowest-index failing trial.
func (r Report) FirstFailure() (Outcome, bool) {
	for _, o := range r.Outcomes {
		if len(o.Violations) > 0 {
			return o, true
		}
	}
	return Outcome{}, false
}

// ReproArgs renders the flag string that reruns exactly one trial of this
// campaign (minimized reproducer for a failing outcome).
func (c Config) ReproArgs(o Outcome) string {
	return fmt.Sprintf("-ftl %s -seed %d -start %d -trials 1 -ops %d", o.Scheme, c.Seed, o.Trial, c.withDefaults().Ops)
}

// Campaignable reports whether a registry scheme can run under the
// campaign: it must build into the composable MLC kernel (the TLC scheme
// carries its own device model and is out of scope).
func Campaignable(name string) bool {
	spec, ok := ftl.Lookup(name)
	if !ok {
		return false
	}
	h, err := spec.New(ftl.BuildEnv{
		Geometry: nand.TestGeometry(),
		Config:   ftl.DefaultConfig(),
		Flex:     ftl.DefaultFlexParams(),
	})
	if err != nil {
		return false
	}
	_, isKernel := h.(*ftl.Kernel)
	return isKernel
}

// Run executes the campaign on a bounded worker pool. Outcomes depend only
// on (Config minus Workers/Metrics), never on scheduling; the aggregate
// report and metrics are folded single-threaded after all trials finish.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	spec, ok := ftl.Lookup(cfg.Scheme)
	if !ok {
		return Report{}, fmt.Errorf("crash: unknown scheme %q", cfg.Scheme)
	}
	outs, err := par.Map(cfg.Workers, cfg.Trials, func(_, t int) (Outcome, error) {
		return runTrial(cfg, spec, cfg.Start+t)
	})
	if err != nil {
		return Report{}, err
	}
	rep := Report{Scheme: cfg.Scheme, Trials: len(outs), Outcomes: outs}
	for _, o := range outs {
		if o.Injected {
			rep.Injected++
		}
		if o.FromGC {
			rep.FromGC++
		}
		if len(o.Violations) > 0 {
			rep.Failed++
		}
		rep.Recovered += o.Recovered
		rep.RolledBack += o.RolledBack
		rep.Dropped += o.Dropped
	}
	recordMetrics(cfg.Metrics, rep)
	return rep, nil
}

// recordMetrics folds a finished campaign into the observability registry.
// It runs after the pool joins, so recording order is deterministic.
func recordMetrics(reg *obs.Registry, rep Report) {
	if reg == nil {
		return
	}
	reg.Counter("crash.trials").Add(int64(rep.Trials))
	reg.Counter("crash.injected").Add(int64(rep.Injected))
	reg.Counter("crash.from_gc").Add(int64(rep.FromGC))
	reg.Counter("crash.violations").Add(int64(rep.Failed))
	reg.Counter("crash.recovered").Add(int64(rep.Recovered))
	reg.Counter("crash.rolled_back").Add(int64(rep.RolledBack))
	reg.Counter("crash.dropped").Add(int64(rep.Dropped))
	ops := reg.Histogram("crash.crash_op")
	pages := reg.Histogram("crash.recovery_pages_read")
	dur := reg.Histogram("crash.recovery_us")
	for _, o := range rep.Outcomes {
		ops.Record(int64(o.CrashOp))
		if o.Injected || o.PagesRead > 0 {
			pages.Record(int64(o.PagesRead))
			dur.Record(int64(o.RecoveryTime)) // sim.Time is microseconds
		}
	}
}
