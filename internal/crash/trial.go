package crash

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// maxViolations caps the per-trial violation list; a systemically broken
// scheme would otherwise report every logical page.
const maxViolations = 8

// shadow is the trial's model of what the host is owed. For every
// acknowledged write it records the global sequence number the token
// carried; any later on-flash copy of that LPN (a retokenized GC
// relocation) carries a sequence at least that high, so "readable, token
// LPN matches, sequence >= floor" is exactly "the acknowledged data
// survived".
type shadow struct {
	seq     []int64 // per-LPN floor; -1 = never written
	trimmed []bool  // currently trimmed (written, then discarded)
}

func newShadow(logical int64) *shadow {
	s := &shadow{seq: make([]int64, logical), trimmed: make([]bool, logical)}
	for i := range s.seq {
		s.seq[i] = -1
	}
	return s
}

func (s *shadow) noteWrite(lpn ftl.LPN, seq int64) {
	s.seq[lpn] = seq
	s.trimmed[lpn] = false
}

func (s *shadow) noteTrim(lpn ftl.LPN) {
	if s.seq[lpn] >= 0 {
		s.trimmed[lpn] = true
	}
}

// written reports whether the LPN currently holds acknowledged data.
func (s *shadow) written(lpn ftl.LPN) bool {
	return s.seq[lpn] >= 0 && !s.trimmed[lpn]
}

func (s *shadow) trimmedCount() int {
	n := 0
	for _, t := range s.trimmed {
		if t {
			n++
		}
	}
	return n
}

// vulnState snapshots, at the instant of the cut, which logical pages sit in
// the target chip's destructive MSB window.
type vulnState struct {
	open     bool
	msbAddr  nand.PageAddr
	pairAddr nand.PageAddr
	msbLPN   ftl.LPN
	msbLive  bool
	pairLPN  ftl.LPN
	pairLive bool
}

func snapshotWindow(k *ftl.Kernel, chip int) vulnState {
	a, open := k.Dev.OpenMSBWindow(chip)
	if !open {
		return vulnState{}
	}
	g := k.Dev.Geometry()
	v := vulnState{open: true, msbAddr: a}
	v.pairAddr = a
	v.pairAddr.Page.Type = core.LSB
	v.msbLPN, v.msbLive = k.Map.LPNAt(g.PPNOf(a))
	v.pairLPN, v.pairLive = k.Map.LPNAt(g.PPNOf(v.pairAddr))
	return v
}

// runTrial plays one seeded crash story end to end. Everything random about
// the trial — prefill utilizations, the operation mix, the crash point, the
// metadata-survival mode — derives from one Split of the campaign seed, so
// the trial is a pure function of (cfg, trial index).
func runTrial(cfg Config, spec ftl.Spec, trial int) (Outcome, error) {
	r := rng.New(cfg.Seed).Split(uint64(trial) + 1)
	o := Outcome{Trial: trial, Scheme: cfg.Scheme}

	// The campaign prefills to full logical capacity; at the paper's 12.5%
	// over-provisioning that leaves no slack for backup blocks plus GC
	// startup on fully-valid blocks, so campaigns run at 25% OP. GC still
	// engages: the hot working set invalidates pages fast enough that the
	// op window crosses the free-block thresholds.
	fcfg := ftl.DefaultConfig()
	fcfg.OPFraction = 0.25
	h, err := ftl.Build(cfg.Scheme, ftl.BuildEnv{
		Geometry: cfg.Geometry,
		Config:   fcfg,
		Flex:     ftl.DefaultFlexParams(),
	})
	if err != nil {
		return o, fmt.Errorf("crash: trial %d: %w", trial, err)
	}
	k, ok := h.(*ftl.Kernel)
	if !ok {
		return o, fmt.Errorf("crash: scheme %q is not a composable MLC kernel", cfg.Scheme)
	}

	// Draw the trial's fate up front, in a fixed order, so the workload
	// length never shifts which stream positions later draws read.
	o.CrashOp = 1 + r.Intn(cfg.Ops)
	o.Chip = r.Intn(k.Chips())
	o.MetaMode = r.Intn(3)

	sh := newShadow(k.LogicalPages())
	now := sim.Time(0)

	// Prefill every logical page once: steady state for an SSD is "full",
	// and a full device is what makes the post-prefill window exercise GC,
	// background relocation and the slow phase.
	logical := int(k.LogicalPages())
	for p := 0; p < logical; p++ {
		lpn := ftl.LPN(p)
		done, err := k.Write(lpn, now, r.Float64())
		if err != nil {
			return o, fmt.Errorf("crash: trial %d prefill lpn %d: %w", trial, p, err)
		}
		sh.noteWrite(lpn, k.Seq())
		now = done
	}

	for op := 0; op < o.CrashOp; op++ {
		now, err = step(k, sh, r, now)
		if err != nil {
			return o, fmt.Errorf("crash: trial %d op %d: %w", trial, op, err)
		}
	}

	// The cut. Snapshot the destructive window first — after injection the
	// device reports it closed.
	v := snapshotWindow(k, o.Chip)
	if spec.Backup == "pairParity" {
		// Pair-parity schemes persist the parity before the paired MSB
		// program begins, so every program is acknowledged at issue and no
		// destructive window may ever be left open.
		for c := 0; c < k.Chips(); c++ {
			if _, open := k.Dev.OpenMSBWindow(c); open {
				o.addViolation("ack discipline: chip %d left a destructive MSB window open under pair-parity backup", c)
			}
		}
	}
	if v.open {
		if lpn, _, fromGC, _, ok := k.LastMSB(o.Chip); ok && lpn == v.msbLPN {
			o.FromGC = fromGC
		}
		o.Injected = k.Dev.InjectPowerLoss(nand.BlockAddr{Chip: o.Chip, Block: v.msbAddr.Block})
	}

	rebuilt := false
	if spec.Backup == "blockParity" {
		rebuilt, now = runRecovery(cfg, k, sh, v, &o, now)
	}

	verify(cfg, spec, k, sh, v, rebuilt, &o, now)
	account(k, &o)
	return o, nil
}

// step plays one workload operation: mostly overwrites concentrated on a hot
// eighth of the address space (GC pressure), with reads, trims and idle
// windows mixed in so crashes land in fast phases, slow phases and
// background-GC copies alike.
func step(k *ftl.Kernel, sh *shadow, r *rng.Source, now sim.Time) (sim.Time, error) {
	logical := int(k.LogicalPages())
	pick := func() ftl.LPN {
		if r.Bool(0.8) {
			return ftl.LPN(r.Intn(logical / 8))
		}
		return ftl.LPN(r.Intn(logical))
	}
	x := r.Float64()
	switch {
	case x < 0.65: // overwrite
		lpn := pick()
		done, err := k.Write(lpn, now, r.Float64())
		if err != nil {
			return now, err
		}
		sh.noteWrite(lpn, k.Seq())
		return done, nil
	case x < 0.80: // read
		lpn := pick()
		if !sh.written(lpn) {
			return now, nil
		}
		done, err := k.Read(lpn, now)
		if err != nil {
			return now, err
		}
		return done, nil
	case x < 0.85: // trim
		lpn := pick()
		if !sh.written(lpn) {
			return now, nil
		}
		done, err := k.Trim(lpn, now)
		if err != nil {
			return now, err
		}
		sh.noteTrim(lpn)
		return done, nil
	default: // idle window sized to land crashes mid-background-GC
		span := sim.Time(1+r.Intn(8)) * ftl.GCPageCopyCost(k.Dev.Timing())
		k.Idle(now, now+span)
		return now + span, nil
	}
}

// runRecovery drives the block-parity scheme's reboot procedures under the
// trial's metadata-survival mode and sabotage setting. Returns whether the
// mapping table was rebuilt from flash (which legitimately resurrects
// trimmed LPNs — there is no persistent trim log).
func runRecovery(cfg Config, k *ftl.Kernel, sh *shadow, v vulnState, o *Outcome, now sim.Time) (rebuilt bool, end sim.Time) {
	if cfg.Sabotage == SabotageSkipRecovery {
		return false, now
	}
	if cfg.Sabotage == SabotageCorruptParity && o.Injected && v.pairLive {
		if backupBlk, page, ok := k.ParityRef(o.Chip, v.msbAddr.Block); ok {
			addr := nand.PageAddr{
				BlockAddr: nand.BlockAddr{Chip: o.Chip, Block: backupBlk},
				Page:      core.Page{WL: page, Type: core.LSB},
			}
			if err := k.Dev.CorruptPage(addr); err != nil {
				o.addViolation("sabotage: corrupting parity page %v: %v", addr, err)
			}
		}
	}

	start := now
	switch o.MetaMode {
	case 1: // refs lost; rebuild them from backup-block spare areas first
		k.ForgetParityRefs()
		scan, err := k.RebuildParityRefs(now)
		if err != nil {
			o.addViolation("RebuildParityRefs failed: %v", err)
			return false, now
		}
		o.PagesRead += scan.PagesRead
		now = scan.End
	case 2: // refs lost; Recover must find parity by scanning spares
		k.ForgetParityRefs()
	}

	rec, err := k.Recover(now)
	o.PagesRead += rec.PagesRead
	o.Recovered = len(rec.Recovered)
	o.RolledBack = len(rec.RolledBack)
	o.Dropped = len(rec.Dropped)
	if err != nil {
		o.addViolation("Recover failed: %v", err)
		o.RecoveryTime = rec.End - start
		return false, rec.End
	}
	now = rec.End

	rb, err := k.RebuildMapping(now)
	if err != nil {
		o.addViolation("RebuildMapping failed: %v", err)
		o.RecoveryTime = now - start
		return false, now
	}
	now = rb.End
	o.RecoveryTime = now - start

	// The rebuilt table may disagree with the surviving RAM table only for
	// trimmed LPNs (flash still holds their tokens — there is no persistent
	// trim log) and dropped ones (an older generation may resurface).
	// Anything beyond that is a scan bug.
	if allow := int64(sh.trimmedCount() + o.Dropped); rb.Mismatches > allow {
		o.addViolation("rebuilt mapping: %d mismatches vs RAM table, only %d explainable (trims + drops)",
			rb.Mismatches, allow)
	}
	return true, now
}

// verify sweeps the whole logical space against the shadow model.
func verify(cfg Config, spec ftl.Spec, k *ftl.Kernel, sh *shadow, v vulnState, rebuilt bool, o *Outcome, now sim.Time) {
	g := k.Dev.Geometry()
	detectOnly := spec.Backup == "none"
	recovered := spec.Backup == "blockParity" && cfg.Sabotage == SabotageNone

	for p := int64(0); p < k.LogicalPages(); p++ {
		lpn := ftl.LPN(p)
		if !sh.written(lpn) {
			// Never written, or trimmed. A flash-scan rebuild legitimately
			// resurrects trimmed LPNs (no persistent trim log); otherwise
			// they must stay unmapped.
			if !rebuilt {
				if _, mapped := k.Map.Lookup(lpn); mapped && sh.trimmed[lpn] {
					o.addViolation("lpn %d: trimmed but still mapped", lpn)
				}
			}
			continue
		}
		ppn, mapped := k.Map.Lookup(lpn)
		vulnMSB := o.Injected && v.msbLive && lpn == v.msbLPN
		vulnPair := o.Injected && v.pairLive && lpn == v.pairLPN && lpn != v.msbLPN

		if detectOnly && (vulnMSB || vulnPair) {
			// No-backup schemes lost this pair for real. The invariant is
			// detection: the mapping may only point at a page whose read
			// fails; silently returning old bits would be a masked loss.
			if !mapped {
				continue
			}
			if _, _, _, err := k.Dev.Read(g.AddrOfPPN(ppn), now); err == nil {
				o.addViolation("lpn %d: destroyed page reads back clean (loss masked)", lpn)
			}
			continue
		}
		if recovered && vulnMSB && !o.FromGC {
			// The interrupted MSB was an in-flight host write, never
			// acknowledged: rolling back to the superseded copy is best
			// effort, dropping is legal. What is not legal is a mapping
			// that points at garbage.
			if !mapped {
				continue
			}
			if msg := readCheck(k, lpn, ppn, 0, now); msg != "" {
				o.addViolation("lpn %d (interrupted host write): %s", lpn, msg)
			}
			continue
		}
		// Everything else is strict — including the vulnerable pair LSB
		// (parity must reconstruct it), an interrupted GC relocation
		// (rollback must keep it readable), and, under sabotage, the pair
		// whose recovery was deliberately broken: the sweep flagging it is
		// exactly the campaign catching the injected fault.
		_ = vulnPair

		// Strict: acknowledged data must be mapped, readable, carry this
		// LPN's token and a sequence at or above the acknowledged floor.
		// This covers the vulnerable pair LSB (parity reconstruction) and
		// an interrupted GC relocation (rollback) — both held acknowledged
		// data.
		if !mapped {
			o.addViolation("lpn %d: acknowledged write unmapped", lpn)
			continue
		}
		if msg := readCheck(k, lpn, ppn, uint64(sh.seq[lpn]), now); msg != "" {
			o.addViolation("lpn %d: %s", lpn, msg)
		}
	}
}

// readCheck reads the mapped page and checks token identity and the
// sequence floor (floor 0 skips the floor check).
func readCheck(k *ftl.Kernel, lpn ftl.LPN, ppn nand.PPN, floor uint64, now sim.Time) string {
	g := k.Dev.Geometry()
	data, _, _, err := k.Dev.Read(g.AddrOfPPN(ppn), now)
	if err != nil {
		return fmt.Sprintf("read %v: %v", g.AddrOfPPN(ppn), err)
	}
	tok, ok := ftl.TokenLPN(data)
	if !ok || tok != lpn {
		return fmt.Sprintf("token LPN %v, want %v", tok, lpn)
	}
	if floor > 0 {
		if seq := ftl.TokenSeq(data); seq < floor {
			return fmt.Sprintf("stale data: sequence %d below acknowledged floor %d", seq, floor)
		}
	}
	return ""
}

// account checks that every chip's blocks are all accounted for: free pool +
// full list + active program blocks + backup blocks + the in-flight
// background-GC victim must partition the chip.
func account(k *ftl.Kernel, o *Outcome) {
	g := k.Dev.Geometry()
	for chip := 0; chip < g.Chips(); chip++ {
		free, full, active, backup, bg := k.AccountBlocks(chip)
		if got := free + full + active + backup + bg; got != g.BlocksPerChip {
			o.addViolation("chip %d: block accounting %d (free %d + full %d + active %d + backup %d + bg %d), want %d",
				chip, got, free, full, active, backup, bg, g.BlocksPerChip)
		}
	}
}

func (o *Outcome) addViolation(format string, args ...any) {
	if len(o.Violations) == maxViolations {
		o.Violations = append(o.Violations, "... further violations suppressed")
		return
	}
	if len(o.Violations) > maxViolations {
		return
	}
	o.Violations = append(o.Violations, fmt.Sprintf(format, args...))
}
