package rel

import (
	"math"
	"testing"

	"flexftl/internal/ecc"
	"flexftl/internal/sim"
	"flexftl/internal/vth"
)

// TestModelStressDecades pins the derived surface against the magnitudes the
// vth Monte-Carlo study established: fresh flash reads back essentially
// error-free, and the paper's 3K-P/E + 1-year worst case lands in the
// 1e-4..1e-2 raw-BER decade of Figure 4(b).
func TestModelStressDecades(t *testing.T) {
	m := DeriveModel(vth.DefaultParams())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	fresh := m.BER(0, 0, 0)
	if fresh <= 0 || fresh > 1e-6 {
		t.Errorf("fresh BER = %g, want tiny positive (< 1e-6)", fresh)
	}
	worst := m.BER(3000, Year, 0)
	if worst < 1e-4 || worst > 1e-2 {
		t.Errorf("worst-case BER (3K P/E, 1yr) = %g, want in [1e-4, 1e-2]", worst)
	}
	if dead := m.BER(5000, 2*Year, 0); dead <= worst {
		t.Errorf("2yr+5K BER %g should exceed worst-case %g", dead, worst)
	}
}

// TestModelMonotone checks BER is monotone in each stress axis.
func TestModelMonotone(t *testing.T) {
	m := DeriveModel(vth.DefaultParams())
	prev := -1.0
	for pe := 0; pe <= 8000; pe += 500 {
		b := m.BER(pe, Year/2, 100)
		if b < prev {
			t.Errorf("BER not monotone in P/E at %d: %g < %g", pe, b, prev)
		}
		prev = b
	}
	prev = -1.0
	for months := 0; months <= 36; months++ {
		b := m.BER(2000, Year/12*sim.Time(months), 100)
		if b < prev {
			t.Errorf("BER not monotone in age at %d months: %g < %g", months, b, prev)
		}
		prev = b
	}
	prev = -1.0
	for reads := uint64(0); reads <= 1_000_000; reads += 50_000 {
		b := m.BER(2000, Year/2, reads)
		if b < prev {
			t.Errorf("BER not monotone in reads at %d: %g < %g", reads, b, prev)
		}
		prev = b
	}
}

// TestDeriveNLevelModel checks the n-level derivation produces a valid
// denser-packed surface whose BER dominates the MLC one at equal stress.
func TestDeriveNLevelModel(t *testing.T) {
	p := vth.DefaultNLevelParams()
	tlc := DeriveNLevelModel(p, 3)
	if err := tlc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tlc.Levels) != 8 || len(tlc.Refs) != 7 || tlc.BitsPerCell != 3 {
		t.Fatalf("TLC model shape: %d levels, %d refs, %d bits", len(tlc.Levels), len(tlc.Refs), tlc.BitsPerCell)
	}
	mlc := DeriveNLevelModel(p, 2)
	if tlcBER, mlcBER := tlc.BER(2000, Year, 0), mlc.BER(2000, Year, 0); tlcBER <= mlcBER {
		t.Errorf("TLC BER %g should exceed MLC BER %g at equal stress", tlcBER, mlcBER)
	}
}

// TestConfigValidate exercises the construction seam, including the
// degenerate ecc.Code cases the devices must never accept.
func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero-value code", func(c *Config) { c.Code = ecc.Code{} }},
		{"negative codeword", func(c *Config) { c.Code.CodewordBits = -8 }},
		{"T >= codeword", func(c *Config) { c.Code.CorrectableBits = c.Code.CodewordBits }},
		{"fast > T", func(c *Config) { c.FastCorrectableBits = c.Code.CorrectableBits + 1 }},
		{"negative fast", func(c *Config) { c.FastCorrectableBits = -1 }},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }},
		{"retry scale 0", func(c *Config) { c.RetryBERScale = 0 }},
		{"retry scale 1", func(c *Config) { c.RetryBERScale = 1 }},
		{"no levels", func(c *Config) { c.Model.Levels = nil }},
		{"zero sigma", func(c *Config) { c.Model.ProgramSigma = 0 }},
		{"ref outside band", func(c *Config) { c.Model.Refs[0] = c.Model.Levels[2] }},
	}
	for _, tc := range cases {
		c := DefaultConfig(1)
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a degenerate config", tc.name)
		}
	}
}

// TestReadOutcomeLadder checks the nested event structure: as u shrinks the
// outcome only worsens, and the boundary probabilities follow the config.
func TestReadOutcomeLadder(t *testing.T) {
	c := DefaultConfig(7)
	const page = 4096
	ber := c.Model.BER(3000, Year, 0) // worst case: meaningful retry mass
	worstRank := func(o Outcome) int {
		switch {
		case o.Uncorrectable:
			return 2 + c.MaxRetries
		case o.Retries > 0:
			return 1 + o.Retries
		case o.Corrected:
			return 1
		default:
			return 0
		}
	}
	prev := math.MaxInt
	for _, u := range []float64{0, 1e-300, 1e-100, 1e-12, 1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 0.9, 0.999999} {
		o := c.ReadOutcome(ber, page, u)
		r := worstRank(o)
		if r > prev {
			t.Errorf("ladder not nested: u=%g rank %d > previous %d", u, r, prev)
		}
		prev = r
		if o.Uncorrectable && !o.Corrected {
			t.Errorf("u=%g: uncorrectable outcome should still mark Corrected attempt", u)
		}
	}
	// Clean read at u just above pAny; corrected below it.
	bits := float64(page * 8)
	pAny := -math.Expm1(bits * math.Log1p(-ber))
	if o := c.ReadOutcome(ber, page, pAny*1.01); o.Corrected || o.Retries != 0 || o.Uncorrectable {
		t.Errorf("u above pAny should be clean, got %+v", o)
	}
	if o := c.ReadOutcome(ber, page, pAny*0.99); !o.Corrected {
		t.Errorf("u below pAny should be corrected, got %+v", o)
	}
	// Zero BER is always clean, even at u=0.
	if o := c.ReadOutcome(0, page, 0); o != (Outcome{}) {
		t.Errorf("zero BER should be clean, got %+v", o)
	}
	// At worst-case stress the fast path must leave a visible retry band:
	// the CI smoke asserts nonzero retries at default ECC.
	fast := ecc.Code{CodewordBits: c.Code.CodewordBits, CorrectableBits: c.FastCorrectableBits}
	pFast := fast.PageFailureProb(ber, page)
	if pFast < 1e-4 {
		t.Errorf("fast-path failure prob %g too small for retries to ever fire", pFast)
	}
	if o := c.ReadOutcome(ber, page, pFast*0.9); o.Retries == 0 {
		t.Errorf("u below fast threshold should retry, got %+v", o)
	}
	// But the full ladder keeps worst case comfortably correctable.
	pFull := c.Code.PageFailureProb(ber*math.Pow(c.RetryBERScale, float64(c.MaxRetries)), page)
	if pFull > 1e-8 {
		t.Errorf("full-ladder failure prob %g at worst case; uncorrectables would pollute the default config", pFull)
	}
}

// TestSampleDeterministic checks the read hash is stable, seed-sensitive,
// and spreads across identities.
func TestSampleDeterministic(t *testing.T) {
	a := DefaultConfig(42)
	b := DefaultConfig(43)
	if a.Sample(1, 2, 3, 4) != a.Sample(1, 2, 3, 4) {
		t.Error("Sample not deterministic")
	}
	if a.Sample(1, 2, 3, 4) == b.Sample(1, 2, 3, 4) {
		t.Error("Sample ignores seed")
	}
	seen := map[float64]bool{}
	sum := 0.0
	const n = 4096
	for i := 0; i < n; i++ {
		u := a.Sample(i&3, i>>2, i%7, uint64(i))
		if u < 0 || u >= 1 {
			t.Fatalf("sample %g outside [0,1)", u)
		}
		seen[u] = true
		sum += u
	}
	if len(seen) < n-4 {
		t.Errorf("only %d/%d distinct samples", len(seen), n)
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("sample mean %g far from 0.5", mean)
	}
}

// TestBERBudget checks the bisection inverts the failure curve.
func TestBERBudget(t *testing.T) {
	c := DefaultConfig(1)
	const page = 4096
	scale := math.Pow(c.RetryBERScale, float64(c.MaxRetries))
	for _, target := range []float64{1e-6, 1e-4, 1e-2} {
		budget := c.BERBudget(page, target)
		at := c.Code.PageFailureProb(budget*scale, page)
		above := c.Code.PageFailureProb(budget*1.05*scale, page)
		if at > target*1.01 {
			t.Errorf("target %g: failure at budget %g is %g > target", target, budget, at)
		}
		if above < target {
			t.Errorf("target %g: budget %g not tight (failure just above = %g)", target, budget, above)
		}
	}
	// The worst-case BER must sit under a loose default budget — the model
	// only pushes past it with added retention or read-disturb stress.
	worst := c.Model.BER(3000, Year, 0)
	if budget := c.BERBudget(page, 1e-4); worst >= budget {
		t.Errorf("worst-case BER %g already over the 1e-4 budget %g", worst, budget)
	}
}

// TestCountsAdd checks aggregation is field-complete.
func TestCountsAdd(t *testing.T) {
	a := Counts{Reads: 1, Corrected: 2, RetriedReads: 3, RetryRounds: 4, Uncorrectable: 5}
	b := Counts{Reads: 10, Corrected: 20, RetriedReads: 30, RetryRounds: 40, Uncorrectable: 50}
	a.Add(b)
	want := Counts{Reads: 11, Corrected: 22, RetriedReads: 33, RetryRounds: 44, Uncorrectable: 55}
	if a != want {
		t.Errorf("Add: got %+v want %+v", a, want)
	}
}
