// Package rel closes the loop between the vth reliability study and the
// running FTL: it derives a cheap, closed-form per-page bit-error-rate model
// from the calibrated Monte-Carlo parameters, and turns each device read
// into a deterministic ECC outcome — clean, corrected (possibly after
// read-retry rounds that cost real latency), or uncorrectable.
//
// The model is the Gaussian boundary-crossing approximation of the vth
// simulation: each state is a normal distribution around its (retention-
// shifted) nominal level whose spread widens with P/E cycling, retention
// age, and read disturb; a bit error is a tail crossing of an adjacent read
// reference, flipping exactly one Gray-coded bit. That keeps a read's BER to
// a handful of erfc evaluations — cheap enough to run on every simulated
// read — while tracking the same stress axes the Monte-Carlo model was
// calibrated on (DefaultParams: fresh blocks read back near-error-free, the
// paper's 3K-P/E + 1-year worst case lands in the 1e-4..1e-2 decade).
//
// Outcomes are a pure function of (seed, chip, block, page, per-block read
// count), so serial and epoch-sharded runs see identical results without any
// barrier replay: all inputs are chip-local and advance in per-chip op
// order.
package rel

import (
	"errors"
	"fmt"
	"math"

	"flexftl/internal/ecc"
	"flexftl/internal/sim"
	"flexftl/internal/vth"
)

// ErrUncorrectable reports a read whose bit errors exceeded the ECC budget
// after every retry round. It is deliberately distinct from the devices'
// power-loss corruption sentinels: a crash-destroyed page and a worn-out
// page are different failures with different recovery stories, and the crash
// campaign's invariants must not absorb model-induced ECC failures.
var ErrUncorrectable = errors.New("rel: uncorrectable page (ECC budget exceeded after retries)")

// Year is one year of virtual time, the natural unit of retention age.
const Year = 365 * 24 * 3600 * sim.Second

// Model is the closed-form BER surface. Levels holds the nominal state
// placements in ascending Vth order; Refs the read references between them
// (len(Levels)-1 boundaries).
type Model struct {
	Levels []float64
	Refs   []float64
	// BitsPerCell is the cell density (2 = MLC); with Gray coding an
	// adjacent-state misread flips exactly one of the cell's bits.
	BitsPerCell int
	// ProgramSigma is the fresh program placement spread.
	ProgramSigma float64
	// WearSigmaPerKCycle widens every state per 1000 P/E cycles.
	WearSigmaPerKCycle float64
	// RetentionShiftPerYear moves programmed states down per year of
	// retention, scaled by how high the state sits (charge loss).
	RetentionShiftPerYear float64
	// RetentionSigmaPerYear adds spread per year of retention.
	RetentionSigmaPerYear float64
	// ReadDisturbSigmaPerKRead widens every state per 1000 reads of the
	// block since its last erase (pass-through stress on unselected word
	// lines). The Monte-Carlo model has no read-disturb axis, so DeriveModel
	// supplies DefaultReadDisturbSigmaPerKRead.
	ReadDisturbSigmaPerKRead float64
}

// DefaultReadDisturbSigmaPerKRead is the read-disturb widening used when the
// source parameter set carries no read-disturb constant: mild enough that
// ordinary workloads never notice, strong enough that a read-disturb storm
// (hundreds of thousands of reads of one block) measurably degrades it.
const DefaultReadDisturbSigmaPerKRead = 0.002

// DeriveModel builds the closed-form surface from the calibrated MLC
// Monte-Carlo parameters.
func DeriveModel(p vth.Params) Model {
	refs := p.ReadReferences()
	return Model{
		Levels:                   append([]float64(nil), p.Levels[:]...),
		Refs:                     append([]float64(nil), refs[:]...),
		BitsPerCell:              2,
		ProgramSigma:             p.ProgramSigma,
		WearSigmaPerKCycle:       p.WearSigmaPerKCycle,
		RetentionShiftPerYear:    p.RetentionShiftPerYear,
		RetentionSigmaPerYear:    p.RetentionSigmaPerYear,
		ReadDisturbSigmaPerKRead: DefaultReadDisturbSigmaPerKRead,
	}
}

// DeriveNLevelModel builds the surface for a 2^bitsPerCell-state part whose
// levels are evenly placed across the n-level window (the vth n-level
// model's placement rule).
func DeriveNLevelModel(p vth.NLevelParams, bitsPerCell int) Model {
	n := 1 << bitsPerCell
	levels := make([]float64, n)
	span := p.WindowHigh - p.WindowLow
	for i := range levels {
		levels[i] = p.WindowLow + span*float64(i)/float64(n-1)
	}
	refs := make([]float64, n-1)
	for i := range refs {
		refs[i] = (levels[i] + levels[i+1]) / 2
	}
	return Model{
		Levels:                   levels,
		Refs:                     refs,
		BitsPerCell:              bitsPerCell,
		ProgramSigma:             p.ProgramSigma,
		WearSigmaPerKCycle:       p.WearSigmaPerKCycle,
		RetentionShiftPerYear:    p.RetentionShiftPerYear,
		RetentionSigmaPerYear:    p.RetentionSigmaPerYear,
		ReadDisturbSigmaPerKRead: DefaultReadDisturbSigmaPerKRead,
	}
}

// Validate rejects unusable models.
func (m Model) Validate() error {
	if len(m.Levels) < 2 || len(m.Refs) != len(m.Levels)-1 {
		return fmt.Errorf("rel: model needs >=2 levels and len(levels)-1 refs, got %d/%d", len(m.Levels), len(m.Refs))
	}
	if m.BitsPerCell < 1 {
		return fmt.Errorf("rel: bits per cell %d < 1", m.BitsPerCell)
	}
	if m.ProgramSigma <= 0 {
		return fmt.Errorf("rel: program sigma %g must be positive", m.ProgramSigma)
	}
	for i := range m.Refs {
		if !(m.Levels[i] < m.Refs[i] && m.Refs[i] < m.Levels[i+1]) {
			return fmt.Errorf("rel: ref %d (%g) outside (%g,%g)", i, m.Refs[i], m.Levels[i], m.Levels[i+1])
		}
	}
	return nil
}

// qfunc is the Gaussian upper-tail probability Q(x) = P(N(0,1) > x).
func qfunc(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// BER returns the predicted raw bit error rate of a page programmed
// age ago on a block with the given P/E cycle count and post-erase read
// count. It is monotone in all three stress axes.
func (m Model) BER(peCycles int, age sim.Time, reads uint64) float64 {
	years := float64(age) / float64(Year)
	if years < 0 {
		years = 0
	}
	wear := m.WearSigmaPerKCycle * float64(peCycles) / 1000
	ret := m.RetentionSigmaPerYear * years
	rd := m.ReadDisturbSigmaPerKRead * float64(reads) / 1000
	sigma := math.Sqrt(m.ProgramSigma*m.ProgramSigma + wear*wear + ret*ret + rd*rd)
	shift := m.RetentionShiftPerYear * years
	top := float64(len(m.Levels) - 1)
	sum := 0.0
	for s := range m.Levels {
		// Charge loss scales with how much charge the state holds.
		mu := m.Levels[s] - shift*float64(s)/top
		if s > 0 {
			sum += qfunc((mu - m.Refs[s-1]) / sigma)
		}
		if s < len(m.Levels)-1 {
			sum += qfunc((m.Refs[s] - mu) / sigma)
		}
	}
	// States are equiprobable under random data; each boundary crossing
	// flips one of the cell's BitsPerCell Gray-coded bits.
	ber := sum / float64(len(m.Levels)*m.BitsPerCell)
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// Config enables the reliability model on a device.
type Config struct {
	// Model is the BER surface.
	Model Model
	// Code is the controller's ECC envelope, applied per page.
	Code ecc.Code
	// FastCorrectableBits is the hard-decision first-pass correction
	// strength: error counts beyond it (but within Code.CorrectableBits)
	// engage read-retry rounds with progressively finer sensing. It must be
	// at most Code.CorrectableBits.
	FastCorrectableBits int
	// MaxRetries bounds the retry ladder; a page still failing the full
	// code after MaxRetries rounds is uncorrectable.
	MaxRetries int
	// RetryBERScale is the effective-BER reduction per retry round
	// (threshold recalibration), in (0,1).
	RetryBERScale float64
	// Seed makes outcomes deterministic per device.
	Seed uint64
}

// DefaultConfig pairs the MLC model with the default 40-bit/1KB code: a
// 20-bit fast path, four retry rounds at 0.7x effective BER each.
func DefaultConfig(seed uint64) Config {
	return Config{
		Model:               DeriveModel(vth.DefaultParams()),
		Code:                ecc.Default40BitPer1K(),
		FastCorrectableBits: 20,
		MaxRetries:          4,
		RetryBERScale:       0.7,
		Seed:                seed,
	}
}

// Validate is the construction seam that keeps degenerate ECC configurations
// out of the devices: it is the one place ecc.Code.Validate is enforced
// before use.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if err := c.Code.Validate(); err != nil {
		return err
	}
	if c.FastCorrectableBits < 0 || c.FastCorrectableBits > c.Code.CorrectableBits {
		return fmt.Errorf("rel: fast correctable bits %d outside [0,%d]", c.FastCorrectableBits, c.Code.CorrectableBits)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("rel: max retries %d < 0", c.MaxRetries)
	}
	if c.MaxRetries > 0 && !(c.RetryBERScale > 0 && c.RetryBERScale < 1) {
		return fmt.Errorf("rel: retry BER scale %g outside (0,1)", c.RetryBERScale)
	}
	return nil
}

// fastCode is the first-pass envelope.
func (c *Config) fastCode() ecc.Code {
	return ecc.Code{CodewordBits: c.Code.CodewordBits, CorrectableBits: c.FastCorrectableBits}
}

// Outcome classifies one page read.
type Outcome struct {
	// Corrected reports that ECC corrected at least one bit error.
	Corrected bool
	// Retries is how many extra sensing rounds the read needed (each costs
	// one more array read of latency).
	Retries int
	// Uncorrectable reports that the page failed the full code after every
	// retry round; the data is lost unless a higher layer can rebuild it.
	Uncorrectable bool
}

// ReadOutcome classifies a read of a pageBytes-sized page at raw bit error
// rate ber, using the uniform sample u in [0,1). The event ladder is nested
// — uncorrectable ⊂ needs-retry ⊂ has-errors — so small u means a bad read:
//
//	u >= P(any bit error)          -> clean
//	u >= P(fast-path failure)      -> corrected in-line
//	u >= P(full-code fail @ retry r) -> corrected after r rounds
//	otherwise                      -> uncorrectable
func (c *Config) ReadOutcome(ber float64, pageBytes int, u float64) Outcome {
	if ber <= 0 {
		return Outcome{}
	}
	bits := float64(pageBytes * 8)
	pAny := -math.Expm1(bits * math.Log1p(-ber))
	if u >= pAny {
		return Outcome{}
	}
	fast := c.fastCode()
	threshold := fast.PageFailureProb(ber, pageBytes)
	if u >= threshold {
		return Outcome{Corrected: true}
	}
	eff := ber
	for r := 1; r <= c.MaxRetries; r++ {
		eff *= c.RetryBERScale
		// The ladder is forced monotone: a deeper retry can only help.
		if p := c.Code.PageFailureProb(eff, pageBytes); p < threshold {
			threshold = p
		}
		if u >= threshold {
			return Outcome{Corrected: true, Retries: r}
		}
	}
	return Outcome{Corrected: true, Retries: c.MaxRetries, Uncorrectable: true}
}

// BERBudget returns the largest raw BER at which a page read (after the full
// retry ladder) still fails with probability at most target — the budget
// line the FTL's refresh and retirement policies steer under. Found by
// bisection; the failure probability is monotone in BER.
func (c *Config) BERBudget(pageBytes int, target float64) float64 {
	scale := 1.0
	for r := 0; r < c.MaxRetries; r++ {
		scale *= c.RetryBERScale
	}
	fails := func(ber float64) bool {
		return c.Code.PageFailureProb(ber*scale, pageBytes) > target
	}
	lo, hi := 1e-9, 0.5
	if fails(lo) {
		return lo
	}
	if !fails(hi) {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // bisect in log space
		if fails(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// mix64 is the SplitMix64 finalizer, a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sample derives the uniform [0,1) sample for one read from its identity.
// Every input is chip-local state, so per-chip op order alone fixes the
// sequence of samples — the property the epoch-sharded engine relies on.
func (c *Config) Sample(chip, block, page int, readCount uint64) float64 {
	h := c.Seed
	h = mix64(h ^ (uint64(chip)+1)*0x9e3779b97f4a7c15)
	h = mix64(h ^ (uint64(block)+1)*0xbf58476d1ce4e5b9)
	h = mix64(h ^ (uint64(page)+1)*0x94d049bb133111eb)
	h = mix64(h ^ readCount)
	return float64(h>>11) / (1 << 53)
}

// Counts aggregates a device's read outcomes.
type Counts struct {
	// Reads is the number of model-evaluated page reads.
	Reads int64
	// Corrected counts reads ECC had to correct (with or without retries).
	Corrected int64
	// RetriedReads counts reads that needed at least one retry round.
	RetriedReads int64
	// RetryRounds sums the retry rounds across all reads (latency volume).
	RetryRounds int64
	// Uncorrectable counts reads that failed the full ladder.
	Uncorrectable int64
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Reads += other.Reads
	c.Corrected += other.Corrected
	c.RetriedReads += other.RetriedReads
	c.RetryRounds += other.RetryRounds
	c.Uncorrectable += other.Uncorrectable
}
