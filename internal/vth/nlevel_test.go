package vth

import (
	"testing"

	"flexftl/internal/nlevel"
	"flexftl/internal/rng"
	"flexftl/internal/stats"
)

func newNLevelModel(t *testing.T) *NLevelModel {
	t.Helper()
	p := DefaultNLevelParams()
	p.CellsPerWordLine = 512
	m, err := NewNLevelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewNLevelModelValidation(t *testing.T) {
	p := DefaultNLevelParams()
	p.CellsPerWordLine = 0
	if _, err := NewNLevelModel(p); err == nil {
		t.Error("zero cells accepted")
	}
	p = DefaultNLevelParams()
	p.ProgramSigma = 0
	if _, err := NewNLevelModel(p); err == nil {
		t.Error("zero sigma accepted")
	}
	p = DefaultNLevelParams()
	p.WindowHigh = p.WindowLow
	if _, err := NewNLevelModel(p); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestNLevelRejectsBadOrders(t *testing.T) {
	m := newNLevelModel(t)
	s := nlevel.TLC(4)
	if _, err := m.SimulateBlock(s, nlevel.FixedOrder(nlevel.TLC(3)), Fresh, rng.New(1)); err == nil {
		t.Error("short order accepted")
	}
	dup := nlevel.FixedOrder(s)
	dup[1] = dup[0]
	if _, err := m.SimulateBlock(s, dup, Fresh, rng.New(1)); err == nil {
		t.Error("duplicate page accepted")
	}
	bad := nlevel.FixedOrder(s)
	bad[0] = nlevel.Page{WL: 99, Level: 0}
	if _, err := m.SimulateBlock(s, bad, Fresh, rng.New(1)); err == nil {
		t.Error("out-of-range page accepted")
	}
	if _, err := m.SimulateBlock(nlevel.Scheme{Levels: 1, WordLines: 2}, nil, Fresh, rng.New(1)); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestGrayDistanceBits(t *testing.T) {
	// Voltage-adjacent states must differ in exactly one data bit for any
	// cell depth.
	for _, bits := range []int{2, 3, 4} {
		for s := 0; s < (1<<bits)-1; s++ {
			if d := grayDistanceBits(s, s+1, bits); d != 1 {
				t.Errorf("bits=%d: states %d,%d differ in %d data bits, want 1", bits, s, s+1, d)
			}
		}
		if grayDistanceBits(3, 3, bits) != 0 {
			t.Error("identical states differ")
		}
	}
}

func TestClassifyNearest(t *testing.T) {
	levels := []float64{0, 1, 2, 3}
	cases := []struct {
		v    float64
		want int
	}{{-5, 0}, {0.4, 0}, {0.6, 1}, {2.51, 3}, {99, 3}}
	for _, c := range cases {
		if got := classifyNearest(c.v, levels); got != c.want {
			t.Errorf("classify(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestTLCFreshNearlyErrorFree: legal orders on a fresh TLC block stay below
// the ECC envelope (TLC margins are ~1/2 MLC's, so the bound is looser).
func TestTLCFreshNearlyErrorFree(t *testing.T) {
	m := newNLevelModel(t)
	s := nlevel.TLC(16)
	for name, order := range map[string][]nlevel.Page{
		"fixed":  nlevel.FixedOrder(s),
		"3phase": nlevel.RelaxedFullOrder(s),
	} {
		res, err := m.SimulateBlock(s, order, Fresh, rng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ber := res.BlockBER(); ber > 5e-3 {
			t.Errorf("%s: fresh TLC BER %g too high", name, ber)
		}
	}
}

// TestTLCRelaxedMatchesFixed is the Figure 4 equivalence claim extended to
// TLC: the relaxed 3-phase order's widths and BERs match the vendor
// staircase statistically.
func TestTLCRelaxedMatchesFixed(t *testing.T) {
	m := newNLevelModel(t)
	s := nlevel.TLC(32)
	const blocks = 6
	collect := func(order []nlevel.Page, seed uint64) (wp, ber []float64) {
		for b := 0; b < blocks; b++ {
			fresh, err := m.SimulateBlock(s, order, Fresh, rng.New(seed+uint64(b)))
			if err != nil {
				t.Fatal(err)
			}
			wp = append(wp, fresh.WPSums()...)
			worn, err := m.SimulateBlock(s, order, WorstCase, rng.New(seed^uint64(b)+99))
			if err != nil {
				t.Fatal(err)
			}
			ber = append(ber, worn.BERs()...)
		}
		return
	}
	fixedWP, fixedBER := collect(nlevel.FixedOrder(s), 10)
	relWP, relBER := collect(nlevel.RelaxedFullOrder(s), 20)
	if a, b := stats.Mean(relWP), stats.Mean(fixedWP); a > b*1.03 {
		t.Errorf("relaxed TLC mean WPi %.4f above fixed %.4f", a, b)
	}
	if a, b := stats.Mean(relBER), stats.Mean(fixedBER); a > b*1.3 {
		t.Errorf("relaxed TLC mean BER %.3g well above fixed %.3g", a, b)
	}
}

// TestTLCWorstCaseOrderWorse: the forbidden order inflates the width tails,
// exactly as in MLC.
func TestTLCWorstCaseOrderWorse(t *testing.T) {
	p := DefaultNLevelParams()
	p.CellsPerWordLine = 2048
	m, err := NewNLevelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	s := nlevel.TLC(16)
	fixed, err := m.SimulateBlock(s, nlevel.FixedOrder(s), Fresh, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := m.SimulateBlock(s, nlevel.WorstCaseOrder(s), Fresh, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	fb := stats.Summarize(fixed.WPSums())
	bb := stats.Summarize(bad.WPSums())
	if bb.Max < fb.Max*1.05 {
		t.Errorf("worst-case TLC max WPi %.4f not above fixed %.4f", bb.Max, fb.Max)
	}
	if got := nlevel.MaxAggressors(s, nlevel.WorstCaseOrder(s)); got != 6 {
		t.Errorf("worst-case TLC aggressors = %d, want 6 (2 neighbours x 3 pages)", got)
	}
}

// TestNLevelMatchesAggressorAnalysis: the model's aggressor counters agree
// with the nlevel static analysis on every order type.
func TestNLevelMatchesAggressorAnalysis(t *testing.T) {
	m := newNLevelModel(t)
	s := nlevel.TLC(8)
	for name, order := range map[string][]nlevel.Page{
		"fixed":  nlevel.FixedOrder(s),
		"3phase": nlevel.RelaxedFullOrder(s),
		"worst":  nlevel.WorstCaseOrder(s),
		"random": nlevel.RandomRelaxedOrder(rng.New(9), s),
	} {
		res, err := m.SimulateBlock(s, order, Fresh, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		want := nlevel.AggressorCounts(s, order)
		for k, w := range res.WordLines {
			if w.Aggressors != want[k] {
				t.Errorf("%s WL(%d): model %d, analysis %d", name, k, w.Aggressors, want[k])
			}
		}
	}
}

// TestMLCViaNLevelConsistency: the 2-level instantiation behaves like the
// dedicated MLC model in the quantities that matter (zero-ish fresh BER,
// stress raising it, FPS==RPS equivalence).
func TestMLCViaNLevelConsistency(t *testing.T) {
	m := newNLevelModel(t)
	s := nlevel.MLC(16)
	fresh, err := m.SimulateBlock(s, nlevel.FixedOrder(s), Fresh, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// The evenly spaced 4-state instantiation has wider margins than the
	// calibrated MLC model, so push the stress far past end of life to see
	// errors at this sample size.
	harsh := StressCondition{PECycles: 10000, RetentionYears: 3}
	worn, err := m.SimulateBlock(s, nlevel.FixedOrder(s), harsh, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.BlockBER() > 1e-3 {
		t.Errorf("fresh MLC-via-nlevel BER %g", fresh.BlockBER())
	}
	if worn.BlockBER() <= fresh.BlockBER() {
		t.Errorf("harsh stress did not raise BER: fresh %g, worn %g", fresh.BlockBER(), worn.BlockBER())
	}
}

// TestTLCWorseThanMLCAtEndOfLife: with the same physics, the 8-state part
// must be less reliable than the 4-state part — the capacity/reliability
// trade the multi-leveling technique makes (Section 1).
func TestTLCWorseThanMLCAtEndOfLife(t *testing.T) {
	m := newNLevelModel(t)
	mlc, err := m.SimulateBlock(nlevel.MLC(16), nlevel.FixedOrder(nlevel.MLC(16)), WorstCase, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tlc, err := m.SimulateBlock(nlevel.TLC(16), nlevel.FixedOrder(nlevel.TLC(16)), WorstCase, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if tlc.BlockBER() <= mlc.BlockBER() {
		t.Errorf("TLC BER %g not above MLC %g at end of life", tlc.BlockBER(), mlc.BlockBER())
	}
}

func TestNLevelResultAccessors(t *testing.T) {
	m := newNLevelModel(t)
	s := nlevel.TLC(4)
	res, err := m.SimulateBlock(s, nlevel.FixedOrder(s), WorstCase, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WPSums()) != 4 || len(res.BERs()) != 4 {
		t.Error("per-WL series wrong length")
	}
	if res.TotalBits != 3*512*4 {
		t.Errorf("TotalBits = %d", res.TotalBits)
	}
	if (NLevelResult{}).BlockBER() != 0 {
		t.Error("empty BlockBER != 0")
	}
}
