package vth

import (
	"reflect"
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/nlevel"
	"flexftl/internal/rng"
)

// TestSimulateBlockArenaMatchesLegacy: arena-backed simulation is
// numerically identical to the allocate-per-call path, including when the
// arena is reused across blocks of different shapes.
func TestSimulateBlockArenaMatchesLegacy(t *testing.T) {
	m := newModel(t)
	a := NewArena()
	for _, cfg := range []struct {
		wl    int
		order []core.Page
		seed  uint64
	}{
		{16, core.FPSOrder(16), 1},
		{16, core.RPSFullOrder(16), 2},
		{8, core.WorstCaseOrder(8), 3}, // shrinking reuse
		{32, core.RPSHalfOrder(32), 4}, // growing reuse
	} {
		want, err := m.SimulateBlock(cfg.wl, cfg.order, WorstCase, rng.New(cfg.seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.SimulateBlockArena(cfg.wl, cfg.order, WorstCase, rng.New(cfg.seed), a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.WordLines, got.WordLines) ||
			want.TotalBits != got.TotalBits || want.TotalErrs != got.TotalErrs {
			t.Fatalf("wl=%d: arena result differs from legacy", cfg.wl)
		}
	}
}

// TestSimulateBlockArenaZeroAllocs pins the tentpole property: with a warm
// arena, steady-state block simulation does not allocate.
func TestSimulateBlockArenaZeroAllocs(t *testing.T) {
	p := DefaultParams()
	p.CellsPerWordLine = 128
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	const wl = 8
	order := core.RPSFullOrder(wl)
	a := NewArena()
	src := rng.New(7)
	if _, err := m.SimulateBlockArena(wl, order, WorstCase, src, a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := m.SimulateBlockArena(wl, order, WorstCase, src, a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SimulateBlockArena allocates %v times per block, want 0", allocs)
	}
}

// TestNLevelArenaMatchesLegacy mirrors the MLC equivalence check for the
// generalized model, TLC included.
func TestNLevelArenaMatchesLegacy(t *testing.T) {
	p := DefaultNLevelParams()
	p.CellsPerWordLine = 128
	m, err := NewNLevelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	for _, cfg := range []struct {
		s    nlevel.Scheme
		seed uint64
	}{
		{nlevel.TLC(8), 1},
		{nlevel.MLC(8), 2}, // scheme switch forces nseen reallocation
		{nlevel.TLC(16), 3},
	} {
		order := nlevel.FixedOrder(cfg.s)
		want, err := m.SimulateBlock(cfg.s, order, WorstCase, rng.New(cfg.seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.SimulateBlockArena(cfg.s, order, WorstCase, rng.New(cfg.seed), a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.WordLines, got.WordLines) ||
			want.TotalBits != got.TotalBits || want.TotalErrs != got.TotalErrs {
			t.Fatalf("%v: arena result differs from legacy", cfg.s)
		}
	}
}

// TestNLevelArenaZeroAllocs: the n-level simulator is allocation-free on a
// warm arena too.
func TestNLevelArenaZeroAllocs(t *testing.T) {
	p := DefaultNLevelParams()
	p.CellsPerWordLine = 64
	m, err := NewNLevelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	s := nlevel.TLC(8)
	order := nlevel.RelaxedFullOrder(s)
	a := NewArena()
	src := rng.New(9)
	if _, err := m.SimulateBlockArena(s, order, WorstCase, src, a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := m.SimulateBlockArena(s, order, WorstCase, src, a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("n-level SimulateBlockArena allocates %v times per block, want 0", allocs)
	}
}

// TestArenaRejectsBadOrders: validation still fires on the arena path and
// leaves the arena reusable.
func TestArenaRejectsBadOrders(t *testing.T) {
	m := newModel(t)
	a := NewArena()
	if _, err := m.SimulateBlockArena(4, core.FPSOrder(3), Fresh, rng.New(1), a); err == nil {
		t.Error("short order accepted")
	}
	dup := core.RPSFullOrder(4)
	dup[1] = dup[0]
	if _, err := m.SimulateBlockArena(4, dup, Fresh, rng.New(1), a); err == nil {
		t.Error("duplicate page accepted")
	}
	if _, err := m.SimulateBlockArena(4, core.RPSFullOrder(4), Fresh, rng.New(1), a); err != nil {
		t.Errorf("arena unusable after rejected orders: %v", err)
	}
}
