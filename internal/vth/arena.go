package vth

import (
	"flexftl/internal/core"
	"flexftl/internal/nlevel"
)

// Arena is reusable per-worker scratch for the Monte-Carlo simulators. A
// block simulation touches wordLines x cells state several times; with an
// arena the backing arrays are allocated once and reused, so steady-state
// SimulateBlockArena calls perform zero heap allocations (pinned by
// TestSimulateBlockArenaZeroAllocs).
//
// An Arena is not safe for concurrent use: give each worker of a parallel
// experiment its own (par.MakeScratch does exactly that). The WordLines
// slice of a result returned by an arena-based call aliases arena memory
// and is valid only until the arena's next simulation; copy out whatever
// must survive.
type Arena struct {
	// Shared between the MLC and n-level models. Cell-indexed slices are
	// flat and strided: cell c of word line k lives at k*cells + c.
	vth     []float64        // current Vth per cell
	delta   []float64        // per-cell Vth increase of the latest program
	aggr    []int            // per-WL aggressor counts
	results []WordLineResult // backing for BlockResult/NLevelResult.WordLines

	// MLC (2-bit) scratch.
	target  []State // intended final state per cell
	lsbBits []uint8 // data bit of the LSB page per cell
	msbDone []bool  // per-WL: MSB program applied
	seen    *core.BlockState

	// n-level scratch.
	state  []int32   // current (coarse) state index per cell
	depth  []int     // refinement programs applied per WL
	levels []float64 // nominal level targets of the current refinement
	minV   []float64 // per-state width tracking of one word line
	maxV   []float64
	haveSt []bool
	nseen  *nlevel.State
}

// NewArena returns an empty arena; buffers grow on first use and are
// retained across simulations.
func NewArena() *Arena { return &Arena{} }

// grow returns s resized to n, reusing its backing array when it is large
// enough. Contents are unspecified — callers must overwrite or explicitly
// clear what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// forMLC sizes the arena for a 2-bit block of wordLines x cells and clears
// the state that carries across program operations.
func (a *Arena) forMLC(wordLines, cells int) {
	n := wordLines * cells
	a.vth = grow(a.vth, n)
	a.target = grow(a.target, n)
	a.lsbBits = grow(a.lsbBits, n)
	a.delta = grow(a.delta, cells)
	a.results = grow(a.results, wordLines)
	a.msbDone = grow(a.msbDone, wordLines)
	a.aggr = grow(a.aggr, wordLines)
	for k := 0; k < wordLines; k++ {
		a.msbDone[k] = false
		a.aggr[k] = 0
	}
	if a.seen == nil || a.seen.WordLines() != wordLines {
		a.seen = core.NewBlockState(wordLines)
	} else {
		a.seen.Reset()
	}
}

// forNLevel sizes the arena for an n-level block and clears carried state.
func (a *Arena) forNLevel(s nlevel.Scheme, cells int) {
	wl := s.WordLines
	n := wl * cells
	states := 1 << s.Levels
	a.vth = grow(a.vth, n)
	a.state = grow(a.state, n)
	for i := range a.state {
		a.state[i] = 0
	}
	a.delta = grow(a.delta, cells)
	a.results = grow(a.results, wl)
	a.depth = grow(a.depth, wl)
	a.aggr = grow(a.aggr, wl)
	for k := 0; k < wl; k++ {
		a.depth[k] = 0
		a.aggr[k] = 0
	}
	a.levels = grow(a.levels, states)
	a.minV = grow(a.minV, states)
	a.maxV = grow(a.maxV, states)
	a.haveSt = grow(a.haveSt, states)
	if a.nseen == nil || a.nseen.Scheme() != s {
		a.nseen = nlevel.NewState(s)
	} else {
		a.nseen.Reset()
	}
}
