package vth

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/rng"
	"flexftl/internal/stats"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	p := DefaultParams()
	p.CellsPerWordLine = 512 // keep unit tests fast
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStateCoding(t *testing.T) {
	// Gray coding round trip for all four states.
	for s := StateE; s < numStates; s++ {
		l, m := s.Bits()
		if got := StateOf(l, m); got != s {
			t.Errorf("StateOf(Bits(%v)) = %v", s, got)
		}
	}
	// Adjacent states differ in exactly one bit (Gray property) — this is
	// why a single-level misread costs one bit error, not two.
	for s := StateE; s < StateP3; s++ {
		l1, m1 := s.Bits()
		l2, m2 := (s + 1).Bits()
		diff := 0
		if l1 != l2 {
			diff++
		}
		if m1 != m2 {
			diff++
		}
		if diff != 1 {
			t.Errorf("states %v and %v differ in %d bits, want 1", s, s+1, diff)
		}
	}
	if StateE.String() == "" || State(9).String() == "" {
		t.Error("State.String empty")
	}
}

func TestNewModelValidation(t *testing.T) {
	p := DefaultParams()
	p.CellsPerWordLine = 0
	if _, err := NewModel(p); err == nil {
		t.Error("zero cells accepted")
	}
	p = DefaultParams()
	p.ProgramSigma = 0
	if _, err := NewModel(p); err == nil {
		t.Error("zero sigma accepted")
	}
	p = DefaultParams()
	p.Levels = [4]float64{0, 0, 1, 2}
	if _, err := NewModel(p); err == nil {
		t.Error("non-increasing levels accepted")
	}
}

func TestReadReferencesBetweenLevels(t *testing.T) {
	p := DefaultParams()
	refs := p.ReadReferences()
	for i := 0; i < 3; i++ {
		if refs[i] <= p.Levels[i] || refs[i] >= p.Levels[i+1] {
			t.Errorf("ref %d (%v) not between levels %v and %v", i, refs[i], p.Levels[i], p.Levels[i+1])
		}
	}
}

func TestFreshBlockNearlyErrorFree(t *testing.T) {
	// A fresh block programmed under any legal order must read back with a
	// raw BER far below the ECC correction point (~1e-3); tiny residual
	// error rates from the interference tail are physical.
	m := newModel(t)
	const wl = 16
	for name, order := range map[string][]core.Page{
		"FPS":     core.FPSOrder(wl),
		"RPSfull": core.RPSFullOrder(wl),
		"RPShalf": core.RPSHalfOrder(wl),
	} {
		res, err := m.SimulateBlock(wl, order, Fresh, rng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ber := res.BlockBER(); ber > 5e-4 {
			t.Errorf("%s: fresh block BER = %g, want < 5e-4", name, ber)
		}
	}
}

func TestSimulateBlockRejectsBadOrders(t *testing.T) {
	m := newModel(t)
	if _, err := m.SimulateBlock(4, core.FPSOrder(3), Fresh, rng.New(1)); err == nil {
		t.Error("short order accepted")
	}
	dup := core.RPSFullOrder(4)
	dup[1] = dup[0]
	if _, err := m.SimulateBlock(4, dup, Fresh, rng.New(1)); err == nil {
		t.Error("duplicate page accepted")
	}
	bad := core.RPSFullOrder(4)
	bad[0] = core.Page{WL: 99, Type: core.LSB}
	if _, err := m.SimulateBlock(4, bad, Fresh, rng.New(1)); err == nil {
		t.Error("out-of-range page accepted")
	}
}

// TestFig4aEquivalence is the heart of the Figure 4(a) reproduction: the WPi
// width sums under RPSfull and RPShalf must not exceed FPS (statistically).
func TestFig4aEquivalence(t *testing.T) {
	m := newModel(t)
	const wl = 32
	const blocks = 8
	collect := func(order []core.Page, seed uint64) []float64 {
		var all []float64
		for b := 0; b < blocks; b++ {
			res, err := m.SimulateBlock(wl, order, Fresh, rng.New(seed+uint64(b)))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, res.WPSums()...)
		}
		return all
	}
	fps := stats.Mean(collect(core.FPSOrder(wl), 100))
	rpsFull := stats.Mean(collect(core.RPSFullOrder(wl), 200))
	rpsHalf := stats.Mean(collect(core.RPSHalfOrder(wl), 300))
	// Allow 3% statistical slack: the paper's claim is "not increased".
	if rpsFull > fps*1.03 {
		t.Errorf("RPSfull mean WPi %.4f > FPS %.4f", rpsFull, fps)
	}
	if rpsHalf > fps*1.03 {
		t.Errorf("RPShalf mean WPi %.4f > FPS %.4f", rpsHalf, fps)
	}
}

// TestWorstCaseOrderWidensDistributions reproduces the Figure 2(a) failure
// mode quantitatively: four late aggressors widen WPi well beyond FPS.
func TestWorstCaseOrderWidensDistributions(t *testing.T) {
	// Max-min widths need a decent cell population to resolve tails.
	p := DefaultParams()
	p.CellsPerWordLine = 4096
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	const wl = 32
	fpsRes, err := m.SimulateBlock(wl, core.FPSOrder(wl), Fresh, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	badRes, err := m.SimulateBlock(wl, core.WorstCaseOrder(wl), Fresh, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Interference is one-sided, so the damage shows in the upper tail: the
	// widest word lines under the unconstrained order must be clearly wider
	// than anything FPS produces.
	fpsBox := stats.Summarize(fpsRes.WPSums())
	badBox := stats.Summarize(badRes.WPSums())
	if badBox.Max < fpsBox.Max*1.08 {
		t.Errorf("worst-case max WPi %.4f not clearly above FPS max %.4f", badBox.Max, fpsBox.Max)
	}
	// The 4-aggressor word lines as a group must be wider than FPS's mean.
	var fourWP []float64
	for _, w := range badRes.WordLines {
		if w.Aggressors == 4 {
			fourWP = append(fourWP, w.WPSum)
		}
	}
	if len(fourWP) == 0 {
		t.Fatal("no word line saw 4 aggressors under the worst-case order")
	}
	if got, want := stats.Mean(fourWP), stats.Mean(fpsRes.WPSums()); got < want*1.08 {
		t.Errorf("4-aggressor mean WPi %.4f not clearly above FPS mean %.4f", got, want)
	}
	// Under end-of-life stress the unconstrained order must also lose more
	// bits than FPS — the Figure 2(a) data-loss scenario.
	fpsWorn, err := m.SimulateBlock(wl, core.FPSOrder(wl), WorstCase, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	badWorn, err := m.SimulateBlock(wl, core.WorstCaseOrder(wl), WorstCase, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if badWorn.BlockBER() < fpsWorn.BlockBER()*1.2 {
		t.Errorf("worst-case stressed BER %g not clearly above FPS %g",
			badWorn.BlockBER(), fpsWorn.BlockBER())
	}
}

func TestAggressorCountsMatchCoreAnalysis(t *testing.T) {
	m := newModel(t)
	const wl = 16
	for name, order := range map[string][]core.Page{
		"FPS":     core.FPSOrder(wl),
		"RPSfull": core.RPSFullOrder(wl),
		"worst":   core.WorstCaseOrder(wl),
	} {
		res, err := m.SimulateBlock(wl, order, Fresh, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		want := core.AggressorCounts(wl, order)
		for k, w := range res.WordLines {
			if w.Aggressors != want[k] {
				t.Errorf("%s WL(%d): model aggressors %d, core analysis %d", name, k, w.Aggressors, want[k])
			}
		}
	}
}

// TestFig4bStressRaisesBER: at 3K P/E + 1-year retention the BER must land
// in a plausible end-of-life decade and stay comparable between FPS and RPS.
func TestFig4bStressRaisesBER(t *testing.T) {
	m := newModel(t)
	const wl = 32
	fresh, err := m.SimulateBlock(wl, core.FPSOrder(wl), Fresh, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	worn, err := m.SimulateBlock(wl, core.FPSOrder(wl), WorstCase, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if worn.BlockBER() <= fresh.BlockBER() {
		t.Errorf("stress did not raise BER: fresh %g, worn %g", fresh.BlockBER(), worn.BlockBER())
	}
	if ber := worn.BlockBER(); ber < 1e-5 || ber > 5e-2 {
		t.Errorf("worst-case BER %g outside the plausible end-of-life decade", ber)
	}
	rps, err := m.SimulateBlock(wl, core.RPSFullOrder(wl), WorstCase, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if rps.BlockBER() > worn.BlockBER()*1.35 {
		t.Errorf("RPS BER %g well above FPS BER %g under stress", rps.BlockBER(), worn.BlockBER())
	}
}

func TestBlockResultAccessors(t *testing.T) {
	m := newModel(t)
	const wl = 8
	res, err := m.SimulateBlock(wl, core.FPSOrder(wl), WorstCase, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WPSums()) != wl || len(res.BERs()) != wl {
		t.Error("per-WL series have wrong length")
	}
	if res.TotalBits != wl*2*512 {
		t.Errorf("TotalBits = %d", res.TotalBits)
	}
	empty := BlockResult{}
	if empty.BlockBER() != 0 {
		t.Error("empty BlockBER != 0")
	}
}

func TestSampleWordLine(t *testing.T) {
	m := newModel(t)
	const wl = 8
	sample, err := m.SampleWordLine(wl, core.FPSOrder(wl), wl/2, Fresh, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for st := StateE; st < numStates; st++ {
		vals := sample.State(st)
		if len(vals) == 0 {
			t.Errorf("%v sampled no cells", st)
			continue
		}
		// Fresh distributions sit near their nominal levels.
		level := m.Params().Levels[st]
		mean := stats.Mean(vals)
		if mean < level-0.5 || mean > level+0.5 {
			t.Errorf("%v mean %.2f far from level %.2f", st, mean, level)
		}
	}
	if total := sample.Total(); total != m.Params().CellsPerWordLine {
		t.Errorf("sampled %d cells, want %d", total, m.Params().CellsPerWordLine)
	}
	if got := sample.State(State(9)); got != nil {
		t.Errorf("out-of-range state returned %d values", len(got))
	}
	if _, err := m.SampleWordLine(wl, core.FPSOrder(wl), 99, Fresh, rng.New(1)); err == nil {
		t.Error("out-of-range word line accepted")
	}
	if _, err := m.SampleWordLine(wl, core.FPSOrder(4), 0, Fresh, rng.New(1)); err == nil {
		t.Error("short order accepted")
	}
}

func TestSampleWordLineStressWidens(t *testing.T) {
	m := newModel(t)
	const wl = 8
	fresh, err := m.SampleWordLine(wl, core.FPSOrder(wl), 4, Fresh, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	worn, err := m.SampleWordLine(wl, core.FPSOrder(wl), 4, WorstCase, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// The P3 (highest) state's spread must grow under stress.
	if f, w := stats.StdDev(fresh.State(StateP3)), stats.StdDev(worn.State(StateP3)); w <= f {
		t.Errorf("stress did not widen P3: fresh sd %.3f, worn %.3f", f, w)
	}
}

func TestDeterminism(t *testing.T) {
	m := newModel(t)
	const wl = 8
	a, err := m.SimulateBlock(wl, core.RPSFullOrder(wl), WorstCase, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SimulateBlock(wl, core.RPSFullOrder(wl), WorstCase, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.WordLines {
		if a.WordLines[k] != b.WordLines[k] {
			t.Fatalf("same seed diverged at WL %d", k)
		}
	}
}
