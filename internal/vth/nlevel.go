package vth

import (
	"fmt"
	"math"

	"flexftl/internal/nlevel"
	"flexftl/internal/rng"
)

// N-level generalization of the Monte-Carlo model: a k-th refinement program
// splits each of the word line's 2^k distributions in two, so after the
// final (level n-1) program the cell sits in one of 2^n states. The
// interference mechanism is unchanged — a neighbour program couples a
// fraction of its cells' Vth increase onto the victim — and, as in the MLC
// model, a word line's own refinement program re-forms its distribution,
// clearing interference accumulated earlier. This is what lets the
// generalized shielding constraint (internal/nlevel) bound post-final
// aggressors at one for every legal relaxed order, TLC included.

// NLevelParams parameterizes the generalized model.
type NLevelParams struct {
	// Window is the total Vth range [WindowLow, WindowHigh] that the final
	// 2^n states are evenly placed across.
	WindowLow, WindowHigh float64
	// ProgramSigma is the per-program placement spread. Finer levels verify
	// more precisely: the effective sigma at level i is
	// ProgramSigma / 2^(levels-1-i)... no — the model uses the same sigma
	// for all programs and relies on the growing state count to shrink
	// margins, matching how real parts trade margin for capacity.
	ProgramSigma float64
	// CouplingRatio/CouplingSigma as in the MLC model.
	CouplingRatio, CouplingSigma float64
	CellsPerWordLine             int
	WearSigmaPerKCycle           float64
	RetentionShiftPerYear        float64
	RetentionSigmaPerYear        float64
}

// DefaultNLevelParams mirrors DefaultParams' MLC constants, scaled so that a
// TLC part lands in a realistic (worse-than-MLC) BER decade at end of life.
func DefaultNLevelParams() NLevelParams {
	return NLevelParams{
		WindowLow:             -2.6,
		WindowHigh:            2.8,
		ProgramSigma:          0.09,
		CouplingRatio:         0.035,
		CouplingSigma:         0.012,
		CellsPerWordLine:      2048,
		WearSigmaPerKCycle:    0.035,
		RetentionShiftPerYear: 0.22,
		RetentionSigmaPerYear: 0.05,
	}
}

// NLevelModel is the reusable n-level simulator.
type NLevelModel struct {
	p NLevelParams
}

// NewNLevelModel validates parameters.
func NewNLevelModel(p NLevelParams) (*NLevelModel, error) {
	if p.CellsPerWordLine <= 0 {
		return nil, fmt.Errorf("vth: CellsPerWordLine must be positive, got %d", p.CellsPerWordLine)
	}
	if p.ProgramSigma <= 0 {
		return nil, fmt.Errorf("vth: ProgramSigma must be positive, got %g", p.ProgramSigma)
	}
	if p.WindowHigh <= p.WindowLow {
		return nil, fmt.Errorf("vth: window [%g,%g] inverted", p.WindowLow, p.WindowHigh)
	}
	return &NLevelModel{p: p}, nil
}

// levelTargets fills dst with the nominal Vth levels after the (depth+1)-th
// refinement program: 2^(depth+1) evenly spaced levels across the window.
// After the final program these are the 2^levels state levels. dst must
// have capacity for 2^(depth+1) values; the filled prefix is returned.
func (m *NLevelModel) levelTargets(dst []float64, depth int) []float64 {
	n := 1 << (depth + 1)
	out := dst[:n]
	span := m.p.WindowHigh - m.p.WindowLow
	for i := 0; i < n; i++ {
		out[i] = m.p.WindowLow + span*float64(i)/float64(n-1)
	}
	return out
}

// NLevelResult aggregates a simulated block.
type NLevelResult struct {
	Scheme    nlevel.Scheme
	WordLines []WordLineResult
	TotalBits int
	TotalErrs int
}

// WPSums returns the per-word-line width sums.
func (r NLevelResult) WPSums() []float64 {
	out := make([]float64, len(r.WordLines))
	for i, w := range r.WordLines {
		out[i] = w.WPSum
	}
	return out
}

// BERs returns the per-word-line bit error rates.
func (r NLevelResult) BERs() []float64 {
	out := make([]float64, len(r.WordLines))
	for i, w := range r.WordLines {
		out[i] = w.BER
	}
	return out
}

// BlockBER returns the block-aggregate bit error rate.
func (r NLevelResult) BlockBER() float64 {
	if r.TotalBits == 0 {
		return 0
	}
	return float64(r.TotalErrs) / float64(r.TotalBits)
}

// SimulateBlock programs a block under the given page order with random
// data and measures per-word-line width sums and BERs under stress. Each
// call allocates fresh scratch; hot loops use SimulateBlockArena.
func (m *NLevelModel) SimulateBlock(s nlevel.Scheme, order []nlevel.Page, stress StressCondition, src *rng.Source) (NLevelResult, error) {
	return m.SimulateBlockArena(s, order, stress, src, NewArena())
}

// SimulateBlockArena is SimulateBlock on caller-owned scratch: zero
// steady-state heap allocations with a warm arena. The result's WordLines
// slice aliases arena memory and is valid until the arena's next
// simulation. Results are identical to SimulateBlock's.
func (m *NLevelModel) SimulateBlockArena(s nlevel.Scheme, order []nlevel.Page, stress StressCondition, src *rng.Source, a *Arena) (NLevelResult, error) {
	if err := s.Validate(); err != nil {
		return NLevelResult{}, err
	}
	if len(order) != s.Pages() {
		return NLevelResult{}, fmt.Errorf("vth: order has %d pages, block has %d", len(order), s.Pages())
	}
	p := m.p
	n := p.CellsPerWordLine
	wl := s.WordLines
	a.forNLevel(s, n)

	// Cell arrays are flat and strided: word line k's cell c is at k*n + c.
	vth, state, depth := a.vth, a.state, a.depth
	for k := 0; k < wl; k++ {
		row := vth[k*n : (k+1)*n]
		for c := range row {
			row[c] = p.WindowLow + src.Normal(0, p.ProgramSigma)
		}
	}
	delta := a.delta

	disturb := func(victim int) {
		if victim < 0 || victim >= wl || depth[victim] != s.Levels {
			return // not finally programmed yet: its own refinements absorb it
		}
		a.aggr[victim]++
		row := vth[victim*n : (victim+1)*n]
		for c := 0; c < n; c++ {
			if delta[c] <= 0 {
				continue
			}
			gamma := p.CouplingRatio + src.Normal(0, p.CouplingSigma)
			if gamma < 0 {
				gamma = 0
			}
			row[c] += delta[c] * gamma
		}
	}

	for i, pg := range order {
		if pg.WL < 0 || pg.WL >= wl || pg.Level < 0 || pg.Level >= s.Levels {
			return NLevelResult{}, fmt.Errorf("vth: order[%d]=%v out of range", i, pg)
		}
		if a.nseen.Written(pg) {
			return NLevelResult{}, fmt.Errorf("vth: order[%d]=%v programmed twice", i, pg)
		}
		a.nseen.Mark(pg)
		k := pg.WL
		base := k * n
		targets := m.levelTargets(a.levels, depth[k])
		for c := 0; c < n; c++ {
			// The new data bit splits the cell's current voltage region in
			// two. The reflected-Gray mapping real parts use corresponds to
			// XOR-ing the incoming bit with the current region's LSB, so
			// voltage-adjacent final states always differ in one data bit.
			bit := int32(src.Intn(2))
			newState := state[base+c]*2 + (bit ^ (state[base+c] & 1))
			state[base+c] = newState
			old := vth[base+c]
			vth[base+c] = targets[newState] + src.Normal(0, p.ProgramSigma)
			if d := vth[base+c] - old; d > 0 {
				delta[c] = d
			} else {
				delta[c] = 0
			}
		}
		depth[k]++
		disturb(k - 1)
		disturb(k + 1)
	}

	wearSigma := p.WearSigmaPerKCycle * float64(stress.PECycles) / 1000.0
	retShift := p.RetentionShiftPerYear * stress.RetentionYears
	retSigma := p.RetentionSigmaPerYear * stress.RetentionYears
	states := 1 << s.Levels
	finals := m.levelTargets(a.levels, s.Levels-1)
	bitsPerCell := s.Levels

	res := NLevelResult{Scheme: s, WordLines: a.results[:wl]}
	minV, maxV, have := a.minV, a.maxV, a.haveSt
	for k := 0; k < wl; k++ {
		for st := 0; st < states; st++ {
			have[st] = false
		}
		errs := 0
		base := k * n
		for c := 0; c < n; c++ {
			v := vth[base+c]
			if wearSigma > 0 {
				v += src.Normal(0, wearSigma)
			}
			if stress.RetentionYears > 0 {
				frac := float64(state[base+c]) / float64(states-1)
				v -= retShift * frac
				v += src.Normal(0, retSigma)
			}
			st := int(state[base+c])
			if !have[st] {
				minV[st], maxV[st] = v, v
				have[st] = true
			} else if v < minV[st] {
				minV[st] = v
			} else if v > maxV[st] {
				maxV[st] = v
			}
			got := classifyNearest(v, finals)
			if got != st {
				errs += grayDistanceBits(st, got, bitsPerCell)
			}
		}
		wp := 0.0
		for st := 0; st < states; st++ {
			if have[st] {
				wp += maxV[st] - minV[st]
			}
		}
		res.WordLines[k] = WordLineResult{
			WL:         k,
			WPSum:      wp,
			BER:        float64(errs) / float64(bitsPerCell*n),
			Aggressors: a.aggr[k],
		}
		res.TotalBits += bitsPerCell * n
		res.TotalErrs += errs
	}
	return res, nil
}

// classifyNearest maps a Vth to the index of the nearest final level —
// equivalent to thresholding at the midpoints for evenly spaced levels.
func classifyNearest(v float64, levels []float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, l := range levels {
		if d := math.Abs(v - l); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// grayDistanceBits counts differing data bits between two state indices
// under the reflected Gray code the split-programming induces (adjacent
// states differ in exactly one bit).
func grayDistanceBits(a, b, bits int) int {
	ga := a ^ (a >> 1)
	gb := b ^ (b >> 1)
	x := ga ^ gb
	count := 0
	for i := 0; i < bits; i++ {
		if x&(1<<i) != 0 {
			count++
		}
	}
	return count
}
