// Package vth is the threshold-voltage reliability model behind the
// Figure 4 study: it Monte-Carlo-simulates programming a 2-bit MLC block
// under a given page program order, accumulating cell-to-cell interference
// from aggressor programs, and reports per-page Vth distribution widths
// (WPi) and bit error rates under end-of-life stress (P/E cycling +
// retention).
//
// The model encodes the paper's Section 2 argument directly: an MSB program
// re-forms the word line's Vth distribution (clearing earlier disturbance),
// so only neighbour programs occurring *after* MSB(k) widen WL(k)'s final
// states. Orders that bound that aggressor count by 1 — the FPS interleave
// and every legal RPS order — therefore produce statistically identical
// widths, while unconstrained orders with up to 4 late aggressors blow the
// distributions out.
package vth

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/rng"
)

// State is one of the four final Vth states of a 2-bit MLC cell, ordered by
// nominal voltage: E (erased, 11), P1 (01), P2 (00), P3 (10).
type State int

// The four MLC states.
const (
	StateE State = iota
	StateP1
	StateP2
	StateP3
	numStates
)

// String names the state with its Gray-coded bit pattern.
func (s State) String() string {
	switch s {
	case StateE:
		return "E(11)"
	case StateP1:
		return "P1(01)"
	case StateP2:
		return "P2(00)"
	case StateP3:
		return "P3(10)"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// StateOf maps an (lsb, msb) bit pair to the final state under the Gray
// coding of Figure 1: 11->E, 01->P1, 00->P2, 10->P3 (bits written
// lsb, msb with 1 = erased polarity).
func StateOf(lsbBit, msbBit int) State {
	switch {
	case lsbBit == 1 && msbBit == 1:
		return StateE
	case lsbBit == 1 && msbBit == 0:
		return StateP3
	case lsbBit == 0 && msbBit == 0:
		return StateP2
	default: // lsb 0, msb 1
		return StateP1
	}
}

// Bits inverts StateOf.
func (s State) Bits() (lsbBit, msbBit int) {
	switch s {
	case StateE:
		return 1, 1
	case StateP1:
		return 0, 1
	case StateP2:
		return 0, 0
	default:
		return 1, 0
	}
}

// Params are the physical constants of the model, in volts.
type Params struct {
	// Levels are the nominal program-verify targets of the four states.
	Levels [4]float64
	// TransientLevel is the Vth of the LSB-programmed intermediate state
	// ("X0" in Figure 1).
	TransientLevel float64
	// ProgramSigma is the spread of a fresh program operation.
	ProgramSigma float64
	// CouplingRatio is the fraction of an aggressor cell's Vth increase
	// that capacitively couples onto the aligned cell of a neighbouring
	// word line (the cell-to-cell interference mechanism of Section 2.1).
	CouplingRatio float64
	// CouplingSigma is the per-cell relative spread of the coupling ratio
	// (process variation in parasitic capacitance).
	CouplingSigma float64
	// CellsPerWordLine is the Monte-Carlo population per word line.
	CellsPerWordLine int
	// WearSigmaPerKCycle widens every state by this much per 1000 P/E
	// cycles (oxide damage).
	WearSigmaPerKCycle float64
	// RetentionShiftPerYear moves programmed states down (charge loss) per
	// year, scaled by how high the state sits.
	RetentionShiftPerYear float64
	// RetentionSigmaPerYear adds spread per year of retention.
	RetentionSigmaPerYear float64
}

// DefaultParams returns constants calibrated so that (a) fresh FPS blocks
// read back error-free, (b) the worst-case operating condition of the paper
// (3K P/E + 1 year retention) lands the BER in the 1e-4..1e-2 decade of
// Figure 4(b), and (c) four late aggressors measurably widen WPi.
func DefaultParams() Params {
	return Params{
		Levels:                [4]float64{-2.6, 0.4, 1.6, 2.8},
		TransientLevel:        0.9,
		ProgramSigma:          0.11,
		CouplingRatio:         0.035,
		CouplingSigma:         0.012,
		CellsPerWordLine:      2048,
		WearSigmaPerKCycle:    0.035,
		RetentionShiftPerYear: 0.22,
		RetentionSigmaPerYear: 0.05,
	}
}

// StressCondition describes an operating point for BER measurement.
type StressCondition struct {
	PECycles       int     // program/erase cycles endured
	RetentionYears float64 // time since programming
}

// WorstCase is the paper's end-of-life condition: 3K P/E cycles and 1-year
// retention.
var WorstCase = StressCondition{PECycles: 3000, RetentionYears: 1}

// Fresh is the begin-of-life condition.
var Fresh = StressCondition{}

// ReadReferences returns the three read thresholds (VRef1..VRef3) placed at
// the midpoints between adjacent nominal levels.
func (p Params) ReadReferences() [3]float64 {
	var refs [3]float64
	for i := 0; i < 3; i++ {
		refs[i] = (p.Levels[i] + p.Levels[i+1]) / 2
	}
	return refs
}

// classify maps a Vth to the state a read would report.
func classify(v float64, refs [3]float64) State {
	switch {
	case v < refs[0]:
		return StateE
	case v < refs[1]:
		return StateP1
	case v < refs[2]:
		return StateP2
	default:
		return StateP3
	}
}

// WordLineResult carries the per-word-line outputs of a block simulation.
type WordLineResult struct {
	WL int
	// WPSum is the sum over the four states of the Vth distribution widths
	// (max-min within the state's population), the paper's Figure 4(a)
	// metric.
	WPSum float64
	// BER is the bit error rate of the word line's two pages under the
	// stress condition supplied to SimulateBlock.
	BER float64
	// Aggressors is the number of neighbour programs after this WL's MSB
	// program (the quantity RPS bounds at 1).
	Aggressors int
}

// BlockResult aggregates a simulated block.
type BlockResult struct {
	Order     string
	WordLines []WordLineResult
	TotalBits int
	TotalErrs int
}

// WPSums returns the per-word-line WPSum series.
func (b BlockResult) WPSums() []float64 {
	out := make([]float64, len(b.WordLines))
	for i, w := range b.WordLines {
		out[i] = w.WPSum
	}
	return out
}

// BERs returns the per-word-line BER series.
func (b BlockResult) BERs() []float64 {
	out := make([]float64, len(b.WordLines))
	for i, w := range b.WordLines {
		out[i] = w.BER
	}
	return out
}

// BlockBER returns the block-aggregate bit error rate.
func (b BlockResult) BlockBER() float64 {
	if b.TotalBits == 0 {
		return 0
	}
	return float64(b.TotalErrs) / float64(b.TotalBits)
}

// Model is a reusable simulator with fixed parameters.
type Model struct {
	p Params
}

// NewModel validates the parameters and returns a Model.
func NewModel(p Params) (*Model, error) {
	if p.CellsPerWordLine <= 0 {
		return nil, fmt.Errorf("vth: CellsPerWordLine must be positive, got %d", p.CellsPerWordLine)
	}
	if p.ProgramSigma <= 0 {
		return nil, fmt.Errorf("vth: ProgramSigma must be positive, got %g", p.ProgramSigma)
	}
	for i := 0; i < 3; i++ {
		if p.Levels[i] >= p.Levels[i+1] {
			return nil, fmt.Errorf("vth: state levels must be increasing: %v", p.Levels)
		}
	}
	return &Model{p: p}, nil
}

// Params returns the model constants.
func (m *Model) Params() Params { return m.p }

// SimulateBlock programs a block of the given word-line count in the given
// page order with random data, applies the stress condition, and returns
// per-word-line WPi sums and BERs. The order must program every page of the
// block exactly once (use core's order constructors).
//
// Each call allocates fresh scratch; hot loops (the Figure 4 drivers) use
// SimulateBlockArena with a per-worker Arena instead.
func (m *Model) SimulateBlock(wordLines int, order []core.Page, stress StressCondition, src *rng.Source) (BlockResult, error) {
	return m.SimulateBlockArena(wordLines, order, stress, src, NewArena())
}

// SimulateBlockArena is SimulateBlock running on caller-owned scratch: with
// a warm arena the steady-state simulation performs zero heap allocations.
// The result's WordLines slice aliases arena memory and is valid until the
// arena's next simulation. Results are identical to SimulateBlock's for the
// same inputs.
func (m *Model) SimulateBlockArena(wordLines int, order []core.Page, stress StressCondition, src *rng.Source, a *Arena) (BlockResult, error) {
	if err := m.programBlock(wordLines, order, src, a); err != nil {
		return BlockResult{}, err
	}
	return m.measure(wordLines, stress, src, a), nil
}

// programBlock runs the programming phase: cells are placed per the order,
// accumulating aggressor coupling, and left pre-stress in the arena. Cell
// arrays are flat and strided: word line k's cell c is at k*cells + c.
func (m *Model) programBlock(wordLines int, order []core.Page, src *rng.Source, a *Arena) error {
	if len(order) != 2*wordLines {
		return fmt.Errorf("vth: order has %d pages, block has %d", len(order), 2*wordLines)
	}
	p := m.p
	n := p.CellsPerWordLine
	a.forMLC(wordLines, n)
	vth, target, lsbBits := a.vth, a.target, a.lsbBits
	for k := 0; k < wordLines; k++ {
		row := vth[k*n : (k+1)*n]
		for c := range row {
			row[c] = p.Levels[StateE] + src.Normal(0, p.ProgramSigma)
		}
	}

	// delta carries the per-cell Vth increase of the latest program, which
	// couples onto the aligned cells of neighbouring word lines.
	delta := a.delta

	disturb := func(victim int) {
		if victim < 0 || victim >= wordLines || !a.msbDone[victim] {
			// Interference onto partially-programmed word lines is absorbed
			// when their own MSB program re-forms the distribution, so only
			// fully-programmed victims accumulate it.
			return
		}
		a.aggr[victim]++
		row := vth[victim*n : (victim+1)*n]
		for c := 0; c < n; c++ {
			if delta[c] <= 0 {
				continue
			}
			gamma := p.CouplingRatio + src.Normal(0, p.CouplingSigma)
			if gamma < 0 {
				gamma = 0
			}
			row[c] += delta[c] * gamma
		}
	}

	for i, pg := range order {
		if pg.WL < 0 || pg.WL >= wordLines {
			return fmt.Errorf("vth: order[%d]=%v out of range", i, pg)
		}
		if a.seen.Written(pg) {
			return fmt.Errorf("vth: order[%d]=%v programmed twice", i, pg)
		}
		a.seen.Mark(pg)
		k := pg.WL
		base := k * n
		switch pg.Type {
		case core.LSB:
			for c := 0; c < n; c++ {
				bit := src.Intn(2)
				lsbBits[base+c] = uint8(bit)
				old := vth[base+c]
				if bit == 0 { // programmed polarity: E -> transient X0
					vth[base+c] = p.TransientLevel + src.Normal(0, p.ProgramSigma)
				}
				if d := vth[base+c] - old; d > 0 {
					delta[c] = d
				} else {
					delta[c] = 0
				}
			}
		case core.MSB:
			for c := 0; c < n; c++ {
				msbBit := src.Intn(2)
				st := StateOf(int(lsbBits[base+c]), msbBit)
				target[base+c] = st
				// The MSB program re-places the cell at its final level with
				// fresh program noise, clearing interference accumulated in
				// the transient state.
				old := vth[base+c]
				vth[base+c] = p.Levels[st] + src.Normal(0, p.ProgramSigma)
				if d := vth[base+c] - old; d > 0 {
					delta[c] = d
				} else {
					delta[c] = 0
				}
			}
			a.msbDone[k] = true
		}
		disturb(k - 1)
		disturb(k + 1)
	}
	return nil
}

// stressCell applies wear widening and retention shift to one cell.
func (m *Model) stressCell(v float64, st State, stress StressCondition, src *rng.Source) float64 {
	p := m.p
	if stress.PECycles > 0 {
		v += src.Normal(0, p.WearSigmaPerKCycle*float64(stress.PECycles)/1000.0)
	}
	if stress.RetentionYears > 0 {
		// Charge loss scales with how much charge the state holds.
		frac := float64(st) / 3.0
		v -= p.RetentionShiftPerYear * stress.RetentionYears * frac
		v += src.Normal(0, p.RetentionSigmaPerYear*stress.RetentionYears)
	}
	return v
}

// measure applies stress and computes the per-word-line metrics from the
// arena's programmed block.
func (m *Model) measure(wordLines int, stress StressCondition, src *rng.Source, a *Arena) BlockResult {
	p := m.p
	n := p.CellsPerWordLine
	vth, target, aggressors := a.vth, a.target, a.aggr
	refs := p.ReadReferences()

	res := BlockResult{Order: "", WordLines: a.results[:wordLines]}
	for k := 0; k < wordLines; k++ {
		// Group cells by intended state for width measurement, after stress.
		var minV, maxV [4]float64
		var have [4]bool
		errs := 0
		base := k * n
		for c := 0; c < n; c++ {
			v := m.stressCell(vth[base+c], target[base+c], stress, src)
			st := target[base+c]
			if !have[st] {
				minV[st], maxV[st] = v, v
				have[st] = true
			} else if v < minV[st] {
				minV[st] = v
			} else if v > maxV[st] {
				maxV[st] = v
			}
			got := classify(v, refs)
			if got != st {
				gl, gm := got.Bits()
				wl, wm := st.Bits()
				if gl != wl {
					errs++
				}
				if gm != wm {
					errs++
				}
			}
		}
		wpSum := 0.0
		for s := 0; s < 4; s++ {
			if have[s] {
				wpSum += maxV[s] - minV[s]
			}
		}
		res.WordLines[k] = WordLineResult{
			WL:         k,
			WPSum:      wpSum,
			BER:        float64(errs) / float64(2*n),
			Aggressors: aggressors[k],
		}
		res.TotalBits += 2 * n
		res.TotalErrs += errs
	}
	return res
}

// WordLineSample holds one word line's post-stress cell voltages grouped by
// intended state. The per-state groups are views into a single flat buffer
// (no per-state map or repeated append growth).
type WordLineSample struct {
	byState [numStates][]float64
}

// State returns the voltages of cells targeted at st, in cell order.
func (s *WordLineSample) State(st State) []float64 {
	if st < 0 || st >= numStates {
		return nil
	}
	return s.byState[st]
}

// Total returns the sampled cell count.
func (s *WordLineSample) Total() int {
	n := 0
	for _, g := range s.byState {
		n += len(g)
	}
	return n
}

// SampleWordLine programs a block under the given order, applies stress,
// and returns word line wl's cell Vth values grouped by intended state —
// the data behind the Figure 1 distribution diagram.
func (m *Model) SampleWordLine(wordLines int, order []core.Page, wl int, stress StressCondition, src *rng.Source) (WordLineSample, error) {
	if wl < 0 || wl >= wordLines {
		return WordLineSample{}, fmt.Errorf("vth: word line %d out of range [0,%d)", wl, wordLines)
	}
	a := NewArena()
	if err := m.programBlock(wordLines, order, src, a); err != nil {
		return WordLineSample{}, err
	}
	// Bucket the word line's cells into one flat buffer: count, carve
	// per-state sub-slices, then fill in cell order.
	n := m.p.CellsPerWordLine
	base := wl * n
	var counts [numStates]int
	for c := 0; c < n; c++ {
		counts[a.target[base+c]]++
	}
	flat := make([]float64, n)
	var out WordLineSample
	off := 0
	for st := State(0); st < numStates; st++ {
		out.byState[st] = flat[off:off:(off + counts[st])]
		off += counts[st]
	}
	for c := 0; c < n; c++ {
		st := a.target[base+c]
		out.byState[st] = append(out.byState[st], m.stressCell(a.vth[base+c], st, stress, src))
	}
	return out, nil
}
