package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children with different labels produced the same first output")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const want = 250.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(want)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("Exp mean = %v, want ~%v", mean, want)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const wantMean, wantSD = 10.0, 3.0
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(wantMean, wantSD)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-wantMean) > 0.05 {
		t.Errorf("Normal mean = %v, want ~%v", mean, wantMean)
	}
	if math.Abs(sd-wantSD) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~%v", sd, wantSD)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(19)
	const lo, hi = 10.0, 10000.0
	for i := 0; i < 50000; i++ {
		v := r.Pareto(1.2, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// With alpha close to 1 the sample mean should sit far above the lower
	// bound — i.e. the tail actually contributes.
	r := New(23)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Pareto(1.1, 10, 1e6)
	}
	if mean := sum / n; mean < 30 {
		t.Errorf("Pareto mean = %v, tail looks truncated", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	src := New(31)
	const n = 1000
	z := NewZipf(src, n, 0.99)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= n {
			t.Fatalf("Zipf rank %d out of [0,%d)", k, n)
		}
		counts[k]++
	}
	// Rank 0 must be the clear mode and the top decile should dominate.
	if counts[0] < counts[n/2]*10 {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[mid]=%d", counts[0], counts[n/2])
	}
	top := 0
	for i := 0; i < n/10; i++ {
		top += counts[i]
	}
	if frac := float64(top) / draws; frac < 0.5 {
		t.Errorf("top 10%% of ranks got %.2f of draws, want > 0.5", frac)
	}
}

func TestZipfLowThetaFlatter(t *testing.T) {
	srcA, srcB := New(37), New(37)
	hot := func(theta float64, src *Source) float64 {
		z := NewZipf(src, 100, theta)
		c := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if z.Next() == 0 {
				c++
			}
		}
		return float64(c) / draws
	}
	if h1, h2 := hot(0.5, srcA), hot(1.3, srcB); h1 >= h2 {
		t.Errorf("theta=0.5 hot fraction %v >= theta=1.3 fraction %v", h1, h2)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(New(1), 0, 0.9) },
		func() { NewZipf(New(1), 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Int63n stays within range for arbitrary positive bounds.
func TestInt63nProperty(t *testing.T) {
	r := New(41)
	f := func(bound uint32) bool {
		n := int64(bound%1000000) + 1
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
