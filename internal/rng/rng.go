// Package rng provides the deterministic random-number substrate used by the
// workload generators, the Vth Monte-Carlo model and the property tests. It
// implements SplitMix64 for seeding and xoshiro256** as the core generator,
// plus the distributions the simulator needs (uniform, exponential, Pareto,
// normal, Zipf). Everything is seeded explicitly so simulation runs are
// reproducible bit-for-bit.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output. It is
// used to expand a single seed into the four xoshiro words.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** PRNG.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from a single 64-bit seed via SplitMix64.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	return &src
}

// Split derives an independent child generator. The child stream is a
// function of the parent state and the label, so subsystems can be given
// stable, non-overlapping streams.
func (r *Source) Split(label uint64) *Source {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *Source) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto sample in [lo, hi] with shape alpha. It is
// used for bursty inter-arrival gaps and heavy-tailed request sizes.
func (r *Source) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("rng: Pareto requires 0 < lo < hi")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	return x
}

// Normal returns a normally distributed value (Box–Muller).
func (r *Source) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n), Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
