package rng

import "math"

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta. The workload generators use it to model the skewed
// ("hot/cold") page-access locality of enterprise I/O traces: a small set of
// logical pages absorbs most writes, which is what gives garbage collection
// its invalid-page supply.
//
// The implementation uses the rejection-inversion sampler of Hörmann and
// Derflinger, which needs O(1) state and no per-rank tables, so a 4M-page
// address space costs nothing to set up.
type Zipf struct {
	src              *Source
	n                float64
	theta            float64
	oneMinusTheta    float64
	invOneMinusTheta float64
	hIntegralX1      float64
	hIntegralN       float64
	s                float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent theta in (0, 1) ∪
// (1, ∞). theta near 0 approaches uniform; common trace-fitting values are
// 0.8–1.2.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if theta <= 0 {
		panic("rng: Zipf requires theta > 0")
	}
	z := &Zipf{src: src, n: float64(n), theta: theta}
	z.oneMinusTheta = 1 - theta
	z.invOneMinusTheta = 1 / z.oneMinusTheta
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(z.n + 0.5)
	z.s = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// h is the (unnormalized) density x^-theta.
func (z *Zipf) h(x float64) float64 { return math.Exp(-z.theta * math.Log(x)) }

// hIntegral is the antiderivative of h.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusTheta*logX) * logX
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusTheta
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x stably.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2 computes expm1(x)/x stably.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}

// Next returns the next Zipf-distributed rank in [0, n). Rank 0 is hottest.
func (z *Zipf) Next() int {
	if z.theta == 1 {
		// Exponent exactly 1 is outside the sampler's domain; callers use
		// 0.99/1.01 in practice, but guard anyway.
		panic("rng: Zipf theta == 1 unsupported")
	}
	for {
		u := z.hIntegralN + z.src.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}
