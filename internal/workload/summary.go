package workload

import (
	"fmt"

	"flexftl/internal/sim"
)

// TraceStats summarizes a request stream — the numbers `flextrace stat`
// prints and the Table 1 verification consumes.
type TraceStats struct {
	Requests    int
	Reads       int
	Writes      int
	Trims       int
	ReadPages   int64
	WritePages  int64
	Span        sim.Time // last arrival
	IdleTime    sim.Time // sum of gaps above IdleGapThreshold
	MaxGap      sim.Time
	UniquePages int // distinct first-page values touched
}

// IdleGapThreshold is the gap length counted as idle in TraceStats.
const IdleGapThreshold = 5 * sim.Millisecond

// Summarize drains a generator and computes its statistics.
func Summarize(gen Generator) TraceStats {
	var st TraceStats
	var prev sim.Time
	seen := make(map[int64]struct{})
	first := true
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		st.Requests++
		switch req.Op {
		case OpRead:
			st.Reads++
			st.ReadPages += int64(req.Pages)
		case OpTrim:
			st.Trims++
		default:
			st.Writes++
			st.WritePages += int64(req.Pages)
		}
		if !first {
			gap := req.Arrival - prev
			if gap > st.MaxGap {
				st.MaxGap = gap
			}
			if gap > IdleGapThreshold {
				st.IdleTime += gap
			}
		}
		prev = req.Arrival
		st.Span = req.Arrival
		seen[req.Page] = struct{}{}
		first = false
	}
	st.UniquePages = len(seen)
	return st
}

// ReadFraction returns the request-level read share.
func (s TraceStats) ReadFraction() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Requests)
}

// IdleFraction returns the share of the trace span spent in idle gaps.
func (s TraceStats) IdleFraction() float64 {
	if s.Span <= 0 {
		return 0
	}
	return float64(s.IdleTime) / float64(s.Span)
}

// OfferedIOPS returns the average request rate over the span.
func (s TraceStats) OfferedIOPS() float64 {
	if s.Span <= 0 {
		return 0
	}
	return float64(s.Requests) / s.Span.Seconds()
}

// String renders a multi-line report.
func (s TraceStats) String() string {
	return fmt.Sprintf(
		"requests   : %d (%d reads / %d writes / %d trims, R frac %.2f)\n"+
			"pages      : %d read / %d written\n"+
			"span       : %v (idle %.1f%%, max gap %v)\n"+
			"offered    : %.0f IOPS\n"+
			"unique pgs : %d",
		s.Requests, s.Reads, s.Writes, s.Trims, s.ReadFraction(),
		s.ReadPages, s.WritePages,
		s.Span, 100*s.IdleFraction(), s.MaxGap,
		s.OfferedIOPS(), s.UniquePages)
}
