package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"flexftl/internal/sim"
)

// Trace I/O: workloads can be captured to a compact binary stream (or a
// human-readable CSV) and replayed later, so experiments are repeatable
// across machines and external traces can be fed to the simulator.

// traceMagic guards the binary format.
var traceMagic = [4]byte{'f', 'x', 't', '1'}

// ErrBadTrace is returned for malformed trace streams.
var ErrBadTrace = errors.New("workload: malformed trace")

// WriteBinary captures every request from gen to w in the compact binary
// format and returns the number of requests written.
func WriteBinary(w io.Writer, gen Generator) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return 0, err
	}
	n := 0
	var rec [21]byte
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(rec[0:8], uint64(req.Arrival))
		rec[8] = byte(req.Op)
		binary.LittleEndian.PutUint64(rec[9:17], uint64(req.Page))
		binary.LittleEndian.PutUint32(rec[17:21], uint32(req.Pages))
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// binaryReplay replays a binary trace stream.
type binaryReplay struct {
	r    *bufio.Reader
	name string
	err  error
}

// NewBinaryReplay wraps a binary trace stream as a Generator.
func NewBinaryReplay(r io.Reader, name string) (Generator, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	return &binaryReplay{r: br, name: name}, nil
}

// Name identifies the replayed trace.
func (b *binaryReplay) Name() string { return b.name }

// Next decodes the next record.
func (b *binaryReplay) Next() (Request, bool) {
	if b.err != nil {
		return Request{}, false
	}
	var rec [21]byte
	if _, err := io.ReadFull(b.r, rec[:]); err != nil {
		b.err = err
		return Request{}, false
	}
	return Request{
		Arrival: sim.Time(binary.LittleEndian.Uint64(rec[0:8])),
		Op:      Op(rec[8]),
		Page:    int64(binary.LittleEndian.Uint64(rec[9:17])),
		Pages:   int(binary.LittleEndian.Uint32(rec[17:21])),
	}, true
}

// WriteCSV captures every request from gen to w as
// "arrival_us,op,page,pages" lines with a header.
func WriteCSV(w io.Writer, gen Generator) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "arrival_us,op,page,pages"); err != nil {
		return 0, err
	}
	n := 0
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", int64(req.Arrival), req.Op, req.Page, req.Pages); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// csvReplay replays a CSV trace.
type csvReplay struct {
	sc   *bufio.Scanner
	name string
}

// NewCSVReplay wraps a CSV trace stream as a Generator. The header line is
// consumed immediately.
func NewCSVReplay(r io.Reader, name string) (Generator, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty CSV", ErrBadTrace)
	}
	if got := strings.TrimSpace(sc.Text()); got != "arrival_us,op,page,pages" {
		return nil, fmt.Errorf("%w: unexpected header %q", ErrBadTrace, got)
	}
	return &csvReplay{sc: sc, name: name}, nil
}

// Name identifies the replayed trace.
func (c *csvReplay) Name() string { return c.name }

// Next parses the next line.
func (c *csvReplay) Next() (Request, bool) {
	for c.sc.Scan() {
		line := strings.TrimSpace(c.sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return Request{}, false
		}
		arrival, err1 := strconv.ParseInt(parts[0], 10, 64)
		page, err2 := strconv.ParseInt(parts[2], 10, 64)
		pages, err3 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return Request{}, false
		}
		op := OpWrite
		switch parts[1] {
		case "R":
			op = OpRead
		case "T":
			op = OpTrim
		}
		return Request{Arrival: sim.Time(arrival), Op: op, Page: page, Pages: pages}, true
	}
	return Request{}, false
}

// Limit caps a generator at n requests (useful for warm-up splits).
func Limit(gen Generator, n int) Generator {
	return &limited{gen: gen, remaining: n}
}

type limited struct {
	gen       Generator
	remaining int
}

func (l *limited) Name() string { return l.gen.Name() }

func (l *limited) Next() (Request, bool) {
	if l.remaining <= 0 {
		return Request{}, false
	}
	l.remaining--
	return l.gen.Next()
}
