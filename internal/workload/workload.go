// Package workload generates the five I/O workloads of the paper's Table 1.
// The paper drives its testbed with Sysbench (OLTP, NTRX) and Filebench
// (Webserver, Varmail, Fileserver); this package substitutes seeded
// synthetic generators that reproduce the characteristics those benchmarks
// are used for: the read:write ratio, the I/O intensiveness (burst length
// and inter-request gaps), the availability of idle time for background GC,
// request sizes, and skewed page-access locality.
package workload

import (
	"fmt"

	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// Op is the request direction.
type Op uint8

// Request operations.
const (
	OpRead Op = iota
	OpWrite
	OpTrim
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpTrim:
		return "T"
	default:
		return "W"
	}
}

// Request is one host I/O: Pages logical pages starting at Page.
type Request struct {
	Arrival sim.Time
	Op      Op
	Page    int64 // first logical page
	Pages   int   // request length in pages
}

// Generator streams a deterministic request sequence with nondecreasing
// arrival times.
type Generator interface {
	// Next returns the next request, or ok=false when the workload ends.
	Next() (Request, bool)
	// Name identifies the workload.
	Name() string
}

// Intensity buckets of Table 1.
type Intensity int

// Table 1 intensiveness labels.
const (
	IntensityModerate Intensity = iota
	IntensityHigh
	IntensityVeryHigh
)

// String renders the Table 1 label.
func (i Intensity) String() string {
	switch i {
	case IntensityModerate:
		return "Moderate"
	case IntensityHigh:
		return "High"
	default:
		return "Very high"
	}
}

// Profile parameterizes a synthetic workload.
type Profile struct {
	Name         string
	ReadFraction float64   // fraction of requests that are reads
	Intensity    Intensity // Table 1 label (documentation; the gaps below encode it)

	// Arrival process: requests come in bursts. Burst lengths are
	// geometric with mean BurstLen; requests within a burst are spaced by
	// exponential gaps of mean IntraGap; bursts are separated by
	// exponential idle gaps of mean IdleGap.
	BurstLen int
	IntraGap sim.Time
	IdleGap  sim.Time

	// Request sizes in pages: geometric with mean PagesMean, capped at
	// PagesCap.
	PagesMean float64
	PagesCap  int

	// Locality: writes target a Zipf(theta) distribution over the logical
	// space; reads target previously written pages.
	ZipfTheta float64

	// TrimFraction of requests are host discards (file deletions),
	// targeting previously written pages. Mail and file servers delete
	// regularly; database workloads do not.
	TrimFraction float64
}

// Validate rejects unusable profiles.
func (p Profile) Validate() error {
	switch {
	case p.ReadFraction < 0 || p.ReadFraction > 1:
		return fmt.Errorf("workload: read fraction %v outside [0,1]", p.ReadFraction)
	case p.BurstLen < 1:
		return fmt.Errorf("workload: burst length %d < 1", p.BurstLen)
	case p.IntraGap < 0 || p.IdleGap < 0:
		return fmt.Errorf("workload: negative gaps")
	case p.PagesMean < 1 || p.PagesCap < 1:
		return fmt.Errorf("workload: page size parameters must be >= 1")
	case p.ZipfTheta <= 0 || p.ZipfTheta == 1:
		return fmt.Errorf("workload: zipf theta %v invalid", p.ZipfTheta)
	case p.TrimFraction < 0 || p.TrimFraction+p.ReadFraction > 1:
		return fmt.Errorf("workload: trim fraction %v leaves no room for writes", p.TrimFraction)
	}
	return nil
}

// The five Table 1 profiles. Gaps are tuned so that OLTP/NTRX leave almost
// no idle time, Webserver leaves large idle windows, and Varmail/Fileserver
// leave a fair amount — the property the paper's background GC depends on.

// OLTP is the Sysbench OLTP substitute: read-dominant (7:3), very high
// intensity, almost no idle time.
func OLTP() Profile {
	return Profile{
		Name: "OLTP", ReadFraction: 0.7, Intensity: IntensityVeryHigh,
		BurstLen: 512, IntraGap: 150 * sim.Microsecond, IdleGap: 2 * sim.Millisecond,
		PagesMean: 1.5, PagesCap: 4, ZipfTheta: 0.99,
	}
}

// NTRX is the Sysbench non-transactional substitute: write-dominant (3:7),
// very high intensity, almost no idle time.
func NTRX() Profile {
	return Profile{
		Name: "NTRX", ReadFraction: 0.3, Intensity: IntensityVeryHigh,
		BurstLen: 512, IntraGap: 150 * sim.Microsecond, IdleGap: 2 * sim.Millisecond,
		PagesMean: 1.5, PagesCap: 4, ZipfTheta: 0.99,
	}
}

// Webserver is the Filebench webserver substitute: read-dominant (4:1),
// moderate intensity with large idle times.
func Webserver() Profile {
	return Profile{
		Name: "Webserver", ReadFraction: 0.8, Intensity: IntensityModerate,
		BurstLen: 48, IntraGap: 400 * sim.Microsecond, IdleGap: 1000 * sim.Millisecond,
		PagesMean: 2, PagesCap: 8, ZipfTheta: 0.9, TrimFraction: 0.02,
	}
}

// Varmail is the Filebench mail-server substitute: balanced (1:1),
// write-bursty with a fair amount of idle time.
func Varmail() Profile {
	return Profile{
		Name: "Varmail", ReadFraction: 0.5, Intensity: IntensityHigh,
		BurstLen: 256, IntraGap: 60 * sim.Microsecond, IdleGap: 800 * sim.Millisecond,
		PagesMean: 1.5, PagesCap: 4, ZipfTheta: 1.05, TrimFraction: 0.05,
	}
}

// Fileserver is the Filebench file-server substitute: write-dominant (1:2),
// bursty with a fair amount of idle time and larger requests.
func Fileserver() Profile {
	return Profile{
		Name: "Fileserver", ReadFraction: 1.0 / 3.0, Intensity: IntensityHigh,
		BurstLen: 256, IntraGap: 120 * sim.Microsecond, IdleGap: 1500 * sim.Millisecond,
		PagesMean: 3, PagesCap: 16, ZipfTheta: 1.05, TrimFraction: 0.05,
	}
}

// All returns the five Table 1 workloads in paper order.
func All() []Profile {
	return []Profile{OLTP(), NTRX(), Webserver(), Varmail(), Fileserver()}
}

// ZipfProfile returns the skewed write-dominant workload the placement-axis
// studies sweep: Table-1-compatible arrival, burst and request-size
// parameters (the NTRX envelope, so GC pressure builds quickly), no trims,
// and a caller-chosen Zipf theta dialing the locality from near-uniform
// (0.5) to hot-head (1.2). The theta is part of the name so runs over
// different skews stay distinguishable in reports.
func ZipfProfile(theta float64) Profile {
	return Profile{
		Name: fmt.Sprintf("Zipf-%.2f", theta), ReadFraction: 0.2, Intensity: IntensityVeryHigh,
		BurstLen: 512, IntraGap: 150 * sim.Microsecond, IdleGap: 2 * sim.Millisecond,
		PagesMean: 1.5, PagesCap: 4, ZipfTheta: theta,
	}
}

// NewZipf builds a deterministic skewed generator over `space` logical pages
// emitting `total` requests — ZipfProfile(theta) under the standard seeded
// construction (same seed, same stream).
func NewZipf(theta float64, space int64, total int, seed uint64) (Generator, error) {
	return New(ZipfProfile(theta), space, total, seed)
}

// synthetic is the Profile-driven Generator.
type synthetic struct {
	p        Profile
	src      *rng.Source
	zipf     *rng.Zipf
	space    int64
	total    int
	emitted  int
	now      sim.Time
	burstRem int
	written  []int64 // pages written so far (read targets)
	maxHist  int
}

// New builds a generator over a logical space of `space` pages emitting
// `total` requests.
func New(p Profile, space int64, total int, seed uint64) (Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if space <= 0 || total <= 0 {
		return nil, fmt.Errorf("workload: space %d and total %d must be positive", space, total)
	}
	src := rng.New(seed)
	return &synthetic{
		p:       p,
		src:     src,
		zipf:    rng.NewZipf(src.Split(1), int(space), p.ZipfTheta),
		space:   space,
		total:   total,
		maxHist: 1 << 16,
	}, nil
}

// Name identifies the workload.
func (s *synthetic) Name() string { return s.p.Name }

// Next emits the next request.
func (s *synthetic) Next() (Request, bool) {
	if s.emitted >= s.total {
		return Request{}, false
	}
	if s.burstRem <= 0 {
		// Geometric burst length with the configured mean.
		s.burstRem = 1 + int(s.src.Exp(float64(s.p.BurstLen-1)))
		if s.emitted > 0 {
			s.now += sim.Time(s.src.Exp(float64(s.p.IdleGap)))
		}
	} else {
		s.now += sim.Time(s.src.Exp(float64(s.p.IntraGap)))
	}
	s.burstRem--

	pages := 1 + int(s.src.Exp(s.p.PagesMean-1))
	if pages > s.p.PagesCap {
		pages = s.p.PagesCap
	}

	op := OpWrite
	if len(s.written) > 0 {
		r := s.src.Float64()
		switch {
		case r < s.p.ReadFraction:
			op = OpRead
		case r < s.p.ReadFraction+s.p.TrimFraction:
			op = OpTrim
		}
	}
	var page int64
	switch op {
	case OpRead:
		page = s.written[s.src.Intn(len(s.written))]
	case OpTrim:
		// Delete a previously written extent and drop it from the read
		// candidates.
		i := s.src.Intn(len(s.written))
		page = s.written[i]
		s.written[i] = s.written[len(s.written)-1]
		s.written = s.written[:len(s.written)-1]
	default:
		page = int64(s.zipf.Next())
		if len(s.written) < s.maxHist {
			s.written = append(s.written, page)
		} else {
			s.written[s.src.Intn(s.maxHist)] = page
		}
	}
	if int64(pages) > s.space {
		// A tiny logical space (smaller than one request) must not push the
		// extent clamp below page 0.
		pages = int(s.space)
	}
	if page+int64(pages) > s.space {
		page = s.space - int64(pages)
	}
	s.emitted++
	return Request{Arrival: s.now, Op: op, Page: page, Pages: pages}, true
}
