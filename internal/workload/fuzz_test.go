package workload

import (
	"bytes"
	"testing"
)

// FuzzBinaryReplay: arbitrary bytes must never panic the binary decoder —
// they either parse as records or terminate the stream.
func FuzzBinaryReplay(f *testing.F) {
	gen, err := New(OLTP(), 1000, 20, 1)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := WriteBinary(&valid, gen); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("fxt1"))
	f.Add([]byte("fxt1\x00\x01\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		replay, err := NewBinaryReplay(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			req, ok := replay.Next()
			if !ok {
				break
			}
			if req.Pages < 0 {
				t.Fatalf("negative page count decoded: %+v", req)
			}
		}
	})
}

// FuzzCSVReplay: arbitrary text must never panic the CSV decoder.
func FuzzCSVReplay(f *testing.F) {
	gen, err := New(Varmail(), 1000, 20, 1)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := WriteCSV(&valid, gen); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add("arrival_us,op,page,pages\n")
	f.Add("arrival_us,op,page,pages\n1,W,2,3\nnot,a,row\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		replay, err := NewCSVReplay(bytes.NewReader([]byte(data)), "fuzz")
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, ok := replay.Next(); !ok {
				break
			}
		}
	})
}
