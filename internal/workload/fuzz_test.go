package workload

import (
	"bytes"
	"testing"
)

// FuzzBinaryReplay: arbitrary bytes must never panic the binary decoder —
// they either parse as records or terminate the stream.
func FuzzBinaryReplay(f *testing.F) {
	gen, err := New(OLTP(), 1000, 20, 1)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := WriteBinary(&valid, gen); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("fxt1"))
	f.Add([]byte("fxt1\x00\x01\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		replay, err := NewBinaryReplay(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			req, ok := replay.Next()
			if !ok {
				break
			}
			if req.Pages < 0 {
				t.Fatalf("negative page count decoded: %+v", req)
			}
		}
	})
}

// FuzzCSVReplay: arbitrary text must never panic the CSV decoder.
func FuzzCSVReplay(f *testing.F) {
	gen, err := New(Varmail(), 1000, 20, 1)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := WriteCSV(&valid, gen); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add("arrival_us,op,page,pages\n")
	f.Add("arrival_us,op,page,pages\n1,W,2,3\nnot,a,row\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		replay, err := NewCSVReplay(bytes.NewReader([]byte(data)), "fuzz")
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, ok := replay.Next(); !ok {
				break
			}
		}
	})
}

// FuzzZipf: any (theta, space, total, seed) either fails validation or
// yields a well-formed in-bounds request stream.
func FuzzZipf(f *testing.F) {
	f.Add(0.99, int64(4096), 500, uint64(1))
	f.Add(0.5, int64(1), 1, uint64(0))
	f.Add(1.2, int64(1<<20), 100, uint64(42))
	f.Add(-1.0, int64(100), 10, uint64(3))
	f.Add(1.0, int64(100), 10, uint64(3))
	f.Fuzz(func(t *testing.T, theta float64, space int64, total int, seed uint64) {
		if total > 5000 {
			total = 5000
		}
		gen, err := NewZipf(theta, space, total, seed)
		if err != nil {
			return
		}
		n := 0
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			n++
			if req.Page < 0 || req.Page >= space || req.Pages < 1 {
				t.Fatalf("out-of-bounds request %+v for space %d", req, space)
			}
		}
		if n != total {
			t.Fatalf("emitted %d of %d requests", n, total)
		}
	})
}
