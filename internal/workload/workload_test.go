package workload

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"flexftl/internal/sim"
)

func collect(t *testing.T, gen Generator, max int) []Request {
	t.Helper()
	var out []Request
	for i := 0; i < max; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		out = append(out, req)
	}
	return out
}

func TestProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(All()) != 5 {
		t.Errorf("All() returned %d profiles, want the paper's 5", len(All()))
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	base := OLTP()
	mutations := []func(*Profile){
		func(p *Profile) { p.ReadFraction = -0.1 },
		func(p *Profile) { p.ReadFraction = 1.1 },
		func(p *Profile) { p.BurstLen = 0 },
		func(p *Profile) { p.IntraGap = -1 },
		func(p *Profile) { p.PagesMean = 0 },
		func(p *Profile) { p.PagesCap = 0 },
		func(p *Profile) { p.ZipfTheta = 0 },
		func(p *Profile) { p.ZipfTheta = 1 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(OLTP(), 0, 10, 1); err == nil {
		t.Error("zero space accepted")
	}
	if _, err := New(OLTP(), 100, 0, 1); err == nil {
		t.Error("zero total accepted")
	}
	bad := OLTP()
	bad.BurstLen = 0
	if _, err := New(bad, 100, 10, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestGeneratorBasicInvariants(t *testing.T) {
	const space, total = 10000, 5000
	for _, p := range All() {
		gen, err := New(p, space, total, 7)
		if err != nil {
			t.Fatal(err)
		}
		if gen.Name() != p.Name {
			t.Errorf("name = %q", gen.Name())
		}
		reqs := collect(t, gen, total+10)
		if len(reqs) != total {
			t.Fatalf("%s emitted %d requests, want %d", p.Name, len(reqs), total)
		}
		var prev sim.Time
		for i, r := range reqs {
			if r.Arrival < prev {
				t.Fatalf("%s: arrivals not monotone at %d", p.Name, i)
			}
			prev = r.Arrival
			if r.Page < 0 || r.Page+int64(r.Pages) > space {
				t.Fatalf("%s: request outside space: %+v", p.Name, r)
			}
			if r.Pages < 1 || r.Pages > p.PagesCap {
				t.Fatalf("%s: size %d outside [1,%d]", p.Name, r.Pages, p.PagesCap)
			}
		}
	}
}

// TestTable1Characteristics verifies the generators empirically match
// Table 1: read:write mix and the intensity ordering (OLTP/NTRX nearly
// idle-free; Webserver mostly idle; Varmail/Fileserver in between).
func TestTable1Characteristics(t *testing.T) {
	const space, total = 100000, 20000
	type row struct {
		readFrac float64
		idleFrac float64
	}
	rows := map[string]row{}
	for _, p := range All() {
		gen, err := New(p, space, total, 11)
		if err != nil {
			t.Fatal(err)
		}
		reads := 0
		var idle, span sim.Time
		var prev sim.Time
		const idleGap = 5 * sim.Millisecond
		reqs := collect(t, gen, total)
		for i, r := range reqs {
			if r.Op == OpRead {
				reads++
			}
			if i > 0 && r.Arrival-prev > idleGap {
				idle += r.Arrival - prev
			}
			prev = r.Arrival
		}
		span = reqs[len(reqs)-1].Arrival
		rows[p.Name] = row{
			readFrac: float64(reads) / float64(total),
			idleFrac: float64(idle) / float64(span),
		}
	}
	want := map[string]float64{
		"OLTP": 0.7, "NTRX": 0.3, "Webserver": 0.8, "Varmail": 0.5, "Fileserver": 1.0 / 3.0,
	}
	for name, wantRF := range want {
		got := rows[name].readFrac
		if math.Abs(got-wantRF) > 0.05 {
			t.Errorf("%s read fraction = %.3f, want ~%.2f", name, got, wantRF)
		}
	}
	// Intensity ordering via idle fraction.
	if rows["OLTP"].idleFrac > 0.3 || rows["NTRX"].idleFrac > 0.3 {
		t.Errorf("OLTP/NTRX should be nearly idle-free: %.2f / %.2f",
			rows["OLTP"].idleFrac, rows["NTRX"].idleFrac)
	}
	if rows["Webserver"].idleFrac < 0.5 {
		t.Errorf("Webserver should be idle-dominated: %.2f", rows["Webserver"].idleFrac)
	}
	for _, name := range []string{"Varmail", "Fileserver"} {
		f := rows[name].idleFrac
		if f < rows["OLTP"].idleFrac+0.2 || f > rows["Webserver"].idleFrac+0.05 {
			t.Errorf("%s idle fraction %.2f not between OLTP %.2f and Webserver %.2f",
				name, f, rows["OLTP"].idleFrac, rows["Webserver"].idleFrac)
		}
	}
}

func TestReadsTargetWrittenPages(t *testing.T) {
	gen, err := New(Varmail(), 1000, 2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	written := map[int64]bool{}
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if req.Op == OpWrite {
			written[req.Page] = true
		} else if !written[req.Page] {
			t.Fatalf("read of never-written page %d", req.Page)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(Fileserver(), 5000, 1000, 99)
	b, _ := New(Fileserver(), 5000, 1000, 99)
	for {
		ra, okA := a.Next()
		rb, okB := b.Next()
		if okA != okB {
			t.Fatal("lengths differ")
		}
		if !okA {
			break
		}
		if ra != rb {
			t.Fatalf("same seed diverged: %+v vs %+v", ra, rb)
		}
	}
}

func TestBinaryTraceRoundTrip(t *testing.T) {
	gen, _ := New(OLTP(), 5000, 500, 3)
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, gen)
	if err != nil || n != 500 {
		t.Fatalf("WriteBinary = %d,%v", n, err)
	}
	replay, err := NewBinaryReplay(&buf, "oltp-trace")
	if err != nil {
		t.Fatal(err)
	}
	if replay.Name() != "oltp-trace" {
		t.Error("name wrong")
	}
	ref, _ := New(OLTP(), 5000, 500, 3)
	count := 0
	for {
		want, okW := ref.Next()
		got, okG := replay.Next()
		if okW != okG {
			t.Fatalf("lengths differ at %d", count)
		}
		if !okW {
			break
		}
		if want != got {
			t.Fatalf("record %d: %+v != %+v", count, got, want)
		}
		count++
	}
}

func TestBinaryReplayRejectsGarbage(t *testing.T) {
	if _, err := NewBinaryReplay(bytes.NewReader([]byte("nope")), "x"); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewBinaryReplay(bytes.NewReader(nil), "x"); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestCSVTraceRoundTrip(t *testing.T) {
	gen, _ := New(Webserver(), 5000, 300, 5)
	var buf bytes.Buffer
	n, err := WriteCSV(&buf, gen)
	if err != nil || n != 300 {
		t.Fatalf("WriteCSV = %d,%v", n, err)
	}
	replay, err := NewCSVReplay(&buf, "web-trace")
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := New(Webserver(), 5000, 300, 5)
	for {
		want, okW := ref.Next()
		got, okG := replay.Next()
		if okW != okG {
			t.Fatal("lengths differ")
		}
		if !okW {
			break
		}
		if want != got {
			t.Fatalf("%+v != %+v", got, want)
		}
	}
}

func TestCSVReplayRejectsBadHeader(t *testing.T) {
	if _, err := NewCSVReplay(bytes.NewReader([]byte("a,b\n")), "x"); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := NewCSVReplay(bytes.NewReader(nil), "x"); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestLimit(t *testing.T) {
	gen, _ := New(OLTP(), 1000, 100, 1)
	lim := Limit(gen, 10)
	if lim.Name() != "OLTP" {
		t.Error("name lost")
	}
	reqs := collect(t, lim, 100)
	if len(reqs) != 10 {
		t.Errorf("Limit(10) emitted %d", len(reqs))
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Error("Op strings wrong")
	}
}

func TestIntensityString(t *testing.T) {
	if IntensityModerate.String() != "Moderate" ||
		IntensityHigh.String() != "High" ||
		IntensityVeryHigh.String() != "Very high" {
		t.Error("intensity strings wrong")
	}
}

func TestZipfDeterminism(t *testing.T) {
	for _, theta := range []float64{0.6, 0.99, 1.2} {
		a, err := NewZipf(theta, 5000, 1000, 99)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewZipf(theta, 5000, 1000, 99)
		var reqsA, reqsB []Request
		for {
			ra, okA := a.Next()
			rb, okB := b.Next()
			if okA != okB {
				t.Fatal("lengths differ")
			}
			if !okA {
				break
			}
			reqsA, reqsB = append(reqsA, ra), append(reqsB, rb)
		}
		if !reflect.DeepEqual(reqsA, reqsB) {
			t.Fatalf("theta=%v: same seed diverged", theta)
		}
		if len(reqsA) != 1000 {
			t.Fatalf("theta=%v: emitted %d requests, want 1000", theta, len(reqsA))
		}
	}
}

// TestZipfSkew pins the property the placement studies rely on: a higher
// theta concentrates more writes on fewer pages.
func TestZipfSkew(t *testing.T) {
	headShare := func(theta float64) float64 {
		gen, err := NewZipf(theta, 10000, 20000, 7)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int64]int{}
		writes := 0
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			if req.Op == OpWrite {
				counts[req.Page]++
				writes++
			}
		}
		head := 0
		for _, c := range counts {
			if c >= 10 {
				head += c
			}
		}
		return float64(head) / float64(writes)
	}
	low, high := headShare(0.6), headShare(1.2)
	if high <= low {
		t.Fatalf("theta=1.2 head share %.3f not above theta=0.6 share %.3f", high, low)
	}
}
