// Multi-queue host front-end: decompose one Table-1 profile into per-queue
// generators over disjoint LPN ranges, merge several queues back into one
// deterministic stream, and prefetch request generation onto a background
// goroutine. ssd.RunShardedMQ composes these so host-side generation runs
// concurrently with the simulation while the planned op stream — and thus
// the run result — stays byte-identical to a single merged generator.
package workload

import (
	"fmt"
	"sync"
)

// SplitByChannel decomposes profile p into `queues` independent generators,
// one per host queue, each emitting over its own contiguous slice of the
// logical space (span = space/queues; a remainder shrinks the last queue's
// share of requests, never its range) with a seed derived from `seed` and
// the queue index. Disjoint LPN ranges mean requests from different queues
// can never conflict on an LPN — the epoch planner's R1 rule only ever
// fires within a queue. Queue i emits total/queues requests (the first
// total%queues queues emit one more), named "<Name>/q<i>".
func SplitByChannel(p Profile, space int64, total int, seed uint64, queues int) ([]Generator, error) {
	if queues < 1 {
		return nil, fmt.Errorf("workload: split needs >= 1 queue, got %d", queues)
	}
	span := space / int64(queues)
	if span < 1 {
		return nil, fmt.Errorf("workload: %d pages cannot split into %d queues", space, queues)
	}
	gens := make([]Generator, queues)
	for i := 0; i < queues; i++ {
		qp := p
		qp.Name = fmt.Sprintf("%s/q%d", p.Name, i)
		if qp.PagesCap > int(span) {
			qp.PagesCap = int(span)
		}
		qtotal := total / queues
		if i < total%queues {
			qtotal++
		}
		if qtotal < 1 {
			qtotal = 1
		}
		qseed := seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15)
		g, err := New(qp, span, qtotal, qseed)
		if err != nil {
			return nil, err
		}
		gens[i] = &offsetGen{g: g, off: int64(i) * span}
	}
	return gens, nil
}

// offsetGen shifts a generator's pages into its queue's LPN range.
type offsetGen struct {
	g   Generator
	off int64
}

func (o *offsetGen) Name() string { return o.g.Name() }

func (o *offsetGen) Next() (Request, bool) {
	r, ok := o.g.Next()
	if !ok {
		return Request{}, false
	}
	r.Page += o.off
	return r, ok
}

// MergeByArrival interleaves several generators into one stream ordered by
// arrival time, breaking ties by queue index (lowest first). The merge is
// fully deterministic, so driving a serial run with the merged stream
// defines the reference result the multi-queue sharded run must equal.
func MergeByArrival(name string, gens ...Generator) Generator {
	m := &mergeGen{
		name:  name,
		gens:  gens,
		heads: make([]Request, len(gens)),
		live:  make([]bool, len(gens)),
	}
	for i, g := range gens {
		m.heads[i], m.live[i] = g.Next()
	}
	return m
}

type mergeGen struct {
	name  string
	gens  []Generator
	heads []Request
	live  []bool
}

func (m *mergeGen) Name() string { return m.name }

func (m *mergeGen) Next() (Request, bool) {
	best := -1
	for i := range m.heads {
		if !m.live[i] {
			continue
		}
		if best == -1 || m.heads[i].Arrival < m.heads[best].Arrival {
			best = i
		}
	}
	if best == -1 {
		return Request{}, false
	}
	r := m.heads[best]
	m.heads[best], m.live[best] = m.gens[best].Next()
	return r, true
}

// Prefetch wraps gen so Next reads from a buffered channel fed by a
// background goroutine: request generation (RNG draws, Zipf sampling,
// read-target bookkeeping) runs concurrently with whoever consumes the
// stream. The sequence and Name are unchanged — a single producer feeding a
// FIFO channel preserves order exactly. The returned stop function
// terminates the feeder early and is safe to call multiple times (it always
// must be called, or the feeder goroutine leaks on abandoned streams).
func Prefetch(gen Generator, depth int) (Generator, func()) {
	if depth < 1 {
		depth = 1
	}
	p := &prefetchGen{
		name: gen.Name(),
		ch:   make(chan Request, depth),
		quit: make(chan struct{}),
	}
	go func() {
		defer close(p.ch)
		for {
			r, ok := gen.Next()
			if !ok {
				return
			}
			select {
			case p.ch <- r:
			case <-p.quit:
				return
			}
		}
	}()
	return p, p.stop
}

type prefetchGen struct {
	name     string
	ch       chan Request
	quit     chan struct{}
	stopOnce sync.Once
}

func (p *prefetchGen) Name() string { return p.name }

func (p *prefetchGen) Next() (Request, bool) {
	r, ok := <-p.ch
	return r, ok
}

func (p *prefetchGen) stop() { p.stopOnce.Do(func() { close(p.quit) }) }
