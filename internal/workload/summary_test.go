package workload

import (
	"strings"
	"testing"

	"flexftl/internal/sim"
)

func TestSummarize(t *testing.T) {
	reqs := []Request{
		{Arrival: 0, Op: OpWrite, Page: 10, Pages: 2},
		{Arrival: 100, Op: OpRead, Page: 10, Pages: 1},
		{Arrival: 100 + 10*sim.Millisecond, Op: OpWrite, Page: 20, Pages: 3},
	}
	st := Summarize(&sliceGen{reqs: reqs})
	if st.Requests != 3 || st.Reads != 1 || st.Writes != 2 {
		t.Errorf("counts: %+v", st)
	}
	if st.ReadPages != 1 || st.WritePages != 5 {
		t.Errorf("pages: %+v", st)
	}
	if st.UniquePages != 2 {
		t.Errorf("unique = %d", st.UniquePages)
	}
	if st.IdleTime != 10*sim.Millisecond {
		t.Errorf("idle = %v", st.IdleTime)
	}
	if st.MaxGap != 10*sim.Millisecond {
		t.Errorf("max gap = %v", st.MaxGap)
	}
	if st.ReadFraction() != 1.0/3 {
		t.Errorf("read frac = %v", st.ReadFraction())
	}
	if st.IdleFraction() <= 0.9 {
		t.Errorf("idle frac = %v", st.IdleFraction())
	}
	if st.OfferedIOPS() <= 0 {
		t.Error("offered IOPS zero")
	}
	if !strings.Contains(st.String(), "requests") {
		t.Error("String() incomplete")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(&sliceGen{})
	if st.ReadFraction() != 0 || st.IdleFraction() != 0 || st.OfferedIOPS() != 0 {
		t.Error("empty trace ratios nonzero")
	}
}

// sliceGen replays a fixed slice (test helper).
type sliceGen struct {
	reqs []Request
	i    int
}

func (s *sliceGen) Name() string { return "slice" }
func (s *sliceGen) Next() (Request, bool) {
	if s.i >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}
