package ssd

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/ftl/pageftl"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

func newSystem(t testing.TB, scheme string) *System {
	t.Helper()
	rules := core.RPS
	if scheme == "pageFTL" {
		rules = core.FPS
	}
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(),
		Timing:   nand.DefaultTiming(),
		Rules:    rules,
	})
	if err != nil {
		t.Fatal(err)
	}
	var f ftl.FTL
	switch scheme {
	case "pageFTL":
		f, err = pageftl.New(dev, ftl.DefaultConfig())
	case "flexFTL":
		f, err = flexftl.New(dev, ftl.DefaultConfig(), flexftl.DefaultParams())
	default:
		t.Fatalf("unknown scheme %s", scheme)
	}
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(f, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{BufferPages: 0, BandwidthWindow: 1, IdleThreshold: 0, PrefillFraction: 0.5},
		{BufferPages: 1, BandwidthWindow: 0, IdleThreshold: 0, PrefillFraction: 0.5},
		{BufferPages: 1, BandwidthWindow: 1, IdleThreshold: -1, PrefillFraction: 0.5},
		{BufferPages: 1, BandwidthWindow: 1, IdleThreshold: 0, PrefillFraction: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPrefillResetsCounters(t *testing.T) {
	sys := newSystem(t, "pageFTL")
	dur, err := sys.Prefill()
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Error("prefill consumed no virtual time")
	}
	if st := sys.F.Stats(); st.HostWrites != 0 {
		t.Errorf("counters not reset after prefill: %+v", st)
	}
	// Prefilled pages are readable.
	if _, err := sys.F.Read(0, dur); err != nil {
		t.Errorf("prefilled LPN unreadable: %v", err)
	}
}

func TestRunSmallWorkload(t *testing.T) {
	for _, scheme := range []string{"pageFTL", "flexFTL"} {
		t.Run(scheme, func(t *testing.T) {
			sys := newSystem(t, scheme)
			if _, err := sys.Prefill(); err != nil {
				t.Fatal(err)
			}
			gen, err := workload.New(workload.Varmail(), sys.F.LogicalPages(), 3000, 17)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run(gen)
			if err != nil {
				t.Fatal(err)
			}
			if res.FTLName != scheme || res.Workload != "Varmail" {
				t.Errorf("labels: %+v", res)
			}
			m := res.Metrics
			if m.Requests != 3000 {
				t.Errorf("requests = %d", m.Requests)
			}
			if m.IOPS <= 0 {
				t.Error("IOPS not positive")
			}
			if m.ActiveTime <= 0 || m.ActiveTime > m.Makespan {
				t.Errorf("active %v vs makespan %v", m.ActiveTime, m.Makespan)
			}
			if m.BandwidthCDF.N() == 0 {
				t.Error("no bandwidth windows recorded")
			}
			if res.Stats.HostWrites == 0 {
				t.Error("no host writes recorded in FTL stats")
			}
		})
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() RunResult {
		sys := newSystem(t, "flexFTL")
		if _, err := sys.Prefill(); err != nil {
			t.Fatal(err)
		}
		gen, err := workload.New(workload.OLTP(), sys.F.LogicalPages(), 2000, 23)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(gen)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Metrics.IOPS != b.Metrics.IOPS || a.Stats != b.Stats ||
		a.Metrics.ActiveTime != b.Metrics.ActiveTime {
		t.Errorf("runs diverged:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

// TestBackpressure: a buffer of one page forces admission to wait for the
// previous program, so write acknowledgements spread out in time.
func TestBackpressure(t *testing.T) {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: core.FPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := pageftl.New(dev, ftl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BufferPages = 1
	cfg.PrefillFraction = 0
	sys, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A burst of simultaneous single-page writes.
	var reqs []workload.Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, workload.Request{Arrival: 0, Op: workload.OpWrite, Page: int64(i), Pages: 1})
	}
	res, err := sys.Run(&sliceGen{reqs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	// With one slot, response times must grow roughly linearly with queue
	// position; the max is far above the min.
	rt := res.Metrics.ResponseTime
	if rt.Max < 10*1000 { // later writes wait many program times (us)
		t.Errorf("max response %vus too small for backpressure", rt.Max)
	}
	if rt.Min > float64(sim.Millisecond) {
		t.Errorf("first write should admit immediately, got %vus", rt.Min)
	}
}

// TestIdleWindowsTriggerBGC: a workload with long gaps must produce
// background GC activity once space pressure exists.
func TestIdleWindowsTriggerBGC(t *testing.T) {
	sys := newSystem(t, "flexFTL")
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(workload.Webserver(), sys.F.LogicalPages(), 4000, 29)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BackgroundGCs == 0 {
		t.Log("note: no background GC (space pressure may not have built); stats:", res.Stats)
	}
	// Active time excludes the large Webserver idle gaps.
	if res.Metrics.ActiveTime >= res.Metrics.Makespan {
		t.Errorf("active time %v did not exclude idle (makespan %v)",
			res.Metrics.ActiveTime, res.Metrics.Makespan)
	}
}

// TestTrimsThroughRunner: trim requests flow through the runner into the
// FTL's mapping table and the metrics.
func TestTrimsThroughRunner(t *testing.T) {
	sys := newSystem(t, "flexFTL")
	reqs := []workload.Request{
		{Arrival: 0, Op: workload.OpWrite, Page: 0, Pages: 4},
		{Arrival: 10 * sim.Millisecond, Op: workload.OpTrim, Page: 0, Pages: 2},
		{Arrival: 20 * sim.Millisecond, Op: workload.OpRead, Page: 0, Pages: 4},
	}
	res, err := sys.Run(&sliceGen{reqs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Trims != 1 {
		t.Errorf("metrics trims = %d", res.Metrics.Trims)
	}
	if res.Stats.HostTrims != 2 {
		t.Errorf("ftl trims = %d, want 2 pages", res.Stats.HostTrims)
	}
	// The read of trimmed pages is tolerated (zero-fill), the rest served.
	if res.Metrics.Reads != 1 {
		t.Errorf("reads = %d", res.Metrics.Reads)
	}
}

// trimStub is a minimal Host whose trims cost real virtual time; it pins
// the runner's dispatch semantics for multi-page trim requests.
type trimStub struct {
	delta  sim.Time   // per-trim latency
	issued []sim.Time // the `now` each Trim was issued at
	st     ftl.Stats
}

func (s *trimStub) Name() string             { return "trimStub" }
func (s *trimStub) LogicalPages() int64      { return 1024 }
func (s *trimStub) PageSize() int            { return 4096 }
func (s *trimStub) Idle(now, until sim.Time) {}
func (s *trimStub) Stats() ftl.Stats         { return s.st }
func (s *trimStub) Write(lpn ftl.LPN, now sim.Time, util float64) (sim.Time, error) {
	s.st.HostWrites++
	return now + s.delta, nil
}
func (s *trimStub) Read(lpn ftl.LPN, now sim.Time) (sim.Time, error) {
	s.st.HostReads++
	return now + s.delta, nil
}
func (s *trimStub) Trim(lpn ftl.LPN, now sim.Time) (sim.Time, error) {
	s.issued = append(s.issued, now)
	s.st.HostTrims++
	return now + s.delta, nil
}

// TestTrimMaxCompletion: the pages of one trim request are independent
// mapping operations — all issue at the request's arrival and the request
// completes when the slowest does, like reads. A regression here would chain
// them head to tail and charge pages×delta instead of delta.
func TestTrimMaxCompletion(t *testing.T) {
	const delta = 100 * sim.Microsecond
	stub := &trimStub{delta: delta}
	sys, err := New(stub, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	arrival := 5 * sim.Millisecond
	reqs := []workload.Request{
		{Arrival: arrival, Op: workload.OpTrim, Page: 0, Pages: 4},
	}
	res, err := sys.Run(&sliceGen{reqs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if len(stub.issued) != 4 {
		t.Fatalf("trims issued = %d, want 4", len(stub.issued))
	}
	for i, at := range stub.issued {
		if at != arrival {
			t.Errorf("trim %d issued at %v, want arrival %v (serialized dispatch)", i, at, arrival)
		}
	}
	// The request's response time is one trim latency, not four.
	if got := res.Metrics.ResponseTime.Max; got != float64(delta) {
		t.Errorf("trim response %v us, want %v us (max-completion)", got, float64(delta))
	}
}

// TestResponseSplit: read and write response populations are separated.
func TestResponseSplit(t *testing.T) {
	sys := newSystem(t, "pageFTL")
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(workload.Varmail(), sys.F.LogicalPages(), 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.ReadResponse.Max <= 0 {
		t.Error("read response population empty")
	}
	if m.WriteResponse.Max < 0 {
		t.Error("write response population broken")
	}
	// The combined population bounds both classes.
	if m.ResponseTime.Max < m.ReadResponse.Max || m.ResponseTime.Max < m.WriteResponse.Max {
		t.Error("combined response max below a class max")
	}
}

// TestZeroPrefillRun: the runner works from a blank device too.
func TestZeroPrefillRun(t *testing.T) {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: core.FPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := pageftl.New(dev, ftl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PrefillFraction = 0
	sys, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := sys.Prefill(); err != nil || d != 0 {
		t.Fatalf("zero prefill: %v, %v", d, err)
	}
	gen, err := workload.New(workload.OLTP(), f.LogicalPages(), 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(gen); err != nil {
		t.Fatal(err)
	}
}

// TestPaperGeometrySmoke exercises the exact 16 GB BlueDBM configuration end
// to end — 8 channels x 4 chips, 512 blocks/chip, 256 x 4 KB pages — to
// catch any overflow or scaling issue hidden by the small test geometries.
func TestPaperGeometrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("16 GB geometry in -short mode")
	}
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.DefaultGeometry(), Timing: nand.DefaultTiming(), Rules: core.RPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := flexftl.New(dev, ftl.DefaultConfig(), flexftl.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PrefillFraction = 0.02 // 2% of 3.67M logical pages keeps the smoke fast
	sys, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(workload.Varmail(), f.LogicalPages(), 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Requests != 20000 || res.Metrics.IOPS <= 0 {
		t.Errorf("paper geometry run incomplete: %+v", res.Metrics)
	}
	// The 32-chip device should sustain a much higher peak than the
	// 8-chip evaluation geometry.
	if res.Metrics.PeakWriteBandwidthMBs < 40 {
		t.Errorf("peak bandwidth %v MB/s suspiciously low for 32 chips",
			res.Metrics.PeakWriteBandwidthMBs)
	}
}

// sliceGen replays a fixed request slice.
type sliceGen struct {
	reqs []workload.Request
	i    int
}

func (s *sliceGen) Name() string { return "slice" }
func (s *sliceGen) Next() (workload.Request, bool) {
	if s.i >= len(s.reqs) {
		return workload.Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}

func TestReadsOfUnmappedPagesTolerated(t *testing.T) {
	sys := newSystem(t, "pageFTL")
	cfgReqs := []workload.Request{
		{Arrival: 0, Op: workload.OpWrite, Page: 0, Pages: 1},
		{Arrival: 10, Op: workload.OpRead, Page: 0, Pages: 4}, // pages 1..3 unmapped
	}
	res, err := sys.Run(&sliceGen{reqs: cfgReqs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Requests != 2 {
		t.Errorf("requests = %d", res.Metrics.Requests)
	}
}
