package ssd

import (
	"testing"

	"flexftl/internal/obs"
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

// steadyStateAllocs warms a flexFTL system through RunSharded at workers=1
// (the serial delegation path — the one every single-threaded caller takes),
// then measures the marginal allocations of servicing additional host ops
// through the same per-op machinery the run loop uses. Warmup grows every
// amortized structure — the inflight heap, the metrics response-time slices,
// the FTL's scratch buffers — so the steady state is genuinely measured, not
// the cold ramp.
func steadyStateAllocs(t *testing.T, withRecorder bool) float64 {
	t.Helper()
	sys := newSystem(t, "flexFTL")
	if withRecorder {
		sys.SetRecorder(obs.NewRecorder(obs.Options{}))
	}
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(workload.OLTP(), sys.F.LogicalPages(), 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunSharded(gen, 1); err != nil {
		t.Fatal(err)
	}
	// Continue the stream through the internal per-op path on a warmed
	// state: this is exactly the loop body of Run minus run setup/teardown.
	// The continuation starts one virtual minute after the prefill base so
	// time stays monotonic past the first run's tail and the opening idle
	// window lets background GC restore the free-block cushion.
	rs := sys.newRunState()
	rs.base += 60 * sim.Second
	rs.busyUntil = rs.base
	const contOps = 40000
	cont, err := workload.New(workload.OLTP(), sys.F.LogicalPages(), contOps, 8)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]workload.Request, 0, contOps)
	for {
		req, ok := cont.Next()
		if !ok {
			break
		}
		reqs = append(reqs, req)
	}
	serve := func(batch []workload.Request) {
		for _, req := range batch {
			arrival := rs.base + req.Arrival
			if err := sys.prologue(rs, arrival); err != nil {
				t.Fatal(err)
			}
			if err := sys.stepOp(rs, req, arrival); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the fresh runState's collector slices before measuring.
	serve(reqs[:contOps/2])
	rest := reqs[contOps/2:]
	total := testing.AllocsPerRun(1, func() { serve(rest) })
	return total / float64(len(rest))
}

// TestRunSteadyStateAllocs0 is the run-engine twin of the obs package's
// enabled/disabled-path guards: with the epoch-sharded entry point at
// workers=1, the per-op service path must be allocation-free in steady
// state, with and without a live recorder. The bound tolerates only the
// amortized slice doublings of the metrics collector (a handful of mallocs
// across 80k ops), not any per-op allocation.
func TestRunSteadyStateAllocs0(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard needs the long warmup")
	}
	for _, tc := range []struct {
		name         string
		withRecorder bool
	}{
		{"no_recorder", false},
		{"with_recorder", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			perOp := steadyStateAllocs(t, tc.withRecorder)
			if perOp >= 0.01 {
				t.Errorf("steady-state path allocates %.4f/op, want ~0", perOp)
			}
		})
	}
}
