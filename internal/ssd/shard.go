// Epoch-sharded run engine: the SSD half. RunSharded batches host requests
// into virtual-time epochs, routes each page op to its target chip, and hands
// the batch to ftl.ShardRunner, which advances per-channel state on worker
// goroutines and merges cross-chip effects at the epoch barrier in
// deterministic global op order.
//
// The determinism contract is exactness, not mere stability: an epoch is
// only formed when its serial execution provably decomposes into independent
// per-channel executions plus a deterministic merge, so RunSharded(gen, N)
// equals Run(gen) for every N. The planner admits a request into the open
// epoch only if all of the following hold — anything else flushes the epoch
// and falls back to the exact serial step:
//
//	R1 (unique LPNs)    No two ops in an epoch touch the same LPN, so shard
//	                    reads against the pre-epoch mapping and deferred
//	                    mapper updates are exact.
//	R2 (arrival window) The epoch spans less than min(BusXfer+ProgLSB,
//	                    IdleThreshold) of virtual time: every in-epoch write
//	                    completes after every in-epoch arrival (buffer
//	                    releases can be deferred to the barrier), and no idle
//	                    window can open mid-epoch.
//	R4 (atomic admit)   The write buffer has room for the whole request, so
//	                    backpressure (which serializes on the pending heap)
//	                    cannot occur mid-epoch.
//	R5 (free margin)    Every written chip keeps enough free blocks that
//	                    foreground GC and block exhaustion are impossible
//	                    during the epoch (ftl.Kernel.ShardWriteHeadroom,
//	                    which models the order policy's exact pop/fill
//	                    behavior from the current cursor state; for
//	                    multi-stream placements the model assumes
//	                    adversarial stream routing, so the margin is an
//	                    upper bound rather than exact).
//	Rp (placement)      The sub-case of a failed R5 where the *best-case*
//	                    stream routing would still have had headroom
//	                    (ftl.Kernel.ShardPlacementHazard): the fallback is
//	                    an artifact of the planner's adversarial routing
//	                    assumption, not of true GC proximity. Counted
//	                    separately so placement-induced serialization is
//	                    visible in the report.
//	Rq (quota sign)     For the adaptive allocator, the frozen shard-time
//	                    quota provably yields the same LSB/MSB decisions as
//	                    the live serial quota (ftl.Kernel.ShardQuotaStable).
//
// Two widenings keep GC-heavy and trim-heavy workloads sharded:
//
//   - GC pre-runs: when R5 fails for a chip whose channel has no planned
//     device ops in the open epoch and no planned-but-unexecuted
//     invalidation touches the chip's full blocks, the planner runs the
//     serial foreground collection ahead of time on the real kernel
//     (ftl.Kernel.ShardPreRunGC) — provably the same collection, at the
//     same virtual time, the serial execution would perform at this write —
//     and rechecks the margin. GC-proximate writes then stay sharded.
//
//   - Sharded trims: trims are pure mapping mutations, so they ride the
//     epoch as device-free ops that the barrier replays on the real kernel
//     in global order, instead of breaking the epoch.
//
// Unknown ops still break the epoch. Runs with a recorder attached, a
// non-kernel host (nflex), a predictive kernel, or workers <= 1 take the
// serial path wholesale.
package ssd

import (
	"flexftl/internal/buffer"
	"flexftl/internal/ftl"
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

// FallbackCounts is the planner's fallback-cause taxonomy: how often each
// admission rule rejected a request (R1/R4/R5/Rq, counted per failed plan
// attempt, including attempts that succeeded after an epoch flush), how
// often a failed free-margin check was a placement-routing artifact rather
// than true GC proximity (Rp — disjoint from R5), how often the arrival
// window closed an epoch (R2), how many trim page ops still executed
// serially (Trim), and rejections outside the rule set — self-wrapping
// requests and unknown ops (Other).
type FallbackCounts struct {
	R1    int
	R2    int
	R4    int
	R5    int
	Rp    int
	Rq    int
	Trim  int
	Other int
}

// ShardReport is the planner-effectiveness report of the last RunSharded
// call. Ops are counted in request pages on both sides, so
// ShardedOps/(ShardedOps+SerialOps) is the sharded-op share. Deterministic
// for a given run, independent of the worker count.
type ShardReport struct {
	Epochs         int // epochs executed on the shard runner
	ShardedOps     int // page ops planned into epochs
	SerialOps      int // page ops that fell back to the exact serial step
	ShardedTrims   int // of ShardedOps: trim pages merged at the barrier
	GCPreRuns      int // foreground collections run ahead of plan time
	GCPreRunCopies int // valid-page relocations those collections performed
	Fallbacks      FallbackCounts
}

// ShardedShare returns ShardedOps/(ShardedOps+SerialOps), or 0 when the
// report is empty.
func (r ShardReport) ShardedShare() float64 {
	total := r.ShardedOps + r.SerialOps
	if total == 0 {
		return 0
	}
	return float64(r.ShardedOps) / float64(total)
}

// planCause is tryPlan's outcome: planOK or the admission rule that
// rejected the request.
type planCause int

const (
	planOK planCause = iota
	causeR1
	causeR4
	causeR5
	causeRp
	causeRq
	causeOther
)

// epochState is the open epoch under construction.
type epochState struct {
	k      *ftl.Kernel
	runner *ftl.ShardRunner
	window sim.Time

	ops     []ftl.EpochOp
	entries []*buffer.Entry // parallel to ops; nil for reads and trims
	reqs    []epochReq
	lpns    map[int64]struct{}
	start   sim.Time // arrival of the first planned request
	writes  int      // host page writes planned so far (round-robin offset)
	chipW   []int    // per-chip planned writes (R5 input)

	// GC pre-run eligibility tracking: planned device ops per channel, and
	// planned-but-unexecuted invalidations (write-old-PPN or trim target in
	// a currently-full block) per chip. A pre-run on a chip is exact only
	// when both are zero for it — the chip's channel timeline and full-block
	// valid counts then match what the serial execution would see.
	chanOps   []int
	pendInval []int

	// Per-request planning scratch, wiped after every write attempt.
	reqW     []int  // per-chip writes of the request being planned
	reqSeen  []bool // chips whose headroom this request already verified
	reqChan  []int  // request-local device ops per channel, before this page
	reqInval []int  // request-local invalidation hazards per chip
}

// epochReq records one planned request for the barrier's in-order accounting.
type epochReq struct {
	op             workload.Op
	pages          int
	arrival        sim.Time
	opStart, opEnd int
}

func (e *epochState) reset() {
	e.ops = e.ops[:0]
	e.entries = e.entries[:0]
	e.reqs = e.reqs[:0]
	clear(e.lpns)
	for i := range e.chipW {
		e.chipW[i] = 0
	}
	for i := range e.chanOps {
		e.chanOps[i] = 0
	}
	for i := range e.pendInval {
		e.pendInval[i] = 0
	}
	e.writes = 0
	e.start = 0
}

// resetReqScratch wipes the per-request planning scratch after a write
// attempt (successful or not).
func (e *epochState) resetReqScratch() {
	for i := range e.reqW {
		e.reqW[i] = 0
	}
	for i := range e.reqSeen {
		e.reqSeen[i] = false
	}
	for i := range e.reqChan {
		e.reqChan[i] = 0
	}
	for i := range e.reqInval {
		e.reqInval[i] = 0
	}
}

// noteInval records a planned-but-unexecuted invalidation of lpn's current
// physical page, if it lies in a full block (a GC pre-run blocker for that
// chip until the epoch flushes).
func (e *epochState) noteInval(lpn int64) {
	if chip, hazard := e.k.ShardInvalHazard(ftl.LPN(lpn)); hazard {
		e.pendInval[chip]++
	}
}

// RunSharded drives the generator like Run, but executes epochs of host ops
// in parallel across the device's channels on up to `workers` goroutines.
// Shards are channels, so results are independent of the worker count:
// RunSharded(gen, N) produces the same RunResult (and the same FTL/device
// state) as Run(gen) for every N. Configurations the sharded engine cannot
// prove exact — workers <= 1, a non-kernel host, a predictive kernel, or an
// attached recorder (whose probes sample mid-epoch state) — run serial.
//
// One documented divergence: page payload token sequence numbers come from
// disjoint per-shard ranges, so flash payload bytes differ from a serial
// run's. Tokens are only parsed by crash-recovery scans of serial runs;
// results, mapping hashes and op counts never observe them.
func (s *System) RunSharded(gen workload.Generator, workers int) (RunResult, error) {
	s.shardRep = ShardReport{}
	k, isKernel := s.F.(*ftl.Kernel)
	if workers <= 1 || !isKernel || !k.ShardSupported() || s.obs != nil {
		return s.Run(gen)
	}
	runner := ftl.NewShardRunner(k, workers)
	defer runner.Close()

	t := k.Device().Timing()
	window := t.BusXfer + t.ProgLSB
	if s.cfg.IdleThreshold < window {
		window = s.cfg.IdleThreshold
	}
	g := k.Device().Geometry()
	chips := g.Chips()
	e := &epochState{
		k:         k,
		runner:    runner,
		window:    window,
		lpns:      make(map[int64]struct{}),
		chipW:     make([]int, chips),
		chanOps:   make([]int, g.Channels),
		pendInval: make([]int, chips),
		reqW:      make([]int, chips),
		reqSeen:   make([]bool, chips),
		reqChan:   make([]int, g.Channels),
		reqInval:  make([]int, chips),
	}

	rs := s.newRunState()
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if err := s.shardStep(rs, e, req); err != nil {
			return RunResult{}, err
		}
	}
	if err := s.flushEpoch(rs, e); err != nil {
		return RunResult{}, err
	}
	return s.finishRun(rs, gen)
}

// ShardReport returns the planner effectiveness of the last RunSharded call.
func (s *System) ShardReport() ShardReport { return s.shardRep }

// countFallback attributes one failed plan attempt to its rule counter.
func (s *System) countFallback(cause planCause) {
	switch cause {
	case causeR1:
		s.shardRep.Fallbacks.R1++
	case causeR4:
		s.shardRep.Fallbacks.R4++
	case causeR5:
		s.shardRep.Fallbacks.R5++
	case causeRp:
		s.shardRep.Fallbacks.Rp++
	case causeRq:
		s.shardRep.Fallbacks.Rq++
	default:
		s.shardRep.Fallbacks.Other++
	}
}

// shardStep plans one request into the open epoch, flushing and retrying or
// falling back to the exact serial step when the epoch rules reject it.
func (s *System) shardStep(rs *runState, e *epochState, req workload.Request) error {
	arrival := rs.base + req.Arrival
	// R2: the epoch window closed — execute it before this request.
	if len(e.reqs) > 0 && arrival-e.start >= e.window {
		s.shardRep.Fallbacks.R2++
		if err := s.flushEpoch(rs, e); err != nil {
			return err
		}
	}
	// The prologue's idle check needs an exact busyUntil when it can fire.
	// With the epoch empty, busyUntil is exact (the flush recomputed it).
	// With the epoch open, tryPlan bumped busyUntil to at least the epoch's
	// first arrival, and R2 bounds this arrival within IdleThreshold of
	// that, so the check is provably false — matching the serial run, whose
	// busyUntil is at least as large.
	if err := s.prologue(rs, arrival); err != nil {
		return err
	}
	cause, err := s.tryPlan(rs, e, req, arrival)
	if err != nil {
		return err
	}
	if cause == planOK {
		if len(e.reqs) == 1 {
			e.start = arrival
		}
		return nil
	}
	s.countFallback(cause)
	if len(e.reqs) > 0 {
		// The open epoch blocked the request (LPN conflict, buffer room,
		// chip headroom, quota sign): execute it and retry once on the
		// empty epoch. No idle recheck is needed — this arrival is within
		// the window of the flushed epoch's start, so the gap to the now
		// exact busyUntil is below the idle threshold.
		if err := s.flushEpoch(rs, e); err != nil {
			return err
		}
		if err := s.releaseUpTo(arrival); err != nil {
			return err
		}
		cause, err = s.tryPlan(rs, e, req, arrival)
		if err != nil {
			return err
		}
		if cause == planOK {
			if len(e.reqs) == 1 {
				e.start = arrival
			}
			return nil
		}
		s.countFallback(cause)
	}
	// Unshardable even on an empty epoch (self-conflicting request, thin
	// buffer/chips/quota, pre-run-ineligible GC pressure): take the exact
	// serial path. tryPlan commits incrementally, so wipe any partial state.
	e.reset()
	s.shardRep.SerialOps += req.Pages
	if req.Op == workload.OpTrim {
		s.shardRep.Fallbacks.Trim += req.Pages
	}
	return s.stepOp(rs, req, arrival)
}

// tryPlan admits req into the open epoch if the epoch rules allow it,
// appending its page ops; it returns the rejecting rule otherwise. All rule
// checks happen before the first epoch mutation except LPN-set inserts on
// the failing path, which the caller wipes (the epoch is flushed or reset
// after any failure). A non-nil error is a device error from a GC pre-run
// and aborts the run, exactly as the serial collection it mirrors would.
func (s *System) tryPlan(rs *runState, e *epochState, req workload.Request, arrival sim.Time) (planCause, error) {
	// A request longer than the logical space wraps onto its own LPNs;
	// R1 cannot hold within the request itself.
	if int64(req.Pages) > rs.logical {
		return causeOther, nil
	}
	g := e.k.Device().Geometry()
	switch req.Op {
	case workload.OpRead:
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			if _, hit := e.lpns[lpn]; hit {
				return causeR1, nil
			}
		}
		opStart := len(e.ops)
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			e.lpns[lpn] = struct{}{}
			chip, mapped := e.k.LookupChip(ftl.LPN(lpn))
			if !mapped {
				continue // unmapped read: served from the zero map, no device op
			}
			e.ops = append(e.ops, ftl.EpochOp{LPN: ftl.LPN(lpn), Chip: chip, Arrival: arrival})
			e.entries = append(e.entries, nil)
			e.chanOps[g.ChannelOf(chip)]++
		}
		e.reqs = append(e.reqs, epochReq{op: req.Op, pages: req.Pages, arrival: arrival, opStart: opStart, opEnd: len(e.ops)})
		if arrival > rs.busyUntil {
			rs.busyUntil = arrival // lower bound; flush makes it exact
		}
		return planOK, nil

	case workload.OpWrite:
		if s.buf.Free() < req.Pages {
			return causeR4, nil
		}
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			if _, hit := e.lpns[lpn]; hit {
				return causeR1, nil
			}
		}
		// Rq over the round-robin routing this request would get.
		occupied := s.cfg.BufferPages - s.buf.Free()
		cause := planOK
		for j := 0; j < req.Pages; j++ {
			chip := e.k.PeekChip(e.writes + j)
			e.reqW[chip]++
			util := float64(occupied+j+1) / float64(s.cfg.BufferPages)
			if !e.k.ShardQuotaStable(util, e.writes+j) {
				cause = causeRq
				break
			}
		}
		// R5 with GC pre-runs (the Rq loop completed, so reqW is full).
		var err error
		if cause == planOK {
			cause, err = s.planWriteHeadroom(rs, e, req, arrival)
		}
		e.resetReqScratch()
		if err != nil || cause != planOK {
			return cause, err
		}
		opStart := len(e.ops)
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			e.lpns[lpn] = struct{}{}
			entry, admitErr := s.buf.TryAdmit(lpn, arrival)
			if admitErr != nil {
				// R4 guaranteed room; an admit failure is a planner bug.
				panic("ssd: epoch admit failed with free buffer space: " + admitErr.Error())
			}
			util := s.buf.Utilization()
			chip := e.k.PeekChip(e.writes)
			e.ops = append(e.ops, ftl.EpochOp{Write: true, LPN: ftl.LPN(lpn), Chip: chip, Arrival: arrival, Util: util})
			e.entries = append(e.entries, entry)
			e.chipW[chip]++
			e.chanOps[g.ChannelOf(chip)]++
			e.noteInval(lpn)
			e.writes++
		}
		e.reqs = append(e.reqs, epochReq{op: req.Op, pages: req.Pages, arrival: arrival, opStart: opStart, opEnd: len(e.ops)})
		if arrival > rs.busyUntil {
			rs.busyUntil = arrival // lower bound; flush makes it exact
		}
		return planOK, nil

	case workload.OpTrim:
		// Trims are pure mapping mutations: no device op, no buffer entry.
		// They ride the epoch under R1 so the barrier can replay their
		// invalidations on the real kernel in global order.
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			if _, hit := e.lpns[lpn]; hit {
				return causeR1, nil
			}
		}
		opStart := len(e.ops)
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			e.lpns[lpn] = struct{}{}
			e.noteInval(lpn)
			e.ops = append(e.ops, ftl.EpochOp{Trim: true, LPN: ftl.LPN(lpn), Arrival: arrival, Done: arrival})
			e.entries = append(e.entries, nil)
		}
		e.reqs = append(e.reqs, epochReq{op: req.Op, pages: req.Pages, arrival: arrival, opStart: opStart, opEnd: len(e.ops)})
		if arrival > rs.busyUntil {
			rs.busyUntil = arrival // lower bound; flush makes it exact
		}
		return planOK, nil

	default:
		return causeOther, nil
	}
}

// planWriteHeadroom runs R5 over the request's round-robin fan-out in page
// order, attempting a GC pre-run at each chip's first touch when the margin
// fails. A pre-run is exact — byte-identical to the collection the serial
// execution would perform inline at this very write — iff the chip's
// channel carries no planned device ops (neither from the open epoch nor
// from earlier pages of this request; cross-channel ops commute on the
// device) and no planned-but-unexecuted invalidation touches the chip's
// full blocks (victim picks then see serial-exact valid counts). Foreground
// collections never move the adaptive quota, so Rq decisions are unaffected.
func (s *System) planWriteHeadroom(rs *runState, e *epochState, req workload.Request, arrival sim.Time) (planCause, error) {
	g := e.k.Device().Geometry()
	for j := 0; j < req.Pages; j++ {
		chip := e.k.PeekChip(e.writes + j)
		ch := g.ChannelOf(chip)
		if !e.reqSeen[chip] {
			e.reqSeen[chip] = true
			w := e.chipW[chip] + e.reqW[chip]
			if !e.k.ShardWriteHeadroom(chip, w) {
				ok := false
				if e.chanOps[ch]+e.reqChan[ch] == 0 && e.pendInval[chip]+e.reqInval[chip] == 0 {
					gcs, copies, err := e.k.ShardPreRunGC(chip, arrival)
					if err != nil {
						return planOK, err
					}
					s.shardRep.GCPreRuns += gcs
					s.shardRep.GCPreRunCopies += copies
					ok = e.k.ShardWriteHeadroom(chip, w)
				}
				if !ok {
					if e.k.ShardPlacementHazard(chip, w) {
						return causeRp, nil
					}
					return causeR5, nil
				}
			}
		}
		e.reqChan[ch]++
		lpn := int64((req.Page + int64(j)) % rs.logical)
		if hc, hazard := e.k.ShardInvalHazard(ftl.LPN(lpn)); hazard {
			e.reqInval[hc]++
		}
	}
	return planOK, nil
}

// flushEpoch executes the open epoch across the shards and performs the
// barrier's in-order host-side accounting: request completions, pending-heap
// pushes (which release buffer entries on later arrivals), metrics and
// latency records, and the exact busyUntil.
func (s *System) flushEpoch(rs *runState, e *epochState) error {
	if len(e.reqs) == 0 {
		e.reset()
		return nil
	}
	if len(e.ops) > 0 {
		if err := e.runner.ExecEpoch(e.ops); err != nil {
			return err
		}
		s.shardRep.Epochs++
	}
	for _, r := range e.reqs {
		s.shardRep.ShardedOps += r.pages
		switch r.op {
		case workload.OpRead:
			completion := r.arrival
			for i := r.opStart; i < r.opEnd; i++ {
				if e.ops[i].Done > completion {
					completion = e.ops[i].Done
				}
			}
			rs.col.RecordRead(r.pages, r.arrival, completion)
			s.histRead.Record(int64(completion - r.arrival))
			if completion > rs.busyUntil {
				rs.busyUntil = completion
			}
		case workload.OpWrite:
			flushed := r.arrival
			for i := r.opStart; i < r.opEnd; i++ {
				s.pending.push(inflight{done: e.ops[i].Done, entry: e.entries[i]})
				if e.ops[i].Done > flushed {
					flushed = e.ops[i].Done
				}
			}
			// R4 ruled out backpressure, so admission == arrival and no
			// buffer-full blame accrues — exactly the serial accounting.
			rs.col.RecordWrite(r.pages, r.arrival, r.arrival, flushed)
			s.histWriteAck.Record(0)
			s.histWriteFlush.Record(int64(flushed - r.arrival))
			if flushed > rs.busyUntil {
				rs.busyUntil = flushed
			}
		case workload.OpTrim:
			// Trim ops complete at arrival (metadata only, max-completion
			// semantics) — the barrier already replayed their invalidations.
			s.shardRep.ShardedTrims += r.pages
			completion := r.arrival
			for i := r.opStart; i < r.opEnd; i++ {
				if e.ops[i].Done > completion {
					completion = e.ops[i].Done
				}
			}
			rs.col.RecordTrim(r.pages, r.arrival, completion)
			s.histTrim.Record(int64(completion - r.arrival))
			if completion > rs.busyUntil {
				rs.busyUntil = completion
			}
		}
	}
	e.reset()
	return nil
}
