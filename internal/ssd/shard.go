// Epoch-sharded run engine: the SSD half. RunSharded batches host requests
// into virtual-time epochs, routes each page op to its target chip, and hands
// the batch to ftl.ShardRunner, which advances per-channel state on worker
// goroutines and merges cross-chip effects at the epoch barrier in
// deterministic global op order.
//
// The determinism contract is exactness, not mere stability: an epoch is
// only formed when its serial execution provably decomposes into independent
// per-channel executions plus a deterministic merge, so RunSharded(gen, N)
// equals Run(gen) for every N. The planner admits a request into the open
// epoch only if all of the following hold — anything else flushes the epoch
// and falls back to the exact serial step:
//
//	R1 (unique LPNs)    No two ops in an epoch touch the same LPN, so shard
//	                    reads against the pre-epoch mapping and deferred
//	                    mapper updates are exact.
//	R2 (arrival window) The epoch spans less than min(BusXfer+ProgLSB,
//	                    IdleThreshold) of virtual time: every in-epoch write
//	                    completes after every in-epoch arrival (buffer
//	                    releases can be deferred to the barrier), and no idle
//	                    window can open mid-epoch.
//	R4 (atomic admit)   The write buffer has room for the whole request, so
//	                    backpressure (which serializes on the pending heap)
//	                    cannot occur mid-epoch.
//	R5 (free margin)    Every written chip keeps enough free blocks that
//	                    foreground GC and block exhaustion are impossible
//	                    during the epoch (ftl.Kernel.ShardWriteHeadroom).
//	Rq (quota sign)     For the adaptive allocator, the frozen shard-time
//	                    quota provably yields the same LSB/MSB decisions as
//	                    the live serial quota (ftl.Kernel.ShardQuotaStable).
//
// Trims and unknown ops always break the epoch (they mutate the mapping
// inline). Runs with a recorder attached, a non-kernel host (nflex), a
// predictive kernel, or workers <= 1 take the serial path wholesale.
package ssd

import (
	"flexftl/internal/buffer"
	"flexftl/internal/ftl"
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

// epochState is the open epoch under construction.
type epochState struct {
	k      *ftl.Kernel
	runner *ftl.ShardRunner
	window sim.Time

	ops     []ftl.EpochOp
	entries []*buffer.Entry // parallel to ops; nil for reads
	reqs    []epochReq
	lpns    map[int64]struct{}
	start   sim.Time // arrival of the first planned request
	writes  int      // host page writes planned so far (round-robin offset)
	chipW   []int    // per-chip planned writes (R5 input)
	reqW    []int    // scratch: per-chip writes of the request being planned
}

// epochReq records one planned request for the barrier's in-order accounting.
type epochReq struct {
	op             workload.Op
	pages          int
	arrival        sim.Time
	opStart, opEnd int
}

func (e *epochState) reset() {
	e.ops = e.ops[:0]
	e.entries = e.entries[:0]
	e.reqs = e.reqs[:0]
	clear(e.lpns)
	for i := range e.chipW {
		e.chipW[i] = 0
	}
	e.writes = 0
	e.start = 0
}

// RunSharded drives the generator like Run, but executes epochs of host ops
// in parallel across the device's channels on up to `workers` goroutines.
// Shards are channels, so results are independent of the worker count:
// RunSharded(gen, N) produces the same RunResult (and the same FTL/device
// state) as Run(gen) for every N. Configurations the sharded engine cannot
// prove exact — workers <= 1, a non-kernel host, a predictive kernel, or an
// attached recorder (whose probes sample mid-epoch state) — run serial.
//
// One documented divergence: page payload token sequence numbers come from
// disjoint per-shard ranges, so flash payload bytes differ from a serial
// run's. Tokens are only parsed by crash-recovery scans of serial runs;
// results, mapping hashes and op counts never observe them.
func (s *System) RunSharded(gen workload.Generator, workers int) (RunResult, error) {
	k, isKernel := s.F.(*ftl.Kernel)
	if workers <= 1 || !isKernel || !k.ShardSupported() || s.obs != nil {
		return s.Run(gen)
	}
	runner := ftl.NewShardRunner(k, workers)
	defer runner.Close()
	s.shardEpochs, s.shardOps = 0, 0

	t := k.Device().Timing()
	window := t.BusXfer + t.ProgLSB
	if s.cfg.IdleThreshold < window {
		window = s.cfg.IdleThreshold
	}
	chips := k.Device().Geometry().Chips()
	e := &epochState{
		k:      k,
		runner: runner,
		window: window,
		lpns:   make(map[int64]struct{}),
		chipW:  make([]int, chips),
		reqW:   make([]int, chips),
	}

	rs := s.newRunState()
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if err := s.shardStep(rs, e, req); err != nil {
			return RunResult{}, err
		}
	}
	if err := s.flushEpoch(rs, e); err != nil {
		return RunResult{}, err
	}
	return s.finishRun(rs, gen)
}

// ShardReport returns the planner effectiveness of the last RunSharded
// call: how many epochs executed on the shard runner and how many page ops
// they carried in total. Deterministic for a given run, independent of the
// worker count.
func (s *System) ShardReport() (epochs, ops int) { return s.shardEpochs, s.shardOps }

// shardStep plans one request into the open epoch, flushing and retrying or
// falling back to the exact serial step when the epoch rules reject it.
func (s *System) shardStep(rs *runState, e *epochState, req workload.Request) error {
	arrival := rs.base + req.Arrival
	// R2: the epoch window closed — execute it before this request.
	if len(e.reqs) > 0 && arrival-e.start >= e.window {
		if err := s.flushEpoch(rs, e); err != nil {
			return err
		}
	}
	// The prologue's idle check needs an exact busyUntil when it can fire.
	// With the epoch empty, busyUntil is exact (the flush recomputed it).
	// With the epoch open, tryPlan bumped busyUntil to at least the epoch's
	// first arrival, and R2 bounds this arrival within IdleThreshold of
	// that, so the check is provably false — matching the serial run, whose
	// busyUntil is at least as large.
	if err := s.prologue(rs, arrival); err != nil {
		return err
	}
	if s.tryPlan(rs, e, req, arrival) {
		if len(e.reqs) == 1 {
			e.start = arrival
		}
		return nil
	}
	if len(e.reqs) > 0 {
		// The open epoch blocked the request (LPN conflict, buffer room,
		// chip headroom, quota sign): execute it and retry once on the
		// empty epoch. No idle recheck is needed — this arrival is within
		// the window of the flushed epoch's start, so the gap to the now
		// exact busyUntil is below the idle threshold.
		if err := s.flushEpoch(rs, e); err != nil {
			return err
		}
		if err := s.releaseUpTo(arrival); err != nil {
			return err
		}
		if s.tryPlan(rs, e, req, arrival) {
			if len(e.reqs) == 1 {
				e.start = arrival
			}
			return nil
		}
	}
	// Unshardable even on an empty epoch (trim, self-conflicting request,
	// thin buffer/chips/quota): take the exact serial path. tryPlan commits
	// incrementally, so wipe any partial state from the failed attempt.
	e.reset()
	return s.stepOp(rs, req, arrival)
}

// tryPlan admits req into the open epoch if the epoch rules allow it,
// appending its page ops; it reports success. All rule checks happen before
// the first mutation except LPN-set inserts on the failing path, which the
// caller wipes (the epoch is flushed or reset after any failure).
func (s *System) tryPlan(rs *runState, e *epochState, req workload.Request, arrival sim.Time) bool {
	// A request longer than the logical space wraps onto its own LPNs;
	// R1 cannot hold within the request itself.
	if int64(req.Pages) > rs.logical {
		return false
	}
	switch req.Op {
	case workload.OpRead:
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			if _, hit := e.lpns[lpn]; hit {
				return false // R1
			}
		}
		opStart := len(e.ops)
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			e.lpns[lpn] = struct{}{}
			chip, mapped := e.k.LookupChip(ftl.LPN(lpn))
			if !mapped {
				continue // unmapped read: served from the zero map, no device op
			}
			e.ops = append(e.ops, ftl.EpochOp{LPN: ftl.LPN(lpn), Chip: chip, Arrival: arrival})
			e.entries = append(e.entries, nil)
		}
		e.reqs = append(e.reqs, epochReq{op: req.Op, pages: req.Pages, arrival: arrival, opStart: opStart, opEnd: len(e.ops)})
		if arrival > rs.busyUntil {
			rs.busyUntil = arrival // lower bound; flush makes it exact
		}
		return true

	case workload.OpWrite:
		if s.buf.Free() < req.Pages {
			return false // R4
		}
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			if _, hit := e.lpns[lpn]; hit {
				return false // R1
			}
		}
		// R5 + Rq over the round-robin routing this request would get.
		occupied := s.cfg.BufferPages - s.buf.Free()
		ok := true
		for j := 0; j < req.Pages; j++ {
			chip := e.k.PeekChip(e.writes + j)
			e.reqW[chip]++
			util := float64(occupied+j+1) / float64(s.cfg.BufferPages)
			if !e.k.ShardQuotaStable(util, e.writes+j) {
				ok = false
				break
			}
		}
		if ok {
			for chip, w := range e.reqW {
				if w > 0 && !e.k.ShardWriteHeadroom(chip, e.chipW[chip]+w) {
					ok = false
					break
				}
			}
		}
		for i := range e.reqW {
			e.reqW[i] = 0
		}
		if !ok {
			return false
		}
		opStart := len(e.ops)
		for p := 0; p < req.Pages; p++ {
			lpn := int64((req.Page + int64(p)) % rs.logical)
			e.lpns[lpn] = struct{}{}
			entry, err := s.buf.TryAdmit(lpn, arrival)
			if err != nil {
				// R4 guaranteed room; an admit failure is a planner bug.
				panic("ssd: epoch admit failed with free buffer space: " + err.Error())
			}
			util := s.buf.Utilization()
			chip := e.k.PeekChip(e.writes)
			e.ops = append(e.ops, ftl.EpochOp{Write: true, LPN: ftl.LPN(lpn), Chip: chip, Arrival: arrival, Util: util})
			e.entries = append(e.entries, entry)
			e.chipW[chip]++
			e.writes++
		}
		e.reqs = append(e.reqs, epochReq{op: req.Op, pages: req.Pages, arrival: arrival, opStart: opStart, opEnd: len(e.ops)})
		if arrival > rs.busyUntil {
			rs.busyUntil = arrival // lower bound; flush makes it exact
		}
		return true

	default:
		// Trims mutate the mapping inline; unknown ops error serially.
		return false
	}
}

// flushEpoch executes the open epoch across the shards and performs the
// barrier's in-order host-side accounting: request completions, pending-heap
// pushes (which release buffer entries on later arrivals), metrics and
// latency records, and the exact busyUntil.
func (s *System) flushEpoch(rs *runState, e *epochState) error {
	if len(e.reqs) == 0 {
		e.reset()
		return nil
	}
	if len(e.ops) > 0 {
		if err := e.runner.ExecEpoch(e.ops); err != nil {
			return err
		}
		s.shardEpochs++
		s.shardOps += len(e.ops)
	}
	for _, r := range e.reqs {
		switch r.op {
		case workload.OpRead:
			completion := r.arrival
			for i := r.opStart; i < r.opEnd; i++ {
				if e.ops[i].Done > completion {
					completion = e.ops[i].Done
				}
			}
			rs.col.RecordRead(r.pages, r.arrival, completion)
			s.histRead.Record(int64(completion - r.arrival))
			if completion > rs.busyUntil {
				rs.busyUntil = completion
			}
		case workload.OpWrite:
			flushed := r.arrival
			for i := r.opStart; i < r.opEnd; i++ {
				s.pending.push(inflight{done: e.ops[i].Done, entry: e.entries[i]})
				if e.ops[i].Done > flushed {
					flushed = e.ops[i].Done
				}
			}
			// R4 ruled out backpressure, so admission == arrival and no
			// buffer-full blame accrues — exactly the serial accounting.
			rs.col.RecordWrite(r.pages, r.arrival, r.arrival, flushed)
			s.histWriteAck.Record(0)
			s.histWriteFlush.Record(int64(flushed - r.arrival))
			if flushed > rs.busyUntil {
				rs.busyUntil = flushed
			}
		}
	}
	e.reset()
	return nil
}
