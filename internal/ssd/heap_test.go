package ssd

import (
	"container/heap"
	"math/rand"
	"testing"

	"flexftl/internal/buffer"
	"flexftl/internal/sim"
)

// refHeap is a container/heap reference implementation of the inflight
// min-heap. The property test drives it in lockstep with the hand-rolled
// inflightHeap: if the open-coded sift-up/sift-down ever diverges from the
// standard library's ordering, the pop sequences differ.
type refHeap []inflight

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].done < h[j].done }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(inflight)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	it := old[n]
	old[n] = inflight{}
	*h = old[:n]
	return it
}

// TestInflightHeapProperty interleaves randomized pushes and pops on the
// hand-rolled heap and the container/heap reference and demands identical
// pop sequences. Completion times are drawn from a small range so duplicate
// done values — the case where sift order bugs hide, because Less is false
// both ways — occur constantly. Entries are tagged with distinct pointers
// so equal-time pops are still checked for min-time correctness (equal-time
// order between the two heaps is unspecified, so only done is compared).
func TestInflightHeapProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var got inflightHeap
		ref := &refHeap{}
		heap.Init(ref)
		const ops = 5000
		for i := 0; i < ops; i++ {
			if got.len() != ref.Len() {
				t.Fatalf("seed %d op %d: size mismatch got=%d ref=%d", seed, i, got.len(), ref.Len())
			}
			// Bias toward pushes early so the heaps grow, then drain.
			pushP := 60
			if i > ops*3/4 {
				pushP = 30
			}
			if got.len() == 0 || rng.Intn(100) < pushP {
				it := inflight{
					done:  sim.Time(rng.Intn(16)), // tight range: lots of duplicates
					entry: &buffer.Entry{},
				}
				got.push(it)
				heap.Push(ref, it)
				continue
			}
			g := got.pop()
			r := heap.Pop(ref).(inflight)
			if g.done != r.done {
				t.Fatalf("seed %d op %d: pop mismatch got done=%d ref done=%d", seed, i, g.done, r.done)
			}
		}
		// Drain both completely; the tails must match too.
		for got.len() > 0 {
			if ref.Len() == 0 {
				t.Fatalf("seed %d: reference drained first", seed)
			}
			g := got.pop()
			r := heap.Pop(ref).(inflight)
			if g.done != r.done {
				t.Fatalf("seed %d drain: pop mismatch got done=%d ref done=%d", seed, g.done, r.done)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("seed %d: hand-rolled heap drained first (%d left in reference)", seed, ref.Len())
		}
	}
}

// TestInflightHeapPopZeroesSlot pins the anti-leak contract documented on
// pop: the vacated tail slot must not keep a *buffer.Entry reachable.
func TestInflightHeapPopZeroesSlot(t *testing.T) {
	var h inflightHeap
	for i := 0; i < 4; i++ {
		h.push(inflight{done: sim.Time(i), entry: &buffer.Entry{}})
	}
	h.pop()
	tail := h[:cap(h)][len(h)] // the slot pop vacated
	if tail.entry != nil || tail.done != 0 {
		t.Fatalf("pop left %+v in the vacated slot", tail)
	}
}
