// Multi-queue host front-end for the epoch-sharded run engine. One
// generator per host queue feeds a background prefetch goroutine, the
// prefetched streams merge deterministically by (arrival, queue index), and
// the merged stream drives the standard epoch planner. Host-side request
// generation thus runs concurrently with planning and shard execution — the
// serial planner stops paying for RNG draws and Zipf sampling — while the
// planned op stream, and therefore the run result, stays byte-identical to
// a serial run of the same merged stream.
//
// With workload.SplitByChannel queues, per-queue LPN ranges are disjoint,
// so cross-queue R1 (unique-LPN) conflicts are structurally impossible and
// the planner's admission rate is bounded by per-queue behavior only.
package ssd

import (
	"fmt"

	"flexftl/internal/workload"
)

// prefetchDepth is the per-queue buffered-channel depth of the front-end.
// Deep enough to keep generation off the planner's critical path, shallow
// enough that an aborted run discards little speculative work.
const prefetchDepth = 256

// RunShardedMQ is RunSharded with a multi-queue host front-end: gens (one
// per host queue) are prefetched on background goroutines and merged by
// arrival time (ties break toward the lowest queue index). The determinism
// contract extends the single-queue one:
//
//	RunShardedMQ(name, gens, N) == RunSharded(MergeByArrival(name, gens...), N)
//	                            == Run(MergeByArrival(name, gens...))
//
// for every worker count N. name labels the merged workload in the result.
func (s *System) RunShardedMQ(name string, gens []workload.Generator, workers int) (RunResult, error) {
	if len(gens) == 0 {
		return RunResult{}, fmt.Errorf("ssd: multi-queue run needs at least one generator")
	}
	pre := make([]workload.Generator, len(gens))
	for i, g := range gens {
		var stop func()
		pre[i], stop = workload.Prefetch(g, prefetchDepth)
		defer stop()
	}
	return s.RunSharded(workload.MergeByArrival(name, pre...), workers)
}
