// Package ssd is the storage-system runner: it drives a workload generator
// through the host write buffer into an FTL on the shared virtual clock,
// modelling buffered write-back (host acknowledgement at buffer admission,
// backpressure when the buffer fills), read service, idle-window background
// GC dispatch, and active-time accounting for the IOPS metric.
package ssd

import (
	"errors"
	"fmt"

	"flexftl/internal/buffer"
	"flexftl/internal/ftl"
	"flexftl/internal/metrics"
	"flexftl/internal/obs"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

// Config parameterizes the runner.
type Config struct {
	// BufferPages is the host write-buffer capacity in pages. The paper's
	// policy thresholds (uhigh=80%, ulow=10%) act on this buffer.
	BufferPages int
	// BandwidthWindow is the write-bandwidth sampling window.
	BandwidthWindow sim.Time
	// IdleThreshold is the minimum arrival gap treated as an idle window
	// (and offered to the FTL's background GC).
	IdleThreshold sim.Time
	// PrefillFraction of the logical space is written sequentially before
	// measurement so runs start from a realistic steady state; counters
	// reset afterwards.
	PrefillFraction float64
}

// DefaultConfig returns the runner defaults.
func DefaultConfig() Config {
	return Config{
		BufferPages:     128,
		BandwidthWindow: 10 * sim.Millisecond,
		IdleThreshold:   1 * sim.Millisecond,
		PrefillFraction: 0.85,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.BufferPages <= 0:
		return fmt.Errorf("ssd: buffer must hold at least one page, got %d", c.BufferPages)
	case c.BandwidthWindow <= 0:
		return fmt.Errorf("ssd: bandwidth window must be positive")
	case c.IdleThreshold < 0:
		return fmt.Errorf("ssd: negative idle threshold")
	case c.PrefillFraction < 0 || c.PrefillFraction > 1:
		return fmt.Errorf("ssd: prefill fraction %v outside [0,1]", c.PrefillFraction)
	}
	return nil
}

// RunResult bundles the measurements of one run.
type RunResult struct {
	FTLName  string
	Workload string
	Metrics  metrics.Result
	Stats    ftl.Stats
	// Latency is the per-op-class percentile report (virtual-time µs),
	// computed from the always-on collector — identical with or without a
	// recorder attached.
	Latency metrics.LatencyReport
	// WAF is the media-programs-per-host-write amplification factor
	// (Stats.WriteAmplification, lifted here for run reports).
	WAF float64
	// WearSpread is the device's end-of-run wear imbalance (max/mean erase
	// count; 1.0 = perfectly level, 0 when the host doesn't expose it).
	WearSpread float64
	// Reliability summarizes the BER model's read outcomes and the FTL's
	// responses. nil unless the device carries a reliability model, so
	// baseline results (and their serialized goldens) are unchanged.
	Reliability *ReliabilityReport
}

// ReliabilityReport is the end-of-run reliability summary: how the device's
// ECC read ladder classified reads, and what the FTL did about the losses.
type ReliabilityReport struct {
	// Device-side read-outcome counters (every read of a programmed page).
	Reads         int64 // reads classified by the BER model
	Corrected     int64 // reads needing correction within the fast-decode bit budget
	RetriedReads  int64 // reads that entered the read-retry ladder
	RetryRounds   int64 // total retry rounds across those reads
	Uncorrectable int64 // reads that failed the full ladder (raw device count)

	// FTL-side response counters (zero when ftl.Config.Reliability is nil —
	// the detect-only configuration).
	UncorrectableReads int64 // host/scrub reads lost for good (no rebuild possible)
	ECCRebuilds        int64 // lost pages reconstructed from per-block parity
	ScrubReads         int64 // idle-window patrol reads
	RefreshCopies      int64 // page programs from refresh/scrub relocation
	RefreshedBlocks    int64 // whole blocks refreshed past the BER line
	GCReadLosses       int64 // GC relocations that carried a pinned placeholder
	RetiredBlocks      int64 // blocks retired (erase budget or post-erase BER)
}

// inflight tracks a buffered page whose program has not completed.
type inflight struct {
	done  sim.Time
	entry *buffer.Entry
}

// inflightHeap is a typed min-heap on completion time. The heap operations
// are implemented directly (rather than through container/heap) so pushes
// and pops move inflight values without boxing them into interfaces — this
// is the runner's hot path, one push per buffered page program.
type inflightHeap []inflight

func (h inflightHeap) len() int { return len(h) }

// push inserts it, sifting up to restore the heap order.
func (h *inflightHeap) push(it inflight) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].done <= s[i].done {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes and returns the earliest-completing entry. The vacated slot
// is zeroed so the heap does not pin released buffer entries.
func (h *inflightHeap) pop() inflight {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = inflight{}
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s[r].done < s[l].done {
			min = r
		}
		if s[i].done <= s[min].done {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// System binds an FTL to the runner state. The runner needs only the
// device-agnostic Host surface, so it drives the MLC kernels and the n-level
// nflex scheme alike.
type System struct {
	F   ftl.Host
	cfg Config

	buf      *buffer.Buffer
	pending  inflightHeap
	prefillT sim.Time
	obs      *obs.Recorder

	// Planner effectiveness of the last RunSharded call: epochs that
	// executed on the shard runner and the page ops they carried (requests
	// the planner could not shard ran serial and are not counted).
	shardRep ShardReport

	// Host-op latency histograms and the buffer-full blame counter (nil
	// without a recorder; prefetched in SetRecorder so the request loop
	// never touches the registry maps).
	histRead       *obs.Histogram
	histWriteAck   *obs.Histogram
	histWriteFlush *obs.Histogram
	histTrim       *obs.Histogram
	ctrBufFull     *obs.Counter
}

// New builds a System. The FTL must be freshly constructed (the runner owns
// its life cycle).
func New(f ftl.Host, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{
		F:   f,
		cfg: cfg,
		buf: buffer.New(cfg.BufferPages),
	}, nil
}

// Prefill sequentially writes the configured fraction of the logical space
// and resets the FTL counters, so measurement starts from steady state. It
// returns the virtual time consumed.
func (s *System) Prefill() (sim.Time, error) {
	n := int64(float64(s.F.LogicalPages()) * s.cfg.PrefillFraction)
	now := sim.Time(0)
	for lpn := int64(0); lpn < n; lpn++ {
		done, err := s.F.Write(ftl.LPN(lpn), now, 0.5)
		if err != nil {
			return now, fmt.Errorf("ssd: prefill LPN %d: %w", lpn, err)
		}
		now = done
	}
	if r, ok := s.F.(interface{ ResetCounters() }); ok {
		r.ResetCounters()
	}
	s.prefillT = now
	return now, nil
}

// SetRecorder threads an observability recorder through the whole stack:
// the FTL and device start emitting trace events, the buffer keeps a live
// utilization gauge, and — when the recorder carries a sampler — the
// runner registers the internal-state probes of the paper's Section 3
// dynamics (write-buffer utilization u, free blocks, and for quota-driven
// FTLs the LSB quota q and slow-block-queue depth) and ticks it at every
// request. Call it after Prefill so traces cover the measured run only;
// a nil recorder is a no-op. Tracing never changes results: the recorder
// only observes the virtual timeline.
func (s *System) SetRecorder(r *obs.Recorder) {
	s.obs = r
	if r == nil {
		return
	}
	if fr, ok := s.F.(interface{ SetRecorder(r *obs.Recorder) }); ok {
		fr.SetRecorder(r)
	}
	reg := r.Registry()
	s.buf.Instrument(reg.Gauge("buffer.u"))
	s.histRead = reg.Histogram("host.read_us")
	s.histWriteAck = reg.Histogram("host.write_ack_us")
	s.histWriteFlush = reg.Histogram("host.write_flush_us")
	s.histTrim = reg.Histogram("host.trim_us")
	s.ctrBufFull = reg.Counter(obs.BlameCounterName(obs.CauseBufferFull))
	samp := r.Sampler()
	if samp == nil {
		return
	}
	samp.Register("u", s.buf.Utilization)
	if fb, ok := s.F.(interface{ TotalFreeBlocks() int }); ok {
		samp.Register("free_blocks", func() float64 { return float64(fb.TotalFreeBlocks()) })
	}
	// Derived accounting streams, sampled per virtual-time window: write
	// amplification, cumulative GC copy volume, cumulative erases, and the
	// device's wear imbalance.
	samp.Register("waf", func() float64 { return s.F.Stats().WriteAmplification() })
	samp.Register("gc_copy_pages", func() float64 { return float64(s.F.Stats().GCCopies) })
	samp.Register("erase_count", func() float64 { return float64(s.F.Stats().Erases) })
	if ws, ok := s.F.(interface{ WearSpread() float64 }); ok {
		samp.Register("wear_spread", ws.WearSpread)
	}
	if q, ok := s.F.(interface{ Quota() int64 }); ok {
		samp.Register("q", func() float64 { return float64(q.Quota()) })
	}
	sq, okQ := s.F.(interface{ SlowQueueLen(chip int) int })
	ch, okC := s.F.(interface{ Chips() int })
	if okQ && okC {
		chips := ch.Chips()
		samp.Register("sbq_depth", func() float64 {
			total := 0
			for c := 0; c < chips; c++ {
				total += sq.SlowQueueLen(c)
			}
			return float64(total)
		})
	}
}

// releaseUpTo frees buffer slots whose programs completed by t.
func (s *System) releaseUpTo(t sim.Time) error {
	for s.pending.len() > 0 && s.pending[0].done <= t {
		it := s.pending.pop()
		if err := s.buf.Release(it.entry); err != nil {
			return err
		}
	}
	return nil
}

// runState is the per-run loop state shared by Run and RunSharded: the
// metrics collector, the virtual-time cursors of the request loop, and the
// cached run parameters.
type runState struct {
	col         *metrics.Collector
	base        sim.Time
	logical     int64
	busyUntil   sim.Time
	activeStart sim.Time
}

// newRunState opens one run's loop state.
func (s *System) newRunState() *runState {
	return &runState{
		col:         metrics.NewCollector(s.F.PageSize(), s.cfg.BandwidthWindow),
		base:        s.prefillT,
		logical:     s.F.LogicalPages(),
		busyUntil:   s.prefillT,
		activeStart: sim.Time(-1),
	}
}

// prologue is the per-request bookkeeping that precedes op service: active
// interval tracking, the state sampler tick, buffer releases up to the
// arrival, and the idle-window dispatch.
func (s *System) prologue(rs *runState, arrival sim.Time) error {
	if rs.activeStart < 0 {
		rs.activeStart = arrival
	}
	s.obs.Sample(arrival)
	if err := s.releaseUpTo(arrival); err != nil {
		return err
	}
	// Idle window: the device has drained and the next request is far
	// away — run background GC, then close the active interval.
	if arrival > rs.busyUntil+s.cfg.IdleThreshold {
		s.F.Idle(rs.busyUntil, arrival)
		rs.col.AddActive(rs.busyUntil - rs.activeStart)
		rs.activeStart = arrival
	}
	return nil
}

// stepOp services one request serially at its arrival time (the op switch of
// the classic run loop; the epoch planner also uses it as the exact fallback
// for anything it cannot shard).
func (s *System) stepOp(rs *runState, req workload.Request, arrival sim.Time) error {
	switch req.Op {
	case workload.OpRead:
		completion := arrival
		for p := 0; p < req.Pages; p++ {
			lpn := ftl.LPN((req.Page + int64(p)) % rs.logical)
			done, err := s.F.Read(lpn, arrival)
			if err != nil {
				if errors.Is(err, ftl.ErrUnmapped) {
					continue // never-written page: served from the zero map
				}
				if errors.Is(err, rel.ErrUncorrectable) {
					// Detected data loss: the read completed (full ECC retry
					// ladder, ending in a media-error response) — count its
					// latency and carry on. The loss itself is reported in
					// Stats.UncorrectableReads and the reliability report.
					if done > completion {
						completion = done
					}
					continue
				}
				return fmt.Errorf("ssd: read LPN %d: %w", lpn, err)
			}
			if done > completion {
				completion = done
			}
		}
		rs.col.RecordRead(req.Pages, arrival, completion)
		s.histRead.Record(int64(completion - arrival))
		if completion > rs.busyUntil {
			rs.busyUntil = completion
		}
	case workload.OpWrite:
		admission := arrival
		flushed := arrival
		for p := 0; p < req.Pages; p++ {
			lpn := ftl.LPN((req.Page + int64(p)) % rs.logical)
			// Backpressure: wait for the earliest in-flight program.
			for s.buf.Free() == 0 {
				if s.pending.len() == 0 {
					return fmt.Errorf("ssd: buffer full with nothing in flight")
				}
				it := s.pending.pop()
				if it.done > admission {
					admission = it.done
				}
				if err := s.buf.Release(it.entry); err != nil {
					return err
				}
			}
			entry, err := s.buf.TryAdmit(int64(lpn), admission)
			if err != nil {
				return err
			}
			util := s.buf.Utilization()
			done, err := s.F.Write(lpn, admission, util)
			if err != nil {
				return fmt.Errorf("ssd: write LPN %d: %w", lpn, err)
			}
			s.pending.push(inflight{done: done, entry: entry})
			if done > flushed {
				flushed = done
			}
		}
		rs.col.RecordWrite(req.Pages, arrival, admission, flushed)
		s.histWriteAck.Record(int64(admission - arrival))
		s.histWriteFlush.Record(int64(flushed - arrival))
		if admission > arrival {
			// The host stalled on a full write buffer before the last
			// page was admitted — buffer-full blame.
			s.ctrBufFull.Add(int64(admission - arrival))
		}
		if flushed > rs.busyUntil {
			rs.busyUntil = flushed
		}
	case workload.OpTrim:
		// Trims of one request are independent mapping operations: all
		// issue at arrival and the request completes when the slowest
		// does (max-completion, like reads) — not chained head to tail.
		completion := arrival
		for p := 0; p < req.Pages; p++ {
			lpn := ftl.LPN((req.Page + int64(p)) % rs.logical)
			done, err := s.F.Trim(lpn, arrival)
			if err != nil {
				return fmt.Errorf("ssd: trim LPN %d: %w", lpn, err)
			}
			if done > completion {
				completion = done
			}
		}
		rs.col.RecordTrim(req.Pages, arrival, completion)
		s.histTrim.Record(int64(completion - arrival))
		if completion > rs.busyUntil {
			rs.busyUntil = completion
		}
	default:
		return fmt.Errorf("ssd: unknown op %v", req.Op)
	}
	return nil
}

// finishRun closes the active interval, drains the buffer, and builds the
// result.
func (s *System) finishRun(rs *runState, gen workload.Generator) (RunResult, error) {
	if rs.activeStart >= 0 {
		rs.col.AddActive(rs.busyUntil - rs.activeStart)
	}
	if err := s.releaseUpTo(sim.MaxTime); err != nil {
		return RunResult{}, err
	}
	s.obs.Sample(rs.busyUntil)
	st := s.F.Stats()
	res := RunResult{
		FTLName:  s.F.Name(),
		Workload: gen.Name(),
		Metrics:  rs.col.Finalize(),
		Stats:    st,
		Latency:  rs.col.Latency(),
		WAF:      st.WriteAmplification(),
	}
	if ws, ok := s.F.(interface{ WearSpread() float64 }); ok {
		res.WearSpread = ws.WearSpread()
	}
	if fd, ok := s.F.(ftl.FTL); ok {
		if dev := fd.Device(); dev.Reliability() != nil {
			rc := dev.RelCounts()
			res.Reliability = &ReliabilityReport{
				Reads:              rc.Reads,
				Corrected:          rc.Corrected,
				RetriedReads:       rc.RetriedReads,
				RetryRounds:        rc.RetryRounds,
				Uncorrectable:      rc.Uncorrectable,
				UncorrectableReads: st.UncorrectableReads,
				ECCRebuilds:        st.ECCRebuilds,
				ScrubReads:         st.ScrubReads,
				RefreshCopies:      st.RefreshCopies,
				RefreshedBlocks:    st.RefreshedBlocks,
				GCReadLosses:       st.GCReadLosses,
				RetiredBlocks:      st.RetiredBlocks,
			}
		}
	}
	return res, nil
}

// Run drives the generator to completion and returns the measurements.
// Arrivals are offset by the prefill time automatically.
func (s *System) Run(gen workload.Generator) (RunResult, error) {
	rs := s.newRunState()
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		arrival := rs.base + req.Arrival
		if err := s.prologue(rs, arrival); err != nil {
			return RunResult{}, err
		}
		if err := s.stepOp(rs, req, arrival); err != nil {
			return RunResult{}, err
		}
	}
	return s.finishRun(rs, gen)
}
