package ssd

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"flexftl/internal/obs"
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

// runVarmail drives a fresh flexFTL system through a short Varmail run,
// optionally under a recorder, and returns the measurements.
func runVarmail(t *testing.T, rec *obs.Recorder) RunResult {
	t.Helper()
	sys := newSystem(t, "flexFTL")
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	sys.SetRecorder(rec)
	gen, err := workload.New(workload.Varmail(), sys.F.LogicalPages(), 2500, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracingDoesNotChangeResults is the guard behind the observability
// layer's core contract: the recorder only observes the virtual timeline, so
// an instrumented run must produce results identical to an uninstrumented
// one.
func TestTracingDoesNotChangeResults(t *testing.T) {
	plain := runVarmail(t, nil)

	var buf bytes.Buffer
	samp := obs.NewSampler(10 * sim.Millisecond)
	rec := obs.NewRecorder(obs.Options{
		Sink:    obs.NewChromeSink(&buf),
		Sampler: samp,
	})
	traced := runVarmail(t, rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing changed the results:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
	if rec.Emitted() == 0 {
		t.Fatal("traced run emitted no events")
	}
	if len(samp.Rows()) == 0 {
		t.Fatal("traced run sampled no rows")
	}
}

// chromeRecord is one trace_event entry as the integration test reads it.
type chromeRecord struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestChromeTraceEndToEnd runs a short flexFTL workload with a Chrome sink
// and asserts the emitted trace is loadable: well-formed trace_event JSON,
// named device tracks, and per-track monotonically non-decreasing
// timestamps on the device domains (chips pid 1, channels pid 2), which the
// device model guarantees by construction via its readyAt/chanFree
// serialization.
func TestChromeTraceEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	samp := obs.NewSampler(5 * sim.Millisecond)
	rec := obs.NewRecorder(obs.Options{
		Sink:    obs.NewChromeSink(&buf),
		Sampler: samp,
	})
	runVarmail(t, rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	var trace struct {
		TraceEvents []chromeRecord `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	seenKind := make(map[string]int)
	seenMeta := make(map[string]bool)
	lastTS := make(map[[2]int]int64) // (pid, tid) -> last ts
	for i, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
			if name, ok := e.Args["name"].(string); ok {
				seenMeta[name] = true
			}
		case "X", "i":
			seenKind[e.Name]++
			key := [2]int{e.PID, e.TID}
			// Device tracks (chips pid 1, channels pid 2) serialize ops, so
			// their timelines must never step backwards. FTL decision events
			// (pid 3) interleave completion-time and admission-time stamps
			// and are exempt.
			if e.PID == 1 || e.PID == 2 {
				if last, ok := lastTS[key]; ok && e.TS < last {
					t.Fatalf("record %d: track pid=%d tid=%d went backwards: %d after %d",
						i, e.PID, e.TID, e.TS, last)
				}
				lastTS[key] = e.TS
			}
			if e.Ph == "X" && e.Dur < 0 {
				t.Errorf("record %d: negative duration %d", i, e.Dur)
			}
		default:
			t.Errorf("record %d: unexpected phase %q", i, e.Ph)
		}
	}

	// A flexFTL Varmail run must exercise the core taxonomy.
	for _, want := range []string{"program_lsb", "program_msb", "read", "bus_xfer", "policy", "block_fast_open"} {
		if seenKind[want] == 0 {
			t.Errorf("no %q events in trace (kinds: %v)", want, seenKind)
		}
	}
	for _, want := range []string{"nand chips", "channel buses"} {
		if !seenMeta[want] {
			t.Errorf("missing %q process metadata", want)
		}
	}

	// The sampler recorded the paper's internal-state series.
	names := samp.Names()
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"u", "free_blocks", "q", "sbq_depth"} {
		if !has(want) {
			t.Errorf("sampler missing series %q (got %v)", want, names)
		}
	}
	if rows := samp.Rows(); len(rows) < 2 {
		t.Errorf("only %d sample rows", len(rows))
	}
	if q := samp.Series("q"); len(q) > 0 && q[len(q)-1] < 0 {
		t.Errorf("quota series negative: %v", q[len(q)-1])
	}
}

// TestRegistryPopulatedByRun asserts the instrumented device feeds the
// latency histograms and the buffer keeps its utilization gauge.
func TestRegistryPopulatedByRun(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{})
	res := runVarmail(t, rec)
	snap := rec.Registry().Snapshot()
	for _, want := range []string{
		"nand.program_lsb_us", "nand.read_us",
		"host.read_us", "host.write_ack_us", "host.write_flush_us",
	} {
		h, ok := snap.Histograms[want]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %q empty (have %v)", want, snap.Histograms)
		}
		if ok && want != "host.write_ack_us" && (h.P50 <= 0 || h.P99 < h.P50) {
			t.Errorf("histogram %q quantiles implausible: %+v", want, h)
		}
	}
	if _, ok := snap.Gauges["buffer.u"]; !ok {
		t.Errorf("buffer.u gauge missing (have %v)", snap.Gauges)
	}

	// Blame counters: every cause has a registered counter; a flexFTL run
	// must charge host media time and the two-phase reprogram penalty, and
	// its pair-parity backups must extend some completions.
	for c := obs.CauseHost; c < obs.CauseCount; c++ {
		if _, ok := snap.Counters[obs.BusyCounterName("nand", c)]; !ok {
			t.Errorf("busy counter %q missing", obs.BusyCounterName("nand", c))
		}
	}
	if v := snap.Counters[obs.BusyCounterName("nand", obs.CauseHost)]; v <= 0 {
		t.Errorf("nand.busy_us.host = %d, want > 0", v)
	}
	if v := snap.Counters[obs.BlameCounterName(obs.CauseReprogram)]; v <= 0 {
		t.Errorf("blame.reprogram_us = %d, want > 0 (host MSB writes happened)", v)
	}
	if v := snap.Counters[obs.BusyCounterName("nand", obs.CauseBackup)]; v <= 0 {
		t.Errorf("nand.busy_us.backup = %d, want > 0 (flexFTL writes pair parity)", v)
	}
	for _, name := range []string{
		obs.BlameCounterName(obs.CauseGC),
		obs.BlameCounterName(obs.CauseBackup),
		obs.BlameCounterName(obs.CauseBufferFull),
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("blame counter %q missing (have %v)", name, snap.Counters)
		}
	}

	// Host histograms agree with the always-on exact percentile report on
	// sample counts (values differ: buckets vs exact).
	if got, want := snap.Histograms["host.read_us"].Count, res.Latency.Read.Count; got != want {
		t.Errorf("host.read_us count = %d, Latency.Read.Count = %d", got, want)
	}
	if got, want := snap.Histograms["host.write_ack_us"].Count, res.Latency.WriteAck.Count; got != want {
		t.Errorf("host.write_ack_us count = %d, Latency.WriteAck.Count = %d", got, want)
	}
}

// TestLatencyAndWAFAlwaysOn: the percentile report and WAF ride on every run,
// recorder or not, and agree with the stats the schemes keep.
func TestLatencyAndWAFAlwaysOn(t *testing.T) {
	res := runVarmail(t, nil)
	if res.Latency.Read.Count != res.Metrics.Reads {
		t.Errorf("read percentile count %d != reads %d", res.Latency.Read.Count, res.Metrics.Reads)
	}
	if res.Latency.WriteAck.Count != res.Metrics.Writes {
		t.Errorf("write-ack percentile count %d != writes %d", res.Latency.WriteAck.Count, res.Metrics.Writes)
	}
	lat := res.Latency.WriteFlush
	if !(lat.P50 <= lat.P90 && lat.P90 <= lat.P95 && lat.P95 <= lat.P99 &&
		lat.P99 <= lat.P999 && lat.P999 <= lat.Max) {
		t.Errorf("write-flush percentiles not monotone: %+v", lat)
	}
	if lat.Max <= 0 {
		t.Errorf("write-flush max = %v, want > 0", lat.Max)
	}
	if got, want := res.WAF, res.Stats.WriteAmplification(); got != want {
		t.Errorf("WAF = %v, Stats.WriteAmplification() = %v", got, want)
	}
	if res.WAF < 1 {
		t.Errorf("WAF = %v, want >= 1 (media programs include every host write)", res.WAF)
	}
}

// TestSamplerCarriesAccountingSeries: the windowed accounting streams (WAF,
// GC copy volume, erase count, wear spread) sample alongside the
// internal-state series.
func TestSamplerCarriesAccountingSeries(t *testing.T) {
	samp := obs.NewSampler(5 * sim.Millisecond)
	rec := obs.NewRecorder(obs.Options{Sampler: samp})
	runVarmail(t, rec)
	names := samp.Names()
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"waf", "gc_copy_pages", "erase_count", "wear_spread"} {
		if !has(want) {
			t.Errorf("sampler missing accounting series %q (got %v)", want, names)
		}
	}
	if waf := samp.Series("waf"); len(waf) > 0 && waf[len(waf)-1] < 1 {
		t.Errorf("final sampled WAF = %v, want >= 1", waf[len(waf)-1])
	}
	if ec := samp.Series("erase_count"); len(ec) > 1 {
		for i := 1; i < len(ec); i++ {
			if ec[i] < ec[i-1] {
				t.Errorf("erase_count series not monotone at %d: %v < %v", i, ec[i], ec[i-1])
				break
			}
		}
	}
}
