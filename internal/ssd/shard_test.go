// Table tests for the epoch planner's fallback-cause taxonomy: each
// admission rule is driven to rejection in isolation — duplicate LPN (R1),
// a closed arrival window (R2), missing buffer room (R4), a failing free
// margin on a pre-run-ineligible chip (R5), the same margin failure caused
// only by adversarial placement-stream routing (Rp), an unstable adaptive
// quota (Rq), and a self-wrapping request (Other, with serial trim pages
// attributed to the Trim counter). R1/R2/R4/Other run end-to-end through
// RunSharded and assert the report counters; R5/Rp/Rq need doctored kernel
// state, so they drive tryPlan directly and assert the returned cause.
package ssd

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

// newShardPlannerSystem builds a prefilled flexFTL system on the test
// geometry under the given host config.
func newShardPlannerSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(),
		Timing:   nand.DefaultTiming(),
		Rules:    core.RPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := flexftl.New(dev, ftl.DefaultConfig(), flexftl.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// newEpochForTest builds an empty open epoch exactly as RunSharded would,
// minus the shard runner (tryPlan never executes, so none is needed).
func newEpochForTest(sys *System) *epochState {
	k := sys.F.(*ftl.Kernel)
	tm := k.Device().Timing()
	window := tm.BusXfer + tm.ProgLSB
	if sys.cfg.IdleThreshold < window {
		window = sys.cfg.IdleThreshold
	}
	g := k.Device().Geometry()
	chips := g.Chips()
	return &epochState{
		k:         k,
		window:    window,
		lpns:      make(map[int64]struct{}),
		chipW:     make([]int, chips),
		chanOps:   make([]int, g.Channels),
		pendInval: make([]int, chips),
		reqW:      make([]int, chips),
		reqSeen:   make([]bool, chips),
		reqChan:   make([]int, g.Channels),
		reqInval:  make([]int, chips),
	}
}

func TestShardFallbackTaxonomy(t *testing.T) {
	t.Run("R1_duplicate_lpn", func(t *testing.T) {
		// Two reads of the same LPN inside one window: the second is
		// rejected from the open epoch (R1), then admitted after the flush —
		// no page falls back serial.
		sys := newShardPlannerSystem(t, DefaultConfig())
		gen := &sliceGen{reqs: []workload.Request{
			{Op: workload.OpRead, Page: 0, Pages: 1},
			{Op: workload.OpRead, Page: 0, Pages: 1, Arrival: 10 * sim.Microsecond},
		}}
		if _, err := sys.RunSharded(gen, 2); err != nil {
			t.Fatal(err)
		}
		rep := sys.ShardReport()
		if rep.Fallbacks.R1 != 1 || rep.SerialOps != 0 || rep.ShardedOps != 2 {
			t.Errorf("want R1=1 serial=0 sharded=2, got %+v", rep)
		}
	})

	t.Run("R2_window_close", func(t *testing.T) {
		// Two reads of distinct LPNs spaced past the epoch window: the
		// second closes the first epoch (R2) and opens its own.
		sys := newShardPlannerSystem(t, DefaultConfig())
		gen := &sliceGen{reqs: []workload.Request{
			{Op: workload.OpRead, Page: 0, Pages: 1},
			{Op: workload.OpRead, Page: 1, Pages: 1, Arrival: 700 * sim.Microsecond},
		}}
		if _, err := sys.RunSharded(gen, 2); err != nil {
			t.Fatal(err)
		}
		rep := sys.ShardReport()
		if rep.Fallbacks.R2 != 1 || rep.SerialOps != 0 || rep.ShardedOps != 2 {
			t.Errorf("want R2=1 serial=0 sharded=2, got %+v", rep)
		}
	})

	t.Run("R4_buffer_room", func(t *testing.T) {
		// A 3-page write against a 2-page buffer can never be admitted
		// atomically: R4 rejects it even on an empty epoch and all three
		// pages execute serially (where backpressure stalls are legal).
		cfg := DefaultConfig()
		cfg.BufferPages = 2
		sys := newShardPlannerSystem(t, cfg)
		gen := &sliceGen{reqs: []workload.Request{
			{Op: workload.OpWrite, Page: 0, Pages: 3},
		}}
		if _, err := sys.RunSharded(gen, 2); err != nil {
			t.Fatal(err)
		}
		rep := sys.ShardReport()
		if rep.Fallbacks.R4 != 1 || rep.SerialOps != 3 || rep.ShardedOps != 0 {
			t.Errorf("want R4=1 serial=3 sharded=0, got %+v", rep)
		}
	})

	t.Run("R5_margin_prerun_ineligible", func(t *testing.T) {
		// A planned read occupies the write chip's channel, then the chip's
		// free pool is drained below the GC trigger: the margin fails and
		// the dirty channel rules out a GC pre-run, so the cause is R5.
		sys := newShardPlannerSystem(t, DefaultConfig())
		k := sys.F.(*ftl.Kernel)
		g := k.Device().Geometry()
		e := newEpochForTest(sys)
		rs := sys.newRunState()

		chip0 := k.PeekChip(0)
		ch0 := g.ChannelOf(chip0)
		readLPN := int64(-1)
		for lpn := int64(0); lpn < rs.logical; lpn++ {
			if c, ok := k.LookupChip(ftl.LPN(lpn)); ok && g.ChannelOf(c) == ch0 {
				readLPN = lpn
				break
			}
		}
		if readLPN < 0 {
			t.Fatalf("no prefilled LPN maps to channel %d", ch0)
		}
		cause, err := sys.tryPlan(rs, e, workload.Request{Op: workload.OpRead, Page: readLPN, Pages: 1}, rs.base)
		if err != nil || cause != planOK {
			t.Fatalf("planning the channel-occupying read: cause=%v err=%v", cause, err)
		}
		pool := k.Pools[chip0]
		for pool.FreeCount() > 0 {
			pool.PopFree()
		}
		writeLPN := (readLPN + 1) % rs.logical
		cause, err = sys.tryPlan(rs, e, workload.Request{Op: workload.OpWrite, Page: writeLPN, Pages: 1}, rs.base)
		if err != nil {
			t.Fatal(err)
		}
		if cause != causeR5 {
			t.Errorf("want causeR5, got %v", cause)
		}
		if rep := sys.ShardReport(); rep.GCPreRuns != 0 {
			t.Errorf("pre-run fired on a dirty channel: %+v", rep)
		}
	})

	t.Run("Rp_placement_hazard", func(t *testing.T) {
		// The R5 doctoring on a hot/cold kernel straight out of prefill:
		// every prefill write is a first touch, so the hot stream has no
		// active fast block yet. Worst-case routing (the write goes hot)
		// pops a free block immediately while best-case routing rides the
		// cold stream's slack, so at the boundary free count the margin
		// failure is a placement artifact — the cause is Rp, not R5.
		h, err := ftl.Build("flexFTL-hotcold", ftl.BuildEnv{
			Geometry: nand.TestGeometry(),
			Config:   ftl.DefaultConfig(),
			Flex:     ftl.DefaultFlexParams(),
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := New(h.(ftl.FTL), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Prefill(); err != nil {
			t.Fatal(err)
		}
		k := sys.F.(*ftl.Kernel)
		g := k.Device().Geometry()
		e := newEpochForTest(sys)
		rs := sys.newRunState()

		chip0 := k.PeekChip(0)
		ch0 := g.ChannelOf(chip0)
		readLPN := int64(-1)
		for lpn := int64(0); lpn < rs.logical; lpn++ {
			if c, ok := k.LookupChip(ftl.LPN(lpn)); ok && g.ChannelOf(c) == ch0 {
				readLPN = lpn
				break
			}
		}
		if readLPN < 0 {
			t.Fatalf("no prefilled LPN maps to channel %d", ch0)
		}
		cause, err := sys.tryPlan(rs, e, workload.Request{Op: workload.OpRead, Page: readLPN, Pages: 1}, rs.base)
		if err != nil || cause != planOK {
			t.Fatalf("planning the channel-occupying read: cause=%v err=%v", cause, err)
		}
		pool := k.Pools[chip0]
		for pool.FreeCount() > 0 && k.ShardWriteHeadroom(chip0, 1) {
			pool.PopFree()
		}
		if k.ShardWriteHeadroom(chip0, 1) {
			t.Fatal("draining the free pool never failed the margin")
		}
		if !k.ShardPlacementHazard(chip0, 1) {
			t.Fatal("margin failure is not a placement hazard; the hot stream unexpectedly holds an active block")
		}
		writeLPN := (readLPN + 1) % rs.logical
		cause, err = sys.tryPlan(rs, e, workload.Request{Op: workload.OpWrite, Page: writeLPN, Pages: 1}, rs.base)
		if err != nil {
			t.Fatal(err)
		}
		if cause != causeRp {
			t.Errorf("want causeRp, got %v", cause)
		}
		if rep := sys.ShardReport(); rep.GCPreRuns != 0 {
			t.Errorf("pre-run fired on a dirty channel: %+v", rep)
		}
	})

	t.Run("Rq_quota_flip", func(t *testing.T) {
		// The buffer sits at full utilization (the high band consults the
		// adaptive quota q) and the epoch already holds more planned writes
		// than |q|: the frozen quota cannot be proven sign-stable, so the
		// cause is Rq.
		cfg := DefaultConfig()
		cfg.BufferPages = 4
		sys := newShardPlannerSystem(t, cfg)
		k := sys.F.(*ftl.Kernel)
		e := newEpochForTest(sys)
		rs := sys.newRunState()

		for i := int64(0); i < 3; i++ {
			if _, err := sys.buf.TryAdmit(1000+i, rs.base); err != nil {
				t.Fatal(err)
			}
		}
		w := int(k.Quota())
		if w < 0 {
			w = -w
		}
		e.writes = w + 1
		cause, err := sys.tryPlan(rs, e, workload.Request{Op: workload.OpWrite, Page: 0, Pages: 1}, rs.base)
		if err != nil {
			t.Fatal(err)
		}
		if cause != causeRq {
			t.Errorf("want causeRq, got %v", cause)
		}
	})

	t.Run("Other_self_wrapping_trim", func(t *testing.T) {
		// A trim longer than the logical space wraps onto its own LPNs:
		// outside the rule set (Other), its pages execute serially and are
		// attributed to the Trim counter.
		sys := newShardPlannerSystem(t, DefaultConfig())
		pages := int(sys.F.LogicalPages()) + 1
		gen := &sliceGen{reqs: []workload.Request{
			{Op: workload.OpTrim, Page: 0, Pages: pages},
		}}
		if _, err := sys.RunSharded(gen, 2); err != nil {
			t.Fatal(err)
		}
		rep := sys.ShardReport()
		if rep.Fallbacks.Other != 1 || rep.Fallbacks.Trim != pages || rep.SerialOps != pages {
			t.Errorf("want Other=1 Trim=%d serial=%d, got %+v", pages, pages, rep)
		}
	})
}
