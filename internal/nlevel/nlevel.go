// Package nlevel generalizes the paper's program-sequence formalism from
// 2-bit MLC to n-bit multi-level cells — the extension the paper claims in
// Section 1 ("our proposed technique can be applicable for other NAND
// devices such as TLC NAND devices with a similar program scheme").
//
// An n-bit cell's word line carries n pages, from the coarsest level 0
// (the MLC LSB) to the finest level n-1 (the MLC MSB). Each finer program
// refines the word line's Vth distribution and is destructive to the
// coarser data while in flight. The base (relaxed) constraint set
// generalizes the paper's Constraints 1-3:
//
//	Same-type chain:  T_i(k) requires T_i(k-1)          (k >= 1)
//	Refinement:       T_i(k) requires T_(i-1)(k)        (i >= 1)
//	Shielding:        T_i(k) requires T_(i-1)(k+1)      (i >= 1, vacuous on the last WL)
//
// Shielding guarantees that once T_i(k) is programmed, the only neighbour
// program that can still disturb word line k at refinement depth i is
// T_i(k+1) — the same one-aggressor bound the paper proves for MLC RPS.
// With n = 2 the base rules are exactly core.RPS, and the canonical fixed
// order is exactly core.FPSOrder.
//
// The vendor fixed sequence is modeled as what it is on real parts: a fixed
// order (the canonical staircase, FixedOrder), with StrictFPS accepting only
// the next page of that order.
package nlevel

import (
	"fmt"

	"flexftl/internal/rng"
)

// Page identifies one page within a block: word line and level (0 =
// coarsest/fastest ... Levels-1 = finest/slowest).
type Page struct {
	WL    int
	Level int
}

// String formats like "T1(3)".
func (p Page) String() string { return fmt.Sprintf("T%d(%d)", p.Level, p.WL) }

// Scheme fixes the block shape: word lines and bits per cell.
type Scheme struct {
	Levels    int // bits per cell: 2 = MLC, 3 = TLC, 4 = QLC
	WordLines int
}

// MLC and TLC are the common schemes.
func MLC(wordLines int) Scheme { return Scheme{Levels: 2, WordLines: wordLines} }

// TLC returns a 3-bit scheme.
func TLC(wordLines int) Scheme { return Scheme{Levels: 3, WordLines: wordLines} }

// Validate rejects degenerate schemes.
func (s Scheme) Validate() error {
	if s.Levels < 2 {
		return fmt.Errorf("nlevel: need >= 2 levels, got %d", s.Levels)
	}
	if s.WordLines < 1 {
		return fmt.Errorf("nlevel: need >= 1 word line, got %d", s.WordLines)
	}
	return nil
}

// Pages returns the page count of a block.
func (s Scheme) Pages() int { return s.Levels * s.WordLines }

// Index flattens a page (level-major: all level-0 pages, then level-1, ...).
func (s Scheme) Index(p Page) int { return p.Level*s.WordLines + p.WL }

// PageAt inverts Index.
func (s Scheme) PageAt(idx int) Page {
	return Page{WL: idx % s.WordLines, Level: idx / s.WordLines}
}

// State tracks programmed pages of one block.
type State struct {
	scheme     Scheme
	written    []bool
	programmed int
}

// NewState returns an erased block state.
func NewState(s Scheme) *State {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return &State{scheme: s, written: make([]bool, s.Pages())}
}

// Scheme returns the block shape.
func (st *State) Scheme() Scheme { return st.scheme }

// Written reports whether p has been programmed. Out-of-range pages report
// false.
func (st *State) Written(p Page) bool {
	if p.WL < 0 || p.WL >= st.scheme.WordLines || p.Level < 0 || p.Level >= st.scheme.Levels {
		return false
	}
	return st.written[st.scheme.Index(p)]
}

// Programmed returns the number of programmed pages.
func (st *State) Programmed() int { return st.programmed }

// Full reports whether the block is completely programmed.
func (st *State) Full() bool { return st.programmed == st.scheme.Pages() }

// Mark records a program; double programming panics (simulator bug).
func (st *State) Mark(p Page) {
	if p.WL < 0 || p.WL >= st.scheme.WordLines || p.Level < 0 || p.Level >= st.scheme.Levels {
		panic(fmt.Sprintf("nlevel: page %v out of range", p))
	}
	if st.Written(p) {
		panic(fmt.Sprintf("nlevel: double program of %v", p))
	}
	st.written[st.scheme.Index(p)] = true
	st.programmed++
}

// Reset models a block erase.
func (st *State) Reset() {
	for i := range st.written {
		st.written[i] = false
	}
	st.programmed = 0
}

// Violation reports which generalized constraint a probe would break.
type Violation struct {
	Kind    string // "chain", "refinement", "shielding", "fixed-order"
	Page    Page
	Missing Page
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Kind == "fixed-order" {
		return fmt.Sprintf("nlevel: %v is not the next page of the fixed sequence (expected %v)", v.Page, v.Missing)
	}
	return fmt.Sprintf("nlevel: programming %v violates the %s constraint: %v not yet written", v.Page, v.Kind, v.Missing)
}

// CheckRelaxed decides legality of programming p next under the generalized
// relaxed (RPS-n) constraint set.
func CheckRelaxed(st *State, p Page) error {
	s := st.scheme
	if p.WL < 0 || p.WL >= s.WordLines || p.Level < 0 || p.Level >= s.Levels {
		return fmt.Errorf("nlevel: page %v out of range", p)
	}
	if st.Written(p) {
		return fmt.Errorf("nlevel: page %v already programmed", p)
	}
	if p.WL >= 1 {
		if pre := (Page{WL: p.WL - 1, Level: p.Level}); !st.Written(pre) {
			return &Violation{Kind: "chain", Page: p, Missing: pre}
		}
	}
	if p.Level >= 1 {
		if pre := (Page{WL: p.WL, Level: p.Level - 1}); !st.Written(pre) {
			return &Violation{Kind: "refinement", Page: p, Missing: pre}
		}
		if p.WL+1 < s.WordLines {
			if pre := (Page{WL: p.WL + 1, Level: p.Level - 1}); !st.Written(pre) {
				return &Violation{Kind: "shielding", Page: p, Missing: pre}
			}
		}
	}
	return nil
}

// FixedOrder returns the canonical vendor staircase: in round r the pages
// T_(n-1)(r-2(n-1)), ..., T_1(r-2), T_0(r) — finest first — for every index
// in range. For n = 2 this is exactly the paper's Figure 2(b) interleave.
func FixedOrder(s Scheme) []Page {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	order := make([]Page, 0, s.Pages())
	lastRound := (s.WordLines - 1) + 2*(s.Levels-1)
	for r := 0; r <= lastRound; r++ {
		for i := s.Levels - 1; i >= 0; i-- {
			k := r - 2*i
			if k >= 0 && k < s.WordLines {
				order = append(order, Page{WL: k, Level: i})
			}
		}
	}
	return order
}

// CheckFixed accepts only the next page of the canonical staircase — the
// behaviour of a stock part whose datasheet mandates one order.
func CheckFixed(st *State, p Page) error {
	order := FixedOrder(st.scheme)
	n := st.Programmed()
	if n >= len(order) {
		return fmt.Errorf("nlevel: block already full")
	}
	if order[n] != p {
		return &Violation{Kind: "fixed-order", Page: p, Missing: order[n]}
	}
	return nil
}

// RelaxedFullOrder is the n-level generalization of RPSfull / 2PO: all
// level-0 pages in word-line order, then all level-1 pages, and so on — an
// (n)-phase ordering.
func RelaxedFullOrder(s Scheme) []Page {
	order := make([]Page, 0, s.Pages())
	for i := 0; i < s.Levels; i++ {
		for k := 0; k < s.WordLines; k++ {
			order = append(order, Page{WL: k, Level: i})
		}
	}
	return order
}

// RandomRelaxedOrder draws a random complete legal order under the relaxed
// rules.
func RandomRelaxedOrder(src *rng.Source, s Scheme) []Page {
	st := NewState(s)
	order := make([]Page, 0, s.Pages())
	for !st.Full() {
		var legal []Page
		for idx := 0; idx < s.Pages(); idx++ {
			p := s.PageAt(idx)
			if CheckRelaxed(st, p) == nil {
				legal = append(legal, p)
			}
		}
		p := legal[src.Intn(len(legal))]
		st.Mark(p)
		order = append(order, p)
	}
	return order
}

// ValidateOrder checks a complete order against a rule function; it returns
// the first illegal index and error, or (-1, nil).
func ValidateOrder(check func(*State, Page) error, s Scheme, order []Page) (int, error) {
	st := NewState(s)
	for i, p := range order {
		if err := check(st, p); err != nil {
			return i, err
		}
		st.Mark(p)
	}
	if !st.Full() {
		return len(order), fmt.Errorf("nlevel: order covers %d of %d pages", st.Programmed(), s.Pages())
	}
	return -1, nil
}

// AggressorCounts returns, per word line, the number of neighbour page
// programs occurring after the word line's finest (level n-1) program — the
// quantity the shielding constraint bounds at 1 for every legal relaxed
// order. Word lines whose finest page is absent report -1.
func AggressorCounts(s Scheme, order []Page) []int {
	pos := make(map[Page]int, len(order))
	for i, p := range order {
		pos[p] = i
	}
	counts := make([]int, s.WordLines)
	for k := 0; k < s.WordLines; k++ {
		finest, ok := pos[Page{WL: k, Level: s.Levels - 1}]
		if !ok {
			counts[k] = -1
			continue
		}
		n := 0
		for _, nb := range []int{k - 1, k + 1} {
			if nb < 0 || nb >= s.WordLines {
				continue
			}
			for i := 0; i < s.Levels; i++ {
				if p, ok := pos[Page{WL: nb, Level: i}]; ok && p > finest {
					n++
				}
			}
		}
		counts[k] = n
	}
	return counts
}

// MaxAggressors returns the maximum over fully programmed word lines.
func MaxAggressors(s Scheme, order []Page) int {
	max := 0
	for _, c := range AggressorCounts(s, order) {
		if c > max {
			max = c
		}
	}
	return max
}

// WorstCaseOrder returns a forbidden order maximizing aggressors on interior
// even word lines (even word lines fully programmed before odd ones): each
// interior even WL then suffers 2*Levels late neighbour programs.
func WorstCaseOrder(s Scheme) []Page {
	order := make([]Page, 0, s.Pages())
	for _, parity := range []int{0, 1} {
		for k := parity; k < s.WordLines; k += 2 {
			for i := 0; i < s.Levels; i++ {
				order = append(order, Page{WL: k, Level: i})
			}
		}
	}
	return order
}

// CountRelaxedOrders exhaustively counts complete legal relaxed orders
// (exponential; small schemes only).
func CountRelaxedOrders(s Scheme) int {
	st := NewState(s)
	var rec func() int
	rec = func() int {
		if st.Full() {
			return 1
		}
		total := 0
		for idx := 0; idx < s.Pages(); idx++ {
			p := s.PageAt(idx)
			if CheckRelaxed(st, p) != nil {
				continue
			}
			st.Mark(p)
			total += rec()
			st.written[s.Index(p)] = false
			st.programmed--
		}
		return total
	}
	return rec()
}
