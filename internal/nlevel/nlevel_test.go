package nlevel

import (
	"errors"
	"testing"
	"testing/quick"

	"flexftl/internal/core"
	"flexftl/internal/rng"
)

func TestSchemeValidate(t *testing.T) {
	if err := MLC(8).Validate(); err != nil {
		t.Error(err)
	}
	if err := TLC(8).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Scheme{Levels: 1, WordLines: 4}).Validate(); err == nil {
		t.Error("1-level scheme accepted")
	}
	if err := (Scheme{Levels: 2, WordLines: 0}).Validate(); err == nil {
		t.Error("0-word-line scheme accepted")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	s := TLC(5)
	seen := map[int]bool{}
	for l := 0; l < s.Levels; l++ {
		for k := 0; k < s.WordLines; k++ {
			p := Page{WL: k, Level: l}
			idx := s.Index(p)
			if seen[idx] {
				t.Fatalf("index %d duplicated", idx)
			}
			seen[idx] = true
			if s.PageAt(idx) != p {
				t.Fatalf("round trip %v -> %d -> %v", p, idx, s.PageAt(idx))
			}
		}
	}
	if len(seen) != s.Pages() {
		t.Errorf("covered %d of %d", len(seen), s.Pages())
	}
}

func TestStateBasics(t *testing.T) {
	st := NewState(MLC(4))
	p := Page{WL: 0, Level: 0}
	if st.Written(p) || st.Full() {
		t.Error("fresh state wrong")
	}
	st.Mark(p)
	if !st.Written(p) || st.Programmed() != 1 {
		t.Error("Mark not reflected")
	}
	st.Reset()
	if st.Written(p) || st.Programmed() != 0 {
		t.Error("Reset failed")
	}
	if st.Written(Page{WL: -1, Level: 0}) || st.Written(Page{WL: 0, Level: 99}) {
		t.Error("out-of-range Written true")
	}
}

func TestMarkPanics(t *testing.T) {
	st := NewState(MLC(2))
	st.Mark(Page{WL: 0, Level: 0})
	for _, p := range []Page{{WL: 0, Level: 0}, {WL: 9, Level: 0}} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mark(%v) did not panic", p)
				}
			}()
			st.Mark(p)
		}()
	}
}

// TestMLCEquivalence: with 2 levels the generalized formalism must agree
// with internal/core exactly — fixed order, RPSfull, and relaxed legality on
// random probes.
func TestMLCEquivalence(t *testing.T) {
	const wl = 8
	s := MLC(wl)

	toCore := func(p Page) core.Page {
		typ := core.LSB
		if p.Level == 1 {
			typ = core.MSB
		}
		return core.Page{WL: p.WL, Type: typ}
	}

	// Fixed order == core.FPSOrder.
	fixed := FixedOrder(s)
	coreFixed := core.FPSOrder(wl)
	if len(fixed) != len(coreFixed) {
		t.Fatalf("lengths differ: %d vs %d", len(fixed), len(coreFixed))
	}
	for i := range fixed {
		if toCore(fixed[i]) != coreFixed[i] {
			t.Fatalf("fixed[%d] = %v, core %v", i, fixed[i], coreFixed[i])
		}
	}

	// RelaxedFullOrder == core.RPSFullOrder.
	full := RelaxedFullOrder(s)
	coreFull := core.RPSFullOrder(wl)
	for i := range full {
		if toCore(full[i]) != coreFull[i] {
			t.Fatalf("full[%d] = %v, core %v", i, full[i], coreFull[i])
		}
	}

	// Relaxed legality agrees with core.RPS along random prefixes.
	src := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		order := RandomRelaxedOrder(src.Split(uint64(trial)), s)
		st := NewState(s)
		cst := core.NewBlockState(wl)
		for _, p := range order {
			// Before marking, probe every page and compare verdicts.
			for idx := 0; idx < s.Pages(); idx++ {
				probe := s.PageAt(idx)
				a := CheckRelaxed(st, probe) == nil
				b := core.RPS.Check(cst, toCore(probe)) == nil
				if a != b {
					t.Fatalf("legality disagrees for %v: nlevel %v, core %v", probe, a, b)
				}
			}
			st.Mark(p)
			cst.Mark(toCore(p))
		}
	}

	// Order counts agree for small blocks.
	for _, w := range []int{2, 3, 4} {
		if got, want := CountRelaxedOrders(MLC(w)), core.CountOrders(core.RPS, w); got != want {
			t.Errorf("wl=%d: nlevel counts %d orders, core %d", w, got, want)
		}
	}
}

func TestTLCFixedOrderLegalUnderRelaxed(t *testing.T) {
	for _, wl := range []int{1, 2, 4, 8, 32} {
		s := TLC(wl)
		order := FixedOrder(s)
		if len(order) != s.Pages() {
			t.Fatalf("wl=%d: fixed order has %d pages, want %d", wl, len(order), s.Pages())
		}
		if i, err := ValidateOrder(CheckRelaxed, s, order); err != nil {
			t.Fatalf("wl=%d: fixed order illegal under relaxed rules at %d: %v", wl, i, err)
		}
		if i, err := ValidateOrder(CheckFixed, s, order); err != nil {
			t.Fatalf("wl=%d: fixed order rejects itself at %d: %v", wl, i, err)
		}
	}
}

func TestTLCRelaxedFullOrder(t *testing.T) {
	s := TLC(16)
	order := RelaxedFullOrder(s)
	if i, err := ValidateOrder(CheckRelaxed, s, order); err != nil {
		t.Fatalf("3-phase order illegal at %d: %v", i, err)
	}
	// The fixed checker must reject it early (it is not the staircase).
	if _, err := ValidateOrder(CheckFixed, s, order); err == nil {
		t.Fatal("3-phase order accepted by the fixed checker")
	} else {
		var v *Violation
		if !errors.As(err, &v) || v.Kind != "fixed-order" {
			t.Fatalf("unexpected error %v", err)
		}
	}
}

func TestCheckRelaxedViolations(t *testing.T) {
	s := TLC(4)
	st := NewState(s)
	var v *Violation
	if err := CheckRelaxed(st, Page{WL: 1, Level: 0}); !errors.As(err, &v) || v.Kind != "chain" {
		t.Errorf("chain violation not reported: %v", err)
	}
	if err := CheckRelaxed(st, Page{WL: 0, Level: 1}); !errors.As(err, &v) || v.Kind != "refinement" {
		t.Errorf("refinement violation not reported: %v", err)
	}
	st.Mark(Page{WL: 0, Level: 0})
	if err := CheckRelaxed(st, Page{WL: 0, Level: 1}); !errors.As(err, &v) || v.Kind != "shielding" {
		t.Errorf("shielding violation not reported: %v", err)
	}
	st.Mark(Page{WL: 1, Level: 0})
	if err := CheckRelaxed(st, Page{WL: 0, Level: 1}); err != nil {
		t.Errorf("T1(0) should be legal: %v", err)
	}
	if err := CheckRelaxed(st, Page{WL: 9, Level: 0}); err == nil {
		t.Error("out-of-range probe accepted")
	}
	if err := CheckRelaxed(st, Page{WL: 0, Level: 0}); err == nil {
		t.Error("double program accepted")
	}
}

// TestShieldingBoundsAggressors is the generalized reliability invariant:
// every legal relaxed order leaves at most one late aggressor per word line,
// for MLC, TLC and QLC alike.
func TestShieldingBoundsAggressors(t *testing.T) {
	f := func(seed uint64, levelsRaw, wlRaw uint8) bool {
		levels := 2 + int(levelsRaw%3) // 2..4 bits
		wl := 2 + int(wlRaw%8)
		s := Scheme{Levels: levels, WordLines: wl}
		order := RandomRelaxedOrder(rng.New(seed), s)
		if i, err := ValidateOrder(CheckRelaxed, s, order); err != nil {
			t.Logf("order invalid at %d: %v", i, err)
			return false
		}
		return MaxAggressors(s, order) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFixedOrderAggressorsAlsoBounded(t *testing.T) {
	for _, s := range []Scheme{MLC(16), TLC(16), {Levels: 4, WordLines: 16}} {
		if got := MaxAggressors(s, FixedOrder(s)); got > 1 {
			t.Errorf("%d-level fixed order max aggressors = %d", s.Levels, got)
		}
	}
}

func TestWorstCaseOrderAggressors(t *testing.T) {
	for _, s := range []Scheme{MLC(8), TLC(8)} {
		order := WorstCaseOrder(s)
		if i, err := ValidateOrder(CheckRelaxed, s, order); err == nil {
			t.Errorf("%d-level worst-case order legal under relaxed rules (index %d)", s.Levels, i)
		}
		want := 2 * s.Levels // both neighbours fully programmed late
		got := MaxAggressors(s, order)
		if got != want {
			t.Errorf("%d-level worst-case max aggressors = %d, want %d", s.Levels, got, want)
		}
	}
}

func TestAggressorCountsPartial(t *testing.T) {
	s := TLC(2)
	counts := AggressorCounts(s, []Page{{WL: 0, Level: 0}})
	if counts[0] != -1 || counts[1] != -1 {
		t.Errorf("counts = %v, want [-1 -1]", counts)
	}
}

func TestTLCRelaxedAdmitsManyOrders(t *testing.T) {
	// TLC flexibility grows with word lines; the fixed sequence is 1.
	a, b := CountRelaxedOrders(TLC(2)), CountRelaxedOrders(TLC(3))
	if a < 1 || b <= a {
		t.Errorf("TLC order counts not growing: wl2=%d wl3=%d", a, b)
	}
}

// Property: random relaxed orders are complete permutations.
func TestRandomRelaxedOrderComplete(t *testing.T) {
	f := func(seed uint64, levelsRaw, wlRaw uint8) bool {
		s := Scheme{Levels: 2 + int(levelsRaw%3), WordLines: 1 + int(wlRaw%8)}
		order := RandomRelaxedOrder(rng.New(seed), s)
		if len(order) != s.Pages() {
			return false
		}
		seen := map[Page]bool{}
		for _, p := range order {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Kind: "chain", Page: Page{WL: 1}, Missing: Page{WL: 0}}
	if v.Error() == "" {
		t.Error("empty error string")
	}
	v.Kind = "fixed-order"
	if v.Error() == "" {
		t.Error("empty fixed-order error string")
	}
}
