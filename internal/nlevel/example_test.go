package nlevel_test

import (
	"fmt"
	"strings"

	"flexftl/internal/nlevel"
)

func render(order []nlevel.Page) string {
	parts := make([]string, len(order))
	for i, p := range order {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

// The generalized relaxed rules admit an n-phase order — all level-0 pages,
// then all level-1 pages, and so on — for TLC just as RPSfull does for MLC.
func ExampleRelaxedFullOrder() {
	s := nlevel.TLC(2)
	order := nlevel.RelaxedFullOrder(s)
	if i, err := nlevel.ValidateOrder(nlevel.CheckRelaxed, s, order); err != nil {
		fmt.Println("illegal at", i, err)
		return
	}
	fmt.Println(render(order))
	fmt.Println("max late aggressors:", nlevel.MaxAggressors(s, order))
	// Output:
	// T0(0) T0(1) T1(0) T1(1) T2(0) T2(1)
	// max late aggressors: 1
}

// The vendor staircase generalizes Figure 2(b): in round r the finest
// in-range page of each diagonal is programmed first.
func ExampleFixedOrder() {
	fmt.Println(render(nlevel.FixedOrder(nlevel.MLC(3))))
	// Output:
	// T0(0) T0(1) T1(0) T0(2) T1(1) T1(2)
}
