// Package ascii renders the evaluation's figures as terminal graphics:
// multi-series CDF curves (Figure 8(c)) and box plots (Figure 4). The
// renderers are deterministic, fixed-width, and dependency-free, so
// flexbench output can be diffed across runs.
package ascii

import (
	"fmt"
	"io"
	"math"
	"strings"

	"flexftl/internal/stats"
)

// Series is one labeled curve: for CDFs, Points are (x, cumulative p).
type Series struct {
	Label  string
	Points [][2]float64
}

// markers distinguish up to six series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// PlotCDF draws cumulative-distribution curves on a width x height grid.
// The x axis spans [0, xmax] where xmax is the largest sample; the y axis is
// 0..1.
func PlotCDF(w io.Writer, title, xlabel string, series []Series, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	xmax := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			if p[0] > xmax {
				xmax = p[0]
			}
		}
	}
	if xmax <= 0 {
		xmax = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int(p[0] / xmax * float64(width-1))
			row := height - 1 - int(p[1]*float64(height-1)+0.5)
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = m
		}
	}
	fmt.Fprintln(w, title)
	for r, line := range grid {
		yval := float64(height-1-r) / float64(height-1)
		fmt.Fprintf(w, "  %4.2f |%s|\n", yval, string(line))
	}
	fmt.Fprintf(w, "       %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(w, "       0%s%.1f  (%s)\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.1f", xmax))), xmax, xlabel)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	fmt.Fprintf(w, "       legend: %s\n", strings.Join(legend, "   "))
}

// Box is one labeled five-number summary.
type Box struct {
	Label   string
	Summary stats.FiveNum
}

// PlotBoxes draws horizontal box plots sharing one axis:
//
//	label |----[==|==]-----|
//
// with '-' whiskers, '=' the interquartile box and '|' the median.
func PlotBoxes(w io.Writer, title, xlabel string, boxes []Box, width int) {
	if width < 30 {
		width = 30
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		if b.Summary.Min < lo {
			lo = b.Summary.Min
		}
		if b.Summary.Max > hi {
			hi = b.Summary.Max
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	span := hi - lo
	col := func(v float64) int {
		c := int((v - lo) / span * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	labelW := 0
	for _, b := range boxes {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	fmt.Fprintln(w, title)
	for _, b := range boxes {
		line := []byte(strings.Repeat(" ", width))
		cMin, cQ1, cMed, cQ3, cMax := col(b.Summary.Min), col(b.Summary.Q1),
			col(b.Summary.Median), col(b.Summary.Q3), col(b.Summary.Max)
		for c := cMin; c <= cMax; c++ {
			line[c] = '-'
		}
		for c := cQ1; c <= cQ3; c++ {
			line[c] = '='
		}
		line[cMed] = '|'
		fmt.Fprintf(w, "  %-*s |%s|\n", labelW, b.Label, string(line))
	}
	fmt.Fprintf(w, "  %-*s %s\n", labelW, "", strings.Repeat("-", width+2))
	fmt.Fprintf(w, "  %-*s %.3g%s%.3g  (%s)\n", labelW, "",
		lo, strings.Repeat(" ", maxInt(1, width-14)), hi, xlabel)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Population is one labeled sample set for histogram plotting.
type Population struct {
	Label  string
	Values []float64
}

// PlotHistogram draws the populations' densities over a shared axis, one
// marker per population — the Figure 1 threshold-voltage-distribution view.
// Optional refs are vertical reference lines (read thresholds).
func PlotHistogram(w io.Writer, title, xlabel string, pops []Population, refs []float64, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pops {
		for _, v := range p.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	for _, r := range refs {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	span := hi - lo
	// Bucket counts per population.
	counts := make([][]int, len(pops))
	maxCount := 1
	for pi, p := range pops {
		counts[pi] = make([]int, width)
		for _, v := range p.Values {
			c := int((v - lo) / span * float64(width-1))
			if c < 0 {
				c = 0
			}
			if c >= width {
				c = width - 1
			}
			counts[pi][c]++
			if counts[pi][c] > maxCount {
				maxCount = counts[pi][c]
			}
		}
	}
	refCols := map[int]bool{}
	for _, r := range refs {
		refCols[int((r-lo)/span*float64(width-1))] = true
	}
	fmt.Fprintln(w, title)
	for row := height - 1; row >= 0; row-- {
		threshold := float64(row) / float64(height) * float64(maxCount)
		line := []byte(strings.Repeat(" ", width))
		for col := range line {
			if refCols[col] {
				line[col] = '.'
			}
		}
		for pi := range pops {
			m := markers[pi%len(markers)]
			for col, c := range counts[pi] {
				if float64(c) > threshold {
					line[col] = m
				}
			}
		}
		fmt.Fprintf(w, "  |%s|\n", string(line))
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(w, "  %.2f%s%.2f  (%s; '.' = read references)\n",
		lo, strings.Repeat(" ", maxInt(1, width-8)), hi, xlabel)
	var legend []string
	for pi, p := range pops {
		legend = append(legend, fmt.Sprintf("%c %s", markers[pi%len(markers)], p.Label))
	}
	fmt.Fprintf(w, "  legend: %s\n", strings.Join(legend, "  "))
}
