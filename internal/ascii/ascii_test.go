package ascii

import (
	"strings"
	"testing"

	"flexftl/internal/stats"
)

func TestPlotCDFBasics(t *testing.T) {
	series := []Series{
		{Label: "a", Points: [][2]float64{{10, 0.25}, {20, 0.5}, {30, 0.75}, {40, 1.0}}},
		{Label: "b", Points: [][2]float64{{5, 0.5}, {10, 1.0}}},
	}
	var sb strings.Builder
	PlotCDF(&sb, "test cdf", "MB/s", series, 40, 10)
	out := sb.String()
	for _, want := range []string{"test cdf", "MB/s", "* a", "o b", "1.00", "0.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Both markers must appear in the grid.
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Error("series markers missing from grid")
	}
	// Deterministic.
	var sb2 strings.Builder
	PlotCDF(&sb2, "test cdf", "MB/s", series, 40, 10)
	if sb2.String() != out {
		t.Error("plot not deterministic")
	}
}

func TestPlotCDFDegenerate(t *testing.T) {
	var sb strings.Builder
	PlotCDF(&sb, "empty", "x", nil, 5, 2) // tiny sizes clamp, no series
	if !strings.Contains(sb.String(), "empty") {
		t.Error("title missing")
	}
	// Zero-valued points must not panic or divide by zero.
	PlotCDF(&sb, "zeros", "x", []Series{{Label: "z", Points: [][2]float64{{0, 0}}}}, 30, 8)
}

func TestPlotBoxes(t *testing.T) {
	boxes := []Box{
		{Label: "FPS", Summary: stats.FiveNum{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5}},
		{Label: "RPSfull", Summary: stats.FiveNum{Min: 1.1, Q1: 2.1, Median: 3, Q3: 4.1, Max: 5.1}},
	}
	var sb strings.Builder
	PlotBoxes(&sb, "widths", "V", boxes, 40)
	out := sb.String()
	for _, want := range []string{"widths", "FPS", "RPSfull", "=", "|", "-", "(V)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestPlotHistogram(t *testing.T) {
	pops := []Population{
		{Label: "E", Values: []float64{-2, -2.1, -1.9, -2, -2}},
		{Label: "P3", Values: []float64{2.8, 2.9, 2.7, 2.8}},
	}
	var sb strings.Builder
	PlotHistogram(&sb, "vth", "V", pops, []float64{0.5}, 40, 6)
	out := sb.String()
	for _, want := range []string{"vth", "* E", "o P3", "read references", "(V;"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if !strings.ContainsRune(out, '.') {
		t.Error("reference line missing")
	}
}

func TestPlotHistogramDegenerate(t *testing.T) {
	var sb strings.Builder
	PlotHistogram(&sb, "flat", "x", []Population{{Label: "a", Values: []float64{1, 1, 1}}}, nil, 10, 2)
	if !strings.Contains(sb.String(), "flat") {
		t.Error("title missing")
	}
	PlotHistogram(&sb, "empty", "x", nil, nil, 10, 2)
}

func TestPlotBoxesDegenerate(t *testing.T) {
	var sb strings.Builder
	// All-equal summaries: span collapses; must not panic.
	PlotBoxes(&sb, "flat", "x", []Box{
		{Label: "a", Summary: stats.FiveNum{Min: 2, Q1: 2, Median: 2, Q3: 2, Max: 2}},
	}, 10)
	if !strings.Contains(sb.String(), "flat") {
		t.Error("title missing")
	}
}
