package nandn

import (
	"bytes"
	"errors"
	"testing"

	"flexftl/internal/nlevel"
	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	g := TLCGeometry()
	g.BlocksPerChip = 8
	g.WordLinesPerBlock = 4
	d, err := NewDevice(g, TLCTiming())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func pa(chip, blk, wl, lvl int) PageAddr {
	return PageAddr{Chip: chip, Block: blk, Page: nlevel.Page{WL: wl, Level: lvl}}
}

func TestGeometryValidate(t *testing.T) {
	if err := TLCGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TLCGeometry()
	bad.Levels = 1
	if err := bad.Validate(); err == nil {
		t.Error("1-level geometry accepted")
	}
	bad = TLCGeometry()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("0-channel geometry accepted")
	}
	g := TLCGeometry()
	if g.Chips() != 4 || g.PagesPerBlock() != 96 || g.TotalBlocks() != 256 {
		t.Errorf("geometry arithmetic wrong: %+v", g)
	}
	if g.TotalPages() != 256*96 {
		t.Error("TotalPages wrong")
	}
	if g.ChannelOf(3) != 1 {
		t.Error("ChannelOf wrong")
	}
	if g.String() == "" {
		t.Error("String empty")
	}
}

func TestTimingValidate(t *testing.T) {
	if err := TLCTiming().Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := TLCTiming().Validate(2); err == nil {
		t.Error("wrong level count accepted")
	}
	bad := TLCTiming()
	bad.Prog = []sim.Time{1000, 500, 2000} // non-monotone
	if err := bad.Validate(3); err == nil {
		t.Error("non-monotone latencies accepted")
	}
	bad = TLCTiming()
	bad.Read = 0
	if err := bad.Validate(3); err == nil {
		t.Error("zero read accepted")
	}
}

func TestProgramEnforcesRelaxedRules(t *testing.T) {
	d := testDevice(t)
	// T1(0) straight away is illegal (refinement without T0).
	if _, err := d.Program(pa(0, 0, 0, 1), nil, nil, 0); err == nil {
		t.Fatal("illegal refinement accepted")
	}
	// The generalized 3-phase order must be fully accepted.
	now := sim.Time(0)
	for _, p := range nlevel.RelaxedFullOrder(d.Geometry().Scheme()) {
		var err error
		now, err = d.Program(PageAddr{Chip: 0, Block: 0, Page: p}, []byte{byte(p.WL)}, nil, now)
		if err != nil {
			t.Fatalf("program %v: %v", p, err)
		}
	}
	if d.BlockProgrammed(0, 0) != d.Geometry().PagesPerBlock() {
		t.Error("block not full after 3-phase fill")
	}
}

func TestPerLevelLatencies(t *testing.T) {
	d := testDevice(t)
	tm := d.Timing()
	done0, err := d.Program(pa(0, 0, 0, 0), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done0 != tm.BusXfer+tm.Prog[0] {
		t.Errorf("level-0 done = %v", done0)
	}
	done1, err := d.Program(pa(0, 0, 1, 0), nil, nil, done0)
	if err != nil {
		t.Fatal(err)
	}
	doneRef, err := d.Program(pa(0, 0, 0, 1), nil, nil, done1)
	if err != nil {
		t.Fatal(err)
	}
	if got := doneRef - done1; got != tm.BusXfer+tm.Prog[1] {
		t.Errorf("level-1 latency = %v, want %v", got, tm.BusXfer+tm.Prog[1])
	}
	counts := d.Programs()
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 0 {
		t.Errorf("program counts = %v", counts)
	}
}

func TestReadBackAndErase(t *testing.T) {
	d := testDevice(t)
	data, spare := []byte("tlc payload"), []byte{0xaa}
	if _, err := d.Program(pa(0, 0, 0, 0), data, spare, 0); err != nil {
		t.Fatal(err)
	}
	got, gotSpare, done, err := d.Read(pa(0, 0, 0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || !bytes.Equal(gotSpare, spare) || done <= 0 {
		t.Error("read back mismatch")
	}
	if _, _, _, err := d.Read(pa(0, 0, 1, 0), done); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("erased read err = %v", err)
	}
	if _, err := d.Erase(0, 0, done); err != nil {
		t.Fatal(err)
	}
	if d.EraseCount(0, 0) != 1 || d.Erases() != 1 {
		t.Error("erase accounting wrong")
	}
	if _, _, _, err := d.Read(pa(0, 0, 0, 0), done); !errors.Is(err, ErrNotProgrammed) {
		t.Error("page survived erase")
	}
}

// TestPowerLossDestroysEarlierBits: a cut during a level-2 (finest) program
// destroys the word line's level-0 and level-1 pages too.
func TestPowerLossDestroysEarlierBits(t *testing.T) {
	d := testDevice(t)
	s := d.Geometry().Scheme()
	now := sim.Time(0)
	var err error
	// Program following the 3-phase order until the first level-2 page.
	for _, p := range nlevel.RelaxedFullOrder(s) {
		now, err = d.Program(PageAddr{Chip: 0, Block: 0, Page: p}, []byte{1}, nil, now)
		if err != nil {
			t.Fatal(err)
		}
		if p.Level == 2 && p.WL == 0 {
			break
		}
	}
	n := d.InjectPowerLoss(0, 0)
	if n != 3 {
		t.Fatalf("power loss corrupted %d pages, want 3 (T0,T1,T2 of WL0)", n)
	}
	for lvl := 0; lvl < 3; lvl++ {
		if _, _, _, err := d.Read(pa(0, 0, 0, lvl), now); !errors.Is(err, ErrUncorrectable) {
			t.Errorf("T%d(0) read err = %v, want uncorrectable", lvl, err)
		}
	}
	// Other word lines unaffected.
	if _, _, _, err := d.Read(pa(0, 0, 1, 0), now); err != nil {
		t.Errorf("unrelated page damaged: %v", err)
	}
}

func TestAckClosesWindow(t *testing.T) {
	d := testDevice(t)
	now := sim.Time(0)
	var err error
	now, err = d.Program(pa(0, 0, 0, 0), []byte{1}, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = d.Program(pa(0, 0, 1, 0), []byte{1}, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = d.Program(pa(0, 0, 0, 1), []byte{1}, nil, now); err != nil {
		t.Fatal(err)
	}
	d.AckProgram(0, 0)
	if n := d.InjectPowerLoss(0, 0); n != 0 {
		t.Errorf("acknowledged refinement still vulnerable: %d pages", n)
	}
}

func TestLevel0NotDestructive(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Program(pa(0, 0, 0, 0), []byte{1}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if n := d.InjectPowerLoss(0, 0); n != 0 {
		t.Errorf("level-0 program flagged destructive: %d", n)
	}
}

func TestChannelContention(t *testing.T) {
	d := testDevice(t)
	tm := d.Timing()
	// Chips 0 and 1 share channel 0.
	d1, err := d.Program(pa(0, 0, 0, 0), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := d.Program(pa(1, 0, 0, 0), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != tm.BusXfer+tm.Prog[0] || d2 != 2*tm.BusXfer+tm.Prog[0] {
		t.Errorf("bus serialization wrong: %v, %v", d1, d2)
	}
	// Chip on the other channel is fully parallel.
	d3, err := d.Program(pa(2, 0, 0, 0), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Errorf("cross-channel program not parallel: %v vs %v", d3, d1)
	}
}

func TestOutOfRange(t *testing.T) {
	d := testDevice(t)
	for _, a := range []PageAddr{pa(-1, 0, 0, 0), pa(0, 99, 0, 0), pa(0, 0, 99, 0), pa(0, 0, 0, 9)} {
		if _, err := d.Program(a, nil, nil, 0); err == nil {
			t.Errorf("program %v accepted", a)
		}
		if _, _, _, err := d.Read(a, 0); err == nil {
			t.Errorf("read %v accepted", a)
		}
	}
	if _, err := d.Erase(0, -1, 0); err == nil {
		t.Error("erase of bad block accepted")
	}
	if d.InjectPowerLoss(-1, 0) != 0 || d.BlockProgrammed(-1, 0) != 0 || d.EraseCount(9, 0) != 0 {
		t.Error("out-of-range queries not zero")
	}
}

func TestNewDeviceRejectsBadConfig(t *testing.T) {
	bad := TLCGeometry()
	bad.Levels = 0
	if _, err := NewDevice(bad, TLCTiming()); err == nil {
		t.Error("bad geometry accepted")
	}
	tm := TLCTiming()
	tm.Prog = tm.Prog[:2]
	if _, err := NewDevice(TLCGeometry(), tm); err == nil {
		t.Error("bad timing accepted")
	}
}

func TestReadIntoMatchesRead(t *testing.T) {
	d := testDevice(t)
	a := pa(0, 0, 0, 0)
	if _, err := d.Program(a, []byte("tlc zero copy"), []byte{0x7}, 0); err != nil {
		t.Fatal(err)
	}
	_, _, done1, err := d.Read(a, 0) // absorb the chip-busy wait
	if err != nil {
		t.Fatal(err)
	}
	data, spare, doneRead, err := d.Read(a, done1)
	if err != nil {
		t.Fatal(err)
	}
	var buf PageBuf
	doneInto, err := d.ReadInto(a, &buf, doneRead)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Data, data) || !bytes.Equal(buf.Spare, spare) {
		t.Error("ReadInto payload differs from Read")
	}
	if lr, li := doneRead-done1, doneInto-doneRead; li != lr {
		t.Errorf("ReadInto latency %v, Read latency %v", li, lr)
	}
	if _, err := d.ReadInto(pa(0, 0, 1, 0), &buf, doneInto); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("erased ReadInto err = %v, want ErrNotProgrammed", err)
	}
	if len(buf.Data) != 0 || len(buf.Spare) != 0 {
		t.Error("buffer not truncated after failed ReadInto")
	}
}

// TestCauseAttribution mirrors the MLC device's contract on the n-level
// device: busy time decomposes by ambient cause, SetCause nests, and
// counters mirror the array when a recorder is attached.
func TestCauseAttribution(t *testing.T) {
	d := testDevice(t)
	rec := obs.NewRecorder(obs.Options{})
	d.SetRecorder(rec)
	tm := d.Timing()

	done, err := d.Program(pa(0, 0, 0, 0), []byte("a"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := d.SetCause(obs.CauseGC)
	if prev != obs.CauseHost {
		t.Errorf("SetCause returned %v, want CauseHost", prev)
	}
	gcDone, err := d.Program(pa(0, 0, 1, 0), []byte("b"), nil, done)
	if err != nil {
		t.Fatal(err)
	}
	d.SetCause(prev)
	if d.Cause() != obs.CauseHost {
		t.Errorf("cause after restore = %v", d.Cause())
	}

	busy := d.CauseBusy()
	if want := tm.BusXfer + tm.Prog[0]; busy[obs.CauseHost] != want {
		t.Errorf("host busy = %v, want %v", busy[obs.CauseHost], want)
	}
	if want := gcDone - done; busy[obs.CauseGC] != want {
		t.Errorf("gc busy = %v, want %v", busy[obs.CauseGC], want)
	}
	snap := rec.Registry().Snapshot()
	for c := obs.CauseHost; c < obs.CauseCount; c++ {
		if got := snap.Counters[obs.BusyCounterName("nandn", c)]; got != int64(busy[c]) {
			t.Errorf("counter %s = %d, array %d", obs.BusyCounterName("nandn", c), got, busy[c])
		}
	}
	if h := snap.Histograms["nandn.program_us"]; h.Count != 2 {
		t.Errorf("nandn.program_us count = %d, want 2", h.Count)
	}
}

// TestWearStats: the erase-count spread accessor mirrors the MLC device's.
func TestWearStats(t *testing.T) {
	d := testDevice(t)
	for i := 0; i < 3; i++ {
		if _, err := d.Erase(0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Erase(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	w := d.Wear()
	if w.Min != 0 || w.Max != 3 {
		t.Errorf("wear min/max = %d/%d, want 0/3", w.Min, w.Max)
	}
	total := d.Geometry().TotalBlocks()
	wantMean := 4.0 / float64(total)
	if diff := w.Mean - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("wear mean = %v, want %v", w.Mean, wantMean)
	}
	if w.Imbalance <= 1 {
		t.Errorf("imbalance = %v, want > 1 for skewed wear", w.Imbalance)
	}
}

func TestReadIntoZeroAllocs(t *testing.T) {
	d := testDevice(t)
	a := pa(0, 0, 0, 0)
	if _, err := d.Program(a, []byte("tlc zero copy"), []byte{0x7}, 0); err != nil {
		t.Fatal(err)
	}
	var buf PageBuf
	now := sim.Time(0)
	if _, err := d.ReadInto(a, &buf, now); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		done, err := d.ReadInto(a, &buf, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	})
	if allocs != 0 {
		t.Errorf("ReadInto allocates %v times per read, want 0", allocs)
	}
}
