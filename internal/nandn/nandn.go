// Package nandn models an n-bit-per-cell NAND subsystem (TLC, QLC) the way
// internal/nand models 2-bit MLC: per-chip and per-channel busy timelines,
// per-level program latencies (each refinement is slower), enforcement of
// the generalized relaxed constraint set (internal/nlevel), payload storage
// with spare areas, and sudden-power-off corruption — an interrupted
// refinement at level i destroys all of the word line's previously stored
// bits, so every page T_0(k)..T_(i-1)(k) becomes ECC-uncorrectable.
//
// It exists to run the paper's Section 1 applicability claim ("RPS applies
// to TLC devices with a similar program scheme") as a working storage
// system, not only as a reliability study.
package nandn

import (
	"errors"
	"fmt"

	"flexftl/internal/nlevel"
	"flexftl/internal/obs"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// Sentinel errors (mirroring internal/nand).
var (
	ErrUncorrectable = errors.New("nandn: ECC-uncorrectable page")
	ErrNotProgrammed = errors.New("nandn: reading erased page")
)

// Geometry describes the physical organization.
type Geometry struct {
	Channels          int
	ChipsPerChannel   int
	BlocksPerChip     int
	WordLinesPerBlock int
	Levels            int // bits per cell
	PageSizeBytes     int
	SpareBytes        int
}

// TLCGeometry is a small 3-bit evaluation configuration.
func TLCGeometry() Geometry {
	return Geometry{
		Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 64,
		WordLinesPerBlock: 32, Levels: 3, PageSizeBytes: 4096, SpareBytes: 64,
	}
}

// Validate rejects unusable geometries.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0 || g.ChipsPerChannel <= 0 || g.BlocksPerChip <= 0:
		return fmt.Errorf("nandn: non-positive channel/chip/block counts: %+v", g)
	case g.WordLinesPerBlock <= 0:
		return fmt.Errorf("nandn: need >= 1 word line, got %d", g.WordLinesPerBlock)
	case g.Levels < 2:
		return fmt.Errorf("nandn: need >= 2 levels, got %d", g.Levels)
	case g.PageSizeBytes <= 0 || g.SpareBytes < 0:
		return fmt.Errorf("nandn: bad page/spare sizes: %+v", g)
	}
	return nil
}

// Chips returns the total die count.
func (g Geometry) Chips() int { return g.Channels * g.ChipsPerChannel }

// Scheme returns the per-block nlevel scheme.
func (g Geometry) Scheme() nlevel.Scheme {
	return nlevel.Scheme{Levels: g.Levels, WordLines: g.WordLinesPerBlock}
}

// PagesPerBlock returns Levels * WordLinesPerBlock.
func (g Geometry) PagesPerBlock() int { return g.Levels * g.WordLinesPerBlock }

// TotalBlocks returns the block count.
func (g Geometry) TotalBlocks() int { return g.Chips() * g.BlocksPerChip }

// TotalPages returns the physical page count.
func (g Geometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock() }

// ChannelOf maps a chip to its bus.
func (g Geometry) ChannelOf(chip int) int { return chip / g.ChipsPerChannel }

// String summarizes the geometry.
func (g Geometry) String() string {
	return fmt.Sprintf("%dch x %dchips, %d blocks/chip, %d WL x %d bits (%d pages/block)",
		g.Channels, g.ChipsPerChannel, g.BlocksPerChip, g.WordLinesPerBlock, g.Levels, g.PagesPerBlock())
}

// Timing holds per-level program latencies plus read/erase/transfer.
type Timing struct {
	Read    sim.Time
	Prog    []sim.Time // per level, coarsest first; must be nondecreasing
	Erase   sim.Time
	BusXfer sim.Time
}

// TLCTiming returns plausible 3-bit latencies: refinements get slower as
// placement gets finer (the same asymmetry Figure 1 shows for MLC, one level
// deeper).
func TLCTiming() Timing {
	return Timing{
		Read:    60 * sim.Microsecond,
		Prog:    []sim.Time{400 * sim.Microsecond, 1100 * sim.Microsecond, 3000 * sim.Microsecond},
		Erase:   6 * sim.Millisecond,
		BusXfer: 10 * sim.Microsecond,
	}
}

// Validate rejects inconsistent timings for the given level count.
func (t Timing) Validate(levels int) error {
	if len(t.Prog) != levels {
		return fmt.Errorf("nandn: %d program latencies for %d levels", len(t.Prog), levels)
	}
	if t.Read <= 0 || t.Erase <= 0 || t.BusXfer < 0 {
		return fmt.Errorf("nandn: non-positive base latencies: %+v", t)
	}
	for i, p := range t.Prog {
		if p <= 0 {
			return fmt.Errorf("nandn: non-positive program latency at level %d", i)
		}
		if i > 0 && p < t.Prog[i-1] {
			return fmt.Errorf("nandn: level %d faster than level %d contradicts refinement asymmetry", i, i-1)
		}
	}
	return nil
}

// PageAddr identifies a physical page.
type PageAddr struct {
	Chip  int
	Block int
	Page  nlevel.Page
}

// String formats the address.
func (a PageAddr) String() string {
	return fmt.Sprintf("chip%d/blk%d/%v", a.Chip, a.Block, a.Page)
}

type page struct {
	programmed bool
	corrupted  bool
	data       []byte
	spare      []byte
	// progAt is the retention clock zero (maintained when the reliability
	// model is on).
	progAt sim.Time
}

type block struct {
	state      *nlevel.State
	pages      []page
	eraseCount int
	// inFlight marks an unacknowledged refinement: level and word line.
	inFlightLevel int // -1 when none
	inFlightWL    int
	// readCount is the read-disturb counter (reads since last erase;
	// maintained when the reliability model is on).
	readCount uint64
}

type chip struct {
	blocks  []block
	readyAt sim.Time
}

// Device is the n-level NAND subsystem. Single-threaded over virtual time.
type Device struct {
	geo      Geometry
	timing   Timing
	enforce  bool // enforce the relaxed constraint set (always on; field kept for clarity)
	chips    []chip
	chanFree []sim.Time
	reads    []int64   // per chip
	programs [][]int64 // per chip, per level
	erases   []int64   // per chip

	// cause is the ambient attribution register (see nand.Device.SetCause),
	// kept per chip like the MLC device so channel shards never share a
	// register: the FTL brackets its GC/backup paths with SetCause (all
	// chips) or SetCauseChip (one chip), and every operation charges its busy
	// time to the cause in force on its chip. Pure accounting on the virtual
	// timeline; never changes timing.
	cause     []obs.Cause
	causeBusy [][obs.CauseCount]sim.Time

	// Reliability model (nil when off); relCounts is per chip.
	relCfg    *rel.Config
	relCounts []rel.Counts

	// Observability (nil when tracing is disabled).
	rec       *obs.Recorder
	histProg  *obs.Histogram
	histRead  *obs.Histogram
	histErase *obs.Histogram
	causeCtr  [obs.CauseCount]*obs.Counter
}

// NewDevice builds a device enforcing the generalized relaxed rules.
func NewDevice(g Geometry, t Timing) (*Device, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(g.Levels); err != nil {
		return nil, err
	}
	d := &Device{
		geo:       g,
		timing:    t,
		enforce:   true,
		chips:     make([]chip, g.Chips()),
		chanFree:  make([]sim.Time, g.Channels),
		reads:     make([]int64, g.Chips()),
		programs:  make([][]int64, g.Chips()),
		erases:    make([]int64, g.Chips()),
		cause:     make([]obs.Cause, g.Chips()),
		causeBusy: make([][obs.CauseCount]sim.Time, g.Chips()),
	}
	for c := range d.programs {
		d.programs[c] = make([]int64, g.Levels)
	}
	for c := range d.chips {
		blocks := make([]block, g.BlocksPerChip)
		for b := range blocks {
			blocks[b] = block{
				state:         nlevel.NewState(g.Scheme()),
				pages:         make([]page, g.PagesPerBlock()),
				inFlightLevel: -1,
			}
		}
		d.chips[c].blocks = blocks
	}
	return d, nil
}

// SetRecorder attaches an observability recorder: service-time histograms
// and per-cause busy counters in the recorder's registry. A nil recorder
// disables emission. The recorder only observes — timing and results are
// unchanged.
func (d *Device) SetRecorder(r *obs.Recorder) {
	d.rec = r
	reg := r.Registry()
	d.histProg = reg.Histogram("nandn.program_us")
	d.histRead = reg.Histogram("nandn.read_us")
	d.histErase = reg.Histogram("nandn.erase_us")
	for c := obs.Cause(0); c < obs.CauseCount; c++ {
		d.causeCtr[c] = reg.Counter(obs.BusyCounterName("nandn", c))
	}
}

// SetCause switches the ambient attribution cause on every chip and returns
// the previous one (save/restore discipline; see nand.Device.SetCause).
func (d *Device) SetCause(c obs.Cause) obs.Cause {
	prev := d.cause[0]
	for i := range d.cause {
		d.cause[i] = c
	}
	return prev
}

// SetCauseChip switches one chip's attribution cause, returning that chip's
// previous cause (the bracket for chip-scoped paths; see
// nand.Device.SetCauseChip).
func (d *Device) SetCauseChip(chipID int, c obs.Cause) obs.Cause {
	prev := d.cause[chipID]
	d.cause[chipID] = c
	return prev
}

// Cause returns the ambient attribution cause in force (chip 0's register;
// outside chip-scoped brackets all chips agree).
func (d *Device) Cause() obs.Cause { return d.cause[0] }

// CauseBusy returns the accumulated media busy time charged to each cause,
// summed over chips in chip order.
func (d *Device) CauseBusy() [obs.CauseCount]sim.Time {
	var total [obs.CauseCount]sim.Time
	for chip := range d.causeBusy {
		for c := range d.causeBusy[chip] {
			total[c] += d.causeBusy[chip][c]
		}
	}
	return total
}

// chargeBusy attributes one operation's busy time to the chip's ambient
// cause.
func (d *Device) chargeBusy(chipID int, dur sim.Time) {
	d.chargeBusyCause(chipID, d.cause[chipID], dur)
}

// chargeBusyCause attributes busy time to an explicit cause (the device's
// own retry latency is read_retry regardless of the issuing path).
func (d *Device) chargeBusyCause(chipID int, cause obs.Cause, dur sim.Time) {
	d.causeBusy[chipID][cause] += dur
	if d.rec != nil {
		d.causeCtr[cause].Add(int64(dur))
	}
}

// SetReliability enables (or, with nil, disables) the per-page BER model:
// reads of programmed pages get deterministic ECC outcomes with read-retry
// latency, exactly as on the MLC device. Pair the config's model with
// rel.DeriveNLevelModel at the device's bits-per-cell density.
func (d *Device) SetReliability(rc *rel.Config) error {
	if rc == nil {
		d.relCfg, d.relCounts = nil, nil
		return nil
	}
	if err := rc.Validate(); err != nil {
		return err
	}
	d.relCfg = rc
	d.relCounts = make([]rel.Counts, d.geo.Chips())
	return nil
}

// Reliability returns the active reliability configuration (nil when off).
func (d *Device) Reliability() *rel.Config { return d.relCfg }

// RelCounts returns aggregated reliability read outcomes, summed over chips
// in chip order. Zero value when the model is off.
func (d *Device) RelCounts() rel.Counts {
	var total rel.Counts
	for i := range d.relCounts {
		total.Add(d.relCounts[i])
	}
	return total
}

// Geometry returns the device shape.
func (d *Device) Geometry() Geometry { return d.geo }

// Timing returns the latency set.
func (d *Device) Timing() Timing { return d.timing }

// Programs returns per-level program counts, summed over chips.
func (d *Device) Programs() []int64 {
	total := make([]int64, d.geo.Levels)
	for c := range d.programs {
		for lvl, n := range d.programs[c] {
			total[lvl] += n
		}
	}
	return total
}

// Erases returns the erase count, summed over chips.
func (d *Device) Erases() int64 {
	var total int64
	for _, n := range d.erases {
		total += n
	}
	return total
}

// Reads returns the read count, summed over chips.
func (d *Device) Reads() int64 {
	var total int64
	for _, n := range d.reads {
		total += n
	}
	return total
}

func (d *Device) blockAt(chipID, blk int) (*block, error) {
	if chipID < 0 || chipID >= d.geo.Chips() || blk < 0 || blk >= d.geo.BlocksPerChip {
		return nil, fmt.Errorf("nandn: block chip%d/blk%d out of range", chipID, blk)
	}
	return &d.chips[chipID].blocks[blk], nil
}

func (d *Device) pageAt(a PageAddr) (*block, *page, error) {
	blk, err := d.blockAt(a.Chip, a.Block)
	if err != nil {
		return nil, nil, err
	}
	s := d.geo.Scheme()
	if a.Page.WL < 0 || a.Page.WL >= s.WordLines || a.Page.Level < 0 || a.Page.Level >= s.Levels {
		return nil, nil, fmt.Errorf("nandn: page %v out of range", a.Page)
	}
	return blk, &blk.pages[s.Index(a.Page)], nil
}

// Program writes a page, enforcing the generalized relaxed order, and
// returns the completion time. An in-flight refinement is recorded for
// power-loss injection until AckProgram.
func (d *Device) Program(a PageAddr, data, spare []byte, now sim.Time) (sim.Time, error) {
	blk, pg, err := d.pageAt(a)
	if err != nil {
		return now, err
	}
	if err := nlevel.CheckRelaxed(blk.state, a.Page); err != nil {
		return now, err
	}
	if len(data) > d.geo.PageSizeBytes || len(spare) > d.geo.SpareBytes {
		return now, fmt.Errorf("nandn: payload/spare too large for %v", a)
	}
	ch := d.geo.ChannelOf(a.Chip)
	c := &d.chips[a.Chip]
	start := sim.MaxOf(now, sim.MaxOf(c.readyAt, d.chanFree[ch]))
	xferDone := start + d.timing.BusXfer
	done := xferDone + d.timing.Prog[a.Page.Level]
	d.chanFree[ch] = xferDone
	c.readyAt = done
	d.chargeBusy(a.Chip, done-start)
	if d.rec != nil {
		d.histProg.Record(int64(done - start))
	}

	blk.state.Mark(a.Page)
	pg.programmed = true
	pg.corrupted = false
	pg.data = append(pg.data[:0], data...)
	pg.spare = append(pg.spare[:0], spare...)
	if d.relCfg != nil {
		pg.progAt = done
	}
	d.programs[a.Chip][a.Page.Level]++

	if a.Page.Level > 0 {
		// Refinements are destructive to the word line's earlier bits
		// while in flight.
		blk.inFlightLevel = a.Page.Level
		blk.inFlightWL = a.Page.WL
	} else {
		blk.inFlightLevel = -1
	}
	return done, nil
}

// AckProgram marks the block's in-flight refinement power-safe.
func (d *Device) AckProgram(chipID, blk int) {
	if b, err := d.blockAt(chipID, blk); err == nil {
		b.inFlightLevel = -1
	}
}

// readPage performs the timing and validity checks shared by Read and
// ReadInto, returning the sensed page.
func (d *Device) readPage(a PageAddr, now sim.Time) (*page, sim.Time, error) {
	blk, pg, err := d.pageAt(a)
	if err != nil {
		return nil, now, err
	}
	ch := d.geo.ChannelOf(a.Chip)
	c := &d.chips[a.Chip]
	start := sim.MaxOf(now, c.readyAt)
	// Reliability outcome before timing commits, so retry rounds extend the
	// sense phase (see nand.Device.readPage).
	var outcome rel.Outcome
	if rc := d.relCfg; rc != nil && pg.programmed && !pg.corrupted {
		blk.readCount++
		age := start - pg.progAt
		if age < 0 {
			age = 0
		}
		ber := rc.Model.BER(blk.eraseCount, age, blk.readCount)
		u := rc.Sample(a.Chip, a.Block, d.geo.Scheme().Index(a.Page), blk.readCount)
		outcome = rc.ReadOutcome(ber, d.geo.PageSizeBytes, u)
		rcs := &d.relCounts[a.Chip]
		rcs.Reads++
		if outcome.Corrected {
			rcs.Corrected++
		}
		if outcome.Retries > 0 {
			rcs.RetriedReads++
			rcs.RetryRounds += int64(outcome.Retries)
		}
		if outcome.Uncorrectable {
			rcs.Uncorrectable++
		}
	}
	retryDur := sim.Time(outcome.Retries) * d.timing.Read
	senseDone := start + d.timing.Read + retryDur
	xferStart := sim.MaxOf(senseDone, d.chanFree[ch])
	done := xferStart + d.timing.BusXfer
	d.chanFree[ch] = done
	c.readyAt = done
	d.chargeBusy(a.Chip, done-start-retryDur)
	if retryDur > 0 {
		d.chargeBusyCause(a.Chip, obs.CauseReadRetry, retryDur)
	}
	d.reads[a.Chip]++
	if d.rec != nil {
		d.histRead.Record(int64(done - start))
	}
	if !pg.programmed {
		return nil, done, fmt.Errorf("%w: %v", ErrNotProgrammed, a)
	}
	if pg.corrupted {
		return nil, done, fmt.Errorf("%w: %v", ErrUncorrectable, a)
	}
	if outcome.Uncorrectable {
		return nil, done, fmt.Errorf("%w: %v", rel.ErrUncorrectable, a)
	}
	return pg, done, nil
}

// Read returns the page payload/spare and completion time.
func (d *Device) Read(a PageAddr, now sim.Time) (data, spare []byte, done sim.Time, err error) {
	pg, done, err := d.readPage(a, now)
	if err != nil {
		return nil, nil, done, err
	}
	return append([]byte(nil), pg.data...), append([]byte(nil), pg.spare...), done, nil
}

// PageBuf is a caller-owned destination for ReadInto; its backing arrays
// are reused across reads, so steady-state reads allocate nothing.
type PageBuf struct {
	Data, Spare []byte
}

// ReadInto is the zero-copy variant of Read: payload and spare land in
// buf's reusable backing arrays. Timing, counters and error behaviour
// match Read; on error buf's slices are truncated to zero length.
func (d *Device) ReadInto(a PageAddr, buf *PageBuf, now sim.Time) (done sim.Time, err error) {
	pg, done, err := d.readPage(a, now)
	if err != nil {
		buf.Data, buf.Spare = buf.Data[:0], buf.Spare[:0]
		return done, err
	}
	buf.Data = append(buf.Data[:0], pg.data...)
	buf.Spare = append(buf.Spare[:0], pg.spare...)
	return done, nil
}

// Erase resets a block.
func (d *Device) Erase(chipID, blk int, now sim.Time) (sim.Time, error) {
	b, err := d.blockAt(chipID, blk)
	if err != nil {
		return now, err
	}
	c := &d.chips[chipID]
	start := sim.MaxOf(now, c.readyAt)
	done := start + d.timing.Erase
	c.readyAt = done
	d.chargeBusy(chipID, done-start)
	if d.rec != nil {
		d.histErase.Record(int64(done - start))
	}
	b.state.Reset()
	for i := range b.pages {
		b.pages[i] = page{}
	}
	b.eraseCount++
	b.readCount = 0
	b.inFlightLevel = -1
	d.erases[chipID]++
	return done, nil
}

// InjectPowerLoss simulates a power cut at the block: an in-flight
// refinement at level i destroys pages T_0(k)..T_(i-1)(k) of its word line
// and leaves the interrupted page itself uncorrectable. It reports how many
// pages were corrupted.
func (d *Device) InjectPowerLoss(chipID, blk int) int {
	b, err := d.blockAt(chipID, blk)
	if err != nil || b.inFlightLevel < 1 {
		return 0
	}
	s := d.geo.Scheme()
	n := 0
	for lvl := 0; lvl <= b.inFlightLevel; lvl++ {
		pg := &b.pages[s.Index(nlevel.Page{WL: b.inFlightWL, Level: lvl})]
		if pg.programmed && !pg.corrupted {
			pg.corrupted = true
			n++
		}
	}
	b.inFlightLevel = -1
	return n
}

// BlockProgrammed returns how many pages of the block are programmed.
func (d *Device) BlockProgrammed(chipID, blk int) int {
	b, err := d.blockAt(chipID, blk)
	if err != nil {
		return 0
	}
	return b.state.Programmed()
}

// EraseCount returns a block's wear.
func (d *Device) EraseCount(chipID, blk int) int {
	b, err := d.blockAt(chipID, blk)
	if err != nil {
		return 0
	}
	return b.eraseCount
}

// WearStats summarizes per-block erase counts (mirror of nand.WearStats).
type WearStats struct {
	Min, Max int
	Mean     float64
	// Imbalance is Max/Mean (1.0 = perfectly even wear); 0 when unworn.
	Imbalance float64
}

// Wear computes erase-count statistics over all blocks.
func (d *Device) Wear() WearStats {
	var st WearStats
	first := true
	total := 0
	n := 0
	for c := range d.chips {
		for b := range d.chips[c].blocks {
			e := d.chips[c].blocks[b].eraseCount
			if first {
				st.Min, st.Max = e, e
				first = false
			} else if e < st.Min {
				st.Min = e
			} else if e > st.Max {
				st.Max = e
			}
			total += e
			n++
		}
	}
	if n > 0 {
		st.Mean = float64(total) / float64(n)
	}
	if st.Mean > 0 {
		st.Imbalance = float64(st.Max) / st.Mean
	}
	return st
}
