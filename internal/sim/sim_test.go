package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0us"},
		{999, "999us"},
		{Millisecond, "1.000ms"},
		{1500, "1.500ms"},
		{Second, "1.000000s"},
		{2*Second + 500*Millisecond, "2.500000s"},
		{-250, "-250us"},
		{MaxTime, "+inf"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3.0 {
		t.Errorf("Millis() = %v, want 3", got)
	}
}

func TestMaxMinOf(t *testing.T) {
	if MaxOf(3, 7) != 7 || MaxOf(7, 3) != 7 {
		t.Error("MaxOf wrong")
	}
	if MinOf(3, 7) != 3 || MinOf(7, 3) != 3 {
		t.Error("MinOf wrong")
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func(Time) { got = append(got, 3) })
	q.At(10, func(Time) { got = append(got, 1) })
	q.At(20, func(Time) { got = append(got, 2) })
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("dispatch order = %v, want [1 2 3]", got)
	}
	if q.Now() != 30 {
		t.Errorf("Now() = %v, want 30", q.Now())
	}
}

func TestQueueFIFOAtSameTime(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func(Time) { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events dispatched out of order: %v", got)
		}
	}
}

func TestQueueNestedScheduling(t *testing.T) {
	var q Queue
	var fired []Time
	q.At(10, func(now Time) {
		fired = append(fired, now)
		q.After(5, func(now Time) { fired = append(fired, now) })
	})
	q.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestQueuePastSchedulePanics(t *testing.T) {
	var q Queue
	q.At(10, func(Time) {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	q.At(5, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		q.At(at, func(now Time) { fired = append(fired, now) })
	}
	q.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12) fired %d events, want 2", len(fired))
	}
	if q.Now() != 12 {
		t.Errorf("Now() = %v, want 12", q.Now())
	}
	if at, ok := q.PeekTime(); !ok || at != 15 {
		t.Errorf("PeekTime() = %v,%v, want 15,true", at, ok)
	}
	q.RunUntil(100)
	if len(fired) != 4 || q.Now() != 100 {
		t.Errorf("after RunUntil(100): fired=%d now=%v", len(fired), q.Now())
	}
}

func TestQueueEmptyStep(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Error("Step on empty queue returned true")
	}
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty queue returned ok")
	}
}

// Property: for any set of scheduled times, dispatch order is sorted and
// stable within equal times.
func TestQueueDispatchSortedProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		type stamp struct {
			at  Time
			seq int
		}
		var got []stamp
		for i, raw := range times {
			at := Time(raw)
			i := i
			q.At(at, func(now Time) { got = append(got, stamp{now, i}) })
		}
		q.Run()
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
