package sim

import "container/heap"

// Event is a callback scheduled at a virtual time. Events that share the same
// time fire in the order they were scheduled, which keeps the simulator
// deterministic regardless of heap internals.
type Event struct {
	At  Time
	Fn  func(now Time)
	seq uint64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Queue is a deterministic discrete-event queue driving a virtual clock.
// The zero value is ready to use.
type Queue struct {
	heap eventHeap
	now  Time
	seq  uint64
}

// Now returns the current virtual time (the time of the most recently
// dispatched event).
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// At schedules fn to run at time t. Scheduling in the past is a programming
// error and panics: it would silently reorder causality.
func (q *Queue) At(t Time, fn func(now Time)) {
	if t < q.now {
		panic("sim: event scheduled in the past")
	}
	q.seq++
	heap.Push(&q.heap, &Event{At: t, Fn: fn, seq: q.seq})
}

// After schedules fn to run d after the current virtual time.
func (q *Queue) After(d Time, fn func(now Time)) { q.At(q.now+d, fn) }

// Step dispatches the earliest pending event, advancing the clock to its
// time. It reports whether an event was dispatched.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	ev := heap.Pop(&q.heap).(*Event)
	q.now = ev.At
	ev.Fn(q.now)
	return true
}

// Run dispatches events until the queue drains.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// RunUntil dispatches events with At <= deadline, then advances the clock to
// the deadline (if it is later than the last event).
func (q *Queue) RunUntil(deadline Time) {
	for len(q.heap) > 0 && q.heap[0].At <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// PeekTime returns the time of the earliest pending event and true, or zero
// and false when the queue is empty.
func (q *Queue) PeekTime() (Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].At, true
}
