// Package sim provides the deterministic virtual-time substrate used by the
// NAND device model, the FTLs and the storage-system runner. All simulated
// latencies are expressed in microseconds of virtual time; nothing in the
// simulator reads the wall clock, so runs are bit-reproducible.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in microseconds since the start of the
// simulation. Durations are also expressed as Time values.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is used as an
// "infinitely far away" horizon for idle windows.
const MaxTime Time = math.MaxInt64

// String formats the time with an adaptive unit so that simulator logs stay
// readable across nine orders of magnitude.
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "+inf"
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Millisecond:
		return fmt.Sprintf("%dus", int64(t))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// MaxOf returns the later of two times.
func MaxOf(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinOf returns the earlier of two times.
func MinOf(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
