package ecc

import (
	"math"
	"testing"
)

func TestDefaultCode(t *testing.T) {
	c := Default40BitPer1K()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Correctable(0) || !c.Correctable(40) {
		t.Error("in-budget error counts rejected")
	}
	if c.Correctable(41) || c.Correctable(-1) {
		t.Error("out-of-budget error counts accepted")
	}
}

func TestValidate(t *testing.T) {
	bad := []Code{
		{CodewordBits: 0, CorrectableBits: 1},
		{CodewordBits: 10, CorrectableBits: -1},
		{CodewordBits: 10, CorrectableBits: 10},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid code accepted: %+v", c)
		}
	}
}

func TestCodewordsPerPage(t *testing.T) {
	c := Default40BitPer1K()
	if got := c.CodewordsPerPage(4096); got != 4 {
		t.Errorf("4KB page covers %d codewords, want 4", got)
	}
	if got := c.CodewordsPerPage(1025); got != 2 {
		t.Errorf("1025B page covers %d codewords, want 2 (round up)", got)
	}
}

func TestPageFailureProbEdges(t *testing.T) {
	c := Default40BitPer1K()
	if got := c.PageFailureProb(0, 4096); got != 0 {
		t.Errorf("BER 0 fails with prob %g", got)
	}
	if got := c.PageFailureProb(1, 4096); got != 1 {
		t.Errorf("BER 1 fails with prob %g", got)
	}
}

func TestPageFailureProbMonotone(t *testing.T) {
	c := Default40BitPer1K()
	prev := -1.0
	for _, ber := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		p := c.PageFailureProb(ber, 4096)
		if p < prev-1e-12 { // tolerate float underflow noise near 0
			t.Errorf("failure prob not monotone at BER %g: %g < %g", ber, p, prev)
		}
		if p < 0 || p > 1 {
			t.Errorf("failure prob %g out of [0,1]", p)
		}
		prev = p
	}
}

func TestPageFailureProbRegimes(t *testing.T) {
	c := Default40BitPer1K()
	// Well inside the correction budget: 8192 bits x 1e-4 = 0.8 expected
	// errors vs 40 correctable — failure must be negligible.
	if p := c.PageFailureProb(1e-4, 4096); p > 1e-12 {
		t.Errorf("BER 1e-4 fails with prob %g, want ~0", p)
	}
	// Far beyond the budget: 8192 x 2e-2 = 164 expected errors.
	if p := c.PageFailureProb(2e-2, 4096); p < 0.999 {
		t.Errorf("BER 2e-2 fails with prob %g, want ~1", p)
	}
	// Around the knee (expected errors == T) failure is order 0.5.
	knee := 40.0 / 8192.0
	if p := c.PageFailureProb(knee, 1024); p < 0.2 || p > 0.8 {
		t.Errorf("knee failure prob = %g, want mid-range", p)
	}
}

func TestStrongerCodeFailsLess(t *testing.T) {
	weak := Code{CodewordBits: 8192, CorrectableBits: 10}
	strong := Code{CodewordBits: 8192, CorrectableBits: 60}
	ber := 2e-3
	pw := weak.PageFailureProb(ber, 4096)
	ps := strong.PageFailureProb(ber, 4096)
	if ps >= pw {
		t.Errorf("stronger code fails more: weak %g, strong %g", pw, ps)
	}
}

func TestCodewordOKProbNumericalStability(t *testing.T) {
	c := Default40BitPer1K()
	for _, ber := range []float64{1e-9, 1e-7, 1e-5} {
		p := c.PageFailureProb(ber, 4096)
		if math.IsNaN(p) || p < 0 {
			t.Errorf("BER %g produced unstable prob %g", ber, p)
		}
	}
}
