// Package ecc models the error-correction envelope of the storage
// controller: a BCH-like code corrects up to T bit errors per codeword;
// beyond that the page read is uncorrectable. The reliability experiments
// use it to translate the vth model's raw bit error rates into page-failure
// probabilities, closing the loop between Figure 4(b) and the FTL-level
// uncorrectable-read behaviour the backup schemes defend against.
package ecc

import (
	"fmt"
	"math"
)

// Code describes an ECC configuration.
type Code struct {
	// CodewordBits is the protected payload size per codeword.
	CodewordBits int
	// CorrectableBits is T, the maximum number of correctable bit errors
	// per codeword.
	CorrectableBits int
}

// Default40BitPer1K mirrors a typical 2X-nm MLC requirement: 40 bits
// correctable per 1KB codeword.
func Default40BitPer1K() Code {
	return Code{CodewordBits: 8192, CorrectableBits: 40}
}

// Validate rejects degenerate configurations.
func (c Code) Validate() error {
	if c.CodewordBits <= 0 {
		return fmt.Errorf("ecc: codeword must have positive size, got %d", c.CodewordBits)
	}
	if c.CorrectableBits < 0 || c.CorrectableBits >= c.CodewordBits {
		return fmt.Errorf("ecc: correctable bits %d outside [0,%d)", c.CorrectableBits, c.CodewordBits)
	}
	return nil
}

// Correctable reports whether a codeword with the given number of bit
// errors is recoverable.
func (c Code) Correctable(bitErrors int) bool {
	return bitErrors >= 0 && bitErrors <= c.CorrectableBits
}

// CodewordsPerPage returns how many codewords cover a page of the given
// byte size (rounding up).
func (c Code) CodewordsPerPage(pageBytes int) int {
	bits := pageBytes * 8
	return (bits + c.CodewordBits - 1) / c.CodewordBits
}

// PageFailureProb returns the probability that a page of the given size is
// uncorrectable when each bit flips independently with probability ber.
// Computed as 1 - P(codeword ok)^codewords with a numerically careful
// binomial tail.
func (c Code) PageFailureProb(ber float64, pageBytes int) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	cwOK := c.codewordOKProb(ber)
	n := c.CodewordsPerPage(pageBytes)
	return 1 - math.Pow(cwOK, float64(n))
}

// codewordOKProb computes P(errors <= T) for Binomial(CodewordBits, ber),
// summing log-space terms to avoid underflow at realistic BERs.
func (c Code) codewordOKProb(ber float64) float64 {
	n := c.CodewordBits
	logP := math.Log(ber)
	logQ := math.Log1p(-ber)
	// Accumulate terms of the binomial pmf from k=0..T.
	total := 0.0
	logChoose := 0.0 // log C(n,0)
	for k := 0; k <= c.CorrectableBits; k++ {
		if k > 0 {
			logChoose += math.Log(float64(n-k+1)) - math.Log(float64(k))
		}
		total += math.Exp(logChoose + float64(k)*logP + float64(n-k)*logQ)
	}
	if total > 1 {
		total = 1
	}
	return total
}
