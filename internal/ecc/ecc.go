// Package ecc models the error-correction envelope of the storage
// controller: a BCH-like code corrects up to T bit errors per codeword;
// beyond that the page read is uncorrectable. The reliability experiments
// use it to translate the vth model's raw bit error rates into page-failure
// probabilities, closing the loop between Figure 4(b) and the FTL-level
// uncorrectable-read behaviour the backup schemes defend against.
package ecc

import (
	"fmt"
	"math"
)

// Code describes an ECC configuration.
type Code struct {
	// CodewordBits is the protected payload size per codeword.
	CodewordBits int
	// CorrectableBits is T, the maximum number of correctable bit errors
	// per codeword.
	CorrectableBits int
}

// Default40BitPer1K mirrors a typical 2X-nm MLC requirement: 40 bits
// correctable per 1KB codeword.
func Default40BitPer1K() Code {
	return Code{CodewordBits: 8192, CorrectableBits: 40}
}

// Validate rejects degenerate configurations.
func (c Code) Validate() error {
	if c.CodewordBits <= 0 {
		return fmt.Errorf("ecc: codeword must have positive size, got %d", c.CodewordBits)
	}
	if c.CorrectableBits < 0 || c.CorrectableBits >= c.CodewordBits {
		return fmt.Errorf("ecc: correctable bits %d outside [0,%d)", c.CorrectableBits, c.CodewordBits)
	}
	return nil
}

// Correctable reports whether a codeword with the given number of bit
// errors is recoverable.
func (c Code) Correctable(bitErrors int) bool {
	return bitErrors >= 0 && bitErrors <= c.CorrectableBits
}

// CodewordsPerPage returns how many codewords cover a page of the given
// byte size (rounding up).
func (c Code) CodewordsPerPage(pageBytes int) int {
	bits := pageBytes * 8
	return (bits + c.CodewordBits - 1) / c.CodewordBits
}

// PageFailureProb returns the probability that a page of the given size is
// uncorrectable when each bit flips independently with probability ber.
// The per-codeword failure tail is combined across the page's codewords as
// 1 - (1-cwFail)^n via -expm1(n*log1p(-cwFail)), which keeps full relative
// precision at realistic low BERs where cwFail is 1e-25..1e-6 and the naive
// 1 - Pow(cwOK, n) collapses to exactly 0.
func (c Code) PageFailureProb(ber float64, pageBytes int) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	n := c.CodewordsPerPage(pageBytes)
	if n <= 0 {
		return 0
	}
	cwFail := c.CodewordFailureProb(ber)
	if cwFail <= 0 {
		return 0
	}
	if cwFail >= 1 {
		return 1
	}
	return -math.Expm1(float64(n) * math.Log1p(-cwFail))
}

// CodewordFailureProb computes P(errors > T) for Binomial(CodewordBits, ber):
// the probability one codeword exceeds the correction budget. Whichever
// binomial tail is the small one is summed directly (the other would lose it
// to cancellation against 1), so the result keeps full relative precision on
// both sides of the knee.
func (c Code) CodewordFailureProb(ber float64) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	n, t := c.CodewordBits, c.CorrectableBits
	if t >= n {
		return 0
	}
	// The pmf peaks at floor((n+1)p); above it terms decrease toward k=n,
	// below it they decrease toward k=0, so each tail sum starting at T+1
	// (resp. T) converges monotonically from its first term.
	mode := int(float64(n+1) * ber)
	if t+1 > mode {
		return binomUpperTail(n, ber, t+1)
	}
	return 1 - binomLowerTail(n, ber, t)
}

// codewordOKProb is P(errors <= T), the complement of the failure tail.
func (c Code) codewordOKProb(ber float64) float64 {
	return 1 - c.CodewordFailureProb(ber)
}

// logChoose returns log C(n,k) via lgamma, avoiding the accumulated error of
// an incremental product walk when k runs into the thousands.
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	d, _ := math.Lgamma(float64(n - k + 1))
	return a - b - d
}

// binomUpperTail sums P(X >= k0) for X ~ Binomial(n, p), valid when k0 is at
// or above the pmf mode so successive terms decrease. The first term is
// computed in log space; the rest accumulate through the pmf ratio
// recurrence relative to it, so underflow only occurs when the whole tail is
// below the smallest positive float.
func binomUpperTail(n int, p float64, k0 int) float64 {
	if k0 > n {
		return 0
	}
	if k0 <= 0 {
		return 1
	}
	logFirst := logChoose(n, k0) + float64(k0)*math.Log(p) + float64(n-k0)*math.Log1p(-p)
	ratio := p / (1 - p)
	rel, sum := 1.0, 1.0
	for k := k0; k < n; k++ {
		rel *= float64(n-k) / float64(k+1) * ratio
		sum += rel
		if rel < sum*1e-18 {
			break
		}
	}
	v := math.Exp(logFirst + math.Log(sum))
	if v > 1 {
		v = 1
	}
	return v
}

// binomLowerTail sums P(X <= k0) for X ~ Binomial(n, p), valid when k0 is at
// or below the pmf mode so terms decrease toward k=0.
func binomLowerTail(n int, p float64, k0 int) float64 {
	if k0 < 0 {
		return 0
	}
	if k0 >= n {
		return 1
	}
	logFirst := logChoose(n, k0) + float64(k0)*math.Log(p) + float64(n-k0)*math.Log1p(-p)
	ratio := (1 - p) / p
	rel, sum := 1.0, 1.0
	for k := k0; k > 0; k-- {
		rel *= float64(k) / float64(n-k+1) * ratio
		sum += rel
		if rel < sum*1e-18 {
			break
		}
	}
	v := math.Exp(logFirst + math.Log(sum))
	if v > 1 {
		v = 1
	}
	return v
}
