package ecc

import (
	"math"
	"math/big"
	"testing"
)

const refPrec = 1200

// bigPow raises x to a non-negative integer power by squaring at refPrec.
func bigPow(x *big.Float, k int) *big.Float {
	r := new(big.Float).SetPrec(refPrec).SetInt64(1)
	base := new(big.Float).SetPrec(refPrec).Set(x)
	for k > 0 {
		if k&1 == 1 {
			r.Mul(r, base)
		}
		base.Mul(base, base)
		k >>= 1
	}
	return r
}

// refPageFailureProb is the big.Float reference: the exact binomial OK mass
// summed with 1200-bit arithmetic, raised to the page's codeword count and
// complemented. The complement 1 - cwOK^n inherits the sum's rounding noise,
// so the reference floor is ~1e-360 — far below any tail float64 can carry.
func refPageFailureProb(c Code, ber float64, pageBytes int) float64 {
	p := new(big.Float).SetPrec(refPrec).SetFloat64(ber)
	q := new(big.Float).SetPrec(refPrec).SetInt64(1)
	q.Sub(q, p)
	n := c.CodewordBits
	cwOK := new(big.Float).SetPrec(refPrec)
	choose := big.NewInt(1)
	for k := 0; k <= c.CorrectableBits; k++ {
		if k > 0 {
			choose.Mul(choose, big.NewInt(int64(n-k+1)))
			choose.Quo(choose, big.NewInt(int64(k)))
		}
		term := new(big.Float).SetPrec(refPrec).SetInt(choose)
		term.Mul(term, bigPow(p, k))
		term.Mul(term, bigPow(q, n-k))
		cwOK.Add(cwOK, term)
	}
	page := bigPow(cwOK, c.CodewordsPerPage(pageBytes))
	one := new(big.Float).SetPrec(refPrec).SetInt64(1)
	one.Sub(one, page)
	v, _ := one.Float64()
	return v
}

// oldPageFailureProb reproduces the pre-fix implementation: P(codeword ok)
// summed k=0..T with an incremental logChoose walk, combined across the page
// as 1 - Pow(cwOK, n). It collapses to exactly 0 once cwFail*n drops below
// float64 epsilon — the bug the regression test below pins.
func oldPageFailureProb(c Code, ber float64, pageBytes int) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	n := c.CodewordBits
	logP := math.Log(ber)
	logQ := math.Log1p(-ber)
	total := 0.0
	lc := 0.0
	for k := 0; k <= c.CorrectableBits; k++ {
		if k > 0 {
			lc += math.Log(float64(n-k+1)) - math.Log(float64(k))
		}
		total += math.Exp(lc + float64(k)*logP + float64(n-k)*logQ)
	}
	if total > 1 {
		total = 1
	}
	return 1 - math.Pow(total, float64(c.CodewordsPerPage(pageBytes)))
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestPageFailureProbLowBERRegression pins low-BER page failure against the
// big.Float reference. The old 1 - Pow implementation fails this test: at
// BER 5e-4 the true failure (~4e-25) rounds to exactly 0, and at 1e-3 the
// surviving value keeps only ~2 decimal digits.
func TestPageFailureProbLowBERRegression(t *testing.T) {
	c := Default40BitPer1K()
	const page = 4096
	for _, ber := range []float64{2e-4, 5e-4, 1e-3, 2e-3, 4e-3} {
		want := refPageFailureProb(c, ber, page)
		got := c.PageFailureProb(ber, page)
		if re := relErr(got, want); re > 1e-9 {
			t.Errorf("BER %g: PageFailureProb = %g, reference %g (rel err %g)", ber, got, want, re)
		}
	}
	// The old implementation must fail the same pins — a regression test
	// that cannot distinguish the implementations proves nothing.
	oldFailed := false
	for _, ber := range []float64{5e-4, 1e-3} {
		want := refPageFailureProb(c, ber, page)
		if re := relErr(oldPageFailureProb(c, ber, page), want); re > 1e-9 {
			oldFailed = true
		}
	}
	if !oldFailed {
		t.Error("old 1-Pow implementation passes the low-BER pins; the regression test has lost its teeth")
	}
	// And the headline symptom: a BER whose true failure is far from zero in
	// any meaningful reliability budget reads as exactly 0 on the old path.
	if old := oldPageFailureProb(c, 5e-4, page); old != 0 {
		t.Logf("note: old implementation returned %g at BER 5e-4 (expected exact 0 collapse)", old)
	}
	if want := refPageFailureProb(c, 5e-4, page); want <= 0 || want > 1e-20 {
		t.Errorf("reference at BER 5e-4 = %g, expected a tiny positive value", want)
	}
}

// TestCodewordFailureProbMatchesReference checks the single-codeword tail
// across the knee, including codes with T near the codeword size.
func TestCodewordFailureProbMatchesReference(t *testing.T) {
	codes := []Code{
		Default40BitPer1K(),
		{CodewordBits: 512, CorrectableBits: 5},
		{CodewordBits: 512, CorrectableBits: 500},
		{CodewordBits: 256, CorrectableBits: 0},
	}
	bers := []float64{1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 0.9, 0.99, 0.999}
	for _, c := range codes {
		for _, ber := range bers {
			// Single codeword == page of CodewordBits/8 bytes.
			want := refPageFailureProb(c, ber, c.CodewordBits/8)
			got := c.CodewordFailureProb(ber)
			// Below float64's reach both sides must agree the tail is ~0.
			if want < 1e-250 {
				if got > 1e-240 {
					t.Errorf("%+v BER %g: tail %g, reference ~0", c, ber, got)
				}
				continue
			}
			if re := relErr(got, want); re > 1e-9 {
				t.Errorf("%+v BER %g: tail %g, reference %g (rel err %g)", c, ber, got, want, re)
			}
		}
	}
}

// monotoneBERGrid spans subnormal-tail through near-certain-failure BERs,
// with dense coverage near 1 where the old pmf walk accumulated error.
func monotoneBERGrid() []float64 {
	grid := []float64{}
	for _, exp := range []float64{-9, -8, -7, -6, -5, -4, -3.5, -3, -2.5, -2, -1.5, -1} {
		grid = append(grid, math.Pow(10, exp), 3*math.Pow(10, exp))
	}
	return append(grid, 0.5, 0.7, 0.9, 0.99, 0.999, 1-1e-6, 1-1e-9, 1-1e-12)
}

// TestPageFailureProbMonotoneInBER property-tests monotonicity in BER for
// codes across the T spectrum, including T near CodewordBits and BER near 1
// — the regime the issue flagged for the old clamp-masked walk.
func TestPageFailureProbMonotoneInBER(t *testing.T) {
	codes := []Code{
		Default40BitPer1K(),
		{CodewordBits: 512, CorrectableBits: 0},
		{CodewordBits: 512, CorrectableBits: 5},
		{CodewordBits: 512, CorrectableBits: 256},
		{CodewordBits: 512, CorrectableBits: 505},
		{CodewordBits: 512, CorrectableBits: 511},
	}
	const tol = 1e-12
	for _, c := range codes {
		prev := -1.0
		for _, ber := range monotoneBERGrid() {
			p := c.PageFailureProb(ber, 4096)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("%+v BER %g: failure prob %g out of [0,1]", c, ber, p)
			}
			if p < prev-tol {
				t.Errorf("%+v: failure prob not monotone in BER at %g: %g < %g", c, ber, p, prev)
			}
			if p > prev {
				prev = p
			}
		}
	}
}

// TestPageFailureProbMonotoneInT: a stronger code never fails more, at any
// BER, all the way to T = CodewordBits-1.
func TestPageFailureProbMonotoneInT(t *testing.T) {
	const n = 512
	const tol = 1e-12
	for _, ber := range []float64{1e-5, 1e-3, 0.05, 0.3, 0.9, 0.999} {
		prev := 2.0
		for tcap := 0; tcap < n; tcap += 7 {
			c := Code{CodewordBits: n, CorrectableBits: tcap}
			p := c.PageFailureProb(ber, 4096)
			if p > prev+tol {
				t.Errorf("BER %g: failure prob not monotone in T at %d: %g > %g", ber, tcap, p, prev)
			}
			if p < prev {
				prev = p
			}
		}
	}
}
