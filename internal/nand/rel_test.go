package nand

import (
	"errors"
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/obs"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// relDevice builds a test device with the reliability model on.
func relDevice(t *testing.T, rc rel.Config) *Device {
	t.Helper()
	cfg := Config{Geometry: TestGeometry(), Timing: DefaultTiming(), Reliability: &rc}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// stress erases the block n times and programs its first LSB page, returning
// the program completion time.
func stress(t *testing.T, d *Device, blk BlockAddr, erases int) sim.Time {
	t.Helper()
	now := sim.Time(0)
	for i := 0; i < erases; i++ {
		var err error
		now, err = d.Erase(blk, now)
		if err != nil {
			t.Fatal(err)
		}
	}
	a := PageAddr{BlockAddr: blk, Page: core.Page{WL: 0, Type: core.LSB}}
	done, err := d.Program(a, []byte("payload"), nil, now)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

// TestRelFreshReadsClean: a fresh device reads back clean — no corrections,
// no retries, and completion time identical to a reliability-off device.
func TestRelFreshReadsClean(t *testing.T) {
	d := relDevice(t, rel.DefaultConfig(1))
	off, err := NewDevice(Config{Geometry: TestGeometry(), Timing: DefaultTiming()})
	if err != nil {
		t.Fatal(err)
	}
	a := PageAddr{BlockAddr: BlockAddr{Chip: 0, Block: 0}, Page: core.Page{WL: 0, Type: core.LSB}}
	for _, dev := range []*Device{d, off} {
		if _, err := dev.Program(a, []byte("x"), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf, bufOff PageBuf
	for i := 0; i < 200; i++ {
		done, err := d.ReadInto(a, &buf, 0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		doneOff, err := off.ReadInto(a, &bufOff, 0)
		if err != nil {
			t.Fatal(err)
		}
		if done != doneOff {
			t.Fatalf("read %d: reliability-on completion %d != off %d on a clean read", i, done, doneOff)
		}
	}
	c := d.RelCounts()
	if c.Reads != 200 || c.Corrected != 0 || c.RetriedReads != 0 || c.Uncorrectable != 0 {
		t.Errorf("fresh reads should all be clean, got %+v", c)
	}
}

// TestRelRetriesExtendLatency: at worst-case stress with a zero-strength
// fast path, every corrected read retries and each retry round adds exactly
// one array read of latency.
func TestRelRetriesExtendLatency(t *testing.T) {
	rc := rel.DefaultConfig(2)
	rc.FastCorrectableBits = 0 // any bit error engages the retry ladder
	d := relDevice(t, rc)
	blk := BlockAddr{Chip: 0, Block: 0}
	progDone := stress(t, d, blk, 3000)
	a := PageAddr{BlockAddr: blk, Page: core.Page{WL: 0, Type: core.LSB}}
	at := progDone + rel.Year
	var buf PageBuf
	base := d.Timing().Read + d.Timing().BusXfer
	prevCounts := d.RelCounts()
	for i := 0; i < 400; i++ {
		start := sim.MaxOf(at, d.ChipReadyAt(blk.Chip))
		done, err := d.ReadInto(a, &buf, at)
		if err != nil {
			t.Fatalf("read %d: %v (worst case must stay correctable)", i, err)
		}
		c := d.RelCounts()
		rounds := c.RetryRounds - prevCounts.RetryRounds
		if want := start + base + sim.Time(rounds)*d.Timing().Read; done != want {
			t.Fatalf("read %d: %d retry rounds, completion %d, want %d", i, rounds, done, want)
		}
		prevCounts = c
	}
	c := d.RelCounts()
	if c.Corrected == 0 {
		t.Error("worst-case stress produced no corrected reads")
	}
	if c.RetriedReads != c.Corrected {
		t.Errorf("with fast strength 0 every corrected read must retry: %+v", c)
	}
	if c.Uncorrectable != 0 {
		t.Errorf("worst case must stay correctable at default ECC, got %+v", c)
	}
	busy := d.CauseBusy()
	if busy[obs.CauseReadRetry] != sim.Time(c.RetryRounds)*d.Timing().Read {
		t.Errorf("read_retry busy %d != %d rounds x tRead", busy[obs.CauseReadRetry], c.RetryRounds)
	}
}

// TestRelUncorrectableBeyondBudget: stress far past the ECC knee makes reads
// uncorrectable — the error is rel.ErrUncorrectable (not the power-loss
// sentinel), full ladder latency is paid, and counters record the loss.
func TestRelUncorrectableBeyondBudget(t *testing.T) {
	rc := rel.DefaultConfig(3)
	d := relDevice(t, rc)
	blk := BlockAddr{Chip: 0, Block: 1}
	progDone := stress(t, d, blk, 5000)
	a := PageAddr{BlockAddr: blk, Page: core.Page{WL: 0, Type: core.LSB}}
	at := progDone + 2*rel.Year
	start := sim.MaxOf(at, d.ChipReadyAt(blk.Chip))
	var buf PageBuf
	done, err := d.ReadInto(a, &buf, at)
	if !errors.Is(err, rel.ErrUncorrectable) {
		t.Fatalf("want rel.ErrUncorrectable, got %v", err)
	}
	if errors.Is(err, ErrUncorrectable) {
		t.Error("reliability loss must not alias the power-loss sentinel")
	}
	want := start + d.Timing().Read*sim.Time(1+rc.MaxRetries) + d.Timing().BusXfer
	if done != want {
		t.Errorf("uncorrectable read completion %d, want full-ladder %d", done, want)
	}
	if c := d.RelCounts(); c.Uncorrectable != 1 {
		t.Errorf("counters: %+v", c)
	}
}

// TestRelDeterministic: two identical devices see identical outcomes.
func TestRelDeterministic(t *testing.T) {
	run := func() rel.Counts {
		d := relDevice(t, rel.DefaultConfig(9))
		blk := BlockAddr{Chip: 1, Block: 2}
		progDone := stress(t, d, blk, 3000)
		a := PageAddr{BlockAddr: blk, Page: core.Page{WL: 0, Type: core.LSB}}
		var buf PageBuf
		for i := 0; i < 300; i++ {
			if _, err := d.ReadInto(a, &buf, progDone+rel.Year); err != nil {
				t.Fatal(err)
			}
		}
		return d.RelCounts()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("outcomes differ across identical runs: %+v vs %+v", a, b)
	}
}

// TestRelPredictAndRetire covers the policy accessors: block BER prediction
// grows with stress, fresh BER crosses the budget at high wear, and a
// retired block rejects programs.
func TestRelPredictAndRetire(t *testing.T) {
	rc := rel.DefaultConfig(4)
	d := relDevice(t, rc)
	blk := BlockAddr{Chip: 0, Block: 3}
	if got := d.PredictBlockBER(blk, 0); got != 0 {
		t.Errorf("empty block predicts BER %g, want 0", got)
	}
	progDone := stress(t, d, blk, 3000)
	now := d.PredictBlockBER(blk, progDone)
	aged := d.PredictBlockBER(blk, progDone+rel.Year)
	if !(0 < now && now < aged) {
		t.Errorf("prediction not growing with age: now %g, aged %g", now, aged)
	}
	budget := rc.BERBudget(d.Geometry().PageSizeBytes, 1e-4)
	if fresh := d.PredictFreshBER(blk); fresh >= budget {
		t.Errorf("3K-cycle fresh BER %g already over budget %g", fresh, budget)
	}
	worn := BlockAddr{Chip: 0, Block: 4}
	stress(t, d, worn, 12000)
	if fresh := d.PredictFreshBER(worn); fresh < budget {
		t.Errorf("12K-cycle fresh BER %g should exceed budget %g", fresh, budget)
	}
	if err := d.RetireBlock(worn); err != nil {
		t.Fatal(err)
	}
	a := PageAddr{BlockAddr: worn, Page: core.Page{WL: 1, Type: core.LSB}}
	if _, err := d.Program(a, []byte("x"), nil, 0); !errors.Is(err, ErrBadBlock) {
		t.Errorf("program on retired block: %v, want ErrBadBlock", err)
	}
	if _, err := d.Erase(worn, 0); !errors.Is(err, ErrBadBlock) {
		t.Errorf("erase on retired block: %v, want ErrBadBlock", err)
	}
}
