package nand

import (
	"fmt"

	"flexftl/internal/sim"
)

// Timing holds the operation latencies of the device. Defaults follow the
// paper's 2X-nm MLC numbers: LSB program 500 us, MSB program 2000 us (4x),
// page read 40 us, block erase 5 ms, and a bus transfer time for one page
// (4 KB at 400 MB/s toggle DDR is ~10 us).
type Timing struct {
	Read    sim.Time // cell sensing time (tR)
	ProgLSB sim.Time // LSB page program (tPROG_LSB)
	ProgMSB sim.Time // MSB page program (tPROG_MSB)
	Erase   sim.Time // block erase (tBERS)
	BusXfer sim.Time // one page data transfer over the channel
}

// DefaultTiming returns the paper's 2X-nm MLC latencies.
func DefaultTiming() Timing {
	return Timing{
		Read:    40 * sim.Microsecond,
		ProgLSB: 500 * sim.Microsecond,
		ProgMSB: 2000 * sim.Microsecond,
		Erase:   5 * sim.Millisecond,
		BusXfer: 10 * sim.Microsecond,
	}
}

// Validate rejects non-positive or inverted latencies.
func (t Timing) Validate() error {
	switch {
	case t.Read <= 0 || t.ProgLSB <= 0 || t.ProgMSB <= 0 || t.Erase <= 0:
		return fmt.Errorf("nand: all operation latencies must be positive: %+v", t)
	case t.BusXfer < 0:
		return fmt.Errorf("nand: negative bus transfer time %v", t.BusXfer)
	case t.ProgMSB < t.ProgLSB:
		return fmt.Errorf("nand: MSB program (%v) faster than LSB (%v) contradicts MLC asymmetry",
			t.ProgMSB, t.ProgLSB)
	}
	return nil
}

// Asymmetry returns tPROG_MSB / tPROG_LSB (4.0 for the defaults).
func (t Timing) Asymmetry() float64 {
	return float64(t.ProgMSB) / float64(t.ProgLSB)
}
