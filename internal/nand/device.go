package nand

import (
	"errors"
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/obs"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// Sentinel errors returned by device operations.
var (
	// ErrUncorrectable is returned by Read when the page's data was lost
	// (e.g. the paired LSB page of an MSB program interrupted by power-off)
	// and ECC cannot reconstruct it.
	ErrUncorrectable = errors.New("nand: ECC-uncorrectable page")
	// ErrNotProgrammed is returned by Read on an erased (never programmed)
	// page.
	ErrNotProgrammed = errors.New("nand: reading erased page")
	// ErrBadBlock is returned for operations on a block retired after
	// exceeding its erase budget (when a budget is configured).
	ErrBadBlock = errors.New("nand: bad (retired) block")
)

// Config assembles everything needed to instantiate a Device.
type Config struct {
	Geometry Geometry
	Timing   Timing
	// Rules is the program-order scheme the device enforces. nil defaults
	// to core.FPS, matching stock MLC parts; RPS devices pass core.RPS.
	Rules core.RuleSet
	// EraseBudget, when > 0, retires a block after that many erases,
	// surfacing ErrBadBlock. 0 disables retirement (lifetime experiments
	// count erases instead).
	EraseBudget int
	// Reliability, when non-nil, enables the per-page BER model: every read
	// of a programmed page gets a deterministic ECC outcome — clean,
	// corrected (possibly after retry rounds that each add one array read of
	// latency, charged to obs.CauseReadRetry), or uncorrectable
	// (rel.ErrUncorrectable after paying the full ladder). nil keeps the
	// device bit-exact with the pre-reliability simulator.
	Reliability *rel.Config
}

// DefaultConfig returns the paper's device with the given rule set.
func DefaultConfig(rules core.RuleSet) Config {
	return Config{Geometry: DefaultGeometry(), Timing: DefaultTiming(), Rules: rules}
}

// page holds the stored state of one physical page.
type page struct {
	programmed bool
	corrupted  bool // data destroyed (power-off during paired MSB program)
	// lost pins the page ECC-uncorrectable: once a read of it failed the
	// retry ladder, every later read must fail too (the model's hash varies
	// per read, so without the pin a lost page could "recover"). Set by the
	// FTL via MarkLost after an unrepairable loss; cleared by erase/program.
	lost  bool
	data  []byte
	spare []byte
	// progAt is the virtual time the page was last programmed — the zero of
	// its retention clock. Only maintained when the reliability model is on.
	progAt sim.Time
}

// block is the physical state of one erase block.
type block struct {
	state      *core.BlockState
	pages      []page
	eraseCount int
	retired    bool
	// readCount counts reads of the block since its last erase (the
	// read-disturb stress axis); firstProgAt is the retention clock of the
	// block's oldest data. Both only maintained when the reliability model
	// is on; readCount resets on erase.
	readCount   uint64
	firstProgAt sim.Time
	hasProg     bool
}

// msbWindow is a chip's destructive-program window: the most recent MSB
// program that the storage layer has not yet declared power-safe. While the
// window is open a power cut destroys the MSB page and its paired LSB page.
// A chip serializes its cell operations, so at most one window exists per
// chip; a newer MSB program supersedes the previous window (the chip
// timeline passed the older program before accepting the new one).
type msbWindow struct {
	blk  int
	wl   int
	open bool
}

// chip carries the busy timeline and blocks of one die.
type chip struct {
	blocks  []block
	readyAt sim.Time
	win     msbWindow
}

// OpCounts tallies device operations, split by page type where relevant.
type OpCounts struct {
	Reads       int64
	ProgramsLSB int64
	ProgramsMSB int64
	Erases      int64
}

// Programs returns total page programs.
func (c OpCounts) Programs() int64 { return c.ProgramsLSB + c.ProgramsMSB }

// Device is the NAND subsystem. It is not safe for concurrent use: the
// simulator is single-threaded over a virtual clock by design, so that runs
// are reproducible.
type Device struct {
	cfg      Config
	rules    core.RuleSet
	chips    []chip
	chanFree []sim.Time // per-channel bus availability
	counts   []OpCounts // per-chip operation counters (Counts sums them)
	busyTime []sim.Time // accumulated busy time per chip (utilization metric)

	// cause is the ambient attribution register, kept per chip so channel
	// shards of a single run can bracket their own chips without sharing a
	// register: every operation charges its busy time to the cause in force
	// on its chip when it was issued. The FTL sets it around GC, backup and
	// pad paths (save/restore discipline); CauseHost is the default.
	// causeBusy accumulates unconditionally — it is pure accounting on the
	// virtual timeline and never changes timing.
	cause     []obs.Cause
	causeBusy [][obs.CauseCount]sim.Time

	// relCounts aggregates reliability read outcomes per chip (chip-local so
	// channel shards never share a counter); nil when the model is off.
	relCounts []rel.Counts

	// Observability (nil when tracing is disabled).
	rec         *obs.Recorder
	histProgLSB *obs.Histogram
	histProgMSB *obs.Histogram
	histRead    *obs.Histogram
	histErase   *obs.Histogram
	causeCtr    [obs.CauseCount]*obs.Counter
}

// NewDevice builds a device from the configuration.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	rules := cfg.Rules
	if rules == nil {
		rules = core.FPS
	}
	if cfg.Reliability != nil {
		if err := cfg.Reliability.Validate(); err != nil {
			return nil, err
		}
	}
	d := &Device{
		cfg:       cfg,
		rules:     rules,
		chips:     make([]chip, cfg.Geometry.Chips()),
		chanFree:  make([]sim.Time, cfg.Geometry.Channels),
		counts:    make([]OpCounts, cfg.Geometry.Chips()),
		busyTime:  make([]sim.Time, cfg.Geometry.Chips()),
		cause:     make([]obs.Cause, cfg.Geometry.Chips()),
		causeBusy: make([][obs.CauseCount]sim.Time, cfg.Geometry.Chips()),
	}
	for c := range d.chips {
		blocks := make([]block, cfg.Geometry.BlocksPerChip)
		for b := range blocks {
			blocks[b] = block{
				state: core.NewBlockState(cfg.Geometry.WordLinesPerBlock),
				pages: make([]page, cfg.Geometry.PagesPerBlock()),
			}
		}
		d.chips[c].blocks = blocks
	}
	if cfg.Reliability != nil {
		d.relCounts = make([]rel.Counts, cfg.Geometry.Chips())
	}
	return d, nil
}

// SetRecorder attaches an observability recorder: per-operation span events
// (program, read, erase on chip tracks; transfers on channel tracks) and
// service-time histograms. A nil recorder disables emission again. The
// recorder only observes — timing and results are unchanged.
func (d *Device) SetRecorder(r *obs.Recorder) {
	d.rec = r
	reg := r.Registry()
	d.histProgLSB = reg.Histogram("nand.program_lsb_us")
	d.histProgMSB = reg.Histogram("nand.program_msb_us")
	d.histRead = reg.Histogram("nand.read_us")
	d.histErase = reg.Histogram("nand.erase_us")
	for c := obs.Cause(0); c < obs.CauseCount; c++ {
		d.causeCtr[c] = reg.Counter(obs.BusyCounterName("nand", c))
	}
}

// SetCause switches the ambient attribution cause on every chip and returns
// the previous one, so callers bracket a code path with
//
//	prev := d.SetCause(obs.CauseGC)
//	defer d.SetCause(prev)
//
// Nested paths (a backup write inside a GC relocation) override and restore
// naturally. The cause only labels accounting; timing and results never
// depend on it. Serial callers see the single-register semantics this always
// had (all chips share one cause between brackets); code paths that must not
// touch other chips' registers — the channel shards of a parallel run —
// bracket with SetCauseChip instead.
func (d *Device) SetCause(c obs.Cause) obs.Cause {
	prev := d.cause[0]
	for i := range d.cause {
		d.cause[i] = c
	}
	return prev
}

// SetCauseChip switches the attribution cause of one chip only, returning
// that chip's previous cause. This is the bracket for paths that touch a
// single chip (backup writes paired with a host program), and the only legal
// bracket inside a channel shard.
func (d *Device) SetCauseChip(chipID int, c obs.Cause) obs.Cause {
	prev := d.cause[chipID]
	d.cause[chipID] = c
	return prev
}

// Cause returns the ambient attribution cause in force (chip 0's register;
// outside chip-scoped brackets all chips agree).
func (d *Device) Cause() obs.Cause { return d.cause[0] }

// CauseBusy returns the accumulated media busy time charged to each cause
// (µs of chip occupancy, indexed by obs.Cause), summed over chips in chip
// order.
func (d *Device) CauseBusy() [obs.CauseCount]sim.Time {
	var total [obs.CauseCount]sim.Time
	for chip := range d.causeBusy {
		for c := range d.causeBusy[chip] {
			total[c] += d.causeBusy[chip][c]
		}
	}
	return total
}

// chargeBusy attributes one operation's busy time to the chip's ambient
// cause.
func (d *Device) chargeBusy(chipID int, dur sim.Time) {
	d.chargeBusyCause(chipID, d.cause[chipID], dur)
}

// chargeBusyCause attributes busy time to an explicit cause, bypassing the
// ambient register — the device's own retry latency is read_retry no matter
// what path issued the read.
func (d *Device) chargeBusyCause(chipID int, cause obs.Cause, dur sim.Time) {
	d.causeBusy[chipID][cause] += dur
	if d.rec != nil {
		d.causeCtr[cause].Add(int64(dur))
	}
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.cfg.Geometry }

// Timing returns the device timing parameters.
func (d *Device) Timing() Timing { return d.cfg.Timing }

// Rules returns the enforced program-order scheme.
func (d *Device) Rules() core.RuleSet { return d.rules }

// Counts returns the operation counters, summed over chips in chip order.
func (d *Device) Counts() OpCounts {
	var total OpCounts
	for i := range d.counts {
		total.Reads += d.counts[i].Reads
		total.ProgramsLSB += d.counts[i].ProgramsLSB
		total.ProgramsMSB += d.counts[i].ProgramsMSB
		total.Erases += d.counts[i].Erases
	}
	return total
}

// ChipReadyAt returns when the chip's cell array becomes free.
func (d *Device) ChipReadyAt(chipID int) sim.Time { return d.chips[chipID].readyAt }

// ChipBusyTime returns the accumulated cell-busy time of a chip, an input to
// utilization metrics.
func (d *Device) ChipBusyTime(chipID int) sim.Time { return d.busyTime[chipID] }

func (d *Device) blockAt(a BlockAddr) (*block, error) {
	g := d.cfg.Geometry
	if a.Chip < 0 || a.Chip >= g.Chips() {
		return nil, fmt.Errorf("nand: chip %d out of range [0,%d)", a.Chip, g.Chips())
	}
	if a.Block < 0 || a.Block >= g.BlocksPerChip {
		return nil, fmt.Errorf("nand: block %d out of range [0,%d)", a.Block, g.BlocksPerChip)
	}
	return &d.chips[a.Chip].blocks[a.Block], nil
}

func (d *Device) pageAt(a PageAddr) (*block, *page, error) {
	blk, err := d.blockAt(a.BlockAddr)
	if err != nil {
		return nil, nil, err
	}
	wl := d.cfg.Geometry.WordLinesPerBlock
	if a.Page.WL < 0 || a.Page.WL >= wl {
		return nil, nil, fmt.Errorf("nand: word line %d out of range [0,%d)", a.Page.WL, wl)
	}
	return blk, &blk.pages[a.Page.Index(wl)], nil
}

// progLatency returns the cell program latency for a page type.
func (d *Device) progLatency(t core.PageType) sim.Time {
	if t == core.LSB {
		return d.cfg.Timing.ProgLSB
	}
	return d.cfg.Timing.ProgMSB
}

// Program writes data (and optional spare bytes) to the page, enforcing the
// configured program-order scheme. It returns the virtual time at which the
// program completes. Issue semantics: the transfer starts when both the
// channel bus and the chip are free; the cell program then occupies the chip.
func (d *Device) Program(a PageAddr, data, spare []byte, now sim.Time) (sim.Time, error) {
	blk, pg, err := d.pageAt(a)
	if err != nil {
		return now, err
	}
	if blk.retired {
		return now, fmt.Errorf("%w: %v", ErrBadBlock, a.BlockAddr)
	}
	if err := d.rules.Check(blk.state, a.Page); err != nil {
		return now, err
	}
	g := d.cfg.Geometry
	if len(data) > g.PageSizeBytes {
		return now, fmt.Errorf("nand: payload %dB exceeds page size %dB", len(data), g.PageSizeBytes)
	}
	if len(spare) > g.SpareBytes {
		return now, fmt.Errorf("nand: spare payload %dB exceeds spare size %dB", len(spare), g.SpareBytes)
	}

	ch := g.ChannelOf(a.Chip)
	c := &d.chips[a.Chip]
	start := sim.MaxOf(now, sim.MaxOf(c.readyAt, d.chanFree[ch]))
	xferDone := start + d.cfg.Timing.BusXfer
	done := xferDone + d.progLatency(a.Page.Type)
	d.chanFree[ch] = xferDone
	c.readyAt = done
	d.busyTime[a.Chip] += done - start
	d.chargeBusy(a.Chip, done-start)
	if d.rec != nil {
		d.rec.Span(obs.KindXfer, int32(ch), start, xferDone, int64(a.Chip), int64(a.Block))
		kind, hist := obs.KindProgramLSB, d.histProgLSB
		if a.Page.Type == core.MSB {
			kind, hist = obs.KindProgramMSB, d.histProgMSB
		}
		d.rec.Span(kind, int32(a.Chip), xferDone, done, int64(a.Block), int64(a.Page.WL))
		hist.Record(int64(done - start))
	}

	blk.state.Mark(a.Page)
	pg.programmed = true
	pg.corrupted = false
	pg.lost = false
	pg.data = append(pg.data[:0], data...)
	pg.spare = append(pg.spare[:0], spare...)
	if d.cfg.Reliability != nil {
		pg.progAt = done
		if !blk.hasProg {
			blk.hasProg = true
			blk.firstProgAt = done
		}
	}

	if a.Page.Type == core.MSB {
		d.counts[a.Chip].ProgramsMSB++
		// While the MSB program is unacknowledged the paired LSB data is in
		// its destructive transient state. Record the window for power-loss
		// injection; it stays open until AckProgram, a newer MSB program on
		// the chip, or an erase on the chip. An LSB program does NOT close
		// it: under interleaved FPS orders the hazard of a pending MSB is
		// unaffected by LSB programs elsewhere on the chip.
		c.win = msbWindow{blk: a.Block, wl: a.Page.WL, open: true}
	} else {
		d.counts[a.Chip].ProgramsLSB++
	}
	return done, nil
}

// AckProgram declares the block's most recent MSB program power-safe (its
// data is covered by a backup, or the destructive phase is over). Between
// Program and AckProgram a power cut destroys the paired LSB page. Acking a
// block other than the window's is a no-op — the window belongs to whichever
// block programmed last.
func (d *Device) AckProgram(a BlockAddr) {
	if a.Chip < 0 || a.Chip >= len(d.chips) {
		return
	}
	c := &d.chips[a.Chip]
	if c.win.open && c.win.blk == a.Block {
		c.win.open = false
	}
}

// OpenMSBWindow reports the chip's open destructive window, if any: the
// address of the unacknowledged MSB page whose pair a power cut would
// destroy. Crash-injection harnesses use it to locate the vulnerable pages
// before calling InjectPowerLoss.
func (d *Device) OpenMSBWindow(chipID int) (PageAddr, bool) {
	if chipID < 0 || chipID >= len(d.chips) {
		return PageAddr{}, false
	}
	w := d.chips[chipID].win
	if !w.open {
		return PageAddr{}, false
	}
	return PageAddr{
		BlockAddr: BlockAddr{Chip: chipID, Block: w.blk},
		Page:      core.Page{WL: w.wl, Type: core.MSB},
	}, true
}

// relOutcome evaluates the reliability model for one read of a programmed
// page: the predicted BER from the block's wear, the page's retention age
// and the block's read-disturb count, classified through the ECC retry
// ladder by a hash of the read's chip-local identity. Only called when the
// model is enabled.
func (d *Device) relOutcome(a PageAddr, blk *block, pg *page, at sim.Time) rel.Outcome {
	rc := d.cfg.Reliability
	blk.readCount++
	age := at - pg.progAt
	if age < 0 {
		age = 0
	}
	ber := rc.Model.BER(blk.eraseCount, age, blk.readCount)
	u := rc.Sample(a.Chip, a.Block, a.Page.Index(d.cfg.Geometry.WordLinesPerBlock), blk.readCount)
	o := rc.ReadOutcome(ber, d.cfg.Geometry.PageSizeBytes, u)
	rcs := &d.relCounts[a.Chip]
	rcs.Reads++
	if o.Corrected {
		rcs.Corrected++
	}
	if o.Retries > 0 {
		rcs.RetriedReads++
		rcs.RetryRounds += int64(o.Retries)
	}
	if o.Uncorrectable {
		rcs.Uncorrectable++
	}
	return o
}

// readPage performs the timing, accounting and validity checks shared by
// Read and ReadInto, returning the sensed page.
func (d *Device) readPage(a PageAddr, now sim.Time) (*page, sim.Time, error) {
	blk, pg, err := d.pageAt(a)
	if err != nil {
		return nil, now, err
	}
	g := d.cfg.Geometry
	ch := g.ChannelOf(a.Chip)
	c := &d.chips[a.Chip]
	start := sim.MaxOf(now, c.readyAt)
	// The reliability outcome is known before timing is committed so retry
	// rounds extend the sense phase: each round re-occupies the cell array
	// for another read. The extra occupancy is charged to read_retry; the
	// base read keeps the ambient cause.
	var outcome rel.Outcome
	if d.cfg.Reliability != nil && pg.programmed && !pg.corrupted && !pg.lost {
		outcome = d.relOutcome(a, blk, pg, start)
	}
	retryDur := sim.Time(outcome.Retries) * d.cfg.Timing.Read
	senseDone := start + d.cfg.Timing.Read + retryDur
	xferStart := sim.MaxOf(senseDone, d.chanFree[ch])
	done := xferStart + d.cfg.Timing.BusXfer
	d.chanFree[ch] = done
	c.readyAt = done
	d.busyTime[a.Chip] += done - start
	d.chargeBusy(a.Chip, done-start-retryDur)
	if retryDur > 0 {
		d.chargeBusyCause(a.Chip, obs.CauseReadRetry, retryDur)
	}
	d.counts[a.Chip].Reads++
	if d.rec != nil {
		d.rec.Span(obs.KindRead, int32(a.Chip), start, senseDone, int64(a.Block), int64(a.Page.WL))
		d.rec.Span(obs.KindXfer, int32(ch), xferStart, done, int64(a.Chip), int64(a.Block))
		d.histRead.Record(int64(done - start))
	}

	if !pg.programmed {
		return nil, done, fmt.Errorf("%w: %v", ErrNotProgrammed, a)
	}
	if pg.corrupted {
		return nil, done, fmt.Errorf("%w: %v", ErrUncorrectable, a)
	}
	if pg.lost {
		return nil, done, fmt.Errorf("%w: %v", rel.ErrUncorrectable, a)
	}
	if outcome.Uncorrectable {
		return nil, done, fmt.Errorf("%w: %v", rel.ErrUncorrectable, a)
	}
	return pg, done, nil
}

// Read returns a copy of the page payload and spare area, plus the
// completion time. Reading an erased page or a corrupted page fails (the
// latter with ErrUncorrectable, after paying the sensing latency, as a real
// controller would).
//
// Read allocates two fresh slices per call; hot paths (host reads, GC
// relocation, recovery scans) use ReadInto with a reusable PageBuf instead.
func (d *Device) Read(a PageAddr, now sim.Time) (data, spare []byte, done sim.Time, err error) {
	pg, done, err := d.readPage(a, now)
	if err != nil {
		return nil, nil, done, err
	}
	return append([]byte(nil), pg.data...), append([]byte(nil), pg.spare...), done, nil
}

// PageBuf is a caller-owned destination for ReadInto. Its backing arrays
// grow to the device's page/spare size on first use and are reused
// afterwards, so steady-state reads through one PageBuf allocate nothing.
type PageBuf struct {
	// Data and Spare hold the last read's payload and spare area. They are
	// overwritten (length reset) by every ReadInto.
	Data, Spare []byte
}

// ReadInto is the zero-copy variant of Read: the payload and spare area
// land in buf's reusable backing arrays instead of freshly allocated
// slices. Timing, counters, tracing and error behaviour match Read exactly;
// on error buf's slices are truncated to zero length. buf's contents are
// valid until the next ReadInto with the same buf — callers that hand the
// data onward (e.g. to Program, which copies) need no further copy.
func (d *Device) ReadInto(a PageAddr, buf *PageBuf, now sim.Time) (done sim.Time, err error) {
	pg, done, err := d.readPage(a, now)
	if err != nil {
		buf.Data, buf.Spare = buf.Data[:0], buf.Spare[:0]
		return done, err
	}
	buf.Data = append(buf.Data[:0], pg.data...)
	buf.Spare = append(buf.Spare[:0], pg.spare...)
	return done, nil
}

// Erase resets a block, increments its wear counter, and returns the
// completion time. With an erase budget configured, blocks retire once worn
// out.
func (d *Device) Erase(a BlockAddr, now sim.Time) (sim.Time, error) {
	blk, err := d.blockAt(a)
	if err != nil {
		return now, err
	}
	if blk.retired {
		return now, fmt.Errorf("%w: %v", ErrBadBlock, a)
	}
	// A block at its erase budget fails the erase itself — the way real
	// NAND surfaces wear-out — and is retired from service.
	if d.cfg.EraseBudget > 0 && blk.eraseCount >= d.cfg.EraseBudget {
		blk.retired = true
		return now, fmt.Errorf("%w: %v worn out after %d erases", ErrBadBlock, a, blk.eraseCount)
	}
	c := &d.chips[a.Chip]
	start := sim.MaxOf(now, c.readyAt)
	done := start + d.cfg.Timing.Erase
	c.readyAt = done
	d.busyTime[a.Chip] += done - start
	d.chargeBusy(a.Chip, done-start)

	blk.state.Reset()
	// Truncate rather than drop the payload slices: their capacity is
	// reused by the next program of the page, keeping the program hot path
	// allocation-free in steady state (pages are only read behind the
	// programmed flag, so an empty slice is indistinguishable from nil).
	for i := range blk.pages {
		pg := &blk.pages[i]
		pg.programmed = false
		pg.corrupted = false
		pg.lost = false
		pg.data = pg.data[:0]
		pg.spare = pg.spare[:0]
	}
	blk.eraseCount++
	blk.readCount = 0
	blk.hasProg = false
	// Erase barrier: the chip serialized this erase after any pending
	// program, so that program's destructive transient is physically over by
	// the time the erase begins. Closing the window here (unlike for LSB
	// programs, where keeping it open merely over-approximates the hazard)
	// matters for correctness: it guarantees that while a window is open, no
	// erase has happened on the chip since the MSB was issued — so the
	// previous copy of the interrupted page, always on the same chip for GC
	// relocations, still exists for recovery to roll back to.
	c.win.open = false
	d.counts[a.Chip].Erases++
	if d.rec != nil {
		d.rec.Span(obs.KindErase, int32(a.Chip), start, done, int64(a.Block), int64(blk.eraseCount))
		d.histErase.Record(int64(done - start))
	}
	return done, nil
}

// EraseCount returns the wear counter of a block.
func (d *Device) EraseCount(a BlockAddr) int {
	blk, err := d.blockAt(a)
	if err != nil {
		return 0
	}
	return blk.eraseCount
}

// Reliability returns the device's reliability configuration (nil when the
// model is off). FTL policies use it to derive ECC budgets.
func (d *Device) Reliability() *rel.Config { return d.cfg.Reliability }

// RelCounts returns the aggregated reliability read outcomes, summed over
// chips in chip order. Zero value when the model is off.
func (d *Device) RelCounts() rel.Counts {
	var total rel.Counts
	for i := range d.relCounts {
		total.Add(d.relCounts[i])
	}
	return total
}

// BlockReadCount returns the block's read-disturb counter (reads since last
// erase; maintained only when the reliability model is on).
func (d *Device) BlockReadCount(a BlockAddr) uint64 {
	blk, err := d.blockAt(a)
	if err != nil {
		return 0
	}
	return blk.readCount
}

// PredictBlockBER returns the model's BER prediction for the block's oldest
// data at the given time — the quantity the kernel's refresh policy steers
// under the ECC budget. Returns 0 when the model is off or the block holds
// no data since its last erase.
func (d *Device) PredictBlockBER(a BlockAddr, now sim.Time) float64 {
	rc := d.cfg.Reliability
	blk, err := d.blockAt(a)
	if rc == nil || err != nil || !blk.hasProg {
		return 0
	}
	age := now - blk.firstProgAt
	if age < 0 {
		age = 0
	}
	return rc.Model.BER(blk.eraseCount, age, blk.readCount)
}

// PredictFreshBER returns the model's BER prediction for data written to the
// block right now — pure wear, no retention or disturb. The retirement
// policy compares it against the ECC budget after each erase. Returns 0 when
// the model is off.
func (d *Device) PredictFreshBER(a BlockAddr) float64 {
	rc := d.cfg.Reliability
	blk, err := d.blockAt(a)
	if rc == nil || err != nil {
		return 0
	}
	return rc.Model.BER(blk.eraseCount, 0, 0)
}

// RetireBlock takes a block out of service: further programs and erases fail
// with ErrBadBlock. The kernel's retirement policy calls it when a block's
// post-erase predicted BER stays over the ECC budget.
func (d *Device) RetireBlock(a BlockAddr) error {
	blk, err := d.blockAt(a)
	if err != nil {
		return err
	}
	blk.retired = true
	return nil
}

// TotalErases sums wear over all blocks (equals Counts().Erases; kept as a
// cross-check for tests).
func (d *Device) TotalErases() int64 {
	var total int64
	for c := range d.chips {
		for b := range d.chips[c].blocks {
			total += int64(d.chips[c].blocks[b].eraseCount)
		}
	}
	return total
}

// WearStats summarizes per-block erase counts — the wear-imbalance view of
// the Figure 8(b) lifetime metric.
type WearStats struct {
	Min, Max int
	Mean     float64
	// Imbalance is Max/Mean (1.0 = perfectly even wear); 0 when unworn.
	Imbalance float64
}

// Wear computes erase-count statistics over all blocks.
func (d *Device) Wear() WearStats {
	var st WearStats
	first := true
	total := 0
	n := 0
	for c := range d.chips {
		for b := range d.chips[c].blocks {
			e := d.chips[c].blocks[b].eraseCount
			if first {
				st.Min, st.Max = e, e
				first = false
			} else if e < st.Min {
				st.Min = e
			} else if e > st.Max {
				st.Max = e
			}
			total += e
			n++
		}
	}
	if n > 0 {
		st.Mean = float64(total) / float64(n)
	}
	if st.Mean > 0 {
		st.Imbalance = float64(st.Max) / st.Mean
	}
	return st
}

// IsProgrammed reports whether a page holds data.
func (d *Device) IsProgrammed(a PageAddr) bool {
	_, pg, err := d.pageAt(a)
	return err == nil && pg.programmed
}

// IsCorrupted reports whether a page's data was destroyed.
func (d *Device) IsCorrupted(a PageAddr) bool {
	_, pg, err := d.pageAt(a)
	return err == nil && pg.corrupted
}

// BlockProgrammedPages returns how many pages of the block are programmed.
func (d *Device) BlockProgrammedPages(a BlockAddr) int {
	blk, err := d.blockAt(a)
	if err != nil {
		return 0
	}
	return blk.state.Programmed()
}

// BlockStateSnapshot returns a copy of the block's program-order state, for
// inspection by FTLs and tests.
func (d *Device) BlockStateSnapshot(a BlockAddr) *core.BlockState {
	blk, err := d.blockAt(a)
	if err != nil {
		return nil
	}
	return blk.state.Clone()
}

// InjectPowerLoss simulates a sudden power-off at the given block. If the
// chip's destructive window is open on that block (an MSB program issued but
// not yet acknowledged as power-safe), the paired LSB page loses its data —
// the destructive-program hazard of Section 1 — and the interrupted MSB page
// itself is left ECC-uncorrectable (its program never completed, so the host
// must treat that write as not durable). It reports whether pages were
// corrupted.
func (d *Device) InjectPowerLoss(a BlockAddr) bool {
	blk, err := d.blockAt(a)
	if err != nil {
		return false
	}
	c := &d.chips[a.Chip]
	if !c.win.open || c.win.blk != a.Block {
		return false
	}
	wl := d.cfg.Geometry.WordLinesPerBlock
	lsbIdx := core.Page{WL: c.win.wl, Type: core.LSB}.Index(wl)
	msbIdx := core.Page{WL: c.win.wl, Type: core.MSB}.Index(wl)
	blk.pages[lsbIdx].corrupted = true
	blk.pages[msbIdx].corrupted = true
	c.win.open = false
	return true
}

// MarkLost pins a programmed page ECC-uncorrectable: every future read fails
// with rel.ErrUncorrectable at base read latency (the controller knows the
// page is beyond the ladder and does not retry). The FTL calls it when a
// reliability loss could not be repaired, so the loss stays visible instead
// of flickering with the per-read outcome hash. Cleared by erase or program.
func (d *Device) MarkLost(a PageAddr) error {
	_, pg, err := d.pageAt(a)
	if err != nil {
		return err
	}
	if !pg.programmed {
		return fmt.Errorf("%w: cannot mark erased page %v lost", ErrNotProgrammed, a)
	}
	pg.lost = true
	return nil
}

// CorruptPage marks any programmed page as ECC-uncorrectable. Fault
// injection for tests.
func (d *Device) CorruptPage(a PageAddr) error {
	_, pg, err := d.pageAt(a)
	if err != nil {
		return err
	}
	if !pg.programmed {
		return fmt.Errorf("%w: cannot corrupt erased page %v", ErrNotProgrammed, a)
	}
	pg.corrupted = true
	return nil
}
