package nand

import (
	"testing"
	"testing/quick"

	"flexftl/internal/core"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// TestDeviceRandomOpsProperty drives a device with random legal operations
// and checks global invariants: completion times never precede issue times,
// per-chip timelines are monotone, programmed counts match issued programs,
// and payloads always read back exactly as written.
func TestDeviceRandomOpsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		d, err := NewDevice(Config{Geometry: TestGeometry(), Timing: DefaultTiming(), Rules: core.RPS})
		if err != nil {
			return false
		}
		g := d.Geometry()
		// Per-block cursor into the RPSfull order; payload journal.
		type blockState struct {
			pos int
		}
		order := core.RPSFullOrder(g.WordLinesPerBlock)
		cursors := map[BlockAddr]*blockState{}
		written := map[PageAddr]byte{}
		now := sim.Time(0)
		var programs, erases int64

		for op := 0; op < 400; op++ {
			chip := src.Intn(g.Chips())
			blk := src.Intn(g.BlocksPerChip)
			ba := BlockAddr{Chip: chip, Block: blk}
			cur, ok := cursors[ba]
			if !ok {
				cur = &blockState{}
				cursors[ba] = cur
			}
			switch {
			case src.Bool(0.6) && cur.pos < len(order):
				// Program the next page of the block's 2PO order.
				payload := byte(src.Intn(256))
				a := PageAddr{BlockAddr: ba, Page: order[cur.pos]}
				done, err := d.Program(a, []byte{payload}, nil, now)
				if err != nil {
					t.Logf("program %v: %v", a, err)
					return false
				}
				if done < now {
					return false
				}
				written[a] = payload
				cur.pos++
				programs++
				now = done - sim.Time(src.Intn(int(d.Timing().ProgLSB))) // overlap issues
				if now < 0 {
					now = 0
				}
			case src.Bool(0.5) && cur.pos > 0:
				// Read a random programmed page of the block.
				idx := src.Intn(cur.pos)
				a := PageAddr{BlockAddr: ba, Page: order[idx]}
				data, _, done, err := d.Read(a, now)
				if err != nil {
					return false
				}
				if done < now {
					return false
				}
				if len(data) != 1 || data[0] != written[a] {
					t.Logf("payload mismatch at %v", a)
					return false
				}
			default:
				done, err := d.Erase(ba, now)
				if err != nil {
					return false
				}
				if done < now {
					return false
				}
				for idx := 0; idx < cur.pos; idx++ {
					delete(written, PageAddr{BlockAddr: ba, Page: order[idx]})
				}
				cur.pos = 0
				erases++
			}
		}
		counts := d.Counts()
		if counts.Programs() != programs || counts.Erases != erases {
			t.Logf("counter drift: device %+v vs journal %d/%d", counts, programs, erases)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
