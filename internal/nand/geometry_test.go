package nand

import (
	"testing"
	"testing/quick"

	"flexftl/internal/core"
)

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Chips() != 32 {
		t.Errorf("chips = %d, want 32 (8 channels x 4)", g.Chips())
	}
	if g.PagesPerBlock() != 256 {
		t.Errorf("pages/block = %d, want 256", g.PagesPerBlock())
	}
	if got := g.CapacityBytes(); got != 16<<30 {
		t.Errorf("capacity = %d, want 16 GiB", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Channels: 0, ChipsPerChannel: 1, BlocksPerChip: 1, WordLinesPerBlock: 1, PageSizeBytes: 1},
		{Channels: 1, ChipsPerChannel: 0, BlocksPerChip: 1, WordLinesPerBlock: 1, PageSizeBytes: 1},
		{Channels: 1, ChipsPerChannel: 1, BlocksPerChip: 0, WordLinesPerBlock: 1, PageSizeBytes: 1},
		{Channels: 1, ChipsPerChannel: 1, BlocksPerChip: 1, WordLinesPerBlock: 0, PageSizeBytes: 1},
		{Channels: 1, ChipsPerChannel: 1, BlocksPerChip: 1, WordLinesPerBlock: 1, PageSizeBytes: 0},
		{Channels: 1, ChipsPerChannel: 1, BlocksPerChip: 1, WordLinesPerBlock: 1, PageSizeBytes: 1, SpareBytes: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, g)
		}
	}
}

func TestChannelOf(t *testing.T) {
	g := DefaultGeometry()
	if g.ChannelOf(0) != 0 || g.ChannelOf(3) != 0 || g.ChannelOf(4) != 1 || g.ChannelOf(31) != 7 {
		t.Error("ChannelOf mapping wrong")
	}
}

func TestPPNRoundTrip(t *testing.T) {
	g := TestGeometry()
	seen := make(map[PPN]bool)
	for chip := 0; chip < g.Chips(); chip++ {
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			for idx := 0; idx < g.PagesPerBlock(); idx++ {
				a := PageAddr{
					BlockAddr: BlockAddr{Chip: chip, Block: blk},
					Page:      core.PageFromIndex(idx, g.WordLinesPerBlock),
				}
				ppn := g.PPNOf(a)
				if ppn < 0 || int64(ppn) >= int64(g.TotalPages()) {
					t.Fatalf("PPN %d out of range for %v", ppn, a)
				}
				if seen[ppn] {
					t.Fatalf("PPN %d duplicated", ppn)
				}
				seen[ppn] = true
				if back := g.AddrOfPPN(ppn); back != a {
					t.Fatalf("round trip %v -> %d -> %v", a, ppn, back)
				}
			}
		}
	}
	if len(seen) != g.TotalPages() {
		t.Errorf("covered %d PPNs, want %d", len(seen), g.TotalPages())
	}
}

func TestPPNRoundTripPropertyDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint64) bool {
		ppn := PPN(raw % uint64(g.TotalPages()))
		return g.PPNOf(g.AddrOfPPN(ppn)) == ppn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTimingDefaults(t *testing.T) {
	tm := DefaultTiming()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm.Asymmetry() != 4.0 {
		t.Errorf("asymmetry = %v, want 4.0 (2000us/500us)", tm.Asymmetry())
	}
}

func TestTimingValidate(t *testing.T) {
	tm := DefaultTiming()
	tm.ProgMSB = tm.ProgLSB / 2
	if err := tm.Validate(); err == nil {
		t.Error("inverted asymmetry accepted")
	}
	tm = DefaultTiming()
	tm.Read = 0
	if err := tm.Validate(); err == nil {
		t.Error("zero read latency accepted")
	}
	tm = DefaultTiming()
	tm.BusXfer = -1
	if err := tm.Validate(); err == nil {
		t.Error("negative bus transfer accepted")
	}
}
