package nand

import (
	"bytes"
	"errors"
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/obs"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

func testDevice(t *testing.T, rules core.RuleSet) *Device {
	t.Helper()
	d, err := NewDevice(Config{Geometry: TestGeometry(), Timing: DefaultTiming(), Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func addr(chip, block, wl int, typ core.PageType) PageAddr {
	return PageAddr{BlockAddr: BlockAddr{Chip: chip, Block: block}, Page: core.Page{WL: wl, Type: typ}}
}

func TestNewDeviceRejectsBadConfig(t *testing.T) {
	if _, err := NewDevice(Config{Geometry: Geometry{}, Timing: DefaultTiming()}); err == nil {
		t.Error("zero geometry accepted")
	}
	if _, err := NewDevice(Config{Geometry: TestGeometry(), Timing: Timing{}}); err == nil {
		t.Error("zero timing accepted")
	}
}

func TestNilRulesDefaultsToFPS(t *testing.T) {
	d := testDevice(t, nil)
	if d.Rules().Name() != "FPS" {
		t.Errorf("default rules = %s, want FPS", d.Rules().Name())
	}
}

// TestLatencyAsymmetry reproduces the Figure 1 premise: an MSB program takes
// 4x the LSB program on an idle chip.
func TestLatencyAsymmetry(t *testing.T) {
	d := testDevice(t, core.RPS)
	tm := d.Timing()
	doneLSB, err := d.Program(addr(0, 0, 0, core.LSB), []byte("a"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if doneLSB != tm.BusXfer+tm.ProgLSB {
		t.Errorf("LSB done = %v, want %v", doneLSB, tm.BusXfer+tm.ProgLSB)
	}
	// Fill prerequisites for MSB(0): LSB(1).
	done2, err := d.Program(addr(0, 0, 1, core.LSB), []byte("b"), nil, doneLSB)
	if err != nil {
		t.Fatal(err)
	}
	doneMSB, err := d.Program(addr(0, 0, 0, core.MSB), []byte("c"), nil, done2)
	if err != nil {
		t.Fatal(err)
	}
	if got := doneMSB - done2; got != tm.BusXfer+tm.ProgMSB {
		t.Errorf("MSB latency = %v, want %v", got, tm.BusXfer+tm.ProgMSB)
	}
}

func TestProgramEnforcesRules(t *testing.T) {
	d := testDevice(t, core.RPS)
	// MSB(0) first must fail under RPS (needs LSB(0), LSB(1)).
	if _, err := d.Program(addr(0, 0, 0, core.MSB), nil, nil, 0); err == nil {
		t.Fatal("illegal program accepted")
	}
	var cv *core.ConstraintViolation
	_, err := d.Program(addr(0, 0, 1, core.LSB), nil, nil, 0)
	if !errors.As(err, &cv) || cv.Constraint != 1 {
		t.Fatalf("expected Constraint 1 violation, got %v", err)
	}
	// FPS device rejects RPSfull order at the third LSB.
	df := testDevice(t, core.FPS)
	mustProgram(t, df, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, df, addr(0, 0, 1, core.LSB), 0)
	_, err = df.Program(addr(0, 0, 2, core.LSB), nil, nil, 0)
	if !errors.As(err, &cv) || cv.Constraint != 4 {
		t.Fatalf("FPS device must enforce Constraint 4, got %v", err)
	}
	// An RPS device accepts the same program.
	dr := testDevice(t, core.RPS)
	mustProgram(t, dr, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, dr, addr(0, 0, 1, core.LSB), 0)
	mustProgram(t, dr, addr(0, 0, 2, core.LSB), 0)
}

func mustProgram(t *testing.T, d *Device, a PageAddr, now sim.Time) sim.Time {
	t.Helper()
	done, err := d.Program(a, []byte{byte(a.Page.WL)}, nil, now)
	if err != nil {
		t.Fatalf("program %v: %v", a, err)
	}
	return done
}

func TestReadBackPayloadAndSpare(t *testing.T) {
	d := testDevice(t, core.RPS)
	data := []byte("hello page payload")
	spare := []byte{0xde, 0xad}
	if _, err := d.Program(addr(0, 0, 0, core.LSB), data, spare, 0); err != nil {
		t.Fatal(err)
	}
	got, gotSpare, done, err := d.Read(addr(0, 0, 0, core.LSB), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || !bytes.Equal(gotSpare, spare) {
		t.Error("read back mismatch")
	}
	if done <= 0 {
		t.Error("read completion not after start")
	}
	// Mutating the returned slice must not affect the stored copy.
	got[0] = 'X'
	got2, _, _, _ := d.Read(addr(0, 0, 0, core.LSB), done)
	if got2[0] != 'h' {
		t.Error("Read returned aliased storage")
	}
}

func TestReadErasedPage(t *testing.T) {
	d := testDevice(t, core.RPS)
	_, _, _, err := d.Read(addr(0, 0, 0, core.LSB), 0)
	if !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("err = %v, want ErrNotProgrammed", err)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	d := testDevice(t, core.RPS)
	big := make([]byte, TestGeometry().PageSizeBytes+1)
	if _, err := d.Program(addr(0, 0, 0, core.LSB), big, nil, 0); err == nil {
		t.Error("oversized payload accepted")
	}
	spare := make([]byte, TestGeometry().SpareBytes+1)
	if _, err := d.Program(addr(0, 0, 0, core.LSB), nil, spare, 0); err == nil {
		t.Error("oversized spare accepted")
	}
}

func TestChipSerialization(t *testing.T) {
	d := testDevice(t, core.RPS)
	tm := d.Timing()
	// Two programs to the same chip issued at t=0 must serialize.
	d1 := mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	d2 := mustProgram(t, d, addr(0, 0, 1, core.LSB), 0)
	if d2 <= d1 {
		t.Errorf("same-chip programs overlapped: %v then %v", d1, d2)
	}
	want := 2 * (tm.BusXfer + tm.ProgLSB)
	if d2 != want {
		t.Errorf("second program done = %v, want %v", d2, want)
	}
}

func TestDifferentChannelsParallel(t *testing.T) {
	g := TestGeometry()
	d := testDevice(t, core.RPS)
	tm := d.Timing()
	otherChip := g.ChipsPerChannel // first chip of channel 1
	d1 := mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	d2 := mustProgram(t, d, addr(otherChip, 0, 0, core.LSB), 0)
	if d1 != d2 || d1 != tm.BusXfer+tm.ProgLSB {
		t.Errorf("cross-channel programs not parallel: %v vs %v", d1, d2)
	}
}

func TestSameChannelBusContention(t *testing.T) {
	g := TestGeometry()
	if g.ChipsPerChannel < 2 {
		t.Skip("needs 2 chips per channel")
	}
	d := testDevice(t, core.RPS)
	tm := d.Timing()
	// Chips 0 and 1 share channel 0: second transfer waits for the bus but
	// the cell programs overlap.
	d1 := mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	d2 := mustProgram(t, d, addr(1, 0, 0, core.LSB), 0)
	if d1 != tm.BusXfer+tm.ProgLSB {
		t.Errorf("first done = %v", d1)
	}
	if want := 2*tm.BusXfer + tm.ProgLSB; d2 != want {
		t.Errorf("second done = %v, want %v (bus serialized, cells parallel)", d2, want)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	d := testDevice(t, core.RPS)
	a := addr(0, 0, 0, core.LSB)
	mustProgram(t, d, a, 0)
	if !d.IsProgrammed(a) {
		t.Fatal("page not programmed")
	}
	done, err := d.Erase(BlockAddr{Chip: 0, Block: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Error("erase has zero latency")
	}
	if d.IsProgrammed(a) {
		t.Error("page survived erase")
	}
	if d.EraseCount(BlockAddr{Chip: 0, Block: 0}) != 1 {
		t.Error("erase count not incremented")
	}
	// The page can be programmed again after the erase.
	mustProgram(t, d, a, done)
}

func TestEraseBudgetRetiresBlock(t *testing.T) {
	cfg := Config{Geometry: TestGeometry(), Timing: DefaultTiming(), Rules: core.RPS, EraseBudget: 2}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ba := BlockAddr{Chip: 0, Block: 0}
	now := sim.Time(0)
	for i := 0; i < 2; i++ {
		now, err = d.Erase(ba, now)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Erase(ba, now); !errors.Is(err, ErrBadBlock) {
		t.Errorf("worn block erase err = %v, want ErrBadBlock", err)
	}
	if _, err := d.Program(addr(0, 0, 0, core.LSB), nil, nil, now); !errors.Is(err, ErrBadBlock) {
		t.Errorf("worn block program err = %v, want ErrBadBlock", err)
	}
}

func TestOpCounts(t *testing.T) {
	d := testDevice(t, core.RPS)
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 1, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 0, core.MSB), 0)
	if _, _, _, err := d.Read(addr(0, 0, 0, core.LSB), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Erase(BlockAddr{Chip: 0, Block: 1}, 0); err != nil {
		t.Fatal(err)
	}
	c := d.Counts()
	if c.ProgramsLSB != 2 || c.ProgramsMSB != 1 || c.Reads != 1 || c.Erases != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.Programs() != 3 {
		t.Errorf("Programs() = %d", c.Programs())
	}
	if d.TotalErases() != 1 {
		t.Errorf("TotalErases() = %d", d.TotalErases())
	}
}

func TestWearStats(t *testing.T) {
	d := testDevice(t, core.RPS)
	if w := d.Wear(); w.Min != 0 || w.Max != 0 || w.Mean != 0 || w.Imbalance != 0 {
		t.Errorf("fresh device wear = %+v", w)
	}
	now := sim.Time(0)
	var err error
	for i := 0; i < 3; i++ {
		now, err = d.Erase(BlockAddr{Chip: 0, Block: 0}, now)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Erase(BlockAddr{Chip: 0, Block: 1}, now); err != nil {
		t.Fatal(err)
	}
	w := d.Wear()
	if w.Min != 0 || w.Max != 3 {
		t.Errorf("wear min/max = %d/%d", w.Min, w.Max)
	}
	wantMean := 4.0 / float64(d.Geometry().TotalBlocks())
	if w.Mean != wantMean {
		t.Errorf("wear mean = %v, want %v", w.Mean, wantMean)
	}
	if w.Imbalance != 3/wantMean {
		t.Errorf("imbalance = %v", w.Imbalance)
	}
}

func TestPowerLossDuringMSBProgram(t *testing.T) {
	d := testDevice(t, core.RPS)
	lsb0 := addr(0, 0, 0, core.LSB)
	lsb1 := addr(0, 0, 1, core.LSB)
	msb0 := addr(0, 0, 0, core.MSB)
	mustProgram(t, d, lsb0, 0)
	mustProgram(t, d, lsb1, 0)
	mustProgram(t, d, msb0, 0)
	// Power cut before the MSB program is acknowledged: LSB(0) is destroyed.
	if !d.InjectPowerLoss(BlockAddr{Chip: 0, Block: 0}) {
		t.Fatal("power loss found no in-flight MSB program")
	}
	if _, _, _, err := d.Read(lsb0, 0); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("paired LSB read err = %v, want ErrUncorrectable", err)
	}
	if _, _, _, err := d.Read(msb0, 0); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("interrupted MSB read err = %v, want ErrUncorrectable", err)
	}
	// LSB(1) is unaffected.
	if _, _, _, err := d.Read(lsb1, 0); err != nil {
		t.Errorf("unrelated LSB damaged: %v", err)
	}
}

func TestAckProtectsAgainstPowerLoss(t *testing.T) {
	d := testDevice(t, core.RPS)
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 1, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 0, core.MSB), 0)
	d.AckProgram(BlockAddr{Chip: 0, Block: 0})
	if d.InjectPowerLoss(BlockAddr{Chip: 0, Block: 0}) {
		t.Error("acknowledged MSB program still vulnerable")
	}
	if _, _, _, err := d.Read(addr(0, 0, 0, core.LSB), 0); err != nil {
		t.Errorf("LSB damaged after safe completion: %v", err)
	}
}

func TestLSBProgramOpensNoWindow(t *testing.T) {
	// A power cut while only LSB programs are in flight loses nothing that
	// was previously durable (LSB programming is not destructive to other
	// pages).
	d := testDevice(t, core.RPS)
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	if d.InjectPowerLoss(BlockAddr{Chip: 0, Block: 0}) {
		t.Error("LSB program flagged as destructive")
	}
	if _, open := d.OpenMSBWindow(0); open {
		t.Error("LSB program opened a destructive window")
	}
}

func TestLSBProgramKeepsWindowOpen(t *testing.T) {
	// Regression: an LSB program after an unacknowledged MSB program used to
	// silently close the destructive window, hiding the power-loss hazard
	// under interleaved FPS orders. The window must survive until AckProgram.
	d := testDevice(t, core.RPS)
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 1, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 0, core.MSB), 0)
	mustProgram(t, d, addr(0, 0, 2, core.LSB), 0) // interleaved LSB elsewhere
	if w, open := d.OpenMSBWindow(0); !open || w != addr(0, 0, 0, core.MSB) {
		t.Fatalf("window after interleaved LSB = %v (open=%v), want MSB(0) open", w, open)
	}
	if !d.InjectPowerLoss(BlockAddr{Chip: 0, Block: 0}) {
		t.Fatal("power cut found no window despite unacked MSB program")
	}
	if _, _, _, err := d.Read(addr(0, 0, 0, core.LSB), 0); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("paired LSB read err = %v, want ErrUncorrectable", err)
	}
	// The interleaved LSB itself is unharmed.
	if _, _, _, err := d.Read(addr(0, 0, 2, core.LSB), 0); err != nil {
		t.Errorf("interleaved LSB damaged: %v", err)
	}
}

func TestNewerMSBProgramSupersedesWindow(t *testing.T) {
	// The chip serializes programs, so a second MSB program means the first
	// completed; the window moves to the newest MSB program.
	d := testDevice(t, core.RPS)
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 1, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 2, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 0, core.MSB), 0)
	mustProgram(t, d, addr(0, 0, 1, core.MSB), 0)
	w, open := d.OpenMSBWindow(0)
	if !open || w != addr(0, 0, 1, core.MSB) {
		t.Fatalf("window = %v (open=%v), want MSB(1) open", w, open)
	}
	if !d.InjectPowerLoss(BlockAddr{Chip: 0, Block: 0}) {
		t.Fatal("no injection on open window")
	}
	// Only the newest pair is lost.
	if _, _, _, err := d.Read(addr(0, 0, 1, core.LSB), 0); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("LSB(1) read err = %v, want ErrUncorrectable", err)
	}
	if _, _, _, err := d.Read(addr(0, 0, 0, core.LSB), 0); err != nil {
		t.Errorf("LSB(0) of completed pair damaged: %v", err)
	}
}

func TestEraseClosesChipWindow(t *testing.T) {
	// The erase barrier: an erase anywhere on the chip serialized after the
	// pending MSB program, so that program's destructive transient is over.
	d := testDevice(t, core.RPS)
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 1, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 0, core.MSB), 0)
	if _, err := d.Erase(BlockAddr{Chip: 0, Block: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, open := d.OpenMSBWindow(0); open {
		t.Error("window survived an erase on the same chip")
	}
	if d.InjectPowerLoss(BlockAddr{Chip: 0, Block: 0}) {
		t.Error("power cut corrupted pages after the erase barrier")
	}
}

func TestAckOtherBlockLeavesWindowOpen(t *testing.T) {
	d := testDevice(t, core.RPS)
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 1, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 0, core.MSB), 0)
	d.AckProgram(BlockAddr{Chip: 0, Block: 5}) // wrong block: no-op
	if _, open := d.OpenMSBWindow(0); !open {
		t.Error("ack of an unrelated block closed the window")
	}
}

func TestCorruptPage(t *testing.T) {
	d := testDevice(t, core.RPS)
	a := addr(0, 0, 0, core.LSB)
	if err := d.CorruptPage(a); err == nil {
		t.Error("corrupting erased page succeeded")
	}
	mustProgram(t, d, a, 0)
	if err := d.CorruptPage(a); err != nil {
		t.Fatal(err)
	}
	if !d.IsCorrupted(a) {
		t.Error("IsCorrupted false after CorruptPage")
	}
	if _, _, _, err := d.Read(a, 0); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("read err = %v", err)
	}
	// Erase clears corruption.
	if _, err := d.Erase(a.BlockAddr, 0); err != nil {
		t.Fatal(err)
	}
	if d.IsCorrupted(a) {
		t.Error("corruption survived erase")
	}
}

func TestOutOfRangeAddresses(t *testing.T) {
	d := testDevice(t, core.RPS)
	cases := []PageAddr{
		addr(-1, 0, 0, core.LSB),
		addr(99, 0, 0, core.LSB),
		addr(0, -1, 0, core.LSB),
		addr(0, 999, 0, core.LSB),
		addr(0, 0, -1, core.LSB),
		addr(0, 0, 999, core.LSB),
	}
	for _, a := range cases {
		if _, err := d.Program(a, nil, nil, 0); err == nil {
			t.Errorf("program %v accepted", a)
		}
		if _, _, _, err := d.Read(a, 0); err == nil {
			t.Errorf("read %v accepted", a)
		}
	}
	if _, err := d.Erase(BlockAddr{Chip: 0, Block: -1}, 0); err == nil {
		t.Error("erase of bad block address accepted")
	}
	if d.EraseCount(BlockAddr{Chip: -5, Block: 0}) != 0 {
		t.Error("EraseCount of bad address nonzero")
	}
	if d.BlockStateSnapshot(BlockAddr{Chip: -5, Block: 0}) != nil {
		t.Error("BlockStateSnapshot of bad address non-nil")
	}
}

func TestBlockProgrammedPages(t *testing.T) {
	d := testDevice(t, core.RPS)
	ba := BlockAddr{Chip: 0, Block: 0}
	if d.BlockProgrammedPages(ba) != 0 {
		t.Error("fresh block reports programmed pages")
	}
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	mustProgram(t, d, addr(0, 0, 1, core.LSB), 0)
	if d.BlockProgrammedPages(ba) != 2 {
		t.Errorf("programmed pages = %d, want 2", d.BlockProgrammedPages(ba))
	}
	snap := d.BlockStateSnapshot(ba)
	if snap == nil || !snap.Written(core.Page{WL: 0, Type: core.LSB}) {
		t.Error("snapshot missing programmed page")
	}
}

func TestChipBusyTimeAccumulates(t *testing.T) {
	d := testDevice(t, core.RPS)
	mustProgram(t, d, addr(0, 0, 0, core.LSB), 0)
	if d.ChipBusyTime(0) <= 0 {
		t.Error("busy time not accumulated")
	}
	if d.ChipBusyTime(1) != 0 {
		t.Error("idle chip accumulated busy time")
	}
	if d.ChipReadyAt(0) <= 0 {
		t.Error("chip ready time not advanced")
	}
}

// Property: a full RPSfull block fill is accepted by an RPS device and every
// page reads back the written payload.
func TestFullBlockFillProperty(t *testing.T) {
	d := testDevice(t, core.RPS)
	g := d.Geometry()
	src := rng.New(77)
	payloads := make(map[core.Page]byte)
	now := sim.Time(0)
	for _, p := range core.RPSFullOrder(g.WordLinesPerBlock) {
		b := byte(src.Intn(256))
		payloads[p] = b
		var err error
		now, err = d.Program(PageAddr{BlockAddr: BlockAddr{0, 3}, Page: p}, []byte{b}, nil, now)
		if err != nil {
			t.Fatalf("program %v: %v", p, err)
		}
	}
	if d.BlockProgrammedPages(BlockAddr{0, 3}) != g.PagesPerBlock() {
		t.Fatal("block not full")
	}
	for p, want := range payloads {
		got, _, _, err := d.Read(PageAddr{BlockAddr: BlockAddr{0, 3}, Page: p}, now)
		if err != nil {
			t.Fatalf("read %v: %v", p, err)
		}
		if got[0] != want {
			t.Fatalf("page %v payload = %d, want %d", p, got[0], want)
		}
	}
}

func TestReadIntoMatchesRead(t *testing.T) {
	d := testDevice(t, core.RPS)
	a := addr(0, 0, 0, core.LSB)
	if _, err := d.Program(a, []byte("zero copy payload"), []byte{0x42, 0x24}, 0); err != nil {
		t.Fatal(err)
	}
	_, _, done1, err := d.Read(a, 0) // absorb the chip-busy wait
	if err != nil {
		t.Fatal(err)
	}
	data, spare, doneRead, err := d.Read(a, done1)
	if err != nil {
		t.Fatal(err)
	}
	var buf PageBuf
	doneInto, err := d.ReadInto(a, &buf, doneRead)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Data, data) || !bytes.Equal(buf.Spare, spare) {
		t.Error("ReadInto payload differs from Read")
	}
	if lr, li := doneRead-done1, doneInto-doneRead; li != lr {
		t.Errorf("ReadInto latency %v, Read latency %v", li, lr)
	}

	// Error behaviour matches Read, and the buffer is truncated.
	if _, err := d.ReadInto(addr(0, 0, 1, core.LSB), &buf, doneInto); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("erased ReadInto err = %v, want ErrNotProgrammed", err)
	}
	if len(buf.Data) != 0 || len(buf.Spare) != 0 {
		t.Error("buffer not truncated after failed ReadInto")
	}
}

// TestCauseAttribution: every unit of media busy time lands in the bucket of
// the ambient cause, SetCause save/restore nests, and the per-cause busy
// counters mirror the array when a recorder is attached.
func TestCauseAttribution(t *testing.T) {
	d := testDevice(t, core.RPS)
	rec := obs.NewRecorder(obs.Options{})
	d.SetRecorder(rec)
	tm := d.Timing()

	// Host (default cause) LSB program.
	done, err := d.Program(addr(0, 0, 0, core.LSB), []byte("a"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// GC-tagged read, with a nested backup-tagged program inside.
	prev := d.SetCause(obs.CauseGC)
	if prev != obs.CauseHost {
		t.Errorf("SetCause returned %v, want CauseHost", prev)
	}
	_, _, readDone, err := d.Read(addr(0, 0, 0, core.LSB), done)
	if err != nil {
		t.Fatal(err)
	}
	inner := d.SetCause(obs.CauseBackup)
	if inner != obs.CauseGC {
		t.Errorf("nested SetCause returned %v, want CauseGC", inner)
	}
	bkDone, err := d.Program(addr(0, 0, 1, core.LSB), []byte("b"), nil, readDone)
	if err != nil {
		t.Fatal(err)
	}
	d.SetCause(inner)
	if d.Cause() != obs.CauseGC {
		t.Errorf("cause after restore = %v, want CauseGC", d.Cause())
	}
	d.SetCause(prev)

	busy := d.CauseBusy()
	if want := tm.BusXfer + tm.ProgLSB; busy[obs.CauseHost] != want {
		t.Errorf("host busy = %v, want %v", busy[obs.CauseHost], want)
	}
	if want := readDone - done; busy[obs.CauseGC] != want {
		t.Errorf("gc busy = %v, want %v (read latency)", busy[obs.CauseGC], want)
	}
	if want := bkDone - readDone; busy[obs.CauseBackup] != want {
		t.Errorf("backup busy = %v, want %v", busy[obs.CauseBackup], want)
	}
	if busy[obs.CausePad] != 0 {
		t.Errorf("pad busy = %v, want 0 (never tagged)", busy[obs.CausePad])
	}

	// The chip's total busy time decomposes exactly into the cause buckets.
	var sum sim.Time
	for _, b := range busy {
		sum += b
	}
	if total := d.ChipBusyTime(0); sum != total {
		t.Errorf("cause buckets sum to %v, chip busy %v", sum, total)
	}

	// Registry counters mirror the array.
	snap := rec.Registry().Snapshot()
	for c := obs.CauseHost; c < obs.CauseCount; c++ {
		if got := snap.Counters[obs.BusyCounterName("nand", c)]; got != int64(busy[c]) {
			t.Errorf("counter %s = %d, array %d", obs.BusyCounterName("nand", c), got, busy[c])
		}
	}
}

// TestCauseBusyWithoutRecorder: attribution accumulates deterministically
// even with tracing off (the array is unconditional; only counters gate).
func TestCauseBusyWithoutRecorder(t *testing.T) {
	d := testDevice(t, core.RPS)
	d.SetCause(obs.CauseGC)
	if _, err := d.Program(addr(0, 0, 0, core.LSB), []byte("a"), nil, 0); err != nil {
		t.Fatal(err)
	}
	busy := d.CauseBusy()
	if busy[obs.CauseGC] == 0 {
		t.Error("gc busy not charged without recorder")
	}
	if busy[obs.CauseHost] != 0 {
		t.Errorf("host busy = %v, want 0", busy[obs.CauseHost])
	}
}

// TestReadIntoZeroAllocsWithRecorder guards the enabled steady state: reads
// with the ring recorder, latency histograms and cause counters all live
// must stay allocation-free.
func TestReadIntoZeroAllocsWithRecorder(t *testing.T) {
	d := testDevice(t, core.RPS)
	d.SetRecorder(obs.NewRecorder(obs.Options{}))
	a := addr(0, 0, 0, core.LSB)
	if _, err := d.Program(a, []byte("zero copy payload"), []byte{0x42}, 0); err != nil {
		t.Fatal(err)
	}
	var buf PageBuf
	now := sim.Time(0)
	if _, err := d.ReadInto(a, &buf, now); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		done, err := d.ReadInto(a, &buf, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	})
	if allocs != 0 {
		t.Errorf("instrumented ReadInto allocates %v times per read, want 0", allocs)
	}
}

func TestReadIntoZeroAllocs(t *testing.T) {
	d := testDevice(t, core.RPS)
	a := addr(0, 0, 0, core.LSB)
	if _, err := d.Program(a, []byte("zero copy payload"), []byte{0x42}, 0); err != nil {
		t.Fatal(err)
	}
	var buf PageBuf
	now := sim.Time(0)
	if _, err := d.ReadInto(a, &buf, now); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		done, err := d.ReadInto(a, &buf, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	})
	if allocs != 0 {
		t.Errorf("ReadInto allocates %v times per read, want 0", allocs)
	}
}
