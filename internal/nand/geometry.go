// Package nand models a multi-channel 2-bit MLC NAND flash subsystem at
// operation granularity: per-chip and per-channel busy timelines, LSB/MSB
// program latency asymmetry, program-order enforcement (FPS or RPS via
// internal/core), page payload storage with spare areas, erase/wear
// accounting, and sudden-power-off corruption of the paired LSB page during
// a destructive MSB program.
//
// The model stands in for the BlueDBM custom MLC NAND board the paper uses:
// every effect the paper's evaluation depends on — operation latencies,
// order legality, backup-write counts, channel contention — is captured at
// this granularity.
package nand

import (
	"fmt"

	"flexftl/internal/core"
)

// Geometry describes the physical organization of the device.
type Geometry struct {
	Channels          int // independent buses
	ChipsPerChannel   int // NAND dies sharing one bus
	BlocksPerChip     int
	WordLinesPerBlock int // pages per block = 2 * word lines (2-bit MLC)
	PageSizeBytes     int // logical page payload size (host-visible)
	SpareBytes        int // out-of-band spare area per page
}

// DefaultGeometry is the paper's 16 GB BlueDBM configuration: 8 channels x 4
// chips, 512 blocks per chip, 256 pages (128 word lines) of 4 KB per block.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:          8,
		ChipsPerChannel:   4,
		BlocksPerChip:     512,
		WordLinesPerBlock: 128,
		PageSizeBytes:     4096,
		SpareBytes:        64,
	}
}

// TestGeometry is a small configuration for unit tests: 2 channels x 2
// chips, 32 blocks per chip, 8 word lines.
func TestGeometry() Geometry {
	return Geometry{
		Channels:          2,
		ChipsPerChannel:   2,
		BlocksPerChip:     32,
		WordLinesPerBlock: 8,
		PageSizeBytes:     64,
		SpareBytes:        16,
	}
}

// Validate reports a descriptive error for an unusable geometry.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("nand: geometry needs >= 1 channel, got %d", g.Channels)
	case g.ChipsPerChannel <= 0:
		return fmt.Errorf("nand: geometry needs >= 1 chip per channel, got %d", g.ChipsPerChannel)
	case g.BlocksPerChip <= 0:
		return fmt.Errorf("nand: geometry needs >= 1 block per chip, got %d", g.BlocksPerChip)
	case g.WordLinesPerBlock <= 0:
		return fmt.Errorf("nand: geometry needs >= 1 word line per block, got %d", g.WordLinesPerBlock)
	case g.PageSizeBytes <= 0:
		return fmt.Errorf("nand: geometry needs positive page size, got %d", g.PageSizeBytes)
	case g.SpareBytes < 0:
		return fmt.Errorf("nand: negative spare size %d", g.SpareBytes)
	}
	return nil
}

// Chips returns the total number of chips.
func (g Geometry) Chips() int { return g.Channels * g.ChipsPerChannel }

// PagesPerBlock returns 2 * WordLinesPerBlock.
func (g Geometry) PagesPerBlock() int { return 2 * g.WordLinesPerBlock }

// LSBPagesPerBlock returns the number of fast pages per block.
func (g Geometry) LSBPagesPerBlock() int { return g.WordLinesPerBlock }

// PagesPerChip returns the number of pages on one chip.
func (g Geometry) PagesPerChip() int { return g.BlocksPerChip * g.PagesPerBlock() }

// TotalBlocks returns the number of blocks in the device.
func (g Geometry) TotalBlocks() int { return g.Chips() * g.BlocksPerChip }

// TotalPages returns the number of physical pages in the device.
func (g Geometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock() }

// CapacityBytes returns the raw capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.TotalPages()) * int64(g.PageSizeBytes)
}

// ChannelOf returns the channel a chip is attached to.
func (g Geometry) ChannelOf(chip int) int { return chip / g.ChipsPerChannel }

// String summarizes the geometry.
func (g Geometry) String() string {
	return fmt.Sprintf("%dch x %dchips, %d blocks/chip, %d pages/block, %dB pages (%.1f GB)",
		g.Channels, g.ChipsPerChannel, g.BlocksPerChip, g.PagesPerBlock(), g.PageSizeBytes,
		float64(g.CapacityBytes())/(1<<30))
}

// BlockAddr identifies a physical block.
type BlockAddr struct {
	Chip  int
	Block int
}

// String formats the address.
func (b BlockAddr) String() string { return fmt.Sprintf("chip%d/blk%d", b.Chip, b.Block) }

// PageAddr identifies a physical page by block plus in-block page.
type PageAddr struct {
	BlockAddr
	Page core.Page
}

// String formats the address.
func (p PageAddr) String() string {
	return fmt.Sprintf("%s/%v", p.BlockAddr, p.Page)
}

// PPN is a flat physical page number, used as a compact mapping-table value.
type PPN int64

// InvalidPPN marks an unmapped entry.
const InvalidPPN PPN = -1

// PPNOf flattens a page address. Layout: ((chip*blocksPerChip)+block)*
// pagesPerBlock + pageIndex, where pageIndex is core.Page.Index.
func (g Geometry) PPNOf(a PageAddr) PPN {
	return PPN((int64(a.Chip)*int64(g.BlocksPerChip)+int64(a.Block))*int64(g.PagesPerBlock()) +
		int64(a.Page.Index(g.WordLinesPerBlock)))
}

// AddrOfPPN inverts PPNOf.
func (g Geometry) AddrOfPPN(ppn PPN) PageAddr {
	if ppn < 0 {
		panic("nand: AddrOfPPN of invalid PPN")
	}
	pp := int64(g.PagesPerBlock())
	pageIdx := int(int64(ppn) % pp)
	blockFlat := int64(ppn) / pp
	return PageAddr{
		BlockAddr: BlockAddr{
			Chip:  int(blockFlat / int64(g.BlocksPerChip)),
			Block: int(blockFlat % int64(g.BlocksPerChip)),
		},
		Page: core.PageFromIndex(pageIdx, g.WordLinesPerBlock),
	}
}
