package par

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestRunCoversEveryTaskOnce: every task index runs exactly once, whatever
// the worker count.
func TestRunCoversEveryTaskOnce(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 8, 200} {
		counts := make([]atomic.Int32, n)
		if err := Run(workers, n, func(worker, task int) error {
			counts[task].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestRunBoundsConcurrency: at most `workers` tasks are ever in flight.
func TestRunBoundsConcurrency(t *testing.T) {
	const n, workers = 64, 3
	var inFlight, peak atomic.Int32
	err := Run(workers, n, func(worker, task int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestRunWorkerIndexes: worker indexes stay in [0, workers) so per-worker
// scratch arrays are safe, and a worker never runs two tasks at once.
func TestRunWorkerIndexes(t *testing.T) {
	const n, workers = 200, 4
	busy := make([]atomic.Bool, workers)
	err := Run(workers, n, func(worker, task int) error {
		if worker < 0 || worker >= workers {
			return fmt.Errorf("worker index %d out of range", worker)
		}
		if !busy[worker].CompareAndSwap(false, true) {
			return fmt.Errorf("worker %d re-entered concurrently", worker)
		}
		defer busy[worker].Store(false)
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunFirstErrorByIndex: among failing tasks that executed, the
// lowest-index error is returned, serial and parallel alike.
func TestRunFirstErrorByIndex(t *testing.T) {
	errs := map[int]error{
		10: errors.New("task 10 failed"),
		40: errors.New("task 40 failed"),
	}
	for _, workers := range []int{1, 8} {
		err := Run(workers, 50, func(worker, task int) error { return errs[task] })
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// Task 10 always executes (hand-outs stop only after a failure is
		// observed, and with 8 workers task 10 is handed out before any
		// later task can fail and win the race back to index 10's slot —
		// but the contract only promises lowest-index among executed, so
		// accept either recorded error, not an arbitrary one).
		if err != errs[10] && err != errs[40] {
			t.Errorf("workers=%d: unexpected error %v", workers, err)
		}
		if workers == 1 && err != errs[10] {
			t.Errorf("serial run returned %v, want task 10's error", err)
		}
	}
}

// TestRunStopsHandingOutAfterError: a failure prevents (most) later tasks
// from starting — the pool does not grind through the whole task space.
func TestRunStopsHandingOutAfterError(t *testing.T) {
	const n = 10_000
	var ran atomic.Int32
	boom := errors.New("boom")
	err := Run(2, n, func(worker, task int) error {
		ran.Add(1)
		if task == 0 {
			return boom
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got > n/10 {
		t.Errorf("%d of %d tasks ran after early failure", got, n)
	}
}

// TestMapDeterministicOrder: results land in task order regardless of
// worker count, so parallel experiment output equals serial output.
func TestMapDeterministicOrder(t *testing.T) {
	const n = 500
	squares := func(workers int) []int {
		out, err := Map(workers, n, func(worker, task int) (int, error) {
			return task * task, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := squares(1)
	for _, workers := range []int{2, 7, 32} {
		if got := squares(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: results differ from serial", workers)
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(4, 10, func(worker, task int) (int, error) {
		if task == 3 {
			return 0, boom
		}
		return task, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestRunEmptyAndTiny(t *testing.T) {
	if err := Run(8, 0, func(worker, task int) error { t.Error("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := 0
	if err := Run(8, 1, func(worker, task int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("single task ran %d times", ran)
	}
}

func TestMakeScratch(t *testing.T) {
	built := 0
	s := MakeScratch(3, func() *int { built++; v := built; return &v })
	if len(s) != 3 || built != 3 {
		t.Fatalf("len=%d built=%d", len(s), built)
	}
	if s[0] == s[1] {
		t.Error("scratch slots share a value")
	}
}
