// Package par is the shared parallel-execution engine of the experiment
// drivers: a bounded worker pool over an indexed task space with
// deterministic result collection.
//
// The design makes parallel runs byte-identical to serial ones:
//
//   - Tasks are identified by index; each task writes its outputs into
//     pre-allocated, task-indexed slots, so results are ordered by task
//     index no matter which worker ran them or in what interleaving.
//   - Callbacks receive the worker index as well, so callers can keep one
//     scratch arena (or other reusable state) per worker instead of
//     allocating per task — a worker never runs two tasks concurrently.
//   - Randomness must be derived per task (seed = f(task)), never drawn
//     from a stream shared across tasks.
//
// Under that contract, Run(1, ...) and Run(N, ...) produce identical
// results, which the experiment determinism tests assert.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n > 0 is used as given, anything
// else (0 or negative) defaults to GOMAXPROCS. The experiment configs and
// the flexbench -workers flag all funnel through this, so "unset" means
// "use every core" everywhere.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(worker, task) for every task in [0, n) on at most
// Workers(workers) goroutines and blocks until all started tasks finish.
//
// Error aggregation is first-by-index: if tasks fail, Run returns the error
// of the lowest-index failing task among those executed, and stops handing
// out new tasks after the first failure is observed (tasks already running
// complete). With workers <= 1 the tasks run inline on the calling
// goroutine, in index order, stopping at the first error — no goroutines
// are spawned, so serial runs stay trivially race- and scheduler-free.
func Run(workers, n int, fn func(worker, task int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64 // task hand-out cursor
		failed atomic.Bool  // set on first error; stops new hand-outs
		wg     sync.WaitGroup
		mu     sync.Mutex
		errAt  = -1 // lowest failing task index
		errVal error
	)
	record := func(task int, err error) {
		mu.Lock()
		if errAt == -1 || task < errAt {
			errAt, errVal = task, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(w)
	for worker := 0; worker < w; worker++ {
		go func(worker int) {
			defer wg.Done()
			for !failed.Load() {
				task := int(next.Add(1)) - 1
				if task >= n {
					return
				}
				if err := fn(worker, task); err != nil {
					record(task, err)
					return
				}
			}
		}(worker)
	}
	wg.Wait()
	return errVal
}

// Map runs fn over [0, n) with Run's scheduling and error contract and
// collects the results in task order. On error the returned slice is nil.
func Map[T any](workers, n int, fn func(worker, task int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(workers, n, func(worker, task int) error {
		v, err := fn(worker, task)
		if err != nil {
			return err
		}
		out[task] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MakeScratch builds one scratch value per worker slot for a Run/Map call
// with the same workers setting. Worker indexes passed to fn are always in
// [0, Workers(workers)), so scratch[worker] is data-race-free: a worker
// runs one task at a time.
func MakeScratch[T any](workers int, build func() T) []T {
	out := make([]T, Workers(workers))
	for i := range out {
		out[i] = build()
	}
	return out
}
