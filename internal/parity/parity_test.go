package parity

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"flexftl/internal/rng"
)

func TestEmptyBuffer(t *testing.T) {
	b := New(8)
	if b.Width() != 8 || b.Count() != 0 {
		t.Fatal("fresh buffer state wrong")
	}
	snap := b.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot width %d", len(snap))
	}
	for _, v := range snap {
		if v != 0 {
			t.Fatal("fresh buffer not zero")
		}
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAddRemoveRoundTrip(t *testing.T) {
	b := New(4)
	p1 := []byte{1, 2, 3, 4}
	p2 := []byte{0xff, 0x00, 0xaa, 0x55}
	if err := b.Add(p1); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(p2); err != nil {
		t.Fatal(err)
	}
	if b.Count() != 2 {
		t.Errorf("count = %d", b.Count())
	}
	want := []byte{1 ^ 0xff, 2, 3 ^ 0xaa, 4 ^ 0x55}
	if !bytes.Equal(b.Snapshot(), want) {
		t.Errorf("snapshot = %v, want %v", b.Snapshot(), want)
	}
	if err := b.Remove(p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Snapshot(), p1) || b.Count() != 1 {
		t.Error("Remove did not undo Add")
	}
}

func TestShortPageZeroPadded(t *testing.T) {
	b := New(4)
	if err := b.Add([]byte{0xff}); err != nil {
		t.Fatal(err)
	}
	want := []byte{0xff, 0, 0, 0}
	if !bytes.Equal(b.Snapshot(), want) {
		t.Errorf("snapshot = %v, want %v", b.Snapshot(), want)
	}
}

func TestWidthMismatch(t *testing.T) {
	b := New(2)
	if err := b.Add([]byte{1, 2, 3}); !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("Add err = %v", err)
	}
	if err := b.Remove([]byte{1, 2, 3}); !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("Remove err = %v", err)
	}
}

func TestRemoveEmpty(t *testing.T) {
	b := New(2)
	if err := b.Remove([]byte{1}); err == nil {
		t.Error("Remove on empty accumulator succeeded")
	}
}

func TestReset(t *testing.T) {
	b := New(2)
	if err := b.Add([]byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Error("count after Reset")
	}
	for _, v := range b.Snapshot() {
		if v != 0 {
			t.Error("accumulator not cleared")
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	b := New(2)
	if err := b.Add([]byte{7, 7}); err != nil {
		t.Fatal(err)
	}
	s := b.Snapshot()
	s[0] = 0
	if b.Snapshot()[0] != 7 {
		t.Error("Snapshot aliased internal state")
	}
}

// TestRecoverOnePage is the Section 3.3 scenario: N LSB pages protected by
// one parity page; one page lost; Recover reconstructs it.
func TestRecoverOnePage(t *testing.T) {
	src := rng.New(1)
	const width = 64
	const n = 128 // all LSB pages of a 128-word-line block
	pages := make([][]byte, n)
	b := New(width)
	for i := range pages {
		pages[i] = make([]byte, width)
		for j := range pages[i] {
			pages[i][j] = byte(src.Intn(256))
		}
		if err := b.Add(pages[i]); err != nil {
			t.Fatal(err)
		}
	}
	parityPage := b.Snapshot()
	for _, lost := range []int{0, 17, n - 1} {
		survivors := make([][]byte, 0, n-1)
		for i, p := range pages {
			if i != lost {
				survivors = append(survivors, p)
			}
		}
		got, err := Recover(parityPage, survivors)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pages[lost]) {
			t.Errorf("recovered page %d mismatch", lost)
		}
	}
}

func TestRecoverWidthMismatch(t *testing.T) {
	if _, err := Recover([]byte{1}, [][]byte{{1, 2}}); !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("err = %v", err)
	}
}

// Property: for random page sets, parity of all pages XOR parity of all but
// one equals the remaining page.
func TestRecoverProperty(t *testing.T) {
	f := func(seed uint64, nRaw, widthRaw uint8) bool {
		n := 2 + int(nRaw%30)
		width := 1 + int(widthRaw%60)
		src := rng.New(seed)
		pages := make([][]byte, n)
		b := New(width)
		for i := range pages {
			pages[i] = make([]byte, width)
			for j := range pages[i] {
				pages[i][j] = byte(src.Intn(256))
			}
			if b.Add(pages[i]) != nil {
				return false
			}
		}
		lost := src.Intn(n)
		survivors := make([][]byte, 0, n-1)
		for i, p := range pages {
			if i != lost {
				survivors = append(survivors, p)
			}
		}
		got, err := Recover(b.Snapshot(), survivors)
		return err == nil && bytes.Equal(got, pages[lost])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Add then Remove of the same random page restores the exact
// accumulator state.
func TestAddRemoveInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		b := New(16)
		base := make([]byte, 16)
		for j := range base {
			base[j] = byte(src.Intn(256))
		}
		if b.Add(base) != nil {
			return false
		}
		before := b.Snapshot()
		extra := make([]byte, 16)
		for j := range extra {
			extra[j] = byte(src.Intn(256))
		}
		if b.Add(extra) != nil || b.Remove(extra) != nil {
			return false
		}
		return bytes.Equal(before, b.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
