// Package parity implements the XOR parity-page accumulator used by the
// paired-page backup schemes: flexFTL's per-block parity page (one parity
// page protecting all LSB pages of a block, Section 3.3) and parityFTL's
// per-2-pages pre-backup parity. XOR parity can reconstruct exactly one lost
// page from the surviving members plus the parity page.
package parity

import (
	"errors"
	"fmt"
)

// ErrWidthMismatch is returned when a page of a different width is added to
// a non-empty accumulator.
var ErrWidthMismatch = errors.New("parity: page width mismatch")

// Buffer accumulates the XOR of a set of equal-width pages. The zero value
// (or New) is an empty accumulator. XOR's self-inverse property means Add is
// also how a member is removed from the set.
type Buffer struct {
	acc   []byte
	width int
	count int
}

// New returns an empty accumulator for pages of the given width.
func New(width int) *Buffer {
	if width <= 0 {
		panic("parity: width must be positive")
	}
	return &Buffer{acc: make([]byte, width), width: width}
}

// Width returns the page width.
func (b *Buffer) Width() int { return b.width }

// Count returns how many pages have been accumulated (net of removals: each
// Add increments it, each Remove decrements it).
func (b *Buffer) Count() int { return b.count }

// Add XORs a page into the accumulator. Pages shorter than the width are
// implicitly zero-padded, matching how a NAND page is programmed with a
// short payload.
func (b *Buffer) Add(page []byte) error {
	if len(page) > b.width {
		return fmt.Errorf("%w: page %dB, accumulator %dB", ErrWidthMismatch, len(page), b.width)
	}
	for i, v := range page {
		b.acc[i] ^= v
	}
	b.count++
	return nil
}

// Remove XORs a previously added page back out of the accumulator.
func (b *Buffer) Remove(page []byte) error {
	if len(page) > b.width {
		return fmt.Errorf("%w: page %dB, accumulator %dB", ErrWidthMismatch, len(page), b.width)
	}
	if b.count == 0 {
		return errors.New("parity: Remove on empty accumulator")
	}
	for i, v := range page {
		b.acc[i] ^= v
	}
	b.count--
	return nil
}

// Snapshot returns a copy of the current parity page — the bytes flexFTL
// programs to the backup block once the last LSB page of the active fast
// block is written.
func (b *Buffer) Snapshot() []byte {
	return append([]byte(nil), b.acc...)
}

// SnapshotInto is the allocation-free Snapshot variant: it copies the current
// parity page into dst (reusing its capacity) and returns it. Callers on the
// program hot path pass a per-FTL scratch slice; Device.Program copies the
// payload, so the scratch may be reused immediately after.
func (b *Buffer) SnapshotInto(dst []byte) []byte {
	return append(dst[:0], b.acc...)
}

// Reset clears the accumulator.
func (b *Buffer) Reset() {
	for i := range b.acc {
		b.acc[i] = 0
	}
	b.count = 0
}

// Recover reconstructs the single missing page of a protected set: parity is
// the saved parity page and survivors are every member except the lost one.
// It is pure XOR algebra and does not need a Buffer.
func Recover(parityPage []byte, survivors [][]byte) ([]byte, error) {
	out := append([]byte(nil), parityPage...)
	for _, s := range survivors {
		if len(s) > len(out) {
			return nil, fmt.Errorf("%w: survivor %dB, parity %dB", ErrWidthMismatch, len(s), len(out))
		}
		for i, v := range s {
			out[i] ^= v
		}
	}
	return out, nil
}
