package parity_test

import (
	"fmt"

	"flexftl/internal/parity"
)

// One parity page protects any number of LSB pages: accumulate while
// writing, reconstruct the single lost page from the survivors.
func ExampleRecover() {
	pages := [][]byte{
		[]byte("page A"),
		[]byte("page B"),
		[]byte("page C"),
		[]byte("page D"),
	}
	buf := parity.New(8)
	for _, p := range pages {
		if err := buf.Add(p); err != nil {
			panic(err)
		}
	}
	saved := buf.Snapshot() // programmed to the backup block

	// Power loss destroys page C; XOR the survivors with the parity page.
	survivors := [][]byte{pages[0], pages[1], pages[3]}
	recovered, err := parity.Recover(saved, survivors)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", recovered[:6])
	// Output:
	// page C
}
