// Package buffer models the host-side write buffer of the storage
// controller. flexFTL's policy manager reads its utilization u to decide
// between fast LSB-page writes (u high: burst in progress, drain quickly)
// and slow MSB-page writes (u low: sporadic traffic, spend the cheap pages).
//
// The buffer holds page-sized entries. Entries are admitted at their arrival
// time and released when the flash program that drains them completes, so
// utilization at any instant reflects how far the device has fallen behind
// the host — exactly the signal Section 3.2 describes.
package buffer

import (
	"errors"
	"fmt"

	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

// ErrFull is returned by TryAdmit when the buffer has no free slot.
var ErrFull = errors.New("buffer: full")

// Entry is one buffered page write.
type Entry struct {
	LPN      int64    // logical page number
	Arrived  sim.Time // host submission time
	released bool
}

// Buffer is a fixed-capacity FIFO of page writes with released-slot
// accounting. Not safe for concurrent use (the simulator is single-threaded
// over virtual time).
type Buffer struct {
	capacity int
	entries  []*Entry
	// occupied counts admitted-but-not-released entries; len(entries) can
	// be larger transiently because released entries are compacted lazily.
	occupied int
	peakOcc  int
	admitted int64
	util     *obs.Gauge // observability: live utilization (nil when disabled)
	// freeList recycles Entry allocations: compact() parks the released
	// prefix here and TryAdmit reuses it, so steady-state admission allocates
	// nothing. Reset deliberately does not recycle — callers may still hold
	// unreleased handles across a Reset.
	freeList []*Entry
}

// New returns a buffer holding up to capacity page entries.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	return &Buffer{capacity: capacity}
}

// Instrument attaches a gauge tracking utilization u on every admit and
// release (the flexFTL policy input, live for registry snapshots). A nil
// gauge detaches.
func (b *Buffer) Instrument(g *obs.Gauge) {
	b.util = g
	g.Set(b.Utilization())
}

// Capacity returns the slot count.
func (b *Buffer) Capacity() int { return b.capacity }

// Occupied returns the number of pages currently held.
func (b *Buffer) Occupied() int { return b.occupied }

// PeakOccupied returns the high-water mark.
func (b *Buffer) PeakOccupied() int { return b.peakOcc }

// Admitted returns the total number of pages ever admitted.
func (b *Buffer) Admitted() int64 { return b.admitted }

// Utilization returns u in [0,1]: occupied slots over capacity.
func (b *Buffer) Utilization() float64 {
	return float64(b.occupied) / float64(b.capacity)
}

// Free returns the number of free slots.
func (b *Buffer) Free() int { return b.capacity - b.occupied }

// TryAdmit appends a page write, failing with ErrFull when no slot is free.
// The returned entry is the handle to release later.
func (b *Buffer) TryAdmit(lpn int64, now sim.Time) (*Entry, error) {
	if b.occupied >= b.capacity {
		return nil, ErrFull
	}
	var e *Entry
	if n := len(b.freeList); n > 0 {
		e = b.freeList[n-1]
		b.freeList = b.freeList[:n-1]
		*e = Entry{LPN: lpn, Arrived: now}
	} else {
		e = &Entry{LPN: lpn, Arrived: now}
	}
	b.entries = append(b.entries, e)
	b.occupied++
	b.admitted++
	if b.occupied > b.peakOcc {
		b.peakOcc = b.occupied
	}
	b.util.Set(b.Utilization())
	return e, nil
}

// Release frees the slot held by e (its flash program completed). Releasing
// twice is a simulator bug and errors.
func (b *Buffer) Release(e *Entry) error {
	if e == nil {
		return errors.New("buffer: Release(nil)")
	}
	if e.released {
		return fmt.Errorf("buffer: double release of LPN %d", e.LPN)
	}
	e.released = true
	b.occupied--
	b.util.Set(b.Utilization())
	b.compact()
	return nil
}

// compact drops a released prefix so the FIFO view stays cheap.
func (b *Buffer) compact() {
	i := 0
	for i < len(b.entries) && b.entries[i].released {
		i++
	}
	if i > 0 {
		// Park the dropped prefix for reuse before the shift overwrites it;
		// released entries are dead to callers (Release errors on reuse).
		b.freeList = append(b.freeList, b.entries[:i]...)
		b.entries = append(b.entries[:0], b.entries[i:]...)
	}
}

// Oldest returns the earliest admitted un-released entry, or nil when empty.
func (b *Buffer) Oldest() *Entry {
	for _, e := range b.entries {
		if !e.released {
			return e
		}
	}
	return nil
}

// Reset empties the buffer (used between benchmark phases).
func (b *Buffer) Reset() {
	b.entries = b.entries[:0]
	b.occupied = 0
	b.util.Set(0)
}
