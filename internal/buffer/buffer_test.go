package buffer

import (
	"errors"
	"testing"
	"testing/quick"

	"flexftl/internal/rng"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAdmitRelease(t *testing.T) {
	b := New(2)
	e1, err := b.TryAdmit(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Occupied() != 1 || b.Utilization() != 0.5 || b.Free() != 1 {
		t.Errorf("occ=%d u=%v free=%d", b.Occupied(), b.Utilization(), b.Free())
	}
	e2, err := b.TryAdmit(101, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TryAdmit(102, 6); !errors.Is(err, ErrFull) {
		t.Errorf("overfull admit err = %v", err)
	}
	if err := b.Release(e1); err != nil {
		t.Fatal(err)
	}
	if b.Occupied() != 1 {
		t.Errorf("occ after release = %d", b.Occupied())
	}
	if err := b.Release(e1); err == nil {
		t.Error("double release succeeded")
	}
	if err := b.Release(nil); err == nil {
		t.Error("nil release succeeded")
	}
	if err := b.Release(e2); err != nil {
		t.Fatal(err)
	}
	if b.Occupied() != 0 || b.PeakOccupied() != 2 || b.Admitted() != 2 {
		t.Errorf("final state occ=%d peak=%d admitted=%d", b.Occupied(), b.PeakOccupied(), b.Admitted())
	}
}

func TestOldestFIFO(t *testing.T) {
	b := New(4)
	e1, _ := b.TryAdmit(1, 10)
	e2, _ := b.TryAdmit(2, 20)
	if got := b.Oldest(); got != e1 {
		t.Errorf("Oldest = %+v, want first entry", got)
	}
	if err := b.Release(e1); err != nil {
		t.Fatal(err)
	}
	if got := b.Oldest(); got != e2 {
		t.Errorf("Oldest after release = %+v, want second entry", got)
	}
	if err := b.Release(e2); err != nil {
		t.Fatal(err)
	}
	if b.Oldest() != nil {
		t.Error("Oldest on empty buffer non-nil")
	}
}

func TestOutOfOrderRelease(t *testing.T) {
	// Flash programs can complete out of admission order (different chips);
	// the buffer must cope.
	b := New(3)
	e1, _ := b.TryAdmit(1, 0)
	e2, _ := b.TryAdmit(2, 0)
	e3, _ := b.TryAdmit(3, 0)
	if err := b.Release(e2); err != nil {
		t.Fatal(err)
	}
	if b.Occupied() != 2 || b.Oldest() != e1 {
		t.Error("middle release broke accounting")
	}
	if err := b.Release(e1); err != nil {
		t.Fatal(err)
	}
	if b.Oldest() != e3 {
		t.Error("Oldest should skip released entries")
	}
	if err := b.Release(e3); err != nil {
		t.Fatal(err)
	}
	// Slots fully recycled.
	for i := 0; i < 3; i++ {
		if _, err := b.TryAdmit(int64(i), 1); err != nil {
			t.Fatalf("re-admission %d failed: %v", i, err)
		}
	}
}

func TestReset(t *testing.T) {
	b := New(2)
	if _, err := b.TryAdmit(1, 0); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Occupied() != 0 || b.Oldest() != nil {
		t.Error("Reset did not clear buffer")
	}
}

// Property: occupancy always equals admits minus releases and never exceeds
// capacity, under random interleavings.
func TestOccupancyInvariantProperty(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := 1 + int(capRaw%32)
		src := rng.New(seed)
		b := New(capacity)
		var live []*Entry
		admits, releases := 0, 0
		for op := 0; op < 300; op++ {
			if len(live) > 0 && src.Bool(0.5) {
				i := src.Intn(len(live))
				if b.Release(live[i]) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				releases++
			} else {
				e, err := b.TryAdmit(int64(op), 0)
				if errors.Is(err, ErrFull) {
					if len(live) != capacity {
						return false
					}
					continue
				}
				if err != nil {
					return false
				}
				live = append(live, e)
				admits++
			}
			if b.Occupied() != admits-releases || b.Occupied() > capacity || b.Occupied() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
