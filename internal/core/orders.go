package core

import "flexftl/internal/rng"

// FPSOrder returns the canonical fixed program sequence of Figure 2(b):
// LSB(0), LSB(1), MSB(0), LSB(2), MSB(1), ..., LSB(W-1), MSB(W-2), MSB(W-1).
// It is the unique complete order satisfying Constraints 1-4.
func FPSOrder(wordLines int) []Page {
	order := make([]Page, 0, 2*wordLines)
	order = append(order, Page{WL: 0, Type: LSB})
	if wordLines == 1 {
		return append(order, Page{WL: 0, Type: MSB})
	}
	for wl := 1; wl < wordLines; wl++ {
		order = append(order, Page{WL: wl, Type: LSB})
		order = append(order, Page{WL: wl - 1, Type: MSB})
	}
	return append(order, Page{WL: wordLines - 1, Type: MSB})
}

// RPSFullOrder returns the RPSfull order of Figure 3(a): all LSB pages in
// word-line order, then all MSB pages in word-line order. This is the 2PO
// (two-phase ordering) flexFTL adopts — a block is a "fast block" while its
// LSB half is being filled and a "slow block" afterwards.
func RPSFullOrder(wordLines int) []Page {
	order := make([]Page, 0, 2*wordLines)
	for wl := 0; wl < wordLines; wl++ {
		order = append(order, Page{WL: wl, Type: LSB})
	}
	for wl := 0; wl < wordLines; wl++ {
		order = append(order, Page{WL: wl, Type: MSB})
	}
	return order
}

// RPSHalfOrder returns an instance of the half-and-half interleave of
// Figure 3(b): the first half of the LSB pages are written in a row, then
// LSB and MSB writes alternate, and the block finishes with the remaining
// MSB pages.
func RPSHalfOrder(wordLines int) []Page {
	half := wordLines / 2
	if half == 0 {
		half = 1
	}
	order := make([]Page, 0, 2*wordLines)
	for wl := 0; wl < half && wl < wordLines; wl++ {
		order = append(order, Page{WL: wl, Type: LSB})
	}
	msb := 0
	for wl := half; wl < wordLines; wl++ {
		order = append(order, Page{WL: wl, Type: LSB})
		if msb <= wl-1 { // C3: MSB(k) needs LSB(k+1), satisfied since msb+1 <= wl
			order = append(order, Page{WL: msb, Type: MSB})
			msb++
		}
	}
	for ; msb < wordLines; msb++ {
		order = append(order, Page{WL: msb, Type: MSB})
	}
	return order
}

// RandomRPSOrder returns a uniformly random-ish legal RPS order (Figure 3(c))
// by repeatedly picking one of the legal next pages. Useful for property
// tests and for demonstrating scheme flexibility.
func RandomRPSOrder(src *rng.Source, wordLines int) []Page {
	s := NewBlockState(wordLines)
	order := make([]Page, 0, 2*wordLines)
	for !s.Full() {
		legal := LegalNext(RPS, s)
		p := legal[src.Intn(len(legal))]
		s.Mark(p)
		order = append(order, p)
	}
	return order
}

// RandomUnconstrainedOrder returns a uniformly random permutation of the
// block's pages, ignoring every constraint. Real devices forbid such orders;
// the reliability study uses it to reproduce the Figure 2(a) worst case.
func RandomUnconstrainedOrder(src *rng.Source, wordLines int) []Page {
	order := make([]Page, 0, 2*wordLines)
	for wl := 0; wl < wordLines; wl++ {
		order = append(order, Page{WL: wl, Type: LSB}, Page{WL: wl, Type: MSB})
	}
	src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// WorstCaseOrder returns an unconstrained order realizing the Figure 2(a)
// worst case: even word lines are fully programmed (LSB then MSB) before any
// odd word line, so every interior even word line later suffers all four
// neighbour programs — LSB(k-1), MSB(k-1), LSB(k+1), MSB(k+1) — as
// aggressors after its own MSB program. Real devices forbid this order.
func WorstCaseOrder(wordLines int) []Page {
	order := make([]Page, 0, 2*wordLines)
	for wl := 0; wl < wordLines; wl += 2 {
		order = append(order, Page{WL: wl, Type: LSB}, Page{WL: wl, Type: MSB})
	}
	for wl := 1; wl < wordLines; wl += 2 {
		order = append(order, Page{WL: wl, Type: LSB}, Page{WL: wl, Type: MSB})
	}
	return order
}

// TwoPhase reports, for a block being filled under 2PO (RPSfull), which page
// comes next after n pages have been programmed. The first WordLines
// programs are LSB(0..W-1); the rest are MSB(0..W-1).
func TwoPhase(wordLines, programmed int) (Page, bool) {
	if programmed < 0 || programmed >= 2*wordLines {
		return Page{}, false
	}
	if programmed < wordLines {
		return Page{WL: programmed, Type: LSB}, true
	}
	return Page{WL: programmed - wordLines, Type: MSB}, true
}

// AggressorCounts computes, for each word line, how many neighbour page
// programs (to WL(k-1) or WL(k+1)) occur after MSB(k) is programmed in the
// given order. The paper's reliability argument is that the total cell-to-
// cell interference on WL(k) is proportional to this count; both FPS and any
// legal RPS order bound it by 1 (only MSB(k+1)), while unconstrained orders
// reach 4.
func AggressorCounts(wordLines int, order []Page) []int {
	pos := make(map[Page]int, len(order))
	for i, p := range order {
		pos[p] = i
	}
	counts := make([]int, wordLines)
	for wl := 0; wl < wordLines; wl++ {
		msbPos, ok := pos[Page{WL: wl, Type: MSB}]
		if !ok {
			counts[wl] = -1 // MSB never programmed; no settled 4-state data
			continue
		}
		n := 0
		for _, nb := range []int{wl - 1, wl + 1} {
			if nb < 0 || nb >= wordLines {
				continue
			}
			for _, t := range []PageType{LSB, MSB} {
				if p, ok := pos[Page{WL: nb, Type: t}]; ok && p > msbPos {
					n++
				}
			}
		}
		counts[wl] = n
	}
	return counts
}

// MaxAggressors returns the maximum aggressor count over fully programmed
// word lines of the order.
func MaxAggressors(wordLines int, order []Page) int {
	max := 0
	for _, c := range AggressorCounts(wordLines, order) {
		if c > max {
			max = c
		}
	}
	return max
}
