package core_test

import (
	"fmt"
	"strings"

	"flexftl/internal/core"
)

func render(order []core.Page) string {
	parts := make([]string, len(order))
	for i, p := range order {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

// The canonical vendor order interleaves LSB and MSB pages; RPS allows all
// LSB pages of a block to be written first.
func ExampleFPSOrder() {
	fmt.Println(render(core.FPSOrder(3)))
	fmt.Println(render(core.RPSFullOrder(3)))
	// Output:
	// LSB(0) LSB(1) MSB(0) LSB(2) MSB(1) MSB(2)
	// LSB(0) LSB(1) LSB(2) MSB(0) MSB(1) MSB(2)
}

// RPS drops exactly the over-specified Constraint 4: writing LSB(2) before
// MSB(0) is illegal under FPS but legal under RPS.
func ExampleRuleSet() {
	s := core.NewBlockState(4)
	s.Mark(core.Page{WL: 0, Type: core.LSB})
	s.Mark(core.Page{WL: 1, Type: core.LSB})

	probe := core.Page{WL: 2, Type: core.LSB}
	fmt.Println("FPS:", core.FPS.Check(s, probe))
	fmt.Println("RPS:", core.RPS.Check(s, probe))
	// Output:
	// FPS: core: programming LSB(2) violates Constraint 4: MSB(0) not yet written
	// RPS: <nil>
}

// Every legal RPS order leaves at most one late aggressor per word line —
// the reliability invariant behind Figure 4.
func ExampleMaxAggressors() {
	fmt.Println("FPS:", core.MaxAggressors(8, core.FPSOrder(8)))
	fmt.Println("RPSfull:", core.MaxAggressors(8, core.RPSFullOrder(8)))
	fmt.Println("forbidden:", core.MaxAggressors(8, core.WorstCaseOrder(8)))
	// Output:
	// FPS: 1
	// RPSfull: 1
	// forbidden: 4
}
