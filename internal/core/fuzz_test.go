package core

import (
	"errors"
	"testing"
)

// FuzzRuleSetCheck drives arbitrary probe sequences through the three rule
// sets and pins the legality lattice: Check never panics (including
// out-of-range word lines and double programs), FPS-legal implies RPS-legal
// implies Unconstrained-legal, every reported violation names a genuinely
// missing prerequisite with the paper's constraint number, and Check is a
// pure function of the state.
func FuzzRuleSetCheck(f *testing.F) {
	f.Add(uint8(4), []byte{0, 0, 1, 0, 0, 1, 2, 0, 1, 1})
	f.Add(uint8(1), []byte{0, 0, 0, 1})
	f.Add(uint8(8), []byte{0, 0, 1, 0, 2, 0, 0, 1, 3, 0, 1, 1})
	f.Add(uint8(2), []byte{255, 0, 7, 1, 0, 0})
	f.Fuzz(func(t *testing.T, wlByte uint8, seq []byte) {
		wordLines := int(wlByte%16) + 1
		s := NewBlockState(wordLines)
		for i := 0; i+1 < len(seq); i += 2 {
			p := Page{WL: int(int8(seq[i])), Type: PageType(seq[i+1] % 2)}
			errFPS := FPS.Check(s, p)
			errRPS := RPS.Check(s, p)
			errUn := Unconstrained.Check(s, p)

			// FPS (C1-4) is strictly stronger than RPS (C1-3), which is
			// stronger than Unconstrained (range + double-program only).
			if errFPS == nil && errRPS != nil {
				t.Fatalf("FPS allows %v but RPS rejects it: %v", p, errRPS)
			}
			if errRPS == nil && errUn != nil {
				t.Fatalf("RPS allows %v but Unconstrained rejects it: %v", p, errUn)
			}

			var cv *ConstraintViolation
			if errors.As(errRPS, &cv) {
				if cv.Constraint < 1 || cv.Constraint > 3 {
					t.Fatalf("RPS violation cites Constraint %d outside C1-3", cv.Constraint)
				}
				if cv.Page != p {
					t.Fatalf("violation names page %v, probed %v", cv.Page, p)
				}
				if s.Written(cv.Missing) {
					t.Fatalf("violation claims %v missing but it is written", cv.Missing)
				}
			}
			if errors.As(errFPS, &cv) {
				if cv.Constraint < 1 || cv.Constraint > 4 {
					t.Fatalf("FPS violation cites Constraint %d outside C1-4", cv.Constraint)
				}
				if s.Written(cv.Missing) {
					t.Fatalf("violation claims %v missing but it is written", cv.Missing)
				}
			}

			// Check must not mutate the state: probing twice agrees.
			if again := FPS.Check(s, p); (again == nil) != (errFPS == nil) {
				t.Fatalf("FPS.Check not deterministic for %v: %v then %v", p, errFPS, again)
			}

			// Advance along the RPS-legal path so deeper states get probed.
			if errRPS == nil {
				before := s.Programmed()
				s.Mark(p)
				if s.Programmed() != before+1 {
					t.Fatalf("Mark(%v) moved programmed %d -> %d", p, before, s.Programmed())
				}
			}
		}
		// A full block admits no further program under any rule set.
		if s.Full() {
			if next := LegalNext(RPS, s); len(next) != 0 {
				t.Fatalf("full block still has RPS-legal pages: %v", next)
			}
		}
	})
}
