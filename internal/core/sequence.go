// Package core implements the program-sequence formalism of Park et al.,
// "Improving Performance and Lifetime of NAND Storage Systems Using Relaxed
// Program Sequence" (DAC 2016): the four program-order constraints of the
// vendor fixed program sequence (FPS), the relaxed program sequence (RPS)
// obtained by dropping the over-specified Constraint 4, legality checking
// for arbitrary page program orders, and the canonical orders the paper
// studies (the FPS interleave, RPSfull, RPShalf and random RPS orders).
//
// Terminology follows the paper. A 2-bit MLC block has W word lines; word
// line k carries two pages, LSB(k) and MSB(k). A "program order" is a
// sequence of the 2W pages of a block; a "rule set" decides which next page
// programs are legal given the set already programmed.
package core

import "fmt"

// PageType distinguishes the fast LSB page from the slow MSB page of a word
// line.
type PageType uint8

const (
	// LSB is the least-significant-bit page of a word line. Programming it
	// only needs two coarse Vth states, so it is fast (~500 us on 2X-nm MLC).
	LSB PageType = iota
	// MSB is the most-significant-bit page. Programming it refines the cell
	// into four Vth states, which is slow (~2000 us) and destructive to the
	// paired LSB data while in progress.
	MSB
)

// String returns "LSB" or "MSB".
func (t PageType) String() string {
	switch t {
	case LSB:
		return "LSB"
	case MSB:
		return "MSB"
	default:
		return fmt.Sprintf("PageType(%d)", uint8(t))
	}
}

// Page identifies one page within a block by word line and type.
type Page struct {
	WL   int      // word-line index, 0-based
	Type PageType // LSB or MSB
}

// String formats the page the way the paper writes it, e.g. "LSB(3)".
func (p Page) String() string { return fmt.Sprintf("%s(%d)", p.Type, p.WL) }

// Index maps a page to a dense index in [0, 2*wordLines): all LSB pages
// first, then all MSB pages. This is the internal bitmap layout, not a
// program order.
func (p Page) Index(wordLines int) int {
	if p.Type == LSB {
		return p.WL
	}
	return wordLines + p.WL
}

// PageFromIndex inverts Page.Index.
func PageFromIndex(idx, wordLines int) Page {
	if idx < wordLines {
		return Page{WL: idx, Type: LSB}
	}
	return Page{WL: idx - wordLines, Type: MSB}
}

// BlockState tracks which pages of a block have been programmed, so that a
// rule set can decide the legality of the next program. The zero value is
// not usable; call NewBlockState.
type BlockState struct {
	wordLines  int
	lsb        []bool
	msb        []bool
	programmed int
}

// NewBlockState returns an all-erased state for a block with the given
// number of word lines.
func NewBlockState(wordLines int) *BlockState {
	if wordLines <= 0 {
		panic("core: block needs at least one word line")
	}
	return &BlockState{
		wordLines: wordLines,
		lsb:       make([]bool, wordLines),
		msb:       make([]bool, wordLines),
	}
}

// WordLines returns the number of word lines in the block.
func (s *BlockState) WordLines() int { return s.wordLines }

// Pages returns the total number of pages (2 per word line).
func (s *BlockState) Pages() int { return 2 * s.wordLines }

// Programmed returns how many pages have been programmed so far.
func (s *BlockState) Programmed() int { return s.programmed }

// Full reports whether every page of the block has been programmed.
func (s *BlockState) Full() bool { return s.programmed == 2*s.wordLines }

// Written reports whether the given page has been programmed.
func (s *BlockState) Written(p Page) bool {
	if p.WL < 0 || p.WL >= s.wordLines {
		return false
	}
	if p.Type == LSB {
		return s.lsb[p.WL]
	}
	return s.msb[p.WL]
}

// Mark records the page as programmed. It panics on double programming or an
// out-of-range word line: NAND cannot program a page twice without an erase,
// so this is a simulator bug, not a recoverable condition.
func (s *BlockState) Mark(p Page) {
	if p.WL < 0 || p.WL >= s.wordLines {
		panic(fmt.Sprintf("core: word line %d out of range [0,%d)", p.WL, s.wordLines))
	}
	if s.Written(p) {
		panic(fmt.Sprintf("core: double program of %v", p))
	}
	if p.Type == LSB {
		s.lsb[p.WL] = true
	} else {
		s.msb[p.WL] = true
	}
	s.programmed++
}

// Reset returns the state to all-erased (models a block erase).
func (s *BlockState) Reset() {
	for i := range s.lsb {
		s.lsb[i] = false
		s.msb[i] = false
	}
	s.programmed = 0
}

// Clone returns an independent copy of the state.
func (s *BlockState) Clone() *BlockState {
	c := NewBlockState(s.wordLines)
	copy(c.lsb, s.lsb)
	copy(c.msb, s.msb)
	c.programmed = s.programmed
	return c
}

// ConstraintViolation describes which paper constraint a proposed program
// would violate and which prerequisite page is missing.
type ConstraintViolation struct {
	Constraint int  // 1..4, as numbered in the paper (Section 2.2)
	Page       Page // the page whose program was attempted
	Missing    Page // the prerequisite page that has not been written
}

// Error implements error.
func (v *ConstraintViolation) Error() string {
	return fmt.Sprintf("core: programming %v violates Constraint %d: %v not yet written",
		v.Page, v.Constraint, v.Missing)
}

// RuleSet is a program-sequence scheme: it decides whether programming page
// p next is legal given the block state.
type RuleSet interface {
	// Name identifies the scheme ("FPS", "RPS", "Unconstrained").
	Name() string
	// Check returns nil if programming p next is legal, or a
	// *ConstraintViolation describing the first violated constraint.
	Check(s *BlockState, p Page) error
}

// fpsRules enforces Constraints 1-4; rpsRules enforces Constraints 1-3.
type fpsRules struct{}
type rpsRules struct{}

// unconstrainedRules allows any order. It exists to reproduce the worst-case
// interference study of Figure 2(a): real devices forbid it.
type unconstrainedRules struct{}

// FPS is the vendor fixed program sequence rule set (Constraints 1-4). Under
// FPS exactly one program order exists for a block, the canonical interleave
// of Figure 2(b).
var FPS RuleSet = fpsRules{}

// RPS is the paper's relaxed program sequence rule set (Constraints 1-3).
// Constraint 4 — "before LSB(k), MSB(k-2) must be written" — is dropped
// because programming WL(k-2) does not interfere with WL(k).
var RPS RuleSet = rpsRules{}

// Unconstrained allows any page order. Only the reliability study uses it.
var Unconstrained RuleSet = unconstrainedRules{}

func (fpsRules) Name() string           { return "FPS" }
func (rpsRules) Name() string           { return "RPS" }
func (unconstrainedRules) Name() string { return "Unconstrained" }

// checkCommon enforces Constraints 1-3, shared by FPS and RPS:
//
//	C1: LSB(k) requires LSB(k-1)              (k >= 1)
//	C2: MSB(k) requires MSB(k-1)              (k >= 1)
//	C3: MSB(k) requires LSB(k+1)              (k >= 0, vacuous on the last WL)
func checkCommon(s *BlockState, p Page) error {
	if p.WL < 0 || p.WL >= s.wordLines {
		return fmt.Errorf("core: word line %d out of range [0,%d)", p.WL, s.wordLines)
	}
	if s.Written(p) {
		return fmt.Errorf("core: page %v already programmed", p)
	}
	switch p.Type {
	case LSB:
		if p.WL >= 1 {
			prereq := Page{WL: p.WL - 1, Type: LSB}
			if !s.Written(prereq) {
				return &ConstraintViolation{Constraint: 1, Page: p, Missing: prereq}
			}
		}
	case MSB:
		if p.WL >= 1 {
			prereq := Page{WL: p.WL - 1, Type: MSB}
			if !s.Written(prereq) {
				return &ConstraintViolation{Constraint: 2, Page: p, Missing: prereq}
			}
		}
		// MSB(k) additionally requires its own LSB to have been written:
		// multi-level programming refines the LSB-programmed transient state,
		// so there is nothing to refine otherwise. The paper's Constraint 2
		// chain plus Constraint 3 imply this on every legal order; we check
		// it explicitly so single illegal probes are also rejected.
		lsbSelf := Page{WL: p.WL, Type: LSB}
		if !s.Written(lsbSelf) {
			return &ConstraintViolation{Constraint: 3, Page: p, Missing: lsbSelf}
		}
		if p.WL+1 < s.wordLines {
			prereq := Page{WL: p.WL + 1, Type: LSB}
			if !s.Written(prereq) {
				return &ConstraintViolation{Constraint: 3, Page: p, Missing: prereq}
			}
		}
	}
	return nil
}

func (rpsRules) Check(s *BlockState, p Page) error { return checkCommon(s, p) }

func (fpsRules) Check(s *BlockState, p Page) error {
	if err := checkCommon(s, p); err != nil {
		return err
	}
	// C4: LSB(k) requires MSB(k-2) (k >= 2). This is the over-specified
	// constraint RPS removes.
	if p.Type == LSB && p.WL >= 2 {
		prereq := Page{WL: p.WL - 2, Type: MSB}
		if !s.Written(prereq) {
			return &ConstraintViolation{Constraint: 4, Page: p, Missing: prereq}
		}
	}
	return nil
}

func (unconstrainedRules) Check(s *BlockState, p Page) error {
	if p.WL < 0 || p.WL >= s.wordLines {
		return fmt.Errorf("core: word line %d out of range [0,%d)", p.WL, s.wordLines)
	}
	if s.Written(p) {
		return fmt.Errorf("core: page %v already programmed", p)
	}
	return nil
}

// ValidateOrder checks a complete program order of a block (it must mention
// every page exactly once) against a rule set. It returns the index of the
// first illegal program and the error, or (-1, nil) when the order is legal.
func ValidateOrder(rules RuleSet, wordLines int, order []Page) (int, error) {
	s := NewBlockState(wordLines)
	for i, p := range order {
		if err := rules.Check(s, p); err != nil {
			return i, err
		}
		s.Mark(p)
	}
	if !s.Full() {
		return len(order), fmt.Errorf("core: order covers %d of %d pages", s.Programmed(), s.Pages())
	}
	return -1, nil
}

// LegalNext returns every page whose program is legal under the rule set in
// the given state, in (LSB by word line, then MSB by word line) order.
func LegalNext(rules RuleSet, s *BlockState) []Page {
	var out []Page
	for wl := 0; wl < s.wordLines; wl++ {
		p := Page{WL: wl, Type: LSB}
		if rules.Check(s, p) == nil {
			out = append(out, p)
		}
	}
	for wl := 0; wl < s.wordLines; wl++ {
		p := Page{WL: wl, Type: MSB}
		if rules.Check(s, p) == nil {
			out = append(out, p)
		}
	}
	return out
}

// CountOrders counts the number of complete legal program orders of a block
// under the rule set, by exhaustive search. It is exponential and intended
// for small word-line counts in tests (FPS must give exactly 1; RPS grows
// combinatorially).
func CountOrders(rules RuleSet, wordLines int) int {
	s := NewBlockState(wordLines)
	var rec func() int
	rec = func() int {
		if s.Full() {
			return 1
		}
		total := 0
		for _, p := range LegalNext(rules, s) {
			s.Mark(p)
			total += rec()
			// Undo the mark directly; Reset would lose the prefix.
			if p.Type == LSB {
				s.lsb[p.WL] = false
			} else {
				s.msb[p.WL] = false
			}
			s.programmed--
		}
		return total
	}
	return rec()
}
