package core

import (
	"errors"
	"testing"
	"testing/quick"

	"flexftl/internal/rng"
)

func TestPageIndexRoundTrip(t *testing.T) {
	const wl = 8
	seen := make(map[int]bool)
	for k := 0; k < wl; k++ {
		for _, typ := range []PageType{LSB, MSB} {
			p := Page{WL: k, Type: typ}
			idx := p.Index(wl)
			if idx < 0 || idx >= 2*wl {
				t.Fatalf("index %d out of range for %v", idx, p)
			}
			if seen[idx] {
				t.Fatalf("index %d duplicated", idx)
			}
			seen[idx] = true
			if back := PageFromIndex(idx, wl); back != p {
				t.Fatalf("round trip %v -> %d -> %v", p, idx, back)
			}
		}
	}
}

func TestPageString(t *testing.T) {
	if got := (Page{WL: 3, Type: LSB}).String(); got != "LSB(3)" {
		t.Errorf("String() = %q", got)
	}
	if got := (Page{WL: 0, Type: MSB}).String(); got != "MSB(0)" {
		t.Errorf("String() = %q", got)
	}
}

func TestBlockStateBasics(t *testing.T) {
	s := NewBlockState(4)
	if s.Pages() != 8 || s.WordLines() != 4 {
		t.Fatal("geometry wrong")
	}
	p := Page{WL: 0, Type: LSB}
	if s.Written(p) {
		t.Error("fresh state reports page written")
	}
	s.Mark(p)
	if !s.Written(p) || s.Programmed() != 1 {
		t.Error("Mark not reflected")
	}
	s.Reset()
	if s.Written(p) || s.Programmed() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestBlockStateDoubleProgramPanics(t *testing.T) {
	s := NewBlockState(2)
	s.Mark(Page{WL: 0, Type: LSB})
	defer func() {
		if recover() == nil {
			t.Error("double program did not panic")
		}
	}()
	s.Mark(Page{WL: 0, Type: LSB})
}

func TestBlockStateClone(t *testing.T) {
	s := NewBlockState(3)
	s.Mark(Page{WL: 0, Type: LSB})
	c := s.Clone()
	c.Mark(Page{WL: 1, Type: LSB})
	if s.Written(Page{WL: 1, Type: LSB}) {
		t.Error("clone mutated original")
	}
	if !c.Written(Page{WL: 0, Type: LSB}) {
		t.Error("clone lost state")
	}
}

// TestFPSCanonicalOrder verifies Figure 2(b): the canonical interleave is
// legal under FPS, and it is the unique complete FPS order.
func TestFPSCanonicalOrder(t *testing.T) {
	for _, wl := range []int{1, 2, 3, 4, 6, 8} {
		order := FPSOrder(wl)
		if len(order) != 2*wl {
			t.Fatalf("wl=%d: FPSOrder length %d", wl, len(order))
		}
		if i, err := ValidateOrder(FPS, wl, order); err != nil {
			t.Fatalf("wl=%d: canonical FPS order illegal at %d: %v", wl, i, err)
		}
	}
	// Spot check the exact Figure 2(b) numbering for 6 word lines:
	// 0:LSB0 1:LSB1 2:MSB0 3:LSB2 4:MSB1 5:LSB3 6:MSB2 ...
	want := []Page{
		{0, LSB}, {1, LSB}, {0, MSB}, {2, LSB}, {1, MSB}, {3, LSB},
		{2, MSB}, {4, LSB}, {3, MSB}, {5, LSB}, {4, MSB}, {5, MSB},
	}
	got := FPSOrder(6)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FPSOrder(6)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFPSOrderIsUnique(t *testing.T) {
	for _, wl := range []int{1, 2, 3, 4, 5} {
		if n := CountOrders(FPS, wl); n != 1 {
			t.Errorf("wl=%d: FPS admits %d orders, want exactly 1", wl, n)
		}
	}
}

func TestRPSAdmitsManyOrders(t *testing.T) {
	// With 2 word lines RPS is still forced (L0,L1,M0,M1); flexibility
	// appears from 3 word lines on and grows combinatorially.
	if n := CountOrders(RPS, 2); n != 1 {
		t.Errorf("wl=2: RPS admits %d orders, want exactly 1", n)
	}
	counts := map[int]int{}
	for _, wl := range []int{3, 4, 5} {
		counts[wl] = CountOrders(RPS, wl)
		if counts[wl] <= 1 {
			t.Errorf("wl=%d: RPS admits %d orders, want > 1", wl, counts[wl])
		}
	}
	if counts[4] <= counts[3] || counts[5] <= counts[4] {
		t.Errorf("RPS order count not growing: %v", counts)
	}
}

// TestRPSOrders verifies Figure 3: RPSfull, RPShalf and random legal orders
// all satisfy Constraints 1-3 but (except degenerate sizes) violate FPS.
func TestRPSOrders(t *testing.T) {
	for _, wl := range []int{2, 4, 6, 8, 64, 128} {
		for name, order := range map[string][]Page{
			"RPSfull": RPSFullOrder(wl),
			"RPShalf": RPSHalfOrder(wl),
		} {
			if i, err := ValidateOrder(RPS, wl, order); err != nil {
				t.Errorf("wl=%d %s: illegal under RPS at %d: %v", wl, name, i, err)
			}
			if wl >= 4 {
				if _, err := ValidateOrder(FPS, wl, order); err == nil {
					t.Errorf("wl=%d %s: unexpectedly legal under FPS", wl, name)
				} else {
					var cv *ConstraintViolation
					if !errors.As(err, &cv) || cv.Constraint != 4 {
						t.Errorf("wl=%d %s: expected Constraint 4 violation, got %v", wl, name, err)
					}
				}
			}
		}
	}
}

func TestRandomRPSOrdersLegal(t *testing.T) {
	src := rng.New(1)
	for i := 0; i < 50; i++ {
		wl := 2 + src.Intn(16)
		order := RandomRPSOrder(src, wl)
		if idx, err := ValidateOrder(RPS, wl, order); err != nil {
			t.Fatalf("random RPS order illegal at %d: %v (order %v)", idx, err, order)
		}
	}
}

func TestConstraintViolationDetails(t *testing.T) {
	s := NewBlockState(4)
	// LSB(1) before LSB(0): Constraint 1.
	err := RPS.Check(s, Page{WL: 1, Type: LSB})
	var cv *ConstraintViolation
	if !errors.As(err, &cv) || cv.Constraint != 1 || cv.Missing != (Page{WL: 0, Type: LSB}) {
		t.Errorf("C1 violation not reported correctly: %v", err)
	}
	// MSB(0) with nothing written: Constraint 3 (missing LSB(0) itself).
	err = RPS.Check(s, Page{WL: 0, Type: MSB})
	if !errors.As(err, &cv) || cv.Constraint != 3 {
		t.Errorf("C3 violation not reported correctly: %v", err)
	}
	s.Mark(Page{WL: 0, Type: LSB})
	// MSB(0) still needs LSB(1): Constraint 3.
	err = RPS.Check(s, Page{WL: 0, Type: MSB})
	if !errors.As(err, &cv) || cv.Constraint != 3 || cv.Missing != (Page{WL: 1, Type: LSB}) {
		t.Errorf("C3 (neighbour) violation not reported correctly: %v", err)
	}
	s.Mark(Page{WL: 1, Type: LSB})
	if err := RPS.Check(s, Page{WL: 0, Type: MSB}); err != nil {
		t.Errorf("MSB(0) should be legal now: %v", err)
	}
	// Constraint 2: MSB(1) before MSB(0).
	s.Mark(Page{WL: 2, Type: LSB})
	err = RPS.Check(s, Page{WL: 1, Type: MSB})
	if !errors.As(err, &cv) || cv.Constraint != 2 {
		t.Errorf("C2 violation not reported correctly: %v", err)
	}
	// Constraint 4 under FPS: LSB(2) already written above was fine because
	// we only probed; rebuild and check C4 explicitly.
	s2 := NewBlockState(4)
	s2.Mark(Page{WL: 0, Type: LSB})
	s2.Mark(Page{WL: 1, Type: LSB})
	err = FPS.Check(s2, Page{WL: 2, Type: LSB})
	if !errors.As(err, &cv) || cv.Constraint != 4 || cv.Missing != (Page{WL: 0, Type: MSB}) {
		t.Errorf("C4 violation not reported correctly: %v", err)
	}
	if err := RPS.Check(s2, Page{WL: 2, Type: LSB}); err != nil {
		t.Errorf("RPS must allow LSB(2) here (Constraint 4 dropped): %v", err)
	}
}

func TestMSBRequiresOwnLSBOnLastWordLine(t *testing.T) {
	// On the last word line Constraint 3 is vacuous; the device still cannot
	// program MSB before LSB of the same word line.
	s := NewBlockState(2)
	s.Mark(Page{WL: 0, Type: LSB})
	s.Mark(Page{WL: 1, Type: LSB})
	s.Mark(Page{WL: 0, Type: MSB})
	// Erase-less trick: build a state where LSB(1) is missing.
	s2 := NewBlockState(2)
	s2.Mark(Page{WL: 0, Type: LSB})
	if err := RPS.Check(s2, Page{WL: 1, Type: MSB}); err == nil {
		t.Error("MSB(1) legal without LSB(1)")
	}
}

func TestLegalNext(t *testing.T) {
	s := NewBlockState(3)
	legal := LegalNext(RPS, s)
	if len(legal) != 1 || legal[0] != (Page{WL: 0, Type: LSB}) {
		t.Fatalf("fresh block legal set = %v, want [LSB(0)]", legal)
	}
	s.Mark(Page{WL: 0, Type: LSB})
	s.Mark(Page{WL: 1, Type: LSB})
	legal = LegalNext(RPS, s)
	// Now LSB(2) and MSB(0) are both legal under RPS.
	want := map[Page]bool{{WL: 2, Type: LSB}: true, {WL: 0, Type: MSB}: true}
	if len(legal) != 2 || !want[legal[0]] || !want[legal[1]] {
		t.Fatalf("legal set = %v, want LSB(2)+MSB(0)", legal)
	}
	// Under FPS, LSB(2) is blocked by C4; only MSB(0) legal.
	legal = LegalNext(FPS, s)
	if len(legal) != 1 || legal[0] != (Page{WL: 0, Type: MSB}) {
		t.Fatalf("FPS legal set = %v, want [MSB(0)]", legal)
	}
}

func TestTwoPhase(t *testing.T) {
	const wl = 4
	for n := 0; n < 2*wl; n++ {
		p, ok := TwoPhase(wl, n)
		if !ok {
			t.Fatalf("TwoPhase(%d,%d) not ok", wl, n)
		}
		if n < wl {
			if p != (Page{WL: n, Type: LSB}) {
				t.Errorf("TwoPhase(%d,%d) = %v", wl, n, p)
			}
		} else if p != (Page{WL: n - wl, Type: MSB}) {
			t.Errorf("TwoPhase(%d,%d) = %v", wl, n, p)
		}
	}
	if _, ok := TwoPhase(wl, 2*wl); ok {
		t.Error("TwoPhase past the end reported ok")
	}
	if _, ok := TwoPhase(wl, -1); ok {
		t.Error("TwoPhase(-1) reported ok")
	}
	// The 2PO sequence must be exactly RPSfull.
	full := RPSFullOrder(wl)
	for n := 0; n < 2*wl; n++ {
		p, _ := TwoPhase(wl, n)
		if p != full[n] {
			t.Errorf("TwoPhase(%d) = %v, RPSfull[%d] = %v", n, p, n, full[n])
		}
	}
}

// Property: every complete legal RPS order has max aggressor count <= 1 —
// the paper's reliability invariant (Section 2.2).
func TestRPSAggressorBoundProperty(t *testing.T) {
	f := func(seed uint64, wlRaw uint8) bool {
		wl := 2 + int(wlRaw%14)
		order := RandomRPSOrder(rng.New(seed), wl)
		return MaxAggressors(wl, order) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: random RPS orders are always complete permutations of the block.
func TestRandomRPSOrderCompleteProperty(t *testing.T) {
	f := func(seed uint64, wlRaw uint8) bool {
		wl := 1 + int(wlRaw%16)
		order := RandomRPSOrder(rng.New(seed), wl)
		if len(order) != 2*wl {
			return false
		}
		seen := map[Page]bool{}
		for _, p := range order {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAggressorCounts(t *testing.T) {
	const wl = 8
	for name, order := range map[string][]Page{
		"FPS":     FPSOrder(wl),
		"RPSfull": RPSFullOrder(wl),
		"RPShalf": RPSHalfOrder(wl),
	} {
		counts := AggressorCounts(wl, order)
		for k, c := range counts {
			limit := 1
			if k == wl-1 {
				limit = 0 // last word line has no MSB(k+1) aggressor
			}
			if c > limit {
				t.Errorf("%s: WL(%d) aggressor count %d > %d", name, k, c, limit)
			}
		}
	}
}

// TestUnconstrainedOrderWorstCase reproduces the Figure 2(a) argument: an
// unconstrained order can expose a word line to 4 aggressor programs.
func TestUnconstrainedOrderWorstCase(t *testing.T) {
	const wl = 8
	order := WorstCaseOrder(wl)
	if i, err := ValidateOrder(Unconstrained, wl, order); err != nil {
		t.Fatalf("worst-case order invalid at %d: %v", i, err)
	}
	if _, err := ValidateOrder(RPS, wl, order); err == nil {
		t.Error("worst-case order must be illegal under RPS")
	}
	if got := MaxAggressors(wl, order); got != 4 {
		t.Errorf("worst-case max aggressors = %d, want 4", got)
	}
	counts := AggressorCounts(wl, order)
	for k := 2; k < wl-1; k += 2 {
		if counts[k] != 4 {
			t.Errorf("interior even WL(%d) aggressors = %d, want 4", k, counts[k])
		}
	}
}

func TestPartialOrderAggressors(t *testing.T) {
	// A block whose MSBs were never written reports -1 counts.
	order := []Page{{0, LSB}, {1, LSB}}
	counts := AggressorCounts(2, order)
	if counts[0] != -1 || counts[1] != -1 {
		t.Errorf("counts = %v, want [-1 -1]", counts)
	}
}

func TestValidateOrderIncomplete(t *testing.T) {
	if _, err := ValidateOrder(RPS, 2, []Page{{0, LSB}}); err == nil {
		t.Error("incomplete order accepted")
	}
}

func TestRuleSetNames(t *testing.T) {
	if FPS.Name() != "FPS" || RPS.Name() != "RPS" || Unconstrained.Name() != "Unconstrained" {
		t.Error("rule set names wrong")
	}
}

func TestRandomUnconstrainedOrderComplete(t *testing.T) {
	src := rng.New(5)
	order := RandomUnconstrainedOrder(src, 10)
	if len(order) != 20 {
		t.Fatalf("len = %d", len(order))
	}
	if i, err := ValidateOrder(Unconstrained, 10, order); err != nil {
		t.Fatalf("invalid at %d: %v", i, err)
	}
}
