package obs

import (
	"fmt"
	"io"

	"flexftl/internal/sim"
)

// Sampler records a multi-series time line of internal state (write-buffer
// utilization u, LSB quota q, slow-block-queue depth, free blocks, ...) on
// a virtual-time cadence. Probes are closures registered by the components
// that own the state; Tick drives sampling from the event loop.
//
// The simulator has no timer interrupts, so sampling quantizes to the tick
// sites (request boundaries in the runner): a sample is taken at the first
// Tick at or after each cadence point. After an idle gap longer than the
// cadence a single sample is taken — gaps are not backfilled, which keeps
// long idle workloads from flooding the series with identical rows.
type Sampler struct {
	every   sim.Time
	next    sim.Time
	started bool
	names   []string
	probes  []func() float64
	rows    []Sample
}

// Sample is one row of the series: the sample time and one value per
// registered probe, in registration order.
type Sample struct {
	T sim.Time
	V []float64
}

// NewSampler builds a sampler with the given cadence.
func NewSampler(every sim.Time) *Sampler {
	if every <= 0 {
		panic("obs: sampler cadence must be positive")
	}
	return &Sampler{every: every}
}

// Register adds a named probe. Registration order fixes the column order.
// Probes must be registered before the first Tick.
func (s *Sampler) Register(name string, probe func() float64) {
	if s == nil {
		return
	}
	if s.started {
		panic(fmt.Sprintf("obs: probe %q registered after sampling started", name))
	}
	s.names = append(s.names, name)
	s.probes = append(s.probes, probe)
}

// Tick samples all probes if a cadence point has passed (nil-safe).
func (s *Sampler) Tick(now sim.Time) {
	if s == nil || len(s.probes) == 0 {
		return
	}
	if s.started && now < s.next {
		return
	}
	s.started = true
	s.sample(now)
	s.next = now + s.every
}

func (s *Sampler) sample(now sim.Time) {
	v := make([]float64, len(s.probes))
	for i, p := range s.probes {
		v[i] = p()
	}
	s.rows = append(s.rows, Sample{T: now, V: v})
}

// Names returns the series names in column order.
func (s *Sampler) Names() []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s.names...)
}

// Rows returns the recorded samples.
func (s *Sampler) Rows() []Sample {
	if s == nil {
		return nil
	}
	return s.rows
}

// Series returns the recorded values of one named probe, or nil when the
// name is unknown.
func (s *Sampler) Series(name string) []float64 {
	if s == nil {
		return nil
	}
	col := -1
	for i, n := range s.names {
		if n == name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}
	out := make([]float64, len(s.rows))
	for i, row := range s.rows {
		out[i] = row.V[col]
	}
	return out
}

// WriteCSV renders the series as CSV with a t_us time column.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := fmt.Fprint(w, "t_us"); err != nil {
		return err
	}
	for _, n := range s.names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, row := range s.rows {
		if _, err := fmt.Fprintf(w, "%d", int64(row.T)); err != nil {
			return err
		}
		for _, v := range row.V {
			if _, err := fmt.Fprintf(w, ",%g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
