package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
	if r.Counter("writes") != c {
		t.Error("counter not interned by name")
	}
	g := r.Gauge("u")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
	if r.Gauge("u") != g {
		t.Error("gauge not interned by name")
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Record(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 ||
		h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	cs, gs, hs := r.Names()
	if cs != nil || gs != nil || hs != nil {
		t.Error("nil registry names not empty")
	}
}

func TestHistIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose range contains it, and bucket
	// indices must be non-decreasing in the value.
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	prev := -1
	for _, v := range values {
		i := histIndex(v)
		if i < 0 || i >= histBucketCount {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Errorf("histIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if up := histUpper(i); up < v {
			t.Errorf("histUpper(%d) = %d below value %d", i, up, v)
		}
	}
	// Small values are exact.
	for v := int64(0); v < histSubCount; v++ {
		if got := histUpper(histIndex(v)); got != v {
			t.Errorf("small value %d not exact: upper %d", v, got)
		}
	}
}

func TestHistogramStatsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-500.5) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	// Quantiles report a bucket upper bound: at most ~1/16 relative error.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := q * 1000
		got := float64(h.Quantile(q))
		if got < exact || got > exact*(1+1.0/float64(histHalfSub))+1 {
			t.Errorf("q%.2f = %v, exact %v", q, got, exact)
		}
	}
	if h.Quantile(0) < 1 {
		t.Error("q0 must still cover at least one observation")
	}
	if h.Quantile(1) < 1000 {
		t.Errorf("q1 = %d must bound the max", h.Quantile(1))
	}
}

// TestHistogramQuantilePropertyRandom is the accuracy contract of the
// fixed-bucket design: for any recorded sequence and any q, the reported
// quantile lands in the same bucket as the exact order statistic (and is
// that bucket's upper bound, so it never under-reports).
func TestHistogramQuantilePropertyRandom(t *testing.T) {
	distributions := []struct {
		name string
		gen  func(r *rand.Rand) int64
	}{
		{"uniform", func(r *rand.Rand) int64 { return r.Int63n(1_000_000) }},
		{"exponential", func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 5000) }},
		{"heavy_tail", func(r *rand.Rand) int64 { return int64(math.Pow(10, r.Float64()*9)) }},
		{"tiny", func(r *rand.Rand) int64 { return r.Int63n(8) }},
		{"constant", func(r *rand.Rand) int64 { return 4242 }},
	}
	quantiles := []float64{0.001, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for _, dist := range distributions {
		for seed := int64(1); seed <= 5; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 1 + r.Intn(5000)
			h := &Histogram{}
			samples := make([]int64, n)
			for i := range samples {
				v := dist.gen(r)
				samples[i] = v
				h.Record(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range quantiles {
				k := int(math.Ceil(q * float64(n)))
				if k < 1 {
					k = 1
				}
				exact := samples[k-1]
				got := h.Quantile(q)
				if got < exact {
					t.Fatalf("%s seed=%d n=%d q=%v: quantile %d under-reports exact %d",
						dist.name, seed, n, q, got, exact)
				}
				if histIndex(got) != histIndex(exact) {
					t.Fatalf("%s seed=%d n=%d q=%v: quantile %d (bucket %d) not in exact's bucket %d (exact %d)",
						dist.name, seed, n, q, got, histIndex(got), histIndex(exact), exact)
				}
			}
		}
	}
}

// TestHistogramConcurrentSnapshot exercises recording racing Snapshot; run
// under -race (CI does) it proves the lock-free instruments are data-race
// free and snapshots are never torn below what was recorded before start.
func TestHistogramConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	c := r.Counter("n")
	const writers = 4
	const perWriter = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < perWriter; i++ {
				h.Record(rng.Int63n(1 << 20))
				c.Inc()
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		last := int64(0)
		for {
			snap := r.Snapshot()
			hs := snap.Histograms["lat"]
			if hs.Count < last {
				t.Error("histogram count went backwards")
				return
			}
			last = hs.Count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	final := r.Snapshot()
	if got := final.Histograms["lat"].Count; got != writers*perWriter {
		t.Errorf("final count = %d, want %d", got, writers*perWriter)
	}
	if got := final.Counters["n"]; got != writers*perWriter {
		t.Errorf("final counter = %d, want %d", got, writers*perWriter)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := &Histogram{}
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative record not clamped: %+v", h.Snapshot())
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Counter("a.count").Add(1)
	r.Gauge("u").Set(0.5)
	r.Histogram("lat").Record(7)
	snap := r.Snapshot()
	if snap.Counters["a.count"] != 1 || snap.Counters["b.count"] != 3 {
		t.Errorf("counters: %v", snap.Counters)
	}
	if snap.Gauges["u"] != 0.5 {
		t.Errorf("gauges: %v", snap.Gauges)
	}
	hs := snap.Histograms["lat"]
	if hs.Count != 1 || hs.P50 != 7 {
		t.Errorf("histogram snapshot: %+v", hs)
	}
	cs, gs, hsNames := r.Names()
	if len(cs) != 2 || cs[0] != "a.count" || cs[1] != "b.count" {
		t.Errorf("counter names not sorted: %v", cs)
	}
	if len(gs) != 1 || len(hsNames) != 1 {
		t.Errorf("names: %v %v", gs, hsNames)
	}
}
