package obs

import (
	"math"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
	if r.Counter("writes") != c {
		t.Error("counter not interned by name")
	}
	g := r.Gauge("u")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
	if r.Gauge("u") != g {
		t.Error("gauge not interned by name")
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Record(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 ||
		h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	cs, gs, hs := r.Names()
	if cs != nil || gs != nil || hs != nil {
		t.Error("nil registry names not empty")
	}
}

func TestHistIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose range contains it, and bucket
	// indices must be non-decreasing in the value.
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	prev := -1
	for _, v := range values {
		i := histIndex(v)
		if i < 0 || i >= histBucketCount {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Errorf("histIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if up := histUpper(i); up < v {
			t.Errorf("histUpper(%d) = %d below value %d", i, up, v)
		}
	}
	// Small values are exact.
	for v := int64(0); v < histSubCount; v++ {
		if got := histUpper(histIndex(v)); got != v {
			t.Errorf("small value %d not exact: upper %d", v, got)
		}
	}
}

func TestHistogramStatsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-500.5) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	// Quantiles report a bucket upper bound: at most ~1/16 relative error.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := q * 1000
		got := float64(h.Quantile(q))
		if got < exact || got > exact*(1+1.0/float64(histHalfSub))+1 {
			t.Errorf("q%.2f = %v, exact %v", q, got, exact)
		}
	}
	if h.Quantile(0) < 1 {
		t.Error("q0 must still cover at least one observation")
	}
	if h.Quantile(1) < 1000 {
		t.Errorf("q1 = %d must bound the max", h.Quantile(1))
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := &Histogram{}
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative record not clamped: %+v", h.Snapshot())
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Counter("a.count").Add(1)
	r.Gauge("u").Set(0.5)
	r.Histogram("lat").Record(7)
	snap := r.Snapshot()
	if snap.Counters["a.count"] != 1 || snap.Counters["b.count"] != 3 {
		t.Errorf("counters: %v", snap.Counters)
	}
	if snap.Gauges["u"] != 0.5 {
		t.Errorf("gauges: %v", snap.Gauges)
	}
	hs := snap.Histograms["lat"]
	if hs.Count != 1 || hs.P50 != 7 {
		t.Errorf("histogram snapshot: %+v", hs)
	}
	cs, gs, hsNames := r.Names()
	if len(cs) != 2 || cs[0] != "a.count" || cs[1] != "b.count" {
		t.Errorf("counter names not sorted: %v", cs)
	}
	if len(gs) != 1 || len(hsNames) != 1 {
		t.Errorf("names: %v %v", gs, hsNames)
	}
}
