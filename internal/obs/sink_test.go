package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureEvents is a small, fixed event set covering every phase and domain.
func fixtureEvents() []Event {
	return []Event{
		{Kind: KindXfer, Phase: PhaseSpan, Track: 0, Start: 100, Dur: 40, A: 2, B: 7},
		{Kind: KindProgramLSB, Phase: PhaseSpan, Track: 2, Start: 140, Dur: 900, A: 7, B: 3},
		{Kind: KindPolicy, Phase: PhaseInstant, Track: 2, Start: 140, A: 1, B: 64},
		{Kind: KindRead, Phase: PhaseSpan, Track: 1, Start: 1040, Dur: 70, A: 5, B: 9},
		{Kind: KindErase, Phase: PhaseSpan, Track: 2, Start: 1110, Dur: 3500, A: 7, B: 1},
		{Kind: KindBlockQueued, Phase: PhaseInstant, Track: 2, Start: 4610, A: 7, B: 2},
	}
}

func TestJSONLSinkWellFormed(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for _, e := range fixtureEvents() {
		e := e
		if err := s.WriteEvent(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", n, err, sc.Text())
		}
		for _, key := range []string{"name", "domain", "track", "ts"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("line %d missing %q: %s", n, key, sc.Text())
			}
		}
		n++
	}
	if n != len(fixtureEvents()) {
		t.Errorf("wrote %d lines, want %d", n, len(fixtureEvents()))
	}
	// Spot checks: instants omit dur, spans carry it.
	if bytes.Contains(buf.Bytes(), []byte(`"name":"policy","dur"`)) {
		t.Error("instant carries dur")
	}
}

func TestChromeSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	for _, e := range fixtureEvents() {
		e := e
		if err := s.WriteEvent(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Must parse as the trace_event JSON object format.
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("output not valid trace JSON: %v\n%s", err, buf.String())
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	// 6 events + metadata (3 process names, 4 distinct tracks).
	if len(trace.TraceEvents) != 6+3+4 {
		t.Errorf("trace has %d records", len(trace.TraceEvents))
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file; rerun with -update if intentional\ngot:\n%s", buf.String())
	}
}

func TestChromeSinkTrackMetadata(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	e := Event{Kind: KindXfer, Phase: PhaseSpan, Track: 3, Start: 0, Dur: 10}
	if err := s.WriteEvent(&e); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"process_name"`, `"channel buses"`, `"name":"thread_name"`, `"channel 3"`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("metadata missing %s in:\n%s", want, out)
		}
	}
}

func TestChromeSinkEmpty(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var trace map[string]any
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("empty trace not valid JSON: %v\n%s", err, buf.String())
	}
}
