package obs

import (
	"strings"
	"testing"

	"flexftl/internal/sim"
)

func TestSamplerCadence(t *testing.T) {
	s := NewSampler(10)
	x := 0.0
	s.Register("x", func() float64 { x++; return x })

	// First tick samples immediately, whatever the time.
	s.Tick(3)
	// Within the cadence window: skipped.
	s.Tick(5)
	s.Tick(12)
	// At/after the next point (3+10=13): sampled.
	s.Tick(13)
	// Long idle gap: exactly one sample at the tick, no backfill.
	s.Tick(1000)

	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(rows), rows)
	}
	wantT := []sim.Time{3, 13, 1000}
	for i, r := range rows {
		if r.T != wantT[i] {
			t.Errorf("row %d at t=%d, want %d", i, r.T, wantT[i])
		}
	}
	if got := s.Series("x"); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("series = %v", got)
	}
	if s.Series("missing") != nil {
		t.Error("unknown series must be nil")
	}
}

func TestSamplerColumnsAndCSV(t *testing.T) {
	s := NewSampler(sim.Millisecond)
	s.Register("u", func() float64 { return 0.25 })
	s.Register("q", func() float64 { return 42 })
	s.Tick(0)
	s.Tick(2 * sim.Millisecond)

	names := s.Names()
	if len(names) != 2 || names[0] != "u" || names[1] != "q" {
		t.Fatalf("names = %v", names)
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %q", sb.String())
	}
	if lines[0] != "t_us,u,q" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,0.25,42" || lines[2] != "2000,0.25,42" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
}

func TestSamplerRegisterAfterStartPanics(t *testing.T) {
	s := NewSampler(1)
	s.Register("x", func() float64 { return 0 })
	s.Tick(0)
	defer func() {
		if recover() == nil {
			t.Error("late Register must panic")
		}
	}()
	s.Register("y", func() float64 { return 0 })
}

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.Register("x", func() float64 { return 0 })
	s.Tick(0)
	if s.Rows() != nil || s.Names() != nil || s.Series("x") != nil {
		t.Error("nil sampler must read empty")
	}
	if err := s.WriteCSV(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

func TestSamplerNoProbesNoRows(t *testing.T) {
	s := NewSampler(1)
	s.Tick(0)
	s.Tick(10)
	if len(s.Rows()) != 0 {
		t.Error("probe-less sampler must record nothing")
	}
}

func TestSamplerBadCadencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive cadence must panic")
		}
	}()
	NewSampler(0)
}
