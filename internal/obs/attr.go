package obs

// Cause classifies why a unit of work was issued — the attribution axis of
// the latency layer. Every device operation (program, read, erase) runs under
// the device's ambient cause (set by the FTL around its GC, backup and pad
// paths; CauseHost is the default), and the device charges the op's busy time
// to that cause. The runner additionally charges host stall time spent
// waiting on a full write buffer to CauseBufferFull. Together the causes
// decompose "why was this op slow" into media busy on the host's own behalf,
// GC relocation, backup/parity programs, padding, the two-phase reprogram
// penalty, and buffer backpressure; docs/OBSERVABILITY.md documents the
// blame semantics.
type Cause uint8

// Attribution causes.
const (
	// CauseHost is the default: a host-issued data operation occupying the
	// media on its own behalf.
	CauseHost Cause = iota
	// CauseGC covers GC relocation reads/programs and reclaim erases,
	// foreground and background alike.
	CauseGC
	// CauseBackup covers parity/backup page programs and backup-block
	// recycle erases.
	CauseBackup
	// CausePad covers dummy pad programs (the return-to-fast padding).
	CausePad
	// CauseReprogram is the two-phase reprogram penalty: the extra latency a
	// host write pays for landing on a slow (MSB/refinement) page instead of
	// a fast one. It is charged by the kernel, not the device — the device
	// sees an ordinary host program.
	CauseReprogram
	// CauseBufferFull is host stall on a full write buffer, charged by the
	// runner (the device never sees it).
	CauseBufferFull
	// CauseReadRetry is the extra sensing latency of ECC read-retry rounds:
	// when the reliability model is enabled and a page's raw bit errors
	// exceed the fast-path correction strength, each recalibrated re-read
	// occupies the chip for another array read. Charged by the device.
	CauseReadRetry
	// CauseScrub covers patrol reads and refresh relocations issued by the
	// kernel's idle-time scrubber (reliability model enabled).
	CauseScrub

	// CauseCount is the sentinel; arrays indexed by Cause use it as length.
	CauseCount
)

var causeNames = [CauseCount]string{
	CauseHost:       "host",
	CauseGC:         "gc",
	CauseBackup:     "backup",
	CausePad:        "pad",
	CauseReprogram:  "reprogram",
	CauseBufferFull: "buffer_full",
	CauseReadRetry:  "read_retry",
	CauseScrub:      "scrub",
}

// String returns the cause's snake_case name (used in instrument names).
func (c Cause) String() string {
	if c >= CauseCount {
		return "unknown"
	}
	return causeNames[c]
}

// BusyCounterName returns the registry counter a device charges cause-split
// busy time to: "<device>.busy_us.<cause>" (e.g. "nand.busy_us.gc").
func BusyCounterName(device string, c Cause) string {
	return device + ".busy_us." + c.String()
}

// BlameCounterName returns the registry counter the kernel/runner charge
// host-visible stall to: "blame.<cause>_us".
func BlameCounterName(c Cause) string {
	return "blame." + c.String() + "_us"
}
