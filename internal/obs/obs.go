// Package obs is the observability layer of the simulation stack: a typed,
// allocation-conscious event tracer with pluggable sinks (JSONL and Chrome
// trace_event, so a run opens directly in chrome://tracing or Perfetto), a
// registry of named counters, gauges and HDR-style histograms, and a
// virtual-time series sampler for internal state trajectories (write-buffer
// utilization u, LSB quota q, slow-block-queue depth, free-block counts).
//
// Everything is nil-safe: a nil *Recorder (tracing disabled) turns every
// emission into a no-op with zero allocations, so instrumentation can stay
// unconditionally wired through the hot paths. The tracer only observes —
// it never advances the virtual clock — so runs are bit-identical with
// tracing on or off.
//
// The package depends only on internal/sim (for virtual time); the device
// model, FTLs, buffer and runner all thread a single *Recorder through
// their call graphs.
package obs

import "flexftl/internal/sim"

// Kind identifies the event type. The taxonomy covers the device model
// (per-op spans), the FTL layer (GC and block life cycle) and policy
// decisions; docs/OBSERVABILITY.md is the authoritative catalogue.
type Kind uint8

// Event kinds.
const (
	// KindNone is the zero Kind; it is never emitted.
	KindNone Kind = iota

	// Device spans (tracks: chip or channel).
	KindRead       // page sense on the chip array
	KindProgramLSB // LSB page program on the chip array
	KindProgramMSB // MSB page program on the chip array
	KindErase      // block erase
	KindXfer       // data transfer on the channel bus

	// FTL events (tracks: chip).
	KindGCCollect   // foreground victim collection (span)
	KindBGCStart    // background GC picked a new victim
	KindBGCResume   // background GC resumed an in-progress victim
	KindBGCFinish   // background GC erased and freed its victim
	KindBlockFast   // block opened as the active fast block
	KindBlockQueued // fast block filled, appended to the slow-block queue
	KindBlockFull   // slow block filled, moved to the full pool
	KindBackup      // parity/copy backup page program
	KindPad         // dummy pad program (rtfFTL return-to-fast padding)
	KindPolicy      // allocation-policy decision (LSB vs MSB)

	kindCount // sentinel
)

// Phase distinguishes how an event maps onto a timeline.
type Phase uint8

// Event phases.
const (
	PhaseSpan    Phase = iota // complete span [Start, Start+Dur)
	PhaseInstant              // point event at Start
)

// Domain names the track namespace an event belongs to: chip-array
// timelines, channel-bus timelines, and per-chip FTL decision timelines.
type Domain uint8

// Track domains.
const (
	DomainChip Domain = iota
	DomainChannel
	DomainFTL
	domainCount
)

// String returns the domain name used by the sinks.
func (d Domain) String() string {
	switch d {
	case DomainChip:
		return "chip"
	case DomainChannel:
		return "channel"
	case DomainFTL:
		return "ftl"
	}
	return "unknown"
}

// Event is one trace record. It is a fixed-size value (no pointers) so the
// ring buffer holds events inline and emission never allocates.
type Event struct {
	Kind  Kind
	Phase Phase
	Track int32    // chip or channel index within the kind's domain
	Start sim.Time // virtual start time (µs)
	Dur   sim.Time // span duration; 0 for instants
	A, B  int64    // kind-specific arguments (see kindInfo)
}

// kindInfo carries the per-kind metadata the sinks render: event name,
// track domain and the labels of the A/B arguments.
var kindInfo = [kindCount]struct {
	name   string
	domain Domain
	a, b   string
}{
	KindNone:        {"none", DomainChip, "a", "b"},
	KindRead:        {"read", DomainChip, "block", "wl"},
	KindProgramLSB:  {"program_lsb", DomainChip, "block", "wl"},
	KindProgramMSB:  {"program_msb", DomainChip, "block", "wl"},
	KindErase:       {"erase", DomainChip, "block", "erase_count"},
	KindXfer:        {"bus_xfer", DomainChannel, "chip", "block"},
	KindGCCollect:   {"gc_foreground", DomainFTL, "victim", "copies"},
	KindBGCStart:    {"bgc_start", DomainFTL, "victim", "free_blocks"},
	KindBGCResume:   {"bgc_resume", DomainFTL, "victim", "next_page"},
	KindBGCFinish:   {"bgc_finish", DomainFTL, "victim", "free_blocks"},
	KindBlockFast:   {"block_fast_open", DomainFTL, "block", "free_blocks"},
	KindBlockQueued: {"block_queued_slow", DomainFTL, "block", "queue_depth"},
	KindBlockFull:   {"block_full", DomainFTL, "block", "queue_depth"},
	KindBackup:      {"backup_write", DomainFTL, "block", "backup_block"},
	KindPad:         {"pad_write", DomainFTL, "block", "wl"},
	KindPolicy:      {"policy", DomainFTL, "use_lsb", "quota"},
}

// Name returns the event name used by the sinks.
func (k Kind) Name() string {
	if k >= kindCount {
		return "unknown"
	}
	return kindInfo[k].name
}

// TrackDomain returns the track namespace of the kind.
func (k Kind) TrackDomain() Domain {
	if k >= kindCount {
		return DomainChip
	}
	return kindInfo[k].domain
}

// ArgNames returns the labels of the A and B arguments.
func (k Kind) ArgNames() (a, b string) {
	if k >= kindCount {
		return "a", "b"
	}
	return kindInfo[k].a, kindInfo[k].b
}
