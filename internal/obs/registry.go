package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. Writes come from the
// simulation thread; reads may come concurrently from the -debug-addr HTTP
// server, hence the atomic.
type Counter struct{ v atomic.Int64 }

// Add increments the counter (nil-safe).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one (nil-safe).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 (utilization, queue depth, ...).
type Gauge struct{ v atomic.Uint64 }

// Set stores the value (nil-safe).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Histogram is an HDR-style log-linear histogram of non-negative int64
// values (virtual-time latencies in µs, sizes, depths). Values below 2^histSubBits
// are recorded exactly; above that, buckets are split into 2^(histSubBits-1)
// linear sub-buckets per power of two, bounding the relative quantile error
// at ~1/2^(histSubBits-1). Recording is allocation-free.
type Histogram struct {
	buckets [histBucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // valid when count > 0
}

const (
	histSubBits     = 5                // exact below 32
	histSubCount    = 1 << histSubBits // 32
	histHalfSub     = histSubCount / 2 // 16 linear sub-buckets per octave
	histOctaves     = 64 - histSubBits // shifts 1..59 reachable by int64
	histBucketCount = histSubCount + histOctaves*histHalfSub
)

// histIndex maps a value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	shift := bits.Len64(u) - histSubBits
	sub := int(u>>uint(shift)) - histHalfSub // in [0, histHalfSub)
	return histSubCount + (shift-1)*histHalfSub + sub
}

// histUpper returns the highest value mapping to bucket i (the value a
// quantile query reports, per HDR convention).
func histUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	shift := (i-histSubCount)/histHalfSub + 1
	sub := int64((i-histSubCount)%histHalfSub + histHalfSub)
	return (sub+1)<<uint(shift) - 1
}

// Record adds one observation (nil-safe; negative values clamp to 0).
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histIndex(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		h.min.Store(v)
		h.max.Store(v)
		return
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the arithmetic mean of the observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(h.count.Load())
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) with the
// histogram's bucket resolution.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBucketCount; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return histUpper(i)
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is a point-in-time summary, JSON-marshalable for the
// metric dumps and expvar.
type HistogramSnapshot struct {
	Count              int64
	Min, Max           int64
	Mean               float64
	P50, P90, P95, P99 int64
	P999               int64
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// Registry is a get-or-create namespace of counters, gauges and histograms.
// Creation is guarded by a mutex (cold path); the instruments themselves
// are lock-free. Instrumented components fetch their handles once at
// instrument time and hold them, so hot paths never touch the maps.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// RegistrySnapshot is a JSON-marshalable point-in-time view of a registry.
type RegistrySnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every instrument. Safe to call concurrently with
// recording (values may be mid-update but never torn).
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		snap.Histograms[n] = h.Snapshot()
	}
	return snap
}

// Names returns the sorted instrument names of each class (tests, render).
func (r *Registry) Names() (counters, gauges, histograms []string) {
	if r == nil {
		return nil, nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.histograms {
		histograms = append(histograms, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return counters, gauges, histograms
}
