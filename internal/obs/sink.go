package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Sink receives trace events from a Recorder. Implementations own their
// output framing; Close finalizes it. WriteEvent is called in emission
// order on the simulation thread.
type Sink interface {
	WriteEvent(e *Event) error
	Close() error
}

// domainPID maps a track domain to the Chrome trace "process" that groups
// its tracks: chips, channels and per-chip FTL timelines render as three
// processes with one thread per track.
func domainPID(d Domain) int { return int(d) + 1 }

// domainProcessName labels the Chrome trace processes.
func domainProcessName(d Domain) string {
	switch d {
	case DomainChip:
		return "nand chips"
	case DomainChannel:
		return "channel buses"
	case DomainFTL:
		return "ftl (per chip)"
	}
	return "unknown"
}

// JSONLSink writes one self-describing JSON object per line:
//
//	{"name":"program_lsb","domain":"chip","track":3,"ts":120,"dur":900,"block":7,"wl":2}
//
// ts and dur are microseconds of virtual time; instants omit dur.
type JSONLSink struct {
	w *bufio.Writer
}

// NewJSONLSink wraps w in a line-oriented sink. The caller retains
// ownership of any underlying file; Close only flushes.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// WriteEvent writes one line.
func (s *JSONLSink) WriteEvent(e *Event) error {
	a, b := e.Kind.ArgNames()
	var err error
	if e.Phase == PhaseInstant {
		_, err = fmt.Fprintf(s.w, "{\"name\":%q,\"domain\":%q,\"track\":%d,\"ts\":%d,%q:%d,%q:%d}\n",
			e.Kind.Name(), e.Kind.TrackDomain().String(), e.Track, int64(e.Start), a, e.A, b, e.B)
	} else {
		_, err = fmt.Fprintf(s.w, "{\"name\":%q,\"domain\":%q,\"track\":%d,\"ts\":%d,\"dur\":%d,%q:%d,%q:%d}\n",
			e.Kind.Name(), e.Kind.TrackDomain().String(), e.Track, int64(e.Start), int64(e.Dur), a, e.A, b, e.B)
	}
	return err
}

// Close flushes buffered output.
func (s *JSONLSink) Close() error { return s.w.Flush() }

// ChromeSink emits the Chrome trace_event JSON object format
// ({"traceEvents":[...]}) that chrome://tracing and Perfetto load directly.
// Spans become complete ("X") events, instants thread-scoped ("i") events;
// timestamps are microseconds of virtual time, which is exactly the
// trace_event unit. Close appends process/thread-name metadata for every
// track seen, so chips and channels appear as named tracks.
type ChromeSink struct {
	w      *bufio.Writer
	any    bool
	tracks map[[2]int32]struct{} // (domain, track) pairs seen
	err    error
}

// NewChromeSink wraps w in a trace_event sink and writes the header. The
// caller retains ownership of any underlying file; Close only flushes.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{
		w:      bufio.NewWriterSize(w, 1<<16),
		tracks: make(map[[2]int32]struct{}),
	}
	_, s.err = s.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	return s
}

func (s *ChromeSink) sep() string {
	if s.any {
		return ",\n"
	}
	s.any = true
	return ""
}

// WriteEvent appends one trace_event record.
func (s *ChromeSink) WriteEvent(e *Event) error {
	if s.err != nil {
		return s.err
	}
	d := e.Kind.TrackDomain()
	s.tracks[[2]int32{int32(d), e.Track}] = struct{}{}
	a, b := e.Kind.ArgNames()
	if e.Phase == PhaseInstant {
		_, s.err = fmt.Fprintf(s.w, "%s{\"name\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{%q:%d,%q:%d}}",
			s.sep(), e.Kind.Name(), int64(e.Start), domainPID(d), e.Track, a, e.A, b, e.B)
	} else {
		_, s.err = fmt.Fprintf(s.w, "%s{\"name\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{%q:%d,%q:%d}}",
			s.sep(), e.Kind.Name(), int64(e.Start), int64(e.Dur), domainPID(d), e.Track, a, e.A, b, e.B)
	}
	return s.err
}

// Close writes the track-name metadata and the closing braces, then
// flushes.
func (s *ChromeSink) Close() error {
	if s.err != nil {
		return s.err
	}
	// Deterministic metadata order: sort the (domain, track) pairs.
	keys := make([][2]int32, 0, len(s.tracks))
	for k := range s.tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	seenDomain := make(map[int32]bool)
	for _, k := range keys {
		d, track := Domain(k[0]), k[1]
		if !seenDomain[k[0]] {
			seenDomain[k[0]] = true
			if _, s.err = fmt.Fprintf(s.w, "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":%q}}",
				s.sep(), domainPID(d), domainProcessName(d)); s.err != nil {
				return s.err
			}
		}
		if _, s.err = fmt.Fprintf(s.w, "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s %d\"}}",
			s.sep(), domainPID(d), track, d.String(), track); s.err != nil {
			return s.err
		}
	}
	if _, s.err = s.w.WriteString("\n]}\n"); s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
