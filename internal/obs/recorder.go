package obs

import (
	"fmt"

	"flexftl/internal/sim"
)

// Recorder is the handle instrumented components emit through. A nil
// *Recorder is the disabled state: every method is a nil-safe no-op that
// performs no allocation, so callers thread the pointer unconditionally.
//
// Events are staged in a fixed ring buffer. With a sink attached the buffer
// is flushed when full (and on Close); without a sink the ring wraps,
// retaining the most recent events for in-memory inspection via Events().
//
// The Recorder, like the simulator, is single-threaded over virtual time.
// The registry it carries is safe for concurrent readers (the -debug-addr
// HTTP server), but Emit/Sample/Close must stay on the simulation thread.
type Recorder struct {
	sink    Sink
	reg     *Registry
	samp    *Sampler
	buf     []Event
	n       int   // valid events in buf
	next    int   // ring write cursor (sink == nil only)
	wrapped bool  // ring has overwritten old events
	emitted int64 // total events emitted
	err     error // first sink error, surfaced by Close
}

// Options configures a Recorder.
type Options struct {
	// Sink receives every event (streaming). nil keeps events in memory.
	Sink Sink
	// BufferEvents is the staging ring capacity (default 4096).
	BufferEvents int
	// Registry receives counters/gauges/histograms; nil allocates a fresh
	// one.
	Registry *Registry
	// Sampler, when set, is ticked by Recorder.Sample.
	Sampler *Sampler
}

// NewRecorder builds an enabled recorder.
func NewRecorder(o Options) *Recorder {
	if o.BufferEvents <= 0 {
		o.BufferEvents = 4096
	}
	if o.Registry == nil {
		o.Registry = NewRegistry()
	}
	return &Recorder{
		sink: o.Sink,
		reg:  o.Registry,
		samp: o.Sampler,
		buf:  make([]Event, o.BufferEvents),
	}
}

// Enabled reports whether the recorder is live. Callers may use it to skip
// argument computation; the emit methods are nil-safe regardless.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the metrics registry (nil when disabled).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Sampler returns the time-series sampler (nil when disabled or not
// configured).
func (r *Recorder) Sampler() *Sampler {
	if r == nil {
		return nil
	}
	return r.samp
}

// Emitted returns the total number of events emitted.
func (r *Recorder) Emitted() int64 {
	if r == nil {
		return 0
	}
	return r.emitted
}

// Span emits a complete-span event covering [start, end).
func (r *Recorder) Span(k Kind, track int32, start, end sim.Time, a, b int64) {
	if r == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	r.emit(Event{Kind: k, Phase: PhaseSpan, Track: track, Start: start, Dur: dur, A: a, B: b})
}

// Instant emits a point event at t.
func (r *Recorder) Instant(k Kind, track int32, t sim.Time, a, b int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: k, Phase: PhaseInstant, Track: track, Start: t, A: a, B: b})
}

func (r *Recorder) emit(e Event) {
	r.emitted++
	if r.sink == nil {
		r.buf[r.next] = e
		r.next++
		if r.next == len(r.buf) {
			r.next, r.wrapped = 0, true
		}
		if r.n < len(r.buf) {
			r.n++
		}
		return
	}
	if r.n == len(r.buf) {
		r.flush()
	}
	r.buf[r.n] = e
	r.n++
}

func (r *Recorder) flush() {
	for i := 0; i < r.n; i++ {
		if err := r.sink.WriteEvent(&r.buf[i]); err != nil && r.err == nil {
			r.err = err
		}
	}
	r.n = 0
}

// Events returns the buffered events in emission order. With a sink
// attached it returns only the not-yet-flushed tail; without one it returns
// the retained ring contents (the most recent BufferEvents emissions).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.sink != nil || !r.wrapped {
		return append([]Event(nil), r.buf[:r.n]...)
	}
	out := make([]Event, 0, r.n)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Sample ticks the attached sampler at virtual time now (no-op without a
// sampler).
func (r *Recorder) Sample(now sim.Time) {
	if r == nil || r.samp == nil {
		return
	}
	r.samp.Tick(now)
}

// Close flushes staged events and closes the sink, returning the first
// error encountered on the way.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	if r.sink != nil {
		r.flush()
		if err := r.sink.Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	if r.err != nil {
		return fmt.Errorf("obs: %w", r.err)
	}
	return nil
}
