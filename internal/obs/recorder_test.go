package obs

import (
	"errors"
	"strings"
	"testing"

	"flexftl/internal/sim"
)

// collectSink retains events in memory for assertions.
type collectSink struct {
	events []Event
	closed bool
}

func (c *collectSink) WriteEvent(e *Event) error {
	c.events = append(c.events, *e)
	return nil
}
func (c *collectSink) Close() error { c.closed = true; return nil }

func TestRecorderNilIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.Span(KindRead, 0, 0, 10, 1, 2)
	r.Instant(KindPolicy, 0, 5, 1, 0)
	r.Sample(100)
	if r.Events() != nil || r.Emitted() != 0 || r.Registry() != nil || r.Sampler() != nil {
		t.Error("nil recorder must read empty")
	}
	if err := r.Close(); err != nil {
		t.Error(err)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(Options{BufferEvents: 4})
	for i := 0; i < 6; i++ {
		r.Instant(KindPolicy, 0, sim.Time(i), int64(i), 0)
	}
	if r.Emitted() != 6 {
		t.Errorf("emitted = %d", r.Emitted())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want ring size 4", len(ev))
	}
	// The ring keeps the most recent events in emission order: 2,3,4,5.
	for i, e := range ev {
		if e.A != int64(i+2) {
			t.Errorf("event %d has A=%d, want %d", i, e.A, i+2)
		}
	}
}

func TestRecorderSinkFlush(t *testing.T) {
	sink := &collectSink{}
	r := NewRecorder(Options{Sink: sink, BufferEvents: 4})
	for i := 0; i < 10; i++ {
		r.Span(KindProgramLSB, 1, sim.Time(i*100), sim.Time(i*100+50), int64(i), 7)
	}
	// Two full buffers flushed, two staged.
	if len(sink.events) != 8 {
		t.Errorf("flushed %d events before Close", len(sink.events))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Error("Close did not close the sink")
	}
	if len(sink.events) != 10 {
		t.Fatalf("sink saw %d events, want 10", len(sink.events))
	}
	for i, e := range sink.events {
		if e.A != int64(i) || e.Kind != KindProgramLSB || e.Dur != 50 {
			t.Errorf("event %d out of order or corrupted: %+v", i, e)
		}
	}
}

func TestRecorderNegativeDurationClamped(t *testing.T) {
	r := NewRecorder(Options{})
	r.Span(KindErase, 0, 100, 40, 0, 0)
	if ev := r.Events(); len(ev) != 1 || ev[0].Dur != 0 {
		t.Errorf("negative span not clamped: %+v", ev)
	}
}

type failSink struct{ err error }

func (f *failSink) WriteEvent(*Event) error { return f.err }
func (f *failSink) Close() error            { return nil }

func TestRecorderSurfacesSinkError(t *testing.T) {
	boom := errors.New("disk gone")
	r := NewRecorder(Options{Sink: &failSink{err: boom}, BufferEvents: 1})
	r.Instant(KindPolicy, 0, 0, 0, 0)
	r.Instant(KindPolicy, 0, 1, 0, 0) // forces a flush into the failing sink
	err := r.Close()
	if !errors.Is(err, boom) {
		t.Errorf("Close() = %v, want wrapped %v", err, boom)
	}
}

func TestRecorderSampleTicksSampler(t *testing.T) {
	samp := NewSampler(10)
	samp.Register("x", func() float64 { return 1 })
	r := NewRecorder(Options{Sampler: samp})
	r.Sample(0)
	r.Sample(25)
	if rows := samp.Rows(); len(rows) != 2 {
		t.Errorf("sampler rows = %d, want 2", len(rows))
	}
	if r.Sampler() != samp {
		t.Error("Sampler() accessor broken")
	}
}

func TestRecorderRegistryDefault(t *testing.T) {
	r := NewRecorder(Options{})
	if r.Registry() == nil {
		t.Fatal("recorder must allocate a registry by default")
	}
	r.Registry().Counter("c").Inc()
	if r.Registry().Counter("c").Value() != 1 {
		t.Error("registry not retained")
	}
}

// TestDisabledPathAllocates0 is the hard guard behind the "instrumentation
// is free when off" claim: the full disabled call chain — recorder emits,
// registry lookups, instrument updates, sampler ticks — must not allocate.
func TestDisabledPathAllocates0(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Span(KindProgramLSB, 3, 100, 900, 42, 7)
		r.Instant(KindPolicy, 0, 100, 1, 64)
		r.Registry().Counter("x").Inc()
		r.Registry().Gauge("u").Set(0.5)
		r.Registry().Histogram("lat").Record(250)
		r.Sample(100)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
}

// TestEnabledPathAllocates0 is the enabled-side twin: with the ring
// recorder live and instruments prefetched (as every SetRecorder
// implementation does), spans, instants, histogram records and counter adds
// must still not allocate on the steady-state path.
func TestEnabledPathAllocates0(t *testing.T) {
	r := NewRecorder(Options{})
	h := r.Registry().Histogram("lat")
	c := r.Registry().Counter("busy")
	now := sim.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Span(KindProgramLSB, 3, now, now+900, 42, 7)
		r.Instant(KindPolicy, 0, now, 1, 64)
		h.Record(900)
		c.Add(900)
		now += 1000
	})
	if allocs != 0 {
		t.Errorf("enabled path allocates %v per op, want 0", allocs)
	}
}

// BenchmarkRecorderDisabled measures the nil-recorder hot path (satellite
// requirement: 0 allocs/op).
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span(KindProgramLSB, 3, sim.Time(i), sim.Time(i+900), 42, 7)
		r.Registry().Histogram("lat").Record(900)
		r.Sample(sim.Time(i))
	}
}

// BenchmarkRecorderEnabled measures the in-memory (ring) emission path.
func BenchmarkRecorderEnabled(b *testing.B) {
	r := NewRecorder(Options{})
	h := r.Registry().Histogram("lat")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span(KindProgramLSB, 3, sim.Time(i), sim.Time(i+900), 42, 7)
		h.Record(900)
	}
}

func TestKindMetadata(t *testing.T) {
	for k := KindNone; k < kindCount; k++ {
		if k.Name() == "" || k.Name() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		a, b := k.ArgNames()
		if a == "" || b == "" {
			t.Errorf("kind %s missing arg names", k.Name())
		}
		if d := k.TrackDomain(); d.String() == "unknown" {
			t.Errorf("kind %s has unknown domain", k.Name())
		}
	}
	if kindCount.Name() != "unknown" {
		t.Error("out-of-range kind must read unknown")
	}
	if !strings.Contains(DomainChannel.String(), "channel") {
		t.Errorf("domain string: %q", DomainChannel.String())
	}
}
