package obs

import "testing"

func TestCauseNamesAndCounterNames(t *testing.T) {
	want := map[Cause]string{
		CauseHost:       "host",
		CauseGC:         "gc",
		CauseBackup:     "backup",
		CausePad:        "pad",
		CauseReprogram:  "reprogram",
		CauseBufferFull: "buffer_full",
		CauseReadRetry:  "read_retry",
		CauseScrub:      "scrub",
	}
	if len(want) != int(CauseCount) {
		t.Fatalf("test covers %d causes, enum has %d", len(want), CauseCount)
	}
	for c, name := range want {
		if got := c.String(); got != name {
			t.Errorf("Cause(%d).String() = %q, want %q", c, got, name)
		}
	}
	if got := Cause(CauseCount).String(); got != "unknown" {
		t.Errorf("out-of-range cause = %q, want unknown", got)
	}
	if got := BusyCounterName("nand", CauseGC); got != "nand.busy_us.gc" {
		t.Errorf("BusyCounterName = %q", got)
	}
	if got := BlameCounterName(CauseBufferFull); got != "blame.buffer_full_us" {
		t.Errorf("BlameCounterName = %q", got)
	}
	// The zero value is the host cause: an un-tagged device charges host time.
	var zero Cause
	if zero != CauseHost {
		t.Error("zero Cause must be CauseHost")
	}
}
