package experiments

import (
	"fmt"
	"io"
	"strings"

	"flexftl/internal/ascii"
	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/stats"
	"flexftl/internal/vth"
)

// RenderFig1 prints the device latency asymmetry behind Figure 1, including
// the effective MSB latency once a copy backup is added (the 5x figure of
// Section 1).
func RenderFig1(w io.Writer, t nand.Timing) {
	fmt.Fprintln(w, "Figure 1 — MLC program latency asymmetry (2X-nm class device)")
	fmt.Fprintf(w, "  LSB page program                : %8v\n", t.ProgLSB)
	fmt.Fprintf(w, "  MSB page program                : %8v  (%.1fx LSB)\n", t.ProgMSB, t.Asymmetry())
	eff := t.ProgMSB + t.Read + t.ProgLSB // copy backup: read LSB + rewrite + MSB program
	fmt.Fprintf(w, "  MSB + paired-LSB copy backup    : %8v  (%.1fx LSB)\n",
		eff, float64(eff)/float64(t.ProgLSB))
	fmt.Fprintf(w, "  page read                       : %8v\n", t.Read)
	fmt.Fprintf(w, "  block erase                     : %8v\n", t.Erase)
}

// RenderFig1Distributions draws the four-state Vth distribution diagram of
// Figure 1 from the Monte-Carlo model, fresh and at the worst-case
// operating condition, with the read references marked.
func RenderFig1Distributions(w io.Writer, seed uint64) error {
	params := vth.DefaultParams()
	params.CellsPerWordLine = 4096
	model, err := vth.NewModel(params)
	if err != nil {
		return err
	}
	const wl = 8
	order := core.FPSOrder(wl)
	refs := params.ReadReferences()
	for _, cond := range []struct {
		name   string
		stress vth.StressCondition
	}{
		{"fresh", vth.Fresh},
		{"3K P/E + 1-year retention", vth.WorstCase},
	} {
		sample, err := model.SampleWordLine(wl, order, wl/2, cond.stress, rng.New(seed))
		if err != nil {
			return err
		}
		var pops []ascii.Population
		for s := vth.StateE; s <= vth.StateP3; s++ {
			pops = append(pops, ascii.Population{Label: s.String(), Values: sample.State(s)})
		}
		fmt.Fprintf(w, "\n  Vth distributions, %s:\n", cond.name)
		ascii.PlotHistogram(w, "", "Vth, V", pops, refs[:], 64, 7)
	}
	return nil
}

// RenderTable1 prints the regenerated workload characteristics.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 — I/O characteristics of the five benchmark workloads")
	fmt.Fprintf(w, "  %-11s %11s %12s %10s %10s %12s\n",
		"workload", "read:write", "intensity", "idle frac", "req pages", "offered IOPS")
	for _, r := range rows {
		read := int(r.ReadFraction*10 + 0.5)
		fmt.Fprintf(w, "  %-11s %7d:%-3d %12s %9.1f%% %10.2f %12.0f\n",
			r.Name, read, 10-read, r.Intensity, 100*r.IdleFraction, r.MeanReqPages, r.MeanIOPSOffer)
	}
}

// RenderFig4 prints the reliability box plots as five-number tables.
func RenderFig4(w io.Writer, res Fig4Result) {
	fmt.Fprintf(w, "Figure 4 — reliability of program orders (%d blocks, %d pages/order)\n",
		res.Config.Blocks, res.Rows[0].Pages)
	fmt.Fprintln(w, "(a) per-page sum of Vth state widths WPi [V], fresh:")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-22s %s\n", r.Order, r.WP)
	}
	var boxes []ascii.Box
	for _, r := range res.Rows {
		boxes = append(boxes, ascii.Box{Label: r.Order, Summary: r.WP})
	}
	ascii.PlotBoxes(w, "", "WPi sum, V", boxes, 56)
	fmt.Fprintln(w, "(b) per-page bit error rate at 3K P/E + 1-year retention:")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-22s %s\n", r.Order, fmtBERBox(r.BER))
	}
	fmt.Fprintln(w, "(b') 4KB-page ECC failure probability at end of life (40-bit/1KB BCH):")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-22s %.3g\n", r.Order, r.PageFailEOL)
	}
	fmt.Fprintln(w, "shape check: RPSfull/RPShalf boxes overlap FPS; the forbidden order is far wider.")
}

func fmtBERBox(f stats.FiveNum) string {
	return fmt.Sprintf("min=%.2e q1=%.2e med=%.2e q3=%.2e max=%.2e",
		f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// RenderFig8a prints normalized IOPS per workload (Figure 8(a)).
func RenderFig8a(w io.Writer, res Fig8Result) {
	fmt.Fprintln(w, "Figure 8(a) — normalized IOPS (pageFTL = 1.00)")
	renderMatrix(w, res, func(c *Fig8Cell) float64 { return c.NormIOPS },
		func(s string) float64 { return res.AverageNormIOPS(s) })
}

// RenderFig8b prints normalized block erasure counts (Figure 8(b)).
func RenderFig8b(w io.Writer, res Fig8Result) {
	fmt.Fprintln(w, "Figure 8(b) — normalized block erasure count (pageFTL = 1.00)")
	renderMatrix(w, res, func(c *Fig8Cell) float64 { return c.NormErases },
		func(s string) float64 { return res.AverageNormErases(s) })
}

func renderMatrix(w io.Writer, res Fig8Result, cell func(*Fig8Cell) float64, avg func(string) float64) {
	fmt.Fprintf(w, "  %-10s", "")
	for _, wl := range res.Workloads {
		fmt.Fprintf(w, " %10s", wl)
	}
	fmt.Fprintf(w, " %10s\n", "Average")
	for _, s := range res.Schemes {
		fmt.Fprintf(w, "  %-10s", s)
		for _, wl := range res.Workloads {
			fmt.Fprintf(w, " %10.2f", cell(res.Cells[s][wl]))
		}
		fmt.Fprintf(w, " %10.2f\n", avg(s))
	}
}

// RenderFig8c prints the Varmail write-bandwidth CDF curves (Figure 8(c))
// as aligned columns plus an ASCII plot.
func RenderFig8c(w io.Writer, res Fig8Result) {
	fmt.Fprintln(w, "Figure 8(c) — CDF of write bandwidth for Varmail [MB/s]")
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}
	fmt.Fprintf(w, "  %-10s", "CDF")
	for _, q := range quantiles {
		fmt.Fprintf(w, " %8.0f%%", q*100)
	}
	fmt.Fprintln(w)
	for _, s := range res.Schemes {
		m := res.VarmailCDF(s)
		fmt.Fprintf(w, "  %-10s", s)
		for _, q := range quantiles {
			fmt.Fprintf(w, " %9.1f", m.BandwidthCDF.Inverse(q))
		}
		fmt.Fprintln(w)
	}
	var series []ascii.Series
	for _, s := range res.Schemes {
		m := res.VarmailCDF(s)
		series = append(series, ascii.Series{Label: s, Points: m.BandwidthCDF.Points(60)})
	}
	fmt.Fprintln(w)
	ascii.PlotCDF(w, "  CDF curves:", "write bandwidth, MB/s", series, 60, 12)
	flex := res.VarmailCDF("flexFTL").PeakWriteBandwidthMBs
	rtf := res.VarmailCDF("rtfFTL").PeakWriteBandwidthMBs
	if rtf > 0 {
		fmt.Fprintf(w, "  peak(flexFTL)/peak(rtfFTL) = %.2fx (paper: ~2.13x)\n", flex/rtf)
	}
}

// RenderFig8Summary prints the headline comparisons of Section 4.2.
func RenderFig8Summary(w io.Writer, res Fig8Result) {
	fmt.Fprintln(w, "Section 4.2 headline numbers (flexFTL vs each comparison FTL):")
	for _, ref := range []string{"pageFTL", "parityFTL", "rtfFTL"} {
		maxGain, avgGain := 0.0, 0.0
		for _, wl := range res.Workloads {
			g := res.Cells["flexFTL"][wl].NormIOPS/res.Cells[ref][wl].NormIOPS - 1
			avgGain += g
			if g > maxGain {
				maxGain = g
			}
		}
		avgGain /= float64(len(res.Workloads))
		fmt.Fprintf(w, "  IOPS vs %-10s: up to %+.0f%%, average %+.0f%%\n", ref, 100*maxGain, 100*avgGain)
	}
	for _, ref := range []string{"parityFTL", "rtfFTL"} {
		maxRed, avgRed := 0.0, 0.0
		for _, wl := range res.Workloads {
			r := 1 - res.Cells["flexFTL"][wl].NormErases/res.Cells[ref][wl].NormErases
			avgRed += r
			if r > maxRed {
				maxRed = r
			}
		}
		avgRed /= float64(len(res.Workloads))
		fmt.Fprintf(w, "  erasures vs %-7s: up to -%.0f%%, average -%.0f%%\n", ref, 100*maxRed, 100*avgRed)
	}
}

// Rule prints a section divider.
func Rule(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
