package experiments

import (
	"fmt"
	"io"

	"flexftl/internal/nlevel"
	"flexftl/internal/par"
	"flexftl/internal/rng"
	"flexftl/internal/stats"
	"flexftl/internal/vth"
)

// The TLC extension study: the paper claims (Section 1) that RPS applies to
// TLC devices with a similar program scheme. This experiment repeats the
// Figure 4 methodology on the generalized 3-bit formalism: vendor staircase
// vs the relaxed 3-phase order vs the forbidden worst case.

// Fig4TLCConfig parameterizes the TLC reliability study.
type Fig4TLCConfig struct {
	Blocks    int
	WordLines int
	Cells     int
	Seed      uint64
	// Workers bounds the fan-out (0 = all cores, 1 = serial); results are
	// worker-count independent.
	Workers int
}

// DefaultFig4TLCConfig mirrors the MLC study's scale.
func DefaultFig4TLCConfig() Fig4TLCConfig {
	return Fig4TLCConfig{Blocks: 45, WordLines: 64, Cells: 1024, Seed: 2016}
}

// Fig4TLCRow is one order's distributions.
type Fig4TLCRow struct {
	Order string
	WP    stats.FiveNum // per-page sum of the 8 state widths, fresh
	BER   stats.FiveNum // per-page BER at 3K P/E + 1-year retention
	Pages int
}

// Fig4TLCResult carries the rows.
type Fig4TLCResult struct {
	Config Fig4TLCConfig
	Rows   []Fig4TLCRow
}

// RunFig4TLC runs the TLC study.
func RunFig4TLC(cfg Fig4TLCConfig) (Fig4TLCResult, error) {
	params := vth.DefaultNLevelParams()
	params.CellsPerWordLine = cfg.Cells
	model, err := vth.NewNLevelModel(params)
	if err != nil {
		return Fig4TLCResult{}, err
	}
	scheme := nlevel.TLC(cfg.WordLines)
	type namedOrder struct {
		name  string
		pages []nlevel.Page
	}
	orders := []namedOrder{
		{"Fixed (vendor staircase)", nlevel.FixedOrder(scheme)},
		{"Relaxed 3-phase", nlevel.RelaxedFullOrder(scheme)},
		{"Unconstrained(worst)", nlevel.WorstCaseOrder(scheme)},
	}
	res := Fig4TLCResult{Config: cfg}

	type blockOut struct{ wps, bers []float64 }
	workers := par.Workers(cfg.Workers)
	scratch := par.MakeScratch(workers, vth.NewArena)
	slots := make([]blockOut, len(orders)*cfg.Blocks)
	err = par.Run(workers, len(slots), func(worker, task int) error {
		oi, b := task/cfg.Blocks, task%cfg.Blocks
		o := orders[oi]
		seed := cfg.Seed + uint64(oi)*7_000_003 + uint64(b)
		fresh, err := model.SimulateBlockArena(scheme, o.pages, vth.Fresh, rng.New(seed), scratch[worker])
		if err != nil {
			return fmt.Errorf("fig4tlc %s block %d: %w", o.name, b, err)
		}
		wps := fresh.WPSums() // copy out before the arena is reused below
		worn, err := model.SimulateBlockArena(scheme, o.pages, vth.WorstCase, rng.New(seed^0xabcdef), scratch[worker])
		if err != nil {
			return fmt.Errorf("fig4tlc %s block %d (stress): %w", o.name, b, err)
		}
		slots[task] = blockOut{wps: wps, bers: worn.BERs()}
		return nil
	})
	if err != nil {
		return res, err
	}
	for oi, o := range orders {
		var wps, bers []float64
		for b := 0; b < cfg.Blocks; b++ {
			out := slots[oi*cfg.Blocks+b]
			wps = append(wps, out.wps...)
			bers = append(bers, out.bers...)
		}
		res.Rows = append(res.Rows, Fig4TLCRow{
			Order: o.name,
			WP:    stats.Summarize(wps),
			BER:   stats.Summarize(bers),
			Pages: len(wps),
		})
	}
	return res, nil
}

// RenderFig4TLC prints the TLC study.
func RenderFig4TLC(w io.Writer, res Fig4TLCResult) {
	fmt.Fprintf(w, "TLC extension — reliability of 3-bit program orders (%d blocks, %d pages/order)\n",
		res.Config.Blocks, res.Rows[0].Pages)
	fmt.Fprintln(w, "(a) per-page sum of the 8 Vth state widths [V], fresh:")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-26s %s\n", r.Order, r.WP)
	}
	fmt.Fprintln(w, "(b) per-page bit error rate at 3K P/E + 1-year retention:")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-26s %s\n", r.Order, fmtBERBox(r.BER))
	}
	fmt.Fprintln(w, "shape check: the relaxed 3-phase order matches the vendor staircase — RPS")
	fmt.Fprintln(w, "generalizes to TLC as the paper claims; the forbidden order is clearly worse.")
}
