package experiments

import (
	"fmt"
	"io"

	"flexftl/internal/core"
	"flexftl/internal/ecc"
	"flexftl/internal/par"
	"flexftl/internal/rng"
	"flexftl/internal/stats"
	"flexftl/internal/vth"
)

// The stress sweep extends the Figure 4(b) point measurement into a curve:
// median BER and ECC page-failure probability versus P/E cycles at 1-year
// retention, for FPS and RPSfull. It shows *where* the ECC envelope is
// crossed and that the two orders cross it together — the lifetime-relevant
// reading of the reliability equivalence.

// StressPoint is one P/E cycle count's measurement.
type StressPoint struct {
	PECycles int
	// MedianBER per order name.
	MedianBER map[string]float64
	// PageFail per order name (4 KB page, 40-bit/1KB BCH).
	PageFail map[string]float64
}

// StressSweepConfig parameterizes the curve.
type StressSweepConfig struct {
	WordLines int
	Cells     int
	Blocks    int
	Seed      uint64
	Cycles    []int
	// Workers bounds the fan-out (0 = all cores, 1 = serial); results are
	// worker-count independent.
	Workers int
}

// DefaultStressSweepConfig covers begin-of-life to 2x the paper's worst
// case.
func DefaultStressSweepConfig() StressSweepConfig {
	return StressSweepConfig{
		WordLines: 32, Cells: 1024, Blocks: 8, Seed: 77,
		Cycles: []int{0, 1000, 2000, 3000, 4500, 6000},
	}
}

// RunStressSweep computes the curve.
func RunStressSweep(cfg StressSweepConfig) ([]StressPoint, error) {
	params := vth.DefaultParams()
	params.CellsPerWordLine = cfg.Cells
	model, err := vth.NewModel(params)
	if err != nil {
		return nil, err
	}
	// An ordered slice, not a map: every (cycle, order, block) triple maps
	// to a fixed task index so the parallel fan-out is deterministic.
	type namedOrder struct {
		name  string
		pages []core.Page
	}
	orders := []namedOrder{
		{"FPS", core.FPSOrder(cfg.WordLines)},
		{"RPSfull", core.RPSFullOrder(cfg.WordLines)},
	}
	code := ecc.Default40BitPer1K()

	perCycle := len(orders) * cfg.Blocks
	workers := par.Workers(cfg.Workers)
	scratch := par.MakeScratch(workers, vth.NewArena)
	slots := make([][]float64, len(cfg.Cycles)*perCycle)
	err = par.Run(workers, len(slots), func(worker, task int) error {
		ci, rem := task/perCycle, task%perCycle
		oi, b := rem/cfg.Blocks, rem%cfg.Blocks
		pe := cfg.Cycles[ci]
		stress := vth.StressCondition{PECycles: pe, RetentionYears: 1}
		res, err := model.SimulateBlockArena(cfg.WordLines, orders[oi].pages, stress,
			rng.New(cfg.Seed+uint64(pe)*31+uint64(b)), scratch[worker])
		if err != nil {
			return fmt.Errorf("stress sweep %s @%d: %w", orders[oi].name, pe, err)
		}
		slots[task] = res.BERs()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []StressPoint
	for ci, pe := range cfg.Cycles {
		pt := StressPoint{
			PECycles:  pe,
			MedianBER: make(map[string]float64),
			PageFail:  make(map[string]float64),
		}
		for oi, o := range orders {
			var bers []float64
			for b := 0; b < cfg.Blocks; b++ {
				bers = append(bers, slots[ci*perCycle+oi*cfg.Blocks+b]...)
			}
			med := stats.Quantile(bers, 0.5)
			pt.MedianBER[o.name] = med
			pt.PageFail[o.name] = code.PageFailureProb(med, 4096)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderStressSweep prints the curve.
func RenderStressSweep(w io.Writer, pts []StressPoint) {
	fmt.Fprintln(w, "BER vs P/E cycles at 1-year retention (median per page; ECC = 40b/1KB BCH)")
	fmt.Fprintf(w, "  %8s %12s %12s %14s %14s\n",
		"P/E", "BER(FPS)", "BER(RPSfull)", "Pfail(FPS)", "Pfail(RPSfull)")
	for _, p := range pts {
		fmt.Fprintf(w, "  %8d %12.2e %12.2e %14.3g %14.3g\n",
			p.PECycles, p.MedianBER["FPS"], p.MedianBER["RPSfull"],
			p.PageFail["FPS"], p.PageFail["RPSfull"])
	}
	fmt.Fprintln(w, "the two orders' BER curves track each other across the lifetime; near the")
	fmt.Fprintln(w, "ECC knee, Monte-Carlo noise in the BER amplifies into large Pfail swings —")
	fmt.Fprintln(w, "the cliff is the code's, not the program order's.")
}
