package experiments

import "testing"

// TestAgingResponsesDeferFirstLoss is the aging-campaign smoke: on a pre-worn
// device aged through retention epochs, the no-response baseline eventually
// loses data, while scrubbing/refresh keep (or at least push) the first
// uncorrectable read out — the headline comparison of `flexbench -exp
// reliability`. RunAging itself enforces the crash-style invariants along the
// way: every served read returns the acknowledged payload, every loss is a
// loud rel.ErrUncorrectable, and lost pages stay lost.
func TestAgingResponsesDeferFirstLoss(t *testing.T) {
	for _, scheme := range []string{"pageFTL", "flexFTL"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			base, err := RunAging(DefaultAgingConfig(scheme, false))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := RunAging(DefaultAgingConfig(scheme, true))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("baseline:  %+v", base)
			t.Logf("responses: %+v", resp)
			if base.FirstLossEpoch < 0 {
				t.Fatalf("baseline never lost data — the campaign's stress point is too soft to show deferral (report %+v)", base)
			}
			if base.Retried == 0 {
				t.Errorf("baseline saw no retried reads at the retention knee (report %+v)", base)
			}
			if resp.FirstLossEpoch >= 0 && resp.FirstLossEpoch <= base.FirstLossEpoch {
				t.Errorf("responses did not defer the first loss: baseline epoch %d, responses epoch %d",
					base.FirstLossEpoch, resp.FirstLossEpoch)
			}
			if resp.RefreshedBlocks == 0 {
				t.Errorf("responses-on run refreshed no blocks (report %+v)", resp)
			}
			if resp.ScrubReads == 0 {
				t.Errorf("responses-on run issued no patrol reads (report %+v)", resp)
			}
		})
	}
}

// TestAgingDeterministic: the campaign is a pure function of its config —
// identical runs produce identical reports (the per-read model hash has no
// hidden global state).
func TestAgingDeterministic(t *testing.T) {
	cfg := DefaultAgingConfig("flexFTL", true)
	a, err := RunAging(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAging(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical campaigns diverged:\n%+v\n%+v", a, b)
	}
}
