package experiments

import (
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

// Table1Row reports one workload's empirically measured characteristics —
// the regenerated Table 1 plus the quantities behind its qualitative labels.
type Table1Row struct {
	Name          string
	ReadFraction  float64 // measured read share
	Intensity     workload.Intensity
	IdleFraction  float64 // share of the trace spent in >5 ms gaps
	MeanReqPages  float64 // mean request size
	MeanIOPSOffer float64 // offered request rate during the trace
}

// RunTable1 generates each workload and measures its characteristics.
func RunTable1(space int64, requests int, seed uint64) ([]Table1Row, error) {
	const idleGap = 5 * sim.Millisecond
	var rows []Table1Row
	for _, p := range workload.All() {
		gen, err := workload.New(p, space, requests, seed)
		if err != nil {
			return nil, err
		}
		reads, pages := 0, 0
		var idle, last sim.Time
		var prev sim.Time
		first := true
		n := 0
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			n++
			pages += req.Pages
			if req.Op == workload.OpRead {
				reads++
			}
			if !first && req.Arrival-prev > idleGap {
				idle += req.Arrival - prev
			}
			prev = req.Arrival
			last = req.Arrival
			first = false
		}
		row := Table1Row{
			Name:         p.Name,
			ReadFraction: float64(reads) / float64(n),
			Intensity:    p.Intensity,
			MeanReqPages: float64(pages) / float64(n),
		}
		if last > 0 {
			row.IdleFraction = float64(idle) / float64(last)
			row.MeanIOPSOffer = float64(n) / last.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}
