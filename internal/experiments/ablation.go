package experiments

import (
	"fmt"
	"io"

	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/nand"
	"flexftl/internal/par"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// Ablations quantify flexFTL's design choices (DESIGN.md §5) by re-running
// the bursty Varmail workload with one knob changed at a time.

// AblationConfig parameterizes the sweep.
type AblationConfig struct {
	Geometry nand.Geometry
	Requests int
	Seed     uint64
	// Workers bounds the variant fan-out (0 = all cores, 1 = serial);
	// each variant is self-contained, so results are worker-count
	// independent.
	Workers int
	// ShardWorkers is the intra-run epoch-shard worker count handed to
	// ssd.RunSharded (<=1 = the serial engine); results are identical
	// for any value.
	ShardWorkers int
}

// DefaultAblationConfig keeps the sweep quick but distinguishable.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Geometry: EvalGeometry(), Requests: 40000, Seed: 42}
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	Name          string
	IOPS          float64
	PeakMBs       float64
	Erases        int64
	ForegroundGCs int64
	BackupPerWrit float64
	HostLSBShare  float64
}

// AblationResult carries the sweep.
type AblationResult struct {
	Config AblationConfig
	Rows   []AblationRow
}

// RunAblations executes the variant sweep: flexFTL with one knob changed at
// a time, plus the registry's hybrid policy combinations — schemes that exist
// only as Kernel configurations (no dedicated package, no paper counterpart).
func RunAblations(cfg AblationConfig) (AblationResult, error) {
	type variant struct {
		name  string
		build func() (ftl.FTL, error)
	}
	flexVariant := func(mutate func(*flexftl.Params, *ftl.Config)) func() (ftl.FTL, error) {
		return func() (ftl.FTL, error) {
			params := flexftl.DefaultParams()
			ftlCfg := ftl.DefaultConfig()
			mutate(&params, &ftlCfg)
			h, err := ftl.Build("flexFTL", ftl.BuildEnv{Geometry: cfg.Geometry, Config: ftlCfg, Flex: params})
			if err != nil {
				return nil, err
			}
			return h.(ftl.FTL), nil
		}
	}
	variants := []variant{
		{"flexFTL (paper settings)", flexVariant(func(p *flexftl.Params, c *ftl.Config) {})},
		{"quota 0.1% (near-FPS)", flexVariant(func(p *flexftl.Params, c *ftl.Config) { p.QuotaFraction = 0.001 })},
		{"quota 100% (unbounded)", flexVariant(func(p *flexftl.Params, c *ftl.Config) { p.QuotaFraction = 1.0 })},
		{"BGC copies via LSB", flexVariant(func(p *flexftl.Params, c *ftl.Config) { p.BGCCopyLSB = true })},
		{"predictive BGC (Section 6)", flexVariant(func(p *flexftl.Params, c *ftl.Config) { p.PredictiveBGC = true })},
		{"cost-benefit GC victims", flexVariant(func(p *flexftl.Params, c *ftl.Config) { c.GC = ftl.GCCostBenefit })},
	}
	for _, name := range Hybrids() {
		scheme := name
		variants = append(variants, variant{
			name:  scheme + " (hybrid)",
			build: func() (ftl.FTL, error) { return BuildFTL(scheme, cfg.Geometry) },
		})
	}
	res := AblationResult{Config: cfg}
	prof := workload.Varmail()
	rows := make([]AblationRow, len(variants))
	err := par.Run(par.Workers(cfg.Workers), len(variants), func(_, i int) error {
		v := variants[i]
		f, err := v.build()
		if err != nil {
			return err
		}
		sys, err := ssd.New(f, ssd.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := sys.Prefill(); err != nil {
			return fmt.Errorf("ablation %q: %w", v.name, err)
		}
		gen, err := workload.New(prof, f.LogicalPages(), cfg.Requests, cfg.Seed)
		if err != nil {
			return err
		}
		run, err := sys.RunSharded(gen, cfg.ShardWorkers)
		if err != nil {
			return fmt.Errorf("ablation %q: %w", v.name, err)
		}
		st := run.Stats
		row := AblationRow{
			Name:          v.name,
			IOPS:          run.Metrics.IOPS,
			PeakMBs:       run.Metrics.PeakWriteBandwidthMBs,
			Erases:        st.Erases,
			ForegroundGCs: st.ForegroundGCs,
		}
		if st.HostWrites > 0 {
			row.BackupPerWrit = float64(st.BackupWrites) / float64(st.HostWrites)
			row.HostLSBShare = float64(st.HostWritesLSB) / float64(st.HostWrites)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// RenderAblations prints the sweep.
func RenderAblations(w io.Writer, res AblationResult) {
	fmt.Fprintf(w, "flexFTL design-choice ablations (Varmail, %d requests)\n", res.Config.Requests)
	fmt.Fprintf(w, "  %-28s %8s %9s %8s %7s %10s %9s\n",
		"variant", "IOPS", "peakMB/s", "erases", "fg GCs", "backup/wr", "LSB share")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-28s %8.0f %9.1f %8d %7d %10.4f %9.2f\n",
			r.Name, r.IOPS, r.PeakMBs, r.Erases, r.ForegroundGCs, r.BackupPerWrit, r.HostLSBShare)
	}
}
