package experiments

import (
	"fmt"
	"io"

	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/nand"
	"flexftl/internal/par"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// Ablations quantify flexFTL's design choices (DESIGN.md §5) by re-running
// the bursty Varmail workload with one knob changed at a time.

// AblationConfig parameterizes the sweep.
type AblationConfig struct {
	Geometry nand.Geometry
	Requests int
	Seed     uint64
	// Workers bounds the variant fan-out (0 = all cores, 1 = serial);
	// each variant is self-contained, so results are worker-count
	// independent.
	Workers int
	// ShardWorkers is the intra-run epoch-shard worker count handed to
	// ssd.RunSharded (<=1 = the serial engine); results are identical
	// for any value.
	ShardWorkers int
}

// DefaultAblationConfig keeps the sweep quick but distinguishable.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Geometry: EvalGeometry(), Requests: 40000, Seed: 42}
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	Name          string
	IOPS          float64
	PeakMBs       float64
	Erases        int64
	ForegroundGCs int64
	BackupPerWrit float64
	HostLSBShare  float64
}

// AblationResult carries the sweep.
type AblationResult struct {
	Config AblationConfig
	Rows   []AblationRow
}

// RunAblations executes the variant sweep: flexFTL with one knob changed at
// a time, plus the registry's hybrid policy combinations — schemes that exist
// only as Kernel configurations (no dedicated package, no paper counterpart).
func RunAblations(cfg AblationConfig) (AblationResult, error) {
	type variant struct {
		name  string
		build func() (ftl.FTL, error)
	}
	flexVariant := func(mutate func(*flexftl.Params, *ftl.Config)) func() (ftl.FTL, error) {
		return func() (ftl.FTL, error) {
			params := flexftl.DefaultParams()
			ftlCfg := ftl.DefaultConfig()
			mutate(&params, &ftlCfg)
			h, err := ftl.Build("flexFTL", ftl.BuildEnv{Geometry: cfg.Geometry, Config: ftlCfg, Flex: params})
			if err != nil {
				return nil, err
			}
			return h.(ftl.FTL), nil
		}
	}
	variants := []variant{
		{"flexFTL (paper settings)", flexVariant(func(p *flexftl.Params, c *ftl.Config) {})},
		{"quota 0.1% (near-FPS)", flexVariant(func(p *flexftl.Params, c *ftl.Config) { p.QuotaFraction = 0.001 })},
		{"quota 100% (unbounded)", flexVariant(func(p *flexftl.Params, c *ftl.Config) { p.QuotaFraction = 1.0 })},
		{"BGC copies via LSB", flexVariant(func(p *flexftl.Params, c *ftl.Config) { p.BGCCopyLSB = true })},
		{"predictive BGC (Section 6)", flexVariant(func(p *flexftl.Params, c *ftl.Config) { p.PredictiveBGC = true })},
		{"cost-benefit GC victims", flexVariant(func(p *flexftl.Params, c *ftl.Config) { c.GC = ftl.GCCostBenefit })},
	}
	for _, name := range Hybrids() {
		scheme := name
		variants = append(variants, variant{
			name:  scheme + " (hybrid)",
			build: func() (ftl.FTL, error) { return BuildFTL(scheme, cfg.Geometry) },
		})
	}
	res := AblationResult{Config: cfg}
	prof := workload.Varmail()
	rows := make([]AblationRow, len(variants))
	err := par.Run(par.Workers(cfg.Workers), len(variants), func(_, i int) error {
		v := variants[i]
		f, err := v.build()
		if err != nil {
			return err
		}
		sys, err := ssd.New(f, ssd.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := sys.Prefill(); err != nil {
			return fmt.Errorf("ablation %q: %w", v.name, err)
		}
		gen, err := workload.New(prof, f.LogicalPages(), cfg.Requests, cfg.Seed)
		if err != nil {
			return err
		}
		run, err := sys.RunSharded(gen, cfg.ShardWorkers)
		if err != nil {
			return fmt.Errorf("ablation %q: %w", v.name, err)
		}
		st := run.Stats
		row := AblationRow{
			Name:          v.name,
			IOPS:          run.Metrics.IOPS,
			PeakMBs:       run.Metrics.PeakWriteBandwidthMBs,
			Erases:        st.Erases,
			ForegroundGCs: st.ForegroundGCs,
		}
		if st.HostWrites > 0 {
			row.BackupPerWrit = float64(st.BackupWrites) / float64(st.HostWrites)
			row.HostLSBShare = float64(st.HostWritesLSB) / float64(st.HostWrites)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// RenderAblations prints the sweep.
func RenderAblations(w io.Writer, res AblationResult) {
	fmt.Fprintf(w, "flexFTL design-choice ablations (Varmail, %d requests)\n", res.Config.Requests)
	fmt.Fprintf(w, "  %-28s %8s %9s %8s %7s %10s %9s\n",
		"variant", "IOPS", "peakMB/s", "erases", "fg GCs", "backup/wr", "LSB share")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-28s %8.0f %9.1f %8d %7d %10.4f %9.2f\n",
			r.Name, r.IOPS, r.PeakMBs, r.Erases, r.ForegroundGCs, r.BackupPerWrit, r.HostLSBShare)
	}
}

// The placement sweep is the fourth-axis counterpart of the ablations: the
// same policy stack with only the placement axis changed, swept over Zipf
// skews, at a geometry small enough that every run reaches GC steady state.

// PlacementSweepConfig parameterizes the placement-axis sweep.
type PlacementSweepConfig struct {
	Geometry nand.Geometry
	Requests int
	Seed     uint64
	// OPFraction is the over-provisioning the whole sweep runs at. Placement
	// policies pin extra captive blocks (a second active fast/slow pair per
	// chip), so the sweep needs honest spare capacity: at the default 12.5%
	// on the shrunken device the captive overhead alone collapses effective
	// OP and every multi-stream scheme thrashes, drowning the signal.
	OPFraction float64
	// Thetas are the Zipf skews swept (workload.ZipfProfile).
	Thetas []float64
	// Schemes are the registry names compared; order is report order and
	// each family's stock scheme should precede its placement variants so
	// the renderer can compute deltas.
	Schemes      []string
	Workers      int
	ShardWorkers int
}

// DefaultPlacementSweepConfig compares the stock schemes against their
// hot/cold and wear-aware variants under a moderate and a hot-head skew.
// The device is shrunk (fewer blocks per chip) so the runs reach GC steady
// state — on the full evaluation geometry the free-block reserve would
// absorb the whole run and WAF would pin at ~1 for every scheme.
func DefaultPlacementSweepConfig() PlacementSweepConfig {
	g := EvalGeometry()
	g.BlocksPerChip = 32
	return PlacementSweepConfig{
		Geometry: g,
		// 120k requests: wear-spread is a max/mean statistic and needs mean
		// erase counts well past the prefill transient before scheme
		// comparisons are out of the noise; shorter runs reorder the wear
		// column run-to-run.
		Requests:   120000,
		Seed:       42,
		OPFraction: 0.25,
		Thetas:     []float64{0.95, 1.1, 1.2},
		Schemes: []string{
			"flexFTL", "flexFTL-hotcold", "flexFTL-wearAware",
			"pageFTL", "pageFTL-hotcold", "pageFTL-wearAware",
		},
	}
}

// PlacementRow is one (scheme, theta) outcome.
type PlacementRow struct {
	Scheme     string
	Theta      float64
	WAF        float64
	WearSpread float64 // max/mean erase count (1.0 = perfectly level)
	Erases     int64   // lifetime proxy: media erases for the fixed request count
	GCCopies   int64
	HotShare   float64 // hot-stream share of host writes (0 for single-stream)
	IOPS       float64
}

// PlacementSweepResult carries the sweep.
type PlacementSweepResult struct {
	Config PlacementSweepConfig
	Rows   []PlacementRow
}

// RunPlacementSweep runs every configured scheme under every Zipf skew.
func RunPlacementSweep(cfg PlacementSweepConfig) (PlacementSweepResult, error) {
	res := PlacementSweepResult{Config: cfg}
	type cell struct {
		scheme string
		theta  float64
	}
	var cells []cell
	for _, theta := range cfg.Thetas {
		for _, scheme := range cfg.Schemes {
			cells = append(cells, cell{scheme, theta})
		}
	}
	rows := make([]PlacementRow, len(cells))
	err := par.Run(par.Workers(cfg.Workers), len(cells), func(_, i int) error {
		c := cells[i]
		fcfg := ftl.DefaultConfig()
		if cfg.OPFraction > 0 {
			fcfg.OPFraction = cfg.OPFraction
		}
		f, err := BuildFTLWith(c.scheme, cfg.Geometry, fcfg)
		if err != nil {
			return err
		}
		sys, err := ssd.New(f, ssd.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := sys.Prefill(); err != nil {
			return fmt.Errorf("placement %q: %w", c.scheme, err)
		}
		gen, err := workload.NewZipf(c.theta, f.LogicalPages(), cfg.Requests, cfg.Seed)
		if err != nil {
			return err
		}
		run, err := sys.RunSharded(gen, cfg.ShardWorkers)
		if err != nil {
			return fmt.Errorf("placement %q theta=%.2f: %w", c.scheme, c.theta, err)
		}
		st := run.Stats
		row := PlacementRow{
			Scheme:     c.scheme,
			Theta:      c.theta,
			WAF:        run.WAF,
			WearSpread: run.WearSpread,
			Erases:     st.Erases,
			GCCopies:   st.GCCopies,
			IOPS:       run.Metrics.IOPS,
		}
		if hot := st.HostWritesHot + st.HostWritesCold; hot > 0 {
			row.HotShare = float64(st.HostWritesHot) / float64(hot)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// RenderPlacementSweep prints the sweep with per-family deltas: each row's
// WAF and wear spread are compared against the most recent preceding
// single-stream scheme of the same skew (the family's stock baseline).
func RenderPlacementSweep(w io.Writer, res PlacementSweepResult) {
	fmt.Fprintf(w, "placement-axis sweep (Zipf workloads, %d requests, OP %.0f%%)\n",
		res.Config.Requests, res.Config.OPFraction*100)
	fmt.Fprintf(w, "  %-20s %6s %7s %8s %8s %8s %8s %6s %8s\n",
		"scheme", "theta", "WAF", "dWAF%", "wear", "dwear%", "erases", "hot%", "IOPS")
	var baseWAF, baseWear float64
	for _, r := range res.Rows {
		spec, _ := ftl.Lookup(r.Scheme)
		if spec.Placement == "" {
			baseWAF, baseWear = r.WAF, r.WearSpread
		}
		dWAF, dWear := "-", "-"
		if spec.Placement != "" && baseWAF > 0 && baseWear > 0 {
			dWAF = fmt.Sprintf("%+.1f", (r.WAF/baseWAF-1)*100)
			dWear = fmt.Sprintf("%+.1f", (r.WearSpread/baseWear-1)*100)
		}
		fmt.Fprintf(w, "  %-20s %6.2f %7.3f %8s %8.3f %8s %8d %6.1f %8.0f\n",
			r.Scheme, r.Theta, r.WAF, dWAF, r.WearSpread, dWear, r.Erases, r.HotShare*100, r.IOPS)
	}
}
