package experiments

import (
	"fmt"

	"flexftl/internal/metrics"
	"flexftl/internal/nand"
	"flexftl/internal/par"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// Fig8Config parameterizes the main evaluation (Figures 8(a), 8(b), 8(c)):
// four MLC FTLs across the five Table 1 workloads.
type Fig8Config struct {
	Geometry nand.Geometry
	Requests int    // host requests per run
	Seed     uint64 // workload seed (same trace for every FTL)
	// Workers bounds how many of the 20 simulations run at once
	// (0 = all cores, 1 = serial); each simulation is self-contained, so
	// the matrix is identical for any value.
	Workers int
	// ShardWorkers is the intra-run epoch-shard worker count handed to
	// ssd.RunSharded (<=1 = the serial engine). The 1-vs-N determinism
	// contract makes the matrix identical for any value.
	ShardWorkers int
}

// DefaultFig8Config balances fidelity and wall-clock time. The request count
// is sized so that even the read-dominant workloads (OLTP, Webserver) write
// enough to push the device into garbage collection, making the Figure 8(b)
// erasure comparison meaningful on every workload.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{Geometry: EvalGeometry(), Requests: 150000, Seed: 42}
}

// Fig8Cell is one (scheme, workload) measurement.
type Fig8Cell struct {
	Scheme   string
	Workload string
	Result   ssd.RunResult
	// NormIOPS and NormErases are relative to pageFTL on the same
	// workload, the presentation of Figures 8(a) and 8(b).
	NormIOPS   float64
	NormErases float64
}

// Fig8Result is the full matrix plus the Varmail bandwidth CDFs of
// Figure 8(c).
type Fig8Result struct {
	Config    Fig8Config
	Workloads []string
	Schemes   []string
	Cells     map[string]map[string]*Fig8Cell // scheme -> workload -> cell
}

// Cell returns one measurement.
func (r Fig8Result) Cell(scheme, wl string) *Fig8Cell { return r.Cells[scheme][wl] }

// AverageNormIOPS returns a scheme's normalized IOPS averaged over the five
// workloads (the "Average" group of Figure 8(a)).
func (r Fig8Result) AverageNormIOPS(scheme string) float64 {
	sum := 0.0
	for _, wl := range r.Workloads {
		sum += r.Cells[scheme][wl].NormIOPS
	}
	return sum / float64(len(r.Workloads))
}

// AverageNormErases returns a scheme's normalized erase count averaged over
// the workloads (Figure 8(b)'s "Average").
func (r Fig8Result) AverageNormErases(scheme string) float64 {
	sum := 0.0
	for _, wl := range r.Workloads {
		sum += r.Cells[scheme][wl].NormErases
	}
	return sum / float64(len(r.Workloads))
}

// VarmailCDF returns the Figure 8(c) write-bandwidth distribution of a
// scheme under Varmail.
func (r Fig8Result) VarmailCDF(scheme string) *metrics.Result {
	m := r.Cells[scheme]["Varmail"].Result.Metrics
	return &m
}

// runOne executes a single (scheme, workload) simulation.
func runOne(cfg Fig8Config, scheme string, prof workload.Profile) (*Fig8Cell, error) {
	f, err := BuildFTL(scheme, cfg.Geometry)
	if err != nil {
		return nil, err
	}
	sys, err := ssd.New(f, ssd.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if _, err := sys.Prefill(); err != nil {
		return nil, fmt.Errorf("%s/%s: %w", scheme, prof.Name, err)
	}
	gen, err := workload.New(prof, f.LogicalPages(), cfg.Requests, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res, err := sys.RunSharded(gen, cfg.ShardWorkers)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", scheme, prof.Name, err)
	}
	return &Fig8Cell{Scheme: scheme, Workload: prof.Name, Result: res}, nil
}

// RunFig8 executes the 4x5 evaluation matrix and normalizes against
// pageFTL.
func RunFig8(cfg Fig8Config) (Fig8Result, error) {
	profiles := workload.All()
	res := Fig8Result{
		Config:  cfg,
		Schemes: Schemes(),
		Cells:   make(map[string]map[string]*Fig8Cell),
	}
	for _, p := range profiles {
		res.Workloads = append(res.Workloads, p.Name)
	}
	for _, s := range res.Schemes {
		res.Cells[s] = make(map[string]*Fig8Cell)
	}

	type job struct {
		scheme string
		prof   workload.Profile
	}
	var jobs []job
	for _, s := range res.Schemes {
		for _, p := range profiles {
			jobs = append(jobs, job{s, p})
		}
	}

	cells := make([]*Fig8Cell, len(jobs))
	err := par.Run(par.Workers(cfg.Workers), len(jobs), func(_, i int) error {
		c, err := runOne(cfg, jobs[i].scheme, jobs[i].prof)
		if err != nil {
			return err
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return res, err
	}
	for _, c := range cells {
		res.Cells[c.Scheme][c.Workload] = c
	}

	// Normalize to the baseline per workload.
	for _, wl := range res.Workloads {
		base := res.Cells[Baseline][wl]
		for _, s := range res.Schemes {
			c := res.Cells[s][wl]
			if base.Result.Metrics.IOPS > 0 {
				c.NormIOPS = c.Result.Metrics.IOPS / base.Result.Metrics.IOPS
			}
			if base.Result.Stats.Erases > 0 {
				c.NormErases = float64(c.Result.Stats.Erases) / float64(base.Result.Stats.Erases)
			}
		}
	}
	return res, nil
}
