package experiments

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ecc"
	"flexftl/internal/par"
	"flexftl/internal/rng"
	"flexftl/internal/stats"
	"flexftl/internal/vth"
)

// Fig4Config parameterizes the reliability study of Figure 4. The paper
// verifies with >90 blocks from three 2X-nm chips (>5000 pages); the default
// reproduces that scale against the Monte-Carlo Vth model.
type Fig4Config struct {
	Blocks    int // blocks per program order
	WordLines int // word lines per block
	Cells     int // Monte-Carlo cells per word line
	Seed      uint64
	// IncludeWorstCase adds the forbidden unconstrained order for contrast
	// (the Figure 2(a) motivation).
	IncludeWorstCase bool
	// Workers bounds the simulation fan-out: 0 uses every core, 1 runs
	// serially. Results are identical for any value — every block derives
	// its own seed.
	Workers int
}

// DefaultFig4Config mirrors the paper's scale.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{Blocks: 90, WordLines: 64, Cells: 1024, Seed: 2016, IncludeWorstCase: true}
}

// Fig4Row holds one program order's distributions.
type Fig4Row struct {
	Order string
	// WP summarizes the per-page sums of Vth state widths (Figure 4(a)),
	// measured fresh.
	WP stats.FiveNum
	// BER summarizes per-page bit error rates at the worst-case operating
	// condition, 3K P/E cycles + 1-year retention (Figure 4(b)).
	BER stats.FiveNum
	// PageFailEOL is the probability that a 4 KB page is ECC-uncorrectable
	// at end of life, computed from the median BER under the controller's
	// 40-bit/1KB BCH envelope. It translates Figure 4(b) into the quantity
	// the FTL-level backup schemes actually defend against.
	PageFailEOL float64
	// Pages is the number of word lines sampled.
	Pages int
}

// Fig4Result carries the rows in display order.
type Fig4Result struct {
	Config Fig4Config
	Rows   []Fig4Row
}

// RunFig4 simulates programming Blocks blocks under each order and collects
// the WPi and BER distributions.
func RunFig4(cfg Fig4Config) (Fig4Result, error) {
	params := vth.DefaultParams()
	params.CellsPerWordLine = cfg.Cells
	model, err := vth.NewModel(params)
	if err != nil {
		return Fig4Result{}, err
	}
	type namedOrder struct {
		name  string
		pages []core.Page
	}
	orders := []namedOrder{
		{"FPS", core.FPSOrder(cfg.WordLines)},
		{"RPSfull", core.RPSFullOrder(cfg.WordLines)},
		{"RPShalf", core.RPSHalfOrder(cfg.WordLines)},
	}
	if cfg.IncludeWorstCase {
		orders = append(orders, namedOrder{"Unconstrained(worst)", core.WorstCaseOrder(cfg.WordLines)})
	}
	res := Fig4Result{Config: cfg}

	// One task per (order, block), each writing its own slot; the
	// aggregation below reads the slots in index order, so the result is
	// identical for any worker count. Each worker reuses one arena across
	// its blocks, keeping the fan-out allocation-lean.
	type blockOut struct{ wps, bers []float64 }
	workers := par.Workers(cfg.Workers)
	scratch := par.MakeScratch(workers, vth.NewArena)
	slots := make([]blockOut, len(orders)*cfg.Blocks)
	err = par.Run(workers, len(slots), func(worker, task int) error {
		oi, b := task/cfg.Blocks, task%cfg.Blocks
		o := orders[oi]
		seed := cfg.Seed + uint64(oi)*1_000_003 + uint64(b)
		fresh, err := model.SimulateBlockArena(cfg.WordLines, o.pages, vth.Fresh, rng.New(seed), scratch[worker])
		if err != nil {
			return fmt.Errorf("fig4 %s block %d: %w", o.name, b, err)
		}
		wps := fresh.WPSums() // copy out before the arena is reused below
		worn, err := model.SimulateBlockArena(cfg.WordLines, o.pages, vth.WorstCase, rng.New(seed^0x5deece66d), scratch[worker])
		if err != nil {
			return fmt.Errorf("fig4 %s block %d (stress): %w", o.name, b, err)
		}
		slots[task] = blockOut{wps: wps, bers: worn.BERs()}
		return nil
	})
	if err != nil {
		return res, err
	}
	for oi, o := range orders {
		var wps, bers []float64
		for b := 0; b < cfg.Blocks; b++ {
			out := slots[oi*cfg.Blocks+b]
			wps = append(wps, out.wps...)
			bers = append(bers, out.bers...)
		}
		berBox := stats.Summarize(bers)
		res.Rows = append(res.Rows, Fig4Row{
			Order:       o.name,
			WP:          stats.Summarize(wps),
			BER:         berBox,
			PageFailEOL: ecc.Default40BitPer1K().PageFailureProb(berBox.Median, 4096),
			Pages:       len(wps),
		})
	}
	return res, nil
}
