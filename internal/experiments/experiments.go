// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 4 plus the Section 2 reliability study), shared
// by cmd/flexbench and the root-level benchmarks. Each driver is
// deterministic given its seed and returns structured results that the
// render helpers format in the paper's layout.
package experiments

import (
	"fmt"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
)

// Schemes returns the four MLC FTLs of the evaluation, in the paper's order.
func Schemes() []string {
	return []string{"pageFTL", "parityFTL", "rtfFTL", "flexFTL"}
}

// Hybrids returns the registered policy combinations that exist only as
// registry entries (no paper counterpart), in registration order.
func Hybrids() []string {
	var names []string
	for _, name := range ftl.Names() {
		if s, ok := ftl.Lookup(name); ok && s.Hybrid {
			names = append(names, name)
		}
	}
	return names
}

// Baseline is the normalization reference of Figures 8(a) and 8(b).
const Baseline = "pageFTL"

// EvalGeometry is the scaled evaluation configuration: the paper limits its
// BlueDBM to 16 GB "for fast evaluations"; we scale one step further (512 MB,
// same channel/chip structure) so the full matrix reruns in seconds. The
// FTL-relative results are geometry-stable; cmd/flexbench -full uses the
// paper's exact 16 GB geometry.
func EvalGeometry() nand.Geometry {
	return nand.Geometry{
		Channels:          4,
		ChipsPerChannel:   2,
		BlocksPerChip:     128,
		WordLinesPerBlock: 64,
		PageSizeBytes:     4096,
		SpareBytes:        64,
	}
}

// BuildFTL constructs a scheme over a fresh device through the ftl registry;
// each spec brings the rule set its scheme needs (flexFTL an RPS device, the
// comparison FTLs stock FPS devices).
func BuildFTL(scheme string, g nand.Geometry) (ftl.FTL, error) {
	return BuildFTLWith(scheme, g, ftl.DefaultConfig())
}

// BuildFTLWith is BuildFTL with a caller-supplied FTL configuration (the
// sensitivity sweeps vary over-provisioning).
func BuildFTLWith(scheme string, g nand.Geometry, cfg ftl.Config) (ftl.FTL, error) {
	h, err := ftl.Build(scheme, ftl.BuildEnv{Geometry: g, Config: cfg, Flex: ftl.DefaultFlexParams()})
	if err != nil {
		return nil, err
	}
	f, ok := h.(ftl.FTL)
	if !ok {
		return nil, fmt.Errorf("experiments: scheme %q is not an MLC FTL", scheme)
	}
	return f, nil
}
