// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 4 plus the Section 2 reliability study), shared
// by cmd/flexbench and the root-level benchmarks. Each driver is
// deterministic given its seed and returns structured results that the
// render helpers format in the paper's layout.
package experiments

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/ftl/pageftl"
	"flexftl/internal/ftl/parityftl"
	"flexftl/internal/ftl/rtfftl"
	"flexftl/internal/nand"
)

// Schemes returns the four FTLs of the evaluation, in the paper's order.
func Schemes() []string {
	return []string{"pageFTL", "parityFTL", "rtfFTL", "flexFTL"}
}

// Baseline is the normalization reference of Figures 8(a) and 8(b).
const Baseline = "pageFTL"

// EvalGeometry is the scaled evaluation configuration: the paper limits its
// BlueDBM to 16 GB "for fast evaluations"; we scale one step further (512 MB,
// same channel/chip structure) so the full matrix reruns in seconds. The
// FTL-relative results are geometry-stable; cmd/flexbench -full uses the
// paper's exact 16 GB geometry.
func EvalGeometry() nand.Geometry {
	return nand.Geometry{
		Channels:          4,
		ChipsPerChannel:   2,
		BlocksPerChip:     128,
		WordLinesPerBlock: 64,
		PageSizeBytes:     4096,
		SpareBytes:        64,
	}
}

// BuildFTL constructs a scheme over a fresh device with the right rule set:
// flexFTL runs on an RPS device, the three comparison FTLs on stock FPS
// devices.
func BuildFTL(scheme string, g nand.Geometry) (ftl.FTL, error) {
	rules := core.FPS
	if scheme == "flexFTL" {
		rules = core.RPS
	}
	dev, err := nand.NewDevice(nand.Config{Geometry: g, Timing: nand.DefaultTiming(), Rules: rules})
	if err != nil {
		return nil, err
	}
	cfg := ftl.DefaultConfig()
	switch scheme {
	case "pageFTL":
		return pageftl.New(dev, cfg)
	case "parityFTL":
		return parityftl.New(dev, cfg)
	case "rtfFTL":
		return rtfftl.New(dev, cfg)
	case "flexFTL":
		return flexftl.New(dev, cfg, flexftl.DefaultParams())
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", scheme)
	}
}
