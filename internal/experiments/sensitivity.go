package experiments

import (
	"fmt"
	"io"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/par"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// Sensitivity sweeps: how flexFTL's advantage over the baseline responds to
// the two environment knobs the paper fixes implicitly — over-provisioning
// (GC pressure) and the write-buffer size (the u-threshold operating
// point). Both sweeps run flexFTL and pageFTL on the same Varmail trace.

// SensitivityPoint is one sweep setting's outcome.
type SensitivityPoint struct {
	Setting   string
	FlexIOPS  float64
	PageIOPS  float64
	FlexWA    float64
	PageWA    float64
	FlexPeak  float64
	Advantage float64 // FlexIOPS / PageIOPS
}

// SensitivityConfig parameterizes the sweeps.
type SensitivityConfig struct {
	Geometry nand.Geometry
	Requests int
	Seed     uint64
	// OPFractions to sweep (buffer fixed at the default).
	OPFractions []float64
	// BufferSizes to sweep (OP fixed at the default).
	BufferSizes []int
	// Workers bounds the sweep fan-out (0 = all cores, 1 = serial); each
	// point builds its own devices, so results are worker-count
	// independent.
	Workers int
	// ShardWorkers is the intra-run epoch-shard worker count handed to
	// ssd.RunSharded (<=1 = the serial engine); results are identical
	// for any value.
	ShardWorkers int
}

// DefaultSensitivityConfig covers the interesting ranges.
func DefaultSensitivityConfig() SensitivityConfig {
	return SensitivityConfig{
		Geometry:    EvalGeometry(),
		Requests:    40000,
		Seed:        42,
		OPFractions: []float64{0.07, 0.125, 0.25},
		BufferSizes: []int{32, 128, 512},
	}
}

// SensitivityResult carries both sweeps.
type SensitivityResult struct {
	Config SensitivityConfig
	OP     []SensitivityPoint
	Buffer []SensitivityPoint
}

func runPair(g nand.Geometry, requests int, seed uint64, shardWorkers int, ftlCfg ftl.Config, runCfg ssd.Config) (flexR, pageR ssd.RunResult, err error) {
	build := func(scheme string) (ssd.RunResult, error) {
		f, err := BuildFTLWith(scheme, g, ftlCfg)
		if err != nil {
			return ssd.RunResult{}, err
		}
		sys, err := ssd.New(f, runCfg)
		if err != nil {
			return ssd.RunResult{}, err
		}
		if _, err := sys.Prefill(); err != nil {
			return ssd.RunResult{}, err
		}
		gen, err := workload.New(workload.Varmail(), f.LogicalPages(), requests, seed)
		if err != nil {
			return ssd.RunResult{}, err
		}
		return sys.RunSharded(gen, shardWorkers)
	}
	flexR, err = build("flexFTL")
	if err != nil {
		return
	}
	pageR, err = build("pageFTL")
	return
}

func toPoint(setting string, flexR, pageR ssd.RunResult) SensitivityPoint {
	p := SensitivityPoint{
		Setting:  setting,
		FlexIOPS: flexR.Metrics.IOPS,
		PageIOPS: pageR.Metrics.IOPS,
		FlexWA:   flexR.Stats.WriteAmplification(),
		PageWA:   pageR.Stats.WriteAmplification(),
		FlexPeak: flexR.Metrics.PeakWriteBandwidthMBs,
	}
	if p.PageIOPS > 0 {
		p.Advantage = p.FlexIOPS / p.PageIOPS
	}
	return p
}

// RunSensitivity executes both sweeps. Every sweep point is one task in
// the shared pool — each builds its own devices and FTLs, so points run
// concurrently without sharing state.
func RunSensitivity(cfg SensitivityConfig) (SensitivityResult, error) {
	res := SensitivityResult{Config: cfg}
	type sweepTask struct {
		setting string
		wrap    string // error-message prefix
		ftlCfg  ftl.Config
		runCfg  ssd.Config
	}
	var tasks []sweepTask
	for _, op := range cfg.OPFractions {
		ftlCfg := ftl.DefaultConfig()
		ftlCfg.OPFraction = op
		tasks = append(tasks, sweepTask{
			setting: fmt.Sprintf("OP %.1f%%", 100*op),
			wrap:    fmt.Sprintf("OP sweep %.3f", op),
			ftlCfg:  ftlCfg,
			runCfg:  ssd.DefaultConfig(),
		})
	}
	for _, buf := range cfg.BufferSizes {
		runCfg := ssd.DefaultConfig()
		runCfg.BufferPages = buf
		tasks = append(tasks, sweepTask{
			setting: fmt.Sprintf("buffer %d pages", buf),
			wrap:    fmt.Sprintf("buffer sweep %d", buf),
			ftlCfg:  ftl.DefaultConfig(),
			runCfg:  runCfg,
		})
	}
	points := make([]SensitivityPoint, len(tasks))
	err := par.Run(par.Workers(cfg.Workers), len(tasks), func(_, i int) error {
		t := tasks[i]
		flexR, pageR, err := runPair(cfg.Geometry, cfg.Requests, cfg.Seed, cfg.ShardWorkers, t.ftlCfg, t.runCfg)
		if err != nil {
			return fmt.Errorf("%s: %w", t.wrap, err)
		}
		points[i] = toPoint(t.setting, flexR, pageR)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.OP = points[:len(cfg.OPFractions)]
	res.Buffer = points[len(cfg.OPFractions):]
	return res, nil
}

// RenderSensitivity prints both sweeps.
func RenderSensitivity(w io.Writer, res SensitivityResult) {
	fmt.Fprintf(w, "Sensitivity of flexFTL's advantage (Varmail, %d requests)\n", res.Config.Requests)
	print := func(title string, pts []SensitivityPoint) {
		fmt.Fprintln(w, title)
		fmt.Fprintf(w, "  %-18s %10s %10s %8s %8s %9s %10s\n",
			"setting", "flex IOPS", "page IOPS", "flexWA", "pageWA", "flexPeak", "advantage")
		for _, p := range pts {
			fmt.Fprintf(w, "  %-18s %10.0f %10.0f %8.2f %8.2f %9.1f %9.2fx\n",
				p.Setting, p.FlexIOPS, p.PageIOPS, p.FlexWA, p.PageWA, p.FlexPeak, p.Advantage)
		}
	}
	print("(a) over-provisioning (GC pressure):", res.OP)
	print("(b) write-buffer size (the u-threshold operating point):", res.Buffer)
}
