package experiments

import (
	"errors"
	"fmt"
	"io"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// This file is the reliability aging campaign (the ISSUE-10 sweep behind
// `flexbench -exp reliability`): write a data set onto a pre-worn device,
// then age it through retention epochs with idle windows in between, reading
// everything back each epoch. With the kernel's reliability responses off the
// device is read-only between epochs and retention eventually defeats the
// ECC budget; with scrubbing/refresh on, at-risk blocks are rewritten during
// the idle windows and the first uncorrectable read is deferred (or never
// happens). The campaign's checker holds the crash-campaign invariant the
// whole way: a host read either returns the acknowledged payload or fails
// loudly with rel.ErrUncorrectable — a token mismatch without an error is
// silent corruption and fails the run.

// AgingConfig parameterizes one aging campaign run.
type AgingConfig struct {
	// Scheme is the registry FTL to age ("flexFTL", "pageFTL", ...).
	Scheme string
	// Seed feeds the device BER model's per-read hash.
	Seed uint64
	// PreWear is the erase-cycle count applied to every block before any
	// data is written, putting the device near its retention knee.
	PreWear int
	// Epochs is the number of retention epochs to age through.
	Epochs int
	// EpochGap is the virtual-time retention gap per epoch.
	EpochGap sim.Time
	// IdleWindow is the idle time offered to the FTL after each gap — the
	// budget scrubbing and refresh run on. Zero models a host that never
	// goes idle.
	IdleWindow sim.Time
	// WriteFraction of the logical space is written (and then verified every
	// epoch).
	WriteFraction float64
	// Responses mounts the kernel's reliability responses (scrub, refresh,
	// retirement, parity rebuild). False is the detect-only baseline: the
	// device still models errors but the FTL never acts on them.
	Responses bool
}

// DefaultAgingConfig returns the campaign configuration the evaluation uses:
// a device pre-worn to 4500 P/E cycles aged through twelve quarter-year
// retention epochs.
func DefaultAgingConfig(scheme string, responses bool) AgingConfig {
	return AgingConfig{
		Scheme:        scheme,
		Seed:          1,
		PreWear:       4500,
		Epochs:        12,
		EpochGap:      rel.Year / 4,
		IdleWindow:    20 * sim.Second,
		WriteFraction: 0.5,
		Responses:     responses,
	}
}

// AgingReport is the outcome of one aging campaign.
type AgingReport struct {
	Scheme    string
	Responses bool
	// FirstLossEpoch is the 1-based epoch of the first uncorrectable host
	// read; -1 if every read of every epoch was served.
	FirstLossEpoch int
	// LostReads counts host reads that failed uncorrectably across all
	// epochs (each is a detected loss, never a silent one).
	LostReads int64
	// Reads, Corrected and Retried are the device-side totals: how many
	// verification reads ran, how many needed ECC correction, and how many
	// entered the retry ladder.
	Reads     int64
	Corrected int64
	Retried   int64
	// ScrubReads / RefreshedBlocks / RetiredBlocks / Rebuilds are the
	// kernel's response totals (zero in the detect-only baseline).
	ScrubReads      int64
	RefreshedBlocks int64
	RetiredBlocks   int64
	Rebuilds        int64
}

// agingGeometry is the campaign device: small enough that pre-wearing every
// block to thousands of cycles stays cheap, big enough to hold a few
// thousand logical pages across two channels.
func agingGeometry() nand.Geometry {
	return nand.Geometry{
		Channels:          2,
		ChipsPerChannel:   1,
		BlocksPerChip:     32,
		WordLinesPerBlock: 32,
		PageSizeBytes:     2048,
		SpareBytes:        64,
	}
}

// RunAging executes one aging campaign and returns its report. It errors on
// configuration problems and on silent corruption (a verification read that
// returns the wrong payload without an error); uncorrectable reads are data
// for the report, not errors.
func RunAging(cfg AgingConfig) (AgingReport, error) {
	if cfg.Epochs <= 0 || cfg.WriteFraction <= 0 || cfg.WriteFraction > 1 {
		return AgingReport{}, fmt.Errorf("experiments: bad aging config %+v", cfg)
	}
	fcfg := ftl.DefaultConfig()
	if cfg.Responses {
		fcfg.Reliability = ftl.DefaultRelPolicy()
	}
	h, err := ftl.Build(cfg.Scheme, ftl.BuildEnv{
		Geometry:    agingGeometry(),
		Config:      fcfg,
		Flex:        ftl.DefaultFlexParams(),
		Reliability: relConfigPtr(rel.DefaultConfig(cfg.Seed)),
	})
	if err != nil {
		return AgingReport{}, err
	}
	k, ok := h.(*ftl.Kernel)
	if !ok {
		return AgingReport{}, fmt.Errorf("experiments: scheme %q is not an MLC kernel", cfg.Scheme)
	}
	dev := k.Device()

	// Pre-wear: cycle every block to the target P/E count. The blocks are
	// all free (nothing written yet), so this only moves wear counters.
	g := dev.Geometry()
	for chip := 0; chip < g.Chips(); chip++ {
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			a := nand.BlockAddr{Chip: chip, Block: blk}
			for i := 0; i < cfg.PreWear; i++ {
				if _, err := dev.Erase(a, 0); err != nil {
					return AgingReport{}, fmt.Errorf("experiments: pre-wear %v: %w", a, err)
				}
			}
		}
	}

	rep := AgingReport{Scheme: cfg.Scheme, Responses: cfg.Responses, FirstLossEpoch: -1}
	n := int64(float64(h.LogicalPages()) * cfg.WriteFraction)
	now := sim.Time(0)
	for lpn := int64(0); lpn < n; lpn++ {
		done, err := h.Write(ftl.LPN(lpn), now, 0.5)
		if err != nil {
			return rep, fmt.Errorf("experiments: aging write LPN %d: %w", lpn, err)
		}
		now = done
	}

	lost := make(map[int64]bool, 16)
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		now += cfg.EpochGap
		if cfg.IdleWindow > 0 {
			h.Idle(now, now+cfg.IdleWindow)
			now += cfg.IdleWindow
		}
		for lpn := int64(0); lpn < n; lpn++ {
			done, err := h.Read(ftl.LPN(lpn), now)
			if err != nil {
				if !errors.Is(err, rel.ErrUncorrectable) {
					return rep, fmt.Errorf("experiments: aging read LPN %d: %w", lpn, err)
				}
				// Detected loss. Count it once per LPN for the loss total,
				// but every failed read must keep failing (sticky pin).
				if !lost[lpn] {
					lost[lpn] = true
					rep.LostReads++
				}
				if rep.FirstLossEpoch < 0 {
					rep.FirstLossEpoch = epoch
				}
				continue
			}
			if lost[lpn] {
				return rep, fmt.Errorf("experiments: LPN %d read clean after an uncorrectable loss (lost pages must stay lost)", lpn)
			}
			if got, ok := ftl.TokenLPN(k.Buf.Data); !ok || got != ftl.LPN(lpn) {
				return rep, fmt.Errorf("experiments: silent corruption: LPN %d read returned token for %d (ok=%v) without an error", lpn, got, ok)
			}
			now = done
		}
	}

	rc := dev.RelCounts()
	st := h.Stats()
	rep.Reads = rc.Reads
	rep.Corrected = rc.Corrected
	rep.Retried = rc.RetriedReads
	rep.ScrubReads = st.ScrubReads
	rep.RefreshedBlocks = st.RefreshedBlocks
	rep.RetiredBlocks = st.RetiredBlocks
	rep.Rebuilds = st.ECCRebuilds
	return rep, nil
}

// relConfigPtr copies c to the heap (BuildEnv wants a pointer so the default
// remains "no reliability model").
func relConfigPtr(c rel.Config) *rel.Config { return &c }

// RenderAging prints the aging sweep as paired baseline/response rows.
func RenderAging(w io.Writer, reps []AgingReport) {
	cfg := DefaultAgingConfig("", false)
	fmt.Fprintf(w, "Retention aging: %d P/E pre-wear, %d epochs x %.2f yr, %v idle/epoch\n",
		cfg.PreWear, cfg.Epochs, float64(cfg.EpochGap)/float64(rel.Year), cfg.IdleWindow)
	fmt.Fprintf(w, "  %-10s %-10s %10s %10s %9s %8s %9s %8s %8s\n",
		"scheme", "responses", "firstLoss", "lostReads", "retried", "scrubs", "refreshed", "retired", "rebuilt")
	for _, r := range reps {
		mode, loss := "off", "-"
		if r.Responses {
			mode = "on"
		}
		if r.FirstLossEpoch >= 0 {
			loss = fmt.Sprintf("epoch %d", r.FirstLossEpoch)
		} else {
			loss = "never"
		}
		fmt.Fprintf(w, "  %-10s %-10s %10s %10d %9d %8d %9d %8d %8d\n",
			r.Scheme, mode, loss, r.LostReads, r.Retried,
			r.ScrubReads, r.RefreshedBlocks, r.RetiredBlocks, r.Rebuilds)
	}
	fmt.Fprintln(w, "with responses off the device is read-only between epochs and retention")
	fmt.Fprintln(w, "walks every page over the ECC budget; idle-window refresh rewrites at-risk")
	fmt.Fprintln(w, "blocks first, deferring (here: eliminating) the first uncorrectable read.")
}

// AgingSweep runs the responses-on and responses-off campaigns for each
// scheme and returns the paired reports, responses-off first — the
// "refresh defers the first loss" comparison of the evaluation.
func AgingSweep(schemes []string, seed uint64) ([]AgingReport, error) {
	var reps []AgingReport
	for _, scheme := range schemes {
		for _, responses := range []bool{false, true} {
			cfg := DefaultAgingConfig(scheme, responses)
			cfg.Seed = seed
			rep, err := RunAging(cfg)
			if err != nil {
				return reps, fmt.Errorf("experiments: aging %s responses=%v: %w", scheme, responses, err)
			}
			reps = append(reps, rep)
		}
	}
	return reps, nil
}
