package experiments

import (
	"reflect"
	"strings"
	"testing"

	"flexftl/internal/nand"
)

// tinyFig8Config keeps unit tests fast: the trends it asserts are the
// paper's coarse directional claims, not exact magnitudes.
func tinyFig8Config() Fig8Config {
	return Fig8Config{
		Geometry: nand.Geometry{
			Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 64,
			WordLinesPerBlock: 16, PageSizeBytes: 4096, SpareBytes: 64,
		},
		Requests: 8000,
		Seed:     7,
	}
}

func TestBuildFTL(t *testing.T) {
	g := nand.TestGeometry()
	for _, s := range Schemes() {
		f, err := BuildFTL(s, g)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if f.Name() != s {
			t.Errorf("built %q, want %q", f.Name(), s)
		}
		wantRules := "FPS"
		if s == "flexFTL" {
			wantRules = "RPS"
		}
		if got := f.Device().Rules().Name(); got != wantRules {
			t.Errorf("%s device rules = %s, want %s", s, got, wantRules)
		}
	}
	if _, err := BuildFTL("nopeFTL", g); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestEvalGeometryValid(t *testing.T) {
	if err := EvalGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(100000, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	RenderTable1(&sb, rows)
	for _, name := range []string{"OLTP", "NTRX", "Webserver", "Varmail", "Fileserver"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("rendered table missing %s", name)
		}
	}
}

func TestRenderFig1Distributions(t *testing.T) {
	var sb strings.Builder
	if err := RenderFig1Distributions(&sb, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fresh", "3K P/E", "E(11)", "P3(10)", "read references"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig4Small(t *testing.T) {
	cfg := Fig4Config{Blocks: 4, WordLines: 16, Cells: 512, Seed: 5, IncludeWorstCase: true}
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Fig4Row{}
	for _, r := range res.Rows {
		byName[r.Order] = r
		if r.Pages != cfg.Blocks*cfg.WordLines {
			t.Errorf("%s sampled %d pages, want %d", r.Order, r.Pages, cfg.Blocks*cfg.WordLines)
		}
	}
	// Figure 4(a): RPS orders do not widen distributions beyond FPS.
	fps := byName["FPS"]
	for _, name := range []string{"RPSfull", "RPShalf"} {
		if byName[name].WP.Median > fps.WP.Median*1.05 {
			t.Errorf("%s median WPi %.3f above FPS %.3f", name, byName[name].WP.Median, fps.WP.Median)
		}
	}
	// The forbidden order is clearly worse in the tail.
	if byName["Unconstrained(worst)"].WP.Max < fps.WP.Max*1.05 {
		t.Errorf("worst-case max WPi %.3f not above FPS %.3f",
			byName["Unconstrained(worst)"].WP.Max, fps.WP.Max)
	}
	// Figure 4(b): BERs at end-of-life are nonzero and comparable FPS/RPS.
	if fps.BER.Median <= 0 {
		t.Error("FPS end-of-life BER is zero; stress model inert")
	}
	for _, name := range []string{"RPSfull", "RPShalf"} {
		if byName[name].BER.Median > fps.BER.Median*1.5 {
			t.Errorf("%s median BER %.2e well above FPS %.2e",
				name, byName[name].BER.Median, fps.BER.Median)
		}
	}
	// The ECC translation: end-of-life page-failure probabilities are
	// defined, and the forbidden order fails at least as often as FPS.
	for _, r := range res.Rows {
		if r.PageFailEOL < 0 || r.PageFailEOL > 1 {
			t.Errorf("%s: page failure prob %v out of range", r.Order, r.PageFailEOL)
		}
	}
	if byName["Unconstrained(worst)"].PageFailEOL < byName["FPS"].PageFailEOL {
		t.Error("forbidden order fails less often than FPS under ECC")
	}
	var sb strings.Builder
	RenderFig4(&sb, res)
	if !strings.Contains(sb.String(), "RPSfull") {
		t.Error("render missing RPSfull")
	}
	if !strings.Contains(sb.String(), "ECC failure") {
		t.Error("render missing ECC failure section")
	}
}

func TestRunFig4TLCSmall(t *testing.T) {
	cfg := Fig4TLCConfig{Blocks: 3, WordLines: 16, Cells: 512, Seed: 9}
	res, err := RunFig4TLC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Fig4TLCRow{}
	for _, r := range res.Rows {
		byName[r.Order] = r
	}
	fixed := byName["Fixed (vendor staircase)"]
	relaxed := byName["Relaxed 3-phase"]
	worst := byName["Unconstrained(worst)"]
	if relaxed.WP.Median > fixed.WP.Median*1.05 {
		t.Errorf("relaxed TLC WPi median %.3f above fixed %.3f", relaxed.WP.Median, fixed.WP.Median)
	}
	if worst.WP.Max < fixed.WP.Max*1.1 {
		t.Errorf("TLC worst-case max WPi %.3f not clearly above fixed %.3f", worst.WP.Max, fixed.WP.Max)
	}
	if fixed.BER.Median <= 0 {
		t.Error("TLC end-of-life BER zero")
	}
	var sb strings.Builder
	RenderFig4TLC(&sb, res)
	if !strings.Contains(sb.String(), "3-phase") {
		t.Error("render missing 3-phase row")
	}
}

func TestRunFig8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 matrix in -short mode")
	}
	res, err := RunFig8(tinyFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	// Every cell filled, baseline normalized to 1.
	for _, s := range res.Schemes {
		for _, wl := range res.Workloads {
			c := res.Cell(s, wl)
			if c == nil {
				t.Fatalf("missing cell %s/%s", s, wl)
			}
			if c.Result.Metrics.Requests == 0 {
				t.Errorf("%s/%s ran no requests", s, wl)
			}
		}
	}
	for _, wl := range res.Workloads {
		if got := res.Cell(Baseline, wl).NormIOPS; got != 1.0 {
			t.Errorf("baseline norm IOPS = %v on %s", got, wl)
		}
		if got := res.Cell(Baseline, wl).NormErases; got != 1.0 {
			t.Errorf("baseline norm erases = %v on %s", got, wl)
		}
	}

	// Directional claims of Section 4.2 at tiny scale:
	// (1) flexFTL IOPS beats the backup-burdened FTLs on write-heavy loads.
	for _, wl := range []string{"NTRX", "Varmail", "Fileserver"} {
		flex := res.Cell("flexFTL", wl).NormIOPS
		for _, ref := range []string{"parityFTL"} {
			if flex <= res.Cell(ref, wl).NormIOPS {
				t.Errorf("%s: flexFTL IOPS %.3f <= %s %.3f", wl, flex, ref, res.Cell(ref, wl).NormIOPS)
			}
		}
	}
	// (2) flexFTL erases fewer blocks than parityFTL and rtfFTL on average.
	flexE := res.AverageNormErases("flexFTL")
	for _, ref := range []string{"parityFTL", "rtfFTL"} {
		if flexE >= res.AverageNormErases(ref) {
			t.Errorf("flexFTL avg erases %.3f >= %s %.3f", flexE, ref, res.AverageNormErases(ref))
		}
	}
	// (3) Varmail peak bandwidth: flexFTL highest.
	flexPeak := res.VarmailCDF("flexFTL").PeakWriteBandwidthMBs
	for _, ref := range []string{"pageFTL", "parityFTL", "rtfFTL"} {
		if flexPeak < res.VarmailCDF(ref).PeakWriteBandwidthMBs {
			t.Errorf("flexFTL Varmail peak %.1f below %s %.1f",
				flexPeak, ref, res.VarmailCDF(ref).PeakWriteBandwidthMBs)
		}
	}

	// Rendering exercises every formatter.
	var sb strings.Builder
	RenderFig8a(&sb, res)
	RenderFig8b(&sb, res)
	RenderFig8c(&sb, res)
	RenderFig8Summary(&sb, res)
	RenderFig1(&sb, nand.DefaultTiming())
	Rule(&sb, "done")
	out := sb.String()
	for _, frag := range []string{"Figure 8(a)", "Figure 8(b)", "Figure 8(c)", "flexFTL", "peak"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render output missing %q", frag)
		}
	}
}

// TestFig8ShapeAcrossSeeds: the directional claims must not hinge on one
// lucky seed — the orderings that matter hold for several.
func TestFig8ShapeAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed fig8 in -short mode")
	}
	for _, seed := range []uint64{7, 99, 12345} {
		cfg := tinyFig8Config()
		cfg.Seed = seed
		res, err := RunFig8(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Lifetime ordering: flexFTL erases fewer than the per-write backup
		// schemes on the write-heavy workloads.
		for _, wl := range []string{"NTRX", "Varmail", "Fileserver"} {
			flex := res.Cell("flexFTL", wl).NormErases
			if par := res.Cell("parityFTL", wl).NormErases; flex >= par {
				t.Errorf("seed %d %s: flexFTL erases %.2f >= parityFTL %.2f", seed, wl, flex, par)
			}
		}
		// Performance ordering: flexFTL at or above parityFTL everywhere.
		for _, wl := range res.Workloads {
			flex := res.Cell("flexFTL", wl).NormIOPS
			if par := res.Cell("parityFTL", wl).NormIOPS; flex < par*0.98 {
				t.Errorf("seed %d %s: flexFTL IOPS %.3f below parityFTL %.3f", seed, wl, flex, par)
			}
		}
		// flexFTL never collapses against the baseline.
		for _, wl := range res.Workloads {
			if flex := res.Cell("flexFTL", wl).NormIOPS; flex < 0.85 {
				t.Errorf("seed %d %s: flexFTL at %.3f of pageFTL", seed, wl, flex)
			}
		}
	}
}

func TestRunSensitivitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep in -short mode")
	}
	cfg := SensitivityConfig{
		Geometry:    tinyFig8Config().Geometry,
		Requests:    4000,
		Seed:        3,
		OPFractions: []float64{0.125, 0.25},
		BufferSizes: []int{64},
	}
	res, err := RunSensitivity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OP) != 2 || len(res.Buffer) != 1 {
		t.Fatalf("points: OP %d, buffer %d", len(res.OP), len(res.Buffer))
	}
	for _, p := range append(append([]SensitivityPoint{}, res.OP...), res.Buffer...) {
		if p.FlexIOPS <= 0 || p.PageIOPS <= 0 || p.Advantage <= 0 {
			t.Errorf("%s: degenerate point %+v", p.Setting, p)
		}
	}
	// Lower OP = more GC pressure = higher WA for both.
	if res.OP[0].FlexWA < res.OP[1].FlexWA {
		t.Errorf("WA not decreasing with OP: %.2f -> %.2f", res.OP[0].FlexWA, res.OP[1].FlexWA)
	}
	var sb strings.Builder
	RenderSensitivity(&sb, res)
	if !strings.Contains(sb.String(), "over-provisioning") {
		t.Error("render incomplete")
	}
}

func TestRunStressSweepSmall(t *testing.T) {
	cfg := StressSweepConfig{
		WordLines: 16, Cells: 512, Blocks: 3, Seed: 3,
		Cycles: []int{0, 3000, 6000},
	}
	pts, err := RunStressSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// BER grows with wear for both orders.
	for _, name := range []string{"FPS", "RPSfull"} {
		prev := -1.0
		for _, p := range pts {
			if p.MedianBER[name] < prev {
				t.Errorf("%s BER not monotone at %d cycles", name, p.PECycles)
			}
			prev = p.MedianBER[name]
			if p.PageFail[name] < 0 || p.PageFail[name] > 1 {
				t.Errorf("%s Pfail out of range: %v", name, p.PageFail[name])
			}
		}
	}
	// Fresh devices read clean; worn-out ones do not.
	if pts[0].MedianBER["FPS"] != 0 {
		t.Errorf("fresh median BER = %v", pts[0].MedianBER["FPS"])
	}
	if pts[2].MedianBER["FPS"] == 0 {
		t.Error("6K-cycle median BER still zero")
	}
	var sb strings.Builder
	RenderStressSweep(&sb, pts)
	if !strings.Contains(sb.String(), "P/E") {
		t.Error("render incomplete")
	}
}

func TestRunAblationsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	cfg := AblationConfig{
		Geometry: tinyFig8Config().Geometry,
		Requests: 6000,
		Seed:     5,
	}
	res, err := RunAblations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 6 + len(Hybrids()); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		if r.IOPS <= 0 {
			t.Errorf("%s: zero IOPS", r.Name)
		}
	}
	// The registry's hybrid schemes ride along in the sweep.
	for _, h := range Hybrids() {
		if _, ok := byName[h+" (hybrid)"]; !ok {
			t.Errorf("hybrid %q missing from ablation rows", h)
		}
	}
	base := byName["flexFTL (paper settings)"]
	// A vanishing quota must cut the burst peak (the near-FPS regression).
	if tiny := byName["quota 0.1% (near-FPS)"]; tiny.PeakMBs >= base.PeakMBs {
		t.Errorf("tiny quota peak %.1f not below paper settings %.1f", tiny.PeakMBs, base.PeakMBs)
	}
	// LSB-copying BGC must hurt IOPS (the q-replenishment ablation).
	if lsb := byName["BGC copies via LSB"]; lsb.IOPS >= base.IOPS {
		t.Errorf("LSB-copy BGC IOPS %.0f not below paper settings %.0f", lsb.IOPS, base.IOPS)
	}
	var sb strings.Builder
	RenderAblations(&sb, res)
	if !strings.Contains(sb.String(), "ablations") {
		t.Error("render incomplete")
	}
}

func TestRunFig8Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 determinism in -short mode")
	}
	cfg := tinyFig8Config()
	cfg.Requests = 3000
	cfg.Workers = 8
	a, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1 // concurrency must not affect results
	b, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Schemes {
		for _, wl := range a.Workloads {
			ca, cb := a.Cell(s, wl), b.Cell(s, wl)
			if ca.Result.Metrics.IOPS != cb.Result.Metrics.IOPS ||
				ca.Result.Stats != cb.Result.Stats {
				t.Errorf("%s/%s differs between parallel and serial runs", s, wl)
			}
		}
	}
}

// TestRunFig4DeterministicAcrossWorkers: the parallel fan-out must be
// byte-identical to the serial run — every block derives its own seed and
// writes its own result slot.
func TestRunFig4DeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultFig4Config()
	cfg.Blocks, cfg.WordLines, cfg.Cells = 4, 8, 64
	cfg.Workers = 8
	a, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Config, b.Config = Fig4Config{}, Fig4Config{} // only Workers differs
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig4 differs between 8 workers and serial:\n%+v\n%+v", a, b)
	}
}

// TestRunFig4TLCDeterministicAcrossWorkers mirrors the MLC check for the
// TLC study.
func TestRunFig4TLCDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultFig4TLCConfig()
	cfg.Blocks, cfg.WordLines, cfg.Cells = 3, 8, 64
	cfg.Workers = 8
	a, err := RunFig4TLC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunFig4TLC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Config, b.Config = Fig4TLCConfig{}, Fig4TLCConfig{}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig4TLC differs between 8 workers and serial:\n%+v\n%+v", a, b)
	}
}

// TestRunStressSweepDeterministicAcrossWorkers: the sweep's ordered task
// grid must make its output worker-count independent.
func TestRunStressSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := StressSweepConfig{
		WordLines: 8, Cells: 64, Blocks: 2, Seed: 5,
		Cycles: []int{0, 3000}, Workers: 8,
	}
	a, err := RunStressSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunStressSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("stress sweep differs between 8 workers and serial:\n%+v\n%+v", a, b)
	}
}
