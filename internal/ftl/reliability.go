package ftl

import (
	"errors"
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// RelPolicy parameterizes the kernel's responses to the device reliability
// model: how hard the ECC envelope may be pushed before data moves (refresh),
// how worn a block may get before it leaves service (retirement), and how
// much idle time goes into patrol reads (scrubbing). Enabling the policy
// requires a device built with a rel.Config — the model supplies the BER
// predictions the thresholds act on.
type RelPolicy struct {
	// TargetPageFailure is the acceptable per-page-read failure probability
	// after the full retry ladder; the raw-BER budget every threshold below
	// derives from is rel.Config.BERBudget(pageSize, TargetPageFailure).
	TargetPageFailure float64
	// RefreshFraction, in (0,1], positions the refresh line: a full block
	// whose predicted BER (oldest data, current read disturb) crosses
	// RefreshFraction x budget is relocated during idle windows, resetting
	// its retention and disturb clocks before reads start failing.
	RefreshFraction float64
	// RetireFraction, in (0,1] and >= RefreshFraction, positions the
	// retirement line: a block whose post-erase fresh-data BER already
	// crosses RetireFraction x budget can no longer hold data for a full
	// retention period and is taken out of service (capacity shrinks).
	RetireFraction float64
	// ScrubReadsPerIdle bounds the patrol reads issued per idle window (0
	// disables scrubbing; refresh and retirement still run).
	ScrubReadsPerIdle int
}

// DefaultRelPolicy returns the reference policy: a 1e-4 page-failure target,
// refresh at 60% of the budget, retire at 90%, 8 patrol reads per idle
// window.
func DefaultRelPolicy() *RelPolicy {
	return &RelPolicy{
		TargetPageFailure: 1e-4,
		RefreshFraction:   0.6,
		RetireFraction:    0.9,
		ScrubReadsPerIdle: 8,
	}
}

// Validate rejects unusable policies.
func (p *RelPolicy) Validate() error {
	if !(p.TargetPageFailure > 0 && p.TargetPageFailure < 1) {
		return fmt.Errorf("ftl: reliability target page failure %g outside (0,1)", p.TargetPageFailure)
	}
	if !(p.RefreshFraction > 0 && p.RefreshFraction <= 1) {
		return fmt.Errorf("ftl: refresh fraction %g outside (0,1]", p.RefreshFraction)
	}
	if !(p.RetireFraction > 0 && p.RetireFraction <= 1) {
		return fmt.Errorf("ftl: retire fraction %g outside (0,1]", p.RetireFraction)
	}
	if p.RetireFraction < p.RefreshFraction {
		return fmt.Errorf("ftl: retire fraction %g below refresh fraction %g (blocks would retire before ever refreshing)",
			p.RetireFraction, p.RefreshFraction)
	}
	if p.ScrubReadsPerIdle < 0 {
		return fmt.Errorf("ftl: scrub reads per idle %d < 0", p.ScrubReadsPerIdle)
	}
	return nil
}

// initReliability derives the Base's BER thresholds from the policy and the
// device's model. Called by NewBase when a policy is configured.
func (b *Base) initReliability(rp *RelPolicy) error {
	rc := b.Dev.Reliability()
	if rc == nil {
		return fmt.Errorf("ftl: reliability policy configured but the device has no reliability model")
	}
	b.relEnabled = true
	b.relBudget = rc.BERBudget(b.Dev.Geometry().PageSizeBytes, rp.TargetPageFailure)
	b.relRefreshBER = rp.RefreshFraction * b.relBudget
	b.relRetireBER = rp.RetireFraction * b.relBudget
	return nil
}

// BERBudget returns the raw-BER budget the refresh and retirement thresholds
// derive from (0 when the reliability policy is off).
func (b *Base) BERBudget() float64 { return b.relBudget }

// maybeRetire applies the retirement policy to a freshly erased block: when
// its post-erase predicted BER for fresh data crosses the retire line, the
// block cannot safely hold data for a full retention period any more, so it
// leaves service instead of returning to the free pool. The caller owns the
// block (it is off all lists); retirement shrinks capacity by one block,
// exactly like an erase-budget wear-out. Reports whether the block retired.
//
// Safe inside channel shards: the decision reads only the block's chip-local
// wear, and the shard planner's free-block headroom counts pops, not pushes —
// skipping the PushFree can only leave more margin.
func (b *Base) maybeRetire(chip, blk int) bool {
	if !b.relEnabled {
		return false
	}
	addr := nand.BlockAddr{Chip: chip, Block: blk}
	if b.Dev.PredictFreshBER(addr) < b.relRetireBER {
		return false
	}
	if err := b.Dev.RetireBlock(addr); err != nil {
		return false
	}
	b.St.RetiredBlocks++
	return true
}

// relocateLost prepares b.Buf for relocating a page whose GC read failed the
// ECC ladder: a parity rebuild when the page is covered, otherwise a
// fabricated placeholder token plus a pending mark so markRelocatedLoss pins
// the new physical location lost once the relocation lands. Either way the
// collection continues — one dead page must not leak a whole victim block.
func (b *Base) relocateLost(lpn LPN, lost nand.PageAddr, now sim.Time) sim.Time {
	if b.repairRead != nil {
		if t, ok := b.repairRead(b, lpn, lost, now); ok {
			b.St.ECCRebuilds++
			return t
		}
	}
	b.Buf.Data = append(b.Buf.Data[:0], b.Token(lpn)...)
	b.Buf.Spare = append(b.Buf.Spare[:0], b.Spare(lpn)...)
	b.relLostPending = true
	return now
}

// markRelocatedLoss pins the freshly relocated copy of lpn lost when the
// relocation carried a placeholder token (flagged by relocateLost). The LPN
// stays mapped: a later host read must fail loudly, not read back the
// placeholder as if it were data.
func (b *Base) markRelocatedLoss(lpn LPN) {
	if !b.relLostPending {
		return
	}
	b.relLostPending = false
	b.St.GCReadLosses++
	if ppn, ok := b.Map.Lookup(lpn); ok {
		_ = b.Dev.MarkLost(b.Dev.Geometry().AddrOfPPN(ppn))
	}
}

// relIdle is the reliability slice of an idle window, run between background
// GC and the order policy's own idle work: a bounded patrol-read scrub over
// the mapped space, then a refresh scan that relocates full blocks whose
// predicted BER approaches the ECC budget. Only ever called on the real
// kernel (idle windows never execute inside channel shards).
func (k *Kernel) relIdle(now, until sim.Time) sim.Time {
	if !k.relEnabled {
		return now
	}
	now = k.scrubPatrol(now, until)
	return k.refreshScan(now, until)
}

// scrubPatrol issues up to ScrubReadsPerIdle patrol reads over the mapped
// physical space, rotating a persistent cursor so successive idle windows
// cover different pages. A patrol read that comes back uncorrectable is
// repaired from parity and re-homed when possible; otherwise the page is
// pinned lost so the eventual host read fails deterministically instead of
// silently returning garbage.
func (k *Kernel) scrubPatrol(now, until sim.Time) sim.Time {
	rp := k.Cfg.Reliability
	if rp.ScrubReadsPerIdle <= 0 {
		return now
	}
	g := k.Dev.Geometry()
	t := k.Dev.Timing()
	// Worst-case cost of one patrol read (full retry ladder) plus the
	// relocation it may trigger; budgeted before issue so the patrol never
	// overruns the window.
	perRead := t.Read*sim.Time(1+k.Dev.Reliability().MaxRetries) + t.BusXfer
	perFix := GCPageCopyCost(t)
	total := int64(g.TotalPages())
	reads := 0
	for probes := int64(0); probes < total && reads < rp.ScrubReadsPerIdle; probes++ {
		ppn := nand.PPN(k.scrubCursor)
		k.scrubCursor = (k.scrubCursor + 1) % total
		lpn, mapped := k.Map.LPNAt(ppn)
		if !mapped {
			continue
		}
		if now+perRead+perFix > until {
			break
		}
		reads++
		addr := g.AddrOfPPN(ppn)
		prev := k.Dev.SetCauseChip(addr.Chip, obs.CauseScrub)
		done, err := k.Dev.ReadInto(addr, &k.Buf, now)
		k.Dev.SetCauseChip(addr.Chip, prev)
		k.St.ScrubReads++
		now = done
		if err == nil {
			continue
		}
		if !errors.Is(err, rel.ErrUncorrectable) {
			return now // power-loss corruption etc.: not the scrubber's problem
		}
		if k.repairRead != nil {
			if t2, ok := k.repairRead(k.Base, lpn, addr, now); ok {
				now = t2
				k.St.ECCRebuilds++
				// Re-home the rebuilt payload before the stripe loses a
				// second page. Copy out of Buf first: the relocation path
				// may itself read through Buf.
				var tok [TokenSize]byte
				n := copy(tok[:], k.Buf.Data)
				var sp [8]byte
				copy(sp[:], k.Buf.Spare)
				prev = k.Dev.SetCauseChip(addr.Chip, obs.CauseScrub)
				t2, err = k.gcAlloc(addr.Chip, lpn, tok[:n], sp[:], now)
				k.Dev.SetCauseChip(addr.Chip, prev)
				if err != nil {
					return now
				}
				now = t2
				// The rewrite rides the GC relocation path, so the LSB/MSB
				// split counters already moved; keep GCCopies consistent.
				k.St.GCCopies++
				k.St.RefreshCopies++
				continue
			}
		}
		// Unrepairable: pin the loss. The mapping stays intact — the host
		// must see a read failure, not an unmapped page.
		_ = k.Dev.MarkLost(addr)
		k.St.UncorrectableReads++
	}
	return now
}

// refreshScan walks the full blocks (one lap per idle window at most),
// relocating any whose predicted BER — oldest data at current wear, age and
// read disturb — has crossed the refresh line. The relocation is a normal GC
// collection charged to the scrub cause: valid pages move to fresh blocks
// (resetting their retention clocks), the block is erased (resetting its
// disturb counter) and passes through the retirement check like any other
// erase.
func (k *Kernel) refreshScan(now, until sim.Time) sim.Time {
	g := k.Dev.Geometry()
	t := k.Dev.Timing()
	total := g.TotalBlocks()
	bpc := g.BlocksPerChip
	for probes := 0; probes < total; probes++ {
		flat := k.refreshCursor
		k.refreshCursor = (k.refreshCursor + 1) % total
		chip, blk := flat/bpc, flat%bpc
		if !k.Pools[chip].IsFull(blk) {
			continue
		}
		addr := nand.BlockAddr{Chip: chip, Block: blk}
		if k.Dev.PredictBlockBER(addr, now) < k.relRefreshBER {
			continue
		}
		if now+EstimateGCCost(t, k.Map.ValidCount(addr)) > until {
			// The window cannot absorb this collection; rewind so the next
			// idle window retries the same block first.
			k.refreshCursor = flat
			break
		}
		copiesBefore := k.St.GCCopies
		done, err := k.collectVictim(chip, blk, now, k.gcAlloc, obs.CauseScrub)
		if err != nil {
			return now
		}
		now = done
		k.St.RefreshedBlocks++
		k.St.RefreshCopies += k.St.GCCopies - copiesBefore
	}
	return now
}

// rebuildRead attempts to reconstruct an ECC-lost page in place from the
// per-block parity of Section 3.3: coverable pages are LSB pages of blocks
// whose parity reference is still live (the reference is cleared when the
// block's slow phase completes — and a live reference also keeps the backup
// block unerased, so the parity is always readable). On success the rebuilt
// payload and its reverse-map spare are left in b.Buf, exactly as if the
// original read had succeeded, and the advanced chip time is returned.
//
// The rebuild is pure — no mapping updates, no programs — so it is legal on
// every read path, including host reads inside channel shards (all reads
// stay on the lost page's chip). Re-homing the data is the scrub patrol's
// job, on the real kernel only.
func (bp *blockParity) rebuildRead(b *Base, lpn LPN, lost nand.PageAddr, now sim.Time) (sim.Time, bool) {
	if lost.Page.Type != core.LSB {
		return now, false
	}
	ref := bp.refs[b.Map.FlatBlock(lost.BlockAddr)]
	if ref.backupBlk == -1 {
		return now, false
	}
	g := b.Dev.Geometry()
	prev := b.Dev.SetCauseChip(lost.Chip, obs.CauseScrub)
	defer b.Dev.SetCauseChip(lost.Chip, prev)
	parityAddr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: lost.Chip, Block: ref.backupBlk},
		Page:      core.Page{WL: ref.page, Type: core.LSB},
	}
	now, err := b.Dev.ReadInto(parityAddr, &b.Buf, now)
	if err != nil {
		return now, false
	}
	if got, ok := blockFromSpare(b.Buf.Spare); !ok || got != lost.Block {
		return now, false
	}
	acc := make([]byte, TokenSize)
	copy(acc, b.Buf.Data)
	// XOR in every surviving LSB page of the stripe (a live reference means
	// the fast phase completed, so all of them are programmed). A second
	// uncorrectable page in the stripe defeats single parity.
	for wl := 0; wl < g.WordLinesPerBlock; wl++ {
		if wl == lost.Page.WL {
			continue
		}
		sAddr := nand.PageAddr{BlockAddr: lost.BlockAddr, Page: core.Page{WL: wl, Type: core.LSB}}
		now, err = b.Dev.ReadInto(sAddr, &b.Buf, now)
		if err != nil {
			return now, false
		}
		for i := 0; i < TokenSize && i < len(b.Buf.Data); i++ {
			acc[i] ^= b.Buf.Data[i]
		}
	}
	if got, ok := TokenLPN(acc); !ok || got != lpn {
		return now, false
	}
	b.Buf.Data = append(b.Buf.Data[:0], acc...)
	b.Buf.Spare = append(b.Buf.Spare[:0], b.Spare(lpn)...)
	return now, true
}
