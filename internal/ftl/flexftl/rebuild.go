package flexftl

import (
	"errors"
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
)

// RebuildReport summarizes a full mapping-table reconstruction.
type RebuildReport struct {
	PagesScanned int
	Mapped       int64
	Mismatches   int64 // entries that disagreed with the pre-rebuild table
	Start, End   sim.Time
}

// Duration returns the scan's elapsed virtual time.
func (r RebuildReport) Duration() sim.Time { return r.End - r.Start }

// RebuildMapping reconstructs the logical-to-physical table from flash
// alone: every programmed data page carries its LPN in the spare area and a
// monotone global sequence number in its payload token, so scanning all
// pages and keeping the highest-sequence version per LPN yields the current
// map. This is the full-reboot path a host-level FTL needs when its RAM
// table is gone (the paper's recovery discussion assumes the map; this
// closes that assumption).
//
// The scan respects device timing (every page is read), chips proceeding in
// parallel. Backup-block parity pages identify themselves by their spare
// layout (block-number inverse mapping) and their position outside the data
// pools; they are excluded by consulting the FTL's backup-block lists, which
// a real implementation would persist in a tiny superblock.
func (f *FTL) RebuildMapping(now sim.Time) (RebuildReport, error) {
	rep := RebuildReport{Start: now}
	g := f.Dev.Geometry()

	old := f.Map
	fresh := ftl.NewMapper(g, f.LogicalPages())
	bestSeq := make(map[ftl.LPN]uint64)

	end := now
	for chip := 0; chip < g.Chips(); chip++ {
		chipNow := now
		backup := f.backupBlockSet(chip)
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			if backup[blk] {
				continue
			}
			for idx := 0; idx < g.PagesPerBlock(); idx++ {
				page := core.PageFromIndex(idx, g.WordLinesPerBlock)
				addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: blk}, Page: page}
				if !f.Dev.IsProgrammed(addr) {
					continue
				}
				t, err := f.Dev.ReadInto(addr, &f.Buf, chipNow)
				rep.PagesScanned++
				chipNow = t
				if err != nil {
					if errors.Is(err, nand.ErrUncorrectable) {
						continue // lost page; parity recovery handles it separately
					}
					return rep, fmt.Errorf("flexftl: rebuild read %v: %w", addr, err)
				}
				data, spare := f.Buf.Data, f.Buf.Spare
				lpn, ok := ftl.LPNFromSpare(spare)
				if !ok || lpn < 0 || int64(lpn) >= f.LogicalPages() {
					continue // not a data page (e.g. padding)
				}
				tokLPN, ok := ftl.TokenLPN(data)
				if !ok || tokLPN != lpn {
					continue // payload disagrees with spare: not a live data page
				}
				seq := tokenSeq(data)
				if prev, exists := bestSeq[lpn]; exists && seq <= prev {
					continue
				}
				// Update re-points the LPN, invalidating any older copy the
				// scan found earlier.
				fresh.Update(lpn, g.PPNOf(addr))
				bestSeq[lpn] = seq
			}
		}
		if chipNow > end {
			end = chipNow
		}
	}
	rep.End = end

	// Compare against the in-RAM table (when it survived) for diagnostics.
	for lpn := ftl.LPN(0); int64(lpn) < f.LogicalPages(); lpn++ {
		oldPPN, oldOK := old.Lookup(lpn)
		newPPN, newOK := fresh.Lookup(lpn)
		if oldOK != newOK || (oldOK && oldPPN != newPPN) {
			rep.Mismatches++
		}
	}
	rep.Mapped = fresh.Mapped()
	// SetMapper (not a bare assignment) rewires the victim-index hook and
	// re-buckets every pool against the fresh table's valid counts.
	f.SetMapper(fresh)
	return rep, nil
}

// backupBlockSet returns the chip's backup blocks (current + retired) —
// the superblock metadata a real FTL persists.
func (f *FTL) backupBlockSet(chip int) map[int]bool {
	set := make(map[int]bool)
	bk := &f.chips[chip].backup
	if bk.cur != -1 {
		set[bk.cur] = true
	}
	for _, b := range bk.retired {
		set[b] = true
	}
	return set
}

// tokenSeq extracts the global sequence number from a payload token.
func tokenSeq(data []byte) uint64 {
	if len(data) < 16 {
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(data[8+i]) << (8 * i)
	}
	return v
}
