package flexftl

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// primeToMSBPhase drives the FTL until chip 0's active slow block has at
// least one MSB program in flight, returning the virtual time.
func primeToMSBPhase(t *testing.T, f *FTL) sim.Time {
	t.Helper()
	g := f.Dev.Geometry()
	now := sim.Time(0)
	lpn := ftl.LPN(0)
	// Fill fast blocks under high utilization until slow blocks exist, then
	// push MSB writes with low utilization.
	for i := 0; i < g.Chips()*g.LSBPagesPerBlock(); i++ {
		done, err := f.Write(lpn, now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		lpn++
	}
	for f.ActiveSlowProgress(0) == 0 {
		done, err := f.Write(lpn, now, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		lpn++
	}
	return now
}

// TestPowerFailRecovery is the Figure 7(b) scenario end to end: a power cut
// during an MSB program destroys the paired LSB page; the reboot procedure
// reconstructs it from the per-block parity page and re-homes the data.
func TestPowerFailRecovery(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	now := primeToMSBPhase(t, f)
	g := f.Dev.Geometry()

	// Identify the vulnerable page: paired LSB of the last in-flight MSB.
	chip := 0
	blk := f.ActiveSlowBlock(chip)
	wl := f.ActiveSlowProgress(chip) - 1
	lsbAddr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
		Page:      pg(wl, false),
	}
	lostLPN, live := f.Map.LPNAt(g.PPNOf(lsbAddr))
	if !live {
		t.Fatal("test setup: paired LSB holds no live data")
	}

	// Power cut: flexFTL wrote no per-MSB backup, so the device corrupts
	// the paired LSB.
	if !f.Dev.InjectPowerLoss(nand.BlockAddr{Chip: chip, Block: blk}) {
		t.Fatal("no in-flight MSB program to interrupt")
	}
	if _, err := f.Read(lostLPN, now); err == nil {
		t.Fatal("paired LSB still readable after power cut; corruption not injected")
	}

	rep, err := f.Recover(now)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(rep.Recovered) != 1 || rep.Recovered[0] != lostLPN {
		t.Fatalf("recovered LPNs = %v, want [%d]", rep.Recovered, lostLPN)
	}
	if len(rep.Dropped) != 1 {
		t.Errorf("dropped in-flight MSB writes = %v, want exactly 1", rep.Dropped)
	}
	if rep.PagesRead == 0 || rep.Duration() <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	// The lost data is readable again at its new location.
	if _, err := f.Read(lostLPN, rep.End); err != nil {
		t.Errorf("recovered LPN unreadable: %v", err)
	}
	// And the FTL keeps working afterwards.
	doneW, err := f.Write(lostLPN, rep.End, 0.5)
	if err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if _, err := f.Read(lostLPN, doneW); err != nil {
		t.Errorf("read after post-recovery write: %v", err)
	}
}

// pg is a tiny page-literal helper for recovery tests.
func pg(wl int, msb bool) core.Page {
	t := core.LSB
	if msb {
		t = core.MSB
	}
	return core.Page{WL: wl, Type: t}
}

// TestRecoveryWithoutCrashIsCheap: recovering a healthy system re-reads LSB
// pages of active blocks only and recovers nothing.
func TestRecoveryWithoutCrash(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	now := primeToMSBPhase(t, f)
	// Acknowledge the in-flight program (power did not fail).
	f.Dev.AckProgram(nand.BlockAddr{Chip: 0, Block: f.ActiveSlowBlock(0)})
	rep, err := f.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered) != 0 || len(rep.Dropped) != 0 {
		t.Errorf("healthy recovery recovered %v / dropped %v", rep.Recovered, rep.Dropped)
	}
	if rep.PagesRead == 0 {
		t.Error("healthy recovery read nothing; parity recomputation skipped")
	}
}

// TestRecoveryStaleLSB: if the destroyed LSB page held only stale data, the
// procedure recomputes parity but re-homes nothing.
func TestRecoveryStaleLSB(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	now := primeToMSBPhase(t, f)
	g := f.Dev.Geometry()
	chip := 0
	blk := f.ActiveSlowBlock(chip)
	wl := f.ActiveSlowProgress(chip) - 1
	lsbPPN := g.PPNOf(nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
		Page:      pg(wl, false),
	})
	lostLPN, live := f.Map.LPNAt(lsbPPN)
	if !live {
		t.Fatal("setup: LSB already stale")
	}
	// Overwrite the LPN elsewhere so the physical page goes stale.
	done, err := f.Write(lostLPN, now, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	now = done
	if !f.Dev.InjectPowerLoss(nand.BlockAddr{Chip: chip, Block: blk}) {
		t.Skip("MSB window closed by the overwrite path")
	}
	rep, err := f.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered) != 0 {
		t.Errorf("stale page re-homed: %v", rep.Recovered)
	}
	// The live copy is unaffected.
	if _, err := f.Read(lostLPN, rep.End); err != nil {
		t.Errorf("live copy unreadable: %v", err)
	}
}

// TestRecoveryReadOverhead reproduces the Section 3.3 estimate: the scan
// reads the LSB pages of (up to) two active blocks per chip; with chips
// scanning in parallel the reboot overhead is a few milliseconds, and the
// total page-read count matches chips x blocks x LSB pages.
func TestRecoveryReadOverhead(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	now := primeToMSBPhase(t, f)
	g := f.Dev.Geometry()
	tm := f.Dev.Timing()
	f.Dev.AckProgram(nand.BlockAddr{Chip: 0, Block: f.ActiveSlowBlock(0)})
	rep, err := f.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	// Upper bound: every chip scans its active slow block (W LSB reads) and
	// its active fast block (< W reads).
	maxReads := g.Chips() * 2 * g.LSBPagesPerBlock()
	if rep.PagesRead > maxReads {
		t.Errorf("recovery read %d pages, bound %d", rep.PagesRead, maxReads)
	}
	// Chips scan in parallel: elapsed <= 2W serial reads (+ bus sharing
	// slack between chips on a channel).
	bound := sim.Time(2*g.LSBPagesPerBlock()) * (tm.Read + 2*tm.BusXfer) * 2
	if rep.Duration() > bound {
		t.Errorf("recovery took %v, parallel-scan bound %v", rep.Duration(), bound)
	}
}

// TestRecoveryAfterMetadataLoss: the reboot lost the in-memory parity
// location table; recovery must find the parity page by scanning the backup
// blocks' spare areas (the paper's inverse mapping).
func TestRecoveryAfterMetadataLoss(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	now := primeToMSBPhase(t, f)
	g := f.Dev.Geometry()
	chip := 0
	blk := f.ActiveSlowBlock(chip)
	wl := f.ActiveSlowProgress(chip) - 1
	lostLPN, live := f.Map.LPNAt(g.PPNOf(nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
		Page:      pg(wl, false),
	}))
	if !live {
		t.Fatal("setup: paired LSB not live")
	}
	if !f.Dev.InjectPowerLoss(nand.BlockAddr{Chip: chip, Block: blk}) {
		t.Fatal("no in-flight MSB program")
	}
	f.ForgetParityRefs() // simulate the reboot dropping runtime metadata
	rep, err := f.Recover(now)
	if err != nil {
		t.Fatalf("scan-based recovery failed: %v", err)
	}
	if len(rep.Recovered) != 1 || rep.Recovered[0] != lostLPN {
		t.Fatalf("recovered = %v, want [%d]", rep.Recovered, lostLPN)
	}
	if _, err := f.Read(lostLPN, rep.End); err != nil {
		t.Errorf("recovered LPN unreadable: %v", err)
	}
	// The scan must have read more pages than the ref-based fast path (it
	// walks backup blocks), visible in the report.
	if rep.PagesRead == 0 {
		t.Error("scan read nothing")
	}
}

// TestScanPicksNewestParity: when the same in-chip block number was a fast
// block twice, the scan must use the newest parity page for it.
func TestScanPicksNewestParity(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	g := f.Dev.Geometry()
	src := rng.New(7)
	logical := f.LogicalPages()
	now := sim.Time(0)
	// Drive enough traffic that blocks cycle through GC and get reused as
	// fast blocks, producing repeated protected-block numbers in the
	// backup stream.
	for i := int64(0); i < 4*logical; i++ {
		done, err := f.Write(ftl.LPN(src.Int63n(logical)), now, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if i%500 == 499 {
			f.Idle(now, now+200*sim.Millisecond)
		}
	}
	// Find a chip mid-MSB-phase; force the crash and scan-based recovery.
	for chip := 0; chip < g.Chips(); chip++ {
		if f.SlowQueueLen(chip) == 0 || f.ActiveSlowProgress(chip) == 0 {
			continue
		}
		blk := f.ActiveSlowBlock(chip)
		if !f.Dev.InjectPowerLoss(nand.BlockAddr{Chip: chip, Block: blk}) {
			continue
		}
		f.ForgetParityRefs()
		rep, err := f.Recover(now)
		if err != nil {
			t.Fatalf("recovery after reuse: %v", err)
		}
		for _, lpn := range rep.Recovered {
			if _, err := f.Read(lpn, rep.End); err != nil {
				t.Errorf("recovered LPN %d unreadable: %v", lpn, err)
			}
		}
		return
	}
	t.Skip("no chip was mid-MSB-phase at the end of the run")
}

// TestRecoveryDeterminism: recovery after identical histories yields
// identical reports.
func TestRecoveryDeterminism(t *testing.T) {
	run := func() (RecoveryReport, error) {
		f := newFlex(t, nand.TestGeometry())
		now := primeToMSBPhase(t, f)
		f.Dev.InjectPowerLoss(nand.BlockAddr{Chip: 0, Block: f.ActiveSlowBlock(0)})
		return f.Recover(now)
	}
	a, errA := run()
	b, errB := run()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.PagesRead != b.PagesRead || a.Duration() != b.Duration() ||
		len(a.Recovered) != len(b.Recovered) {
		t.Errorf("recovery not deterministic: %+v vs %+v", a, b)
	}
}

// TestMultiChipPowerLoss: power loss touches every chip's active slow block;
// recovery handles all of them in one pass.
func TestMultiChipPowerLoss(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	g := f.Dev.Geometry()
	now := sim.Time(0)
	lpn := ftl.LPN(0)
	src := rng.New(3)
	// Drive every chip into its MSB phase.
	for i := 0; i < g.Chips()*g.LSBPagesPerBlock(); i++ {
		done, err := f.Write(lpn, now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		lpn++
	}
	for chip := 0; chip < g.Chips(); chip++ {
		for f.ActiveSlowProgress(chip) == 0 {
			done, err := f.Write(lpn, now, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			now = done
			lpn++
		}
	}
	_ = src
	injected := 0
	for chip := 0; chip < g.Chips(); chip++ {
		if f.SlowQueueLen(chip) > 0 &&
			f.Dev.InjectPowerLoss(nand.BlockAddr{Chip: chip, Block: f.ActiveSlowBlock(chip)}) {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no power-loss windows found")
	}
	rep, err := f.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered)+len(rep.Dropped) == 0 {
		t.Error("multi-chip recovery found nothing to do")
	}
	// Every recovered LPN reads back.
	for _, lpn := range rep.Recovered {
		if _, err := f.Read(lpn, rep.End); err != nil {
			t.Errorf("recovered LPN %d unreadable: %v", lpn, err)
		}
	}
}
