package flexftl

import (
	"testing"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// TestRebuildMappingMatchesRAMTable: after a GC-heavy history, a flash-scan
// rebuild reproduces the in-RAM mapping table exactly.
func TestRebuildMappingMatchesRAMTable(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	src := rng.New(101)
	logical := f.LogicalPages()
	z := rng.NewZipf(src, int(logical), 0.95)
	now := sim.Time(0)
	var err error
	for i := int64(0); i < 3*logical; i++ {
		now, err = f.Write(ftl.LPN(z.Next()), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		if i%444 == 443 {
			f.Idle(now, now+150*sim.Millisecond)
			now += 150 * sim.Millisecond
		}
	}
	// Snapshot the live table.
	type entry struct {
		ppn nand.PPN
		ok  bool
	}
	want := make([]entry, logical)
	for lpn := ftl.LPN(0); int64(lpn) < logical; lpn++ {
		ppn, ok := f.Map.Lookup(lpn)
		want[lpn] = entry{ppn, ok}
	}
	rep, err := f.RebuildMapping(now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Errorf("rebuild disagreed with the RAM table on %d LPNs", rep.Mismatches)
	}
	if rep.PagesScanned == 0 || rep.Duration() <= 0 {
		t.Errorf("scan did no work: %+v", rep)
	}
	for lpn := ftl.LPN(0); int64(lpn) < logical; lpn++ {
		ppn, ok := f.Map.Lookup(lpn)
		if ok != want[lpn].ok || (ok && ppn != want[lpn].ppn) {
			t.Fatalf("LPN %d: rebuilt (%v,%v), want (%v,%v)",
				lpn, ppn, ok, want[lpn].ppn, want[lpn].ok)
		}
	}
	// The FTL keeps working on the rebuilt table.
	if _, err := f.Write(0, rep.End, 0.5); err != nil {
		t.Fatalf("write after rebuild: %v", err)
	}
	if _, err := f.Read(0, rep.End+sim.Second); err != nil {
		t.Fatalf("read after rebuild: %v", err)
	}
}

// TestRebuildAfterTrims: trimmed LPNs stay unmapped after a rebuild... with
// a caveat the test documents: a pure flash scan cannot see volatile trims
// (the page still holds the old data), so rebuilt state resurrects them.
// Real FTLs journal trims; this simulator surfaces the effect honestly.
func TestRebuildAfterTrims(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	now, err := f.Write(7, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Trim(7, now); err != nil {
		t.Fatal(err)
	}
	rep, err := f.RebuildMapping(now)
	if err != nil {
		t.Fatal(err)
	}
	// The trim was volatile: the scan finds the page again.
	if rep.Mismatches != 1 {
		t.Errorf("expected exactly the trimmed LPN to mismatch, got %d", rep.Mismatches)
	}
	if _, ok := f.Map.Lookup(7); !ok {
		t.Error("scan did not resurrect the physically present page")
	}
}

// TestRebuildTimingScales: the scan pays one read per programmed page, chips
// in parallel.
func TestRebuildTimingScales(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	g := f.Dev.Geometry()
	now := sim.Time(0)
	var err error
	const n = 64
	for i := 0; i < n; i++ {
		now, err = f.Write(ftl.LPN(i), now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
	}
	rep, err := f.RebuildMapping(now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesScanned < n {
		t.Errorf("scanned %d pages for %d writes", rep.PagesScanned, n)
	}
	tm := f.Dev.Timing()
	perChipPages := rep.PagesScanned / g.Chips()
	lower := sim.Time(perChipPages) * tm.Read
	if rep.Duration() < lower/2 {
		t.Errorf("scan duration %v implausibly fast for %d pages/chip", rep.Duration(), perChipPages)
	}
}
