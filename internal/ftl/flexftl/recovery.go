package flexftl

import (
	"errors"
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/parity"
	"flexftl/internal/sim"
)

// RecoveryReport summarizes a reboot-time error recovery pass (Section 3.3,
// Figure 7(b)).
type RecoveryReport struct {
	// PagesRead counts the LSB page reads of the scan (active slow blocks
	// and active fast blocks) plus parity page reads.
	PagesRead int
	// Recovered lists the LPNs whose LSB data was reconstructed from the
	// per-block parity page.
	Recovered []ftl.LPN
	// Dropped lists the LPNs of interrupted MSB programs: those writes were
	// never acknowledged to the host, so their data is (correctly) lost.
	Dropped []ftl.LPN
	// Start and End delimit the recovery pass in virtual time. Chips scan
	// in parallel; End-Start is the reboot-time overhead the paper bounds
	// at ~82 ms of page reads.
	Start, End sim.Time
}

// Duration returns the recovery pass's elapsed virtual time.
func (r RecoveryReport) Duration() sim.Time { return r.End - r.Start }

// Recover runs the reboot-time procedure after a sudden power-off: for every
// active slow block it re-reads all LSB pages while recomputing the
// accumulated parity; an ECC-uncorrectable page is reconstructed from the
// saved per-block parity page and re-written; the partially accumulated
// parity of every active fast block is recomputed as well.
func (f *FTL) Recover(now sim.Time) (RecoveryReport, error) {
	rep := RecoveryReport{Start: now}
	end := now
	for chip := range f.chips {
		chipEnd, err := f.recoverChip(chip, now, &rep)
		if err != nil {
			return rep, err
		}
		if chipEnd > end {
			end = chipEnd
		}
	}
	rep.End = end
	return rep, nil
}

func (f *FTL) recoverChip(chip int, now sim.Time, rep *RecoveryReport) (sim.Time, error) {
	st := &f.chips[chip]
	g := f.Dev.Geometry()
	wl := g.WordLinesPerBlock

	// 1. Drop the interrupted MSB write, if any: its program never
	// completed, so the host was never acknowledged.
	if st.sbq.Len() > 0 && st.asbPos > 0 {
		blk := st.sbq.Front()
		msbAddr := nand.PageAddr{
			BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
			Page:      core.Page{WL: st.asbPos - 1, Type: core.MSB},
		}
		if f.Dev.IsCorrupted(msbAddr) {
			if lpn, ok := f.Map.LPNAt(g.PPNOf(msbAddr)); ok {
				f.Map.Invalidate(lpn)
				rep.Dropped = append(rep.Dropped, lpn)
			}
		}
	}

	// 2. Scan the active slow block: read every LSB page, recomputing the
	// accumulated parity; reconstruct at most one lost page.
	if st.sbq.Len() > 0 {
		blk := st.sbq.Front()
		var survivors [][]byte
		lostWL := -1
		for k := 0; k < wl; k++ {
			addr := nand.PageAddr{
				BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
				Page:      core.Page{WL: k, Type: core.LSB},
			}
			data, _, t, err := f.Dev.Read(addr, now)
			rep.PagesRead++
			now = t
			switch {
			case err == nil:
				survivors = append(survivors, data)
			case errors.Is(err, nand.ErrUncorrectable):
				if lostWL != -1 {
					return now, fmt.Errorf("flexftl: chip %d block %d lost two LSB pages (%d and %d); parity covers one", chip, blk, lostWL, k)
				}
				lostWL = k
			default:
				return now, fmt.Errorf("flexftl: recovery read %v: %w", addr, err)
			}
		}
		if lostWL != -1 {
			var err error
			now, err = f.reconstructLSB(chip, blk, lostWL, survivors, now, rep)
			if err != nil {
				return now, err
			}
		}
	}

	// 3. Recompute the partial parity accumulation of the active fast block.
	if st.afb != -1 && st.afbPos > 0 {
		st.pbuf.Reset()
		for k := 0; k < st.afbPos; k++ {
			addr := nand.PageAddr{
				BlockAddr: nand.BlockAddr{Chip: chip, Block: st.afb},
				Page:      core.Page{WL: k, Type: core.LSB},
			}
			t, err := f.Dev.ReadInto(addr, &f.Buf, now)
			rep.PagesRead++
			now = t
			if err != nil {
				return now, fmt.Errorf("flexftl: fast-block rescan %v: %w", addr, err)
			}
			if err := st.pbuf.Add(f.Buf.Data); err != nil {
				return now, err
			}
		}
	}
	return now, nil
}

// reconstructLSB rebuilds the lost LSB page from the saved parity page and
// the surviving LSB pages, then re-writes the data if it was still valid.
func (f *FTL) reconstructLSB(chip, blk, lostWL int, survivors [][]byte, now sim.Time, rep *RecoveryReport) (sim.Time, error) {
	g := f.Dev.Geometry()
	var parityPage []byte
	flat := f.Map.FlatBlock(nand.BlockAddr{Chip: chip, Block: blk})
	if ref, ok := f.refs[flat]; ok {
		// Fast path: the in-memory ref locates the parity page directly.
		parityAddr := nand.PageAddr{
			BlockAddr: nand.BlockAddr{Chip: chip, Block: ref.backupBlk},
			Page:      core.Page{WL: ref.page, Type: core.LSB},
		}
		t, err := f.Dev.ReadInto(parityAddr, &f.Buf, now)
		rep.PagesRead++
		now = t
		if err != nil {
			return now, fmt.Errorf("flexftl: reading parity page %v: %w", parityAddr, err)
		}
		if got, ok := blockFromSpare(f.Buf.Spare); !ok || got != blk {
			return now, fmt.Errorf("flexftl: parity page %v inverse-maps to block %v, want %d", parityAddr, got, blk)
		}
		parityPage = f.Buf.Data
	} else {
		// Metadata-loss path: the per-block ref table did not survive the
		// reboot, so locate the parity page the way the paper's inverse
		// mapping intends — scan the chip's backup blocks and match the
		// protected-block number in each parity page's spare area. The
		// newest match wins (block numbers recur across generations).
		var err error
		parityPage, now, err = f.scanForParity(chip, blk, now, rep)
		if err != nil {
			return now, err
		}
	}
	if len(parityPage) > ftl.TokenSize {
		parityPage = parityPage[:ftl.TokenSize]
	}
	recovered, err := parity.Recover(parityPage, survivors)
	if err != nil {
		return now, err
	}

	// If the lost page held live data, re-home it; the recovered token
	// carries its LPN.
	lostAddr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
		Page:      core.Page{WL: lostWL, Type: core.LSB},
	}
	lpn, live := f.Map.LPNAt(g.PPNOf(lostAddr))
	if !live {
		return now, nil // stale page: parity recomputation is all we needed
	}
	if tokLPN, ok := ftl.TokenLPN(recovered); !ok || tokLPN != lpn {
		return now, fmt.Errorf("flexftl: recovered payload LPN %v does not match mapping %v", tokLPN, lpn)
	}
	now, err = f.programAs(chip, true, lpn, recovered, ftl.SpareForLPN(lpn), now, false)
	if err != nil {
		return now, fmt.Errorf("flexftl: re-homing recovered LPN %d: %w", lpn, err)
	}
	rep.Recovered = append(rep.Recovered, lpn)
	return now, nil
}

// scanForParity walks the chip's backup blocks in write order — the retired
// ring first, then the current block's written prefix — reading each parity
// page's spare area and keeping the newest page whose inverse mapping names
// the protected block. Only the backup-block list itself (a tiny superblock
// structure any FTL persists) is assumed to survive the reboot.
func (f *FTL) scanForParity(chip, protectedBlk int, now sim.Time, rep *RecoveryReport) ([]byte, sim.Time, error) {
	bk := &f.chips[chip].backup
	w := f.Dev.Geometry().WordLinesPerBlock
	type candidate struct {
		blk   int
		pages int
	}
	var scan []candidate
	for _, blk := range bk.retired {
		scan = append(scan, candidate{blk, w})
	}
	if bk.cur != -1 {
		scan = append(scan, candidate{bk.cur, bk.pos})
	}
	var found []byte
	for _, c := range scan {
		for p := 0; p < c.pages; p++ {
			addr := nand.PageAddr{
				BlockAddr: nand.BlockAddr{Chip: chip, Block: c.blk},
				Page:      core.Page{WL: p, Type: core.LSB},
			}
			page, spare, t, err := f.Dev.Read(addr, now)
			rep.PagesRead++
			now = t
			if err != nil {
				continue // unreadable backup page: keep scanning
			}
			if got, ok := blockFromSpare(spare); ok && got == protectedBlk {
				found = page // later matches supersede earlier ones
			}
		}
	}
	if found == nil {
		return nil, now, fmt.Errorf("flexftl: no parity page for block %d found on chip %d's backup blocks", protectedBlk, chip)
	}
	return found, now, nil
}

// ForgetParityRefs drops the in-memory parity location table, simulating a
// reboot that lost runtime metadata; subsequent recoveries must locate
// parity pages by scanning backup-block spare areas.
func (f *FTL) ForgetParityRefs() {
	f.refs = make(map[int]parityRef)
}
