package flexftl

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// TestWearOutRetiresBlocksGracefully: with a tiny erase budget, blocks wear
// out mid-run; the FTL must retire them (shrinking capacity) and keep
// serving I/O rather than failing.
func TestWearOutRetiresBlocksGracefully(t *testing.T) {
	dev, err := nand.NewDevice(nand.Config{
		Geometry:    nand.TestGeometry(),
		Timing:      nand.DefaultTiming(),
		Rules:       core.RPS,
		EraseBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, ftl.DefaultConfig(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(91)
	logical := f.LogicalPages()
	z := rng.NewZipf(src, int(logical), 0.95)
	now := sim.Time(0)
	wrote := int64(0)
	for i := int64(0); i < 6*logical; i++ {
		done, werr := f.Write(ftl.LPN(z.Next()), now, src.Float64())
		if werr != nil {
			// Once enough capacity has retired, running out of space is a
			// legitimate end state — but only after real progress and with
			// retirements recorded.
			break
		}
		wrote++
		now = done
		if i%555 == 554 {
			f.Idle(now, now+200*sim.Millisecond)
			now += 200 * sim.Millisecond
		}
	}
	st := f.Stats()
	if st.RetiredBlocks == 0 {
		t.Fatalf("no blocks retired despite erase budget 4 (erases %d)", st.Erases)
	}
	if wrote < logical {
		t.Errorf("FTL failed after only %d writes (logical %d)", wrote, logical)
	}
	// Retired blocks must not be double-counted as free: pools plus named
	// holders plus retirements cover the device.
	g := dev.Geometry()
	var accounted int64
	for chip := 0; chip < g.Chips(); chip++ {
		accounted += int64(f.Pools[chip].FreeCount() + f.Pools[chip].FullCount())
		if f.ActiveFastBlock(chip) != -1 {
			accounted++
		}
		accounted += int64(f.SlowQueueLen(chip))
		if f.BackupCurrentBlock(chip) != -1 {
			accounted++
		}
		accounted += int64(f.RetiredBackupBlocks(chip))
	}
	if f.Base.BackgroundVictimActive() {
		accounted++
	}
	total := int64(g.TotalBlocks())
	if accounted+st.RetiredBlocks != total {
		t.Errorf("block accounting: %d live + %d retired != %d total",
			accounted, st.RetiredBlocks, total)
	}
}
