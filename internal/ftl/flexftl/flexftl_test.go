package flexftl

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/ftltest"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

func fixture(t testing.TB) ftltest.Fixture {
	f := newFlex(t, nand.TestGeometry())
	return ftltest.Fixture{F: f, B: f.Base}
}

func newFlex(t testing.TB, g nand.Geometry) *FTL {
	t.Helper()
	dev, err := nand.NewDevice(nand.Config{
		Geometry: g,
		Timing:   nand.DefaultTiming(),
		Rules:    core.RPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, ftl.DefaultConfig(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConformance(t *testing.T) {
	ftltest.Run(t, fixture)
}

func TestName(t *testing.T) {
	if fixture(t).F.Name() != "flexFTL" {
		t.Error("name wrong")
	}
}

func TestRejectsFPSDevice(t *testing.T) {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: core.FPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, ftl.DefaultConfig(), DefaultParams()); err == nil {
		t.Error("flexFTL accepted an FPS-only device")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{UHigh: 0.5, ULow: 0.8, QuotaFraction: 0.05}, // inverted
		{UHigh: 1.5, ULow: 0.1, QuotaFraction: 0.05},
		{UHigh: 0.8, ULow: -0.1, QuotaFraction: 0.05},
		{UHigh: 0.8, ULow: 0.1, QuotaFraction: 0},
		{UHigh: 0.8, ULow: 0.1, QuotaFraction: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Error(err)
	}
}

// TestHighUtilServedWithLSB: under sustained high buffer utilization and a
// healthy quota, writes land on fast LSB pages — the peak-bandwidth path.
func TestHighUtilServedWithLSB(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	now := sim.Time(0)
	// While the quota lasts, every high-utilization write must land on a
	// fast LSB page.
	n := int(f.InitialQuota())
	for i := 0; i < n; i++ {
		done, err := f.Write(ftl.LPN(i), now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := f.Stats()
	if st.HostWritesLSB != int64(n) {
		t.Errorf("high-util writes used %d LSB of %d", st.HostWritesLSB, n)
	}
	if f.Quota() != 0 {
		t.Errorf("quota = %d after spending exactly q0 LSB writes, want 0", f.Quota())
	}
}

// TestLowUtilServedWithMSB: with a sleepy buffer the policy spends slow MSB
// pages (once slow blocks exist).
func TestLowUtilServedWithMSB(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	g := f.Dev.Geometry()
	now := sim.Time(0)
	// Phase 1: force fast-block completions so slow blocks exist everywhere.
	primeWrites := g.Chips() * g.LSBPagesPerBlock()
	for i := 0; i < primeWrites; i++ {
		done, err := f.Write(ftl.LPN(i), now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	for c := 0; c < g.Chips(); c++ {
		if f.SlowQueueLen(c) == 0 {
			t.Fatalf("chip %d has no slow block after priming", c)
		}
	}
	st0 := f.Stats()
	q0 := f.Quota()
	// Phase 2: low utilization — MSB preferred; when a chip's slow queue
	// momentarily drains, the corner case falls back to LSB (footnote 1),
	// which refills the queue. MSB must still dominate, and q must track
	// the type split exactly.
	const n = 100
	for i := 0; i < n; i++ {
		done, err := f.Write(ftl.LPN(primeWrites+i), now, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st1 := f.Stats()
	msb := st1.HostWritesMSB - st0.HostWritesMSB
	lsb := st1.HostWritesLSB - st0.HostWritesLSB
	if msb <= lsb {
		t.Errorf("low-util split %d MSB / %d LSB: MSB must dominate", msb, lsb)
	}
	if f.Quota() != q0+msb-lsb {
		t.Errorf("quota %d, want %d (+1 per MSB, -1 per LSB)", f.Quota(), q0+msb-lsb)
	}
}

// TestMidUtilAlternates: between the thresholds the policy alternates page
// types, the FPS-like fallback mode.
func TestMidUtilAlternates(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	g := f.Dev.Geometry()
	now := sim.Time(0)
	primeWrites := g.Chips() * g.LSBPagesPerBlock()
	for i := 0; i < primeWrites; i++ {
		done, err := f.Write(ftl.LPN(i), now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st0 := f.Stats()
	const n = 200
	for i := 0; i < n; i++ {
		done, err := f.Write(ftl.LPN(primeWrites+i), now, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st1 := f.Stats()
	lsb := st1.HostWritesLSB - st0.HostWritesLSB
	msb := st1.HostWritesMSB - st0.HostWritesMSB
	if lsb != msb {
		t.Errorf("mid-util split %d LSB / %d MSB, want even alternation", lsb, msb)
	}
}

// TestQuotaExhaustionForcesAlternation: with q driven to zero, high-util
// writes fall back to alternation — the anti-cliff mechanism of Section 3.2.
func TestQuotaExhaustionForcesAlternation(t *testing.T) {
	g := nand.TestGeometry()
	dev, err := nand.NewDevice(nand.Config{Geometry: g, Timing: nand.DefaultTiming(), Rules: core.RPS})
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.QuotaFraction = 0.001 // tiny quota: q0 = 1
	f, err := New(dev, ftl.DefaultConfig(), params)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	// Prime slow blocks so MSB writes are possible.
	primeWrites := g.Chips() * g.LSBPagesPerBlock()
	for i := 0; i < primeWrites; i++ {
		done, werr := f.Write(ftl.LPN(i), now, 0.95)
		if werr != nil {
			t.Fatal(werr)
		}
		now = done
	}
	if f.Quota() > 0 {
		t.Fatalf("quota %d still positive after priming", f.Quota())
	}
	st0 := f.Stats()
	const n = 100
	for i := 0; i < n; i++ {
		done, werr := f.Write(ftl.LPN(primeWrites+i), now, 0.95)
		if werr != nil {
			t.Fatal(werr)
		}
		now = done
	}
	st1 := f.Stats()
	lsb := st1.HostWritesLSB - st0.HostWritesLSB
	msb := st1.HostWritesMSB - st0.HostWritesMSB
	// Alternation toggles per chip; with round-robin placement the global
	// split can be off by at most one per chip (plus corner-case
	// fallbacks when a slow queue momentarily drains).
	if diff := lsb - msb; diff < -8 || diff > 8 {
		t.Errorf("post-quota split %d LSB / %d MSB, want near-even alternation", lsb, msb)
	}
	if lsb == 0 || msb == 0 {
		t.Errorf("post-quota writes one-sided: %d LSB / %d MSB", lsb, msb)
	}
}

// TestTwoPhaseOrdering: every block the device sees is programmed in the
// RPSfull (2PO) order — verified indirectly by the RPS device accepting all
// programs, and directly by sampling block states: a block with any MSB
// written must have all LSBs written.
func TestTwoPhaseOrdering(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	src := rng.New(21)
	g := f.Dev.Geometry()
	logical := f.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 2*logical; i++ {
		done, err := f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	checked := 0
	for chip := 0; chip < g.Chips(); chip++ {
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			snap := f.Dev.BlockStateSnapshot(nand.BlockAddr{Chip: chip, Block: blk})
			anyMSB := false
			for wl := 0; wl < g.WordLinesPerBlock; wl++ {
				if snap.Written(core.Page{WL: wl, Type: core.MSB}) {
					anyMSB = true
					break
				}
			}
			if !anyMSB {
				continue
			}
			checked++
			for wl := 0; wl < g.WordLinesPerBlock; wl++ {
				if !snap.Written(core.Page{WL: wl, Type: core.LSB}) {
					t.Fatalf("block %d/%d violates 2PO: MSB written but LSB(%d) missing", chip, blk, wl)
				}
			}
		}
	}
	if checked == 0 {
		t.Error("no block reached the MSB phase; workload too small")
	}
}

// TestPerBlockParityRatio: exactly one backup (parity) write per completed
// fast block — W LSB pages share one parity page, versus parityFTL's W/2
// parity pages.
func TestPerBlockParityRatio(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	src := rng.New(31)
	g := f.Dev.Geometry()
	logical := f.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 3*logical; i++ {
		done, err := f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := f.Stats()
	lsbPrograms := st.HostWritesLSB + st.GCCopiesLSB
	completedFastBlocks := lsbPrograms / int64(g.LSBPagesPerBlock())
	if st.BackupWrites == 0 {
		t.Fatal("no parity backups written")
	}
	// One parity per completed fast block (+/- blocks still filling).
	if st.BackupWrites > completedFastBlocks+int64(g.Chips()) ||
		st.BackupWrites < completedFastBlocks-int64(g.Chips()) {
		t.Errorf("backup writes %d vs completed fast blocks %d", st.BackupWrites, completedFastBlocks)
	}
	// The headline claim: backup overhead per LSB page is 1/W, an order of
	// magnitude below parityFTL's 1/2.
	perLSB := float64(st.BackupWrites) / float64(lsbPrograms)
	want := 1.0 / float64(g.LSBPagesPerBlock())
	if perLSB > want*1.5 {
		t.Errorf("parity overhead %.4f per LSB page, want ~%.4f", perLSB, want)
	}
}

// TestBackupBlocksRecycled: parity backup blocks must be erased and freed
// once all their parities go stale; a long run must not leak them.
func TestBackupBlocksRecycled(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	src := rng.New(41)
	logical := f.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 6*logical; i++ {
		done, err := f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	for c := 0; c < f.Device().Geometry().Chips(); c++ {
		// Retired blocks awaiting recycling are bounded by the slow queue
		// depth (their live parities) plus one in-flight.
		if retired := f.RetiredBackupBlocks(c); retired > f.SlowQueueLen(c)+1 {
			t.Errorf("chip %d: %d retired backup blocks for %d queued slow blocks",
				c, retired, f.SlowQueueLen(c))
		}
	}
}

// TestIdleGCRaisesQuota: background GC copies via MSB pages, so an idle
// window under space pressure must raise q.
func TestIdleGCRaisesQuota(t *testing.T) {
	// A large quota keeps high-utilization traffic on LSB pages, so slow
	// blocks pile up in the queue and space pressure builds — the state in
	// which background GC should consume MSB pages and raise q.
	g := nand.TestGeometry()
	dev, err := nand.NewDevice(nand.Config{Geometry: g, Timing: nand.DefaultTiming(), Rules: core.RPS})
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.QuotaFraction = 0.5
	f, err := New(dev, ftl.DefaultConfig(), params)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(51)
	logical := f.LogicalPages()
	z := rng.NewZipf(src, int(logical), 0.9)
	now := sim.Time(0)
	for i := int64(0); i < 2*logical; i++ {
		done, werr := f.Write(ftl.LPN(z.Next()), now, 0.95)
		if werr != nil {
			t.Fatal(werr)
		}
		now = done
	}
	if !f.BelowGCThreshold() {
		t.Skip("workload did not create space pressure")
	}
	slow := 0
	for c := 0; c < g.Chips(); c++ {
		slow += f.SlowQueueLen(c)
	}
	if slow == 0 {
		t.Skip("no slow blocks queued; nothing for BGC to consume")
	}
	q0 := f.Quota()
	st0 := f.Stats()
	free0 := f.TotalFreeBlocks()
	f.Idle(now, now+60*sim.Second)
	st1 := f.Stats()
	dMSB := st1.GCCopiesMSB - st0.GCCopiesMSB
	dLSB := st1.GCCopiesLSB - st0.GCCopiesLSB
	if st1.BackgroundGCs == st0.BackgroundGCs {
		t.Fatal("no background GC invocations recorded")
	}
	if dMSB+dLSB == 0 {
		t.Fatal("background GC relocated nothing")
	}
	// Accounting invariant: q moves by exactly the background copy balance,
	// clamped at the initial budget.
	if got, lo, hi := f.Quota(), q0-dLSB, q0+dMSB; int64(got) < lo || int64(got) > hi {
		t.Errorf("quota %d outside accounting bounds [%d,%d]", got, lo, hi)
	}
	if f.Quota() > f.InitialQuota() {
		t.Errorf("quota %d exceeded its budget %d", f.Quota(), f.InitialQuota())
	}
	// And the reclaim freed space for future fast blocks.
	if f.TotalFreeBlocks() <= free0 {
		t.Errorf("background GC freed no blocks: %d -> %d", free0, f.TotalFreeBlocks())
	}
}
