package flexftl

import (
	"encoding/binary"
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

// programAs writes one page of the requested type on the chip, falling back
// to the other type when the requested one is infeasible, and maintaining
// the 2PO block life cycle of Figure 6.
func (f *FTL) programAs(chip int, useLSB bool, lpn ftl.LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	st := &f.chips[chip]
	if useLSB {
		// Opening a new fast block must leave at least one free block for
		// the parity-backup writer; redirect to a slow page otherwise.
		if st.afb == -1 && f.Pools[chip].FreeCount() <= 1 {
			useLSB = false
		}
	}
	if !useLSB && st.sbq.Len() == 0 {
		useLSB = true // no slow block exists (footnote 1)
	}
	if useLSB {
		return f.programLSB(chip, lpn, data, spare, now, fromGC)
	}
	return f.programMSB(chip, lpn, data, spare, now, fromGC)
}

// programLSB writes the next LSB page of the active fast block.
func (f *FTL) programLSB(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	st := &f.chips[chip]
	if st.afb == -1 {
		blk, ok := f.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("flexftl: chip %d out of free blocks for a fast block", chip)
		}
		st.afb, st.afbPos = blk, 0
		st.pbuf.Reset()
		f.Obs.Instant(obs.KindBlockFast, int32(chip), now, int64(blk), int64(f.Pools[chip].FreeCount()))
	}
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: st.afb},
		Page:      core.Page{WL: st.afbPos, Type: core.LSB},
	}
	done, err := f.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	f.Map.Update(lpn, f.Dev.Geometry().PPNOf(addr))
	if err := st.pbuf.Add(data); err != nil {
		return done, err
	}
	if fromGC {
		f.St.GCCopiesLSB++
	} else {
		f.St.HostWritesLSB++
	}
	// q tracks the LSB budget: host writes always move it; GC relocations
	// only when running in background (Section 3.2 credits q increases to
	// the *background* collector).
	if !fromGC || f.inBGC {
		f.q--
	}
	st.afbPos++
	if st.afbPos == f.Dev.Geometry().WordLinesPerBlock {
		// Fast block complete: queue it as a slow block first so the block
		// pool state stays consistent even if the parity write fails, then
		// persist its parity page (Figure 7(a)).
		full := st.afb
		f.psnap = st.pbuf.SnapshotInto(f.psnap)
		snapshot := f.psnap
		st.pbuf.Reset()
		st.sbq.Push(full)
		st.afb = -1
		f.Obs.Instant(obs.KindBlockQueued, int32(chip), now, int64(full), int64(st.sbq.Len()))
		done, err = f.writeBlockParity(chip, full, snapshot, done)
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// programMSB writes the next MSB page of the active slow block (the head of
// the slow block queue).
func (f *FTL) programMSB(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	st := &f.chips[chip]
	if st.sbq.Len() == 0 {
		return now, fmt.Errorf("flexftl: chip %d has no slow block for an MSB write", chip)
	}
	blk := st.sbq.Front()
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
		Page:      core.Page{WL: st.asbPos, Type: core.MSB},
	}
	done, err := f.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	// Deliberately no AckProgram here: the paired LSB page is protected by
	// the block's parity page, and the recovery procedure (recovery.go)
	// reconstructs it after a power cut. This is the point of the design —
	// no per-MSB backup writes.
	f.Map.Update(lpn, f.Dev.Geometry().PPNOf(addr))
	if fromGC {
		f.St.GCCopiesMSB++
	} else {
		f.St.HostWritesMSB++
	}
	// q is a quota: writes and background-GC copies replenish it, but never
	// beyond its initial budget — otherwise long idle phases would bank an
	// unbounded LSB surplus, and the blocks created by that surplus carry
	// GC-filled (cold, long-valid) MSB halves that put a floor under every
	// future victim's valid count.
	if (!fromGC || f.inBGC) && f.q < f.q0 {
		f.q++
	}
	st.asbPos++
	if st.asbPos == f.Dev.Geometry().WordLinesPerBlock {
		// Slow block complete: its parity backup is no longer needed.
		f.invalidateParity(chip, blk)
		f.Dev.AckProgram(addr.BlockAddr)
		f.Pools[chip].PushFull(blk)
		st.sbq.PopFront()
		st.asbPos = 0
		f.Obs.Instant(obs.KindBlockFull, int32(chip), now, int64(blk), int64(st.sbq.Len()))
	}
	return done, nil
}

// spareForBlock encodes the inverse mapping (backup page -> protected block)
// stored in the parity page's spare area.
func spareForBlock(blk int) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(blk))
	return buf
}

// blockFromSpare decodes spareForBlock.
func blockFromSpare(spare []byte) (int, bool) {
	if len(spare) < 8 {
		return -1, false
	}
	return int(binary.LittleEndian.Uint64(spare[:8])), true
}

// writeBlockParity programs the accumulated parity page of a completed fast
// block into the chip's backup block, on an LSB page, with the protected
// block's number in the spare area (Figure 7(a)).
func (f *FTL) writeBlockParity(chip, fastBlk int, parityPage []byte, now sim.Time) (sim.Time, error) {
	st := &f.chips[chip]
	bk := &st.backup
	if bk.cur == -1 {
		blk, ok := f.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("flexftl: chip %d has no free block for parity backups", chip)
		}
		bk.cur, bk.pos = blk, 0
	}
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: bk.cur},
		Page:      core.Page{WL: bk.pos, Type: core.LSB},
	}
	done, err := f.Dev.Program(addr, parityPage, spareForBlock(fastBlk), now)
	if err != nil {
		return now, err
	}
	f.St.BackupWrites++
	f.Obs.Instant(obs.KindBackup, int32(chip), now, int64(fastBlk), int64(bk.cur))
	f.refs[f.Map.FlatBlock(nand.BlockAddr{Chip: chip, Block: fastBlk})] = parityRef{
		backupBlk: bk.cur,
		page:      bk.pos,
	}
	bk.live[bk.cur]++
	bk.pos++
	if bk.pos == f.Dev.Geometry().WordLinesPerBlock {
		// All LSB pages of the backup block used: retire it. It is erased
		// once every parity in it is invalidated.
		bk.retired = append(bk.retired, bk.cur)
		bk.cur = -1
	}
	return done, nil
}

// invalidateParity marks the parity page of a completed slow block stale and
// recycles retired backup blocks that no longer protect anything. Recycling
// happens lazily at the next opportunity the chip timeline offers (the
// caller's `now` is not extended — erase cost is charged through EraseAndFree
// at the completion time of the MSB program that freed it).
func (f *FTL) invalidateParity(chip, blk int) {
	st := &f.chips[chip]
	flat := f.Map.FlatBlock(nand.BlockAddr{Chip: chip, Block: blk})
	ref, ok := f.refs[flat]
	if !ok {
		return
	}
	delete(f.refs, flat)
	st.backup.live[ref.backupBlk]--
	f.recycleRetiredBackups(chip)
}

// recycleRetiredBackups erases retired backup blocks whose parities are all
// stale. The erase is queued on the chip timeline at time 0 semantics: we
// charge it via the device, which serializes it after whatever the chip is
// doing.
func (f *FTL) recycleRetiredBackups(chip int) {
	st := &f.chips[chip]
	kept := st.backup.retired[:0]
	for _, blk := range st.backup.retired {
		if st.backup.live[blk] == 0 {
			delete(st.backup.live, blk)
			// Device serializes the erase after current chip work.
			if _, err := f.EraseAndFree(chip, blk, f.Dev.ChipReadyAt(chip)); err != nil {
				// An erase failure here means a retired-block accounting
				// bug; surface it loudly in tests.
				panic(fmt.Sprintf("flexftl: recycling backup block %d on chip %d: %v", blk, chip, err))
			}
			continue
		}
		kept = append(kept, blk)
	}
	st.backup.retired = kept
}
