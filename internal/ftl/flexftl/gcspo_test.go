package flexftl

// Regression tests for the recovery-path fixes that ride with the crash
// campaign: rollback of an interrupted GC relocation, fill-bounded scanning
// of retired backup blocks, and the flash-scan rebuild of the parity
// location table.

import (
	"testing"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// churnState drives a seeded steady-state workload: a prefill to most of the
// logical space, then hot overwrites with idle windows small enough that
// background GC regularly stops mid-block, leaving MSB windows open.
type churnState struct {
	f   *FTL
	src *rng.Source
	now sim.Time
}

func newChurn(t *testing.T, seed uint64) *churnState {
	t.Helper()
	c := &churnState{f: newFlex(t, nand.TestGeometry()), src: rng.New(seed)}
	logical := c.f.LogicalPages()
	for p := int64(0); p < logical*3/4; p++ {
		done, err := c.f.Write(ftl.LPN(p), c.now, c.src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		c.now = done
	}
	return c
}

// step runs one churn operation: mostly hot overwrites, with a one-copy idle
// window every few ops so background GC advances in small increments.
func (c *churnState) step(t *testing.T, i int) {
	t.Helper()
	if i%4 == 3 {
		span := ftl.GCPageCopyCost(c.f.Dev.Timing())
		c.f.Idle(c.now, c.now+span)
		c.now += span
		return
	}
	lpn := ftl.LPN(c.src.Int63n(c.f.LogicalPages() / 8))
	done, err := c.f.Write(lpn, c.now, c.src.Float64())
	if err != nil {
		t.Fatal(err)
	}
	c.now = done
}

// TestRecoveryRollsBackInterruptedGCRelocation is the satellite-4 scenario:
// a sudden power-off lands while background GC has an MSB relocation in
// flight. That page's data was acknowledged long ago, so recovery must not
// drop it — the mapping rolls back to the superseded on-chip copy, which the
// device's erase barrier guarantees still exists.
func TestRecoveryRollsBackInterruptedGCRelocation(t *testing.T) {
	c := newChurn(t, 11)
	f, g := c.f, c.f.Dev.Geometry()
	for i := 0; i < 40000; i++ {
		c.step(t, i)
		for chip := 0; chip < g.Chips(); chip++ {
			msbAddr, open := f.Dev.OpenMSBWindow(chip)
			if !open {
				continue
			}
			lpn, prev, fromGC, _, ok := f.LastMSB(chip)
			if !ok || !fromGC || prev == nand.InvalidPPN {
				continue
			}
			if mapped, live := f.Map.LPNAt(g.PPNOf(msbAddr)); !live || mapped != lpn {
				continue
			}
			// Found it: an unacknowledged GC relocation in the destructive
			// window. Cut power.
			if !f.Dev.InjectPowerLoss(msbAddr.BlockAddr) {
				t.Fatal("open window refused injection")
			}
			rep, err := f.Recover(c.now)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			rolledBack := false
			for _, l := range rep.RolledBack {
				if l == lpn {
					rolledBack = true
				}
			}
			if !rolledBack {
				t.Fatalf("LPN %d (interrupted GC relocation) not rolled back; report %+v", lpn, rep)
			}
			for _, l := range rep.Dropped {
				if l == lpn {
					t.Fatalf("LPN %d dropped: acknowledged data lost", lpn)
				}
			}
			// The mapping points at the superseded copy and the data is
			// intact under its own token.
			ppn, mapped := f.Map.Lookup(lpn)
			if !mapped {
				t.Fatalf("LPN %d unmapped after rollback", lpn)
			}
			if ppn != prev {
				// The slow-block scan may re-home a parity-recovered page;
				// anything else must be the superseded copy.
				t.Logf("mapping moved past the superseded copy (re-home): ppn %d, prev %d", ppn, prev)
			}
			data, _, _, err := f.Dev.Read(g.AddrOfPPN(ppn), rep.End)
			if err != nil {
				t.Fatalf("rolled-back copy unreadable: %v", err)
			}
			if tok, ok := ftl.TokenLPN(data); !ok || tok != lpn {
				t.Fatalf("rolled-back copy carries token %v, want %v", tok, lpn)
			}
			if _, err := f.Read(lpn, rep.End); err != nil {
				t.Fatalf("host read of rolled-back LPN: %v", err)
			}
			return
		}
	}
	t.Fatal("no GC relocation was ever caught in the destructive window; churn does not exercise background GC")
}

// TestRebuildParityRefsScansOnlyFills pins the satellite-3 fix: retired
// backup blocks record how far they were written, and the flash scan reads
// exactly that many pages — scanning at full word-line width would charge
// phantom reads of erased pages to the reboot budget. Partial fills come
// from the crash-time seal itself, so the test runs two rebuilds: the first
// seals a partially written backup block, the second proves the scan honors
// the recorded fill.
func TestRebuildParityRefsScansOnlyFills(t *testing.T) {
	c := newChurn(t, 23)
	f, g := c.f, c.f.Dev.Geometry()
	wl := g.WordLinesPerBlock
	// Churn until some chip's current backup block is partially written.
	partial := false
	for i := 0; i < 40000 && !partial; i++ {
		c.step(t, i)
		for chip := 0; chip < g.Chips(); chip++ {
			blk := f.BackupCurrentBlock(chip)
			if blk == -1 {
				continue
			}
			pos := f.Dev.BlockProgrammedPages(nand.BlockAddr{Chip: chip, Block: blk})
			if pos > 0 && pos < wl {
				partial = true
			}
		}
	}
	if !partial {
		t.Fatal("churn never left a backup block partially written")
	}
	f.ForgetParityRefs()
	first, err := f.RebuildParityRefs(c.now)
	if err != nil {
		t.Fatal(err)
	}
	if first.Sealed == 0 {
		t.Fatal("first rebuild sealed nothing despite a partially written backup block")
	}
	for chip := 0; chip < g.Chips(); chip++ {
		if f.BackupCurrentBlock(chip) != -1 {
			t.Errorf("chip %d: current backup block not sealed by the rebuild", chip)
		}
	}

	// Second scan: every backup block is now retired with a recorded fill;
	// the read count must equal the sum of fills, strictly below full width
	// somewhere (the sealed partial block).
	wantReads, fullWidth := 0, 0
	for chip := 0; chip < g.Chips(); chip++ {
		for r := 0; r < f.RetiredBackupBlocks(chip); r++ {
			wantReads += f.RetiredBackupFill(chip, r)
			fullWidth += wl
		}
	}
	if wantReads >= fullWidth {
		t.Fatalf("no partial fill survived sealing (fills %d, full width %d)", wantReads, fullWidth)
	}
	f.ForgetParityRefs()
	second, err := f.RebuildParityRefs(c.now)
	if err != nil {
		t.Fatal(err)
	}
	if second.PagesRead != wantReads {
		t.Fatalf("scan read %d pages, fills sum to %d (full-width scanning?)", second.PagesRead, wantReads)
	}
	// Every block still awaiting its slow phase has its parity ref back.
	for chip := 0; chip < g.Chips(); chip++ {
		for i := 0; i < f.SlowQueueLen(chip); i++ {
			blk := f.SlowQueueBlock(chip, i)
			if _, _, ok := f.ParityRef(chip, blk); !ok {
				t.Errorf("chip %d: slow-queue block %d has no parity ref after rebuild", chip, blk)
			}
		}
	}
}

// TestRebuildParityRefsUnleaksRetiredBlocks pins the leak the rebuild fixes:
// after losing the runtime refs, slow-phase completions can no longer
// decrement backup live counts, so retired backup blocks would sit
// unrecyclable forever. The rebuild recomputes liveness from flash and
// recycles the stale ones, and block accounting balances afterwards.
func TestRebuildParityRefsUnleaksRetiredBlocks(t *testing.T) {
	c := newChurn(t, 37)
	f, g := c.f, c.f.Dev.Geometry()
	// Lose the refs mid-run, then keep churning: slow completions now leak
	// retired backup blocks.
	f.ForgetParityRefs()
	retiredPeak := 0
	for i := 0; i < 30000; i++ {
		c.step(t, i)
		total := 0
		for chip := 0; chip < g.Chips(); chip++ {
			total += f.RetiredBackupBlocks(chip)
		}
		if total > retiredPeak {
			retiredPeak = total
		}
		if retiredPeak >= 2*g.Chips() {
			break // leaked plenty; no need to churn further
		}
	}
	if retiredPeak < g.Chips() {
		t.Skipf("churn only accumulated %d retired backup blocks; leak not provoked", retiredPeak)
	}
	rep, err := f.RebuildParityRefs(c.now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recycled == 0 {
		t.Error("rebuild recycled nothing despite leaked retired backup blocks")
	}
	for chip := 0; chip < g.Chips(); chip++ {
		free, full, active, backup, bg := f.AccountBlocks(chip)
		if got := free + full + active + backup + bg; got != g.BlocksPerChip {
			t.Errorf("chip %d: accounting %d != %d (free %d full %d active %d backup %d bg %d)",
				chip, got, g.BlocksPerChip, free, full, active, backup, bg)
		}
	}
	// The FTL keeps running after the rebuild.
	for i := 0; i < 500; i++ {
		c.step(t, i)
	}
}
