package flexftl

import (
	"flexftl/internal/ftl"
	"flexftl/internal/sim"
)

// gcAlloc relocates one valid page during GC. Per Section 3.2, the
// *background* collector copies valid pages using MSB pages — consuming the
// cheap slow pages and raising the quota q. Foreground collections (inside
// the write path) alternate page types instead: draining the slow queue
// there would force subsequent host writes onto LSB pages and destabilize
// the two-phase balance.
func (f *FTL) gcAlloc(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time) (sim.Time, error) {
	useLSB := false
	switch {
	case f.inBGC:
		useLSB = f.params.BGCCopyLSB // ablation: default false = MSB copies
	default:
		st := &f.chips[chip]
		st.toggle = !st.toggle
		useLSB = st.toggle
	}
	// Relocations take a fresh sequence number so a flash-scan rebuild can
	// always tell the live copy from the not-yet-erased original.
	return f.programAs(chip, useLSB, lpn, f.Token(lpn), spare, now, true)
}

// foregroundGC reclaims blocks inline only when the write path has no
// alternative: MSB writes consume no free blocks, so as long as a slow block
// exists the policy redirects traffic there instead of stalling. Foreground
// collection therefore runs only when LSB capacity is genuinely required
// (no slow block) with a thin pool, or when the pool is at the emergency
// level needed by the parity-backup writer.
func (f *FTL) foregroundGC(chip int, now sim.Time) (sim.Time, error) {
	needsLSB := f.chips[chip].sbq.Len() == 0
	reserve := f.Cfg.MinFreeBlocksPerChip
	for (needsLSB && f.Pools[chip].FreeCount() < reserve+1) ||
		f.Pools[chip].FreeCount() < 2 {
		victim, ok := f.pickVictim(chip)
		if !ok {
			break
		}
		var err error
		now, err = f.CollectVictim(chip, victim, now, f.gcAlloc)
		if err != nil {
			return now, err
		}
		f.St.ForegroundGCs++
	}
	return now, nil
}

// pickVictim wraps the pool's greedy choice.
func (f *FTL) pickVictim(chip int) (int, bool) {
	return f.Pools[chip].PickVictim()
}

// Idle invokes the background garbage collector (Section 3.2): when free
// space is below the threshold, victims are collected incrementally with
// their valid pages copied through MSB pages, reclaiming free (future LSB)
// blocks while increasing q for future bursts. Only these background copies
// move q — foreground GC relocations are excluded, matching the paper's
// "the background garbage collector cannot increase q due to little idle
// times" observation for OLTP/NTRX.
func (f *FTL) Idle(now, until sim.Time) {
	f.inBGC = true
	defer func() { f.inBGC = false }()
	shouldRun := f.BGCWanted
	if f.pred != nil {
		// Section 6 extension: the idle window closes the active period and
		// the collector reclaims until the *predicted* next burst fits in
		// free fast capacity (on top of the base cushion).
		f.pred.PeriodEnd()
		shouldRun = func() bool {
			if f.BGCWanted() {
				return true
			}
			w := f.Dev.Geometry().LSBPagesPerBlock()
			freeLSB := float64(f.TotalFreeBlocks() * w)
			reserve := f.Cfg.GCFreeFraction * float64(f.Dev.Geometry().TotalBlocks()) * float64(w)
			return freeLSB < f.pred.PredictedPages()+reserve
		}
	}
	f.RunBackgroundGC(now, until, shouldRun, f.gcAlloc)
}
