// Package flexftl implements the paper's RPS-aware FTL. It exploits the
// relaxed program sequence (internal/core's RPS rule set) through:
//
//   - Two-phase ordering (2PO): each block is first filled with LSB pages
//     only (a "fast block"), then with MSB pages only (a "slow block") —
//     the RPSfull order of Figure 3(a).
//   - A block pool manager (Figure 6): free pool -> one active fast block
//     per chip -> slow block queue (FIFO) -> one active slow block per chip
//     -> full pool -> GC -> free pool.
//   - Adaptive page allocation (Section 3.2): the policy manager picks LSB
//     or MSB per write from the write-buffer utilization u and the LSB
//     quota q.
//   - Per-block parity backup (Section 3.3): one XOR parity page protects
//     all LSB pages of a block against the destructive MSB program under
//     sudden power-off, written once when the fast block fills.
//   - A background garbage collector that copies valid pages into MSB pages
//     during idle times, reclaiming free LSB pages while raising q.
//
// The scheme is a pure configuration of the ftl kernel: the two-phase order
// policy, per-block parity backup, and the adaptive u/q allocator (see
// ftl.NewFlexFTL); the reboot-time recovery and rebuild procedures live in
// the kernel as well (ftl's recover2po.go). This package exists for
// import-path compatibility and scheme-local tests.
package flexftl

import (
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
)

// Params are the policy-manager knobs of Section 3.2.
type Params = ftl.FlexParams

// DefaultParams mirrors the paper's evaluation settings: uhigh=80%,
// ulow=10%, q0 = 5% of total LSB pages.
func DefaultParams() Params { return ftl.DefaultFlexParams() }

// FTL is the RPS-aware flexFTL.
type FTL = ftl.Kernel

// RecoveryReport summarizes a reboot-time error recovery pass.
type RecoveryReport = ftl.RecoveryReport

// RebuildReport summarizes a full mapping-table reconstruction.
type RebuildReport = ftl.RebuildReport

// New builds a flexFTL over the device. The device must enforce RPS (or be
// unconstrained); a strict-FPS device rejects 2PO programming immediately.
func New(dev *nand.Device, cfg ftl.Config, params Params) (*FTL, error) {
	return ftl.NewFlexFTL(dev, cfg, params)
}
