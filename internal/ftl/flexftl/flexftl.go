// Package flexftl implements the paper's RPS-aware FTL. It exploits the
// relaxed program sequence (internal/core's RPS rule set) through:
//
//   - Two-phase ordering (2PO): each block is first filled with LSB pages
//     only (a "fast block"), then with MSB pages only (a "slow block") —
//     the RPSfull order of Figure 3(a).
//   - A block pool manager (Figure 6): free pool -> one active fast block
//     per chip -> slow block queue (FIFO) -> one active slow block per chip
//     -> full pool -> GC -> free pool.
//   - Adaptive page allocation (Section 3.2): the policy manager picks LSB
//     or MSB per write from the write-buffer utilization u and the LSB
//     quota q.
//   - Per-block parity backup (Section 3.3): one XOR parity page protects
//     all LSB pages of a block against the destructive MSB program under
//     sudden power-off, written once when the fast block fills.
//   - A background garbage collector that copies valid pages into MSB pages
//     during idle times, reclaiming free LSB pages while raising q.
package flexftl

import (
	"fmt"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/parity"
	"flexftl/internal/sim"
)

// Params are the policy-manager knobs of Section 3.2.
type Params struct {
	// UHigh and ULow are the write-buffer utilization thresholds. Above
	// UHigh the policy prefers LSB writes (while q > 0); below ULow it
	// prefers MSB writes; in between it alternates.
	UHigh, ULow float64
	// QuotaFraction sets the initial LSB quota q as a fraction of the
	// device's total LSB pages. The paper uses 5%.
	QuotaFraction float64
	// BGCCopyLSB is an ablation switch: when set, the background garbage
	// collector relocates valid pages through LSB pages instead of MSB
	// pages, forfeiting the quota-replenishing effect of Section 3.2. The
	// ablation benchmarks use it to quantify that design choice.
	BGCCopyLSB bool
	// PredictiveBGC enables the Section 6 extension: an EWMA future-write
	// predictor sizes the background collector's reclaim target so the
	// next burst's predicted volume fits in free fast capacity, instead of
	// stopping at the fixed free-space cushion.
	PredictiveBGC bool
	// PredictorAlpha is the EWMA smoothing factor (default 0.3).
	PredictorAlpha float64
}

// DefaultParams mirrors the paper's evaluation settings: uhigh=80%,
// ulow=10%, q0 = 5% of total LSB pages.
func DefaultParams() Params {
	return Params{UHigh: 0.8, ULow: 0.1, QuotaFraction: 0.05, PredictorAlpha: 0.3}
}

// Validate rejects inconsistent parameters.
func (p Params) Validate() error {
	if p.ULow < 0 || p.UHigh > 1 || p.ULow >= p.UHigh {
		return fmt.Errorf("flexftl: need 0 <= ulow < uhigh <= 1, got %v/%v", p.ULow, p.UHigh)
	}
	if p.QuotaFraction <= 0 || p.QuotaFraction > 1 {
		return fmt.Errorf("flexftl: quota fraction %v outside (0,1]", p.QuotaFraction)
	}
	return nil
}

// parityRef locates the parity backup page protecting a fast block.
type parityRef struct {
	backupBlk int // in-chip block index of the backup block
	page      int // LSB word-line index within the backup block
}

// backupState manages a chip's parity backup blocks: parity pages are
// written to LSB pages only (footnote 2 of the paper — legal under RPS),
// and a backup block is recycled once every parity page in it has been
// invalidated by its slow block completing.
type backupState struct {
	cur     int         // current backup block, -1 when none
	pos     int         // next LSB word line in cur
	live    map[int]int // backup block -> count of still-needed parity pages
	retired []int       // filled backup blocks awaiting live==0
}

// chipState is the per-chip block bookkeeping of the block pool manager.
type chipState struct {
	afb    int            // active fast block, -1 when none
	afbPos int            // next LSB word line of the AFB
	pbuf   *parity.Buffer // accumulated parity of the AFB's LSB pages
	sbq    ftl.IntQueue   // slow block queue; head is the active slow block
	asbPos int            // next MSB word line of the head slow block
	backup backupState
	toggle bool // alternation state for the mid-utilization band
}

// FTL is the RPS-aware flexFTL.
type FTL struct {
	*ftl.Base
	params Params
	chips  []chipState
	q      int64             // LSB quota (global, like the paper's single q)
	q0     int64             // initial quota, for observability
	refs   map[int]parityRef // flat fast-block index -> parity location
	inBGC  bool              // inside a background-GC window (q accounting)
	pred   *writePredictor   // Section 6 extension (nil unless enabled)
	psnap  []byte            // scratch for parity snapshots (Program copies)
}

var _ ftl.FTL = (*FTL)(nil)

// New builds a flexFTL over the device. The device must enforce RPS (or be
// unconstrained); a strict-FPS device rejects 2PO programming immediately.
func New(dev *nand.Device, cfg ftl.Config, params Params) (*FTL, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if dev.Rules().Name() == "FPS" {
		return nil, fmt.Errorf("flexftl: device enforces FPS; flexFTL requires the RPS scheme")
	}
	base, err := ftl.NewBase(dev, cfg)
	if err != nil {
		return nil, err
	}
	g := dev.Geometry()
	f := &FTL{
		Base:   base,
		params: params,
		chips:  make([]chipState, g.Chips()),
		refs:   make(map[int]parityRef),
	}
	totalLSB := int64(g.TotalBlocks()) * int64(g.LSBPagesPerBlock())
	f.q = int64(params.QuotaFraction * float64(totalLSB))
	if f.q < 1 {
		f.q = 1
	}
	f.q0 = f.q
	for c := range f.chips {
		f.chips[c] = chipState{
			afb:    -1,
			pbuf:   parity.New(ftl.TokenSize),
			backup: backupState{cur: -1, live: make(map[int]int)},
		}
	}
	if params.PredictiveBGC {
		alpha := params.PredictorAlpha
		if alpha <= 0 || alpha > 1 {
			alpha = 0.3
		}
		f.pred = newWritePredictor(alpha)
	}
	return f, nil
}

// Name identifies the scheme.
func (f *FTL) Name() string { return "flexFTL" }

// Quota returns the current LSB quota q.
func (f *FTL) Quota() int64 { return f.q }

// InitialQuota returns q's starting value.
func (f *FTL) InitialQuota() int64 { return f.q0 }

// SlowQueueLen returns the slow block queue depth of a chip (tests and
// metrics).
func (f *FTL) SlowQueueLen(chip int) int { return f.chips[chip].sbq.Len() }

// ActiveSlowBlock returns the chip's active slow block (the head of its
// slow block queue), or -1 when the queue is empty.
func (f *FTL) ActiveSlowBlock(chip int) int {
	if f.chips[chip].sbq.Len() == 0 {
		return -1
	}
	return f.chips[chip].sbq.Front()
}

// ActiveSlowProgress returns how many MSB pages of the active slow block
// have been programmed.
func (f *FTL) ActiveSlowProgress(chip int) int { return f.chips[chip].asbPos }

// Write services a host page write. util is the write-buffer utilization the
// policy manager consumes.
func (f *FTL) Write(lpn ftl.LPN, now sim.Time, util float64) (sim.Time, error) {
	chip := f.NextChip()
	var err error
	now, err = f.foregroundGC(chip, now)
	if err != nil {
		return now, err
	}
	useLSB := f.choosePageType(chip, util)
	if f.Obs != nil {
		lsb := int64(0)
		if useLSB {
			lsb = 1
		}
		f.Obs.Instant(obs.KindPolicy, int32(chip), now, lsb, f.q)
	}
	done, err := f.programAs(chip, useLSB, lpn, f.Token(lpn), f.Spare(lpn), now, false)
	if err != nil {
		return now, err
	}
	f.St.HostWrites++
	if f.pred != nil {
		f.pred.ObserveWrite()
	}
	return done, nil
}

// Read services a host page read.
func (f *FTL) Read(lpn ftl.LPN, now sim.Time) (sim.Time, error) {
	return f.ReadLPN(lpn, now)
}

// choosePageType implements the Section 3.2 policy table.
func (f *FTL) choosePageType(chip int, util float64) bool {
	st := &f.chips[chip]
	// Corner case (footnote 1): with no slow block MSB pages do not exist.
	if st.sbq.Len() == 0 {
		return true
	}
	// Drain mode: with no fast capacity left beyond the GC reserve, spend
	// MSB pages — they consume no free blocks, and completing slow blocks
	// feeds the GC candidate list.
	if f.fastBudget(chip) <= 0 {
		return false
	}
	alternate := func() bool {
		st.toggle = !st.toggle
		return st.toggle
	}
	switch {
	case util > f.params.UHigh:
		// Condition [C2] of Section 3.2: successive LSB writes must not
		// degrade future bandwidth. The effective quota is q bounded by
		// the chip's actual fast capacity (remaining AFB pages plus free
		// blocks beyond the GC reserve) — spending past that would force
		// foreground reclaim mid-burst.
		if f.q > 0 {
			return true
		}
		return alternate()
	case util < f.params.ULow:
		return false
	default:
		return alternate()
	}
}

// fastBudget returns how many LSB pages the chip can still serve without
// eating into the GC/backup block reserve.
func (f *FTL) fastBudget(chip int) int {
	st := &f.chips[chip]
	w := f.Dev.Geometry().WordLinesPerBlock
	budget := 0
	if st.afb != -1 {
		budget += w - st.afbPos
	}
	if spare := f.Pools[chip].FreeCount() - f.Cfg.MinFreeBlocksPerChip - 1; spare > 0 {
		budget += spare * w
	}
	return budget
}
