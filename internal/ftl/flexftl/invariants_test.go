package flexftl

import (
	"testing"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// auditBlocks verifies the block-accounting invariant: every block of every
// chip is in exactly one place — free pool, full pool, active fast block,
// slow block queue, backup (current or retired), or the in-flight background
// victim. Leaked blocks are the classic FTL failure mode; this audit runs
// after every heavy scenario.
func auditBlocks(t *testing.T, f *FTL) {
	t.Helper()
	g := f.Dev.Geometry()
	for chip := 0; chip < g.Chips(); chip++ {
		seen := make(map[int]string)
		place := func(blk int, where string) {
			if blk < 0 {
				return
			}
			if prev, dup := seen[blk]; dup {
				t.Fatalf("chip %d block %d in both %s and %s", chip, blk, prev, where)
			}
			seen[blk] = where
		}
		pool := f.Pools[chip]
		// Free and full lists: FreePool gives counts, not contents, so walk
		// by elimination — account for the named holders first.
		place(f.ActiveFastBlock(chip), "active-fast")
		for i := 0; i < f.SlowQueueLen(chip); i++ {
			place(f.SlowQueueBlock(chip, i), "slow-queue")
		}
		place(f.BackupCurrentBlock(chip), "backup-current")
		for _, b := range f.RetiredBackupBlockList(chip) {
			place(b, "backup-retired")
		}
		for _, b := range pool.FullBlocks() {
			place(b, "full")
		}
		if f.Base.BackgroundVictimActive() {
			// Background victim lives off-list; attribute it to its chip.
			// (Base does not expose the chip; infer via duplicate check —
			// the audit only needs no double-placement, and the count check
			// below tolerates one outstanding victim.)
			_ = struct{}{}
		}
		named := len(seen)
		free := pool.FreeCount()
		total := named + free
		// Allow one slack slot for an in-flight background victim.
		if total != g.BlocksPerChip && total != g.BlocksPerChip-1 {
			t.Fatalf("chip %d accounts for %d of %d blocks (named %d + free %d)",
				chip, total, g.BlocksPerChip, named, free)
		}
	}
}

// auditMapping verifies the mapping-table invariant: per-block valid counts
// sum to the mapped-page count, and l2p/p2l are mutually consistent.
func auditMapping(t *testing.T, f *FTL) {
	t.Helper()
	g := f.Dev.Geometry()
	var total int64
	for flat := 0; flat < g.TotalBlocks(); flat++ {
		total += int64(f.Map.ValidCount(f.Map.BlockOfFlat(flat)))
	}
	if total != f.Map.Mapped() {
		t.Fatalf("valid counts sum %d != mapped %d", total, f.Map.Mapped())
	}
	for lpn := ftl.LPN(0); int64(lpn) < f.LogicalPages(); lpn++ {
		if ppn, ok := f.Map.Lookup(lpn); ok {
			back, ok2 := f.Map.LPNAt(ppn)
			if !ok2 || back != lpn {
				t.Fatalf("LPN %d -> PPN %d -> LPN %v inconsistent", lpn, ppn, back)
			}
		}
	}
}

// TestInvariantsUnderHeavyWrites: a GC-saturated run leaves the block pools
// and mapping table fully consistent.
func TestInvariantsUnderHeavyWrites(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	src := rng.New(71)
	logical := f.LogicalPages()
	z := rng.NewZipf(src, int(logical), 0.95)
	now := sim.Time(0)
	var err error
	for i := int64(0); i < 4*logical; i++ {
		now, err = f.Write(ftl.LPN(z.Next()), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		if i%777 == 776 {
			f.Idle(now, now+200*sim.Millisecond)
			now += 200 * sim.Millisecond
		}
	}
	auditBlocks(t, f)
	auditMapping(t, f)
}

// TestInvariantsAfterRecovery: a power cut plus recovery must not corrupt
// the accounting either.
func TestInvariantsAfterRecovery(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	now := primeToMSBPhase(t, f)
	f.Dev.InjectPowerLoss(nand.BlockAddr{Chip: 0, Block: f.ActiveSlowBlock(0)})
	rep, err := f.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	auditBlocks(t, f)
	auditMapping(t, f)
	// Keep writing after recovery and re-audit.
	src := rng.New(73)
	logical := f.LogicalPages()
	now = rep.End
	for i := int64(0); i < logical; i++ {
		now, err = f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
	}
	auditBlocks(t, f)
	auditMapping(t, f)
}

// TestInvariantsWithTrims: heavy trims interleaved with writes.
func TestInvariantsWithTrims(t *testing.T) {
	f := newFlex(t, nand.TestGeometry())
	src := rng.New(79)
	logical := f.LogicalPages()
	now := sim.Time(0)
	var err error
	for i := int64(0); i < 3*logical; i++ {
		lpn := ftl.LPN(src.Int63n(logical))
		if src.Bool(0.2) {
			now, err = f.Trim(lpn, now)
		} else {
			now, err = f.Write(lpn, now, src.Float64())
		}
		if err != nil {
			t.Fatal(err)
		}
		if i%1111 == 1110 {
			f.Idle(now, now+150*sim.Millisecond)
			now += 150 * sim.Millisecond
		}
	}
	auditBlocks(t, f)
	auditMapping(t, f)
}
