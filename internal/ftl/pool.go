package ftl

import "fmt"

// GCPolicy selects the garbage-collection victim heuristic.
type GCPolicy int

const (
	// GCGreedy picks the block with the most invalid pages — the paper's
	// policy ("chooses a victim block with the largest number of invalid
	// pages").
	GCGreedy GCPolicy = iota
	// GCCostBenefit weighs invalid count by block age (time since it
	// became a GC candidate), the classic cost-benefit heuristic: old
	// blocks with moderate garbage beat young blocks still accumulating
	// invalidations. Exposed for ablation against the paper's choice.
	GCCostBenefit
)

// String names the policy.
func (p GCPolicy) String() string {
	if p == GCCostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

const nilLink = int32(-1)

// cbEntry is one cost-benefit heap element.
type cbEntry struct {
	blk   int32
	stamp int64
	score float64
}

// FreePool manages the free and full block lists of one chip. Every FTL
// keeps one per chip; the lists hold in-chip block indices.
//
// The full list is indexed for constant-time victim selection: an intrusive
// FIFO list preserves push order (and with it the deterministic tie-break of
// the original linear scan), and — once Bind attaches a valid-page source —
// every full block also sits on the doubly-linked bucket of its current
// valid count, each bucket kept in push-stamp order. A greedy pick is then
// the head of the lowest non-empty bucket, TakeFull is an O(1) unlink, and
// NoteValidChange re-buckets a block when the mapper invalidates one of its
// pages. Cost-benefit picks peek a lazily rebuilt max-heap over the same
// index.
type FreePool struct {
	chip   int
	Policy GCPolicy
	// Reference routes PickVictim through PickVictimReference — the
	// retained linear scan of the pre-index implementation — so tests and
	// benchmarks can compare the two pickers on identical state.
	Reference bool

	free IntQueue

	clock int64

	// Per-block index, sized to the largest block id seen. All list links
	// are in-chip block ids; nilLink terminates.
	stamp    []int64 // logical age stamp when the block joined the full list
	inFull   []bool
	fifoNext []int32 // global full list in push order (== ascending stamp)
	fifoPrev []int32
	bktNext  []int32 // valid-count bucket, ascending stamp within a bucket
	bktPrev  []int32
	bucketOf []int32 // current bucket, nilLink when unbound or not full
	fifoHead int32
	fifoTail int32
	fullLen  int

	// Binding to the mapper's valid counts (nil until Bind).
	valid         func(blk int) int
	pagesPerBlock int
	bktHead       []int32 // [validCount] — pagesPerBlock+1 buckets
	bktTail       []int32
	minBucket     int // no non-empty bucket below this index

	heap      []cbEntry
	heapDirty bool
}

// NewFreePool starts with every block of the chip free except those the FTL
// reserves (the caller pops reservations itself).
func NewFreePool(chip, blocksPerChip int) *FreePool {
	p := &FreePool{chip: chip, fifoHead: nilLink, fifoTail: nilLink}
	for b := 0; b < blocksPerChip; b++ {
		p.free.Push(b)
	}
	p.ensure(blocksPerChip - 1)
	return p
}

// ensure grows the per-block index to cover block id b.
func (p *FreePool) ensure(b int) {
	for len(p.inFull) <= b {
		p.stamp = append(p.stamp, 0)
		p.inFull = append(p.inFull, false)
		p.fifoNext = append(p.fifoNext, nilLink)
		p.fifoPrev = append(p.fifoPrev, nilLink)
		p.bktNext = append(p.bktNext, nilLink)
		p.bktPrev = append(p.bktPrev, nilLink)
		p.bucketOf = append(p.bucketOf, nilLink)
	}
}

// Bind attaches the pool to a valid-page-count source (the mapper) and
// builds the victim index. pagesPerBlock fixes the bucket range: a block's
// bucket is its current valid count in [0, pagesPerBlock]. The pool does not
// watch the source — the owner must call NoteValidChange whenever a full
// block's count changes (ftl.Base wires this through Mapper.SetValidHook).
func (p *FreePool) Bind(pagesPerBlock int, valid func(blk int) int) {
	if pagesPerBlock <= 0 {
		panic("ftl: Bind with non-positive pagesPerBlock")
	}
	p.pagesPerBlock = pagesPerBlock
	p.valid = valid
	if len(p.bktHead) != pagesPerBlock+1 {
		p.bktHead = make([]int32, pagesPerBlock+1)
		p.bktTail = make([]int32, pagesPerBlock+1)
	}
	p.Reindex()
}

// Reindex rebuilds the bucket index from the current valid counts (after the
// owner swapped in a rebuilt mapper). Full-list membership and stamps are
// untouched.
func (p *FreePool) Reindex() {
	if p.valid == nil {
		return
	}
	for i := range p.bktHead {
		p.bktHead[i], p.bktTail[i] = nilLink, nilLink
	}
	p.minBucket = p.pagesPerBlock
	for b := p.fifoHead; b != nilLink; b = p.fifoNext[b] {
		p.bucketOf[b] = nilLink
		p.bucketAdd(b, p.valid(int(b)))
	}
	p.heapDirty = true
}

// FreeCount returns the number of free blocks.
func (p *FreePool) FreeCount() int { return p.free.Len() }

// FullCount returns the number of full (GC-candidate) blocks.
func (p *FreePool) FullCount() int { return p.fullLen }

// IsFull reports whether b is currently on the full (GC-candidate) list —
// i.e. a victim pick could reclaim it. The epoch planner uses this to track
// planned-but-unexecuted invalidations that would skew a GC pre-run.
func (p *FreePool) IsFull(b int) bool {
	return b >= 0 && b < len(p.inFull) && p.inFull[b]
}

// PopFree takes a free block, or (-1, false) when exhausted.
func (p *FreePool) PopFree() (int, bool) {
	if p.free.Len() == 0 {
		return -1, false
	}
	return p.free.PopFront(), true
}

// PopFreeWorn takes the free block extremizing wear: the most-erased block
// when mostWorn is true (cold-data destinations), the least-erased otherwise
// (hot-data destinations). Ties break toward the FIFO head so the choice is
// deterministic and degrades to PopFree on uniformly worn pools.
func (p *FreePool) PopFreeWorn(eraseCount func(blk int) int, mostWorn bool) (int, bool) {
	n := p.free.Len()
	if n == 0 {
		return -1, false
	}
	best, bestWear := 0, eraseCount(p.free.Front())
	for i := 1; i < n; i++ {
		w := eraseCount(p.free.At(i))
		if (mostWorn && w > bestWear) || (!mostWorn && w < bestWear) {
			best, bestWear = i, w
		}
	}
	return p.free.RemoveAt(best), true
}

// PushFree returns an erased block to the free list.
func (p *FreePool) PushFree(b int) { p.free.Push(b) }

// PushFull records a fully written block as a GC candidate.
func (p *FreePool) PushFull(b int) {
	p.ensure(b)
	if p.inFull[b] {
		panic(fmt.Sprintf("ftl: block %d already on full list of chip %d", b, p.chip))
	}
	p.clock++
	p.stamp[b] = p.clock
	p.inFull[b] = true
	blk := int32(b)
	p.fifoPrev[blk], p.fifoNext[blk] = p.fifoTail, nilLink
	if p.fifoTail != nilLink {
		p.fifoNext[p.fifoTail] = blk
	} else {
		p.fifoHead = blk
	}
	p.fifoTail = blk
	p.fullLen++
	if p.valid != nil {
		p.bucketAdd(blk, p.valid(b))
		p.heapDirty = true
	}
}

// TakeFull removes a specific block from the full list (it was chosen as a
// GC victim). It panics if the block is not there: collecting a block GC
// does not own corrupts the pools.
func (p *FreePool) TakeFull(b int) {
	if b < 0 || b >= len(p.inFull) || !p.inFull[b] {
		panic(fmt.Sprintf("ftl: block %d not in full list of chip %d", b, p.chip))
	}
	blk := int32(b)
	prev, next := p.fifoPrev[blk], p.fifoNext[blk]
	if prev != nilLink {
		p.fifoNext[prev] = next
	} else {
		p.fifoHead = next
	}
	if next != nilLink {
		p.fifoPrev[next] = prev
	} else {
		p.fifoTail = prev
	}
	p.fifoNext[blk], p.fifoPrev[blk] = nilLink, nilLink
	p.inFull[b] = false
	p.fullLen--
	if p.valid != nil {
		p.bucketRemove(blk)
		p.heapDirty = true
	}
}

// NoteValidChange moves a full block to the bucket of its current valid
// count. Calls for blocks not on the full list (active or free blocks whose
// counts move during programming) are ignored.
func (p *FreePool) NoteValidChange(b int) {
	if p.valid == nil || b < 0 || b >= len(p.inFull) || !p.inFull[b] {
		return
	}
	v := p.valid(b)
	if int(p.bucketOf[b]) == v {
		return
	}
	blk := int32(b)
	p.bucketRemove(blk)
	p.bucketAdd(blk, v)
	p.heapDirty = true
}

// bucketAdd links a block into bucket v, keeping the bucket in ascending
// stamp order so the head is always the oldest (FIFO) entry of that valid
// count — the exact tie-break of the reference linear scan. A freshly pushed
// block carries the globally newest stamp and lands at the tail in O(1); a
// re-bucketed block walks back from the tail past any younger entries.
func (p *FreePool) bucketAdd(blk int32, v int) {
	s := p.stamp[blk]
	after := p.bktTail[v]
	for after != nilLink && p.stamp[after] > s {
		after = p.bktPrev[after]
	}
	if after == nilLink {
		next := p.bktHead[v]
		p.bktPrev[blk], p.bktNext[blk] = nilLink, next
		if next != nilLink {
			p.bktPrev[next] = blk
		} else {
			p.bktTail[v] = blk
		}
		p.bktHead[v] = blk
	} else {
		next := p.bktNext[after]
		p.bktNext[after] = blk
		p.bktPrev[blk], p.bktNext[blk] = after, next
		if next != nilLink {
			p.bktPrev[next] = blk
		} else {
			p.bktTail[v] = blk
		}
	}
	p.bucketOf[blk] = int32(v)
	if v < p.minBucket {
		p.minBucket = v
	}
}

func (p *FreePool) bucketRemove(blk int32) {
	v := p.bucketOf[blk]
	if v == nilLink {
		return
	}
	prev, next := p.bktPrev[blk], p.bktNext[blk]
	if prev != nilLink {
		p.bktNext[prev] = next
	} else {
		p.bktHead[v] = next
	}
	if next != nilLink {
		p.bktPrev[next] = prev
	} else {
		p.bktTail[v] = prev
	}
	p.bktNext[blk], p.bktPrev[blk] = nilLink, nilLink
	p.bucketOf[blk] = nilLink
}

// FullBlocks returns the full list in push order (a fresh slice; test and
// debugging helper).
func (p *FreePool) FullBlocks() []int {
	out := make([]int, 0, p.fullLen)
	for b := p.fifoHead; b != nilLink; b = p.fifoNext[b] {
		out = append(out, int(b))
	}
	return out
}

// PickVictim returns the best GC candidate under the pool's policy, or
// (-1, false) when no candidate has at least one invalid page. Ties break
// toward the oldest (FIFO) full-list entry, keeping runs deterministic and
// byte-identical to the reference linear scan. The pool must be bound.
func (p *FreePool) PickVictim() (int, bool) {
	if p.valid == nil {
		panic(fmt.Sprintf("ftl: PickVictim on unbound pool of chip %d (call Bind first)", p.chip))
	}
	if p.Reference {
		return p.PickVictimReference()
	}
	if p.Policy == GCCostBenefit {
		if p.heapDirty {
			p.rebuildHeap()
		}
		if len(p.heap) == 0 {
			return -1, false
		}
		return int(p.heap[0].blk), true
	}
	// Greedy: head of the lowest non-empty bucket. The cursor only moves
	// forward here; inserts pull it back down. Bucket pagesPerBlock (fully
	// valid blocks) is never a candidate.
	for v := p.minBucket; v < p.pagesPerBlock; v++ {
		if h := p.bktHead[v]; h != nilLink {
			p.minBucket = v
			return int(h), true
		}
	}
	p.minBucket = p.pagesPerBlock
	return -1, false
}

// PickVictimReference is the pre-index linear scan over the full list in
// push order, kept verbatim as the determinism oracle for property tests and
// the baseline for the victim-pick scaling benchmark.
func (p *FreePool) PickVictimReference() (int, bool) {
	if p.valid == nil {
		panic(fmt.Sprintf("ftl: PickVictimReference on unbound pool of chip %d (call Bind first)", p.chip))
	}
	best := -1
	bestScore := 0.0
	for b := p.fifoHead; b != nilLink; b = p.fifoNext[b] {
		invalid := p.pagesPerBlock - p.valid(int(b))
		if invalid <= 0 {
			continue
		}
		var score float64
		switch p.Policy {
		case GCCostBenefit:
			score = p.costBenefitScore(invalid, p.stamp[b])
		default:
			score = float64(invalid)
		}
		if score > bestScore {
			best, bestScore = int(b), score
		}
	}
	if best == -1 {
		return -1, false
	}
	return best, true
}

// costBenefitScore is benefit/cost * age: u = valid fraction;
// (1-u)/(1+u) * age. The expression is shared by the reference scan and the
// heap so both compute bit-identical floats.
func (p *FreePool) costBenefitScore(invalid int, stamp int64) float64 {
	u := 1 - float64(invalid)/float64(p.pagesPerBlock)
	age := float64(p.clock - stamp + 1)
	return (1 - u) / (1 + u) * age
}

// rebuildHeap rebuilds the cost-benefit max-heap from the full list. Scores
// depend on the pool clock and on valid counts, both of which only change
// through PushFull / TakeFull / NoteValidChange — each sets heapDirty, so
// between mutations repeated picks peek the root for free.
func (p *FreePool) rebuildHeap() {
	p.heap = p.heap[:0]
	for b := p.fifoHead; b != nilLink; b = p.fifoNext[b] {
		invalid := p.pagesPerBlock - p.valid(int(b))
		if invalid <= 0 {
			continue
		}
		p.heap = append(p.heap, cbEntry{blk: b, stamp: p.stamp[b], score: p.costBenefitScore(invalid, p.stamp[b])})
	}
	for i := len(p.heap)/2 - 1; i >= 0; i-- {
		p.siftDown(i)
	}
	p.heapDirty = false
}

// cbBetter orders heap entries: higher score wins, ties go to the older
// stamp — the same winner the reference scan's strict `>` keeps.
func cbBetter(a, b cbEntry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.stamp < b.stamp
}

func (p *FreePool) siftDown(i int) {
	h := p.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && cbBetter(h[r], h[l]) {
			best = r
		}
		if !cbBetter(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
