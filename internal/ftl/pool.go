package ftl

import (
	"fmt"

	"flexftl/internal/nand"
)

// GCPolicy selects the garbage-collection victim heuristic.
type GCPolicy int

const (
	// GCGreedy picks the block with the most invalid pages — the paper's
	// policy ("chooses a victim block with the largest number of invalid
	// pages").
	GCGreedy GCPolicy = iota
	// GCCostBenefit weighs invalid count by block age (time since it
	// became a GC candidate), the classic cost-benefit heuristic: old
	// blocks with moderate garbage beat young blocks still accumulating
	// invalidations. Exposed for ablation against the paper's choice.
	GCCostBenefit
)

// String names the policy.
func (p GCPolicy) String() string {
	if p == GCCostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// FreePool manages the free and full block lists of one chip. Every FTL
// keeps one per chip; the lists hold in-chip block indices.
type FreePool struct {
	chip   int
	free   []int
	full   []int
	fullAt []int64 // logical age stamp when the block joined the full list
	clock  int64
	Policy GCPolicy
}

// NewFreePool starts with every block of the chip free except those the FTL
// reserves (the caller pops reservations itself).
func NewFreePool(chip, blocksPerChip int) *FreePool {
	p := &FreePool{chip: chip, free: make([]int, 0, blocksPerChip)}
	for b := 0; b < blocksPerChip; b++ {
		p.free = append(p.free, b)
	}
	return p
}

// FreeCount returns the number of free blocks.
func (p *FreePool) FreeCount() int { return len(p.free) }

// FullCount returns the number of full (GC-candidate) blocks.
func (p *FreePool) FullCount() int { return len(p.full) }

// PopFree takes a free block, or (-1, false) when exhausted.
func (p *FreePool) PopFree() (int, bool) {
	if len(p.free) == 0 {
		return -1, false
	}
	b := p.free[0]
	p.free = p.free[1:]
	return b, true
}

// PushFree returns an erased block to the free list.
func (p *FreePool) PushFree(b int) { p.free = append(p.free, b) }

// PushFull records a fully written block as a GC candidate.
func (p *FreePool) PushFull(b int) {
	p.clock++
	p.full = append(p.full, b)
	p.fullAt = append(p.fullAt, p.clock)
}

// TakeFull removes a specific block from the full list (it was chosen as a
// GC victim). It panics if the block is not there: collecting a block GC
// does not own corrupts the pools.
func (p *FreePool) TakeFull(b int) {
	for i, v := range p.full {
		if v == b {
			p.full = append(p.full[:i], p.full[i+1:]...)
			p.fullAt = append(p.fullAt[:i], p.fullAt[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("ftl: block %d not in full list of chip %d", b, p.chip))
}

// FullBlocks returns the full list (caller must not mutate).
func (p *FreePool) FullBlocks() []int { return p.full }

// PickVictim returns the best GC candidate under the pool's policy, or
// (-1, false) when no candidate has at least one invalid page. Ties break
// toward the oldest (FIFO) entry, keeping runs deterministic.
func (p *FreePool) PickVictim(m *Mapper, pagesPerBlock int) (int, bool) {
	best := -1
	bestScore := 0.0
	for i, b := range p.full {
		invalid := pagesPerBlock - m.ValidCount(nand.BlockAddr{Chip: p.chip, Block: b})
		if invalid <= 0 {
			continue
		}
		var score float64
		switch p.Policy {
		case GCCostBenefit:
			// benefit/cost * age: u = valid fraction; (1-u)/(1+u) * age.
			u := 1 - float64(invalid)/float64(pagesPerBlock)
			age := float64(p.clock - p.fullAt[i] + 1)
			score = (1 - u) / (1 + u) * age
		default:
			score = float64(invalid)
		}
		if score > bestScore {
			best, bestScore = b, score
		}
	}
	if best == -1 {
		return -1, false
	}
	return best, true
}
