package ftl

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

func TestWritePredictorEWMA(t *testing.T) {
	p := newWritePredictor(0.5)
	if p.PredictedPages() != 0 {
		t.Error("unprimed predictor predicts nonzero")
	}
	for i := 0; i < 100; i++ {
		p.ObserveWrite()
	}
	p.PeriodEnd()
	if got := p.PredictedPages(); got != 100 {
		t.Errorf("first period prediction = %v, want 100 (prime with first sample)", got)
	}
	for i := 0; i < 200; i++ {
		p.ObserveWrite()
	}
	p.PeriodEnd()
	if got := p.PredictedPages(); got != 150 {
		t.Errorf("prediction = %v, want 150 (alpha 0.5)", got)
	}
	// Empty periods carry no signal.
	p.PeriodEnd()
	if got := p.PredictedPages(); got != 150 {
		t.Errorf("empty period changed prediction to %v", got)
	}
}

func TestWritePredictorConverges(t *testing.T) {
	p := newWritePredictor(0.3)
	for period := 0; period < 50; period++ {
		for i := 0; i < 500; i++ {
			p.ObserveWrite()
		}
		p.PeriodEnd()
	}
	if got := p.PredictedPages(); got < 499 || got > 501 {
		t.Errorf("steady-state prediction = %v, want ~500", got)
	}
}

// TestPredictiveBGCReclaimsDeeper: with the predictor enabled and a bursty
// history, the collector keeps more free fast capacity than the fixed
// cushion alone.
func TestPredictiveBGCReclaimsDeeper(t *testing.T) {
	build := func(predictive bool) *Kernel {
		dev, err := nand.NewDevice(nand.Config{
			Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: core.RPS,
		})
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultFlexParams()
		params.PredictiveBGC = predictive
		f, err := NewFlexFTL(dev, DefaultConfig(), params)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	run := func(f *Kernel) int {
		src := rng.New(5)
		logical := f.LogicalPages()
		z := rng.NewZipf(src, int(logical), 0.9)
		now := sim.Time(0)
		// Bursts of ~400 page writes separated by generous idle windows.
		for burst := 0; burst < 12; burst++ {
			for i := 0; i < 400; i++ {
				done, err := f.Write(LPN(z.Next()), now, 0.9)
				if err != nil {
					t.Fatal(err)
				}
				now = done
			}
			f.Idle(now, now+30*sim.Second)
			now += 30 * sim.Second
		}
		return f.TotalFreeBlocks()
	}
	fixed := run(build(false))
	predictive := run(build(true))
	if predictive < fixed {
		t.Errorf("predictive BGC kept fewer free blocks (%d) than the fixed cushion (%d)",
			predictive, fixed)
	}
}

// TestPredictorDefaultAlphaFallback: invalid alpha falls back to the default
// rather than failing construction.
func TestPredictorDefaultAlphaFallback(t *testing.T) {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: core.RPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultFlexParams()
	params.PredictiveBGC = true
	params.PredictorAlpha = -1
	f, err := NewFlexFTL(dev, DefaultConfig(), params)
	if err != nil {
		t.Fatal(err)
	}
	if f.pred == nil || f.pred.alpha != 0.3 {
		t.Errorf("alpha fallback not applied: %+v", f.pred)
	}
}
