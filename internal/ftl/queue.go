package ftl

// IntQueue is a growable FIFO ring of ints, used for the free-block lists
// and the FTLs' block-phase queues. Push and PopFront are O(1) and reuse the
// backing array; the previous `s = s[1:]` idiom pinned the slice head, so
// every Push after a pop grew the backing array forever.
type IntQueue struct {
	buf  []int
	head int
	n    int
}

// Len returns the number of queued values.
func (q *IntQueue) Len() int { return q.n }

// Front returns the oldest value without removing it.
func (q *IntQueue) Front() int { return q.At(0) }

// At returns the i-th value from the front (0 = oldest).
func (q *IntQueue) At(i int) int {
	if i < 0 || i >= q.n {
		panic("ftl: IntQueue index out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// Push appends a value at the back.
func (q *IntQueue) Push(v int) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// PopFront removes and returns the oldest value.
func (q *IntQueue) PopFront() int {
	if q.n == 0 {
		panic("ftl: PopFront of empty IntQueue")
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if q.n == 0 {
		q.head = 0
	}
	return v
}

// RemoveAt removes and returns the i-th value from the front, shifting the
// values behind it forward. O(n-i); the free lists that use it stay short and
// the wear-aware placement that needs it already scanned the queue anyway.
func (q *IntQueue) RemoveAt(i int) int {
	v := q.At(i) // bounds-checked
	for j := i; j < q.n-1; j++ {
		q.buf[(q.head+j)%len(q.buf)] = q.buf[(q.head+j+1)%len(q.buf)]
	}
	q.n--
	if q.n == 0 {
		q.head = 0
	}
	return v
}

// Cap returns the current backing-array capacity (tests assert it stays
// bounded over many push/pop cycles).
func (q *IntQueue) Cap() int { return len(q.buf) }

func (q *IntQueue) grow() {
	c := 2 * len(q.buf)
	if c < 8 {
		c = 8
	}
	nb := make([]int, c)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = nb, 0
}
