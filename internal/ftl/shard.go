package ftl

import (
	"errors"
	"fmt"
	"sync"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// This file is the FTL half of the epoch-sharded run engine (the SSD half —
// epoch formation — lives in internal/ssd). One simulated SSD executes in
// parallel by batching host page operations into virtual-time epochs, routing
// each to its target chip, advancing per-channel state on worker goroutines,
// and merging the cross-chip effects (mapper updates, quota, stats, the
// round-robin cursor) at the epoch barrier in deterministic global op order.
//
// Shards are CHANNELS, not workers: a channel owns its bus timeline
// (Device.chanFree) and its chips own everything else chip-indexed (block
// arrays, pools, placement cursors, backup rings, attribution registers), so
// two channel shards touch disjoint state. The shard count therefore depends
// only on the geometry — results are identical at any worker count, and
// workers merely drain the per-epoch shard task queue.
//
// Exactness is the planner's job (internal/ssd): it only admits an op into an
// epoch when the serial execution provably cannot couple it to another
// shard's state — unique LPNs per epoch, an arrival window shorter than the
// fastest program, request-atomic buffer admission, a per-chip free-block
// margin ruling out foreground GC, and quota-sign stability for the adaptive
// allocator. Anything else flushes the epoch and takes the exact serial path.
//
// One deliberate divergence: payload token sequence numbers. Shards stamp
// tokens from disjoint per-epoch ranges (base + shardIdx<<32), so the bytes
// programmed into page payloads differ from a serial run's. Tokens are only
// parsed by crash-recovery flash scans, which operate on serial runs; run
// results, mapping hashes, free-block and device op counts never see them.

// EpochOp is one page-granular host operation routed to a chip. The planner
// appends ops in serial (global) order; Done and Err are filled in by the
// shard worker that executes the op. Trim ops carry no device work at all —
// they ride the epoch purely so their mapper invalidation replays at the
// barrier in global order (Chip is unused for them).
type EpochOp struct {
	Write   bool
	Trim    bool
	LPN     LPN
	Chip    int
	Arrival sim.Time
	Util    float64 // write-buffer utilization at admission (writes only)
	Done    sim.Time
	Err     error
}

// ShardSupported reports whether this kernel can run under the epoch-sharded
// engine. The EWMA write predictor observes every host write globally, which
// would couple shards, so predictive kernels run serial.
func (k *Kernel) ShardSupported() bool { return k.pred == nil }

// PeekChip previews the chip the i-th future host write will route to,
// without advancing the round-robin cursor (the planner routes writes; the
// barrier advances the cursor).
func (k *Kernel) PeekChip(i int) int {
	return (k.rr + i) % k.Dev.Geometry().Chips()
}

// LookupChip returns the chip currently holding lpn (ok false if unmapped).
// Reads route to the chip of their mapped physical page.
func (k *Kernel) LookupChip(lpn LPN) (int, bool) {
	ppn, ok := k.Map.Lookup(lpn)
	if !ok {
		return 0, false
	}
	return k.Dev.Geometry().AddrOfPPN(ppn).BlockAddr.Chip, true
}

// ShardWriteHeadroom reports whether the chip can absorb w epoch writes with
// no possibility of foreground GC, slot-refill exhaustion or backup-ring
// starvation. The order policy bounds the free-block pops and fast-block
// completions w writes can cause from the chip's current cursor state, the
// backup strategy adds its own pops, and the check requires the pool to stay
// at or above the policy's exact foreground-GC trigger throughout — so the
// serial execution of the same writes provably never collects mid-epoch. A
// false negative only costs a serial fallback (or, first, a GC pre-run),
// never correctness.
func (k *Kernel) ShardWriteHeadroom(chip, w int) bool {
	pops, fills := k.ord.shardWriteImpact(k, chip, w)
	pops += k.bk.shardPops(k, chip, w, fills)
	return k.Pools[chip].FreeCount()-pops >= k.ord.shardGCTrigger(k)
}

// ShardPlacementHazard reports whether a failed ShardWriteHeadroom check is a
// placement artifact: under the *best-case* routing of the w writes across
// placement streams the chip would have had headroom, so the failure stems
// from the planner having to assume adversarial stream routing — not from
// true GC proximity. The planner counts these separately (Rp) in the
// fallback taxonomy; single-stream placements have no routing freedom and
// never report a placement hazard.
func (k *Kernel) ShardPlacementHazard(chip, w int) bool {
	if k.placement.streams() <= 1 {
		return false
	}
	pops, fills := k.ord.shardWriteImpactMin(k, chip, w)
	pops += k.bk.shardPops(k, chip, w, fills)
	return k.Pools[chip].FreeCount()-pops >= k.ord.shardGCTrigger(k)
}

// ShardPreRunGC runs the chip's foreground collection loop ahead of time, at
// plan time on the real kernel, exactly as the serial execution's next write
// on the chip would. The planner only calls it when the open epoch has no
// device ops on the chip's channel and no planned-but-unexecuted
// invalidations touching the chip's full blocks, which makes the pre-run
// byte-identical to the serial run's in-line collection: victim picks see
// the same valid counts, relocations land on the same pages at the same
// virtual times, and the quota is untouched (foreground relocations never
// move q). It returns the collection and copy counts for ShardReport.
func (k *Kernel) ShardPreRunGC(chip int, now sim.Time) (collections, copies int, err error) {
	g0, c0 := k.St.ForegroundGCs, k.St.GCCopies
	if _, err = k.ord.foregroundGC(k, chip, now); err != nil {
		return 0, 0, err
	}
	return int(k.St.ForegroundGCs - g0), int(k.St.GCCopies - c0), nil
}

// ShardInvalHazard reports the chip whose full (GC-candidate) block holds
// lpn's current physical page, if any. A planned-but-unexecuted write or
// trim of such an LPN will invalidate that page at the barrier; until then a
// GC pre-run on that chip would see a stale valid count and diverge from
// serial execution, so the planner counts these as pre-run blockers.
func (k *Kernel) ShardInvalHazard(lpn LPN) (int, bool) {
	ppn, ok := k.Map.Lookup(lpn)
	if !ok {
		return 0, false
	}
	a := k.Dev.Geometry().AddrOfPPN(ppn).BlockAddr
	if !k.Pools[a.Chip].IsFull(a.Block) {
		return 0, false
	}
	return a.Chip, true
}

// ShardQuotaStable reports whether the adaptive allocator's LSB-quota sign
// cannot have changed by the time this write executes, given w prior writes
// already planned into the epoch. The frozen shard-time quota then yields the
// same placement decision as the live serial quota; the barrier replays the
// exact quota arithmetic afterwards. Non-adaptive allocators never read q.
func (k *Kernel) ShardQuotaStable(util float64, w int) bool {
	a, ok := k.alloc.(*adaptiveAlloc)
	if !ok {
		return true
	}
	if util <= a.p.UHigh {
		// The mid and low utilization bands never consult q.
		return true
	}
	return a.q > int64(w) || a.q+int64(w) <= 0
}

// writeOn is Kernel.Write with the chip decided by the caller: the epoch
// planner routes round-robin positions itself so shard execution never
// touches the shared cursor. It must mirror Write exactly, minus NextChip.
func (k *Kernel) writeOn(chip int, lpn LPN, now sim.Time, util float64) (sim.Time, error) {
	// Classify at arrival, before foreground GC can advance the clock: a
	// write the planner admits after a GC pre-run executes on its shard at
	// the arrival time, while the serial path would reach classification
	// only after the in-line collection — the heat decay must see the same
	// virtual time on both paths.
	stream := k.placement.classify(k, lpn, now, false)
	var err error
	gcStart := now
	now, err = k.ord.foregroundGC(k, chip, now)
	if err != nil {
		return now, err
	}
	if now > gcStart {
		k.ctrBlameGC.Add(int64(now - gcStart))
	}
	pref := k.alloc.chooseHost(k, chip, util, now)
	done, err := k.ord.program(k, chip, stream, pref, lpn, k.Token(lpn), k.Spare(lpn), now, false)
	if err != nil {
		return now, err
	}
	k.St.HostWrites++
	if k.placement.streams() > 1 {
		// Stream-split accounting only where placement actually separates
		// streams, so single-stream schemes keep byte-identical stats.
		if stream == streamHot {
			k.St.HostWritesHot++
		} else {
			k.St.HostWritesCold++
		}
	}
	if k.pred != nil {
		k.pred.ObserveWrite()
	}
	return done, nil
}

// newShardClone builds the per-channel kernel a shard worker drives: a
// shallow Kernel copy over a cloned Base whose mapper is a deferred-update
// log view, whose stats accumulate separately for the barrier sum, and whose
// observability is off (the runner falls back to serial whenever a recorder
// is attached). Policy objects (placement, backup, allocation) are shared —
// their state is chip-indexed, and the shardExec latch freezes the one global
// piece (the adaptive quota) until the barrier replays it.
func (k *Kernel) newShardClone() *Kernel {
	b := *k.Base
	b.Map = k.Base.Map.logView()
	b.St = Stats{}
	b.Obs = nil
	b.ctrBlameGC, b.ctrBlameBackup, b.ctrBlameReprogram = nil, nil, nil
	b.Buf = nand.PageBuf{}
	b.ppns = nil
	b.shardExec = true
	clone := *k
	clone.Base = &b
	clone.pred = nil
	return &clone
}

// add accumulates o into s — the barrier's deterministic channel-order stats
// merge. Field-by-field so a new Stats counter fails loudly in review rather
// than silently summing wrong.
func (s *Stats) add(o *Stats) {
	s.HostReads += o.HostReads
	s.HostWrites += o.HostWrites
	s.HostTrims += o.HostTrims
	s.HostWritesLSB += o.HostWritesLSB
	s.HostWritesMSB += o.HostWritesMSB
	s.GCCopies += o.GCCopies
	s.GCCopiesLSB += o.GCCopiesLSB
	s.GCCopiesMSB += o.GCCopiesMSB
	s.BackupWrites += o.BackupWrites
	s.PadWrites += o.PadWrites
	s.Erases += o.Erases
	s.RetiredBlocks += o.RetiredBlocks
	s.ForegroundGCs += o.ForegroundGCs
	s.BackgroundGCs += o.BackgroundGCs
	s.HostWritesHot += o.HostWritesHot
	s.HostWritesCold += o.HostWritesCold
	s.UncorrectableReads += o.UncorrectableReads
	s.ECCRebuilds += o.ECCRebuilds
	s.ScrubReads += o.ScrubReads
	s.RefreshCopies += o.RefreshCopies
	s.RefreshedBlocks += o.RefreshedBlocks
	s.GCReadLosses += o.GCReadLosses
}

// ShardRunner owns the per-channel kernel clones and the worker pool that
// executes one SSD's epochs. It is created once per run (after prefill) and
// closed when the run finishes.
type ShardRunner struct {
	k       *Kernel
	shards  []*Kernel // one clone per channel
	tasks   chan func()
	byShard [][]int // scratch: epoch op indices per shard
	cursors []int   // scratch: per-shard map-log replay cursor
}

// NewShardRunner builds the per-channel shard clones of k and starts
// min(workers, channels) pool goroutines. workers must be >= 1; callers
// wanting serial execution should not construct a runner at all.
func NewShardRunner(k *Kernel, workers int) *ShardRunner {
	g := k.Dev.Geometry()
	ch := g.Channels
	r := &ShardRunner{
		k:       k,
		shards:  make([]*Kernel, ch),
		tasks:   make(chan func(), ch),
		byShard: make([][]int, ch),
		cursors: make([]int, ch),
	}
	for i := range r.shards {
		r.shards[i] = k.newShardClone()
	}
	if workers > ch {
		workers = ch
	}
	if workers < 1 {
		workers = 1
	}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range r.tasks {
				task()
			}
		}()
	}
	return r
}

// Close stops the pool goroutines. The runner must not be used afterwards.
func (r *ShardRunner) Close() { close(r.tasks) }

// Shards returns the shard (channel) count — the planner's routing modulus
// for deciding per-chip write fan-out.
func (r *ShardRunner) Shards() int { return len(r.shards) }

// ExecEpoch executes one epoch: ops (in serial order) fan out to their
// channel shards, run concurrently, and merge back in global op order. On
// return with nil error, the real kernel's mapper, stats, quota, sequence
// and round-robin cursor are exactly what a serial execution of the same ops
// would have produced, and every op carries its Done time. A non-nil error
// is the first error in serial order; the run is then aborted, so no merge
// is attempted.
func (r *ShardRunner) ExecEpoch(ops []EpochOp) error {
	g := r.k.Dev.Geometry()
	for i := range r.byShard {
		r.byShard[i] = r.byShard[i][:0]
	}
	writes := 0
	for i := range ops {
		if ops[i].Trim {
			// Trims carry no device work; they replay at the barrier only.
			continue
		}
		si := g.ChannelOf(ops[i].Chip)
		r.byShard[si] = append(r.byShard[si], i)
		if ops[i].Write {
			writes++
		}
	}

	// Disjoint per-shard token sequence ranges for this epoch; the barrier
	// re-compacts the real cursor below.
	for si, sk := range r.shards {
		sk.seq = r.k.seq + int64(si+1)<<32
		sk.Map.resetLog()
	}

	var wg sync.WaitGroup
	for si := range r.shards {
		if len(r.byShard[si]) == 0 {
			continue
		}
		si := si
		wg.Add(1)
		r.tasks <- func() {
			defer wg.Done()
			sk := r.shards[si]
			for _, i := range r.byShard[si] {
				op := &ops[i]
				if op.Write {
					op.Done, op.Err = sk.writeOn(op.Chip, op.LPN, op.Arrival, op.Util)
				} else {
					op.Done, op.Err = sk.ReadLPN(op.LPN, op.Arrival)
				}
				if op.Err != nil {
					if !op.Write && errors.Is(op.Err, rel.ErrUncorrectable) {
						// A detected data loss is a completed read, not an
						// abort: the host folds Done into the request's
						// completion and the run carries on — exactly the
						// serial engine's continue-on-uncorrectable.
						continue
					}
					// Serial execution aborts the run at its first error;
					// halting the shard keeps its state from running ahead.
					break
				}
			}
		}
	}
	wg.Wait()

	// A shard executes its ops in global order, so its first error is its
	// earliest; scanning all ops in global order yields the error a serial
	// run would have hit first. Uncorrectable reads are completed ops (the
	// loss is the result), not aborts.
	for i := range ops {
		if ops[i].Err != nil && !(!ops[i].Write && errors.Is(ops[i].Err, rel.ErrUncorrectable)) {
			return ops[i].Err
		}
	}

	// Barrier merge, in global op order: replay the deferred mapper updates
	// (firing the valid-count hooks that re-bucket the GC victim index) and
	// the frozen quota arithmetic.
	for i := range r.cursors {
		r.cursors[i] = 0
	}
	for i := range ops {
		op := &ops[i]
		if op.Trim {
			// Replay the trim's mapper invalidation (and HostTrims count) on
			// the real kernel at its global-order position — exactly where
			// the serial run would have performed it.
			if op.Done, op.Err = r.k.Trim(op.LPN, op.Arrival); op.Err != nil {
				return op.Err
			}
			continue
		}
		if !op.Write {
			continue
		}
		si := g.ChannelOf(op.Chip)
		sk := r.shards[si]
		if r.cursors[si] >= len(sk.Map.log) {
			panic(fmt.Sprintf("ftl: shard %d map log underflow at op %d", si, i))
		}
		ent := sk.Map.log[r.cursors[si]]
		r.cursors[si]++
		if ent.lpn != op.LPN {
			panic(fmt.Sprintf("ftl: shard %d map log LPN %d != op LPN %d", si, ent.lpn, op.LPN))
		}
		r.k.Map.Update(ent.lpn, ent.ppn)
		isLSB := g.AddrOfPPN(ent.ppn).Page.Type == core.LSB
		r.k.alloc.onProgram(r.k, isLSB, false)
	}
	for si, sk := range r.shards {
		if r.cursors[si] != len(sk.Map.log) {
			panic(fmt.Sprintf("ftl: shard %d map log has %d unconsumed entries", si, len(sk.Map.log)-r.cursors[si]))
		}
	}
	for _, sk := range r.shards {
		r.k.St.add(&sk.St)
		sk.St = Stats{}
	}
	r.k.seq += int64(writes)
	if writes > 0 {
		r.k.rr = (r.k.rr + writes) % g.Chips()
	}
	return nil
}
