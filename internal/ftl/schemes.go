package ftl

import "flexftl/internal/nand"

// This file expresses the paper's four MLC FTLs as kernel configurations —
// each scheme is nothing but a policy triple. The subpackages (pageftl,
// parityftl, rtfftl, flexftl) re-export these constructors for compatibility;
// the registry exposes them (plus hybrids) by name.

// NewPageFTL builds the baseline FPS page-mapping FTL: strict vendor program
// order, no paired-page backup — the paper's performance ceiling for an FPS
// FTL under a no-sudden-power-off assumption.
func NewPageFTL(dev *nand.Device, cfg Config) (*Kernel, error) {
	return NewKernel(dev, cfg, KernelSpec{
		Name:   "pageFTL",
		Order:  FPSOrderPolicy(),
		Backup: NoBackupStrategy(),
		Alloc:  FixedAllocPolicy(PrefOrder, PrefOrder),
	})
}

// NewParityFTL builds the FPS FTL with parity-based pre-backup (the Section 2
// countermeasure): every PairSize LSB programs emit one XOR parity page into
// a per-chip backup ring, covering the paired-page hazard before the MSBs
// arrive.
func NewParityFTL(dev *nand.Device, cfg Config) (*Kernel, error) {
	return NewKernel(dev, cfg, KernelSpec{
		Name:   "parityFTL",
		Order:  FPSOrderPolicy(),
		Backup: PairParityBackup(2),
		Alloc:  FixedAllocPolicy(PrefOrder, PrefOrder),
	})
}

// NewRTFFTL builds the return-to-fast FTL modeled on Grupp et al.'s Harey
// Tortoise: a pool of eight active FPS blocks per chip keeps LSB pages
// available for bursts, idle time drains (or pads) pending MSB pages, and
// pair parity covers the power-cut hazard.
func NewRTFFTL(dev *nand.Device, cfg Config) (*Kernel, error) {
	return NewKernel(dev, cfg, KernelSpec{
		Name:   "rtfFTL",
		Order:  FPSPoolOrderPolicy(8),
		Backup: PairParityBackup(2),
		Alloc:  FixedAllocPolicy(PrefFast, PrefSlow),
	})
}

// NewFlexFTL builds the paper's RPS-aware FTL: two-phase ordering, per-block
// parity backup, and the adaptive u/q page allocation of Section 3.2. The
// device must enforce RPS (or be unconstrained).
func NewFlexFTL(dev *nand.Device, cfg Config, p FlexParams) (*Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return NewKernel(dev, cfg, KernelSpec{
		Name:           "flexFTL",
		Order:          TwoPhaseOrderPolicy(),
		Backup:         BlockParityBackup(),
		Alloc:          AdaptiveAllocPolicy(p),
		RetokenizeGC:   true,
		Predictive:     p.PredictiveBGC,
		PredictorAlpha: p.PredictorAlpha,
	})
}

// NewFlexFTLPlaced builds flexFTL with a non-default placement policy —
// identical order/backup/alloc configuration, plus the fourth axis. The name
// is the registry key so crash repros and reports stay distinguishable.
func NewFlexFTLPlaced(dev *nand.Device, cfg Config, p FlexParams, name string, place PlacementPolicy) (*Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return NewKernel(dev, cfg, KernelSpec{
		Name:           name,
		Order:          TwoPhaseOrderPolicy(),
		Backup:         BlockParityBackup(),
		Alloc:          AdaptiveAllocPolicy(p),
		Place:          place,
		RetokenizeGC:   true,
		Predictive:     p.PredictiveBGC,
		PredictorAlpha: p.PredictorAlpha,
	})
}

// NewPageFTLPlaced builds pageFTL with a non-default placement policy: the
// same strict-order no-backup baseline, writing through per-chip streams.
func NewPageFTLPlaced(dev *nand.Device, cfg Config, name string, place PlacementPolicy) (*Kernel, error) {
	return NewKernel(dev, cfg, KernelSpec{
		Name:   name,
		Order:  FPSOrderPolicy(),
		Backup: NoBackupStrategy(),
		Alloc:  FixedAllocPolicy(PrefOrder, PrefOrder),
		Place:  place,
	})
}
