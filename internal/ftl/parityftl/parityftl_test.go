package parityftl

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/ftltest"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

func fixture(t testing.TB) ftltest.Fixture {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(),
		Timing:   nand.DefaultTiming(),
		Rules:    core.FPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, ftl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ftltest.Fixture{F: f, B: f.Base}
}

func TestConformance(t *testing.T) {
	ftltest.Run(t, fixture)
}

func TestName(t *testing.T) {
	if fixture(t).F.Name() != "parityFTL" {
		t.Error("name wrong")
	}
}

// TestBackupRatio: the pre-backup scheme writes one parity page per PairSize
// LSB pages, i.e. backup writes ~= (LSB programs)/2 — the paper's "at most
// two LSB pages share a parity backup page" bound.
func TestBackupRatio(t *testing.T) {
	fx := fixture(t)
	src := rng.New(3)
	logical := fx.F.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 2*logical; i++ {
		done, err := fx.F.Write(ftl.LPN(src.Int63n(logical)), now, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := fx.F.Stats()
	lsbPrograms := st.HostWritesLSB + st.GCCopiesLSB
	if st.BackupWrites == 0 {
		t.Fatal("no backup writes recorded")
	}
	ratio := float64(st.BackupWrites) / float64(lsbPrograms)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("backup/LSB ratio = %.3f, want ~0.5 (1 parity per %d LSB pages)", ratio, PairSize)
	}
}

// TestMoreErasesThanPageFTL: backup traffic consumes pages, so for the same
// host workload parityFTL must erase more blocks than a backup-less baseline
// would — the Figure 8(b) effect in miniature. We approximate the baseline
// by comparing against the no-backup program count.
func TestBackupInflatesWriteAmplification(t *testing.T) {
	fx := fixture(t)
	src := rng.New(9)
	logical := fx.F.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 2*logical; i++ {
		done, err := fx.F.Write(ftl.LPN(src.Int63n(logical)), now, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := fx.F.Stats()
	withoutBackup := float64(st.HostWrites+st.GCCopies) / float64(st.HostWrites)
	withBackup := st.WriteAmplification()
	if withBackup <= withoutBackup {
		t.Errorf("backup did not inflate write amplification: %v <= %v", withBackup, withoutBackup)
	}
	// Roughly: backups add ~0.25 per host write (0.5 per LSB, LSB = half of
	// programs). Sanity-check the order of magnitude.
	if delta := withBackup - withoutBackup; delta < 0.1 || delta > 0.5 {
		t.Errorf("backup overhead %.3f programs/host write outside [0.1,0.5]", delta)
	}
}

func TestBackupBlocksRecycled(t *testing.T) {
	// Long runs must not leak backup blocks: free+full+active+backup stays
	// constant, so sustained writing keeps succeeding (covered) and the
	// backup ring depth stays <= 2 per chip.
	fx := fixture(t)
	f := fx.F.(*FTL)
	src := rng.New(11)
	logical := fx.F.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 4*logical; i++ {
		done, err := fx.F.Write(ftl.LPN(src.Int63n(logical)), now, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	for c := 0; c < fx.F.Device().Geometry().Chips(); c++ {
		cur, prev := f.BackupRing(c)
		depth := 0
		if cur != -1 {
			depth++
		}
		if prev != -1 {
			depth++
		}
		if depth > 2 {
			t.Errorf("chip %d backup ring depth %d", c, depth)
		}
	}
}
