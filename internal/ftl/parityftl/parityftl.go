// Package parityftl implements "parityFTL", the FPS-based comparison FTL
// that adopts the adaptive paired-page pre-backup of Lee et al. (TCAD 2014):
// under the fixed program sequence at most two LSB pages can share a parity
// backup page before their paired MSB pages are programmed, so every second
// LSB program emits one parity page to a per-chip backup block. This halves
// the copy-backup overhead of a naive scheme but still costs ~0.5 extra
// programs per word line — the gap flexFTL's per-block parity closes.
package parityftl

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/parity"
	"flexftl/internal/sim"
)

// PairSize is how many LSB pages share one parity page under FPS (see the
// paper's footnote 4).
const PairSize = 2

// FTL is the parity pre-backup FTL.
type FTL struct {
	*ftl.Base
	order  []core.Page
	active []cursor
	backup []backupRing
	pbuf   []*parity.Buffer // per chip: parity of the LSB pair in flight
	psnap  []byte           // scratch for parity snapshots (Program copies)
}

type cursor struct {
	blk int
	pos int
}

// backupRing is a two-deep rotation of backup blocks: parity pages go to the
// current block; when it fills, the previous one (whose parities have long
// been superseded by completed MSB programs) is erased and freed.
type backupRing struct {
	cur  int // -1 when none
	pos  int
	prev int // -1 when none
}

var _ ftl.FTL = (*FTL)(nil)

// New builds a parityFTL over the device.
func New(dev *nand.Device, cfg ftl.Config) (*FTL, error) {
	base, err := ftl.NewBase(dev, cfg)
	if err != nil {
		return nil, err
	}
	g := dev.Geometry()
	f := &FTL{
		Base:   base,
		order:  core.FPSOrder(g.WordLinesPerBlock),
		active: make([]cursor, g.Chips()),
		backup: make([]backupRing, g.Chips()),
		pbuf:   make([]*parity.Buffer, g.Chips()),
	}
	for c := range f.active {
		f.active[c] = cursor{blk: -1}
		f.backup[c] = backupRing{cur: -1, prev: -1}
		// Pages carry TokenSize-byte payloads (see ftl.TokenSize); the
		// parity accumulator only needs that width.
		f.pbuf[c] = parity.New(ftl.TokenSize)
	}
	return f, nil
}

// Name identifies the scheme.
func (f *FTL) Name() string { return "parityFTL" }

// Write services a host page write (util is ignored; parityFTL follows FPS).
func (f *FTL) Write(lpn ftl.LPN, now sim.Time, util float64) (sim.Time, error) {
	chip := f.NextChip()
	done, err := f.program(chip, lpn, f.Token(lpn), f.Spare(lpn), now, false)
	if err != nil {
		return now, err
	}
	f.St.HostWrites++
	return done, nil
}

// Read services a host page read.
func (f *FTL) Read(lpn ftl.LPN, now sim.Time) (sim.Time, error) {
	return f.ReadLPN(lpn, now)
}

func (f *FTL) program(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	if !fromGC {
		var err error
		now, err = f.foregroundGC(chip, now)
		if err != nil {
			return now, err
		}
	}
	cur := &f.active[chip]
	if cur.blk == -1 {
		blk, ok := f.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("parityftl: chip %d out of free blocks", chip)
		}
		cur.blk, cur.pos = blk, 0
	}
	page := f.order[cur.pos]
	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	done, err := f.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	f.Map.Update(lpn, f.Dev.Geometry().PPNOf(addr))
	if page.Type == core.LSB {
		if fromGC {
			f.St.GCCopiesLSB++
		} else {
			f.St.HostWritesLSB++
		}
		// Accumulate the pre-backup parity; every PairSize LSB pages emit
		// one parity page before their paired MSB programs begin.
		if err := f.pbuf[chip].Add(data); err != nil {
			return done, err
		}
		if f.pbuf[chip].Count() >= PairSize {
			f.psnap = f.pbuf[chip].SnapshotInto(f.psnap)
			done, err = f.writeBackup(chip, f.psnap, done)
			if err != nil {
				return done, err
			}
			f.pbuf[chip].Reset()
		}
	} else {
		if fromGC {
			f.St.GCCopiesMSB++
		} else {
			f.St.HostWritesMSB++
		}
	}
	cur.pos++
	if cur.pos == len(f.order) {
		f.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

// writeBackup programs one parity page into the chip's backup ring,
// rotating blocks as they fill.
func (f *FTL) writeBackup(chip int, page []byte, now sim.Time) (sim.Time, error) {
	ring := &f.backup[chip]
	if ring.cur == -1 {
		blk, ok := f.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("parityftl: chip %d has no free block for backups", chip)
		}
		ring.cur, ring.pos = blk, 0
	}
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: ring.cur},
		Page:      f.order[ring.pos],
	}
	done, err := f.Dev.Program(addr, page, nil, now)
	if err != nil {
		return now, err
	}
	f.St.BackupWrites++
	f.Obs.Instant(obs.KindBackup, int32(chip), now, int64(ring.cur), int64(ring.pos))
	ring.pos++
	if ring.pos == len(f.order) {
		// Rotate: recycle the previous backup block. Its newest parity is
		// a full backup-block's worth of word lines old, far beyond the
		// FPS paired-MSB window, so everything in it is stale.
		if ring.prev != -1 {
			done, err = f.EraseAndFree(chip, ring.prev, done)
			if err != nil {
				return done, err
			}
		}
		ring.prev, ring.cur = ring.cur, -1
	}
	return done, nil
}

func (f *FTL) gcAlloc(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time) (sim.Time, error) {
	return f.program(chip, lpn, data, spare, now, true)
}

func (f *FTL) foregroundGC(chip int, now sim.Time) (sim.Time, error) {
	// Keep one extra block of reserve beyond pageFTL: the backup ring can
	// claim a block at any moment.
	for f.Pools[chip].FreeCount() < f.Cfg.MinFreeBlocksPerChip+1 {
		victim, ok := f.Pools[chip].PickVictim()
		if !ok {
			break
		}
		var err error
		now, err = f.CollectVictim(chip, victim, now, f.gcAlloc)
		if err != nil {
			return now, err
		}
		f.St.ForegroundGCs++
	}
	return now, nil
}

// Idle runs incremental background GC exactly like pageFTL.
func (f *FTL) Idle(now, until sim.Time) {
	f.RunBackgroundGC(now, until, f.BGCWanted, f.gcAlloc)
}
