// Package parityftl implements "parityFTL", the FPS-based comparison FTL
// that adopts the adaptive paired-page pre-backup of Lee et al. (TCAD 2014):
// under the fixed program sequence at most two LSB pages can share a parity
// backup page before their paired MSB pages are programmed, so every second
// LSB program emits one parity page to a per-chip backup block. This halves
// the copy-backup overhead of a naive scheme but still costs ~0.5 extra
// programs per word line — the gap flexFTL's per-block parity closes.
//
// The scheme is a pure configuration of the ftl kernel: the strict FPS order
// policy, pair-parity pre-backup, and the fixed allocator (see
// ftl.NewParityFTL). This package exists for import-path compatibility and
// scheme-local tests.
package parityftl

import (
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
)

// PairSize is how many LSB pages share one parity page under FPS (see the
// paper's footnote 4).
const PairSize = 2

// FTL is the parity pre-backup FTL.
type FTL = ftl.Kernel

// New builds a parityFTL over the device.
func New(dev *nand.Device, cfg ftl.Config) (*FTL, error) {
	return ftl.NewParityFTL(dev, cfg)
}
