package nflex

import (
	"reflect"
	"testing"

	"flexftl/internal/ftl"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

// TestVictimIndexMatchesReferenceNflex is the n-level determinism pin: two
// FTLs driven by the identical write/trim/idle sequence — one on the indexed
// victim picker, one on the reference linear scan — must end with the same
// statistics and the same logical-to-physical mapping. nflex has its own
// mapper and wiring, so the root ssd.Run DeepEqual tests do not cover it.
func TestVictimIndexMatchesReferenceNflex(t *testing.T) {
	run := func(reference bool) (ftl.Stats, uint64, []int) {
		f := newTLC(t)
		f.SetVictimReference(reference)
		src := rng.New(29)
		logical := f.LogicalPages()
		now := sim.Time(0)
		var err error
		for i := int64(0); i < 3*logical; i++ {
			lpn := ftl.LPN(src.Int63n(logical))
			if src.Bool(0.15) {
				now, err = f.Trim(lpn, now)
			} else {
				now, err = f.Write(lpn, now, src.Float64())
			}
			if err != nil {
				t.Fatal(err)
			}
			if i%500 == 499 {
				f.Idle(now, now+100*sim.Millisecond)
				now += 100 * sim.Millisecond
			}
		}
		free := make([]int, len(f.pools))
		for c := range f.pools {
			free[c] = f.pools[c].FreeCount()
		}
		return f.Stats(), f.MappingHash(), free
	}
	idxStats, idxMap, idxFree := run(false)
	refStats, refMap, refFree := run(true)
	if idxStats != refStats {
		t.Errorf("stats diverged:\nindexed:   %+v\nreference: %+v", idxStats, refStats)
	}
	if idxMap != refMap {
		t.Error("logical-to-physical mapping diverged between indexed and reference pickers")
	}
	if !reflect.DeepEqual(idxFree, refFree) {
		t.Errorf("per-chip free counts diverged: indexed %v, reference %v", idxFree, refFree)
	}
}
