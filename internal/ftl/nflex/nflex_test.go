package nflex

import (
	"testing"

	"fmt"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/nandn"
	"flexftl/internal/nlevel"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

func tinyGeometry() nandn.Geometry {
	return nandn.Geometry{
		Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 32,
		WordLinesPerBlock: 8, Levels: 3, PageSizeBytes: 64, SpareBytes: 16,
	}
}

func newTLC(t testing.TB) *FTL {
	t.Helper()
	dev, err := nandn.NewDevice(tinyGeometry(), nandn.TLCTiming())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, ftl.DefaultConfig(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{UHigh: 0.5, ULow: 0.8, QuotaFraction: 0.05},
		{UHigh: 1.5, ULow: 0.1, QuotaFraction: 0.05},
		{UHigh: 0.8, ULow: 0.1, QuotaFraction: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Error(err)
	}
}

func TestName(t *testing.T) {
	if got := newTLC(t).Name(); got != "nflexFTL(3-level)" {
		t.Errorf("name = %q", got)
	}
}

func TestWriteReadBack(t *testing.T) {
	f := newTLC(t)
	now := sim.Time(0)
	var err error
	for lpn := ftl.LPN(0); lpn < 100; lpn++ {
		now, err = f.Write(lpn, now, 0.5)
		if err != nil {
			t.Fatalf("write %d: %v", lpn, err)
		}
	}
	for lpn := ftl.LPN(0); lpn < 100; lpn++ {
		now, err = f.Read(lpn, now)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
	}
	st := f.Stats()
	if st.HostWrites != 100 || st.HostReads != 100 {
		t.Errorf("stats: %+v", st)
	}
	byLevel := f.HostWritesByLevel()
	var sum int64
	for _, n := range byLevel {
		sum += n
	}
	if sum != st.HostWrites {
		t.Errorf("per-level split %v does not sum to %d", byLevel, st.HostWrites)
	}
}

func TestTrimAndUnmappedRead(t *testing.T) {
	f := newTLC(t)
	now, err := f.Write(7, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Trim(7, now); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(7, now); err == nil {
		t.Error("trimmed page readable")
	}
	if _, err := f.Read(999, now); err == nil {
		t.Error("unmapped read succeeded")
	}
}

// TestHighUtilUsesFastPhase: while q lasts, high-utilization writes all land
// on level-0 pages.
func TestHighUtilUsesFastPhase(t *testing.T) {
	f := newTLC(t)
	n := int(f.Quota())
	now := sim.Time(0)
	var err error
	for i := 0; i < n; i++ {
		now, err = f.Write(ftl.LPN(i), now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
	}
	if byLevel := f.HostWritesByLevel(); byLevel[0] != int64(n) {
		t.Errorf("fast-phase writes = %d of %d", byLevel[0], n)
	}
	if f.Quota() != 0 {
		t.Errorf("quota = %d after spending it exactly", f.Quota())
	}
}

// TestNPOInvariant: a block with any level-i page written has ALL its
// level-(i-1) pages written — the n-phase generalization of 2PO.
func TestNPOInvariant(t *testing.T) {
	f := newTLC(t)
	g := f.Device().Geometry()
	src := rng.New(11)
	logical := f.LogicalPages()
	now := sim.Time(0)
	var err error
	for i := int64(0); i < 2*logical; i++ {
		now, err = f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		if i%700 == 699 {
			f.Idle(now, now+500*sim.Millisecond)
		}
	}
	// Inspect every block's program state via the device.
	checked := 0
	for chip := 0; chip < g.Chips(); chip++ {
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			prog := f.Device().BlockProgrammed(chip, blk)
			if prog == 0 {
				continue
			}
			checked++
			// Programmed count must decompose as full phases + a prefix:
			// count = k*W + r means levels 0..k-1 full and level k has r.
			w := g.WordLinesPerBlock
			fullPhases := prog / w
			if fullPhases > g.Levels {
				t.Fatalf("block %d/%d overfull: %d", chip, blk, prog)
			}
			_ = fullPhases // structure enforced by the device's relaxed rules
		}
	}
	if checked == 0 {
		t.Error("no programmed blocks to check")
	}
	// The real invariant: the device accepted every program under the
	// generalized relaxed constraints, which force phase ordering per WL;
	// additionally GC kept the FTL running for 2x logical writes.
	if f.Stats().Erases == 0 {
		t.Error("no GC activity in a 2x-capacity run")
	}
}

// TestPerPhaseParityAccounting: one parity write per completed non-final
// phase: for an L-level device, (L-1) parities per fully cycled block.
func TestPerPhaseParityAccounting(t *testing.T) {
	f := newTLC(t)
	g := f.Device().Geometry()
	src := rng.New(13)
	logical := f.LogicalPages()
	now := sim.Time(0)
	var err error
	for i := int64(0); i < 2*logical; i++ {
		now, err = f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.BackupWrites == 0 {
		t.Fatal("no phase parities written")
	}
	// Host+GC programs per completed phase = W; parities per data page:
	progs := f.Device().Programs()
	var nonFinal int64
	for l := 0; l < g.Levels-1; l++ {
		nonFinal += progs[l]
	}
	// Each W non-final-phase programs produce one parity (which is itself a
	// level-0 program on a backup block; subtract backups from the count).
	dataNonFinal := nonFinal - st.BackupWrites
	perPage := float64(st.BackupWrites) / float64(dataNonFinal)
	want := 1.0 / float64(g.WordLinesPerBlock)
	if perPage > want*1.5 || perPage < want*0.5 {
		t.Errorf("parity overhead %.4f per non-final page, want ~%.4f", perPage, want)
	}
}

// TestSustainedGC: nflex survives writing 3x its logical space.
func TestSustainedGC(t *testing.T) {
	f := newTLC(t)
	src := rng.New(17)
	logical := f.LogicalPages()
	z := rng.NewZipf(src, int(logical), 0.95)
	now := sim.Time(0)
	var err error
	for i := int64(0); i < 3*logical; i++ {
		now, err = f.Write(ftl.LPN(z.Next()), now, 0.5)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i%999 == 998 {
			f.Idle(now, now+300*sim.Millisecond)
			now += 300 * sim.Millisecond
		}
	}
	st := f.Stats()
	if st.Erases == 0 || st.GCCopies == 0 {
		t.Errorf("no GC in sustained run: %+v", st)
	}
	// Device program accounting must close: host + GC + backups.
	var devTotal int64
	for _, n := range f.Device().Programs() {
		devTotal += n
	}
	if got := st.HostWrites + st.GCCopies + st.BackupWrites; got != devTotal {
		t.Errorf("program accounting: FTL %d vs device %d", got, devTotal)
	}
}

// TestFastPhaseBurstFasterThanDeepPhase: the level-0 path drains a burst
// faster than the finest level would — the TLC asymmetry exploited.
func TestFastPhaseBurstFaster(t *testing.T) {
	g := tinyGeometry()
	tm := nandn.TLCTiming()
	if tm.Prog[0]*2 >= tm.Prog[2] {
		t.Skip("timing asymmetry too small for the check")
	}
	f := newTLC(t)
	const burst = 64
	var last sim.Time
	for i := 0; i < burst; i++ {
		done, err := f.Write(ftl.LPN(i), 0, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if done > last {
			last = done
		}
	}
	// All-level-0 drain bound: burst/chips * (xfer+prog0) plus slack.
	bound := sim.Time(burst/g.Chips())*(tm.BusXfer+tm.Prog[0])*2 + tm.Prog[0]
	if last > bound {
		t.Errorf("burst drained in %v, want under %v (level-0 service)", last, bound)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ftl.Stats {
		f := newTLC(t)
		src := rng.New(23)
		logical := f.LogicalPages()
		now := sim.Time(0)
		var err error
		for i := int64(0); i < logical; i++ {
			now, err = f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
			if err != nil {
				t.Fatal(err)
			}
			if i%500 == 499 {
				f.Idle(now, now+100*sim.Millisecond)
			}
		}
		return f.Stats()
	}
	a, b := run(), run()
	if a.HostWrites != b.HostWrites || a.Erases != b.Erases || a.GCCopies != b.GCCopies ||
		a.BackupWrites != b.BackupWrites {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
}

// TestPowerFailRecoveryTLC is the generalized Figure 7 scenario: a power cut
// during a level-2 refinement destroys the word line's level-0 AND level-1
// pages; both are rebuilt from their phase parities.
func TestPowerFailRecoveryTLC(t *testing.T) {
	f := newTLC(t)
	g := f.Device().Geometry()
	now := sim.Time(0)
	var err error
	lpn := ftl.LPN(0)
	// Fill phase 0 blocks (high util), then push through phases 1 and 2
	// with low util until a level-2 program is in flight on chip 0.
	for i := 0; i < g.Chips()*g.WordLinesPerBlock; i++ {
		now, err = f.Write(lpn, now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		lpn++
	}
	for f.chips[0].phases[2].blk == -1 || f.chips[0].phases[2].pos == 0 {
		now, err = f.Write(lpn, now, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		lpn++
	}
	chip := 0
	blk := f.chips[chip].phases[2].blk
	wl := f.chips[chip].phases[2].pos - 1
	// The two earlier-level pages of this word line.
	var lostLPNs []ftl.LPN
	for lvl := 0; lvl < 2; lvl++ {
		if l, ok := f.m.LPNAt(f.ppnOf(pageFor(chip, blk, wl, lvl))); ok {
			lostLPNs = append(lostLPNs, l)
		}
	}
	if len(lostLPNs) != 2 {
		t.Fatalf("setup: expected 2 live earlier-level pages, got %v", lostLPNs)
	}
	if n := f.Device().InjectPowerLoss(chip, blk); n != 3 {
		t.Fatalf("power loss corrupted %d pages, want 3", n)
	}
	for _, l := range lostLPNs {
		if _, err := f.Read(l, now); err == nil {
			t.Fatalf("LPN %d readable after power cut", l)
		}
	}
	rep, err := f.Recover(now)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if len(rep.Recovered) != 2 {
		t.Fatalf("recovered %v, want both earlier-level pages", rep.Recovered)
	}
	for _, l := range lostLPNs {
		if _, err := f.Read(l, rep.End); err != nil {
			t.Errorf("recovered LPN %d unreadable: %v", l, err)
		}
	}
	if len(rep.Dropped) != 1 {
		t.Errorf("dropped = %v, want the interrupted level-2 write", rep.Dropped)
	}
	if rep.PagesRead == 0 || rep.Duration() <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	// The FTL still works.
	if _, err := f.Write(lpn, rep.End, 0.5); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestRecoveryWithoutCrashTLC: a healthy recovery pass recovers and drops
// nothing.
func TestRecoveryWithoutCrashTLC(t *testing.T) {
	f := newTLC(t)
	g := f.Device().Geometry()
	now := sim.Time(0)
	var err error
	lpn := ftl.LPN(0)
	for i := 0; i < g.Chips()*g.WordLinesPerBlock; i++ {
		now, err = f.Write(lpn, now, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		lpn++
	}
	rep, err := f.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered)+len(rep.Dropped) != 0 {
		t.Errorf("healthy recovery acted: %+v", rep)
	}
}

// TestQLCGenerality: the same FTL runs a 4-bit device — four phases, three
// parity pages per block — without modification.
func TestQLCGenerality(t *testing.T) {
	g := nandn.Geometry{
		Channels: 1, ChipsPerChannel: 2, BlocksPerChip: 32,
		WordLinesPerBlock: 8, Levels: 4, PageSizeBytes: 64, SpareBytes: 16,
	}
	tm := nandn.Timing{
		Read:    80 * sim.Microsecond,
		Prog:    []sim.Time{350 * sim.Microsecond, 900 * sim.Microsecond, 2 * sim.Millisecond, 5 * sim.Millisecond},
		Erase:   8 * sim.Millisecond,
		BusXfer: 10 * sim.Microsecond,
	}
	dev, err := nandn.NewDevice(g, tm)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, ftl.DefaultConfig(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "nflexFTL(4-level)" {
		t.Errorf("name = %q", f.Name())
	}
	src := rng.New(31)
	logical := f.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 2*logical; i++ {
		now, err = f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
		if err != nil {
			t.Fatalf("QLC write %d: %v", i, err)
		}
		if i%499 == 498 {
			f.Idle(now, now+200*sim.Millisecond)
			now += 200 * sim.Millisecond
		}
	}
	st := f.Stats()
	if st.Erases == 0 || st.BackupWrites == 0 {
		t.Errorf("QLC run missing GC/backups: %+v", st)
	}
	if byLevel := f.HostWritesByLevel(); len(byLevel) != 4 {
		t.Errorf("per-level split has %d entries", len(byLevel))
	}
	auditNflex(t, f)
}

// auditNflex checks block accounting: free + full + phase actives + phase
// queues + backup blocks (+ one slack for a background victim) must cover
// every block of every chip.
func auditNflex(t *testing.T, f *FTL) {
	t.Helper()
	g := f.Device().Geometry()
	for chip := 0; chip < g.Chips(); chip++ {
		seen := make(map[int]string)
		place := func(blk int, where string) {
			if blk < 0 {
				return
			}
			if prev, dup := seen[blk]; dup {
				t.Fatalf("chip %d block %d in both %s and %s", chip, blk, prev, where)
			}
			seen[blk] = where
		}
		cs := &f.chips[chip]
		for l, cur := range cs.phases {
			place(cur.blk, fmt.Sprintf("phase-%d-active", l))
		}
		for l := range cs.queues {
			q := &cs.queues[l]
			for i := 0; i < q.Len(); i++ {
				place(q.At(i), fmt.Sprintf("phase-%d-queue", l))
			}
		}
		place(cs.backup.cur, "backup-current")
		for _, b := range cs.backup.retired {
			place(b, "backup-retired")
		}
		for _, b := range f.pools[chip].FullBlocks() {
			place(b, "full")
		}
		total := len(seen) + f.pools[chip].FreeCount()
		if total != g.BlocksPerChip && total != g.BlocksPerChip-1 {
			t.Fatalf("chip %d accounts for %d of %d blocks", chip, total, g.BlocksPerChip)
		}
	}
	// Mapping consistency.
	var sum int64
	for chip := 0; chip < g.Chips(); chip++ {
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			sum += int64(f.m.ValidCount(nand.BlockAddr{Chip: chip, Block: blk}))
		}
	}
	var mapped int64
	for lpn := ftl.LPN(0); int64(lpn) < f.LogicalPages(); lpn++ {
		if ppn, ok := f.m.Lookup(lpn); ok {
			mapped++
			if back, ok2 := f.m.LPNAt(ppn); !ok2 || back != lpn {
				t.Fatalf("mapping round trip broken at LPN %d", lpn)
			}
		}
	}
	if sum != mapped {
		t.Fatalf("valid counts %d != mapped %d", sum, mapped)
	}
}

// TestInvariantsTLCHeavy: block audit after the TLC sustained-GC scenario.
func TestInvariantsTLCHeavy(t *testing.T) {
	f := newTLC(t)
	src := rng.New(37)
	logical := f.LogicalPages()
	z := rng.NewZipf(src, int(logical), 0.95)
	now := sim.Time(0)
	var err error
	for i := int64(0); i < 3*logical; i++ {
		now, err = f.Write(ftl.LPN(z.Next()), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		if i%888 == 887 {
			f.Idle(now, now+250*sim.Millisecond)
			now += 250 * sim.Millisecond
		}
	}
	auditNflex(t, f)
}

func TestMapperRoundTrip(t *testing.T) {
	g := tinyGeometry()
	m := ftl.NewMapperDims(g.Chips(), g.BlocksPerChip, g.PagesPerBlock(), 100)
	a := pageFor(1, 2, 3, 1)
	ppn := ppnOf(g, a)
	if addrOf(g, ppn) != a {
		t.Fatalf("addr round trip: %v -> %d -> %v", a, ppn, addrOf(g, ppn))
	}
	m.Update(5, ppn)
	if got, ok := m.Lookup(5); !ok || got != ppn {
		t.Error("lookup failed")
	}
	if l, ok := m.LPNAt(ppn); !ok || l != 5 {
		t.Error("inverse lookup failed")
	}
	blkAddr := nand.BlockAddr{Chip: 1, Block: 2}
	if m.ValidCount(blkAddr) != 1 {
		t.Error("valid count wrong")
	}
	if !m.Invalidate(5) || m.Invalidate(5) {
		t.Error("invalidate semantics wrong")
	}
	if m.ValidCount(blkAddr) != 0 {
		t.Error("valid count after invalidate")
	}
}

func TestSpareBlockNoRoundTrip(t *testing.T) {
	blk, lvl, ok := blockNoFromSpare(spareBlockNo(42, 2))
	if !ok || blk != 42 || lvl != 2 {
		t.Errorf("round trip = %d,%d,%v", blk, lvl, ok)
	}
	if _, _, ok := blockNoFromSpare([]byte{1, 2}); ok {
		t.Error("short spare decoded")
	}
}

func TestNLevelPageShapes(t *testing.T) {
	// pageFor produces addresses the device accepts/rejects consistently.
	f := newTLC(t)
	if _, err := f.Device().Program(pageFor(0, 0, 0, 0), nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Device().Program(pageFor(0, 0, 0, 2), nil, nil, 0); err == nil {
		t.Error("skipping refinement accepted")
	}
	_ = nlevel.Page{} // keep the import meaningful for shape tests
}
