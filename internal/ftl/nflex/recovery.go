package nflex

import (
	"errors"
	"fmt"

	"flexftl/internal/ftl"
	"flexftl/internal/nandn"
	"flexftl/internal/parity"
	"flexftl/internal/sim"
)

// RecoveryReport summarizes an n-level reboot recovery pass; it is the same
// report the 2-bit kernel recovery produces.
type RecoveryReport = ftl.RecoveryReport

// Recover runs the generalized reboot procedure: for every chip and every
// phase with a partially programmed active block, re-read the phase's pages
// rebuilding the partial parity accumulation; an interrupted refinement at
// level i has destroyed the word line's pages at levels 0..i-1, each of
// which is reconstructed from its own phase parity page.
func (f *FTL) Recover(now sim.Time) (RecoveryReport, error) {
	rep := RecoveryReport{Start: now}
	end := now
	for chip := range f.chips {
		t, err := f.recoverChip(chip, now, &rep)
		if err != nil {
			return rep, err
		}
		if t > end {
			end = t
		}
	}
	rep.End = end
	return rep, nil
}

func (f *FTL) recoverChip(chip int, now sim.Time, rep *RecoveryReport) (sim.Time, error) {
	g := f.dev.Geometry()
	cs := &f.chips[chip]

	for level := g.Levels - 1; level >= 1; level-- {
		cur := cs.phases[level]
		if cur.blk == -1 || cur.pos == 0 {
			continue
		}
		blk := cur.blk
		wl := cur.pos - 1 // the word line whose refinement may have been cut

		// Drop the interrupted write if its page was destroyed.
		inFlight := pageFor(chip, blk, wl, level)
		if lpn, ok := f.m.LPNAt(f.ppnOf(inFlight)); ok {
			if t, err := f.dev.ReadInto(inFlight, &f.buf, now); err != nil {
				now = t
				rep.PagesRead++
				if errors.Is(err, nandn.ErrUncorrectable) {
					f.m.Invalidate(lpn)
					rep.Dropped = append(rep.Dropped, lpn)
				}
			} else {
				now = advance(now, t)
				rep.PagesRead++
				continue // refinement completed safely; nothing below is lost
			}
		}

		// Reconstruct each destroyed earlier-level page of this block from
		// its phase parity.
		for lvl := 0; lvl < level; lvl++ {
			var err error
			now, err = f.reconstructPhasePage(chip, blk, lvl, now, rep)
			if err != nil {
				return now, err
			}
		}
	}

	// Rebuild partial parity accumulations for every active phase.
	for level := 0; level < g.Levels-1; level++ {
		cur := cs.phases[level]
		if cur.blk == -1 || cur.pos == 0 {
			continue
		}
		cs.pbuf[level].Reset()
		for wl := 0; wl < cur.pos; wl++ {
			t, err := f.dev.ReadInto(pageFor(chip, cur.blk, wl, level), &f.buf, now)
			rep.PagesRead++
			now = t
			if err != nil {
				if errors.Is(err, nandn.ErrUncorrectable) {
					continue // will have been handled above
				}
				return now, fmt.Errorf("nflex: parity rebuild read: %w", err)
			}
			if err := cs.pbuf[level].Add(f.buf.Data); err != nil {
				return now, err
			}
		}
	}
	return now, nil
}

// reconstructPhasePage scans the block's level-lvl pages, reconstructs the
// (at most one) unreadable page from the phase parity, and re-homes its data
// if still live.
func (f *FTL) reconstructPhasePage(chip, blk, lvl int, now sim.Time, rep *RecoveryReport) (sim.Time, error) {
	g := f.dev.Geometry()
	var survivors [][]byte
	lostWL := -1
	for wl := 0; wl < g.WordLinesPerBlock; wl++ {
		data, _, t, err := f.dev.Read(pageFor(chip, blk, wl, lvl), now)
		rep.PagesRead++
		now = t
		switch {
		case err == nil:
			survivors = append(survivors, data)
		case errors.Is(err, nandn.ErrUncorrectable):
			if lostWL != -1 {
				return now, fmt.Errorf("nflex: two pages lost in phase %d of chip%d/blk%d", lvl, chip, blk)
			}
			lostWL = wl
		default:
			return now, fmt.Errorf("nflex: recovery read: %w", err)
		}
	}
	if lostWL == -1 {
		return now, nil
	}
	ref, ok := f.refs[f.flatBlock(chip, blk)][lvl]
	if !ok {
		return now, fmt.Errorf("nflex: no phase-%d parity recorded for chip%d/blk%d", lvl, chip, blk)
	}
	t, err := f.dev.ReadInto(pageFor(chip, ref.backupBlk, ref.page, 0), &f.buf, now)
	rep.PagesRead++
	now = t
	if err != nil {
		return now, fmt.Errorf("nflex: reading phase parity: %w", err)
	}
	if b, l, ok := blockNoFromSpare(f.buf.Spare); !ok || b != blk || l != lvl {
		return now, fmt.Errorf("nflex: parity inverse-map mismatch: got blk %d lvl %d", b, l)
	}
	parityPage := f.buf.Data
	if len(parityPage) > ftl.TokenSize {
		parityPage = parityPage[:ftl.TokenSize]
	}
	recovered, err := parity.Recover(parityPage, survivors)
	if err != nil {
		return now, err
	}
	lostPPN := f.ppnOf(pageFor(chip, blk, lostWL, lvl))
	lpn, live := f.m.LPNAt(lostPPN)
	if !live {
		return now, nil
	}
	if tok := ftl.LPN(getU64(recovered[0:8])); tok != lpn {
		return now, fmt.Errorf("nflex: recovered payload LPN %d != mapping %d", tok, lpn)
	}
	now, err = f.programAt(chip, 0, lpn, recovered, ftl.SpareForLPN(lpn), now, false)
	if err != nil {
		return now, fmt.Errorf("nflex: re-homing recovered LPN %d: %w", lpn, err)
	}
	rep.Recovered = append(rep.Recovered, lpn)
	return now, nil
}

func advance(now, t sim.Time) sim.Time {
	if t > now {
		return t
	}
	return now
}
