// Package nflex generalizes flexFTL to n-bit NAND (TLC, QLC) over the
// internal/nandn device — the working form of the paper's Section 1 claim
// that RPS "can be applicable for other NAND devices such as TLC NAND
// devices with a similar program scheme".
//
// The two-phase ordering becomes n-phase ordering (nPO): a block is filled
// with all its level-0 pages first (the fast phase), then all level-1
// pages, ..., then the finest level. The block pool manager keeps one
// active block per phase per chip, with FIFO queues feeding phases 1..n-1.
// Every non-final phase leaves one XOR parity page behind (the per-block
// parity scheme, once per phase), so a power cut during any refinement —
// which destroys all of the word line's earlier bits — is recoverable
// without per-write backups.
//
// The mapping table, free pools and victim selection are the shared kernel
// infrastructure (ftl.Mapper, ftl.FreePool); only the n-phase ordering,
// per-phase parity and the n-level recovery procedure are scheme-local. The
// scheme registers itself as "nflexTLC" (a 3-bit device with the default TLC
// timing) in the ftl registry.
package nflex

import (
	"fmt"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/nandn"
	"flexftl/internal/obs"
	"flexftl/internal/parity"
	"flexftl/internal/sim"
)

// Params are the policy knobs (the n-level analogue of flexftl.Params).
type Params struct {
	UHigh, ULow   float64
	QuotaFraction float64 // of the device's total level-0 pages
}

// DefaultParams mirrors flexFTL's settings.
func DefaultParams() Params {
	return Params{UHigh: 0.8, ULow: 0.1, QuotaFraction: 0.05}
}

// Validate rejects inconsistent parameters.
func (p Params) Validate() error {
	if p.ULow < 0 || p.UHigh > 1 || p.ULow >= p.UHigh {
		return fmt.Errorf("nflex: need 0 <= ulow < uhigh <= 1, got %v/%v", p.ULow, p.UHigh)
	}
	if p.QuotaFraction <= 0 || p.QuotaFraction > 1 {
		return fmt.Errorf("nflex: quota fraction %v outside (0,1]", p.QuotaFraction)
	}
	return nil
}

func init() {
	ftl.Register(ftl.Spec{
		Name:   "nflexTLC",
		Rules:  "TLC-nPO",
		Backup: "phaseParity",
		Description: "n-phase flexFTL on a 3-bit device: nPO ordering, " +
			"per-phase parity backups, utilization-driven level choice",
		New: func(env ftl.BuildEnv) (ftl.Host, error) {
			// The n-level scheme brings its own device: env.Geometry is
			// MLC-typed and does not apply here.
			dev, err := nandn.NewDevice(nandn.TLCGeometry(), nandn.TLCTiming())
			if err != nil {
				return nil, err
			}
			return New(dev, env.Config, Params{
				UHigh:         env.Flex.UHigh,
				ULow:          env.Flex.ULow,
				QuotaFraction: env.Flex.QuotaFraction,
			})
		},
	})
}

// parityRef locates a phase parity page.
type parityRef struct {
	backupBlk int
	page      int // level-0 word line within the backup block
}

type backupState struct {
	cur     int
	pos     int
	live    map[int]int
	retired []int
}

// phaseCursor tracks the active block of one phase on one chip.
type phaseCursor struct {
	blk int // -1 when none
	pos int // next word line of this phase
}

type chipState struct {
	phases []phaseCursor  // [level]; level 0 is the fast phase
	queues []ftl.IntQueue // [level] FIFO of blocks awaiting that phase (levels 1..n-1 used)
	pbuf   []*parity.Buffer
	backup backupState
	toggle int // rotation for the mid-utilization band
}

// FTL is the n-phase flexFTL.
type FTL struct {
	dev     *nandn.Device
	params  Params
	cfg     ftl.Config
	m       *ftl.Mapper
	pools   []*ftl.FreePool
	chips   []chipState
	st      ftl.Stats
	byLevel []int64 // host writes per program level (the n-level LSB/MSB split)
	q       int64
	q0      int64
	refs    map[int]map[int]parityRef // flat block -> level -> parity location
	seq     int64
	rr      int
	inBGC   bool
	bg      bgState
	// buf is the reusable read buffer for host reads, GC relocation and
	// recovery rescans; safe to share because the FTL is single-threaded
	// and programAt copies the payload before the next read.
	buf nandn.PageBuf
	// tok/sp/psnap are per-write scratch buffers (Device.Program copies
	// payload and spare, so each is valid until its next use).
	tok   [ftl.TokenSize]byte
	sp    [8]byte
	psnap []byte

	// Blame counters (nil without a recorder) and the per-level reprogram
	// penalty Prog[l]-Prog[0], mirroring the MLC kernel's attribution.
	ctrBlameGC        *obs.Counter
	ctrBlameBackup    *obs.Counter
	ctrBlameReprogram *obs.Counter
	reprogPenalty     []int64
}

var _ ftl.Host = (*FTL)(nil)

type bgState struct {
	chip, blk, nextIdx int
	active             bool
}

// New builds an nflex FTL over the device.
func New(dev *nandn.Device, cfg ftl.Config, params Params) (*FTL, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := dev.Geometry()
	logical := int64(float64(g.TotalPages()) * (1 - cfg.OPFraction))
	if logical <= 0 {
		return nil, fmt.Errorf("nflex: geometry too small")
	}
	f := &FTL{
		dev:     dev,
		params:  params,
		cfg:     cfg,
		m:       ftl.NewMapperDims(g.Chips(), g.BlocksPerChip, g.PagesPerBlock(), logical),
		pools:   make([]*ftl.FreePool, g.Chips()),
		chips:   make([]chipState, g.Chips()),
		byLevel: make([]int64, g.Levels),
		refs:    make(map[int]map[int]parityRef),
	}
	f.reprogPenalty = make([]int64, g.Levels)
	for l := range f.reprogPenalty {
		f.reprogPenalty[l] = int64(dev.Timing().Prog[l] - dev.Timing().Prog[0])
	}
	totalL0 := int64(g.TotalBlocks()) * int64(g.WordLinesPerBlock)
	f.q = int64(params.QuotaFraction * float64(totalL0))
	if f.q < 1 {
		f.q = 1
	}
	f.q0 = f.q
	for c := range f.chips {
		f.pools[c] = ftl.NewFreePool(c, g.BlocksPerChip)
		cs := chipState{
			phases: make([]phaseCursor, g.Levels),
			queues: make([]ftl.IntQueue, g.Levels),
			pbuf:   make([]*parity.Buffer, g.Levels),
			backup: backupState{cur: -1, live: make(map[int]int)},
		}
		for l := range cs.phases {
			cs.phases[l] = phaseCursor{blk: -1}
			cs.pbuf[l] = parity.New(ftl.TokenSize)
		}
		f.chips[c] = cs
	}
	// Wire the victim index: each pool's buckets track the mapper's valid
	// counts, and mapper mutations notify the owning pool.
	for c := range f.pools {
		chip := c
		f.pools[c].Bind(g.PagesPerBlock(), func(blk int) int {
			return f.m.ValidCount(nand.BlockAddr{Chip: chip, Block: blk})
		})
	}
	bpc := g.BlocksPerChip
	f.m.SetValidHook(func(flat int) {
		f.pools[flat/bpc].NoteValidChange(flat % bpc)
	})
	return f, nil
}

// SetVictimReference switches every pool between the indexed victim picker
// and the retained reference linear scan (A/B determinism tests).
func (f *FTL) SetVictimReference(on bool) {
	for _, p := range f.pools {
		p.Reference = on
	}
}

// SetRecorder attaches an observability recorder to the FTL and its device,
// wiring the blame counters (the runner instruments any scheme exposing this
// method uniformly).
func (f *FTL) SetRecorder(r *obs.Recorder) {
	f.dev.SetRecorder(r)
	reg := r.Registry()
	f.ctrBlameGC = reg.Counter(obs.BlameCounterName(obs.CauseGC))
	f.ctrBlameBackup = reg.Counter(obs.BlameCounterName(obs.CauseBackup))
	f.ctrBlameReprogram = reg.Counter(obs.BlameCounterName(obs.CauseReprogram))
}

// WearSpread returns the device's wear imbalance (Max/Mean erase count).
func (f *FTL) WearSpread() float64 { return f.dev.Wear().Imbalance }

// Name identifies the scheme.
func (f *FTL) Name() string { return fmt.Sprintf("nflexFTL(%d-level)", f.dev.Geometry().Levels) }

// Device returns the n-level device.
func (f *FTL) Device() *nandn.Device { return f.dev }

// Stats returns the counters.
func (f *FTL) Stats() ftl.Stats { return f.st }

// HostWritesByLevel returns the per-program-level split of host writes — the
// n-level refinement of the kernel's LSB/MSB counters.
func (f *FTL) HostWritesByLevel() []int64 {
	return append([]int64(nil), f.byLevel...)
}

// Quota returns the current level-0 budget q.
func (f *FTL) Quota() int64 { return f.q }

// ActivePhaseBlock returns the chip's active block for a phase (-1 if none).
func (f *FTL) ActivePhaseBlock(chip, level int) int { return f.chips[chip].phases[level].blk }

// ActivePhaseProgress returns how many word lines of the chip's active
// phase-level block are programmed.
func (f *FTL) ActivePhaseProgress(chip, level int) int {
	if f.chips[chip].phases[level].blk == -1 {
		return 0
	}
	return f.chips[chip].phases[level].pos
}

// LogicalPages returns the host-visible space.
func (f *FTL) LogicalPages() int64 { return f.m.LogicalPages() }

// PageSize returns the data-page size in bytes.
func (f *FTL) PageSize() int { return f.dev.Geometry().PageSizeBytes }

// Chips returns the chip count.
func (f *FTL) Chips() int { return f.dev.Geometry().Chips() }

// MappingHash fingerprints the mapping state (ftl.Mapper.StateHash) so
// equivalence guards can pin it across refactors.
func (f *FTL) MappingHash() uint64 { return f.m.StateHash() }

// TotalFreeBlocks sums free lists.
func (f *FTL) TotalFreeBlocks() int {
	n := 0
	for _, p := range f.pools {
		n += p.FreeCount()
	}
	return n
}

func (f *FTL) token(lpn ftl.LPN) []byte {
	f.seq++
	putU64(f.tok[0:8], uint64(lpn))
	putU64(f.tok[8:16], uint64(f.seq))
	return f.tok[:]
}

func (f *FTL) spare(lpn ftl.LPN) []byte {
	putU64(f.sp[:], uint64(lpn))
	return f.sp[:]
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Write services a host page write with the utilization-driven phase policy.
func (f *FTL) Write(lpn ftl.LPN, now sim.Time, util float64) (sim.Time, error) {
	chip := f.rr
	f.rr = (f.rr + 1) % f.dev.Geometry().Chips()
	var err error
	gcStart := now
	now, err = f.foregroundGC(chip, now)
	if err != nil {
		return now, err
	}
	if now > gcStart {
		f.ctrBlameGC.Add(int64(now - gcStart))
	}
	level := f.chooseLevel(chip, util)
	done, err := f.programAt(chip, level, lpn, f.token(lpn), f.spare(lpn), now, false)
	if err != nil {
		return now, err
	}
	f.st.HostWrites++
	return done, nil
}

// Read services a host page read.
func (f *FTL) Read(lpn ftl.LPN, now sim.Time) (sim.Time, error) {
	ppn, ok := f.m.Lookup(lpn)
	if !ok {
		return now, fmt.Errorf("%w: %d", ftl.ErrUnmapped, lpn)
	}
	done, err := f.dev.ReadInto(f.addrOf(ppn), &f.buf, now)
	if err != nil {
		return now, err
	}
	f.st.HostReads++
	return done, nil
}

// Trim invalidates a logical page.
func (f *FTL) Trim(lpn ftl.LPN, now sim.Time) (sim.Time, error) {
	if f.m.Invalidate(lpn) {
		f.st.HostTrims++
	}
	return now, nil
}

// chooseLevel picks the program phase for a host write: level 0 while a
// high-utilization burst has budget, the deepest feedable phase when the
// buffer is sleepy, and a rotation over all phases in between.
func (f *FTL) chooseLevel(chip int, util float64) int {
	cs := &f.chips[chip]
	levels := f.dev.Geometry().Levels
	deepest := f.deepestAvailable(chip)
	if deepest == 0 {
		return 0 // nothing queued beyond phase 0 (footnote-1 corner case)
	}
	if f.fastBudget(chip) <= 0 {
		return deepest
	}
	switch {
	case util > f.params.UHigh:
		if f.q > 0 {
			return 0
		}
	case util < f.params.ULow:
		return deepest
	}
	// Rotate across all phases with work available.
	for i := 0; i < levels; i++ {
		cs.toggle = (cs.toggle + 1) % levels
		if cs.toggle == 0 || f.phaseAvailable(chip, cs.toggle) {
			return cs.toggle
		}
	}
	return 0
}

// phaseAvailable reports whether phase l (l >= 1) has an active block or a
// queued one.
func (f *FTL) phaseAvailable(chip, l int) bool {
	cs := &f.chips[chip]
	return cs.phases[l].blk != -1 || cs.queues[l].Len() > 0
}

// deepestAvailable returns the highest-index phase with work, or 0.
func (f *FTL) deepestAvailable(chip int) int {
	for l := f.dev.Geometry().Levels - 1; l >= 1; l-- {
		if f.phaseAvailable(chip, l) {
			return l
		}
	}
	return 0
}

// fastBudget is the level-0 capacity available without eating the reserve.
func (f *FTL) fastBudget(chip int) int {
	cs := &f.chips[chip]
	w := f.dev.Geometry().WordLinesPerBlock
	budget := 0
	if cs.phases[0].blk != -1 {
		budget += w - cs.phases[0].pos
	}
	if spare := f.pools[chip].FreeCount() - f.cfg.MinFreeBlocksPerChip - 1; spare > 0 {
		budget += spare * w
	}
	return budget
}
