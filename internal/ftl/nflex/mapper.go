package nflex

import (
	"fmt"

	"flexftl/internal/ftl"
	"flexftl/internal/nandn"
	"flexftl/internal/nlevel"
)

// mapper is the page-level mapping table over the n-level geometry; a small
// sibling of ftl.Mapper (which is typed to the 2-bit device).
type mapper struct {
	g       nandn.Geometry
	logical int64
	l2p     []int64 // -1 unmapped
	p2l     []ftl.LPN
	valid   []int32 // per flat block
	// onValidChange mirrors ftl.Mapper's hook: it fires after every valid
	// mutation with the affected flat block, keeping the pools' victim
	// buckets coherent. Nil costs nothing.
	onValidChange func(flat int)
}

func newMapper(g nandn.Geometry, logical int64) *mapper {
	m := &mapper{
		g:       g,
		logical: logical,
		l2p:     make([]int64, logical),
		p2l:     make([]ftl.LPN, g.TotalPages()),
		valid:   make([]int32, g.TotalBlocks()),
	}
	for i := range m.l2p {
		m.l2p[i] = -1
	}
	for i := range m.p2l {
		m.p2l[i] = -1
	}
	return m
}

// ppnOf flattens a page address.
func (m *mapper) ppnOf(a nandn.PageAddr) int64 {
	pp := int64(m.g.PagesPerBlock())
	return (int64(a.Chip)*int64(m.g.BlocksPerChip)+int64(a.Block))*pp +
		int64(m.g.Scheme().Index(a.Page))
}

// addrOf inverts ppnOf.
func (m *mapper) addrOf(ppn int64) nandn.PageAddr {
	pp := int64(m.g.PagesPerBlock())
	idx := int(ppn % pp)
	flat := ppn / pp
	return nandn.PageAddr{
		Chip:  int(flat / int64(m.g.BlocksPerChip)),
		Block: int(flat % int64(m.g.BlocksPerChip)),
		Page:  m.g.Scheme().PageAt(idx),
	}
}

func (m *mapper) flatBlock(chip, blk int) int { return chip*m.g.BlocksPerChip + blk }

func (m *mapper) lookup(lpn ftl.LPN) (int64, bool) {
	if lpn < 0 || int64(lpn) >= m.logical {
		return -1, false
	}
	ppn := m.l2p[lpn]
	return ppn, ppn >= 0
}

func (m *mapper) lpnAt(ppn int64) (ftl.LPN, bool) {
	if ppn < 0 || ppn >= int64(len(m.p2l)) {
		return -1, false
	}
	lpn := m.p2l[ppn]
	return lpn, lpn >= 0
}

func (m *mapper) update(lpn ftl.LPN, ppn int64) {
	if lpn < 0 || int64(lpn) >= m.logical {
		panic(fmt.Sprintf("nflex: LPN %d out of range", lpn))
	}
	if m.p2l[ppn] != -1 {
		panic(fmt.Sprintf("nflex: PPN %d already mapped", ppn))
	}
	if old := m.l2p[lpn]; old >= 0 {
		m.p2l[old] = -1
		oldBlk := int(old) / m.g.PagesPerBlock()
		m.valid[oldBlk]--
		if m.onValidChange != nil {
			m.onValidChange(oldBlk)
		}
	}
	m.l2p[lpn] = ppn
	m.p2l[ppn] = lpn
	newBlk := int(ppn) / m.g.PagesPerBlock()
	m.valid[newBlk]++
	if m.onValidChange != nil {
		m.onValidChange(newBlk)
	}
}

func (m *mapper) invalidate(lpn ftl.LPN) bool {
	if lpn < 0 || int64(lpn) >= m.logical {
		return false
	}
	old := m.l2p[lpn]
	if old < 0 {
		return false
	}
	m.l2p[lpn] = -1
	m.p2l[old] = -1
	oldBlk := int(old) / m.g.PagesPerBlock()
	m.valid[oldBlk]--
	if m.onValidChange != nil {
		m.onValidChange(oldBlk)
	}
	return true
}

func (m *mapper) validCount(chip, blk int) int { return int(m.valid[m.flatBlock(chip, blk)]) }

// validPPNs lists the valid physical pages of a block from a resume cursor.
func (m *mapper) nextValid(chip, blk, fromIdx int) (int64, int, bool) {
	base := int64(m.flatBlock(chip, blk)) * int64(m.g.PagesPerBlock())
	for i := fromIdx; i < m.g.PagesPerBlock(); i++ {
		if m.p2l[base+int64(i)] >= 0 {
			return base + int64(i), i, true
		}
	}
	return -1, m.g.PagesPerBlock(), false
}

// spareBlockNo encodes the inverse mapping for parity pages.
func spareBlockNo(blk, level int) []byte {
	buf := make([]byte, 16)
	putU64(buf[0:8], uint64(blk))
	putU64(buf[8:16], uint64(level))
	return buf
}

func blockNoFromSpare(spare []byte) (blk, level int, ok bool) {
	if len(spare) < 16 {
		return -1, -1, false
	}
	return int(getU64(spare[0:8])), int(getU64(spare[8:16])), true
}

// pageFor builds a page address.
func pageFor(chip, blk, wl, level int) nandn.PageAddr {
	return nandn.PageAddr{Chip: chip, Block: blk, Page: nlevel.Page{WL: wl, Level: level}}
}
