package nflex

import (
	"flexftl/internal/nand"
	"flexftl/internal/nandn"
	"flexftl/internal/nlevel"
)

// The mapping table itself is the shared ftl.Mapper (constructed over this
// device's dimensions via ftl.NewMapperDims); what is n-level specific is
// only the address arithmetic between the mapper's flat PPN space and the
// device's (chip, block, word line, level) pages, which lives here.

// ppnOf flattens an n-level page address into the shared mapper's PPN space.
func ppnOf(g nandn.Geometry, a nandn.PageAddr) nand.PPN {
	pp := int64(g.PagesPerBlock())
	return nand.PPN((int64(a.Chip)*int64(g.BlocksPerChip)+int64(a.Block))*pp +
		int64(g.Scheme().Index(a.Page)))
}

// addrOf inverts ppnOf.
func addrOf(g nandn.Geometry, ppn nand.PPN) nandn.PageAddr {
	pp := int64(g.PagesPerBlock())
	idx := int(int64(ppn) % pp)
	flat := int64(ppn) / pp
	return nandn.PageAddr{
		Chip:  int(flat / int64(g.BlocksPerChip)),
		Block: int(flat % int64(g.BlocksPerChip)),
		Page:  g.Scheme().PageAt(idx),
	}
}

func (f *FTL) ppnOf(a nandn.PageAddr) nand.PPN    { return ppnOf(f.dev.Geometry(), a) }
func (f *FTL) addrOf(ppn nand.PPN) nandn.PageAddr { return addrOf(f.dev.Geometry(), ppn) }

// flatBlock is the mapper's flat block index for a chip-local block.
func (f *FTL) flatBlock(chip, blk int) int {
	return f.m.FlatBlock(nand.BlockAddr{Chip: chip, Block: blk})
}

// spareBlockNo encodes the inverse mapping for parity pages.
func spareBlockNo(blk, level int) []byte {
	buf := make([]byte, 16)
	putU64(buf[0:8], uint64(blk))
	putU64(buf[8:16], uint64(level))
	return buf
}

func blockNoFromSpare(spare []byte) (blk, level int, ok bool) {
	if len(spare) < 16 {
		return -1, -1, false
	}
	return int(getU64(spare[0:8])), int(getU64(spare[8:16])), true
}

// pageFor builds a page address.
func pageFor(chip, blk, wl, level int) nandn.PageAddr {
	return nandn.PageAddr{Chip: chip, Block: blk, Page: nlevel.Page{WL: wl, Level: level}}
}
