package nflex

import (
	"fmt"

	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

// programAt writes one page in the requested phase, maintaining the nPO
// block life cycle: phase-0 blocks come from the free pool; completing
// phase i writes that phase's parity page and queues the block for phase
// i+1; completing the final phase moves it to the full pool and retires its
// parities.
func (f *FTL) programAt(chip, level int, lpn ftl.LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	g := f.dev.Geometry()
	cs := &f.chips[chip]

	// Feasibility fallbacks.
	if level == 0 && cs.phases[0].blk == -1 && f.pools[chip].FreeCount() <= 1 {
		level = f.deepestAvailable(chip)
	}
	if level > 0 && !f.phaseAvailable(chip, level) {
		// Requested phase empty: fall to the deepest available, else fast.
		level = f.deepestAvailable(chip)
	}

	cur := &cs.phases[level]
	if cur.blk == -1 {
		if level == 0 {
			blk, ok := f.pools[chip].PopFree()
			if !ok {
				return now, fmt.Errorf("nflex: chip %d out of free blocks", chip)
			}
			cur.blk, cur.pos = blk, 0
			cs.pbuf[0].Reset()
		} else {
			if cs.queues[level].Len() == 0 {
				return now, fmt.Errorf("nflex: chip %d has no block queued for phase %d", chip, level)
			}
			cur.blk, cur.pos = cs.queues[level].PopFront(), 0
			cs.pbuf[level].Reset()
		}
	}

	addr := pageFor(chip, cur.blk, cur.pos, level)
	done, err := f.dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	f.m.Update(lpn, f.ppnOf(addr))
	if fromGC {
		f.st.GCCopies++
		if level == 0 {
			f.st.GCCopiesLSB++
		} else {
			f.st.GCCopiesMSB++
		}
	} else {
		f.byLevel[level]++
		if level == 0 {
			f.st.HostWritesLSB++
		} else {
			f.st.HostWritesMSB++
			// Reprogram penalty: a host write landed on a refinement page
			// instead of a fast level-0 page.
			f.ctrBlameReprogram.Add(f.reprogPenalty[level])
		}
	}
	if level == 0 {
		if !fromGC || f.inBGC {
			f.q--
		}
	} else if !fromGC || f.inBGC {
		if f.q < f.q0 {
			f.q++
		}
	}
	if level < g.Levels-1 {
		if err := cs.pbuf[level].Add(data); err != nil {
			return done, err
		}
	}
	// Deliberately no AckProgram: refinements stay power-vulnerable and the
	// phase parities plus Recover() are the defense — the point of the
	// design, exactly as in the 2-bit flexFTL.

	cur.pos++
	if cur.pos == g.WordLinesPerBlock {
		full := cur.blk
		cur.blk = -1
		if level < g.Levels-1 {
			// Phase complete: persist its parity, queue for the next phase.
			f.psnap = cs.pbuf[level].SnapshotInto(f.psnap)
			snapshot := f.psnap
			cs.pbuf[level].Reset()
			cs.queues[level+1].Push(full)
			preBackup := done
			done, err = f.writePhaseParity(chip, full, level, snapshot, done)
			if err != nil {
				return done, err
			}
			if done > preBackup {
				f.ctrBlameBackup.Add(int64(done - preBackup))
			}
		} else {
			// Final phase: block fully programmed; retire its parities.
			f.invalidateParities(chip, full)
			f.pools[chip].PushFull(full)
		}
	}
	return done, nil
}

// writePhaseParity stores one phase's parity page on a level-0 page of the
// chip's backup block, with (block, level) in the spare area.
func (f *FTL) writePhaseParity(chip, blk, level int, parityPage []byte, now sim.Time) (sim.Time, error) {
	cs := &f.chips[chip]
	bk := &cs.backup
	if bk.cur == -1 {
		b, ok := f.pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("nflex: chip %d has no free block for parity backups", chip)
		}
		bk.cur, bk.pos = b, 0
	}
	addr := pageFor(chip, bk.cur, bk.pos, 0)
	prevCause := f.dev.SetCause(obs.CauseBackup)
	done, err := f.dev.Program(addr, parityPage, spareBlockNo(blk, level), now)
	f.dev.SetCause(prevCause)
	if err != nil {
		return now, err
	}
	f.st.BackupWrites++
	flat := f.flatBlock(chip, blk)
	if f.refs[flat] == nil {
		f.refs[flat] = make(map[int]parityRef)
	}
	f.refs[flat][level] = parityRef{backupBlk: bk.cur, page: bk.pos}
	bk.live[bk.cur]++
	bk.pos++
	if bk.pos == f.dev.Geometry().WordLinesPerBlock {
		bk.retired = append(bk.retired, bk.cur)
		bk.cur = -1
	}
	return done, nil
}

// invalidateParities retires every phase parity of a completed block and
// recycles stale backup blocks.
func (f *FTL) invalidateParities(chip, blk int) {
	prevCause := f.dev.SetCause(obs.CauseBackup)
	defer f.dev.SetCause(prevCause)
	cs := &f.chips[chip]
	flat := f.flatBlock(chip, blk)
	for _, ref := range f.refs[flat] {
		cs.backup.live[ref.backupBlk]--
	}
	delete(f.refs, flat)
	kept := cs.backup.retired[:0]
	for _, b := range cs.backup.retired {
		if cs.backup.live[b] == 0 {
			delete(cs.backup.live, b)
			if _, err := f.dev.Erase(chip, b, 0); err != nil {
				panic(fmt.Sprintf("nflex: recycling backup block %d: %v", b, err))
			}
			f.st.Erases++
			f.pools[chip].PushFree(b)
			continue
		}
		kept = append(kept, b)
	}
	cs.backup.retired = kept
}

// gcAlloc relocates one page during GC: background GC consumes the deepest
// phases (raising q), foreground GC rotates.
func (f *FTL) gcAlloc(chip int, lpn ftl.LPN, data []byte, now sim.Time) (sim.Time, error) {
	level := f.deepestAvailable(chip)
	if !f.inBGC {
		cs := &f.chips[chip]
		cs.toggle = (cs.toggle + 1) % f.dev.Geometry().Levels
		if cs.toggle == 0 || f.phaseAvailable(chip, cs.toggle) {
			level = cs.toggle
		}
	}
	return f.programAt(chip, level, lpn, data, f.spare(lpn), now, true)
}

// collectVictim relocates a whole victim inline (foreground).
func (f *FTL) collectVictim(chip, victim int, now sim.Time) (sim.Time, error) {
	prevCause := f.dev.SetCause(obs.CauseGC)
	defer f.dev.SetCause(prevCause)
	f.pools[chip].TakeFull(victim)
	a := nand.BlockAddr{Chip: chip, Block: victim}
	idx := 0
	for {
		ppn, nextIdx, ok := f.m.NextValidFrom(a, idx)
		if !ok {
			break
		}
		idx = nextIdx
		lpn, ok := f.m.LPNAt(ppn)
		if !ok {
			continue
		}
		t, err := f.dev.ReadInto(f.addrOf(ppn), &f.buf, now)
		if err != nil {
			return now, fmt.Errorf("nflex: GC read: %w", err)
		}
		now, err = f.gcAlloc(chip, lpn, f.buf.Data, t)
		if err != nil {
			return now, err
		}
	}
	done, err := f.dev.Erase(chip, victim, now)
	if err != nil {
		return now, err
	}
	f.st.Erases++
	f.pools[chip].PushFree(victim)
	return done, nil
}

// foregroundGC reclaims inline only when phase-0 capacity is required and
// thin, or at the emergency reserve.
func (f *FTL) foregroundGC(chip int, now sim.Time) (sim.Time, error) {
	needsFast := f.deepestAvailable(chip) == 0
	reserve := f.cfg.MinFreeBlocksPerChip
	for (needsFast && f.pools[chip].FreeCount() < reserve+1) || f.pools[chip].FreeCount() < 2 {
		victim, ok := f.pools[chip].PickVictim()
		if !ok {
			break
		}
		var err error
		now, err = f.collectVictim(chip, victim, now)
		if err != nil {
			return now, err
		}
		f.st.ForegroundGCs++
	}
	return now, nil
}

// Idle runs incremental background GC (deepest-phase copies raise q).
func (f *FTL) Idle(now, until sim.Time) {
	f.inBGC = true
	prevCause := f.dev.SetCause(obs.CauseGC)
	defer func() {
		f.inBGC = false
		f.dev.SetCause(prevCause)
	}()
	g := f.dev.Geometry()
	t := f.dev.Timing()
	perPage := t.Read + 2*t.BusXfer + t.Prog[g.Levels-1]
	threshold := func() bool {
		return float64(f.TotalFreeBlocks()) < f.cfg.GCFreeFraction*float64(g.TotalBlocks())*1.5
	}
	for now < until {
		if !f.bg.active {
			if !threshold() {
				return
			}
			best, bestChip := -1, -1
			for c := range f.pools {
				if v, ok := f.pools[c].PickVictim(); ok {
					if bestChip == -1 || f.pools[c].FreeCount() < f.pools[bestChip].FreeCount() {
						best, bestChip = v, c
					}
				}
			}
			if bestChip == -1 {
				return
			}
			f.pools[bestChip].TakeFull(best)
			f.bg = bgState{chip: bestChip, blk: best, active: true}
			f.st.BackgroundGCs++
		}
		ppn, nextIdx, ok := f.m.NextValidFrom(nand.BlockAddr{Chip: f.bg.chip, Block: f.bg.blk}, f.bg.nextIdx)
		if !ok {
			done, err := f.dev.Erase(f.bg.chip, f.bg.blk, now)
			if err != nil {
				f.bg.active = false
				return
			}
			f.st.Erases++
			f.pools[f.bg.chip].PushFree(f.bg.blk)
			f.bg = bgState{}
			now = done
			continue
		}
		if now+perPage > until {
			return
		}
		f.bg.nextIdx = nextIdx
		lpn, ok := f.m.LPNAt(ppn)
		if !ok {
			continue
		}
		t2, err := f.dev.ReadInto(f.addrOf(ppn), &f.buf, now)
		if err != nil {
			f.pools[f.bg.chip].PushFull(f.bg.blk)
			f.bg = bgState{}
			return
		}
		now, err = f.gcAlloc(f.bg.chip, lpn, f.buf.Data, t2)
		if err != nil {
			panic(fmt.Sprintf("nflex: background relocation failed: %v", err))
		}
		// gcAlloc/programAt counted the copy already.
	}
}
