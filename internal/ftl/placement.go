package ftl

import (
	"fmt"

	"flexftl/internal/sim"
)

// PlacementPolicy is the kernel's fourth axis: it owns destination-block
// choice for data programs. The order policy still decides *which page* of an
// active block a program lands on and drives the block life cycle; placement
// decides *which active block* — by partitioning each chip's data path into
// streams (stream 0 is the cold/default stream) and by choosing which free
// block opens a stream's next active block. The interface is sealed —
// implementations come from SinglePlacementPolicy / HotColdPlacementPolicy /
// WearAwarePlacementPolicy.
//
// Contract, relied on by the epoch-sharded engine (internal/ssd/shard.go):
//   - classify(fromGC=true) returns 0 and mutates nothing, so GC relocations
//     always ride the cold stream and plan-time GC pre-runs stay byte-exact.
//   - classify(fromGC=false) may consult only the LPN's own arrival-time
//     history (never cross-LPN or cursor state), so the hot/cold decision is
//     identical whether the write executes serially or on a channel shard.
//   - pickFree reads only chip-local state (the chip's free pool and its
//     blocks' erase counts), so channel shards never couple through it.
type PlacementPolicy interface {
	init(k *Kernel) error
	// streams is the number of data streams per chip (1 = today's behavior).
	streams() int
	// classify routes one data program to a stream index in [0, streams()).
	classify(k *Kernel, lpn LPN, now sim.Time, fromGC bool) int
	// pickFree chooses the free block that opens the stream's next active
	// block on the chip (ok false when the pool is empty).
	pickFree(k *Kernel, chip, stream int) (int, bool)
}

// SinglePlacementPolicy returns the default placement: one stream, free
// blocks consumed in FIFO order — byte-exact with the kernel before the
// placement axis existed (the equivalence goldens pin this).
func SinglePlacementPolicy() PlacementPolicy { return placeSingle{} }

type placeSingle struct{}

func (placeSingle) init(*Kernel) error { return nil }
func (placeSingle) streams() int       { return 1 }
func (placeSingle) classify(*Kernel, LPN, sim.Time, bool) int {
	return 0
}
func (placeSingle) pickFree(k *Kernel, chip, stream int) (int, bool) {
	return k.Pools[chip].PopFree()
}

// HotColdParams tunes the write-temperature learner shared by the hot/cold
// and wear-aware placements.
type HotColdParams struct {
	// HotThreshold is the decayed per-LPN write count at or above which a
	// write routes to the hot stream.
	HotThreshold uint32
	// HalfLife is the virtual-time interval over which a cold LPN's write
	// count halves (0 disables decay).
	HalfLife sim.Time
}

// DefaultHotColdParams returns the tuning the registry's hot/cold schemes
// use: an LPN is hot after its second write inside a three-second half-life.
// Under the Zipf workloads that captures most of the distribution's head
// (re-written within a burst or two) while one-shot writes decay back to
// cold; the placement sweep picked it over tighter settings, which left too
// much of the overwrite traffic in the cold stream to pay for the second
// stream's captive blocks.
func DefaultHotColdParams() HotColdParams {
	return HotColdParams{HotThreshold: 2, HalfLife: 3 * sim.Second}
}

// Validate rejects unusable parameter combinations.
func (p HotColdParams) Validate() error {
	if p.HotThreshold < 1 {
		return fmt.Errorf("ftl: hot/cold threshold %d < 1", p.HotThreshold)
	}
	if p.HalfLife < 0 {
		return fmt.Errorf("ftl: hot/cold half-life %d < 0", p.HalfLife)
	}
	return nil
}

// heatEntry is one LPN's decaying write counter.
type heatEntry struct {
	count uint32
	stamp sim.Time // virtual time the count was last decayed to
}

// heatTable learns per-LPN write frequency with lazily-decayed counters. It
// is a flat slice, not a map: channel shards of one run touch disjoint LPNs
// inside an epoch (planner rule R1), so concurrent touches land on distinct
// elements and the table needs no lock.
type heatTable struct {
	p   HotColdParams
	ent []heatEntry
}

func (h *heatTable) init(k *Kernel) error {
	if err := h.p.Validate(); err != nil {
		return err
	}
	h.ent = make([]heatEntry, k.LogicalPages())
	return nil
}

// touch decays the LPN's counter to now, counts the write, and returns the
// updated count. Decay is whole halvings of the elapsed half-lives, so the
// result depends only on the LPN's own write-arrival history — never on when
// other LPNs were written — which keeps classification shard-deterministic.
func (h *heatTable) touch(lpn LPN, now sim.Time) uint32 {
	e := &h.ent[lpn]
	if h.p.HalfLife > 0 && now > e.stamp {
		halvings := (now - e.stamp) / h.p.HalfLife
		if halvings > 0 {
			if halvings >= 32 {
				e.count = 0
			} else {
				e.count >>= uint(halvings)
			}
			e.stamp += halvings * h.p.HalfLife
		}
	}
	if e.count < ^uint32(0) {
		e.count++
	}
	return e.count
}

// hotColdStreams is the stream layout shared by the temperature placements.
const (
	streamCold = 0
	streamHot  = 1
)

// HotColdPlacementPolicy returns two-stream temperature separation: writes of
// frequently-updated LPNs go to a per-chip hot active block, the rest — and
// every GC relocation — to the cold one. Segregating short-lived data means
// hot blocks die almost fully invalid (cheap GC victims) while cold blocks
// stop being collected over and over, which lowers write amplification under
// skewed workloads (Choi & Jung's data-longevity argument).
func HotColdPlacementPolicy(p HotColdParams) PlacementPolicy {
	return &placeHotCold{heat: heatTable{p: p}}
}

type placeHotCold struct {
	heat heatTable
}

func (pl *placeHotCold) init(k *Kernel) error { return pl.heat.init(k) }
func (pl *placeHotCold) streams() int         { return 2 }

func (pl *placeHotCold) classify(k *Kernel, lpn LPN, now sim.Time, fromGC bool) int {
	if fromGC {
		// Relocations are data that survived a whole block lifetime — cold by
		// demonstration. Not counting them also keeps GC pre-runs exact.
		return streamCold
	}
	if pl.heat.touch(lpn, now) >= pl.heat.p.HotThreshold {
		return streamHot
	}
	return streamCold
}

func (pl *placeHotCold) pickFree(k *Kernel, chip, stream int) (int, bool) {
	return k.Pools[chip].PopFree()
}

// WearAwarePlacementPolicy returns temperature separation plus wear-directed
// block choice: the hot stream (short-lived data, frequent erases ahead)
// opens the *least*-worn free block, the cold stream the *most*-worn one —
// parking long-lived data on tired blocks so future erases concentrate on
// healthy ones (Boukhobza et al.'s wear-leveling-by-placement). Stream
// layout and classification are identical to HotColdPlacementPolicy.
func WearAwarePlacementPolicy(p HotColdParams) PlacementPolicy {
	return &placeWearAware{placeHotCold{heat: heatTable{p: p}}}
}

type placeWearAware struct {
	placeHotCold
}

func (pl *placeWearAware) pickFree(k *Kernel, chip, stream int) (int, bool) {
	return k.Pools[chip].PopFreeWorn(func(blk int) int {
		return k.EraseCountOf(chip, blk)
	}, stream == streamCold)
}
