package ftl

import (
	"testing"
	"testing/quick"

	"flexftl/internal/nand"
	"flexftl/internal/rng"
)

func testMapper(t *testing.T) (*Mapper, nand.Geometry) {
	t.Helper()
	g := nand.TestGeometry()
	return NewMapper(g, int64(g.TotalPages()/2)), g
}

func TestNewMapperPanicsOnBadSize(t *testing.T) {
	g := nand.TestGeometry()
	for _, n := range []int64{0, -1, int64(g.TotalPages()) + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("logicalPages=%d accepted", n)
				}
			}()
			NewMapper(g, n)
		}()
	}
}

func TestMapperUpdateLookup(t *testing.T) {
	m, _ := testMapper(t)
	if _, ok := m.Lookup(5); ok {
		t.Error("unmapped LPN resolves")
	}
	old := m.Update(5, 100)
	if old != nand.InvalidPPN {
		t.Errorf("first update superseded %v", old)
	}
	ppn, ok := m.Lookup(5)
	if !ok || ppn != 100 {
		t.Errorf("Lookup = %v,%v", ppn, ok)
	}
	if lpn, ok := m.LPNAt(100); !ok || lpn != 5 {
		t.Errorf("LPNAt = %v,%v", lpn, ok)
	}
	if m.Mapped() != 1 {
		t.Errorf("Mapped = %d", m.Mapped())
	}
	// Overwrite invalidates the old PPN.
	old = m.Update(5, 200)
	if old != 100 {
		t.Errorf("superseded = %v, want 100", old)
	}
	if _, ok := m.LPNAt(100); ok {
		t.Error("stale PPN still valid")
	}
	if m.Mapped() != 1 {
		t.Errorf("Mapped after overwrite = %d", m.Mapped())
	}
}

func TestMapperValidCounts(t *testing.T) {
	m, g := testMapper(t)
	perBlock := g.PagesPerBlock()
	blk0 := nand.BlockAddr{Chip: 0, Block: 0}
	// Fill block 0 with LPNs 0..perBlock-1.
	for i := 0; i < perBlock; i++ {
		m.Update(LPN(i), nand.PPN(i))
	}
	if m.ValidCount(blk0) != perBlock {
		t.Errorf("valid = %d, want %d", m.ValidCount(blk0), perBlock)
	}
	// Rewriting half of them elsewhere drops the count.
	base := nand.PPN(int64(perBlock))
	for i := 0; i < perBlock/2; i++ {
		m.Update(LPN(i), base+nand.PPN(i))
	}
	if m.ValidCount(blk0) != perBlock/2 {
		t.Errorf("valid after overwrite = %d, want %d", m.ValidCount(blk0), perBlock/2)
	}
	pages := m.ValidPages(blk0)
	if len(pages) != perBlock/2 {
		t.Errorf("ValidPages = %d entries", len(pages))
	}
}

func TestMapperInvalidate(t *testing.T) {
	m, _ := testMapper(t)
	m.Update(7, 42)
	if !m.Invalidate(7) {
		t.Error("Invalidate of mapped LPN returned false")
	}
	if m.Invalidate(7) {
		t.Error("double Invalidate returned true")
	}
	if m.Invalidate(-1) || m.Invalidate(1<<40) {
		t.Error("out-of-range Invalidate returned true")
	}
	if _, ok := m.Lookup(7); ok {
		t.Error("invalidated LPN still resolves")
	}
	if m.Mapped() != 0 {
		t.Errorf("Mapped = %d", m.Mapped())
	}
}

func TestMapperDoubleMapPPNPanics(t *testing.T) {
	m, _ := testMapper(t)
	m.Update(1, 10)
	defer func() {
		if recover() == nil {
			t.Error("mapping two LPNs to one PPN did not panic")
		}
	}()
	m.Update(2, 10)
}

func TestMapperClearBlockPanicsOnValidPages(t *testing.T) {
	m, _ := testMapper(t)
	m.Update(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("ClearBlock with valid pages did not panic")
		}
	}()
	m.ClearBlock(nand.BlockAddr{Chip: 0, Block: 0})
}

func TestFlatBlockRoundTrip(t *testing.T) {
	m, g := testMapper(t)
	for chip := 0; chip < g.Chips(); chip++ {
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			a := nand.BlockAddr{Chip: chip, Block: blk}
			if m.BlockOfFlat(m.FlatBlock(a)) != a {
				t.Fatalf("flat round trip failed for %v", a)
			}
		}
	}
}

// Property: after any sequence of updates/invalidates, the sum of per-block
// valid counts equals Mapped(), and every l2p entry round-trips through p2l.
func TestMapperConsistencyProperty(t *testing.T) {
	g := nand.TestGeometry()
	f := func(seed uint64) bool {
		src := rng.New(seed)
		logical := int64(g.TotalPages() / 2)
		m := NewMapper(g, logical)
		nextPPN := 0
		for op := 0; op < 500 && nextPPN < g.TotalPages(); op++ {
			lpn := LPN(src.Int63n(logical))
			if src.Bool(0.85) {
				m.Update(lpn, nand.PPN(nextPPN))
				nextPPN++
			} else {
				m.Invalidate(lpn)
			}
		}
		var total int64
		for flat := 0; flat < g.TotalBlocks(); flat++ {
			total += int64(m.ValidCount(m.BlockOfFlat(flat)))
		}
		if total != m.Mapped() {
			return false
		}
		for lpn := LPN(0); lpn < LPN(logical); lpn++ {
			if ppn, ok := m.Lookup(lpn); ok {
				back, ok2 := m.LPNAt(ppn)
				if !ok2 || back != lpn {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFreePool(t *testing.T) {
	p := NewFreePool(0, 4)
	if p.FreeCount() != 4 || p.FullCount() != 0 {
		t.Fatal("fresh pool wrong")
	}
	b, ok := p.PopFree()
	if !ok || b != 0 {
		t.Fatalf("PopFree = %d,%v", b, ok)
	}
	p.PushFull(b)
	if p.FullCount() != 1 {
		t.Error("full count wrong")
	}
	p.TakeFull(b)
	p.PushFree(b)
	if p.FreeCount() != 4 {
		t.Error("free count wrong after recycle")
	}
	for i := 0; i < 4; i++ {
		if _, ok := p.PopFree(); !ok {
			t.Fatal("pool exhausted early")
		}
	}
	if _, ok := p.PopFree(); ok {
		t.Error("empty pool popped")
	}
}

func TestTakeFullPanicsOnMissing(t *testing.T) {
	p := NewFreePool(0, 2)
	defer func() {
		if recover() == nil {
			t.Error("TakeFull of absent block did not panic")
		}
	}()
	p.TakeFull(99)
}

func TestPickVictimGreedy(t *testing.T) {
	g := nand.TestGeometry()
	m := NewMapper(g, int64(g.TotalPages()/2))
	p := NewFreePool(0, g.BlocksPerChip)
	// Block 0: all valid. Block 1: half valid. Block 2: empty (all invalid).
	perBlock := g.PagesPerBlock()
	b0, _ := p.PopFree()
	b1, _ := p.PopFree()
	b2, _ := p.PopFree()
	lpn := LPN(0)
	fill := func(blk, valid int) {
		base := nand.PPN(int64(blk) * int64(perBlock))
		for i := 0; i < valid; i++ {
			m.Update(lpn, base+nand.PPN(i))
			lpn++
		}
	}
	fill(b0, perBlock)
	fill(b1, perBlock/2)
	fill(b2, 0)
	p.Bind(perBlock, func(blk int) int {
		return m.ValidCount(nand.BlockAddr{Chip: 0, Block: blk})
	})
	m.SetValidHook(func(flat int) { p.NoteValidChange(flat) })
	p.PushFull(b0)
	p.PushFull(b1)
	p.PushFull(b2)
	v, ok := p.PickVictim()
	if !ok || v != b2 {
		t.Errorf("victim = %d,%v, want block %d (all invalid)", v, ok, b2)
	}
	// After taking b2, the half-valid block is next.
	p.TakeFull(b2)
	v, ok = p.PickVictim()
	if !ok || v != b1 {
		t.Errorf("victim = %d,%v, want block %d", v, ok, b1)
	}
	// A pool with only fully-valid blocks yields no victim.
	p.TakeFull(b1)
	if v, ok := p.PickVictim(); ok {
		t.Errorf("fully-valid block chosen as victim: %d", v)
	}
}

func TestPickVictimCostBenefit(t *testing.T) {
	g := nand.TestGeometry()
	m := NewMapper(g, int64(g.TotalPages()/2))
	p := NewFreePool(0, g.BlocksPerChip)
	p.Policy = GCCostBenefit
	perBlock := g.PagesPerBlock()
	b0, _ := p.PopFree() // old block, moderately dirty
	b1, _ := p.PopFree() // young block, slightly dirtier
	lpn := LPN(0)
	fill := func(blk, valid int) {
		base := nand.PPN(int64(blk) * int64(perBlock))
		for i := 0; i < valid; i++ {
			m.Update(lpn, base+nand.PPN(i))
			lpn++
		}
	}
	fill(b0, perBlock/2)   // 50% invalid
	fill(b1, perBlock/2-1) // slightly more invalid
	p.Bind(perBlock, func(blk int) int {
		return m.ValidCount(nand.BlockAddr{Chip: 0, Block: blk})
	})
	m.SetValidHook(func(flat int) { p.NoteValidChange(flat) })
	p.PushFull(b0)
	// Age b0 by pushing/taking unrelated blocks to advance the clock.
	for i := 0; i < 50; i++ {
		bx, _ := p.PopFree()
		p.PushFull(bx)
		p.TakeFull(bx)
		p.PushFree(bx)
	}
	p.PushFull(b1)
	v, ok := p.PickVictim()
	if !ok || v != b0 {
		t.Errorf("cost-benefit picked %d, want the aged block %d", v, b0)
	}
	// Greedy would pick the dirtier young block.
	p.Policy = GCGreedy
	v, ok = p.PickVictim()
	if !ok || v != b1 {
		t.Errorf("greedy picked %d, want the dirtiest block %d", v, b1)
	}
}

func TestGCPolicyString(t *testing.T) {
	if GCGreedy.String() != "greedy" || GCCostBenefit.String() != "cost-benefit" {
		t.Error("policy names wrong")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{HostWrites: 10, GCCopies: 5, BackupWrites: 5}
	if s.TotalPrograms() != 20 {
		t.Errorf("TotalPrograms = %d", s.TotalPrograms())
	}
	if s.WriteAmplification() != 2.0 {
		t.Errorf("WA = %v", s.WriteAmplification())
	}
	if (Stats{}).WriteAmplification() != 0 {
		t.Error("WA of zero stats != 0")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{OPFraction: 0, GCFreeFraction: 0.1, MinFreeBlocksPerChip: 1},
		{OPFraction: 0.95, GCFreeFraction: 0.1, MinFreeBlocksPerChip: 1},
		{OPFraction: 0.1, GCFreeFraction: 0, MinFreeBlocksPerChip: 1},
		{OPFraction: 0.1, GCFreeFraction: 1.5, MinFreeBlocksPerChip: 1},
		{OPFraction: 0.1, GCFreeFraction: 0.1, MinFreeBlocksPerChip: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestTokenHelpers(t *testing.T) {
	g := nand.TestGeometry()
	dev, err := nand.NewDevice(nand.Config{Geometry: g, Timing: nand.DefaultTiming()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBase(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Token returns a reusable scratch buffer, so capture each value as a
	// string before generating the next token.
	tok1 := string(b.Token(42))
	tok2 := string(b.Token(42))
	if tok1 == tok2 {
		t.Error("tokens for successive writes identical (sequence not advancing)")
	}
	if lpn, ok := TokenLPN([]byte(tok1)); !ok || lpn != 42 {
		t.Errorf("TokenLPN = %v,%v", lpn, ok)
	}
	if _, ok := TokenLPN([]byte{1}); ok {
		t.Error("short token decoded")
	}
	sp := SpareForLPN(123)
	if lpn, ok := LPNFromSpare(sp); !ok || lpn != 123 {
		t.Errorf("LPNFromSpare = %v,%v", lpn, ok)
	}
	if _, ok := LPNFromSpare(nil); ok {
		t.Error("nil spare decoded")
	}
}
