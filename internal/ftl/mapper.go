package ftl

import (
	"fmt"

	"flexftl/internal/nand"
)

// Mapper is the page-level mapping table: LPN -> PPN with the inverse map
// and per-block valid-page accounting garbage collection needs. It is
// geometry-agnostic — only block/page dimensions matter — so the same type
// serves the 2-bit MLC kernel and the n-level nflex FTL.
type Mapper struct {
	blocksPerChip int
	pagesPerBlock int
	l2p           []nand.PPN // logical to physical; InvalidPPN when unmapped
	p2l           []LPN      // physical to logical; -1 when free/invalid
	validCount    []int32    // valid pages per flat block
	mapped        int64      // currently mapped logical pages
	// onValidChange, when set, fires after every validCount mutation with
	// the affected flat block — the mapper→pool notification keeping the
	// GC victim index coherent. Nil (standalone mappers) costs nothing.
	onValidChange func(flatBlock int)
	// logging marks a shard-mode view: Update defers its mutation into log
	// instead of touching the shared tables (see logView).
	logging bool
	log     []mapLogEntry
}

// mapLogEntry records one deferred Update in a shard-mode mapper view.
type mapLogEntry struct {
	lpn LPN
	ppn nand.PPN
}

// logView returns a shard-mode view of the mapper: reads (Lookup, LPNAt,
// ValidCount, page scans) see the pre-epoch state through the shared tables,
// while Update appends to a private per-view log instead of mutating,
// returning the pre-epoch mapping of the LPN. The epoch barrier replays the
// logs on the real mapper in deterministic global order. The returned "old"
// PPN is exact only because epoch formation forbids two ops on the same LPN
// within an epoch.
func (m *Mapper) logView() *Mapper {
	v := *m
	v.logging = true
	v.log = nil
	v.onValidChange = nil
	return &v
}

// resetLog clears a view's deferred-update log for the next epoch, keeping
// its capacity.
func (m *Mapper) resetLog() { m.log = m.log[:0] }

// SetValidHook registers the valid-count change notification (nil detaches).
func (m *Mapper) SetValidHook(fn func(flatBlock int)) { m.onValidChange = fn }

// NewMapper builds a mapper for logicalPages host pages over the geometry.
func NewMapper(g nand.Geometry, logicalPages int64) *Mapper {
	return NewMapperDims(g.Chips(), g.BlocksPerChip, g.PagesPerBlock(), logicalPages)
}

// NewMapperDims builds a mapper from raw dimensions — the device-agnostic
// constructor n-level FTLs use (their geometry type differs, the mapping
// arithmetic does not).
func NewMapperDims(chips, blocksPerChip, pagesPerBlock int, logicalPages int64) *Mapper {
	totalBlocks := chips * blocksPerChip
	totalPages := int64(totalBlocks) * int64(pagesPerBlock)
	if logicalPages <= 0 || logicalPages > totalPages {
		panic(fmt.Sprintf("ftl: logical pages %d outside (0,%d]", logicalPages, totalPages))
	}
	m := &Mapper{
		blocksPerChip: blocksPerChip,
		pagesPerBlock: pagesPerBlock,
		l2p:           make([]nand.PPN, logicalPages),
		p2l:           make([]LPN, totalPages),
		validCount:    make([]int32, totalBlocks),
	}
	for i := range m.l2p {
		m.l2p[i] = nand.InvalidPPN
	}
	for i := range m.p2l {
		m.p2l[i] = -1
	}
	return m
}

// LogicalPages returns the host-visible page count.
func (m *Mapper) LogicalPages() int64 { return int64(len(m.l2p)) }

// Mapped returns how many logical pages currently have a mapping.
func (m *Mapper) Mapped() int64 { return m.mapped }

// blockOf returns the flat block index of a PPN.
func (m *Mapper) blockOf(ppn nand.PPN) int {
	return int(int64(ppn) / int64(m.pagesPerBlock))
}

// FlatBlock returns the flat index of a block address.
func (m *Mapper) FlatBlock(a nand.BlockAddr) int {
	return a.Chip*m.blocksPerChip + a.Block
}

// BlockOfFlat inverts FlatBlock.
func (m *Mapper) BlockOfFlat(flat int) nand.BlockAddr {
	return nand.BlockAddr{Chip: flat / m.blocksPerChip, Block: flat % m.blocksPerChip}
}

// Lookup returns the current physical page of an LPN.
func (m *Mapper) Lookup(lpn LPN) (nand.PPN, bool) {
	if lpn < 0 || int64(lpn) >= int64(len(m.l2p)) {
		return nand.InvalidPPN, false
	}
	ppn := m.l2p[lpn]
	return ppn, ppn != nand.InvalidPPN
}

// Update maps lpn to newPPN, invalidating any previous mapping. It returns
// the superseded PPN (InvalidPPN if none).
func (m *Mapper) Update(lpn LPN, newPPN nand.PPN) nand.PPN {
	if lpn < 0 || int64(lpn) >= int64(len(m.l2p)) {
		panic(fmt.Sprintf("ftl: LPN %d out of range [0,%d)", lpn, len(m.l2p)))
	}
	if newPPN < 0 || int64(newPPN) >= int64(len(m.p2l)) {
		panic(fmt.Sprintf("ftl: PPN %d out of range", newPPN))
	}
	if m.p2l[newPPN] != -1 {
		panic(fmt.Sprintf("ftl: PPN %d already holds LPN %d", newPPN, m.p2l[newPPN]))
	}
	old := m.l2p[lpn]
	if m.logging {
		// Shard mode: defer the mutation for the barrier replay. old is the
		// pre-epoch mapping, exact under the epoch's unique-LPN rule.
		m.log = append(m.log, mapLogEntry{lpn: lpn, ppn: newPPN})
		return old
	}
	if old != nand.InvalidPPN {
		m.p2l[old] = -1
		oldBlk := m.blockOf(old)
		m.validCount[oldBlk]--
		if m.onValidChange != nil {
			m.onValidChange(oldBlk)
		}
	} else {
		m.mapped++
	}
	m.l2p[lpn] = newPPN
	m.p2l[newPPN] = lpn
	newBlk := m.blockOf(newPPN)
	m.validCount[newBlk]++
	if m.onValidChange != nil {
		m.onValidChange(newBlk)
	}
	return old
}

// Invalidate drops the mapping of lpn (host trim). It reports whether a
// mapping existed.
func (m *Mapper) Invalidate(lpn LPN) bool {
	if lpn < 0 || int64(lpn) >= int64(len(m.l2p)) {
		return false
	}
	old := m.l2p[lpn]
	if old == nand.InvalidPPN {
		return false
	}
	m.l2p[lpn] = nand.InvalidPPN
	m.p2l[old] = -1
	oldBlk := m.blockOf(old)
	m.validCount[oldBlk]--
	m.mapped--
	if m.onValidChange != nil {
		m.onValidChange(oldBlk)
	}
	return true
}

// LPNAt returns the logical page stored at a physical page, if the page is
// valid.
func (m *Mapper) LPNAt(ppn nand.PPN) (LPN, bool) {
	if ppn < 0 || int64(ppn) >= int64(len(m.p2l)) {
		return -1, false
	}
	lpn := m.p2l[ppn]
	return lpn, lpn != -1
}

// ValidCount returns the number of valid pages in a block.
func (m *Mapper) ValidCount(a nand.BlockAddr) int {
	return int(m.validCount[m.FlatBlock(a)])
}

// ValidPages lists the valid physical pages of a block in page-index order.
func (m *Mapper) ValidPages(a nand.BlockAddr) []nand.PPN {
	return m.AppendValidPages(a, nil)
}

// AppendValidPages appends the valid physical pages of a block, in
// page-index order, to dst and returns it — the allocation-free variant the
// GC and recovery hot paths use with a reusable scratch slice.
func (m *Mapper) AppendValidPages(a nand.BlockAddr, dst []nand.PPN) []nand.PPN {
	base := nand.PPN(int64(m.FlatBlock(a)) * int64(m.pagesPerBlock))
	for i := 0; i < m.pagesPerBlock; i++ {
		ppn := base + nand.PPN(i)
		if m.p2l[ppn] != -1 {
			dst = append(dst, ppn)
		}
	}
	return dst
}

// FirstValidPage returns the lowest-index valid physical page of a block.
func (m *Mapper) FirstValidPage(a nand.BlockAddr) (nand.PPN, bool) {
	base := nand.PPN(int64(m.FlatBlock(a)) * int64(m.pagesPerBlock))
	for i := 0; i < m.pagesPerBlock; i++ {
		ppn := base + nand.PPN(i)
		if m.p2l[ppn] != -1 {
			return ppn, true
		}
	}
	return nand.InvalidPPN, false
}

// NextValidFrom scans a block for its next valid physical page at or after
// page index fromIdx, returning the page, the index to resume from next call,
// and whether one was found — the incremental-GC cursor walk.
func (m *Mapper) NextValidFrom(a nand.BlockAddr, fromIdx int) (nand.PPN, int, bool) {
	base := nand.PPN(int64(m.FlatBlock(a)) * int64(m.pagesPerBlock))
	for i := fromIdx; i < m.pagesPerBlock; i++ {
		ppn := base + nand.PPN(i)
		if m.p2l[ppn] != -1 {
			return ppn, i + 1, true
		}
	}
	return nand.InvalidPPN, m.pagesPerBlock, false
}

// StateHash returns an FNV-1a digest of the mapping state (every l2p entry
// followed by every per-block valid count) — the cheap fingerprint the
// equivalence guards compare across refactors instead of serializing whole
// tables.
func (m *Mapper) StateHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	for _, ppn := range m.l2p {
		mix(uint64(ppn))
	}
	for _, v := range m.validCount {
		mix(uint64(uint32(v)))
	}
	return h
}

// ClearBlock asserts a block holds no valid pages and is about to be erased.
// GC must have relocated everything first; anything else is a bug.
func (m *Mapper) ClearBlock(a nand.BlockAddr) {
	if n := m.ValidCount(a); n != 0 {
		panic(fmt.Sprintf("ftl: erasing block %v with %d valid pages", a, n))
	}
}
