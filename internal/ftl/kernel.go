package ftl

import (
	"fmt"

	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

// Kernel is the composable FTL engine: one write/read/trim/GC/idle machine
// parameterized by four policies. The order policy owns page ordering and
// the block life cycle, the backup strategy owns paired-page power-cut
// protection, the allocation policy owns the LSB/MSB preference of every
// program, and the placement policy owns destination-block choice (data
// streams and free-block selection). Every scheme the paper evaluates — and
// any hybrid — is a Kernel with a different policy tuple (see schemes.go and
// the registry).
type Kernel struct {
	*Base
	name      string
	ord       OrderPolicy
	bk        BackupStrategy
	alloc     AllocPolicy
	placement PlacementPolicy
	// retokenizeGC makes GC relocations carry a fresh sequence number so a
	// flash-scan rebuild can always tell the live copy from the
	// not-yet-erased original (flexFTL's choice; the FPS schemes relocate
	// payloads verbatim).
	retokenizeGC bool
	inBGC        bool            // inside a background-GC window (quota accounting)
	pred         *writePredictor // Section 6 extension (nil unless enabled)
}

var _ FTL = (*Kernel)(nil)

// KernelSpec bundles the policy tuple and the kernel-level switches a
// scheme constructor passes to NewKernel.
type KernelSpec struct {
	// Name identifies the scheme ("pageFTL", "flexFTL", ...).
	Name string
	// Order, Backup and Alloc are the three mandatory policies; use
	// NoBackupStrategy() and FixedAllocPolicy(PrefOrder, PrefOrder) for
	// schemes that don't care.
	Order  OrderPolicy
	Backup BackupStrategy
	Alloc  AllocPolicy
	// Place is the placement policy (nil = SinglePlacementPolicy, the
	// pre-placement-axis behavior).
	Place PlacementPolicy
	// RetokenizeGC gives GC relocations fresh sequence numbers (see
	// Kernel.retokenizeGC).
	RetokenizeGC bool
	// Predictive enables the EWMA future-write predictor that extends the
	// background collector's reclaim target (Section 6).
	Predictive bool
	// PredictorAlpha is the EWMA smoothing factor (default 0.3).
	PredictorAlpha float64
}

// NewKernel assembles an FTL from a policy tuple over the device. Policies
// initialize in placement, order, backup, allocation sequence — placement
// first because the order and backup policies size their per-stream state
// from placement.streams(); each may reject the device or configuration.
func NewKernel(dev *nand.Device, cfg Config, spec KernelSpec) (*Kernel, error) {
	if spec.Order == nil || spec.Backup == nil || spec.Alloc == nil {
		return nil, fmt.Errorf("ftl: kernel %q needs order, backup and allocation policies", spec.Name)
	}
	base, err := NewBase(dev, cfg)
	if err != nil {
		return nil, err
	}
	place := spec.Place
	if place == nil {
		place = SinglePlacementPolicy()
	}
	k := &Kernel{
		Base:         base,
		name:         spec.Name,
		ord:          spec.Order,
		bk:           spec.Backup,
		alloc:        spec.Alloc,
		placement:    place,
		retokenizeGC: spec.RetokenizeGC,
	}
	if err := k.placement.init(k); err != nil {
		return nil, err
	}
	if err := k.ord.init(k); err != nil {
		return nil, err
	}
	if err := k.bk.init(k); err != nil {
		return nil, err
	}
	if err := k.alloc.init(k); err != nil {
		return nil, err
	}
	if spec.Predictive {
		alpha := spec.PredictorAlpha
		if alpha <= 0 || alpha > 1 {
			alpha = 0.3
		}
		k.pred = newWritePredictor(alpha)
	}
	if base.relEnabled {
		// The per-block parity strategy can rebuild an ECC-lost LSB page
		// from its stripe; other strategies leave repairRead nil (losses are
		// detected, not masked).
		if bp, ok := k.bk.(*blockParity); ok {
			base.repairRead = bp.rebuildRead
		}
	}
	return k, nil
}

// Name identifies the scheme.
func (k *Kernel) Name() string { return k.name }

// Streams returns the placement policy's data-stream count per chip.
func (k *Kernel) Streams() int { return k.placement.streams() }

// Write services a host page write. util is the write-buffer utilization the
// allocation policy consumes (ignored by the fixed allocator).
func (k *Kernel) Write(lpn LPN, now sim.Time, util float64) (sim.Time, error) {
	return k.writeOn(k.NextChip(), lpn, now, util)
}

// Read services a host page read.
func (k *Kernel) Read(lpn LPN, now sim.Time) (sim.Time, error) {
	return k.ReadLPN(lpn, now)
}

// Idle offers the kernel a background window: incremental GC under the
// allocation policy's relocation preference, then the order policy's own
// idle work (the return-to-fast MSB drain). The inBGC latch makes the
// adaptive allocator credit these relocations to the quota q.
func (k *Kernel) Idle(now, until sim.Time) {
	k.inBGC = true
	defer func() { k.inBGC = false }()
	shouldRun := k.BGCWanted
	if k.pred != nil {
		// Section 6 extension: the idle window closes the active period and
		// the collector reclaims until the *predicted* next burst fits in
		// free fast capacity (on top of the base cushion).
		k.pred.PeriodEnd()
		shouldRun = func() bool {
			if k.BGCWanted() {
				return true
			}
			w := k.Dev.Geometry().LSBPagesPerBlock()
			freeLSB := float64(k.TotalFreeBlocks() * w)
			reserve := k.Cfg.GCFreeFraction * float64(k.Dev.Geometry().TotalBlocks()) * float64(w)
			return freeLSB < k.pred.PredictedPages()+reserve
		}
	}
	now = k.RunBackgroundGC(now, until, shouldRun, k.gcAlloc)
	now = k.relIdle(now, until)
	k.ord.idleDrain(k, now, until)
}

// gcAlloc is the relocation path the shared GC engine calls for every valid
// page it moves: the allocation policy picks the page type, the placement
// policy routes the stream (always cold, by contract), then the order policy
// places it.
func (k *Kernel) gcAlloc(chip int, lpn LPN, data, spare []byte, now sim.Time) (sim.Time, error) {
	pref := k.alloc.chooseGC(k, chip)
	stream := k.placement.classify(k, lpn, now, true)
	if k.retokenizeGC {
		// A fresh sequence number lets a flash-scan rebuild always tell the
		// live copy from the not-yet-erased original.
		data = k.Token(lpn)
	}
	return k.ord.program(k, chip, stream, pref, lpn, data, spare, now, true)
}

// reserveGC is the plain foreground-reclaim loop the FPS order policies use:
// collect victims until the chip holds its free reserve (or no victim
// remains).
func (k *Kernel) reserveGC(chip int, now sim.Time, reserve int) (sim.Time, error) {
	for k.Pools[chip].FreeCount() < reserve {
		victim, ok := k.Pools[chip].PickVictim()
		if !ok {
			break
		}
		var err error
		now, err = k.CollectVictim(chip, victim, now, k.gcAlloc)
		if err != nil {
			return now, err
		}
		k.St.ForegroundGCs++
	}
	return now, nil
}

// noteData splits the per-page-type counters for one data program.
func (k *Kernel) noteData(isLSB, fromGC bool) {
	switch {
	case isLSB && fromGC:
		k.St.GCCopiesLSB++
	case isLSB:
		k.St.HostWritesLSB++
	case fromGC:
		k.St.GCCopiesMSB++
	default:
		k.St.HostWritesMSB++
		// The reprogram penalty: this host write paid a slow (MSB) program
		// where a fast (LSB) page would have served, the two-phase/allocation
		// cost axis of the paper.
		k.ctrBlameReprogram.Add(k.reprogPenalty)
	}
}

// backupAfterLSB routes the backup strategy's per-LSB hook through the
// attribution layer: media ops it issues are charged to CauseBackup, and any
// completion-time extension beyond the data program is blamed on backup.
func (k *Kernel) backupAfterLSB(chip, stream int, data []byte, done sim.Time) (sim.Time, error) {
	prev := k.Dev.SetCauseChip(chip, obs.CauseBackup)
	ext, err := k.bk.afterLSB(k, chip, stream, data, done)
	k.Dev.SetCauseChip(chip, prev)
	if ext > done {
		k.ctrBlameBackup.Add(int64(ext - done))
	}
	return ext, err
}

// backupOnFastComplete is the CauseBackup-attributed wrapper around the
// fast-block-complete hook (the per-block parity write).
func (k *Kernel) backupOnFastComplete(chip, stream, fastBlk int, done sim.Time) (sim.Time, error) {
	prev := k.Dev.SetCauseChip(chip, obs.CauseBackup)
	ext, err := k.bk.onFastComplete(k, chip, stream, fastBlk, done)
	k.Dev.SetCauseChip(chip, prev)
	if ext > done {
		k.ctrBlameBackup.Add(int64(ext - done))
	}
	return ext, err
}

// backupOnSlowComplete is the CauseBackup-attributed wrapper around the
// slow-block-complete hook (parity invalidation + backup-block recycling;
// erases it triggers are media work, not host-visible stall).
func (k *Kernel) backupOnSlowComplete(chip, blk int) {
	prev := k.Dev.SetCauseChip(chip, obs.CauseBackup)
	k.bk.onSlowComplete(k, chip, blk)
	k.Dev.SetCauseChip(chip, prev)
}

// PageSize returns the data-page size in bytes (runner bandwidth input).
func (k *Kernel) PageSize() int { return k.Dev.Geometry().PageSizeBytes }

// Chips returns the chip count (runner track allocation).
func (k *Kernel) Chips() int { return k.Dev.Geometry().Chips() }

// --- Policy-state accessors -------------------------------------------------
//
// White-box tests and the recovery tooling inspect policy internals through
// these; each degrades to a neutral value when the mounted policy has no such
// state. Stream-indexed internals surface either aggregated (queue depths,
// block censuses) or per-stream via the *On variants; the plain accessors
// read stream 0 — exactly the pre-placement-axis state for single-stream
// schemes.

// Quota returns the adaptive allocator's current LSB budget q (0 when the
// fixed allocator is mounted).
func (k *Kernel) Quota() int64 {
	if a, ok := k.alloc.(*adaptiveAlloc); ok {
		return a.q
	}
	return 0
}

// InitialQuota returns q's starting value (0 for the fixed allocator).
func (k *Kernel) InitialQuota() int64 {
	if a, ok := k.alloc.(*adaptiveAlloc); ok {
		return a.q0
	}
	return 0
}

// SlowQueueLen returns the chip's slow block queue depth under two-phase
// ordering, summed over placement streams (0 otherwise).
func (k *Kernel) SlowQueueLen(chip int) int {
	o, ok := k.ord.(*twoPhase)
	if !ok {
		return 0
	}
	total := 0
	for s := range o.chips[chip].streams {
		total += o.chips[chip].streams[s].sbq.Len()
	}
	return total
}

// ActiveSlowBlock returns the stream-0 active slow block (the head of its
// slow block queue), or -1 when there is none.
func (k *Kernel) ActiveSlowBlock(chip int) int { return k.ActiveSlowBlockOn(chip, 0) }

// ActiveSlowBlockOn is ActiveSlowBlock for one placement stream.
func (k *Kernel) ActiveSlowBlockOn(chip, stream int) int {
	if o, ok := k.ord.(*twoPhase); ok {
		if st := &o.chips[chip].streams[stream]; st.sbq.Len() > 0 {
			return st.sbq.Front()
		}
	}
	return -1
}

// SlowQueueBlock returns the i-th block of the stream-0 slow block queue
// under two-phase ordering (-1 otherwise). Index 0 is the active slow block.
func (k *Kernel) SlowQueueBlock(chip, i int) int {
	if o, ok := k.ord.(*twoPhase); ok {
		return o.chips[chip].streams[0].sbq.At(i)
	}
	return -1
}

// ActiveSlowProgress returns how many MSB pages of the stream-0 active slow
// block have been programmed.
func (k *Kernel) ActiveSlowProgress(chip int) int { return k.ActiveSlowProgressOn(chip, 0) }

// ActiveSlowProgressOn is ActiveSlowProgress for one placement stream.
func (k *Kernel) ActiveSlowProgressOn(chip, stream int) int {
	if o, ok := k.ord.(*twoPhase); ok {
		return o.chips[chip].streams[stream].asbPos
	}
	return 0
}

// ActiveFastBlock returns the stream-0 active fast block under two-phase
// ordering, or -1 when there is none.
func (k *Kernel) ActiveFastBlock(chip int) int { return k.ActiveFastBlockOn(chip, 0) }

// ActiveFastBlockOn is ActiveFastBlock for one placement stream.
func (k *Kernel) ActiveFastBlockOn(chip, stream int) int {
	if o, ok := k.ord.(*twoPhase); ok {
		return o.chips[chip].streams[stream].afb
	}
	return -1
}

// ActiveFastProgress returns how many LSB pages of the stream-0 active fast
// block have been programmed.
func (k *Kernel) ActiveFastProgress(chip int) int { return k.ActiveFastProgressOn(chip, 0) }

// ActiveFastProgressOn is ActiveFastProgress for one placement stream.
func (k *Kernel) ActiveFastProgressOn(chip, stream int) int {
	if o, ok := k.ord.(*twoPhase); ok {
		if st := &o.chips[chip].streams[stream]; st.afb != -1 {
			return st.afbPos
		}
	}
	return 0
}

// BackupCurrentBlock returns the per-block parity strategy's open backup
// block on the chip, or -1 when none (or another strategy is mounted).
func (k *Kernel) BackupCurrentBlock(chip int) int {
	if b, ok := k.bk.(*blockParity); ok {
		return b.backup[chip].cur
	}
	return -1
}

// RetiredBackupBlocks returns how many filled backup blocks on the chip await
// recycling under the per-block parity strategy.
func (k *Kernel) RetiredBackupBlocks(chip int) int {
	if b, ok := k.bk.(*blockParity); ok {
		return len(b.backup[chip].retired)
	}
	return 0
}

// RetiredBackupBlockList returns a copy of the chip's retired parity backup
// blocks awaiting recycling (nil when another strategy is mounted).
func (k *Kernel) RetiredBackupBlockList(chip int) []int {
	if b, ok := k.bk.(*blockParity); ok {
		out := make([]int, 0, len(b.backup[chip].retired))
		for _, r := range b.backup[chip].retired {
			out = append(out, r.blk)
		}
		return out
	}
	return nil
}

// RetiredBackupFill returns how many parity pages were written into the
// chip's i-th retired backup block (-1 when out of range or another strategy
// is mounted). Full retirement yields WordLinesPerBlock; a crash-time seal
// can leave less.
func (k *Kernel) RetiredBackupFill(chip, i int) int {
	if b, ok := k.bk.(*blockParity); ok {
		if ret := b.backup[chip].retired; i >= 0 && i < len(ret) {
			return ret[i].fill
		}
	}
	return -1
}

// BackupRing returns the pair-parity strategy's current and previous backup
// blocks on the chip (-1, -1 when another strategy is mounted).
func (k *Kernel) BackupRing(chip int) (cur, prev int) {
	if b, ok := k.bk.(*pairParity); ok {
		return b.ring[chip].cur, b.ring[chip].prev
	}
	return -1, -1
}

// PoolHasMSBNext reports whether the FPS-pool order has an active slot
// waiting on an MSB page (false for other orders).
func (k *Kernel) PoolHasMSBNext(chip int) bool {
	if o, ok := k.ord.(*fpsPool); ok {
		return o.chipHasMSBNext(chip)
	}
	return false
}

// LSBReadySlots returns how many of the FPS-pool order's active slots will
// next program an LSB page (0 for other orders).
func (k *Kernel) LSBReadySlots(chip int) int {
	if o, ok := k.ord.(*fpsPool); ok {
		return o.lsbReadyCount(chip)
	}
	return 0
}

// BackupCoversMSB reports whether the mounted backup strategy makes MSB
// programs power-safe at issue time (the crash campaign asserts such schemes
// never present an open destructive window).
func (k *Kernel) BackupCoversMSB() bool { return k.bk.coversMSB() }

// LastMSB returns the chip's most recent MSB program under two-phase
// ordering: its LPN, the physical page it superseded (InvalidPPN if none),
// whether it was a GC relocation, and which placement stream issued it. ok
// is false for other orders or before the first MSB program. The record is
// per chip, not per stream: the device keeps at most one destructive MSB
// window per chip (a newer program supersedes the previous window), so only
// the newest MSB program is ever at risk.
func (k *Kernel) LastMSB(chip int) (lpn LPN, prev nand.PPN, fromGC bool, stream int, ok bool) {
	o, isTP := k.ord.(*twoPhase)
	if !isTP {
		return 0, nand.InvalidPPN, false, 0, false
	}
	ch := &o.chips[chip]
	if ch.lastMSBPrev == nand.InvalidPPN && ch.lastMSBLPN == 0 {
		// Heuristic for "no MSB program yet": every stream still sits at the
		// start of an empty slow phase.
		noMSB := true
		for s := range ch.streams {
			if ch.streams[s].asbPos != 0 || ch.streams[s].sbq.Len() != 0 {
				noMSB = false
				break
			}
		}
		if noMSB {
			return 0, nand.InvalidPPN, false, 0, false
		}
	}
	return ch.lastMSBLPN, ch.lastMSBPrev, ch.lastMSBGC, ch.lastMSBStream, true
}

// ParityRef locates the parity backup page protecting the given fast/slow
// block under the per-block parity strategy (ok false otherwise). Fault
// injection in the crash campaign uses it to corrupt a parity page and prove
// the invariants notice.
func (k *Kernel) ParityRef(chip, blk int) (backupBlk, page int, ok bool) {
	if b, isBP := k.bk.(*blockParity); isBP {
		if ref := b.refs[k.Map.FlatBlock(nand.BlockAddr{Chip: chip, Block: blk})]; ref.backupBlk != -1 {
			return ref.backupBlk, ref.page, true
		}
	}
	return -1, -1, false
}

// AccountBlocks is the chip's block census: free and full pool sizes, active
// data blocks held by the order policy (summed over placement streams),
// backup blocks held by the backup strategy, and the in-flight
// background-GC victim (0 or 1). The crash campaign asserts the five sum to
// BlocksPerChip (minus retired blocks) at every crash point — leaked blocks
// are recovery-path bugs.
func (k *Kernel) AccountBlocks(chip int) (free, full, active, backup, bg int) {
	free = k.Pools[chip].FreeCount()
	full = k.Pools[chip].FullCount()
	switch o := k.ord.(type) {
	case *fpsSingle:
		for _, cur := range o.active[chip] {
			if cur.blk != -1 {
				active++
			}
		}
	case *fpsPool:
		for _, cur := range o.active[chip] {
			if cur.blk != -1 {
				active++
			}
		}
	case *twoPhase:
		for s := range o.chips[chip].streams {
			st := &o.chips[chip].streams[s]
			if st.afb != -1 {
				active++
			}
			active += st.sbq.Len()
		}
	}
	switch b := k.bk.(type) {
	case *pairParity:
		if b.ring[chip].cur != -1 {
			backup++
		}
		if b.ring[chip].prev != -1 {
			backup++
		}
	case *blockParity:
		if b.backup[chip].cur != -1 {
			backup++
		}
		backup += len(b.backup[chip].retired)
	}
	if c, _, ok := k.BackgroundVictim(); ok && c == chip {
		bg++
	}
	return free, full, active, backup, bg
}
