package ftl

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/rel"
)

// BuildEnv carries everything a registered FTL constructor may need. Specs
// build their own device — the rule set an FTL requires (FPS vs RPS, MLC vs
// TLC) is part of the scheme, not the caller's business.
type BuildEnv struct {
	// Geometry of the device to simulate (MLC schemes; the TLC scheme uses
	// its own nandn geometry and ignores this).
	Geometry nand.Geometry
	// Config is the shared FTL configuration (over-provisioning, GC knobs).
	Config Config
	// Flex parameterizes the adaptive allocator for schemes that mount it.
	Flex FlexParams
	// Reliability, when non-nil, mounts the calibrated BER model on the
	// device the spec builds, so reads classify into clean / corrected-with-
	// retry / uncorrectable. Pair it with Config.Reliability to also enable
	// the kernel's responses.
	Reliability *rel.Config
}

// Spec describes one registered FTL: its name, the program-order scheme its
// device enforces, and a constructor.
type Spec struct {
	// Name is the registry key ("pageFTL", "flexFTL", "rtfFTL-adaptive", ...).
	Name string
	// Rules names the device rule set the scheme runs on ("FPS", "RPS", or a
	// device-specific label like "TLC-nPO").
	Rules string
	// Description is a one-line summary for -list output.
	Description string
	// Backup names the scheme's power-cut protection ("none", "pairParity",
	// "blockParity", or a device-specific label). The crash campaign derives
	// its invariant mode from it: parity-backed schemes must preserve every
	// acknowledged write across a power cut, "none" schemes must detect (not
	// mask) the loss.
	Backup string
	// Hybrid marks policy combinations that exist only as registry entries
	// (no paper counterpart); the ablation driver reports them separately.
	Hybrid bool
	// Placement names the scheme's placement policy when it is not the
	// single-stream default ("hotcold", "wearAware"; empty = "single").
	Placement string
	// IdleSpendsFree marks schemes whose idle work consumes capacity (the
	// return-to-fast padding); conformance tests relax free-space checks.
	IdleSpendsFree bool
	// New builds the FTL over a fresh device.
	New func(env BuildEnv) (Host, error)
}

var registry = struct {
	names []string
	specs map[string]Spec
}{specs: make(map[string]Spec)}

// Register adds a spec to the registry. It is meant to be called from init
// functions (the registry is not locked); registering a duplicate or an
// incomplete spec panics.
func Register(s Spec) {
	if s.Name == "" || s.New == nil {
		panic("ftl: Register needs a name and a constructor")
	}
	if _, dup := registry.specs[s.Name]; dup {
		panic(fmt.Sprintf("ftl: duplicate registration of %q", s.Name))
	}
	registry.names = append(registry.names, s.Name)
	registry.specs[s.Name] = s
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	s, ok := registry.specs[name]
	return s, ok
}

// Names returns all registered names in registration order.
func Names() []string {
	return append([]string(nil), registry.names...)
}

// Build constructs the named FTL over a fresh device.
func Build(name string, env BuildEnv) (Host, error) {
	s, ok := registry.specs[name]
	if !ok {
		return nil, fmt.Errorf("ftl: unknown scheme %q (have %v)", name, Names())
	}
	return s.New(env)
}

// mlcDevice builds the NAND device for an MLC scheme under the named rule
// set.
func mlcDevice(env BuildEnv, rules string) (*nand.Device, error) {
	var rs core.RuleSet
	switch rules {
	case "FPS":
		rs = core.FPS
	case "RPS":
		rs = core.RPS
	default:
		return nil, fmt.Errorf("ftl: unknown rule set %q", rules)
	}
	return nand.NewDevice(nand.Config{
		Geometry:    env.Geometry,
		Timing:      nand.DefaultTiming(),
		Rules:       rs,
		Reliability: env.Reliability,
	})
}

// mlcEntry wraps an MLC kernel constructor as a registry constructor.
func mlcEntry(rules string, build func(dev *nand.Device, env BuildEnv) (*Kernel, error)) func(BuildEnv) (Host, error) {
	return func(env BuildEnv) (Host, error) {
		dev, err := mlcDevice(env, rules)
		if err != nil {
			return nil, err
		}
		return build(dev, env)
	}
}

func init() {
	// The four FTLs of the paper's evaluation, in the paper's order.
	Register(Spec{
		Name:        "pageFTL",
		Backup:      "none",
		Rules:       "FPS",
		Description: "baseline FPS page mapping, no paired-page backup",
		New: mlcEntry("FPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			return NewPageFTL(dev, env.Config)
		}),
	})
	Register(Spec{
		Name:        "parityFTL",
		Backup:      "pairParity",
		Rules:       "FPS",
		Description: "FPS with XOR parity pre-backup per LSB pair",
		New: mlcEntry("FPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			return NewParityFTL(dev, env.Config)
		}),
	})
	Register(Spec{
		Name:           "rtfFTL",
		Backup:         "pairParity",
		Rules:          "FPS",
		Description:    "return-to-fast active-block pool with pair parity",
		IdleSpendsFree: true,
		New: mlcEntry("FPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			return NewRTFFTL(dev, env.Config)
		}),
	})
	Register(Spec{
		Name:        "flexFTL",
		Backup:      "blockParity",
		Rules:       "RPS",
		Description: "RPS two-phase ordering, block parity, adaptive u/q allocation",
		New: mlcEntry("RPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			return NewFlexFTL(dev, env.Config, env.Flex)
		}),
	})

	// Hybrids: policy combinations with no paper counterpart, possible only
	// because every scheme is a Kernel configuration. They quantify one
	// design axis each in the ablation driver.
	Register(Spec{
		Name:        "flexFTL-nobackup",
		Backup:      "none",
		Rules:       "RPS",
		Description: "flexFTL without parity backup (upper bound; unsafe under power cuts)",
		Hybrid:      true,
		New: mlcEntry("RPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			if err := env.Flex.Validate(); err != nil {
				return nil, err
			}
			return NewKernel(dev, env.Config, KernelSpec{
				Name:           "flexFTL-nobackup",
				Order:          TwoPhaseOrderPolicy(),
				Backup:         NoBackupStrategy(),
				Alloc:          AdaptiveAllocPolicy(env.Flex),
				RetokenizeGC:   true,
				Predictive:     env.Flex.PredictiveBGC,
				PredictorAlpha: env.Flex.PredictorAlpha,
			})
		}),
	})
	// Placement hybrids: the same flexFTL / pageFTL policy stacks writing
	// through two temperature streams per chip (satellites of the placement
	// axis). "hotcold" separates frequently-rewritten LPNs from cold data;
	// "wearAware" additionally steers cold data onto worn blocks.
	Register(Spec{
		Name:        "flexFTL-hotcold",
		Backup:      "blockParity",
		Rules:       "RPS",
		Description: "flexFTL with hot/cold stream separation per chip",
		Hybrid:      true,
		Placement:   "hotcold",
		New: mlcEntry("RPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			return NewFlexFTLPlaced(dev, env.Config, env.Flex, "flexFTL-hotcold",
				HotColdPlacementPolicy(DefaultHotColdParams()))
		}),
	})
	Register(Spec{
		Name:        "flexFTL-wearAware",
		Backup:      "blockParity",
		Rules:       "RPS",
		Description: "flexFTL hot/cold streams with wear-directed block choice",
		Hybrid:      true,
		Placement:   "wearAware",
		New: mlcEntry("RPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			return NewFlexFTLPlaced(dev, env.Config, env.Flex, "flexFTL-wearAware",
				WearAwarePlacementPolicy(DefaultHotColdParams()))
		}),
	})
	Register(Spec{
		Name:        "pageFTL-hotcold",
		Backup:      "none",
		Rules:       "FPS",
		Description: "pageFTL with hot/cold stream separation per chip",
		Hybrid:      true,
		Placement:   "hotcold",
		New: mlcEntry("FPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			return NewPageFTLPlaced(dev, env.Config, "pageFTL-hotcold",
				HotColdPlacementPolicy(DefaultHotColdParams()))
		}),
	})
	Register(Spec{
		Name:        "pageFTL-wearAware",
		Backup:      "none",
		Rules:       "FPS",
		Description: "pageFTL hot/cold streams with wear-directed block choice",
		Hybrid:      true,
		Placement:   "wearAware",
		New: mlcEntry("FPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			return NewPageFTLPlaced(dev, env.Config, "pageFTL-wearAware",
				WearAwarePlacementPolicy(DefaultHotColdParams()))
		}),
	})
	Register(Spec{
		Name:           "rtfFTL-adaptive",
		Backup:         "pairParity",
		Rules:          "FPS",
		Description:    "return-to-fast pool driven by the adaptive u/q allocator",
		Hybrid:         true,
		IdleSpendsFree: true,
		New: mlcEntry("FPS", func(dev *nand.Device, env BuildEnv) (*Kernel, error) {
			if err := env.Flex.Validate(); err != nil {
				return nil, err
			}
			return NewKernel(dev, env.Config, KernelSpec{
				Name:   "rtfFTL-adaptive",
				Order:  FPSPoolOrderPolicy(8),
				Backup: PairParityBackup(2),
				Alloc:  AdaptiveAllocPolicy(env.Flex),
			})
		}),
	})
}
