package ftl

import (
	"strings"
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

// gcHarness is a minimal FTL-like environment for exercising the shared GC
// engine directly: pages are placed sequentially (RPSfull order) on chip 0.
type gcHarness struct {
	b      *Base
	blk    int
	pos    int
	orders []core.Page
}

func newGCHarness(t *testing.T) *gcHarness {
	t.Helper()
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: core.RPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBase(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := &gcHarness{b: b, blk: -1, orders: core.RPSFullOrder(dev.Geometry().WordLinesPerBlock)}
	return h
}

// alloc is the relocation callback: sequential placement, no GC recursion.
func (h *gcHarness) alloc(chip int, lpn LPN, data, spare []byte, now sim.Time) (sim.Time, error) {
	if h.blk == -1 {
		blk, ok := h.b.Pools[0].PopFree()
		if !ok {
			panic("harness out of blocks")
		}
		h.blk, h.pos = blk, 0
	}
	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: 0, Block: h.blk}, Page: h.orders[h.pos]}
	done, err := h.b.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	h.b.Map.Update(lpn, h.b.Dev.Geometry().PPNOf(addr))
	h.pos++
	if h.pos == len(h.orders) {
		h.b.Pools[0].PushFull(h.blk)
		h.blk = -1
	}
	return done, nil
}

// writeSeq writes n distinct LPNs through alloc (host-side placement).
func (h *gcHarness) writeSeq(t *testing.T, start, n int, now sim.Time) sim.Time {
	t.Helper()
	for i := 0; i < n; i++ {
		var err error
		now, err = h.alloc(0, LPN(start+i), h.b.Token(LPN(start+i)), nil, now)
		if err != nil {
			t.Fatal(err)
		}
	}
	return now
}

func TestRunBackgroundGCCollectsFullyInvalidVictim(t *testing.T) {
	h := newGCHarness(t)
	g := h.b.Dev.Geometry()
	perBlock := g.PagesPerBlock()
	// Fill one block, then overwrite every LPN so it is fully invalid.
	now := h.writeSeq(t, 0, perBlock, 0)
	now = h.writeSeq(t, 0, perBlock, now)
	free0 := h.b.Pools[0].FreeCount()
	end := h.b.RunBackgroundGC(now, now+10*sim.Second, func() bool { return true }, h.alloc)
	if end <= now {
		t.Error("background GC consumed no virtual time")
	}
	if h.b.Pools[0].FreeCount() <= free0 {
		t.Errorf("no block reclaimed: free %d -> %d", free0, h.b.Pools[0].FreeCount())
	}
	if h.b.St.Erases == 0 || h.b.St.BackgroundGCs == 0 {
		t.Errorf("stats not updated: %+v", h.b.St)
	}
	// A fully invalid victim needs zero copies.
	if h.b.St.GCCopies != 0 {
		t.Errorf("fully invalid victim caused %d copies", h.b.St.GCCopies)
	}
}

// TestBackgroundGCTagsCauseGC: every device operation inside the shared GC
// engine — reads, relocation programs, the erase — is attributed to the GC
// cause, and the ambient cause is restored afterwards.
func TestBackgroundGCTagsCauseGC(t *testing.T) {
	h := newGCHarness(t)
	rec := obs.NewRecorder(obs.Options{})
	h.b.SetRecorder(rec)
	g := h.b.Dev.Geometry()
	perBlock := g.PagesPerBlock()
	now := h.writeSeq(t, 0, perBlock, 0)
	now = h.writeSeq(t, 0, perBlock/2, now)
	hostBusy := h.b.Dev.CauseBusy()[obs.CauseHost]
	if hostBusy == 0 {
		t.Fatal("host writes charged no host busy time")
	}
	h.b.RunBackgroundGC(now, now+10*sim.Second, func() bool { return true }, h.alloc)
	busy := h.b.Dev.CauseBusy()
	if busy[obs.CauseGC] == 0 {
		t.Error("background GC charged no gc busy time")
	}
	if busy[obs.CauseHost] != hostBusy {
		t.Errorf("host busy moved during GC: %v -> %v", hostBusy, busy[obs.CauseHost])
	}
	if h.b.Dev.Cause() != obs.CauseHost {
		t.Errorf("ambient cause after GC = %v, want CauseHost", h.b.Dev.Cause())
	}
	snap := rec.Registry().Snapshot()
	if got := snap.Counters[obs.BusyCounterName("nand", obs.CauseGC)]; got != int64(busy[obs.CauseGC]) {
		t.Errorf("nand.busy_us.gc counter = %d, array = %d", got, busy[obs.CauseGC])
	}
}

func TestRunBackgroundGCIncrementalResume(t *testing.T) {
	h := newGCHarness(t)
	g := h.b.Dev.Geometry()
	perBlock := g.PagesPerBlock()
	// Block with exactly half its pages invalid.
	now := h.writeSeq(t, 0, perBlock, 0)
	now = h.writeSeq(t, 0, perBlock/2, now)
	tm := h.b.Dev.Timing()
	perPage := tm.Read + 2*tm.BusXfer + tm.ProgMSB
	// Window for exactly two page relocations: the victim must stay active.
	end := h.b.RunBackgroundGC(now, now+2*perPage+1, func() bool { return true }, h.alloc)
	if !h.b.BackgroundVictimActive() {
		t.Fatal("victim not held across the window boundary")
	}
	copiesAfterFirst := h.b.St.GCCopies
	if copiesAfterFirst == 0 {
		t.Fatal("no relocation happened in the first window")
	}
	if copiesAfterFirst >= int64(perBlock/2) {
		t.Fatalf("first tiny window relocated everything (%d copies)", copiesAfterFirst)
	}
	// Second, generous window finishes the victim.
	h.b.RunBackgroundGC(end, end+10*sim.Second, func() bool { return true }, h.alloc)
	if h.b.BackgroundVictimActive() {
		t.Error("victim still active after a generous window")
	}
	if h.b.St.GCCopies != int64(perBlock/2) {
		t.Errorf("total copies = %d, want %d (the valid half)", h.b.St.GCCopies, perBlock/2)
	}
	if h.b.St.Erases != 1 {
		t.Errorf("erases = %d, want 1", h.b.St.Erases)
	}
	// Only one background invocation should be counted for one victim.
	if h.b.St.BackgroundGCs != 1 {
		t.Errorf("background GC invocations = %d, want 1", h.b.St.BackgroundGCs)
	}
}

func TestRunBackgroundGCStopsWhenNotWanted(t *testing.T) {
	h := newGCHarness(t)
	g := h.b.Dev.Geometry()
	now := h.writeSeq(t, 0, g.PagesPerBlock(), 0)
	now = h.writeSeq(t, 0, g.PagesPerBlock(), now)
	h.b.RunBackgroundGC(now, now+10*sim.Second, func() bool { return false }, h.alloc)
	if h.b.St.BackgroundGCs != 0 {
		t.Error("GC ran despite shouldRun() == false")
	}
}

func TestRunBackgroundGCAbandonsUnreadableVictim(t *testing.T) {
	h := newGCHarness(t)
	g := h.b.Dev.Geometry()
	perBlock := g.PagesPerBlock()
	now := h.writeSeq(t, 0, perBlock, 0)
	now = h.writeSeq(t, 0, perBlock/2, now)
	// Corrupt a still-valid page of the upcoming victim (block 0).
	victimPPN := nand.PPN(-1)
	for i := 0; i < perBlock; i++ {
		if _, ok := h.b.Map.LPNAt(nand.PPN(i)); ok {
			victimPPN = nand.PPN(i)
			break
		}
	}
	if victimPPN < 0 {
		t.Fatal("no valid page in block 0")
	}
	if err := h.b.Dev.CorruptPage(g.AddrOfPPN(victimPPN)); err != nil {
		t.Fatal(err)
	}
	fullBefore := h.b.Pools[0].FullCount()
	h.b.RunBackgroundGC(now, now+10*sim.Second, func() bool { return true }, h.alloc)
	if h.b.BackgroundVictimActive() {
		t.Error("unreadable victim left active")
	}
	// The victim must be back on the full list (not leaked off-list).
	// Other victims may have been collected meanwhile, so only check the
	// corrupted block is still tracked somewhere.
	found := false
	for _, blk := range h.b.Pools[0].FullBlocks() {
		if blk == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("corrupted victim not returned to the full list (full %d -> %d)",
			fullBefore, h.b.Pools[0].FullCount())
	}
}

func TestRunBackgroundGCPanicsOnAllocFailure(t *testing.T) {
	h := newGCHarness(t)
	g := h.b.Dev.Geometry()
	perBlock := g.PagesPerBlock()
	now := h.writeSeq(t, 0, perBlock, 0)
	now = h.writeSeq(t, 0, perBlock/2, now)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("alloc failure did not panic")
		}
		if !strings.Contains(r.(string), "background GC relocation") {
			t.Errorf("unexpected panic: %v", r)
		}
	}()
	h.b.RunBackgroundGC(now, now+10*sim.Second, func() bool { return true },
		func(chip int, lpn LPN, data, spare []byte, now sim.Time) (sim.Time, error) {
			return now, nand.ErrBadBlock
		})
}

func TestBGCWantedHysteresis(t *testing.T) {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: core.RPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBase(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := dev.Geometry().TotalBlocks()
	trigger := int(b.Cfg.GCFreeFraction * float64(total))
	// Drain free blocks to below the trigger.
	var taken []int
	for b.TotalFreeBlocks() >= trigger {
		blk, ok := b.Pools[0].PopFree()
		if !ok {
			for c := 1; c < len(b.Pools); c++ {
				if blk, ok = b.Pools[c].PopFree(); ok {
					taken = append(taken, c*1000+blk)
					break
				}
			}
			continue
		}
		taken = append(taken, blk)
	}
	if !b.BGCWanted() {
		t.Fatal("BGCWanted false below the trigger")
	}
	// Refill to just above the trigger: hysteresis holds the latch.
	for b.TotalFreeBlocks() < trigger+1 {
		b.Pools[0].PushFree(9999)
	}
	if !b.BGCWanted() {
		t.Error("hysteresis released before the 1.5x cushion")
	}
	// Refill past 1.5x: latch releases.
	for float64(b.TotalFreeBlocks()) < 1.5*b.Cfg.GCFreeFraction*float64(total) {
		b.Pools[0].PushFree(9999)
	}
	if b.BGCWanted() {
		t.Error("latch held above the release threshold")
	}
}

func TestEstimateGCCost(t *testing.T) {
	tm := nand.DefaultTiming()
	zero := EstimateGCCost(tm, 0)
	if zero != tm.Erase {
		t.Errorf("zero-valid cost = %v, want erase only", zero)
	}
	if EstimateGCCost(tm, 10) <= EstimateGCCost(tm, 5) {
		t.Error("cost not monotone in valid pages")
	}
}

func TestPickNeediestVictim(t *testing.T) {
	h := newGCHarness(t)
	g := h.b.Dev.Geometry()
	if _, _, ok := PickNeediestVictim(h.b); ok {
		t.Error("victim found on empty device")
	}
	perBlock := g.PagesPerBlock()
	now := h.writeSeq(t, 0, perBlock, 0)
	_ = h.writeSeq(t, 0, perBlock, now)
	chip, victim, ok := PickNeediestVictim(h.b)
	if !ok || chip != 0 {
		t.Fatalf("victim = chip %d, %v", chip, ok)
	}
	if got := h.b.Map.ValidCount(nand.BlockAddr{Chip: 0, Block: victim}); got != 0 {
		t.Errorf("greedy victim has %d valid pages, expected the fully-invalid block", got)
	}
}
