// Package ftltest is a conformance suite run against every FTL
// implementation: write/read round trips, overwrite invalidation, sustained
// writing far past device capacity (forcing garbage collection), idle-window
// background GC, and determinism. Each FTL's test package invokes Run with a
// fixture constructor, and the registry-wide conformance test (in this
// package's external tests) drives every registered scheme through the same
// checks — the full white-box suite for MLC kernels, the device-agnostic
// RunHost subset for schemes that own their device. Scheme-specific
// behaviour (backup accounting, 2PO invariants, recovery) stays in the
// scheme's own tests.
package ftltest

import (
	"testing"

	"flexftl/internal/ftl"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
	"flexftl/internal/workload"
)

// Fixture bundles an FTL with its Base for white-box assertions.
type Fixture struct {
	F ftl.FTL
	B *ftl.Base
	// IdleConsumesFree marks schemes whose idle work legitimately converts
	// free blocks into pre-positioned capacity (rtfFTL's return-to-fast
	// padding); for them the idle test asserts erase progress instead of a
	// higher free count.
	IdleConsumesFree bool
}

// Maker constructs a fresh fixture (device included) for one subtest.
type Maker func(t testing.TB) Fixture

// HostMaker constructs a fresh ftl.Host for one subtest. RunHost needs no
// access to the device or the shared Base, so it covers schemes outside the
// MLC kernel (nflexTLC) as well.
type HostMaker func(t testing.TB) ftl.Host

// Run executes the full conformance suite, including the white-box checks
// that need the kernel's Base and device.
func Run(t *testing.T, mk Maker) {
	t.Run("WriteReadBack", func(t *testing.T) { checkWriteReadBack(t, mk(t).F) })
	t.Run("CompletionMonotonePerIssue", func(t *testing.T) { checkMonotone(t, mk(t).F) })
	t.Run("OverwriteInvalidates", func(t *testing.T) { testOverwrite(t, mk) })
	t.Run("SustainedWritesForceGC", func(t *testing.T) { testSustainedGC(t, mk) })
	t.Run("IdleReclaimsFreeBlocks", func(t *testing.T) { testIdleReclaim(t, mk) })
	t.Run("Determinism", func(t *testing.T) {
		checkDeterminism(t, func() ftl.Host { return mk(t).F })
	})
	t.Run("ReadUnmappedFails", func(t *testing.T) { checkReadUnmapped(t, mk(t).F) })
	t.Run("TrimInvalidates", func(t *testing.T) { testTrim(t, mk) })
	t.Run("StatsConsistency", func(t *testing.T) { testStatsConsistency(t, mk) })
	t.Run("WorkloadSoak", func(t *testing.T) { testWorkloadSoak(t, mk) })
}

// RunHost executes the device-agnostic subset of the suite: every check that
// needs only the ftl.Host surface. Registry entries that are not MLC kernels
// get their conformance coverage through this entry point.
func RunHost(t *testing.T, mk HostMaker) {
	t.Run("WriteReadBack", func(t *testing.T) { checkWriteReadBack(t, mk(t)) })
	t.Run("CompletionMonotonePerIssue", func(t *testing.T) { checkMonotone(t, mk(t)) })
	t.Run("OverwriteReadsBack", func(t *testing.T) { checkOverwrite(t, mk(t)) })
	t.Run("SustainedWritesForceGC", func(t *testing.T) { checkSustainedGC(t, mk(t)) })
	t.Run("Determinism", func(t *testing.T) {
		checkDeterminism(t, func() ftl.Host { return mk(t) })
	})
	t.Run("ReadUnmappedFails", func(t *testing.T) { checkReadUnmapped(t, mk(t)) })
	t.Run("TrimInvalidates", func(t *testing.T) { checkTrim(t, mk(t)) })
	t.Run("StatsConsistency", func(t *testing.T) { checkStatsConsistency(t, mk(t)) })
	t.Run("WorkloadSoak", func(t *testing.T) { checkWorkloadSoak(t, mk(t)) })
}

// checkWorkloadSoak drives the FTL with a realistic mixed request stream
// (reads, writes, trims, bursts, idle windows) from the Varmail generator —
// the closest thing to production traffic the suite exercises.
func checkWorkloadSoak(t *testing.T, f ftl.Host) ftl.Stats {
	gen, err := workload.New(workload.Varmail(), f.LogicalPages(), 4000, 13)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	var lastArrival sim.Time
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if req.Arrival > lastArrival+5*sim.Millisecond && now < req.Arrival {
			f.Idle(now, req.Arrival)
			now = req.Arrival
		}
		lastArrival = req.Arrival
		if req.Arrival > now {
			now = req.Arrival
		}
		for p := 0; p < req.Pages; p++ {
			lpn := ftl.LPN((req.Page + int64(p)) % f.LogicalPages())
			var err error
			switch req.Op {
			case workload.OpWrite:
				now, err = f.Write(lpn, now, 0.5)
			case workload.OpTrim:
				now, err = f.Trim(lpn, now)
			default:
				if _, lookupErr := f.Read(lpn, now); lookupErr != nil {
					err = nil // unmapped reads are the runner's concern
				}
			}
			if err != nil {
				t.Fatalf("soak %v LPN %d: %v", req.Op, lpn, err)
			}
		}
	}
	st := f.Stats()
	if st.HostWrites == 0 || st.HostTrims == 0 {
		t.Errorf("soak exercised too little: %+v", st)
	}
	return st
}

func testWorkloadSoak(t *testing.T, mk Maker) {
	fx := mk(t)
	st := checkWorkloadSoak(t, fx.F)
	// Cross-check against the device as always.
	if dev := fx.F.Device().Counts(); dev.Programs() != st.TotalPrograms() {
		t.Errorf("device programs %d != FTL programs %d", dev.Programs(), st.TotalPrograms())
	}
}

// checkTrim covers the host-visible trim contract: no-op trims are harmless
// and uncounted, a real trim unmaps the LPN, and the FTL keeps working.
func checkTrim(t *testing.T, f ftl.Host) sim.Time {
	now, err := f.Write(5, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Trimming an unmapped LPN is a harmless no-op.
	if _, err := f.Trim(99, now); err != nil {
		t.Fatalf("trim of unmapped LPN errored: %v", err)
	}
	done, err := f.Trim(5, now)
	if err != nil {
		t.Fatal(err)
	}
	if done < now {
		t.Error("trim completed before issue")
	}
	if _, err := f.Read(5, done); err == nil {
		t.Error("trimmed LPN still readable")
	}
	st := f.Stats()
	if st.HostTrims != 1 {
		t.Errorf("trims = %d, want 1 (no-op trims uncounted)", st.HostTrims)
	}
	return done
}

func testTrim(t *testing.T, mk Maker) {
	fx := mk(t)
	done := checkTrim(t, fx.F)
	if fx.B.Map.Mapped() != 0 {
		t.Errorf("mapped = %d after trim", fx.B.Map.Mapped())
	}
	// The freed page becomes GC-visible as an invalid page.
	// (Write again to confirm the FTL still functions.)
	if _, err := fx.F.Write(5, done, 0.5); err != nil {
		t.Fatalf("write after trim: %v", err)
	}
}

func checkWriteReadBack(t *testing.T, f ftl.Host) {
	now := sim.Time(0)
	const n = 64
	for lpn := ftl.LPN(0); lpn < n; lpn++ {
		done, err := f.Write(lpn, now, 0.5)
		if err != nil {
			t.Fatalf("write LPN %d: %v", lpn, err)
		}
		if done < now {
			t.Fatalf("write completed before issue: %v < %v", done, now)
		}
		now = done
	}
	for lpn := ftl.LPN(0); lpn < n; lpn++ {
		done, err := f.Read(lpn, now)
		if err != nil {
			t.Fatalf("read LPN %d: %v", lpn, err)
		}
		now = done
	}
	st := f.Stats()
	if st.HostWrites != n || st.HostReads != n {
		t.Errorf("stats = %+v, want %d writes and reads", st, n)
	}
}

func checkMonotone(t *testing.T, f ftl.Host) {
	prev := sim.Time(0)
	for lpn := ftl.LPN(0); lpn < 32; lpn++ {
		done, err := f.Write(lpn, prev, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if done <= prev {
			t.Fatalf("completion %v not after issue %v", done, prev)
		}
		prev = done
	}
}

// checkOverwrite repeatedly rewrites one LPN and confirms the latest version
// stays readable.
func checkOverwrite(t *testing.T, f ftl.Host) {
	now := sim.Time(0)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		done, err := f.Write(7, now, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if _, err := f.Read(7, now); err != nil {
		t.Errorf("read after overwrites: %v", err)
	}
}

func testOverwrite(t *testing.T, mk Maker) {
	fx := mk(t)
	checkOverwrite(t, fx.F)
	if fx.B.Map.Mapped() != 1 {
		t.Errorf("mapped pages = %d after overwriting one LPN, want 1", fx.B.Map.Mapped())
	}
}

// checkSustainedGC writes 3x the logical space with a skewed pattern; the FTL
// must keep servicing writes (GC reclaiming blocks) without error.
func checkSustainedGC(t *testing.T, f ftl.Host) ftl.Stats {
	src := rng.New(42)
	logical := f.LogicalPages()
	z := rng.NewZipf(src, int(logical), 0.9)
	now := sim.Time(0)
	writes := 3 * int(logical)
	for i := 0; i < writes; i++ {
		lpn := ftl.LPN(z.Next())
		done, err := f.Write(lpn, now, 0.5)
		if err != nil {
			t.Fatalf("write %d (LPN %d): %v", i, lpn, err)
		}
		now = done
	}
	st := f.Stats()
	if st.Erases == 0 {
		t.Error("no erases after writing 3x logical capacity")
	}
	if st.GCCopies == 0 {
		t.Error("no GC copies despite skewed overwrites")
	}
	if wa := st.WriteAmplification(); wa < 1 {
		t.Errorf("write amplification %v < 1", wa)
	}
	return st
}

func testSustainedGC(t *testing.T, mk Maker) {
	fx := mk(t)
	st := checkSustainedGC(t, fx.F)
	// The device's own erase counter must agree with the FTL's.
	if dev := fx.F.Device().Counts().Erases; dev != st.Erases {
		t.Errorf("device erases %d != FTL erases %d", dev, st.Erases)
	}
}

func testIdleReclaim(t *testing.T, mk Maker) {
	fx := mk(t)
	src := rng.New(7)
	logical := fx.F.LogicalPages()
	z := rng.NewZipf(src, int(logical), 0.9)
	now := sim.Time(0)
	// Fill until free space drops below the background-GC threshold.
	for i := 0; i < 3*int(logical) && !fx.B.BelowGCThreshold(); i++ {
		done, err := fx.F.Write(ftl.LPN(z.Next()), now, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if !fx.B.BelowGCThreshold() {
		t.Skip("workload did not push free space below threshold on this geometry")
	}
	before := fx.B.TotalFreeBlocks()
	erasesBefore := fx.F.Stats().Erases
	fx.F.Idle(now, now+10*sim.Second)
	after := fx.B.TotalFreeBlocks()
	if fx.IdleConsumesFree {
		if fx.F.Stats().Erases <= erasesBefore {
			t.Errorf("idle made no erase progress: %d erases", fx.F.Stats().Erases)
		}
		return
	}
	if after <= before {
		t.Errorf("idle GC did not reclaim blocks: %d -> %d", before, after)
	}
	if fx.F.Stats().BackgroundGCs == 0 {
		t.Error("no background GC invocations recorded")
	}
}

func checkDeterminism(t *testing.T, mk func() ftl.Host) {
	run := func() ftl.Stats {
		f := mk()
		src := rng.New(99)
		logical := f.LogicalPages()
		now := sim.Time(0)
		for i := 0; i < int(logical); i++ {
			lpn := ftl.LPN(src.Int63n(logical))
			done, err := f.Write(lpn, now, src.Float64())
			if err != nil {
				t.Fatal(err)
			}
			now = done
			if i%1000 == 999 {
				f.Idle(now, now+100*sim.Millisecond)
			}
		}
		return f.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", a, b)
	}
}

func checkReadUnmapped(t *testing.T, f ftl.Host) {
	if _, err := f.Read(3, 0); err == nil {
		t.Error("read of never-written LPN succeeded")
	}
}

// checkStatsConsistency exercises a random write mix and verifies the
// internal consistency of the Stats counters.
func checkStatsConsistency(t *testing.T, f ftl.Host) ftl.Stats {
	src := rng.New(5)
	logical := f.LogicalPages()
	now := sim.Time(0)
	for i := 0; i < 2*int(logical); i++ {
		done, err := f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := f.Stats()
	if st.HostWritesLSB+st.HostWritesMSB != st.HostWrites {
		t.Errorf("host write type split %d+%d != %d",
			st.HostWritesLSB, st.HostWritesMSB, st.HostWrites)
	}
	if st.GCCopiesLSB+st.GCCopiesMSB != st.GCCopies {
		t.Errorf("GC copy type split %d+%d != %d", st.GCCopiesLSB, st.GCCopiesMSB, st.GCCopies)
	}
	// Multi-stream placement classifies every host write as hot or cold;
	// single-stream schemes leave both counters at zero.
	if split := st.HostWritesHot + st.HostWritesCold; split > 0 && split != st.HostWrites {
		t.Errorf("host write temperature split %d+%d != %d",
			st.HostWritesHot, st.HostWritesCold, st.HostWrites)
	}
	return st
}

func testStatsConsistency(t *testing.T, mk Maker) {
	fx := mk(t)
	st := checkStatsConsistency(t, fx.F)
	// Device-level program counts must equal the FTL's accounting.
	dev := fx.F.Device().Counts()
	if dev.Programs() != st.TotalPrograms() {
		t.Errorf("device programs %d != FTL programs %d", dev.Programs(), st.TotalPrograms())
	}
}
