package ftltest_test

import (
	"testing"

	"flexftl/internal/ftl"
	"flexftl/internal/ftl/ftltest"
	_ "flexftl/internal/ftl/nflex" // registers the nflexTLC scheme
	"flexftl/internal/nand"
)

// TestRegistryConformance drives every scheme in the ftl registry — the four
// paper FTLs, the hybrid policy combinations, and nflexTLC — through the
// conformance suite. MLC kernels get the full white-box suite (the Fixture
// carries their Base, and Spec.IdleSpendsFree selects the idle-test
// variant); schemes that own their device get the device-agnostic RunHost
// subset.
func TestRegistryConformance(t *testing.T) {
	for _, name := range ftl.Names() {
		spec, ok := ftl.Lookup(name)
		if !ok {
			t.Fatalf("registry lists %q but Lookup fails", name)
		}
		build := func(tb testing.TB) ftl.Host {
			h, err := ftl.Build(name, ftl.BuildEnv{
				Geometry: nand.TestGeometry(),
				Config:   ftl.DefaultConfig(),
				Flex:     ftl.DefaultFlexParams(),
			})
			if err != nil {
				tb.Fatal(err)
			}
			return h
		}
		t.Run(name, func(t *testing.T) {
			if _, mlc := build(t).(ftl.FTL); !mlc {
				ftltest.RunHost(t, build)
				return
			}
			ftltest.Run(t, func(tb testing.TB) ftltest.Fixture {
				k := build(tb).(*ftl.Kernel)
				return ftltest.Fixture{F: k, B: k.Base, IdleConsumesFree: spec.IdleSpendsFree}
			})
		})
	}
}
