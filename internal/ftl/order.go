package ftl

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

// OrderPolicy owns page placement: which block and which page each program
// lands on, the block life cycle around it (free pool -> active -> full),
// foreground reclaim, and any order-specific idle work. The interface is
// sealed — implementations come from FPSOrderPolicy / FPSPoolOrderPolicy /
// TwoPhaseOrderPolicy.
type OrderPolicy interface {
	init(k *Kernel) error
	// program writes one data page on the chip under the policy's order,
	// honoring pref where the order leaves a choice.
	program(k *Kernel, chip int, pref Pref, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error)
	// foregroundGC reclaims blocks inline until the chip can absorb the
	// next program without stalling.
	foregroundGC(k *Kernel, chip int, now sim.Time) (sim.Time, error)
	// idleDrain runs order-specific idle work after background GC (the
	// return-to-fast MSB drain; a no-op for the others).
	idleDrain(k *Kernel, now, until sim.Time)
	// fastBudget is how many LSB pages the chip can still serve without
	// eating into the GC/backup reserve (adaptive allocation input).
	fastBudget(k *Kernel, chip int) int
	// slowAvailable reports whether an MSB page can be programmed at all.
	slowAvailable(k *Kernel, chip int) bool
	// shardGCTrigger is the free-block level at or above which this policy's
	// foregroundGC provably does nothing (the epoch planner's R5 threshold).
	shardGCTrigger(k *Kernel) int
	// shardWriteImpact bounds, from the chip's current cursor state, the free
	// blocks w host writes can pop and the data blocks they can complete
	// (fills drive the per-block backup strategies' own pops).
	shardWriteImpact(k *Kernel, chip, w int) (pops, fills int)
}

// cursor tracks one active block's program position.
type cursor struct {
	blk int // -1 when no active block
	pos int
}

// FPSOrderPolicy returns the strict fixed-program-sequence order: one active
// block per chip, pages written in the vendor FPS order (pageFTL and
// parityFTL). Pref is ignored — FPS leaves no choice.
func FPSOrderPolicy() OrderPolicy { return &fpsSingle{} }

type fpsSingle struct {
	order  []core.Page // the canonical FPS order, shared by every block
	active []cursor    // per chip
}

func (o *fpsSingle) init(k *Kernel) error {
	g := k.Dev.Geometry()
	o.order = core.FPSOrder(g.WordLinesPerBlock)
	o.active = make([]cursor, g.Chips())
	for c := range o.active {
		o.active[c] = cursor{blk: -1}
	}
	return nil
}

func (o *fpsSingle) program(k *Kernel, chip int, pref Pref, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	cur := &o.active[chip]
	if cur.blk == -1 {
		blk, ok := k.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("%s: chip %d out of free blocks", k.name, chip)
		}
		cur.blk, cur.pos = blk, 0
	}
	page := o.order[cur.pos]
	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	done, err := k.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	k.Map.Update(lpn, k.Dev.Geometry().PPNOf(addr))
	if page.Type == core.LSB {
		k.noteData(true, fromGC)
		done, err = k.backupAfterLSB(chip, data, done)
		if err != nil {
			return done, err
		}
	} else {
		if k.bk.coversMSB() {
			// The pair's parity pre-backup is already on flash, so the
			// destructive window is power-safe at issue time.
			k.Dev.AckProgram(addr.BlockAddr)
		}
		k.noteData(false, fromGC)
	}
	k.alloc.onProgram(k, page.Type == core.LSB, fromGC)
	cur.pos++
	if cur.pos == len(o.order) {
		k.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

func (o *fpsSingle) foregroundGC(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	return k.reserveGC(chip, now, k.Cfg.MinFreeBlocksPerChip+k.bk.extraReserve())
}

func (o *fpsSingle) idleDrain(*Kernel, sim.Time, sim.Time) {}

func (o *fpsSingle) fastBudget(k *Kernel, chip int) int {
	budget := 0
	if cur := o.active[chip]; cur.blk != -1 && o.order[cur.pos].Type == core.LSB {
		budget++
	}
	if spare := k.Pools[chip].FreeCount() - k.Cfg.MinFreeBlocksPerChip - 1; spare > 0 {
		budget += spare
	}
	return budget
}

func (o *fpsSingle) slowAvailable(k *Kernel, chip int) bool {
	cur := o.active[chip]
	return cur.blk != -1 && o.order[cur.pos].Type == core.MSB
}

func (o *fpsSingle) shardGCTrigger(k *Kernel) int {
	return k.Cfg.MinFreeBlocksPerChip + k.bk.extraReserve()
}

func (o *fpsSingle) shardWriteImpact(k *Kernel, chip, w int) (pops, fills int) {
	ppb := len(o.order)
	cur := o.active[chip]
	slack, pos := 0, 0
	if cur.blk != -1 {
		slack, pos = ppb-cur.pos, cur.pos
	}
	if w > slack {
		pops = (w - slack + ppb - 1) / ppb
	}
	fills = (w + pos) / ppb
	return pops, fills
}

// FPSPoolOrderPolicy returns the return-to-fast order modeled on Grupp et
// al.'s Harey Tortoise: each chip keeps a pool of slots active blocks under
// FPS so successive writes can land on fast LSB pages, and the idle drain
// aggressively consumes paired MSB pages so the pool "returns to fast"
// (rtfFTL uses 8 slots).
func FPSPoolOrderPolicy(slots int) OrderPolicy { return &fpsPool{slots: slots} }

type fpsPool struct {
	slots  int
	order  []core.Page
	active [][]cursor // [chip][slot]; blk -1 when the slot awaits a block

	// impactScratch backs shardWriteImpact's remaining-page sort. Only the
	// serial epoch planner calls it, so a single scratch is race-free even
	// though the policy object is shared with the shard clones.
	impactScratch []int
}

func (o *fpsPool) init(k *Kernel) error {
	g := k.Dev.Geometry()
	if o.slots < 1 {
		return fmt.Errorf("%s: active pool needs at least one slot", k.name)
	}
	if g.BlocksPerChip < o.slots+k.Cfg.MinFreeBlocksPerChip+2 {
		return fmt.Errorf("%s: %d blocks/chip too few for %d active blocks",
			k.name, g.BlocksPerChip, o.slots)
	}
	o.order = core.FPSOrder(g.WordLinesPerBlock)
	o.active = make([][]cursor, g.Chips())
	for c := range o.active {
		cs := make([]cursor, o.slots)
		for s := range cs {
			blk, ok := k.Pools[c].PopFree()
			if !ok {
				return fmt.Errorf("%s: chip %d cannot seed active pool", k.name, c)
			}
			cs[s] = cursor{blk: blk}
		}
		o.active[c] = cs
	}
	return nil
}

// pickSlot returns the index of the most-filled slot whose next page matches
// wantLSB, or -1 if none. Concentrating writes in the fullest block keeps
// data of similar age together (near-pageFTL victim quality); the pool's
// breadth exists for LSB availability, not for striping.
func (o *fpsPool) pickSlot(chip int, wantLSB bool) int {
	best, bestPos := -1, -1
	for s, cur := range o.active[chip] {
		if cur.blk == -1 {
			continue
		}
		if (o.order[cur.pos].Type == core.LSB) == wantLSB && cur.pos > bestPos {
			best, bestPos = s, cur.pos
		}
	}
	return best
}

func (o *fpsPool) program(k *Kernel, chip int, pref Pref, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	var err error
	now, err = o.refillSlots(k, chip, now)
	if err != nil {
		return now, err
	}
	wantLSB := pref != PrefSlow
	slot := o.pickSlot(chip, wantLSB)
	if slot == -1 {
		slot = o.pickSlot(chip, !wantLSB)
	}
	if slot == -1 {
		return now, fmt.Errorf("%s: chip %d has no programmable active block", k.name, chip)
	}
	cur := &o.active[chip][slot]
	page := o.order[cur.pos]

	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	done, err := k.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	k.Map.Update(lpn, k.Dev.Geometry().PPNOf(addr))
	if page.Type == core.LSB {
		k.noteData(true, fromGC)
		done, err = k.backupAfterLSB(chip, data, done)
		if err != nil {
			return done, err
		}
	} else {
		if k.bk.coversMSB() {
			k.Dev.AckProgram(addr.BlockAddr) // parity pre-backup covers the pair
		}
		k.noteData(false, fromGC)
	}
	k.alloc.onProgram(k, page.Type == core.LSB, fromGC)
	cur.pos++
	if cur.pos == len(o.order) {
		k.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

// refillSlots tops up empty active slots from the free pool while keeping a
// reserve for the backup ring and GC; with the pool at reserve it still
// force-refills one slot so a program is always possible.
func (o *fpsPool) refillSlots(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	reserve := k.Cfg.MinFreeBlocksPerChip
	for s := range o.active[chip] {
		if o.active[chip][s].blk != -1 {
			continue
		}
		if k.Pools[chip].FreeCount() <= reserve {
			break // run with a shallower pool until GC frees blocks
		}
		blk, ok := k.Pools[chip].PopFree()
		if !ok {
			break
		}
		o.active[chip][s] = cursor{blk: blk}
	}
	// At least one slot must be usable.
	for s := range o.active[chip] {
		if o.active[chip][s].blk != -1 {
			return now, nil
		}
	}
	blk, ok := k.Pools[chip].PopFree()
	if !ok {
		return now, fmt.Errorf("%s: chip %d active pool empty and no free blocks", k.name, chip)
	}
	o.active[chip][0] = cursor{blk: blk}
	return now, nil
}

// padOneMSB programs the first MSB-next slot with a dummy payload purely to
// advance its cursor back to an LSB page. The padded page is born invalid —
// capacity traded for burst readiness, the return-to-fast lifetime weakness.
func (o *fpsPool) padOneMSB(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	slot := o.pickSlot(chip, false)
	if slot == -1 {
		return now, nil
	}
	cur := &o.active[chip][slot]
	page := o.order[cur.pos]
	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	prevCause := k.Dev.SetCause(obs.CausePad)
	done, err := k.Dev.Program(addr, nil, nil, now)
	k.Dev.SetCause(prevCause)
	if err != nil {
		return now, err
	}
	// A padded MSB pairs with a real LSB page, so the destructive window is
	// only safe to close when the backup covers the pair.
	if k.bk.coversMSB() {
		k.Dev.AckProgram(addr.BlockAddr)
	}
	k.St.PadWrites++
	k.Obs.Instant(obs.KindPad, int32(chip), now, int64(cur.blk), int64(page.WL))
	cur.pos++
	if cur.pos == len(o.order) {
		k.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

func (o *fpsPool) foregroundGC(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	return k.reserveGC(chip, now, k.Cfg.MinFreeBlocksPerChip+k.bk.extraReserve())
}

// lsbReadyCount counts active slots whose next page is an LSB page.
func (o *fpsPool) lsbReadyCount(chip int) int {
	n := 0
	for _, cur := range o.active[chip] {
		if cur.blk != -1 && o.order[cur.pos].Type == core.LSB {
			n++
		}
	}
	return n
}

// chipHasMSBNext reports whether the chip's active pool has a slot waiting
// on an MSB page.
func (o *fpsPool) chipHasMSBNext(chip int) bool {
	for _, cur := range o.active[chip] {
		if cur.blk != -1 && o.order[cur.pos].Type == core.MSB {
			return true
		}
	}
	return false
}

// idleDrain aggressively consumes pending paired MSB pages so subsequent
// bursts land on fast LSB pages again — the return-to-fast drain.
func (o *fpsPool) idleDrain(k *Kernel, now, until sim.Time) {
	// The drain is idle relocation work: charge its media occupancy to GC
	// (pads inside override to CausePad themselves).
	prevCause := k.Dev.SetCause(obs.CauseGC)
	defer k.Dev.SetCause(prevCause)
	for chip := range o.active {
		var err error
		now, err = o.drainMSBSlots(k, chip, now, until)
		if err != nil {
			return
		}
	}
}

// drainMSBSlots relocates valid pages from GC candidates into the chip's
// MSB-next slots, one page at a time, until the pool is ready for a burst or
// the idle window closes. When no relocation source exists, slots are padded
// with dummy MSB programs, but only up to a minimal burst readiness — padding
// burns capacity, so full return-to-fast is reserved for relocation-backed
// drains.
func (o *fpsPool) drainMSBSlots(k *Kernel, chip int, now, until sim.Time) (sim.Time, error) {
	g := k.Dev.Geometry()
	t := k.Dev.Timing()
	perPage := t.Read + 2*t.BusXfer + t.ProgMSB + t.ProgLSB // copy + possible backup
	for now+perPage <= until && o.chipHasMSBNext(chip) {
		victim, ok := k.Pools[chip].PickVictim()
		if !ok {
			// No relocation source: pad only down to a minimal burst
			// readiness of two LSB-ready slots — wholesale padding would
			// waste capacity out of proportion to the bursts it serves.
			if o.lsbReadyCount(chip) >= 2 {
				return now, nil
			}
			var err error
			now, err = o.padOneMSB(k, chip, now)
			if err != nil {
				return now, err
			}
			continue
		}
		ppn, hasValid := k.Map.FirstValidPage(nand.BlockAddr{Chip: chip, Block: victim})
		if !hasValid {
			// Fully invalid block: erase it instead; that is pure gain.
			k.Pools[chip].TakeFull(victim)
			k.Map.ClearBlock(nand.BlockAddr{Chip: chip, Block: victim})
			done, err := k.Dev.Erase(nand.BlockAddr{Chip: chip, Block: victim}, now)
			if err != nil {
				return now, err
			}
			k.St.Erases++
			k.Pools[chip].PushFree(victim)
			now = done
			continue
		}
		lpn, ok := k.Map.LPNAt(ppn)
		if !ok {
			return now, nil
		}
		tRead, err := k.Dev.ReadInto(g.AddrOfPPN(ppn), &k.Buf, now)
		if err != nil {
			return now, err
		}
		done, err := o.program(k, chip, PrefSlow, lpn, k.Buf.Data, k.Buf.Spare, tRead, true)
		if err != nil {
			return now, err
		}
		k.St.GCCopies++
		now = done
	}
	return now, nil
}

func (o *fpsPool) fastBudget(k *Kernel, chip int) int {
	budget := o.lsbReadyCount(chip)
	if spare := k.Pools[chip].FreeCount() - k.Cfg.MinFreeBlocksPerChip - 1; spare > 0 {
		budget += spare
	}
	return budget
}

func (o *fpsPool) slowAvailable(k *Kernel, chip int) bool { return o.chipHasMSBNext(chip) }

func (o *fpsPool) shardGCTrigger(k *Kernel) int {
	return k.Cfg.MinFreeBlocksPerChip + k.bk.extraReserve()
}

// shardWriteImpact for the pool order: empty slots each refill with one pop
// at the next program; filled slots complete after their remaining pages,
// and every completion triggers at most one refill pop. Packing writes into
// the fullest slots first matches pickSlot's actual preference, so the fill
// count is a true upper bound regardless of the LSB/MSB interleaving.
func (o *fpsPool) shardWriteImpact(k *Kernel, chip, w int) (pops, fills int) {
	ppb := len(o.order)
	empty := 0
	rems := o.impactScratch[:0]
	for _, cur := range o.active[chip] {
		if cur.blk == -1 {
			empty++
			continue
		}
		rems = append(rems, ppb-cur.pos)
	}
	o.impactScratch = rems
	// Ascending remaining-page order = fullest-first completion order.
	for i := 1; i < len(rems); i++ {
		for j := i; j > 0 && rems[j] < rems[j-1]; j-- {
			rems[j], rems[j-1] = rems[j-1], rems[j]
		}
	}
	left := w
	for _, rem := range rems {
		if left < rem {
			left = 0
			break
		}
		fills++
		left -= rem
	}
	fills += left / ppb
	pops = empty + fills
	return pops, fills
}

// TwoPhaseOrderPolicy returns the paper's 2PO block life cycle (Figure 6):
// each block is first filled with LSB pages only (a "fast block"), then with
// MSB pages only (a "slow block") — the RPSfull order of Figure 3(a). Free
// pool -> one active fast block per chip -> slow block queue (FIFO) -> one
// active slow block per chip -> full pool. Requires an RPS device.
func TwoPhaseOrderPolicy() OrderPolicy { return &twoPhase{} }

// twoPhaseChip is the per-chip block bookkeeping of the block pool manager.
type twoPhaseChip struct {
	afb    int      // active fast block, -1 when none
	afbPos int      // next LSB word line of the AFB
	sbq    IntQueue // slow block queue; head is the active slow block
	asbPos int      // next MSB word line of the head slow block

	// Crash-recovery bookkeeping for the chip's open destructive window: the
	// LPN of the most recent MSB program, the physical page it superseded
	// (InvalidPPN if the LPN had no prior copy), and whether the program was
	// a GC relocation. A power cut during that program loses the new copy;
	// recovery rolls the mapping back to lastMSBPrev, which the device's
	// erase barrier keeps intact while the window is open (GC relocations
	// stay on-chip, and an on-chip erase would have closed the window).
	lastMSBLPN  LPN
	lastMSBPrev nand.PPN
	lastMSBGC   bool
}

type twoPhase struct {
	chips []twoPhaseChip
}

func (o *twoPhase) init(k *Kernel) error {
	if k.Dev.Rules().Name() == "FPS" {
		return fmt.Errorf("%s: device enforces FPS; two-phase ordering requires the RPS scheme", k.name)
	}
	o.chips = make([]twoPhaseChip, k.Dev.Geometry().Chips())
	for c := range o.chips {
		o.chips[c] = twoPhaseChip{afb: -1, lastMSBPrev: nand.InvalidPPN}
	}
	return nil
}

// program writes one page of the requested type on the chip, falling back to
// the other type when the requested one is infeasible, and maintaining the
// 2PO block life cycle of Figure 6.
func (o *twoPhase) program(k *Kernel, chip int, pref Pref, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	st := &o.chips[chip]
	useLSB := pref != PrefSlow
	if useLSB {
		// Opening a new fast block must leave at least one free block for
		// the parity-backup writer; redirect to a slow page otherwise.
		if st.afb == -1 && k.Pools[chip].FreeCount() <= 1 {
			useLSB = false
		}
	}
	if !useLSB && st.sbq.Len() == 0 {
		useLSB = true // no slow block exists (footnote 1)
	}
	if useLSB {
		return o.programLSB(k, chip, lpn, data, spare, now, fromGC)
	}
	return o.programMSB(k, chip, lpn, data, spare, now, fromGC)
}

// programLSB writes the next LSB page of the active fast block.
func (o *twoPhase) programLSB(k *Kernel, chip int, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	st := &o.chips[chip]
	if st.afb == -1 {
		blk, ok := k.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("%s: chip %d out of free blocks for a fast block", k.name, chip)
		}
		st.afb, st.afbPos = blk, 0
		k.bk.onFastOpen(k, chip)
		k.Obs.Instant(obs.KindBlockFast, int32(chip), now, int64(blk), int64(k.Pools[chip].FreeCount()))
	}
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: st.afb},
		Page:      core.Page{WL: st.afbPos, Type: core.LSB},
	}
	done, err := k.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	k.Map.Update(lpn, k.Dev.Geometry().PPNOf(addr))
	done, err = k.backupAfterLSB(chip, data, done)
	if err != nil {
		return done, err
	}
	k.noteData(true, fromGC)
	k.alloc.onProgram(k, true, fromGC)
	st.afbPos++
	if st.afbPos == k.Dev.Geometry().WordLinesPerBlock {
		// Fast block complete: queue it as a slow block first so the block
		// pool state stays consistent even if the parity write fails, then
		// persist its parity page (Figure 7(a)).
		full := st.afb
		st.sbq.Push(full)
		st.afb = -1
		k.Obs.Instant(obs.KindBlockQueued, int32(chip), now, int64(full), int64(st.sbq.Len()))
		done, err = k.backupOnFastComplete(chip, full, done)
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// programMSB writes the next MSB page of the active slow block (the head of
// the slow block queue).
func (o *twoPhase) programMSB(k *Kernel, chip int, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	st := &o.chips[chip]
	if st.sbq.Len() == 0 {
		return now, fmt.Errorf("%s: chip %d has no slow block for an MSB write", k.name, chip)
	}
	blk := st.sbq.Front()
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
		Page:      core.Page{WL: st.asbPos, Type: core.MSB},
	}
	done, err := k.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	// Deliberately no AckProgram here: the paired LSB page is protected by
	// the block's parity page, and the recovery procedure (recover2po.go)
	// reconstructs it after a power cut. This is the point of the design —
	// no per-MSB backup writes.
	st.lastMSBLPN = lpn
	st.lastMSBPrev = k.Map.Update(lpn, k.Dev.Geometry().PPNOf(addr))
	st.lastMSBGC = fromGC
	k.noteData(false, fromGC)
	k.alloc.onProgram(k, false, fromGC)
	st.asbPos++
	if st.asbPos == k.Dev.Geometry().WordLinesPerBlock {
		// Slow block complete: its parity backup is no longer needed.
		k.backupOnSlowComplete(chip, blk)
		k.Dev.AckProgram(addr.BlockAddr)
		k.Pools[chip].PushFull(blk)
		st.sbq.PopFront()
		st.asbPos = 0
		k.Obs.Instant(obs.KindBlockFull, int32(chip), now, int64(blk), int64(st.sbq.Len()))
	}
	return done, nil
}

// foregroundGC reclaims blocks inline only when the write path has no
// alternative: MSB writes consume no free blocks, so as long as a slow block
// exists the policy redirects traffic there instead of stalling. Foreground
// collection therefore runs only when LSB capacity is genuinely required
// (no slow block) with a thin pool, or when the pool is at the emergency
// level needed by the parity-backup writer.
func (o *twoPhase) foregroundGC(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	needsLSB := o.chips[chip].sbq.Len() == 0
	reserve := k.Cfg.MinFreeBlocksPerChip
	for (needsLSB && k.Pools[chip].FreeCount() < reserve+1) ||
		k.Pools[chip].FreeCount() < 2 {
		victim, ok := k.Pools[chip].PickVictim()
		if !ok {
			break
		}
		var err error
		now, err = k.CollectVictim(chip, victim, now, k.gcAlloc)
		if err != nil {
			return now, err
		}
		k.St.ForegroundGCs++
	}
	return now, nil
}

func (o *twoPhase) idleDrain(*Kernel, sim.Time, sim.Time) {}

// fastBudget returns how many LSB pages the chip can still serve without
// eating into the GC/backup block reserve.
func (o *twoPhase) fastBudget(k *Kernel, chip int) int {
	st := &o.chips[chip]
	w := k.Dev.Geometry().WordLinesPerBlock
	budget := 0
	if st.afb != -1 {
		budget += w - st.afbPos
	}
	if spare := k.Pools[chip].FreeCount() - k.Cfg.MinFreeBlocksPerChip - 1; spare > 0 {
		budget += spare * w
	}
	return budget
}

func (o *twoPhase) slowAvailable(k *Kernel, chip int) bool {
	return o.chips[chip].sbq.Len() > 0
}

// shardGCTrigger: the two-phase foreground collector fires when the chip has
// no slow block and fewer than reserve+1 free blocks, or fewer than 2 free
// blocks outright; free >= max(reserve+1, 2) rules out both conditions
// (Config.Validate guarantees MinFreeBlocksPerChip >= 1).
func (o *twoPhase) shardGCTrigger(k *Kernel) int {
	t := k.Cfg.MinFreeBlocksPerChip + 1
	if t < 2 {
		t = 2
	}
	return t
}

// shardWriteImpact for 2PO: MSB programs never pop free blocks, so the worst
// case is all w writes landing on LSB pages of the active fast block chain.
func (o *twoPhase) shardWriteImpact(k *Kernel, chip, w int) (pops, fills int) {
	wl := k.Dev.Geometry().WordLinesPerBlock
	st := &o.chips[chip]
	slack, pos := 0, 0
	if st.afb != -1 {
		slack, pos = wl-st.afbPos, st.afbPos
	}
	if w > slack {
		pops = (w - slack + wl - 1) / wl
	}
	fills = (w + pos) / wl
	return pops, fills
}
