package ftl

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

// OrderPolicy owns page ordering: which page of a stream's active block each
// program lands on, the block life cycle around it (free pool -> active ->
// full), foreground reclaim, and any order-specific idle work. Which stream
// a program rides — and which free block opens a stream's next active block —
// belongs to the PlacementPolicy; single-stream order policies may reject a
// multi-stream placement at init. The interface is sealed — implementations
// come from FPSOrderPolicy / FPSPoolOrderPolicy / TwoPhaseOrderPolicy.
type OrderPolicy interface {
	init(k *Kernel) error
	// program writes one data page on the chip's given placement stream
	// under the policy's order, honoring pref where the order leaves a
	// choice.
	program(k *Kernel, chip, stream int, pref Pref, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error)
	// foregroundGC reclaims blocks inline until the chip can absorb the
	// next program without stalling.
	foregroundGC(k *Kernel, chip int, now sim.Time) (sim.Time, error)
	// idleDrain runs order-specific idle work after background GC (the
	// return-to-fast MSB drain; a no-op for the others).
	idleDrain(k *Kernel, now, until sim.Time)
	// fastBudget is how many LSB pages the chip can still serve without
	// eating into the GC/backup reserve (adaptive allocation input).
	fastBudget(k *Kernel, chip int) int
	// slowAvailable reports whether an MSB page can be programmed at all.
	slowAvailable(k *Kernel, chip int) bool
	// shardGCTrigger is the free-block level at or above which this policy's
	// foregroundGC provably does nothing (the epoch planner's R5 threshold).
	shardGCTrigger(k *Kernel) int
	// shardWriteImpact bounds, from the chip's current cursor state, the free
	// blocks w host writes can pop and the data blocks they can complete
	// (fills drive the per-block backup strategies' own pops), under the
	// worst-case routing of the writes across placement streams.
	shardWriteImpact(k *Kernel, chip, w int) (pops, fills int)
	// shardWriteImpactMin is shardWriteImpact's best-case-routing
	// counterpart: the fewest pops/fills *some* stream routing of the w
	// writes could cause. The planner uses the gap between the two to
	// attribute a failed headroom check to placement uncertainty (Rp)
	// rather than true GC proximity (R5). Single-stream policies have no
	// routing freedom, so both bounds coincide.
	shardWriteImpactMin(k *Kernel, chip, w int) (pops, fills int)
}

// cursor tracks one active block's program position.
type cursor struct {
	blk int // -1 when no active block
	pos int
}

// worstCaseUnits bounds how many unit events (free-block pops or block
// fills) w same-type writes can force across placement streams, where
// stream i's first event costs firstCosts[i] writes and every further event
// on any stream costs ppb writes (a fresh block's full page count). The
// adversary routes writes to trigger events as cheaply as possible: for m
// streams engaged it pays the m smallest first-event costs, then buys extra
// events at ppb apiece; the maximum over m is the bound. With one stream
// this is exactly the pre-placement-axis arithmetic: ceil((w-slack)/ppb)
// pops and (w+pos)/ppb fills.
func worstCaseUnits(firstCosts []int, w, ppb int) int {
	// Insertion sort: stream counts are tiny (1–2).
	for i := 1; i < len(firstCosts); i++ {
		for j := i; j > 0 && firstCosts[j] < firstCosts[j-1]; j-- {
			firstCosts[j], firstCosts[j-1] = firstCosts[j-1], firstCosts[j]
		}
	}
	best, spent := 0, 0
	for m := 1; m <= len(firstCosts); m++ {
		spent += firstCosts[m-1]
		if spent > w {
			break
		}
		if got := m + (w-spent)/ppb; got > best {
			best = got
		}
	}
	return best
}

// FPSOrderPolicy returns the strict fixed-program-sequence order: one active
// block per chip stream, pages written in the vendor FPS order (pageFTL and
// parityFTL). Pref is ignored — FPS leaves no choice.
func FPSOrderPolicy() OrderPolicy { return &fpsSingle{} }

type fpsSingle struct {
	order  []core.Page // the canonical FPS order, shared by every block
	active [][]cursor  // [chip][stream]

	// impactScratch backs shardWriteImpact's first-cost accumulation. Only
	// the serial epoch planner calls it, so a single scratch is race-free
	// even though the policy object is shared with the shard clones.
	impactScratch []int
}

func (o *fpsSingle) init(k *Kernel) error {
	g := k.Dev.Geometry()
	o.order = core.FPSOrder(g.WordLinesPerBlock)
	o.active = make([][]cursor, g.Chips())
	for c := range o.active {
		cs := make([]cursor, k.placement.streams())
		for s := range cs {
			cs[s] = cursor{blk: -1}
		}
		o.active[c] = cs
	}
	return nil
}

func (o *fpsSingle) program(k *Kernel, chip, stream int, pref Pref, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	cur := &o.active[chip][stream]
	if cur.blk == -1 {
		blk, ok := k.placement.pickFree(k, chip, stream)
		if !ok {
			return now, fmt.Errorf("%s: chip %d out of free blocks", k.name, chip)
		}
		cur.blk, cur.pos = blk, 0
	}
	page := o.order[cur.pos]
	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	done, err := k.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	k.Map.Update(lpn, k.Dev.Geometry().PPNOf(addr))
	if page.Type == core.LSB {
		k.noteData(true, fromGC)
		done, err = k.backupAfterLSB(chip, stream, data, done)
		if err != nil {
			return done, err
		}
	} else {
		if k.bk.coversMSB() {
			// The pair's parity pre-backup is already on flash, so the
			// destructive window is power-safe at issue time.
			k.Dev.AckProgram(addr.BlockAddr)
		}
		k.noteData(false, fromGC)
	}
	k.alloc.onProgram(k, page.Type == core.LSB, fromGC)
	cur.pos++
	if cur.pos == len(o.order) {
		k.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

func (o *fpsSingle) foregroundGC(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	// Each placement stream beyond the first holds one more active block
	// open, so the reserve grows with it — streams share one free pool.
	return k.reserveGC(chip, now, k.Cfg.MinFreeBlocksPerChip+k.bk.extraReserve()+k.placement.streams()-1)
}

func (o *fpsSingle) idleDrain(*Kernel, sim.Time, sim.Time) {}

func (o *fpsSingle) fastBudget(k *Kernel, chip int) int {
	budget := 0
	for _, cur := range o.active[chip] {
		if cur.blk != -1 && o.order[cur.pos].Type == core.LSB {
			budget++
		}
	}
	if spare := k.Pools[chip].FreeCount() - k.Cfg.MinFreeBlocksPerChip - k.placement.streams(); spare > 0 {
		budget += spare
	}
	return budget
}

func (o *fpsSingle) slowAvailable(k *Kernel, chip int) bool {
	for _, cur := range o.active[chip] {
		if cur.blk != -1 && o.order[cur.pos].Type == core.MSB {
			return true
		}
	}
	return false
}

func (o *fpsSingle) shardGCTrigger(k *Kernel) int {
	return k.Cfg.MinFreeBlocksPerChip + k.bk.extraReserve() + k.placement.streams() - 1
}

func (o *fpsSingle) shardWriteImpact(k *Kernel, chip, w int) (pops, fills int) {
	ppb := len(o.order)
	costs := o.impactScratch[:0]
	// First-pop costs: writing a stream's remaining slack fills its block
	// and the next write pops (slack 0 for a streams with no active block).
	for _, cur := range o.active[chip] {
		slack := 0
		if cur.blk != -1 {
			slack = ppb - cur.pos
		}
		costs = append(costs, slack+1)
	}
	pops = worstCaseUnits(costs, w, ppb)
	// First-fill costs: a stream's open block completes after its remaining
	// pages (a fresh stream needs a whole block's worth).
	costs = costs[:0]
	for _, cur := range o.active[chip] {
		fc := ppb
		if cur.blk != -1 {
			fc = ppb - cur.pos
		}
		costs = append(costs, fc)
	}
	fills = worstCaseUnits(costs, w, ppb)
	o.impactScratch = costs
	return pops, fills
}

// shardWriteImpactMin: best-case routing spreads writes over the pooled
// slack of every stream before any pop, and completes no block at all
// (fills 0) by round-robining below each block's capacity.
func (o *fpsSingle) shardWriteImpactMin(k *Kernel, chip, w int) (pops, fills int) {
	if len(o.active[chip]) == 1 {
		return o.shardWriteImpact(k, chip, w)
	}
	ppb := len(o.order)
	slack := 0
	for _, cur := range o.active[chip] {
		if cur.blk != -1 {
			slack += ppb - cur.pos
		}
	}
	if w > slack {
		pops = (w - slack + ppb - 1) / ppb
	}
	return pops, 0
}

// FPSPoolOrderPolicy returns the return-to-fast order modeled on Grupp et
// al.'s Harey Tortoise: each chip keeps a pool of slots active blocks under
// FPS so successive writes can land on fast LSB pages, and the idle drain
// aggressively consumes paired MSB pages so the pool "returns to fast"
// (rtfFTL uses 8 slots). The pool is itself a placement mechanism (slots are
// picked by fill level, not by stream), so it requires the single-stream
// placement.
func FPSPoolOrderPolicy(slots int) OrderPolicy { return &fpsPool{slots: slots} }

type fpsPool struct {
	slots  int
	order  []core.Page
	active [][]cursor // [chip][slot]; blk -1 when the slot awaits a block

	// impactScratch backs shardWriteImpact's remaining-page sort. Only the
	// serial epoch planner calls it, so a single scratch is race-free even
	// though the policy object is shared with the shard clones.
	impactScratch []int
}

func (o *fpsPool) init(k *Kernel) error {
	g := k.Dev.Geometry()
	if o.slots < 1 {
		return fmt.Errorf("%s: active pool needs at least one slot", k.name)
	}
	if k.placement.streams() != 1 {
		return fmt.Errorf("%s: the FPS-pool order routes by slot fill, not stream; it needs the single-stream placement", k.name)
	}
	if g.BlocksPerChip < o.slots+k.Cfg.MinFreeBlocksPerChip+2 {
		return fmt.Errorf("%s: %d blocks/chip too few for %d active blocks",
			k.name, g.BlocksPerChip, o.slots)
	}
	o.order = core.FPSOrder(g.WordLinesPerBlock)
	o.active = make([][]cursor, g.Chips())
	for c := range o.active {
		cs := make([]cursor, o.slots)
		for s := range cs {
			blk, ok := k.Pools[c].PopFree()
			if !ok {
				return fmt.Errorf("%s: chip %d cannot seed active pool", k.name, c)
			}
			cs[s] = cursor{blk: blk}
		}
		o.active[c] = cs
	}
	return nil
}

// pickSlot returns the index of the most-filled slot whose next page matches
// wantLSB, or -1 if none. Concentrating writes in the fullest block keeps
// data of similar age together (near-pageFTL victim quality); the pool's
// breadth exists for LSB availability, not for striping.
func (o *fpsPool) pickSlot(chip int, wantLSB bool) int {
	best, bestPos := -1, -1
	for s, cur := range o.active[chip] {
		if cur.blk == -1 {
			continue
		}
		if (o.order[cur.pos].Type == core.LSB) == wantLSB && cur.pos > bestPos {
			best, bestPos = s, cur.pos
		}
	}
	return best
}

func (o *fpsPool) program(k *Kernel, chip, stream int, pref Pref, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	var err error
	now, err = o.refillSlots(k, chip, now)
	if err != nil {
		return now, err
	}
	wantLSB := pref != PrefSlow
	slot := o.pickSlot(chip, wantLSB)
	if slot == -1 {
		slot = o.pickSlot(chip, !wantLSB)
	}
	if slot == -1 {
		return now, fmt.Errorf("%s: chip %d has no programmable active block", k.name, chip)
	}
	cur := &o.active[chip][slot]
	page := o.order[cur.pos]

	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	done, err := k.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	k.Map.Update(lpn, k.Dev.Geometry().PPNOf(addr))
	if page.Type == core.LSB {
		k.noteData(true, fromGC)
		done, err = k.backupAfterLSB(chip, stream, data, done)
		if err != nil {
			return done, err
		}
	} else {
		if k.bk.coversMSB() {
			k.Dev.AckProgram(addr.BlockAddr) // parity pre-backup covers the pair
		}
		k.noteData(false, fromGC)
	}
	k.alloc.onProgram(k, page.Type == core.LSB, fromGC)
	cur.pos++
	if cur.pos == len(o.order) {
		k.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

// refillSlots tops up empty active slots from the free pool while keeping a
// reserve for the backup ring and GC; with the pool at reserve it still
// force-refills one slot so a program is always possible.
func (o *fpsPool) refillSlots(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	reserve := k.Cfg.MinFreeBlocksPerChip
	for s := range o.active[chip] {
		if o.active[chip][s].blk != -1 {
			continue
		}
		if k.Pools[chip].FreeCount() <= reserve {
			break // run with a shallower pool until GC frees blocks
		}
		blk, ok := k.Pools[chip].PopFree()
		if !ok {
			break
		}
		o.active[chip][s] = cursor{blk: blk}
	}
	// At least one slot must be usable.
	for s := range o.active[chip] {
		if o.active[chip][s].blk != -1 {
			return now, nil
		}
	}
	blk, ok := k.Pools[chip].PopFree()
	if !ok {
		return now, fmt.Errorf("%s: chip %d active pool empty and no free blocks", k.name, chip)
	}
	o.active[chip][0] = cursor{blk: blk}
	return now, nil
}

// padOneMSB programs the first MSB-next slot with a dummy payload purely to
// advance its cursor back to an LSB page. The padded page is born invalid —
// capacity traded for burst readiness, the return-to-fast lifetime weakness.
func (o *fpsPool) padOneMSB(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	slot := o.pickSlot(chip, false)
	if slot == -1 {
		return now, nil
	}
	cur := &o.active[chip][slot]
	page := o.order[cur.pos]
	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	prevCause := k.Dev.SetCause(obs.CausePad)
	done, err := k.Dev.Program(addr, nil, nil, now)
	k.Dev.SetCause(prevCause)
	if err != nil {
		return now, err
	}
	// A padded MSB pairs with a real LSB page, so the destructive window is
	// only safe to close when the backup covers the pair.
	if k.bk.coversMSB() {
		k.Dev.AckProgram(addr.BlockAddr)
	}
	k.St.PadWrites++
	k.Obs.Instant(obs.KindPad, int32(chip), now, int64(cur.blk), int64(page.WL))
	cur.pos++
	if cur.pos == len(o.order) {
		k.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

func (o *fpsPool) foregroundGC(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	return k.reserveGC(chip, now, k.Cfg.MinFreeBlocksPerChip+k.bk.extraReserve())
}

// lsbReadyCount counts active slots whose next page is an LSB page.
func (o *fpsPool) lsbReadyCount(chip int) int {
	n := 0
	for _, cur := range o.active[chip] {
		if cur.blk != -1 && o.order[cur.pos].Type == core.LSB {
			n++
		}
	}
	return n
}

// chipHasMSBNext reports whether the chip's active pool has a slot waiting
// on an MSB page.
func (o *fpsPool) chipHasMSBNext(chip int) bool {
	for _, cur := range o.active[chip] {
		if cur.blk != -1 && o.order[cur.pos].Type == core.MSB {
			return true
		}
	}
	return false
}

// idleDrain aggressively consumes pending paired MSB pages so subsequent
// bursts land on fast LSB pages again — the return-to-fast drain.
func (o *fpsPool) idleDrain(k *Kernel, now, until sim.Time) {
	// The drain is idle relocation work: charge its media occupancy to GC
	// (pads inside override to CausePad themselves).
	prevCause := k.Dev.SetCause(obs.CauseGC)
	defer k.Dev.SetCause(prevCause)
	for chip := range o.active {
		var err error
		now, err = o.drainMSBSlots(k, chip, now, until)
		if err != nil {
			return
		}
	}
}

// drainMSBSlots relocates valid pages from GC candidates into the chip's
// MSB-next slots, one page at a time, until the pool is ready for a burst or
// the idle window closes. When no relocation source exists, slots are padded
// with dummy MSB programs, but only up to a minimal burst readiness — padding
// burns capacity, so full return-to-fast is reserved for relocation-backed
// drains.
func (o *fpsPool) drainMSBSlots(k *Kernel, chip int, now, until sim.Time) (sim.Time, error) {
	g := k.Dev.Geometry()
	t := k.Dev.Timing()
	perPage := t.Read + 2*t.BusXfer + t.ProgMSB + t.ProgLSB // copy + possible backup
	for now+perPage <= until && o.chipHasMSBNext(chip) {
		victim, ok := k.Pools[chip].PickVictim()
		if !ok {
			// No relocation source: pad only down to a minimal burst
			// readiness of two LSB-ready slots — wholesale padding would
			// waste capacity out of proportion to the bursts it serves.
			if o.lsbReadyCount(chip) >= 2 {
				return now, nil
			}
			var err error
			now, err = o.padOneMSB(k, chip, now)
			if err != nil {
				return now, err
			}
			continue
		}
		ppn, hasValid := k.Map.FirstValidPage(nand.BlockAddr{Chip: chip, Block: victim})
		if !hasValid {
			// Fully invalid block: erase it instead; that is pure gain.
			k.Pools[chip].TakeFull(victim)
			k.Map.ClearBlock(nand.BlockAddr{Chip: chip, Block: victim})
			done, err := k.Dev.Erase(nand.BlockAddr{Chip: chip, Block: victim}, now)
			if err != nil {
				return now, err
			}
			k.St.Erases++
			if !k.maybeRetire(chip, victim) {
				k.Pools[chip].PushFree(victim)
			}
			now = done
			continue
		}
		lpn, ok := k.Map.LPNAt(ppn)
		if !ok {
			return now, nil
		}
		tRead, err := k.Dev.ReadInto(g.AddrOfPPN(ppn), &k.Buf, now)
		if err != nil {
			return now, err
		}
		done, err := o.program(k, chip, 0, PrefSlow, lpn, k.Buf.Data, k.Buf.Spare, tRead, true)
		if err != nil {
			return now, err
		}
		k.St.GCCopies++
		now = done
	}
	return now, nil
}

func (o *fpsPool) fastBudget(k *Kernel, chip int) int {
	budget := o.lsbReadyCount(chip)
	if spare := k.Pools[chip].FreeCount() - k.Cfg.MinFreeBlocksPerChip - k.placement.streams(); spare > 0 {
		budget += spare
	}
	return budget
}

func (o *fpsPool) slowAvailable(k *Kernel, chip int) bool { return o.chipHasMSBNext(chip) }

func (o *fpsPool) shardGCTrigger(k *Kernel) int {
	return k.Cfg.MinFreeBlocksPerChip + k.bk.extraReserve()
}

// shardWriteImpact for the pool order: empty slots each refill with one pop
// at the next program; filled slots complete after their remaining pages,
// and every completion triggers at most one refill pop. Packing writes into
// the fullest slots first matches pickSlot's actual preference, so the fill
// count is a true upper bound regardless of the LSB/MSB interleaving.
func (o *fpsPool) shardWriteImpact(k *Kernel, chip, w int) (pops, fills int) {
	ppb := len(o.order)
	empty := 0
	rems := o.impactScratch[:0]
	for _, cur := range o.active[chip] {
		if cur.blk == -1 {
			empty++
			continue
		}
		rems = append(rems, ppb-cur.pos)
	}
	o.impactScratch = rems
	// Ascending remaining-page order = fullest-first completion order.
	for i := 1; i < len(rems); i++ {
		for j := i; j > 0 && rems[j] < rems[j-1]; j-- {
			rems[j], rems[j-1] = rems[j-1], rems[j]
		}
	}
	left := w
	for _, rem := range rems {
		if left < rem {
			left = 0
			break
		}
		fills++
		left -= rem
	}
	fills += left / ppb
	pops = empty + fills
	return pops, fills
}

// shardWriteImpactMin: the pool order is single-stream (enforced at init),
// so placement has no routing freedom and both bounds coincide.
func (o *fpsPool) shardWriteImpactMin(k *Kernel, chip, w int) (pops, fills int) {
	return o.shardWriteImpact(k, chip, w)
}

// TwoPhaseOrderPolicy returns the paper's 2PO block life cycle (Figure 6):
// each block is first filled with LSB pages only (a "fast block"), then with
// MSB pages only (a "slow block") — the RPSfull order of Figure 3(a). Free
// pool -> one active fast block per chip stream -> slow block queue (FIFO)
// -> one active slow block per chip stream -> full pool. Requires an RPS
// device.
func TwoPhaseOrderPolicy() OrderPolicy { return &twoPhase{} }

// twoPhaseStream is one placement stream's block bookkeeping on a chip: its
// own fast block and slow-block queue, so hot and cold data never share a
// block.
type twoPhaseStream struct {
	afb    int      // active fast block, -1 when none
	afbPos int      // next LSB word line of the AFB
	sbq    IntQueue // slow block queue; head is the active slow block
	asbPos int      // next MSB word line of the head slow block
}

// twoPhaseChip is the per-chip block bookkeeping of the block pool manager.
type twoPhaseChip struct {
	streams []twoPhaseStream

	// Crash-recovery bookkeeping for the chip's open destructive window: the
	// LPN of the most recent MSB program, the physical page it superseded
	// (InvalidPPN if the LPN had no prior copy), whether the program was a
	// GC relocation, and which stream issued it. A power cut during that
	// program loses the new copy; recovery rolls the mapping back to
	// lastMSBPrev, which the device's erase barrier keeps intact while the
	// window is open (GC relocations stay on-chip, and an on-chip erase
	// would have closed the window). The record is per chip, not per
	// stream: the device serializes cell operations, so at most one window
	// exists per chip and a newer MSB program supersedes the previous one.
	lastMSBLPN    LPN
	lastMSBPrev   nand.PPN
	lastMSBGC     bool
	lastMSBStream int
}

type twoPhase struct {
	chips []twoPhaseChip

	// impactScratch backs shardWriteImpact's first-cost accumulation (serial
	// planner only, like the other policies' scratch).
	impactScratch []int
}

func (o *twoPhase) init(k *Kernel) error {
	if k.Dev.Rules().Name() == "FPS" {
		return fmt.Errorf("%s: device enforces FPS; two-phase ordering requires the RPS scheme", k.name)
	}
	o.chips = make([]twoPhaseChip, k.Dev.Geometry().Chips())
	for c := range o.chips {
		sts := make([]twoPhaseStream, k.placement.streams())
		for s := range sts {
			sts[s] = twoPhaseStream{afb: -1}
		}
		o.chips[c] = twoPhaseChip{streams: sts, lastMSBPrev: nand.InvalidPPN}
	}
	return nil
}

// program writes one page of the requested type on the chip's stream,
// falling back to the other type when the requested one is infeasible, and
// maintaining the 2PO block life cycle of Figure 6.
func (o *twoPhase) program(k *Kernel, chip, stream int, pref Pref, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	st := &o.chips[chip].streams[stream]
	useLSB := pref != PrefSlow
	if useLSB {
		// Opening a new fast block must leave at least one free block for
		// the parity-backup writer — and one per sibling stream, since the
		// streams drain a single shared pool; redirect to a slow page
		// otherwise.
		if st.afb == -1 && k.Pools[chip].FreeCount() <= k.placement.streams() {
			useLSB = false
		}
	}
	if !useLSB && st.sbq.Len() == 0 {
		useLSB = true // no slow block exists (footnote 1)
	}
	if useLSB && st.afb == -1 && k.Pools[chip].FreeCount() == 0 {
		// Emergency valve: the stream needs a new fast block but the shared
		// pool is dry. An MSB program consumes no free block, so drain a
		// sibling stream's slow block instead of failing — cross-stream
		// pollution beats block exhaustion. Single-stream kernels cannot
		// take this path with a non-empty queue (the MSB fallback above
		// already caught it), so pre-placement behavior is untouched.
		for s := range o.chips[chip].streams {
			if o.chips[chip].streams[s].sbq.Len() > 0 {
				return o.programMSB(k, chip, s, lpn, data, spare, now, fromGC)
			}
		}
	}
	if useLSB {
		return o.programLSB(k, chip, stream, lpn, data, spare, now, fromGC)
	}
	return o.programMSB(k, chip, stream, lpn, data, spare, now, fromGC)
}

// programLSB writes the next LSB page of the stream's active fast block.
func (o *twoPhase) programLSB(k *Kernel, chip, stream int, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	st := &o.chips[chip].streams[stream]
	if st.afb == -1 {
		blk, ok := k.placement.pickFree(k, chip, stream)
		if !ok {
			return now, fmt.Errorf("%s: chip %d out of free blocks for a fast block", k.name, chip)
		}
		st.afb, st.afbPos = blk, 0
		k.bk.onFastOpen(k, chip, stream)
		k.Obs.Instant(obs.KindBlockFast, int32(chip), now, int64(blk), int64(k.Pools[chip].FreeCount()))
	}
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: st.afb},
		Page:      core.Page{WL: st.afbPos, Type: core.LSB},
	}
	done, err := k.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	k.Map.Update(lpn, k.Dev.Geometry().PPNOf(addr))
	done, err = k.backupAfterLSB(chip, stream, data, done)
	if err != nil {
		return done, err
	}
	k.noteData(true, fromGC)
	k.alloc.onProgram(k, true, fromGC)
	st.afbPos++
	if st.afbPos == k.Dev.Geometry().WordLinesPerBlock {
		// Fast block complete: queue it as a slow block first so the block
		// pool state stays consistent even if the parity write fails, then
		// persist its parity page (Figure 7(a)).
		full := st.afb
		st.sbq.Push(full)
		st.afb = -1
		k.Obs.Instant(obs.KindBlockQueued, int32(chip), now, int64(full), int64(st.sbq.Len()))
		done, err = k.backupOnFastComplete(chip, stream, full, done)
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// programMSB writes the next MSB page of the stream's active slow block (the
// head of its slow block queue).
func (o *twoPhase) programMSB(k *Kernel, chip, stream int, lpn LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	ch := &o.chips[chip]
	st := &ch.streams[stream]
	if st.sbq.Len() == 0 {
		return now, fmt.Errorf("%s: chip %d has no slow block for an MSB write", k.name, chip)
	}
	blk := st.sbq.Front()
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
		Page:      core.Page{WL: st.asbPos, Type: core.MSB},
	}
	done, err := k.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	// Deliberately no AckProgram here: the paired LSB page is protected by
	// the block's parity page, and the recovery procedure (recover2po.go)
	// reconstructs it after a power cut. This is the point of the design —
	// no per-MSB backup writes.
	ch.lastMSBLPN = lpn
	ch.lastMSBPrev = k.Map.Update(lpn, k.Dev.Geometry().PPNOf(addr))
	ch.lastMSBGC = fromGC
	ch.lastMSBStream = stream
	k.noteData(false, fromGC)
	k.alloc.onProgram(k, false, fromGC)
	st.asbPos++
	if st.asbPos == k.Dev.Geometry().WordLinesPerBlock {
		// Slow block complete: its parity backup is no longer needed.
		k.backupOnSlowComplete(chip, blk)
		k.Dev.AckProgram(addr.BlockAddr)
		k.Pools[chip].PushFull(blk)
		st.sbq.PopFront()
		st.asbPos = 0
		k.Obs.Instant(obs.KindBlockFull, int32(chip), now, int64(blk), int64(st.sbq.Len()))
	}
	return done, nil
}

// foregroundGC reclaims blocks inline only when the write path has no
// alternative: MSB writes consume no free blocks, so as long as a slow block
// exists the policy redirects traffic there instead of stalling. Foreground
// collection therefore runs only when LSB capacity is genuinely required
// (some stream has no slow block) with a thin pool, or when the pool is at
// the emergency level needed by the parity-backup writer.
func (o *twoPhase) foregroundGC(k *Kernel, chip int, now sim.Time) (sim.Time, error) {
	// The chip genuinely requires LSB capacity only when EVERY stream is out
	// of slow blocks — a single stream's empty queue is a stream-local state
	// the redirect guard and the emergency valve absorb. Triggering on "any
	// stream empty" would keep the collector running continuously under
	// skewed traffic (the cold-heavy regime leaves the hot queue empty
	// almost permanently) and collapse into a GC spiral. For one stream the
	// two readings coincide.
	//
	// needsLSB is re-evaluated every iteration, not latched at entry: a
	// collection's own relocations move slow-block-queue state (an MSB
	// relocation completing the active slow block pops the queue), and a
	// latched value would make the loop's outcome depend on how many calls
	// the same state is spread over. Re-evaluating makes foregroundGC a
	// pure function of chip state — in particular idempotent, which the
	// epoch planner's GC pre-run relies on: when a pre-run's headroom
	// recheck fails and the write falls back to serial execution, the
	// write's in-line foregroundGC call must be a provable no-op, not a
	// second collection the serial schedule would have run one write later.
	needsLSB := func() bool {
		for s := range o.chips[chip].streams {
			if o.chips[chip].streams[s].sbq.Len() > 0 {
				return false
			}
		}
		return true
	}
	// The thin-pool and emergency levels scale with the placement streams:
	// every stream holds its own active fast block against the one shared
	// pool, and GC's cold-stream relocations must never find it empty.
	streams := k.placement.streams()
	reserve := k.Cfg.MinFreeBlocksPerChip + streams - 1
	for (needsLSB() && k.Pools[chip].FreeCount() < reserve+1) ||
		k.Pools[chip].FreeCount() < 1+streams {
		victim, ok := k.Pools[chip].PickVictim()
		if !ok {
			break
		}
		var err error
		now, err = k.CollectVictim(chip, victim, now, k.gcAlloc)
		if err != nil {
			return now, err
		}
		k.St.ForegroundGCs++
	}
	return now, nil
}

func (o *twoPhase) idleDrain(*Kernel, sim.Time, sim.Time) {}

// fastBudget returns how many LSB pages the chip can still serve without
// eating into the GC/backup block reserve, summed over placement streams.
func (o *twoPhase) fastBudget(k *Kernel, chip int) int {
	w := k.Dev.Geometry().WordLinesPerBlock
	budget := 0
	for s := range o.chips[chip].streams {
		if st := &o.chips[chip].streams[s]; st.afb != -1 {
			budget += w - st.afbPos
		}
	}
	if spare := k.Pools[chip].FreeCount() - k.Cfg.MinFreeBlocksPerChip - k.placement.streams(); spare > 0 {
		budget += spare * w
	}
	return budget
}

func (o *twoPhase) slowAvailable(k *Kernel, chip int) bool {
	for s := range o.chips[chip].streams {
		if o.chips[chip].streams[s].sbq.Len() > 0 {
			return true
		}
	}
	return false
}

// shardGCTrigger: the two-phase foreground collector fires when some stream
// has no slow block and the chip has fewer than reserve+1 free blocks, or
// fewer than 2 free blocks outright; free >= max(reserve+1, 2) rules out
// both conditions (Config.Validate guarantees MinFreeBlocksPerChip >= 1).
func (o *twoPhase) shardGCTrigger(k *Kernel) int {
	streams := k.placement.streams()
	t := k.Cfg.MinFreeBlocksPerChip + streams
	if t < 1+streams {
		t = 1 + streams
	}
	return t
}

// shardWriteImpact for 2PO: MSB programs never pop free blocks, so the worst
// case is all w writes landing on LSB pages, routed adversarially across the
// streams' active fast block chains.
func (o *twoPhase) shardWriteImpact(k *Kernel, chip, w int) (pops, fills int) {
	wl := k.Dev.Geometry().WordLinesPerBlock
	sts := o.chips[chip].streams
	costs := o.impactScratch[:0]
	for s := range sts {
		slack := 0
		if sts[s].afb != -1 {
			slack = wl - sts[s].afbPos
		}
		costs = append(costs, slack+1)
	}
	pops = worstCaseUnits(costs, w, wl)
	costs = costs[:0]
	for s := range sts {
		fc := wl
		if sts[s].afb != -1 {
			fc = wl - sts[s].afbPos
		}
		costs = append(costs, fc)
	}
	fills = worstCaseUnits(costs, w, wl)
	o.impactScratch = costs
	return pops, fills
}

// shardWriteImpactMin: best-case routing fills the pooled LSB slack of every
// stream before popping, and completes no fast block (fills 0).
func (o *twoPhase) shardWriteImpactMin(k *Kernel, chip, w int) (pops, fills int) {
	sts := o.chips[chip].streams
	if len(sts) == 1 {
		return o.shardWriteImpact(k, chip, w)
	}
	wl := k.Dev.Geometry().WordLinesPerBlock
	slack := 0
	for s := range sts {
		if sts[s].afb != -1 {
			slack += wl - sts[s].afbPos
		}
	}
	if w > slack {
		pops = (w - slack + wl - 1) / wl
	}
	return pops, 0
}
