package rtfftl

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/ftltest"
	"flexftl/internal/nand"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
)

func fixture(t testing.TB) ftltest.Fixture {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(),
		Timing:   nand.DefaultTiming(),
		Rules:    core.FPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, ftl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ftltest.Fixture{F: f, B: f.Base, IdleConsumesFree: true}
}

func TestConformance(t *testing.T) {
	ftltest.Run(t, fixture)
}

func TestName(t *testing.T) {
	if fixture(t).F.Name() != "rtfFTL" {
		t.Error("name wrong")
	}
}

func TestRejectsTinyGeometry(t *testing.T) {
	g := nand.TestGeometry()
	g.BlocksPerChip = ActiveBlocksPerChip // no room for reserve
	dev, err := nand.NewDevice(nand.Config{Geometry: g, Timing: nand.DefaultTiming(), Rules: core.FPS})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, ftl.DefaultConfig()); err == nil {
		t.Error("geometry with no reserve accepted")
	}
}

// TestSuccessiveLSBBurst: with 8 active blocks per chip, a fresh rtfFTL must
// serve at least 8 successive writes per chip on fast LSB pages.
func TestSuccessiveLSBBurst(t *testing.T) {
	fx := fixture(t)
	g := fx.F.Device().Geometry()
	burst := ActiveBlocksPerChip * g.Chips()
	now := sim.Time(0)
	for i := 0; i < burst; i++ {
		done, err := fx.F.Write(ftl.LPN(i), now, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := fx.F.Stats()
	if st.HostWritesLSB != int64(burst) || st.HostWritesMSB != 0 {
		t.Errorf("burst served with %d LSB / %d MSB, want all-LSB", st.HostWritesLSB, st.HostWritesMSB)
	}
}

// TestPairParityBackupRatio: rtfFTL pre-backs up with one parity page per
// PairSize LSB programs, the same FPS bound parityFTL uses (footnote 4).
func TestPairParityBackupRatio(t *testing.T) {
	fx := fixture(t)
	src := rng.New(3)
	logical := fx.F.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 2*logical; i++ {
		done, err := fx.F.Write(ftl.LPN(src.Int63n(logical)), now, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := fx.F.Stats()
	lsbPrograms := st.HostWritesLSB + st.GCCopiesLSB
	if st.BackupWrites == 0 {
		t.Fatal("no backup writes recorded")
	}
	ratio := float64(st.BackupWrites) / float64(lsbPrograms)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("backup/LSB ratio = %.3f, want ~0.5 (1 parity per %d LSB pages)", ratio, PairSize)
	}
}

// TestIdleReturnsToFast: after a mixed fill leaves active blocks waiting on
// MSB pages, an idle window must drain them so the pool is all-LSB-ready.
func TestIdleReturnsToFast(t *testing.T) {
	fx := fixture(t)
	f := fx.F.(*FTL)
	src := rng.New(5)
	logical := fx.F.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 2*logical; i++ {
		done, err := fx.F.Write(ftl.LPN(src.Int63n(logical)), now, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	gPre := fx.F.Device().Geometry()
	msbPending := false
	for chip := 0; chip < gPre.Chips(); chip++ {
		if f.PoolHasMSBNext(chip) {
			msbPending = true
			break
		}
	}
	if !msbPending {
		t.Skip("fill left the pool all-LSB already")
	}
	fx.F.Idle(now, now+20*sim.Second)
	// Relocation-backed drain plus capped padding must leave a minimum
	// burst readiness of two LSB-ready slots per chip.
	g := fx.F.Device().Geometry()
	const minReady = 2
	for chip := 0; chip < g.Chips(); chip++ {
		if got := f.LSBReadySlots(chip); got < minReady {
			t.Errorf("chip %d only %d/%d slots LSB-ready after idle", chip, got, ActiveBlocksPerChip)
		}
	}
	// After returning to fast, a burst of that depth per chip is served
	// entirely on LSB pages.
	st0 := fx.F.Stats()
	burst := minReady * g.Chips()
	for i := 0; i < burst; i++ {
		done, err := fx.F.Write(ftl.LPN(src.Int63n(logical)), now, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st1 := fx.F.Stats()
	if got := st1.HostWritesLSB - st0.HostWritesLSB; got != int64(burst) {
		t.Errorf("post-idle burst used %d LSB writes, want %d", got, burst)
	}
}
